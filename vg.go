// Package repro is the public API of the Virtual Ghost reproduction
// (Criswell, Dautenhahn, Adve — ASPLOS 2014): it boots complete
// simulated systems — hardware, the chosen protection configuration
// (Native baseline, Virtual Ghost, or the InkTag-style shadowing
// baseline), and the FreeBSD-like kernel — and exposes the pieces a
// downstream user needs: the kernel (processes, syscalls, files,
// sockets), the HAL (ghost memory, keys, trusted services), and the
// machine (clock, devices, console).
//
// Quickstart:
//
//	sys := repro.MustNewSystem(repro.VirtualGhost)
//	sys.Kernel.Spawn("app", func(p *kernel.Proc) {
//	    l, _ := libc.NewGhosting(p)
//	    secret, _ := l.Malloc(64)
//	    l.WriteGhost(secret, []byte("invisible to the OS"))
//	})
//	sys.Kernel.RunUntilIdle()
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory.
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/shadow"
)

// Mode selects the protection configuration.
type Mode = core.Mode

// The three configurations of the paper's evaluation.
const (
	// Native is the unprotected FreeBSD/LLVM baseline.
	Native = core.ModeNative
	// VirtualGhost is the full system: compiler-instrumented kernel,
	// SVA-OS checks, ghost memory, protected interrupt contexts,
	// TPM-rooted keys, encrypted swap.
	VirtualGhost = core.ModeVirtualGhost
	// Shadow is the InkTag/Overshadow-style hypervisor baseline used
	// for the Table 2 comparison columns.
	Shadow = core.ModeShadow
)

// System is one booted machine: hardware + HAL + kernel.
type System struct {
	Mode    Mode
	Machine *hw.Machine
	HAL     core.HAL
	Kernel  *kernel.Kernel
}

// Options tunes system construction.
type Options struct {
	// Machine sizes the hardware; zero value uses hw.DefaultConfig.
	Machine hw.MachineConfig
	// SharedClock, when non-nil, makes this machine tick the same
	// virtual clock as another (for multi-machine experiments).
	SharedClock *hw.Clock
	// HostParallel runs epoch user phases on concurrent host
	// goroutines (multi-CPU machines only). Host wall-clock changes;
	// every virtual number stays bit-identical to the serial schedule.
	HostParallel bool
}

// NewSystem boots a system in the given mode with default options.
func NewSystem(mode Mode) (*System, error) {
	return NewSystemWithOptions(mode, Options{})
}

// MustNewSystem is NewSystem, panicking on error (for examples).
func MustNewSystem(mode Mode) *System {
	s, err := NewSystem(mode)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSystemWithOptions boots a system with explicit options.
func NewSystemWithOptions(mode Mode, opts Options) (*System, error) {
	cfg := opts.Machine
	if cfg.MemFrames == 0 && cfg.DiskBlocks == 0 && cfg.Seed == 0 {
		ncpus := cfg.NumCPUs
		cfg = hw.DefaultConfig()
		cfg.NumCPUs = ncpus
	}
	var m *hw.Machine
	if opts.SharedClock != nil {
		m = hw.NewMachineWith(cfg, opts.SharedClock)
	} else {
		m = hw.NewMachine(cfg)
	}
	var hal core.HAL
	var err error
	switch mode {
	case VirtualGhost:
		hal, err = core.NewVM(m)
	case Shadow:
		hal, err = shadow.New(m)
	case Native:
		hal, err = core.NewNativeHAL(m)
	default:
		return nil, fmt.Errorf("repro: unknown mode %v", mode)
	}
	if err != nil {
		return nil, err
	}
	k, err := kernel.Boot(hal)
	if err != nil {
		return nil, err
	}
	if opts.HostParallel {
		k.SetHostParallel(true)
	}
	return &System{Mode: mode, Machine: m, HAL: hal, Kernel: k}, nil
}

// NewNetworkedPair boots two systems in the same mode, connects their
// NICs with a dedicated link, and puts both kernels on one shared clock
// and one World co-scheduler — the two-machine setup of the paper's
// network experiments.
func NewNetworkedPair(mode Mode) (server, client *System, world *kernel.World, err error) {
	server, err = NewSystem(mode)
	if err != nil {
		return nil, nil, nil, err
	}
	client, err = NewSystemWithOptions(mode, Options{SharedClock: server.Machine.Clock})
	if err != nil {
		return nil, nil, nil, err
	}
	hw.Connect(server.Machine.NIC, client.Machine.NIC)
	world = &kernel.World{Kernels: []*kernel.Kernel{server.Kernel, client.Kernel}}
	return server, client, world, nil
}

// Elapsed converts a cycle interval on this system's clock to seconds.
func (s *System) Elapsed(startCycles uint64) float64 {
	return hw.Seconds(s.Machine.Clock.Cycles() - startCycles)
}

// Console returns the machine console transcript.
func (s *System) Console() []string { return s.Machine.Console.Lines() }
