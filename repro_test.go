package repro_test

import (
	"testing"

	"repro"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/libc"
)

func TestNewSystemAllModes(t *testing.T) {
	for _, mode := range []repro.Mode{repro.Native, repro.VirtualGhost, repro.Shadow} {
		sys, err := repro.NewSystem(mode)
		if err != nil {
			t.Fatalf("[%v] %v", mode, err)
		}
		if sys.Mode != mode || sys.Kernel == nil || sys.HAL.Mode() != mode {
			t.Errorf("[%v] system wiring wrong", mode)
		}
		// The kernel must be able to run a trivial process.
		ran := false
		if _, err := sys.Kernel.Spawn("probe", func(p *kernel.Proc) {
			p.Syscall(kernel.SysGetpid)
			ran = true
		}); err != nil {
			t.Fatal(err)
		}
		sys.Kernel.RunUntilIdle()
		if !ran {
			t.Errorf("[%v] process did not run", mode)
		}
	}
}

func TestNewSystemUnknownMode(t *testing.T) {
	if _, err := repro.NewSystem(repro.Mode(99)); err == nil {
		t.Errorf("unknown mode accepted")
	}
}

func TestNetworkedPairSharesClock(t *testing.T) {
	server, client, world, err := repro.NewNetworkedPair(repro.Native)
	if err != nil {
		t.Fatal(err)
	}
	if server.Machine.Clock != client.Machine.Clock {
		t.Errorf("machines do not share a clock")
	}
	if len(world.Kernels) != 2 {
		t.Errorf("world has %d kernels", len(world.Kernels))
	}
	// Ping across the pair.
	var got string
	if _, err := server.Kernel.Spawn("srv", func(p *kernel.Proc) {
		s := p.Syscall(kernel.SysSocket)
		p.Syscall(kernel.SysBind, s, 1234)
		p.Syscall(kernel.SysListen, s)
		c := p.Syscall(kernel.SysAccept, s)
		buf := p.Alloc(16)
		n := p.Syscall(kernel.SysRecv, c, buf, 16)
		got = string(p.Read(buf, int(n)))
	}); err != nil {
		t.Fatal(err)
	}
	done := false
	if _, err := client.Kernel.Spawn("cli", func(p *kernel.Proc) {
		c := p.Syscall(kernel.SysSocket)
		p.Syscall(kernel.SysConnect, c, 1234, kernel.RemoteHost)
		m := p.PushString("ping")
		p.Syscall(kernel.SysSendTo, c, m, 4)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done && got != "" }) {
		t.Fatalf("pair deadlocked")
	}
	if got != "ping" {
		t.Errorf("got %q", got)
	}
}

// TestREADMEQuickstart keeps the README's quickstart snippet honest.
func TestREADMEQuickstart(t *testing.T) {
	sys := repro.MustNewSystem(repro.VirtualGhost)
	done := false
	if _, err := sys.Kernel.Spawn("app", func(p *kernel.Proc) {
		l, err := libc.NewGhosting(p)
		if err != nil {
			t.Errorf("libc: %v", err)
			return
		}
		secret, err := l.Malloc(64)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		l.WriteGhost(secret, []byte("invisible to the OS"))
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RunUntilIdle()
	if !done {
		t.Errorf("quickstart flow failed")
	}
}

func TestElapsedAndConsole(t *testing.T) {
	sys := repro.MustNewSystem(repro.Native)
	start := sys.Machine.Clock.Cycles()
	sys.Machine.Clock.Advance(3_400_000) // 1 ms
	if e := sys.Elapsed(start); e < 0.0009 || e > 0.0011 {
		t.Errorf("Elapsed = %v", e)
	}
	sys.Machine.Console.Printf("boot ok")
	if len(sys.Console()) != 1 {
		t.Errorf("console = %v", sys.Console())
	}
}

func TestCustomMachineOptions(t *testing.T) {
	sys, err := repro.NewSystemWithOptions(repro.Native, repro.Options{
		Machine: hw.MachineConfig{MemFrames: 1024, DiskBlocks: 128, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Machine.Mem.NumFrames() != 1024 {
		t.Errorf("frames = %d", sys.Machine.Mem.NumFrames())
	}
}
