package attack

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/vir"
)

// Result is the outcome of one attack vector run.
type Result struct {
	Name string
	// Succeeded means the *attack* achieved its goal (data stolen /
	// state corrupted). The defended configuration should report
	// false.
	Succeeded bool
	// Detail explains what happened (defence error, or what leaked).
	Detail string
}

func (r Result) String() string {
	verdict := "DEFEATED"
	if r.Succeeded {
		verdict = "SUCCEEDED"
	}
	return fmt.Sprintf("%-24s %s  %s", r.Name, verdict, r.Detail)
}

// findGhostFrame scans physical memory metadata for a frame the HAL has
// tagged as ghost — kernel code legitimately knows which frames it
// handed to allocgm. On the native configuration no frame is tagged
// ghost (they are ordinary user frames), so callers fall back to the
// victim's page-table walk.
func findGhostFrame(k *kernel.Kernel, victim *kernel.Proc, ghostVA hw.Virt) (hw.Frame, bool) {
	// Walk the victim's page tables for the ghost VA — the OS can read
	// PTEs directly on any configuration.
	table, idx, ok, err := k.M.MMU.WalkLeaf(victim.Root(), ghostVA)
	if err != nil || !ok {
		return 0, false
	}
	e, err := k.M.MMU.ReadPTE(table, idx)
	if err != nil || !e.Present() {
		return 0, false
	}
	return e.Frame(), true
}

// MMURemapAttack (paper §2.2.1): the OS maps the physical frame backing
// the victim's ghost page at a kernel-chosen virtual address in the
// victim's address space and reads it from kernel code.
func MMURemapAttack(k *kernel.Kernel, victim *kernel.Proc, ghostVA hw.Virt, secret []byte) Result {
	r := Result{Name: "mmu-remap"}
	page := hw.PageOf(ghostVA)
	off := ghostVA - page
	frame, ok := findGhostFrame(k, victim, page)
	if !ok {
		r.Detail = "could not locate ghost frame"
		return r
	}
	const evilVA = hw.Virt(0x00005e11e0000000)
	if err := k.HAL.MapPage(victim.Root(), evilVA, frame, hw.PTEWrite); err != nil {
		r.Detail = fmt.Sprintf("MapPage refused: %v", err)
		return r
	}
	// Read through the alias with an ordinary (non-ghost-partition)
	// kernel access.
	got := make([]byte, len(secret))
	for i := range got {
		v, err := k.HAL.KLoad(victim.Root(), evilVA+off+hw.Virt(i), 1)
		if err != nil {
			r.Detail = fmt.Sprintf("read through alias failed: %v", err)
			return r
		}
		got[i] = byte(v)
	}
	if bytes.Equal(got, secret) {
		r.Succeeded = true
		r.Detail = fmt.Sprintf("read secret through remapped frame %d", frame)
	} else {
		r.Detail = "alias readable but contents wrong"
	}
	return r
}

// BuildDMAModuleIR builds the module function that programs the IOMMU
// to expose a frame to device DMA, using the port-I/O instructions.
func BuildDMAModuleIR() *vir.Module {
	m := vir.NewModule("dmamod")
	b := vir.NewFunction("expose_frame", 1)
	b.PortOut(vir.Imm(uint64(hw.IOMMUPortFrame)), b.Param(0))
	b.PortOut(vir.Imm(uint64(hw.IOMMUPortCmd)), vir.Imm(hw.IOMMUCmdAllow))
	b.Ret(vir.Imm(0))
	if err := m.AddFunc(b.Fn()); err != nil {
		panic(err)
	}
	return m
}

// DMAAttack (paper §2.2.1): a module programs the IOMMU to allow DMA to
// the ghost frame, then directs a device to copy the frame out.
func DMAAttack(k *kernel.Kernel, victim *kernel.Proc, ghostVA hw.Virt, secret []byte) Result {
	r := Result{Name: "dma"}
	frame, ok := findGhostFrame(k, victim, ghostVA)
	if !ok {
		r.Detail = "could not locate ghost frame"
		return r
	}
	mod, err := k.LoadModule(BuildDMAModuleIR())
	if err != nil {
		r.Detail = fmt.Sprintf("module rejected: %v", err)
		return r
	}
	if _, err := k.RunModuleFunc(mod, "expose_frame", uint64(frame)); err != nil {
		r.Detail = fmt.Sprintf("IOMMU programming refused: %v", err)
		return r
	}
	data, err := k.M.DMA.CopyFromFrame(frame)
	if err != nil {
		r.Detail = fmt.Sprintf("DMA blocked: %v", err)
		return r
	}
	if bytes.Contains(data, secret) {
		r.Succeeded = true
		r.Detail = "DMA'd ghost frame contains the secret"
	} else {
		r.Detail = "DMA succeeded but secret absent"
	}
	return r
}

// StaleTLBAttack (SMP frame-recycling): the hostile OS primes a remote
// CPU's TLB with a translation to a frame it owns, unmaps and frees the
// frame, and steers the free-list so the victim's next ghost allocation
// recycles exactly that frame. Unless the VM runs the TLB-shootdown
// protocol before retyping the frame as ghost memory, the remote CPU
// retains a stale window through which kernel code reads the secret.
//
// The priming is staged from a getpid() interposition — like the §7
// rootkit's read() hook, an innocuous kernel entry the OS controls —
// so it runs on the victim's own dispatch, immediately before the
// ghost allocation, with no scheduler activity in between.
func StaleTLBAttack(k *kernel.Kernel, secret []byte) Result {
	r := Result{Name: "stale-tlb"}
	if k.M.NumCPUs() < 2 {
		r.Detail = "requires a multi-CPU machine (no remote TLB to go stale)"
		return r
	}
	// A kernel-chosen VA outside the ghost partition for the spy alias.
	const spyVA = hw.Virt(0x00005a1e50000000)
	var (
		spyCPU   int
		primed   bool
		primeErr error
		done     bool
	)
	prime := func() {
		// Run on a CPU the victim is not executing on right now; the
		// current dispatch keeps the victim here until it yields, so the
		// spy CPU's TLB entry survives unless something flushes it.
		spyCPU = (k.M.CurCPU() + 1) % k.M.NumCPUs()
		root, err := k.HAL.NewAddressSpace()
		if err != nil {
			primeErr = err
			return
		}
		f, err := k.M.Mem.AllocFrame(hw.FrameUserData)
		if err != nil {
			primeErr = err
			return
		}
		if err := k.HAL.MapPage(root, spyVA, f, hw.PTEWrite); err != nil {
			primeErr = err
			return
		}
		// Touch the mapping from the spy CPU in kernel mode: its TLB now
		// caches spyVA -> f.
		spy := k.M.CPUs[spyCPU]
		spy.MMU.SetRoot(root)
		spy.Regs.Priv = hw.Supervisor
		if _, err := spy.LoadVirt(spyVA, 8); err != nil {
			primeErr = err
			return
		}
		// Unmap (local invlpg only — no shootdown: the OS is hostile)
		// and free. The LIFO free-list hands f to the very next
		// allocation: the victim's ghost page.
		if err := k.HAL.UnmapPage(root, spyVA); err != nil {
			primeErr = err
			return
		}
		if err := k.M.Mem.FreeFrame(f); err != nil {
			primeErr = err
			return
		}
	}
	orig := k.SetSyscallHandler(kernel.SysGetpid, func(k *kernel.Kernel, p *kernel.Proc, ic core.IContext) uint64 {
		if !primed {
			primed = true
			prime()
		}
		return uint64(p.PID)
	})
	defer k.SetSyscallHandler(kernel.SysGetpid, orig)
	// The victim: an application that allocates ghost memory for its
	// secret. Its getpid() hands the hostile OS the kernel entry it
	// needs; the ghost allocation that follows recycles the primed
	// frame in the same dispatch.
	if _, err := k.Spawn("ghost-victim", func(p *kernel.Proc) {
		p.Syscall(kernel.SysGetpid)
		va, err := p.AllocGM(1)
		if err != nil {
			return
		}
		p.Write(uint64(va), secret)
		done = true
		// Stay alive holding the ghost page while the OS reads; exit
		// would scrub the frame.
		p.Syscall(kernel.SysYield)
	}); err != nil {
		r.Detail = fmt.Sprintf("spawn victim: %v", err)
		return r
	}
	if !k.RunUntil(func() bool { return done }) {
		if primeErr != nil {
			r.Detail = fmt.Sprintf("priming failed: %v", primeErr)
			return r
		}
		r.Detail = "victim never stored its secret"
		return r
	}
	if primeErr != nil {
		r.Detail = fmt.Sprintf("priming failed: %v", primeErr)
		return r
	}
	// Read the victim's ghost frame through the (possibly stale) remote
	// translation.
	spy := k.M.CPUs[spyCPU]
	spy.Regs.Priv = hw.Supervisor
	got := make([]byte, len(secret))
	for i := range got {
		v, err := spy.LoadVirt(spyVA+hw.Virt(i), 1)
		if err != nil {
			r.Detail = fmt.Sprintf("stale read blocked: %v", err)
			return r
		}
		got[i] = byte(v)
	}
	if bytes.Equal(got, secret) {
		r.Succeeded = true
		r.Detail = fmt.Sprintf("cpu%d read the secret through a stale TLB entry", spyCPU)
	} else {
		r.Detail = "stale translation readable but frame was scrubbed"
	}
	return r
}

// ICTamperAttack (paper §2.2.4): from a read() interposition, grab the
// saved interrupt context and redirect the victim's program counter to
// planted exploit code.
func ICTamperAttack(k *kernel.Kernel, victimPID int, targetAddr uint64, targetLen int, exfil string) *ICTamper {
	t := &ICTamper{k: k, victimPID: victimPID, targetAddr: targetAddr,
		targetLen: targetLen, exfil: exfil}
	t.orig = k.SetSyscallHandler(kernel.SysRead, t.handler)
	return t
}

// ICTamper is the installed interrupted-state tampering hook.
type ICTamper struct {
	k          *kernel.Kernel
	orig       kernel.SyscallHandler
	victimPID  int
	targetAddr uint64
	targetLen  int
	exfil      string
	armed      bool
	// Outcome:
	Fired    bool
	GotFrame bool
	FrameErr string
}

// Arm enables the hook for the next victim read.
func (t *ICTamper) Arm() { t.armed = true }

// Uninstall restores the read handler.
func (t *ICTamper) Uninstall() { t.k.SetSyscallHandler(kernel.SysRead, t.orig) }

func (t *ICTamper) handler(k *kernel.Kernel, p *kernel.Proc, ic core.IContext) uint64 {
	if t.armed && p.PID == t.victimPID {
		t.armed = false
		t.Fired = true
		rf, ok := ic.(core.RawFramer)
		if !ok {
			// Virtual Ghost: the saved state lives in VM memory and
			// the kernel's handle has no raw accessor. There is no
			// other path.
			t.FrameErr = "interrupt context is opaque (saved in SVA VM memory)"
		} else {
			t.GotFrame = true
			victim := p
			addr, target, length, exfil := uint64(0x00005e11c0de0000), t.targetAddr, t.targetLen, t.exfil
			file, _ := k.OpenKernelFile(exfil)
			fd := k.InstallRawFD(victim, file)
			k.PlantCode(addr, func(vp *kernel.Proc, args []uint64) {
				secret := vp.Read(target, length)
				buf := vp.Alloc(length)
				vp.Write(buf, secret)
				vp.Syscall(kernel.SysWrite, uint64(fd), buf, uint64(length))
			})
			// Redirect the interrupted program counter: when the trap
			// returns, the CPU resumes in the exploit.
			rf.RawFrame().Regs.RIP = addr
		}
	}
	return t.orig(k, p, ic)
}

// IagoMmapAttack (paper §2.2.5): replace the mmap handler so it returns
// a pointer into the victim's own ghost partition.
func IagoMmapAttack(k *kernel.Kernel) (restore func()) {
	orig := k.SetSyscallHandler(kernel.SysMmap, func(k *kernel.Kernel, p *kernel.Proc, ic core.IContext) uint64 {
		return uint64(hw.GhostBase) + 0x1000
	})
	return func() { k.SetSyscallHandler(kernel.SysMmap, orig) }
}

// RandomnessAttack (paper §2.2.5): make the OS randomness source return
// the same value forever.
func RandomnessAttack(k *kernel.Kernel) (restore func()) {
	k.SetDevRandomHook(func() uint64 { return 4 }) // chosen by fair dice roll
	return func() { k.SetDevRandomHook(nil) }
}

// SwapInspectionAttack (paper §2.2.2): the OS swaps out the victim's
// ghost page and greps its swap storage for the secret.
func SwapInspectionAttack(k *kernel.Kernel, victim *kernel.Proc, ghostVA hw.Virt, secret []byte) Result {
	r := Result{Name: "swap-inspect"}
	blob, ok := k.SwappedGhostBlob(victim.PID, ghostVA)
	if !ok {
		r.Detail = "page not swapped out"
		return r
	}
	if bytes.Contains(blob, secret) {
		r.Succeeded = true
		r.Detail = "swap blob contains the plaintext secret"
	} else {
		r.Detail = fmt.Sprintf("swap blob is opaque (%d bytes, no plaintext)", len(blob))
	}
	return r
}

// BuildAsmModuleIR builds a module containing hand-written assembly —
// the kind of kernel code that is "not even expressible" once all OS
// code must pass through the Virtual Ghost compiler.
func BuildAsmModuleIR() *vir.Module {
	m := vir.NewModule("asmmod")
	b := vir.NewFunction("asm_backdoor", 0)
	b.Asm("mov %cr3, %rax")
	b.Ret(vir.Imm(0))
	if err := m.AddFunc(b.Fn()); err != nil {
		panic(err)
	}
	return m
}

// AsmModuleAttack attempts to load the assembly-bearing module.
func AsmModuleAttack(k *kernel.Kernel) Result {
	r := Result{Name: "asm-module"}
	if _, err := k.LoadModule(BuildAsmModuleIR()); err != nil {
		r.Detail = fmt.Sprintf("translator refused: %v", err)
		return r
	}
	r.Succeeded = true
	r.Detail = "module with inline assembly loaded"
	return r
}

// BuildROPModuleIR builds a kernel function with a classic stack smash:
// it overwrites its own return address with an attacker-chosen target
// and returns.
func BuildROPModuleIR() *vir.Module {
	m := vir.NewModule("ropmod")
	b := vir.NewFunction("vulnerable", 1)
	// The "overflow": corrupt the return address with param 0.
	b.Call("__corrupt_return", b.Param(0))
	b.Ret(vir.Imm(0))
	if err := m.AddFunc(b.Fn()); err != nil {
		panic(err)
	}

	// An indirect-call sibling: call through an attacker-controlled
	// function pointer.
	c := vir.NewFunction("call_fptr", 1)
	c.CallInd(c.Param(0))
	c.Ret(vir.Imm(0))
	if err := m.AddFunc(c.Fn()); err != nil {
		panic(err)
	}
	return m
}

// buildGadgetIR is the attacker's payload function, planted outside
// kernel code space (e.g. in sprayed memory): it logs a marker proving
// arbitrary kernel control flow.
func buildGadgetIR() *vir.Function {
	b := vir.NewFunction("rop_gadget", 0)
	// The marker "PWNED!" as little-endian bytes.
	b.Call("klog_acc", b.Const(0x0000_21_44_45_4e_57_50)) // "PWNED!"
	b.Call("klog_flush")
	b.Ret(vir.Imm(0))
	return b.Fn()
}

// gadgetAddr is a user-space address where the payload is sprayed.
const gadgetAddr = 0x0000414141410000

// ROPAttack (kernel CFI test): load a module with a stack-smashable
// function, plant a gadget outside kernel code space, smash the return
// address, and see whether control reaches the gadget.
func ROPAttack(k *kernel.Kernel, indirect bool) Result {
	name := "rop-return"
	fn := "vulnerable"
	if indirect {
		name = "fptr-hijack"
		fn = "call_fptr"
	}
	r := Result{Name: name}
	mod, err := k.LoadModule(BuildROPModuleIR())
	if err != nil {
		r.Detail = fmt.Sprintf("module rejected: %v", err)
		return r
	}
	k.HAL.CodeSpace().PlantForeign(gadgetAddr, buildGadgetIR())
	_, err = k.RunModuleFunc(mod, fn, gadgetAddr)
	if err != nil {
		r.Detail = fmt.Sprintf("control transfer blocked: %v", err)
		return r
	}
	if k.Console().Contains("PWNED") {
		r.Succeeded = true
		r.Detail = "gadget executed with kernel privilege"
	} else {
		r.Detail = "transfer completed but gadget did not run"
	}
	return r
}
