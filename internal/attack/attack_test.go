package attack

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/libc"
)

const secretString = "SSH-AGENT-SECRET-KEY-MATERIAL-0xA11CE"

func boot(t *testing.T, mode core.Mode) *kernel.Kernel {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	var hal core.HAL
	var err error
	if mode == core.ModeVirtualGhost {
		hal, err = core.NewVM(m)
	} else {
		hal, err = core.NewNativeHAL(m)
	}
	if err != nil {
		t.Fatalf("hal: %v", err)
	}
	k, err := kernel.Boot(hal)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return k
}

// victim is a process that stores a secret in its (ghost) heap and then
// reads from a file in a loop — the behaviour the rootkit's read()
// interposition preys on.
type victimState struct {
	pid        int
	secretAddr uint64
	ready      bool
	intact     bool
	finished   bool
	// hold keeps the victim alive (blocked) after its reads until
	// release is set, so attacks can operate on the live process.
	hold    bool
	release bool
}

func spawnVictim(t *testing.T, k *kernel.Kernel, vs *victimState, reads int) {
	t.Helper()
	k.WriteKernelFile("/mail.txt", []byte("dear victim, please read me"))
	_, err := k.Spawn("ssh-agent", func(p *kernel.Proc) {
		l, err := libc.NewGhosting(p)
		if err != nil {
			t.Errorf("libc: %v", err)
			return
		}
		sp, err := l.Malloc(len(secretString))
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		l.WriteGhost(sp, []byte(secretString))
		vs.pid = p.PID
		vs.secretAddr = uint64(sp)
		vs.ready = true
		// Give the attacker a window to arm before the reads begin.
		p.Syscall(kernel.SysYield)
		fd, err := l.Open("/mail.txt", kernel.ORdOnly)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		buf, _ := l.Malloc(64)
		for i := 0; i < reads; i++ {
			p.Syscall(kernel.SysLseek, uint64(fd), 0, 0)
			if _, err := l.Read(fd, buf, 16); err != nil {
				t.Errorf("victim read: %v", err)
			}
		}
		vs.intact = bytes.Equal(l.ReadGhost(sp, len(secretString)), []byte(secretString))
		vs.finished = true
		if vs.hold {
			p.Syscall(kernel.SysYield) // let the test observe us alive
			for !vs.release {
				p.Syscall(kernel.SysYield)
			}
		}
	})
	if err != nil {
		t.Fatalf("spawn victim: %v", err)
	}
}

// TestRootkitDirectRead reproduces §7 attack 1 on both configurations.
func TestRootkitDirectRead(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := boot(t, mode)
		vs := &victimState{}
		spawnVictim(t, k, vs, 3)
		if !k.RunUntil(func() bool { return vs.ready }) {
			t.Fatalf("[%v] victim never became ready", mode)
		}
		rk, err := InstallRootkit(k)
		if err != nil {
			t.Fatalf("[%v] install rootkit: %v", mode, err)
		}
		rk.Arm(vs.pid, vs.secretAddr, len(secretString), DirectRead)
		k.RunUntilIdle()
		if !rk.Fired {
			t.Fatalf("[%v] rootkit never fired", mode)
		}
		leaked := k.Console().Contains(secretString[:16])
		switch mode {
		case core.ModeNative:
			if !leaked {
				t.Errorf("native: direct-read attack should leak the secret to the console")
			}
		case core.ModeVirtualGhost:
			if leaked {
				t.Errorf("virtual ghost: direct-read attack leaked the secret")
			}
			if !vs.finished || !vs.intact {
				t.Errorf("virtual ghost: victim should continue unaffected (finished=%v intact=%v)",
					vs.finished, vs.intact)
			}
		}
	}
}

// TestRootkitSigInject reproduces §7 attack 2 on both configurations.
func TestRootkitSigInject(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := boot(t, mode)
		vs := &victimState{}
		spawnVictim(t, k, vs, 5)
		if !k.RunUntil(func() bool { return vs.ready }) {
			t.Fatalf("[%v] victim never became ready", mode)
		}
		rk, err := InstallRootkit(k)
		if err != nil {
			t.Fatalf("[%v] install rootkit: %v", mode, err)
		}
		rk.Arm(vs.pid, vs.secretAddr, len(secretString), SigInject)
		k.RunUntilIdle()
		if !rk.Fired {
			t.Fatalf("[%v] rootkit never fired", mode)
		}
		loot, _ := k.ReadKernelFile(rk.ExfilPath)
		stolen := bytes.Contains(loot, []byte(secretString))
		switch mode {
		case core.ModeNative:
			if !stolen {
				t.Errorf("native: signal-injection attack should exfiltrate the secret (got %q)", loot)
			}
		case core.ModeVirtualGhost:
			if stolen {
				t.Errorf("virtual ghost: signal-injection attack exfiltrated the secret")
			}
			if k.Stats().SignalsBlocked == 0 {
				t.Errorf("virtual ghost: expected sva.ipush.function to refuse the injected handler")
			}
			if !vs.finished || !vs.intact {
				t.Errorf("virtual ghost: victim should continue unaffected (finished=%v intact=%v)",
					vs.finished, vs.intact)
			}
		}
	}
}

// runWithGhostSecret spawns a victim, waits until its secret is in
// (ghost) memory, and returns the process and the page VA.
func runWithGhostSecret(t *testing.T, k *kernel.Kernel) (*kernel.Proc, hw.Virt) {
	t.Helper()
	vs := &victimState{hold: true}
	spawnVictim(t, k, vs, 1)
	if !k.RunUntil(func() bool { return vs.finished }) {
		t.Fatalf("victim never finished setup")
	}
	p, ok := k.ProcByPID(vs.pid)
	if !ok {
		t.Fatalf("victim vanished")
	}
	return p, hw.Virt(vs.secretAddr)
}

func TestMMURemapAttack(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := boot(t, mode)
		victim, secretVA := runWithGhostSecret(t, k)
		res := MMURemapAttack(k, victim, secretVA, []byte(secretString))
		if (mode == core.ModeNative) != res.Succeeded {
			t.Errorf("[%v] %s", mode, res)
		}
	}
}

func TestDMAAttack(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := boot(t, mode)
		victim, secretVA := runWithGhostSecret(t, k)
		res := DMAAttack(k, victim, hw.PageOf(secretVA), []byte(secretString))
		if (mode == core.ModeNative) != res.Succeeded {
			t.Errorf("[%v] %s", mode, res)
		}
	}
}

func TestICTamperAttack(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := boot(t, mode)
		vs := &victimState{}
		spawnVictim(t, k, vs, 4)
		if !k.RunUntil(func() bool { return vs.ready }) {
			t.Fatalf("victim never ready")
		}
		tamper := ICTamperAttack(k, vs.pid, vs.secretAddr, len(secretString), "/ic.stolen")
		tamper.Arm()
		k.RunUntilIdle()
		if !tamper.Fired {
			t.Fatalf("[%v] tamper hook never fired", mode)
		}
		loot, _ := k.ReadKernelFile("/ic.stolen")
		stolen := bytes.Contains(loot, []byte(secretString))
		switch mode {
		case core.ModeNative:
			if !tamper.GotFrame || !stolen {
				t.Errorf("native: IC tampering should steal the secret (frame=%v stolen=%v)",
					tamper.GotFrame, stolen)
			}
		case core.ModeVirtualGhost:
			if tamper.GotFrame || stolen {
				t.Errorf("virtual ghost: IC should be unreachable (frame=%v stolen=%v)",
					tamper.GotFrame, stolen)
			}
		}
	}
}

func TestIagoMmap(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := boot(t, mode)
		restore := IagoMmapAttack(k)
		var rejected bool
		_, err := k.Spawn("app", func(p *kernel.Proc) {
			l, err := libc.NewGhosting(p)
			if err != nil {
				// NewGhosting itself mmaps a staging buffer; under the
				// Iago handler that fails safely too.
				rejected = true
				return
			}
			if _, err := l.Mmap(hw.PageSize); err != nil {
				rejected = true
			}
		})
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		k.RunUntilIdle()
		restore()
		// The libc Iago defence protects on both configurations (it is
		// application-side instrumentation).
		if !rejected {
			t.Errorf("[%v] ghost-partition mmap pointer was accepted", mode)
		}
	}
}

func TestRandomnessAttack(t *testing.T) {
	k := boot(t, core.ModeVirtualGhost)
	restore := RandomnessAttack(k)
	defer restore()
	var osVals, vmVals []uint64
	_, err := k.Spawn("app", func(p *kernel.Proc) {
		for i := 0; i < 4; i++ {
			osVals = append(osVals, p.Syscall(kernel.SysRandom))
			vmVals = append(vmVals, p.TrustedRandom())
		}
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	k.RunUntilIdle()
	allSame := true
	for _, v := range osVals {
		if v != osVals[0] {
			allSame = false
		}
	}
	if !allSame {
		t.Errorf("OS randomness should be fully attacker-controlled, got %v", osVals)
	}
	vmSame := true
	for _, v := range vmVals {
		if v != vmVals[0] {
			vmSame = false
		}
	}
	if vmSame {
		t.Errorf("trusted randomness should be unaffected by the hook, got %v", vmVals)
	}
}

func TestSwapAttacks(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := boot(t, mode)
		var page hw.Virt
		var pid int
		var secretAfter []byte
		var phase = 0
		_, err := k.Spawn("swapper", func(p *kernel.Proc) {
			va, err := p.AllocGM(1)
			if err != nil {
				t.Fatalf("allocgm: %v", err)
			}
			page = va
			pid = p.PID
			p.Write(uint64(va), []byte(secretString))
			// Ask the OS to swap the page out.
			if ret := p.Syscall(kernel.SysSwapOut, uint64(va)); ret != 0 {
				t.Fatalf("[%v] swap-out failed: %d", mode, int64(ret))
			}
			phase = 1
			p.Syscall(kernel.SysYield)
			// Touch the page: faults, swap-in, secret restored.
			secretAfter = p.Read(uint64(va), len(secretString))
			phase = 2
		})
		if err != nil {
			t.Fatalf("spawn: %v", err)
		}
		if !k.RunUntil(func() bool { return phase >= 1 }) {
			t.Fatalf("[%v] never swapped", mode)
		}
		res := SwapInspectionAttack(k, mustProc(t, k, pid), page, []byte(secretString))
		if (mode == core.ModeNative) != res.Succeeded {
			t.Errorf("[%v] %s", mode, res)
		}
		k.RunUntilIdle()
		if phase != 2 || !bytes.Equal(secretAfter, []byte(secretString)) {
			t.Errorf("[%v] swap-in did not restore the secret (phase=%d got %q)", mode, phase, secretAfter)
		}
	}
}

func TestSwapTamperDetected(t *testing.T) {
	k := boot(t, core.ModeVirtualGhost)
	var page hw.Virt
	var pid int
	died := false
	var phase = 0
	_, err := k.Spawn("swapper", func(p *kernel.Proc) {
		va, _ := p.AllocGM(1)
		page, pid = va, p.PID
		p.Write(uint64(va), []byte(secretString))
		p.Syscall(kernel.SysSwapOut, uint64(va))
		phase = 1
		p.Syscall(kernel.SysYield)
		// Touching the tampered page must NOT yield corrupt data; the
		// VM rejects the blob and the process dies rather than
		// consuming attacker bytes.
		_ = p.Read(uint64(va), 8)
		phase = 2
	})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if !k.RunUntil(func() bool { return phase >= 1 }) {
		t.Fatalf("never swapped")
	}
	if !k.TamperSwappedGhostBlob(pid, page, func(b []byte) []byte {
		b[len(b)-1] ^= 0xff
		return b
	}) {
		t.Fatalf("no blob to tamper")
	}
	k.RunUntilIdle()
	died = phase != 2
	if !died {
		t.Errorf("tampered swap blob was accepted")
	}
}

func TestAsmModuleRejectedUnderVG(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := boot(t, mode)
		res := AsmModuleAttack(k)
		if (mode == core.ModeNative) != res.Succeeded {
			t.Errorf("[%v] %s", mode, res)
		}
		if mode == core.ModeVirtualGhost && !strings.Contains(res.Detail, "assembly") {
			t.Errorf("expected inline-assembly rejection, got %s", res.Detail)
		}
	}
}

func TestROPAndFptrHijack(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		for _, indirect := range []bool{false, true} {
			k := boot(t, mode)
			res := ROPAttack(k, indirect)
			if (mode == core.ModeNative) != res.Succeeded {
				t.Errorf("[%v indirect=%v] %s", mode, indirect, res)
			}
		}
	}
}

// TestBinaryTamperRefused: modifying an installed binary prevents it
// from starting under Virtual Ghost (security guarantee 4).
func TestBinaryTamperRefused(t *testing.T) {
	k := boot(t, core.ModeVirtualGhost)
	vm := k.HAL.(*core.VM)
	bin, err := vm.Installer().Install("/bin/secure", []byte("real image"), make([]byte, 32))
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	// The hostile OS swaps in different code for the same key section.
	bin.Image = []byte("evil image")
	ran := false
	k.InstallProgram("/bin/secure", bin, func(p *kernel.Proc) { ran = true })
	if _, err := k.SpawnProgram("/bin/secure"); err == nil {
		t.Fatalf("tampered binary was accepted")
	}
	k.RunUntilIdle()
	if ran {
		t.Errorf("tampered binary executed")
	}
}

func mustProc(t *testing.T, k *kernel.Kernel, pid int) *kernel.Proc {
	t.Helper()
	p, ok := k.ProcByPID(pid)
	if !ok {
		t.Fatalf("pid %d vanished", pid)
	}
	return p
}

// TestRootkitStealthAndUninstall: the interposed read() must still
// service reads correctly (the rootkit hides), and Uninstall restores
// the pristine handler.
func TestRootkitStealthAndUninstall(t *testing.T) {
	k := boot(t, core.ModeVirtualGhost)
	k.WriteKernelFile("/cover.txt", []byte("innocuous file contents"))
	rk, err := InstallRootkit(k)
	if err != nil {
		t.Fatal(err)
	}
	var first, second []byte
	vs := &victimState{}
	_, err = k.Spawn("reader", func(p *kernel.Proc) {
		vs.pid = p.PID
		vs.ready = true
		p.Syscall(kernel.SysYield)
		path := p.PushString("/cover.txt")
		fd := p.Syscall(kernel.SysOpen, path, kernel.ORdOnly)
		buf := p.Alloc(64)
		n := p.Syscall(kernel.SysRead, fd, buf, 64)
		first = p.Read(buf, int(n))
		// Second read after the rootkit is gone.
		p.Syscall(kernel.SysYield)
		p.Syscall(kernel.SysLseek, fd, 0, 0)
		n = p.Syscall(kernel.SysRead, fd, buf, 64)
		second = p.Read(buf, int(n))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !k.RunUntil(func() bool { return vs.ready }) {
		t.Fatal("victim not ready")
	}
	rk.Arm(vs.pid, 0xffffff0000000000, 16, DirectRead)
	if !k.RunUntil(func() bool { return rk.Fired }) {
		t.Fatal("never fired")
	}
	rk.Uninstall()
	k.RunUntilIdle()
	want := "innocuous file contents"
	if string(first) != want || string(second) != want {
		t.Errorf("reads disturbed: %q / %q", first, second)
	}
}

// TestICTamperUninstall restores the read handler.
func TestICTamperUninstall(t *testing.T) {
	k := boot(t, core.ModeNative)
	tamper := ICTamperAttack(k, 999, 0, 0, "/none")
	tamper.Uninstall()
	// Reads must work normally afterwards.
	k.WriteKernelFile("/f", []byte("abc"))
	var got []byte
	if _, err := k.Spawn("r", func(p *kernel.Proc) {
		fd := p.Syscall(kernel.SysOpen, p.PushString("/f"), kernel.ORdOnly)
		buf := p.Alloc(8)
		n := p.Syscall(kernel.SysRead, fd, buf, 8)
		got = p.Read(buf, int(n))
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if string(got) != "abc" {
		t.Errorf("read after uninstall = %q", got)
	}
}

// TestAttackOnWrongPIDDoesNothing: the rootkit is victim-targeted; other
// processes' reads do not trigger it.
func TestAttackOnWrongPIDDoesNothing(t *testing.T) {
	k := boot(t, core.ModeNative)
	k.WriteKernelFile("/f", []byte("x"))
	rk, err := InstallRootkit(k)
	if err != nil {
		t.Fatal(err)
	}
	rk.Arm(4242, 0x1000, 8, DirectRead)
	if _, err := k.Spawn("bystander", func(p *kernel.Proc) {
		fd := p.Syscall(kernel.SysOpen, p.PushString("/f"), kernel.ORdOnly)
		buf := p.Alloc(8)
		p.Syscall(kernel.SysRead, fd, buf, 8)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if rk.Fired {
		t.Errorf("rootkit fired on a non-victim process")
	}
}
