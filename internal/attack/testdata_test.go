package attack

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vir"
)

var update = flag.Bool("update", false, "rewrite the testdata .vir golden files")

// moduleGoldens pins each attack module's IR to a checked-in .vir text
// file. The files exist so CI can lint the attack suite standalone with
// cmd/vircheck; this test keeps them from drifting out of sync with the
// Go builders (regenerate with `go test ./internal/attack -update`).
func moduleGoldens() map[string]*vir.Module {
	return map[string]*vir.Module{
		"maliciousmod.vir": BuildModuleIR(),
		"dmamod.vir":       BuildDMAModuleIR(),
		"asmmod.vir":       BuildAsmModuleIR(),
		"ropmod.vir":       BuildROPModuleIR(),
	}
}

func TestModuleIRTestdataInSync(t *testing.T) {
	for name, m := range moduleGoldens() {
		path := filepath.Join("testdata", name)
		text := vir.FormatModule(m)
		if *update {
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update)", path, err)
		}
		if string(want) != text {
			t.Errorf("%s out of sync with its builder (regenerate with -update)", path)
		}
		// The text form must parse back to the same canonical IR —
		// the files are the vircheck-facing source of truth.
		rt, err := vir.ParseModule(string(want))
		if err != nil {
			t.Fatalf("%s does not parse: %v", path, err)
		}
		if vir.FormatModule(rt) != text {
			t.Errorf("%s does not round-trip canonically", path)
		}
	}
}
