// Package attack implements the hostile-OS attack suite of paper §2.2
// and §7: a Kong-style loadable rootkit module that interposes on the
// read() system call and mounts (1) a direct ghost-memory read and
// (2) a signal-handler code-injection exfiltration, plus the remaining
// attack vectors — MMU remapping, DMA, interrupted-state tampering,
// Iago mmap and randomness attacks, swap inspection/tampering, binary
// substitution, and kernel control-flow hijacking (return-address
// smash / indirect-call overwrite).
//
// Every attack is written to *succeed on the native configuration* and
// is expected to be defeated by the corresponding Virtual Ghost
// mechanism; the tests and cmd/vgattack run each attack on both
// configurations and compare.
package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/vir"
)

// Mode selects which of the two §7 rootkit attacks fires on the
// victim's next read().
type Mode int

const (
	// DirectRead loads the victim's secret directly from its address
	// space inside kernel code and logs it to the console.
	DirectRead Mode = iota
	// SigInject maps a buffer into the victim, copies exploit code in,
	// points a signal handler at it, and signals the victim so the
	// exploit runs in the victim's context and writes the secret to an
	// attacker-chosen file.
	SigInject
)

// Rootkit is the installed malicious module.
type Rootkit struct {
	k    *kernel.Kernel
	mod  *kernel.Module
	orig kernel.SyscallHandler

	// Victim targeting, configurable by a non-privileged user (as in
	// Kong's design).
	VictimPID  int
	TargetAddr uint64
	TargetLen  int
	ExfilPath  string
	Mode       Mode

	armed bool
	// Fired reports whether the attack has triggered.
	Fired bool
	// FireErr records any error the attack machinery hit when it
	// fired (e.g. the VM refusing sva.ipush.function).
	FireErr error
}

// BuildModuleIR constructs the malicious module's IR: the data-stealing
// loop is genuine kernel code that the Virtual Ghost translator will
// sandbox (and the native translator will not).
func BuildModuleIR() *vir.Module {
	m := vir.NewModule("maliciousmod")

	// steal_direct(addr, nbytes): read the victim's memory 8 bytes at
	// a time and accumulate it into the kernel log.
	b := vir.NewFunction("steal_direct", 2)
	addr := b.Param(0)
	nbytes := b.Param(1)
	i := b.Mov(vir.Imm(0))
	b.Br("loop")
	b.NewBlock("loop")
	cond := b.CmpLT(i, nbytes)
	b.CondBr(cond, "body", "done")
	b.NewBlock("body")
	ea := b.Add(addr, i)
	v := b.Load(ea, 8)
	b.Call("klog_acc", v)
	next := b.Add(i, vir.Imm(8))
	b.Assign(i, next)
	b.Br("loop")
	b.NewBlock("done")
	b.Call("klog_flush")
	b.Ret(vir.Imm(0))
	if err := m.AddFunc(b.Fn()); err != nil {
		panic(err)
	}

	// mod_init(): innocuous-looking initialisation.
	ini := vir.NewFunction("mod_init", 0)
	ini.Ret(vir.Imm(0))
	if err := m.AddFunc(ini.Fn()); err != nil {
		panic(err)
	}
	return m
}

// InstallRootkit loads the malicious module (through the HAL's
// translator — under Virtual Ghost it comes back sandboxed + CFI'd) and
// interposes on the read() system call handler.
func InstallRootkit(k *kernel.Kernel) (*Rootkit, error) {
	mod, err := k.LoadModule(BuildModuleIR())
	if err != nil {
		return nil, fmt.Errorf("attack: module load: %w", err)
	}
	rk := &Rootkit{k: k, mod: mod, ExfilPath: "/tmp.stolen"}
	rk.orig = k.SetSyscallHandler(kernel.SysRead, rk.readHandler)
	return rk, nil
}

// Arm configures the victim and enables the trap.
func (rk *Rootkit) Arm(victimPID int, targetAddr uint64, targetLen int, mode Mode) {
	rk.VictimPID = victimPID
	rk.TargetAddr = targetAddr
	rk.TargetLen = targetLen
	rk.Mode = mode
	rk.armed = true
	rk.Fired = false
	rk.FireErr = nil
}

// Uninstall restores the original read() handler.
func (rk *Rootkit) Uninstall() {
	rk.k.SetSyscallHandler(kernel.SysRead, rk.orig)
}

// readHandler is the replaced read() system-call handler: it performs
// the attack when the victim reads from any descriptor, then services
// the read normally so the victim suspects nothing.
func (rk *Rootkit) readHandler(k *kernel.Kernel, p *kernel.Proc, ic core.IContext) uint64 {
	if rk.armed && p.PID == rk.VictimPID {
		rk.armed = false
		rk.Fired = true
		switch rk.Mode {
		case DirectRead:
			rk.fireDirect(p)
		case SigInject:
			rk.fireSigInject(p)
		}
	}
	return rk.orig(k, p, ic)
}

// fireDirect runs the module's data-stealing loop over the victim's
// memory. The module code executes exactly as the translator emitted
// it: uninstrumented loads natively, mask-guarded loads under Virtual
// Ghost.
func (rk *Rootkit) fireDirect(p *kernel.Proc) {
	_, err := rk.k.RunModuleFunc(rk.mod, "steal_direct",
		rk.TargetAddr, uint64(rk.TargetLen))
	rk.FireErr = err
}

// fireSigInject is the paper's second attack, step by step:
// open the exfiltration file, allocate memory in the victim's address
// space via mmap, copy exploit code into the buffer, install a signal
// handler pointing at it, and send the signal.
func (rk *Rootkit) fireSigInject(victim *kernel.Proc) {
	k := rk.k
	// 1. The malicious module opens the file the data should be
	//    written to and plants it in the victim's descriptor table.
	file, ok := k.OpenKernelFile(rk.ExfilPath)
	if !ok {
		rk.FireErr = fmt.Errorf("attack: cannot open exfil file")
		return
	}
	exfilFD := k.InstallRawFD(victim, file)
	// 2. Allocate memory in the victim's address space via mmap().
	buf, ok := k.MmapIntoProcess(victim, (rk.TargetLen+4095)/4096+1)
	if !ok {
		rk.FireErr = fmt.Errorf("attack: mmap into victim failed")
		return
	}
	// 3. Copy the exploit code into the buffer. When (if) control ever
	//    reaches this address, the code runs *in the victim's context*
	//    with full access to the victim's ghost memory — copying the
	//    secret into the traditional-memory buffer and write()ing it
	//    out.
	target, length, path := rk.TargetAddr, rk.TargetLen, rk.ExfilPath
	k.PlantCode(uint64(buf), func(vp *kernel.Proc, args []uint64) {
		secret := vp.Read(target, length)
		vp.Write(uint64(buf)+64, secret)
		vp.Syscall(kernel.SysWrite, uint64(exfilFD), uint64(buf)+64, uint64(len(secret)))
		_ = path
	})
	// 4. Set up a signal handler for the victim that calls the exploit
	//    code (directly in the kernel's sigacts — no libc, no
	//    sva.permitFunction).
	k.SetRawSignalHandler(victim, kernel.SIGUSR2, uint64(buf))
	// 5. Send the signal. Delivery happens on this very trap's
	//    return-to-user path; under Virtual Ghost sva.ipush.function
	//    will refuse the unregistered target.
	k.PostSignal(victim, kernel.SIGUSR2)
}
