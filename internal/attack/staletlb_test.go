package attack

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// bootSMP boots a kernel on an n-CPU machine.
func bootSMP(t *testing.T, mode core.Mode, n int) *kernel.Kernel {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.NumCPUs = n
	m := hw.NewMachine(cfg)
	var hal core.HAL
	var err error
	if mode == core.ModeVirtualGhost {
		hal, err = core.NewVM(m)
	} else {
		hal, err = core.NewNativeHAL(m)
	}
	if err != nil {
		t.Fatalf("hal: %v", err)
	}
	k, err := kernel.Boot(hal)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	return k
}

// TestStaleTLBAttack: on native the recycled ghost frame is readable
// through the remote CPU's stale translation; Virtual Ghost's shootdown
// protocol flushes it before the frame is retyped.
func TestStaleTLBAttack(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		k := bootSMP(t, mode, 2)
		res := StaleTLBAttack(k, []byte(secretString))
		if (mode == core.ModeNative) != res.Succeeded {
			t.Errorf("[%v] %s", mode, res)
		}
		if mode == core.ModeVirtualGhost && !strings.Contains(res.Detail, "blocked") {
			t.Errorf("expected the stale read to fault after shootdown, got %s", res)
		}
	}
}

// TestStaleTLBAttackNeedsShootdown proves the shootdown protocol is
// load-bearing: with TLB coherence disabled (no shootdowns, no stale-
// translation guard) the same attack leaks the secret on Virtual Ghost.
func TestStaleTLBAttackNeedsShootdown(t *testing.T) {
	k := bootSMP(t, core.ModeVirtualGhost, 2)
	k.M.SetTLBCoherence(false)
	res := StaleTLBAttack(k, []byte(secretString))
	if !res.Succeeded {
		t.Errorf("with TLB coherence off the stale-TLB attack should leak: %s", res)
	}
}

// TestStaleTLBAttackSingleCPU: on one CPU there is no remote TLB and
// the vector reports itself inapplicable.
func TestStaleTLBAttackSingleCPU(t *testing.T) {
	k := bootSMP(t, core.ModeVirtualGhost, 1)
	res := StaleTLBAttack(k, []byte(secretString))
	if res.Succeeded {
		t.Errorf("single-CPU machine cannot have a stale remote TLB: %s", res)
	}
	if !strings.Contains(res.Detail, "multi-CPU") {
		t.Errorf("unexpected detail: %s", res)
	}
}
