// Package shadow implements the comparison baseline of the paper's
// evaluation: an InkTag/Overshadow-style hypervisor-based protection
// system. The OS runs paravirtualized under a higher-privilege
// hypervisor; application pages are shadowed — encrypted and hashed
// whenever the OS touches them — and MMU updates and trap handling
// cross the hypervisor boundary.
//
// The model captures the cost structure the paper contrasts Virtual
// Ghost against (§9): per-syscall hypervisor crossings, per-MMU-update
// hypercalls, and per-page cryptography on kernel accesses to
// application memory. The kernel is *uninstrumented* (no sandboxing or
// CFI costs), which is why InkTag wins on the paths Virtual Ghost's
// per-access masking dominates (exec, file create/delete) and loses
// badly on trap-heavy paths (null syscall).
package shadow

import (
	"repro/internal/core"
	"repro/internal/hw"
)

// Cost constants of the hypervisor boundary (virtual cycles).
const (
	// CostVMExit is one guest->hypervisor->guest crossing plus the
	// hypervisor's validation work. Trap-and-emulate syscall
	// interposition pays two (entry and exit), which puts the null
	// syscall in the dozens-of-x range the paper reports for InkTag.
	CostVMExit = 8200
	// CostMMUHypercall is a paravirtual page-table update: crossing
	// plus shadow-page-table synchronization.
	CostMMUHypercall = 23000
	// CostShadowPage is the per-page encrypt+hash when the OS touches
	// an application page (copyin/copyout/KLoad paths).
	CostShadowPage = hw.CostPageCrypt + hw.CostPageHash
)

// HAL is the shadowing baseline: the native HAL plus hypervisor costs.
// It embeds the full native behaviour — the shadowing hypervisor
// detects tampering but, unlike Virtual Ghost, does not prevent the OS
// from reading or writing the (encrypted) pages, and our attack
// experiments are not run against it; it exists for the performance
// comparison columns.
type HAL struct {
	*core.NativeHAL
	m *hw.Machine
}

// New wraps a machine in the shadowing baseline.
func New(m *hw.Machine) (*HAL, error) {
	n, err := core.NewNativeHAL(m)
	if err != nil {
		return nil, err
	}
	return &HAL{NativeHAL: n, m: m}, nil
}

// Mode identifies the configuration.
func (h *HAL) Mode() core.Mode { return core.ModeShadow }

// Syscall pays two hypervisor crossings around the native trap (the
// hypervisor interposes on every kernel entry and exit to protect
// application register state and shadowed pages).
func (h *HAL) Syscall(num uint64, args [6]uint64) uint64 {
	h.m.Clock.Charge(hw.TagShadow, 2*CostVMExit)
	return h.NativeHAL.Syscall(num, args)
}

// CostShadowFault is the extra shadow-paging work on a guest page
// fault: the real fault first vectors into the hypervisor, which walks
// and repairs its shadow structures (several crossings plus
// synchronization) before the guest kernel even sees the fault. InkTag
// reports page faults ~7.5x native, which this reproduces.
const CostShadowFault = 620_000

// Trap pays the same crossings, and page faults additionally pay the
// shadow-paging repair path.
func (h *HAL) Trap(kind hw.TrapKind, info uint64) {
	h.m.Clock.Charge(hw.TagShadow, 2*CostVMExit)
	if kind == hw.TrapPageFault {
		h.m.Clock.Charge(hw.TagShadow, CostShadowFault)
	}
	h.NativeHAL.Trap(kind, info)
}

// MapPage is a paravirtual hypercall: the hypervisor validates the
// update against its shadow page tables.
func (h *HAL) MapPage(root hw.Frame, va hw.Virt, f hw.Frame, flags uint64) error {
	h.m.Clock.Charge(hw.TagShadow, CostMMUHypercall)
	h.m.Clock.Charge(hw.TagCrypt, CostShadowPage)
	return h.NativeHAL.MapPage(root, va, f, flags)
}

// UnmapPage is also hypervisor-mediated, but teardown unmaps are
// batched by the paravirt interface, amortizing the crossing.
func (h *HAL) UnmapPage(root hw.Frame, va hw.Virt) error {
	h.m.Clock.Charge(hw.TagShadow, CostMMUHypercall/8)
	return h.NativeHAL.UnmapPage(root, va)
}

// LoadAddressSpace switches shadow page tables in the hypervisor.
func (h *HAL) LoadAddressSpace(root hw.Frame) error {
	h.m.Clock.Charge(hw.TagShadow, 2*CostMMUHypercall)
	return h.NativeHAL.LoadAddressSpace(root)
}

// Copyin decrypts (and re-verifies) each shadowed application page the
// kernel reads; protected (ghost-partition) sources come back as
// ciphertext.
func (h *HAL) Copyin(root hw.Frame, va hw.Virt, n int) ([]byte, error) {
	pages := n/hw.PageSize + 1
	h.m.Clock.Charge(hw.TagCrypt, uint64(pages)*CostShadowPage)
	b, err := h.NativeHAL.Copyin(root, va, n)
	if err != nil {
		return nil, err
	}
	if hw.IsGhost(va) {
		for i := range b {
			b[i] ^= byte(h.pageKeystream(va+hw.Virt(i)) >> uint(8*(i%8)))
		}
	}
	return b, nil
}

// Copyout re-encrypts and re-hashes each page the kernel writes.
func (h *HAL) Copyout(root hw.Frame, va hw.Virt, b []byte) error {
	pages := len(b)/hw.PageSize + 1
	h.m.Clock.Charge(hw.TagCrypt, uint64(pages)*CostShadowPage)
	return h.NativeHAL.Copyout(root, va, b)
}

// KLoad/KStore: single-word kernel accesses to application memory also
// cross a shadowed page. Accesses to *protected* (ghost-partition)
// pages return the encrypted view: shadowing systems let the OS read
// the page but only in ciphertext (paper §1: previous systems "do not
// prevent such writes and only guarantee that the tampering will be
// detected"; reads see the encrypted image).
func (h *HAL) KLoad(root hw.Frame, va hw.Virt, size int) (uint64, error) {
	if hw.IsUser(va) || hw.IsGhost(va) {
		h.m.Clock.Charge(hw.TagCrypt, CostShadowPage)
	}
	v, err := h.NativeHAL.KLoad(root, va, size)
	if err != nil {
		return 0, err
	}
	if hw.IsGhost(va) {
		v ^= h.pageKeystream(va)
	}
	return v, nil
}

// pageKeystream is the deterministic stand-in for the hypervisor's
// page encryption: the kernel's view of a shadowed page is XORed with
// an address-dependent keystream it cannot derive.
func (h *HAL) pageKeystream(va hw.Virt) uint64 {
	x := uint64(va) ^ 0x9e3779b97f4a7c15
	x ^= x >> 31
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// KStore mirrors KLoad.
func (h *HAL) KStore(root hw.Frame, va hw.Virt, size int, v uint64) error {
	if hw.IsUser(va) || hw.IsGhost(va) {
		h.m.Clock.Charge(hw.TagCrypt, CostShadowPage)
	}
	return h.NativeHAL.KStore(root, va, size, v)
}

var _ core.HAL = (*HAL)(nil)

// CostRegionPerPage is the hypervisor's per-page VM-region bookkeeping
// (region registration, shadow-structure sizing) on mmap/munmap.
const CostRegionPerPage = 6000

// OnVMRegion charges per-page region bookkeeping.
func (h *HAL) OnVMRegion(npages int) {
	h.m.Clock.Charge(hw.TagShadow, uint64(npages)*CostRegionPerPage)
}

// CostShadowASCreate is the construction of a fresh shadow page-table
// hierarchy when the guest creates an address space (fork/exec).
const CostShadowASCreate = 480_000

// NewAddressSpace pays shadow-hierarchy construction.
func (h *HAL) NewAddressSpace() (hw.Frame, error) {
	h.m.Clock.Charge(hw.TagShadow, CostShadowASCreate)
	return h.NativeHAL.NewAddressSpace()
}
