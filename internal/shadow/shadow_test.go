package shadow

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

type frames struct{ m *hw.Memory }

func (f frames) GetFrame() (hw.Frame, error) { return f.m.AllocFrame(hw.FrameUserData) }
func (f frames) PutFrame(fr hw.Frame)        { _ = f.m.FreeFrame(fr) }

func newShadow(t *testing.T) (*HAL, *hw.Machine) {
	t.Helper()
	m := hw.NewMachine(hw.MachineConfig{MemFrames: 1024, DiskBlocks: 32, Seed: 3})
	h, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	h.RegisterFrameSource(frames{m: m.Mem})
	h.RegisterTrapHandler(func(ic core.IContext, kind hw.TrapKind, info uint64) {})
	h.SetCurrentThread(1)
	return h, m
}

func TestModeIsShadow(t *testing.T) {
	h, _ := newShadow(t)
	if h.Mode() != core.ModeShadow {
		t.Errorf("mode = %v", h.Mode())
	}
}

func TestSyscallPaysHypervisorCrossings(t *testing.T) {
	h, m := newShadow(t)
	before := m.Clock.Cycles()
	h.Syscall(1, [6]uint64{})
	shadowCost := m.Clock.Cycles() - before

	// Compare with a pure native HAL on an identical machine.
	m2 := hw.NewMachine(hw.MachineConfig{MemFrames: 1024, DiskBlocks: 32, Seed: 3})
	n, _ := core.NewNativeHAL(m2)
	n.RegisterTrapHandler(func(ic core.IContext, kind hw.TrapKind, info uint64) {})
	n.SetCurrentThread(1)
	before = m2.Clock.Cycles()
	n.Syscall(1, [6]uint64{})
	nativeCost := m2.Clock.Cycles() - before

	if shadowCost < nativeCost+2*CostVMExit {
		t.Errorf("shadow syscall %d cycles, native %d: missing VM exits", shadowCost, nativeCost)
	}
}

func TestMMUOpsPayHypercalls(t *testing.T) {
	h, m := newShadow(t)
	root, err := h.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := m.Mem.AllocFrame(hw.FrameUserData)
	before := m.Clock.Cycles()
	if err := h.MapPage(root, 0x400000, f, hw.PTEUser|hw.PTEWrite); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Cycles()-before < CostMMUHypercall {
		t.Errorf("MapPage did not pay the hypercall")
	}
	before = m.Clock.Cycles()
	if err := h.UnmapPage(root, 0x400000); err != nil {
		t.Fatal(err)
	}
	if got := m.Clock.Cycles() - before; got < CostMMUHypercall/8 {
		t.Errorf("UnmapPage cost %d", got)
	}
}

func TestCopyinPaysPerPageShadowing(t *testing.T) {
	h, m := newShadow(t)
	root, _ := h.NewAddressSpace()
	f, _ := m.Mem.AllocFrame(hw.FrameUserData)
	if err := h.MapPage(root, 0x400000, f, hw.PTEUser|hw.PTEWrite); err != nil {
		t.Fatal(err)
	}
	before := m.Clock.Cycles()
	if _, err := h.Copyin(root, 0x400000, 100); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Cycles()-before < CostShadowPage {
		t.Errorf("copyin did not pay page shadowing")
	}
}

// TestShadowDoesNotProtect: unlike Virtual Ghost, the shadowing model
// here is a cost baseline — the kernel can still read application pages
// (InkTag only detects tampering cryptographically; it does not deny
// access).
func TestShadowDoesNotPreventAccess(t *testing.T) {
	h, m := newShadow(t)
	root, _ := h.NewAddressSpace()
	if err := h.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	v, err := h.KLoad(root, hw.GhostBase, 8)
	if err != nil {
		t.Fatalf("shadow KLoad failed: %v", err)
	}
	_ = v // readable (encrypted in the real system; cost charged here)
	if m.Clock.Cycles() == 0 {
		t.Errorf("no time charged")
	}
}

// TestShadowReadsAreCiphertext: the kernel can reach a protected page
// but sees only the encrypted view — the Overshadow/InkTag semantics
// the paper contrasts with Virtual Ghost's outright denial.
func TestShadowReadsAreCiphertext(t *testing.T) {
	h, m := newShadow(t)
	root, _ := h.NewAddressSpace()
	if err := h.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	// Write the secret directly into the backing frame (the app's own
	// plaintext view).
	var frame hw.Frame
	for f := hw.Frame(1); f < 1024; f++ {
		if m.Mem.Refs(f) > 0 && m.Mem.TypeOf(f) == hw.FrameUserData {
			frame = f
		}
	}
	if frame == 0 {
		t.Fatal("no backing frame")
	}
	b, _ := m.Mem.FrameBytes(frame)
	copy(b, []byte("plaintext-secret"))
	v, err := h.KLoad(root, hw.GhostBase, 8)
	if err != nil {
		t.Fatal(err)
	}
	var plain uint64
	for i := 7; i >= 0; i-- {
		plain = plain<<8 | uint64(b[i])
	}
	if v == plain {
		t.Errorf("shadow kernel read returned plaintext")
	}
	blob, err := h.Copyin(root, hw.GhostBase, 16)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) == "plaintext-secret" {
		t.Errorf("shadow copyin returned plaintext")
	}
}
