// Package lint is the repository's determinism analyzer suite: a small
// driver that walks a module tree, parses each package's non-test
// sources (type-checking only when an analyzer asks), and applies the
// analyzers from analyzers.go. cmd/vglint is the command-line front
// end; the root accounting scan test delegates here so `go test ./...`
// enforces a clean tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Finding is one analyzer diagnostic, resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)",
		filepath.ToSlash(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies the analyzers to every package under root (a module
// directory) and returns the findings sorted by position. Directories
// named .git, testdata, or vendor — and hidden directories — are
// skipped, as are _test.go files: the analyzers police production
// code, and tests legitimately simulate time or print fixtures.
func Run(root string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	modPath := modulePath(root)
	var findings []Finding
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != root && (name == ".git" || name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".")) {
			return filepath.SkipDir
		}
		fs, err := runDir(root, modPath, path, analyzers)
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return findings, nil
}

// runDir applies the applicable analyzers to the single package
// directory dir.
func runDir(root, modPath, dir string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgPath := dirPkgPath(root, modPath, dir)
	var applicable []*analysis.Analyzer
	needTypes := false
	for _, a := range analyzers {
		if a.Match == nil || a.Match(pkgPath) {
			applicable = append(applicable, a)
			needTypes = needTypes || a.NeedTypes
		}
	}
	if len(applicable) == 0 {
		return nil, nil
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, e.Name()), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	var pkg *types.Package
	var info *types.Info
	if needTypes {
		info = &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Defs:  make(map[*ast.Ident]types.Object),
			Uses:  make(map[*ast.Ident]types.Object),
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
		pkg, err = conf.Check(pkgPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", pkgPath, err)
		}
	}

	var findings []Finding
	for _, a := range applicable {
		if a.NeedTypes && pkg == nil {
			continue
		}
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			PkgPath:  pkgPath,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if a.NeedTypes {
			pass.Pkg = pkg
			pass.TypesInfo = info
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkgPath, err)
		}
	}
	return findings, nil
}

// dirPkgPath maps a directory under root to its import path.
func dirPkgPath(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	rel = filepath.ToSlash(rel)
	if modPath == "" {
		return rel
	}
	return modPath + "/" + rel
}

// modulePath reads the module path from root's go.mod ("" when there
// is none — fixture trees in tests).
func modulePath(root string) string {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}
