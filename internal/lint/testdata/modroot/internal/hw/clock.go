package hw

// Clock is the fixture's stand-in accounting clock. This file mirrors
// the real internal/hw/clock.go: it defines the untagged entry points
// and is therefore exempt from the rawadvance analyzer, including the
// internal call below.
type Clock struct{ c uint64 }

func (c *Clock) Advance(n uint64) { c.c += n }

func (c *Clock) AdvanceBytes(n uint64) { c.Advance(n) }
