package hw

import (
	"fmt"
	"math/rand"
	"time"
)

// Bad trips every analyzer in one function. The panic line must NOT be
// flagged: a panic fires at most once, so it cannot expose map order.
func Bad(c *Clock, m map[string]int) int {
	c.Advance(5)
	c.AdvanceBytes(9)
	t := time.Now()
	n := 0
	for k, v := range m {
		fmt.Println(k, v)
		if v < 0 {
			panic(fmt.Sprintf("negative %s", k))
		}
		n += v
	}
	return n + rand.Int() + int(t.Unix())
}
