// The cmd tree is outside the simulation core: host time and map-order
// output are legitimate here (commands measure host cost), so only the
// whole-repo rawadvance analyzer applies.
package main

import (
	"fmt"
	"time"
)

func main() {
	m := map[string]int{"a": 1}
	for k := range m {
		fmt.Println(k, time.Now())
	}
}
