package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// The reproduction's core contract is bit-identical virtual numbers
// across engines, host-parallel modes, and optimization levels. These
// analyzers enforce the source-level discipline that keeps the
// contract checkable:
//
//   - rawadvance: all cycle charges go through the tagged accounting
//     entry points, so per-tag breakdowns stay complete.
//   - nodeterm: the simulation core never reads host time or host
//     randomness, so identical inputs give identical numbers.
//   - maprange: printed/formatted output never iterates a map
//     directly, so transcripts and exported artifacts are stable
//     across runs.

// deterministicCore is the Match set for the determinism analyzers:
// the hardware model, the kernel, and the IR executors. Experiments
// and commands may read host time (they measure host cost); the
// simulation core may not.
func deterministicCore(pkgPath string) bool {
	for _, p := range []string{"repro/internal/hw", "repro/internal/kernel", "repro/internal/vir"} {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns the repository's analyzer suite in reporting
// order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{RawAdvance, NoDeterm, MapRange}
}

// RawAdvance forbids calls to the untagged clock entry points
// Advance/AdvanceBytes outside internal/hw/clock.go (which defines
// them, for tests that simulate the passage of time). Production code
// must charge through Clock.Charge/ChargeBytes with a real cost tag;
// an untagged charge books cycles under TagOther and silently degrades
// every per-tag breakdown. This is the AST-level promotion of the
// regex scan that previously lived in accounting_scan_test.go.
var RawAdvance = &analysis.Analyzer{
	Name: "rawadvance",
	Doc:  "forbid untagged Clock.Advance/AdvanceBytes calls outside the accounting layer",
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			name := filepath.ToSlash(pass.Filename(file.Pos()))
			if strings.HasSuffix(name, "internal/hw/clock.go") {
				continue // defines the wrappers
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if sel.Sel.Name == "Advance" || sel.Sel.Name == "AdvanceBytes" {
					pass.Reportf(sel.Sel.Pos(),
						"raw %s call in non-test code (use Clock.Charge/ChargeBytes with a cost tag)",
						sel.Sel.Name)
				}
				return true
			})
		}
		return nil
	},
}

// NoDeterm forbids host-nondeterminism sources — time.Now and the
// math/rand generators — in the simulation core. Virtual time comes
// from hw.Clock and randomness from the machine's seeded RNG; host
// time or host randomness in these packages would break the
// bit-identical-numbers contract between runs.
var NoDeterm = &analysis.Analyzer{
	Name:  "nodeterm",
	Doc:   "forbid time.Now and math/rand in the simulation core (hw, kernel, vir)",
	Match: deterministicCore,
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			// Import names of the time package in this file ("time"
			// unless renamed).
			timeNames := map[string]bool{}
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				switch path {
				case "math/rand", "math/rand/v2":
					pass.Reportf(imp.Pos(),
						"import of %s in the simulation core (use the machine's seeded RNG)", path)
				case "time":
					name := "time"
					if imp.Name != nil {
						name = imp.Name.Name
					}
					timeNames[name] = true
				}
			}
			if len(timeNames) == 0 {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || !timeNames[id.Name] {
					return true
				}
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					pass.Reportf(sel.Sel.Pos(),
						"%s.%s in the simulation core (virtual time comes from hw.Clock)",
						id.Name, sel.Sel.Name)
				}
				return true
			})
		}
		return nil
	},
}

// MapRange flags map iteration that feeds printed or formatted output
// inside the simulation core. Go's map order is deliberately
// randomized, so a fmt call inside a `for k := range m` over a map
// produces run-to-run-varying transcripts; sort the keys first.
// Counting, summing, or rebuilding maps in arbitrary order is fine —
// only iterations whose body prints are flagged.
var MapRange = &analysis.Analyzer{
	Name:      "maprange",
	Doc:       "forbid map-range iteration that feeds printed output in the simulation core",
	Match:     deterministicCore,
	NeedTypes: true,
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				ast.Inspect(rng.Body, func(b ast.Node) bool {
					call, ok := b.(*ast.CallExpr)
					if !ok {
						return true
					}
					// A panic fires at most once and then unwinds, so a
					// fmt call feeding it cannot expose iteration order.
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						return false
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok || id.Name != "fmt" {
						return true
					}
					if strings.HasPrefix(sel.Sel.Name, "Print") ||
						strings.HasPrefix(sel.Sel.Name, "Fprint") ||
						strings.HasPrefix(sel.Sel.Name, "Sprint") ||
						strings.HasPrefix(sel.Sel.Name, "Append") {
						pass.Reportf(call.Pos(),
							"fmt.%s inside map-range iteration (map order is randomized; sort the keys first)",
							sel.Sel.Name)
					}
					return true
				})
				return true
			})
		}
		return nil
	},
}
