package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestAnalyzersOnFixture runs the suite over the fixture module, which
// plants one violation per rule plus the two deliberate non-violations
// (the clock.go exemption and the panic-inside-map-range exclusion).
func TestAnalyzersOnFixture(t *testing.T) {
	findings, err := lint.Run(filepath.Join("testdata", "modroot"), lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	want := []struct {
		analyzer string
		line     int
	}{
		{"nodeterm", 5},    // math/rand import
		{"rawadvance", 12}, // c.Advance
		{"rawadvance", 13}, // c.AdvanceBytes
		{"nodeterm", 14},   // time.Now
		{"maprange", 17},   // fmt.Println inside map range
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, w := range want {
		f := findings[i]
		if f.Analyzer != w.analyzer || f.Pos.Line != w.line {
			t.Errorf("finding %d: got %s at line %d, want %s at line %d (%s)",
				i, f.Analyzer, f.Pos.Line, w.analyzer, w.line, f)
		}
		if base := filepath.Base(f.Pos.Filename); base != "bad.go" {
			t.Errorf("finding %d: in %s, want bad.go", i, base)
		}
	}
}

// TestDeterministicCoreScope: the cmd tree of the fixture uses
// time.Now and map-range printing, which the scoped analyzers must
// ignore — the previous test's findings all came from internal/hw.
// This guards the Match predicates themselves.
func TestDeterministicCoreScope(t *testing.T) {
	findings, err := lint.Run(filepath.Join("testdata", "modroot"), lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		if strings.Contains(filepath.ToSlash(f.Pos.Filename), "cmd/tool") {
			t.Errorf("scoped analyzer leaked into the cmd tree: %s", f)
		}
	}
}
