// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer bundles a
// name, documentation, and a Run function over a per-package Pass that
// reports Diagnostics. The repository pins a zero-dependency build, so
// the real module is out of reach; this package keeps the analyzer
// shape source-compatible enough that the checks in internal/lint
// could move onto the upstream framework without rewrites.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check, applied package by package.
type Analyzer struct {
	// Name identifies the analyzer in findings and documentation
	// (lower-case, no spaces).
	Name string
	// Doc is the one-paragraph description: what the check enforces
	// and why.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil applies the analyzer to every package.
	Match func(pkgPath string) bool
	// NeedTypes requests type information: the driver type-checks the
	// package and populates Pass.Pkg/Pass.TypesInfo before Run.
	// Syntactic analyzers leave it false and run much faster.
	NeedTypes bool
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed (and optionally type-checked)
// state through an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	// Pkg and TypesInfo are populated only for NeedTypes analyzers.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding to the driver.
	Report func(Diagnostic)
}

// Reportf formats and reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Filename returns the name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	if f := p.Fset.File(pos); f != nil {
		return f.Name()
	}
	return ""
}

// Diagnostic is one finding: a position in the fileset and a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
