// Package vir defines the virtual instruction set of the reproduction —
// the stand-in for the LLVM bitcode that all operating-system code must
// be expressed in under Virtual Ghost (paper §4.2). It is a small
// register-based IR with explicit loads, stores, memcpy, direct and
// indirect calls, returns, port I/O, and an inline-assembly marker.
//
// The instrumenting compiler (internal/compiler) rewrites modules of
// this IR: the sandboxing pass wraps every memory operand in ghost-
// partition masking, and the CFI pass adds labels and checks to returns
// and indirect calls. The interpreter in this package then executes the
// instrumented stream against the simulated CPU and MMU, so the
// security property "compiled kernel code cannot address ghost memory"
// is demonstrated on real instruction sequences rather than asserted.
package vir

import "fmt"

// Opcode enumerates the IR instructions.
type Opcode uint8

// Instruction opcodes.
const (
	// OpConst: Dst = Imm.
	OpConst Opcode = iota
	// OpMov: Dst = A.
	OpMov
	// Arithmetic/logic: Dst = A op B.
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// Comparisons (unsigned): Dst = A cmp B ? 1 : 0.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpGE
	// OpSelect: Dst = A != 0 ? B : C.
	OpSelect
	// OpLoad: Dst = mem[A], Size bytes.
	OpLoad
	// OpStore: mem[A] = B, Size bytes.
	OpStore
	// OpMemcpy: copy C bytes from address B to address A.
	OpMemcpy
	// OpBr: jump to Blk1.
	OpBr
	// OpCondBr: if A != 0 jump to Blk1 else Blk2.
	OpCondBr
	// OpCall: Dst = Sym(Args...). Sym resolves to a module function or
	// a host intrinsic (kernel service).
	OpCall
	// OpCallInd: Dst = funcs[A](Args...) — indirect call through a
	// function-pointer value (a code address in the module's function
	// table). This is what CFI checks.
	OpCallInd
	// OpRet: return A.
	OpRet
	// OpPortIn: Dst = in(port A).
	OpPortIn
	// OpPortOut: out(port A) = B.
	OpPortOut
	// OpAsm: inline assembly. The trusted translator refuses modules
	// containing it (paper: hand-written assembly in kernel code is
	// "simply not expressible" once the OS must pass through the VG
	// compiler).
	OpAsm
	// OpFuncAddr: Dst = code address of function Sym (for building
	// function pointers).
	OpFuncAddr
	// --- Instrumentation pseudo-ops (inserted by compiler passes;
	// a module author writing them by hand gains nothing: they only
	// *restrict* what the code can do). ---
	// OpMaskGhost: Dst = sandbox-mask(A): ghost-partition addresses
	// get GhostEscapeBit OR-ed in; SVA-internal addresses become 0.
	OpMaskGhost
	// OpCFILabel: a CFI landing pad with label Imm. Valid targets of
	// returns and indirect calls must begin with one.
	OpCFILabel
	// OpCFIRet: an instrumented return — checks the return target.
	OpCFIRet
	// OpCFICallInd: an instrumented indirect call — checks the target
	// has a CFI label and lies in kernel code space.
	OpCFICallInd
)

var opNames = map[Opcode]string{
	OpConst: "const", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpCmpEQ: "cmpeq", OpCmpNE: "cmpne",
	OpCmpLT: "cmplt", OpCmpGE: "cmpge", OpSelect: "select",
	OpLoad: "load", OpStore: "store", OpMemcpy: "memcpy",
	OpBr: "br", OpCondBr: "condbr", OpCall: "call",
	OpCallInd: "callind", OpRet: "ret", OpPortIn: "portin",
	OpPortOut: "portout", OpAsm: "asm", OpFuncAddr: "funcaddr",
	OpMaskGhost: "maskghost", OpCFILabel: "cfilabel",
	OpCFIRet: "cfiret", OpCFICallInd: "cficallind",
}

func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Value is an instruction operand: either a virtual register or an
// immediate.
type Value struct {
	IsImm bool
	Reg   int
	Imm   uint64
}

// R makes a register operand.
func R(reg int) Value { return Value{Reg: reg} }

// Imm makes an immediate operand.
func Imm(v uint64) Value { return Value{IsImm: true, Imm: v} }

func (v Value) String() string {
	if v.IsImm {
		return fmt.Sprintf("%#x", v.Imm)
	}
	return fmt.Sprintf("%%r%d", v.Reg)
}

// Instr is one IR instruction. Field use depends on Op (see the opcode
// comments); unused fields are zero.
type Instr struct {
	Op   Opcode
	Dst  int
	A    Value
	B    Value
	C    Value
	Imm  uint64
	Size int
	Sym  string
	Blk1 string
	Blk2 string
	Args []Value
}

// Block is a basic block: a named straight-line instruction sequence
// ending in a terminator (br, condbr, ret).
type Block struct {
	Name   string
	Instrs []Instr
}

// Function is an IR function. Parameters arrive in registers 0..NParams-1.
type Function struct {
	Name    string
	NParams int
	NRegs   int
	Blocks  []*Block

	// Instrumentation / translation state, set by the compiler:
	// Labeled means the CFI pass placed a label at function entry;
	// Sandboxed means the load/store pass ran; MmapMasked means the
	// application-side mmap-return masking pass ran; Translated means
	// the trusted translator accepted and signed the function.
	Labeled    bool
	Sandboxed  bool
	MmapMasked bool
	Translated bool

	// Proofs is the admission checker's elision certificate for this
	// exact instruction stream (see proofs.go); nil when nothing was
	// proven or the function never went through admission. Clone drops
	// it deliberately: clones exist to be transformed, and a proof is
	// only valid for the instruction stream it was computed on.
	Proofs *CheckProofs
}

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// FindBlock looks a block up by name.
func (f *Function) FindBlock(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// CountOps returns how many instructions of the given opcode the
// function contains (used by tests and the translator's statistics).
func (f *Function) CountOps(op Opcode) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// Module is a compilation unit: an ordered set of functions. Function
// "code addresses" (for function pointers and indirect calls) are
// assigned by the translator when the module is laid out in code space.
type Module struct {
	Name  string
	Funcs []*Function
	byN   map[string]*Function
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, byN: make(map[string]*Function)}
}

// AddFunc appends a function; duplicate names are rejected.
func (m *Module) AddFunc(f *Function) error {
	if _, dup := m.byN[f.Name]; dup {
		return fmt.Errorf("vir: duplicate function %q in module %q", f.Name, m.Name)
	}
	m.Funcs = append(m.Funcs, f)
	m.byN[f.Name] = f
	return nil
}

// Func looks a function up by name.
func (m *Module) Func(name string) *Function {
	return m.byN[name]
}

// Clone deep-copies the module (compiler passes transform copies so the
// pristine input remains available, e.g. to run the same attack module
// both uninstrumented and instrumented).
func (m *Module) Clone() *Module {
	out := NewModule(m.Name)
	for _, f := range m.Funcs {
		nf := &Function{
			Name:       f.Name,
			NParams:    f.NParams,
			NRegs:      f.NRegs,
			Labeled:    f.Labeled,
			Sandboxed:  f.Sandboxed,
			MmapMasked: f.MmapMasked,
			Translated: f.Translated,
		}
		for _, b := range f.Blocks {
			nb := &Block{Name: b.Name, Instrs: make([]Instr, len(b.Instrs))}
			copy(nb.Instrs, b.Instrs)
			for i := range nb.Instrs {
				if nb.Instrs[i].Args != nil {
					nb.Instrs[i].Args = append([]Value(nil), nb.Instrs[i].Args...)
				}
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		if err := out.AddFunc(nf); err != nil {
			panic(err) // clone of a valid module cannot collide
		}
	}
	return out
}
