package vir

import "fmt"

// VerifyError describes a structurally invalid function.
type VerifyError struct {
	Fn    string
	Block string
	Idx   int
	Msg   string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("vir: %s/%s[%d]: %s", e.Fn, e.Block, e.Idx, e.Msg)
}

// VerifyModule checks structural well-formedness of every function.
func VerifyModule(m *Module) error {
	for _, f := range m.Funcs {
		if err := VerifyFunction(f); err != nil {
			return err
		}
	}
	return nil
}

// VerifyFunction checks that every block is non-empty and ends with a
// terminator, that no terminator appears mid-block, that branch targets
// exist, and that register operands are in range.
func VerifyFunction(f *Function) error {
	if len(f.Blocks) == 0 {
		return &VerifyError{Fn: f.Name, Msg: "function has no blocks"}
	}
	seen := make(map[string]bool)
	for _, b := range f.Blocks {
		if seen[b.Name] {
			return &VerifyError{Fn: f.Name, Block: b.Name, Msg: "duplicate block name"}
		}
		seen[b.Name] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return &VerifyError{Fn: f.Name, Block: b.Name, Msg: "empty block"}
		}
		for i, in := range b.Instrs {
			term := isTerminator(in.Op)
			if term && i != len(b.Instrs)-1 {
				return &VerifyError{Fn: f.Name, Block: b.Name, Idx: i, Msg: "terminator not at block end"}
			}
			if !term && i == len(b.Instrs)-1 {
				return &VerifyError{Fn: f.Name, Block: b.Name, Idx: i,
					Msg: fmt.Sprintf("block falls through (last op %v)", in.Op)}
			}
			if err := checkRegs(f, b, i, in); err != nil {
				return err
			}
			switch in.Op {
			case OpBr:
				if f.FindBlock(in.Blk1) == nil {
					return &VerifyError{Fn: f.Name, Block: b.Name, Idx: i,
						Msg: fmt.Sprintf("branch to unknown block %q", in.Blk1)}
				}
			case OpCondBr:
				for _, t := range []string{in.Blk1, in.Blk2} {
					if f.FindBlock(t) == nil {
						return &VerifyError{Fn: f.Name, Block: b.Name, Idx: i,
							Msg: fmt.Sprintf("branch to unknown block %q", t)}
					}
				}
			case OpLoad, OpStore:
				switch in.Size {
				case 1, 2, 4, 8:
				default:
					return &VerifyError{Fn: f.Name, Block: b.Name, Idx: i,
						Msg: fmt.Sprintf("bad access size %d", in.Size)}
				}
			}
		}
	}
	return nil
}

func isTerminator(op Opcode) bool {
	switch op {
	case OpBr, OpCondBr, OpRet, OpCFIRet:
		return true
	}
	return false
}

func checkRegs(f *Function, b *Block, idx int, in Instr) error {
	bad := func(what string, r int) error {
		return &VerifyError{Fn: f.Name, Block: b.Name, Idx: idx,
			Msg: fmt.Sprintf("%s register %%r%d out of range (NRegs=%d)", what, r, f.NRegs)}
	}
	check := func(v Value) error {
		if !v.IsImm && (v.Reg < 0 || v.Reg >= f.NRegs) {
			return bad("source", v.Reg)
		}
		return nil
	}
	if hasDst(in.Op) && (in.Dst < 0 || in.Dst >= f.NRegs) {
		return bad("destination", in.Dst)
	}
	useA, useB, useC := operandUse(in.Op)
	if useA {
		if err := check(in.A); err != nil {
			return err
		}
	}
	if useB {
		if err := check(in.B); err != nil {
			return err
		}
	}
	if useC {
		if err := check(in.C); err != nil {
			return err
		}
	}
	for _, v := range in.Args {
		if err := check(v); err != nil {
			return err
		}
	}
	return nil
}

// operandUse reports which of the A/B/C operand slots an opcode reads.
func operandUse(op Opcode) (a, b, c bool) {
	switch op {
	case OpMov, OpLoad, OpCondBr, OpRet, OpCFIRet, OpPortIn,
		OpMaskGhost, OpCallInd, OpCFICallInd:
		return true, false, false
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE, OpStore, OpPortOut:
		return true, true, false
	case OpSelect, OpMemcpy:
		return true, true, true
	}
	return false, false, false
}

func hasDst(op Opcode) bool {
	switch op {
	case OpConst, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE, OpSelect,
		OpLoad, OpCall, OpCallInd, OpCFICallInd, OpPortIn,
		OpFuncAddr, OpMaskGhost:
		return true
	}
	return false
}

// HasAsm reports whether the module contains inline assembly anywhere.
// The trusted translator refuses such modules.
func HasAsm(m *Module) bool {
	for _, f := range m.Funcs {
		if f.CountOps(OpAsm) > 0 {
			return true
		}
	}
	return false
}
