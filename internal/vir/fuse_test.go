package vir

import (
	"errors"
	"testing"

	"repro/internal/hw"
)

// Tests for the superinstruction fusion pass and the monomorphic inline
// caches (fuse.go). The differential harness (runDiff) already runs
// every diff test with fusion on AND off against the reference
// interpreter; this file pins the pass's mechanics: which idioms fuse,
// exact cycle counts when the step budget lands mid-idiom, inline-cache
// hit/miss/invalidation behavior, and the profile-guided policy.

// fuseAllIdiomsSource contains every fusable idiom exactly once per
// location: cmp+condbr (head), const+ALU, mask+store, mask+load,
// add+br back-edge (body), and call+ret (done). The back-edge makes
// "hot" hot under the static heuristic; "leaf" stays cold.
const fuseAllIdiomsSource = `module fuseall
func leaf(1 params) {
entry:
  %r1 = add %r0, 0x1
  ret %r1
}
func hot(1 params) {
entry:
  %r1 = const 0x0
  br head
head:
  %r2 = cmplt %r1, %r0
  condbr %r2, body, done
body:
  %r3 = const 0x3
  %r4 = mul %r1, %r3
  %r5 = maskghost %r0
  store8 [%r5], %r4
  %r6 = maskghost %r0
  %r7 = load8 [%r6]
  %r1 = add %r1, 0x1
  br head
done:
  %r8 = call leaf(%r1)
  ret %r8
}
`

func addParsedModule(t testing.TB, env *memEnv, source, main string) *Function {
	t.Helper()
	m, err := ParseModule(source)
	if err != nil {
		t.Fatal(err)
	}
	var fn *Function
	for _, g := range m.Funcs {
		env.addFunc(g)
		if g.Name == main {
			fn = g
		}
	}
	if fn == nil {
		t.Fatalf("function %q not in module", main)
	}
	return fn
}

// TestFusionPatterns pins which sites fuse: all six idioms in "hot"
// (and none in the cold, back-edge-free "leaf"), with the observables
// still identical to the reference in both fusion modes.
func TestFusionPatterns(t *testing.T) {
	o := runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		return addParsedModule(t, env, fuseAllIdiomsSource, "hot"), []uint64{5}
	})
	if o.errStr != "" {
		t.Fatalf("unexpected error: %q", o.errStr)
	}

	env := newMemEnv()
	fn := addParsedModule(t, env, fuseAllIdiomsSource, "hot")
	eng := NewEngine()
	if _, err := eng.Call(env, fn, 5); err != nil {
		t.Fatal(err)
	}
	sites := eng.FuseSites()
	if sites["hot"] != 6 {
		t.Errorf("hot fused %d sites, want 6 (cmp+br, const+mul, mask+store, mask+load, add+br, call+ret)", sites["hot"])
	}
	if sites["leaf"] != 0 {
		t.Errorf("cold leaf fused %d sites, want 0", sites["leaf"])
	}
	if st := eng.Fusion(); st.SitesFused != 6 {
		t.Errorf("Fusion().SitesFused = %d, want 6", st.SitesFused)
	}
}

// TestFusedGapSegmentInvariants checks the lowered shape directly: gap
// slots carry no charges and never head a segment, and the hot function
// actually contains superinstructions.
func TestFusedGapSegmentInvariants(t *testing.T) {
	env := newMemEnv()
	fn := addParsedModule(t, env, fuseAllIdiomsSource, "hot")
	eng := NewEngine()
	if _, err := eng.Call(env, fn, 3); err != nil {
		t.Fatal(err)
	}
	lf := eng.cache[fn]
	if lf == nil {
		t.Fatal("hot not in linked cache")
	}
	gaps, fused := 0, 0
	for i := range lf.code {
		in := &lf.code[i]
		switch {
		case in.op == opFusedGap:
			gaps++
			if in.segLen != 0 || in.segCharges != nil || in.charges != nil {
				t.Errorf("gap at %d carries accounting: segLen=%d segCharges=%v charges=%v",
					i, in.segLen, in.segCharges, in.charges)
			}
		case len(in.fused) > 0:
			fused++
			if len(in.fused) != 2 {
				t.Errorf("superinstruction at %d has %d constituents, want 2", i, len(in.fused))
			}
		}
	}
	if fused != 6 || gaps != 6 {
		t.Errorf("lowered hot has %d superinstructions and %d gaps, want 6 and 6", fused, gaps)
	}
}

// TestFusionStepLimitExactCycles is the satellite exact-cycle check for
// the step-limit slow path at fused sites: a straight-line function of
// five 1-cycle ALU steps (two of them fused const+ALU pairs) and a
// 4-cycle ret. For every budget m that expires mid-code — including
// budgets landing exactly in the middle of a fused idiom — both engines
// and the reference must charge exactly m cycles; with the budget
// sufficient, exactly the full 5*CostALU + CostCall.
func TestFusionStepLimitExactCycles(t *testing.T) {
	build := func() *Function {
		return &Function{Name: "sl", NParams: 0, NRegs: 5, Blocks: []*Block{
			{Name: "entry", Instrs: []Instr{
				{Op: OpConst, Dst: 0, Imm: 1},
				{Op: OpConst, Dst: 1, Imm: 2}, // fuses with the add
				{Op: OpAdd, Dst: 2, A: R(0), B: R(1)},
				{Op: OpConst, Dst: 3, Imm: 4}, // fuses with the mul
				{Op: OpMul, Dst: 4, A: R(2), B: R(3)},
				{Op: OpRet, A: R(4)},
			}},
		}}
	}
	const fullCycles = 5*hw.CostALU + hw.CostCall

	for m := 1; m <= 8; m++ {
		// Reference.
		refEnv := newMemEnv()
		refFn := build()
		refEnv.addFunc(refFn)
		ip := NewInterp(refEnv)
		ip.MaxSteps = m
		rv, rerr := ip.Call(refFn)

		// Engine, fusion forced on via an installed profile (the
		// function is straight-line, so the static heuristic alone
		// would leave it cold).
		engEnv := newMemEnv()
		engFn := build()
		engEnv.addFunc(engFn)
		eng := NewEngine()
		eng.SetProfile(map[string]uint64{"sl": FuseHotThreshold})
		eng.MaxSteps = m
		ev, eerr := eng.Call(engEnv, engFn)

		if eng.Fusion().SitesFused != 2 {
			t.Fatalf("m=%d: fused %d sites, want 2", m, eng.Fusion().SitesFused)
		}
		if m < 6 {
			want := uint64(m) * hw.CostALU
			if !errors.Is(rerr, ErrStepLimit) || !errors.Is(eerr, ErrStepLimit) {
				t.Fatalf("m=%d: want ErrStepLimit from both, got ref=%v eng=%v", m, rerr, eerr)
			}
			if refEnv.clock.Cycles() != want || engEnv.clock.Cycles() != want {
				t.Errorf("m=%d: cycles ref=%d eng=%d, want exactly %d",
					m, refEnv.clock.Cycles(), engEnv.clock.Cycles(), want)
			}
		} else {
			if rerr != nil || eerr != nil {
				t.Fatalf("m=%d: unexpected errors ref=%v eng=%v", m, rerr, eerr)
			}
			if rv != 12 || ev != 12 {
				t.Errorf("m=%d: ret ref=%d eng=%d, want 12", m, rv, ev)
			}
			if refEnv.clock.Cycles() != fullCycles || engEnv.clock.Cycles() != fullCycles {
				t.Errorf("m=%d: cycles ref=%d eng=%d, want exactly %d",
					m, refEnv.clock.Cycles(), engEnv.clock.Cycles(), fullCycles)
			}
		}
	}
}

// TestFusionStepLimitSweep sweeps the step budget across a loop built
// entirely of fusable idioms (including mask+store/load pairs that end
// segments), forcing expiry at every offset within fused segments. The
// runDiff harness checks reference vs engine with fusion on and off.
func TestFusionStepLimitSweep(t *testing.T) {
	for maxSteps := 1; maxSteps <= 60; maxSteps++ {
		o := runDiff(t, maxSteps, func(env *memEnv) (*Function, []uint64) {
			return addParsedModule(t, env, fuseAllIdiomsSource, "hot"), []uint64{1 << 40}
		})
		if o.errStr != ErrStepLimit.Error() {
			t.Fatalf("MaxSteps=%d: want step limit, got %q", maxSteps, o.errStr)
		}
	}
}

// TestInlineCacheStats pins the monomorphic inline-cache protocol: one
// miss on first resolution, hits for every repeat of the same target,
// a fresh miss after an epoch bump flushes the lowering, and no cache
// activity at all with fusion off.
func TestInlineCacheStats(t *testing.T) {
	build := func(env *memEnv) *Function {
		leaf := NewFunction("leaf", 1)
		leaf.Ret(leaf.Add(leaf.Param(0), Imm(1)))
		env.addFunc(leaf.Fn())

		b := NewFunction("icloop", 1)
		n := b.Param(0)
		fp := b.FuncAddr("leaf")
		i := b.Mov(Imm(0))
		acc := b.Mov(Imm(0))
		b.Br("loop")
		b.NewBlock("loop")
		c := b.CmpLT(i, n)
		b.CondBr(c, "body", "done")
		b.NewBlock("body")
		b.Assign(acc, b.CallInd(fp, acc))
		b.Assign(i, b.Add(i, Imm(1)))
		b.Br("loop")
		b.NewBlock("done")
		b.Ret(acc)
		env.addFunc(b.Fn())
		return b.Fn()
	}

	inner := newMemEnv()
	env := &epochMemEnv{memEnv: inner, epoch: 1}
	fn := build(inner)
	eng := NewEngine()
	if _, err := eng.Call(env, fn, 50); err != nil {
		t.Fatal(err)
	}
	if st := eng.Fusion(); st.ICMisses != 1 || st.ICHits != 49 {
		t.Errorf("after 50 iterations: misses=%d hits=%d, want 1 and 49", st.ICMisses, st.ICHits)
	}

	// An epoch bump discards the lowering — and the caches inside it.
	env.epoch++
	if _, err := eng.Call(env, fn, 50); err != nil {
		t.Fatal(err)
	}
	if st := eng.Fusion(); st.ICMisses != 2 || st.ICHits != 98 {
		t.Errorf("after epoch bump: misses=%d hits=%d, want 2 and 98", st.ICMisses, st.ICHits)
	}

	// With fusion off the cache is bypassed entirely.
	eng.SetFuse(false)
	if _, err := eng.Call(env, fn, 50); err != nil {
		t.Fatal(err)
	}
	if st := eng.Fusion(); st.ICMisses != 2 || st.ICHits != 98 {
		t.Errorf("fuse off still drives the cache: misses=%d hits=%d", st.ICMisses, st.ICHits)
	}
}

// TestInlineCachePolymorphicSite drives one indirect-call site with an
// alternating target: every call must miss (the cache is monomorphic)
// and, crucially, dispatch to the *current* target, never the cached
// one. runDiff separately proves the results match the reference.
func TestInlineCachePolymorphicSite(t *testing.T) {
	build := func(env *memEnv) (*Function, []uint64) {
		a := NewFunction("incA", 1)
		a.Ret(a.Add(a.Param(0), Imm(1)))
		addrA := env.addFunc(a.Fn())
		bfn := NewFunction("incB", 1)
		bfn.Ret(bfn.Add(bfn.Param(0), Imm(100)))
		addrB := env.addFunc(bfn.Fn())

		b := NewFunction("poly", 3)
		n := b.Param(0)
		i := b.Mov(Imm(0))
		acc := b.Mov(Imm(0))
		b.Br("loop")
		b.NewBlock("loop")
		c := b.CmpLT(i, n)
		b.CondBr(c, "body", "done")
		b.NewBlock("body")
		odd := b.And(i, Imm(1))
		fp := b.Select(odd, b.Param(1), b.Param(2))
		b.Assign(acc, b.CallInd(fp, acc))
		b.Assign(i, b.Add(i, Imm(1)))
		b.Br("loop")
		b.NewBlock("done")
		b.Ret(acc)
		env.addFunc(b.Fn())
		return b.Fn(), []uint64{10, addrA, addrB}
	}

	env := newMemEnv()
	fn, args := build(env)
	eng := NewEngine()
	ret, err := eng.Call(env, fn, args...)
	if err != nil {
		t.Fatal(err)
	}
	// 5 calls through incA (+1) and 5 through incB (+100).
	if ret != 5*1+5*100 {
		t.Errorf("poly dispatched through stale cache: ret=%d, want 505", ret)
	}
	if st := eng.Fusion(); st.ICHits != 0 || st.ICMisses != 10 {
		t.Errorf("alternating targets: hits=%d misses=%d, want 0 and 10", st.ICHits, st.ICMisses)
	}
}

// TestProfileGuidedFusion pins the policy: a straight-line function is
// cold under the static heuristic, becomes hot when an installed
// profile says it runs often, and Profile() harvests the counts that
// close that feedback loop — surviving cache flushes.
func TestProfileGuidedFusion(t *testing.T) {
	env := newMemEnv()
	f := &Function{Name: "sl2", NParams: 0, NRegs: 4, Blocks: []*Block{
		{Name: "entry", Instrs: []Instr{
			{Op: OpConst, Dst: 0, Imm: 7},
			{Op: OpAdd, Dst: 1, A: R(0), B: Imm(1)},
			{Op: OpConst, Dst: 2, Imm: 3},
			{Op: OpMul, Dst: 3, A: R(1), B: R(2)},
			{Op: OpRet, A: R(3)},
		}},
	}}
	env.addFunc(f)

	eng := NewEngine()
	const runs = 40
	for i := 0; i < runs; i++ {
		if _, err := eng.Call(env, f); err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.FuseSites()["sl2"]; n != 0 {
		t.Errorf("static heuristic fused a straight-line function: %d sites", n)
	}

	p := eng.Profile()
	if p["sl2"] != runs {
		t.Errorf("Profile()[sl2] = %d, want %d", p["sl2"], runs)
	}

	// Feed the harvested profile back: now it is hot.
	eng.SetProfile(p)
	if _, err := eng.Call(env, f); err != nil {
		t.Fatal(err)
	}
	if n := eng.FuseSites()["sl2"]; n != 2 {
		t.Errorf("profiled relink fused %d sites, want 2", n)
	}
	// The profile survives the flush SetProfile performed.
	if p2 := eng.Profile(); p2["sl2"] < runs {
		t.Errorf("Profile() lost flushed counts: %d < %d", p2["sl2"], runs)
	}

	// A below-threshold profile keeps it cold.
	eng2 := NewEngine()
	eng2.SetProfile(map[string]uint64{"sl2": FuseHotThreshold - 1})
	if _, err := eng2.Call(env, f); err != nil {
		t.Fatal(err)
	}
	if n := eng2.FuseSites()["sl2"]; n != 0 {
		t.Errorf("below-threshold profile still fused %d sites", n)
	}
}

// TestFusionCallRetErrorPaths covers the fused call+ret determinism
// corners: the callee erroring, the budget expiring inside the callee,
// and the budget expiring exactly on the ret — all against the
// reference via runDiff (fusion on and off).
func TestFusionCallRetErrorPaths(t *testing.T) {
	// A hot caller whose tail is call+ret; the callee divides its work
	// by looping n times, so step budgets can land anywhere inside it.
	const src = `module cr
func spin(1 params) {
entry:
  %r1 = const 0x0
  br head
head:
  %r2 = cmplt %r1, %r0
  condbr %r2, body, done
body:
  %r1 = add %r1, 0x1
  br head
done:
  ret %r1
}
func hot(1 params) {
entry:
  %r1 = const 0x0
  br head
head:
  %r2 = cmplt %r1, 0x2
  condbr %r2, body, done
body:
  %r1 = add %r1, 0x1
  br head
done:
  %r3 = call spin(%r0)
  ret %r3
}
`
	for maxSteps := 1; maxSteps <= 50; maxSteps++ {
		runDiff(t, maxSteps, func(env *memEnv) (*Function, []uint64) {
			return addParsedModule(t, env, src, "hot"), []uint64{6}
		})
	}
	// Callee errors: the fused ret half must not run.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		const errSrc = `module cre
func boom(1 params) {
entry:
  %r1 = callind %r0()
  ret %r1
}
func hot(1 params) {
entry:
  %r1 = const 0x0
  br head
head:
  %r2 = cmplt %r1, 0x2
  condbr %r2, body, done
body:
  %r1 = add %r1, 0x1
  br head
done:
  %r3 = call boom(%r0)
  ret %r3
}
`
		return addParsedModule(t, env, errSrc, "hot"), []uint64{0x41414141}
	})
	// Corrupt-return pivot through a fused call+ret tail.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		env.intrinsics["mark"] = func([]uint64) (uint64, error) { return 0, nil }
		gadget := NewFunction("gadget", 0)
		gadget.Call("mark")
		gadget.Ret(Imm(7))
		gAddr := env.addFunc(gadget.Fn())

		leaf := NewFunction("leaf", 1)
		leaf.Ret(leaf.Param(0))
		env.addFunc(leaf.Fn())

		// Hot function ending in corrupt_return; then call+ret pair.
		vuln := NewFunction("vuln", 1)
		i := vuln.Mov(Imm(0))
		vuln.Br("loop")
		vuln.NewBlock("loop")
		c := vuln.CmpLT(i, Imm(2))
		vuln.CondBr(c, "body", "done")
		vuln.NewBlock("body")
		vuln.Assign(i, vuln.Add(i, Imm(1)))
		vuln.Br("loop")
		vuln.NewBlock("done")
		vuln.Call(corruptReturnIntrinsic, vuln.Param(0))
		vuln.Ret(vuln.Call("leaf", i))
		env.addFunc(vuln.Fn())
		return vuln.Fn(), []uint64{gAddr}
	})
}
