package vir

import (
	"fmt"
	"strings"
)

// Format renders a function as human-readable assembly-like text, for
// debugging and for golden tests of the compiler passes.
func Format(f *Function) string {
	var sb strings.Builder
	flags := ""
	if f.Sandboxed {
		flags += " sandboxed"
	}
	if f.Labeled {
		flags += " labeled"
	}
	if f.MmapMasked {
		flags += " mmapmasked"
	}
	if f.Translated {
		flags += " translated"
	}
	fmt.Fprintf(&sb, "func %s(%d params)%s {\n", f.Name, f.NParams, flags)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(formatInstr(in))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// FormatModule renders every function in the module.
func FormatModule(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, f := range m.Funcs {
		sb.WriteString(Format(f))
	}
	return sb.String()
}

func formatInstr(in Instr) string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%%r%d = const %#x", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("%%r%d = mov %s", in.Dst, in.A)
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE:
		return fmt.Sprintf("%%r%d = %v %s, %s", in.Dst, in.Op, in.A, in.B)
	case OpSelect:
		return fmt.Sprintf("%%r%d = select %s, %s, %s", in.Dst, in.A, in.B, in.C)
	case OpLoad:
		return fmt.Sprintf("%%r%d = load%d [%s]", in.Dst, in.Size, in.A)
	case OpStore:
		return fmt.Sprintf("store%d [%s], %s", in.Size, in.A, in.B)
	case OpMemcpy:
		return fmt.Sprintf("memcpy [%s], [%s], %s", in.A, in.B, in.C)
	case OpBr:
		return fmt.Sprintf("br %s", in.Blk1)
	case OpCondBr:
		return fmt.Sprintf("condbr %s, %s, %s", in.A, in.Blk1, in.Blk2)
	case OpCall:
		return fmt.Sprintf("%%r%d = call %s(%s)", in.Dst, in.Sym, formatArgs(in.Args))
	case OpCallInd:
		return fmt.Sprintf("%%r%d = callind %s(%s)", in.Dst, in.A, formatArgs(in.Args))
	case OpCFICallInd:
		return fmt.Sprintf("%%r%d = cfi.callind %s(%s)", in.Dst, in.A, formatArgs(in.Args))
	case OpRet:
		return fmt.Sprintf("ret %s", in.A)
	case OpCFIRet:
		return fmt.Sprintf("cfi.ret %s", in.A)
	case OpPortIn:
		return fmt.Sprintf("%%r%d = portin %s", in.Dst, in.A)
	case OpPortOut:
		return fmt.Sprintf("portout %s, %s", in.A, in.B)
	case OpAsm:
		return fmt.Sprintf("asm %q", in.Sym)
	case OpFuncAddr:
		return fmt.Sprintf("%%r%d = funcaddr %s", in.Dst, in.Sym)
	case OpMaskGhost:
		return fmt.Sprintf("%%r%d = maskghost %s", in.Dst, in.A)
	case OpCFILabel:
		return fmt.Sprintf("cfi.label %#x", in.Imm)
	}
	return fmt.Sprintf("?%v", in.Op)
}

func formatArgs(args []Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
