package vir

import (
	"fmt"

	"repro/internal/hw"
)

// This file is the linking/lowering stage of the pre-linked execution
// engine (engine.go). It compiles a *Function once into a flat,
// pre-resolved form so the hot loop never re-derives anything the IR
// already fixes:
//
//   - block names become integer code offsets (no FindBlock per branch),
//   - direct-call symbols become *linkedFn pointers or pre-interned
//     intrinsic names (no double string-map lookup per call),
//   - funcaddr symbols become immediates where the code space already
//     binds them,
//   - the deterministic clock charges of each straight-line segment are
//     summed at link time — per cost tag, so the ledger attribution
//     survives batching — and applied with one Clock.Charge per tag
//     present in the segment (at most a handful).
//
// Lowered code must stay *observably identical* to the reference
// interpreter: same return values, same errors (strings included), and
// a bit-identical virtual clock at every observation point. The clock
// is observable wherever the Env is entered (loads, stores, memcpy,
// port I/O, intrinsics) and wherever execution can stop (errors). The
// linker therefore batches charges per SEGMENT, not per block: a
// segment is a maximal instruction run in which only the final
// instruction may fault, call out, or transfer control, so by the time
// a segment is entered every instruction in it is certain to execute
// and the summed charge is exact. The step budget is also accounted
// per segment, with a per-instruction slow path when the budget
// expires inside one (engine.go).

// CodeEpochs is an optional Env capability: an Env whose code bindings
// can change (new translations laid out, foreign code planted) reports
// a monotonically increasing epoch, and the engine flushes its linked-
// code cache whenever the epoch moves — mirroring the walk-cache
// invalidation discipline of the memory fast paths. Envs that do not
// implement it are assumed to have static symbol bindings for the
// lifetime of the Engine.
type CodeEpochs interface {
	CodeEpoch() uint64
}

// Internal pseudo-opcodes produced by the linker. They live above the
// public opcode range and never appear in IR.
const (
	// opFellOff: execution ran past the end of a block (Sym holds the
	// block name for the error message).
	opFellOff Opcode = 0x80 + iota
	// opCallIntrinsic: a direct call whose symbol did not resolve in
	// the code space at link time — dispatches straight to
	// Env.Intrinsic.
	opCallIntrinsic
	// opCorruptReturn: the __corrupt_return stack-smash model.
	opCorruptReturn
	// opFuncAddrImm: a funcaddr whose symbol resolved at link time;
	// Imm holds the code address (pure, CostALU folded).
	opFuncAddrImm
	// opUnimpl: an opcode the linker does not know; reproduces the
	// reference "unimplemented opcode" error at execution time.
	opUnimpl
	// opMaskElided: an OpMaskGhost the admission checker proved
	// redundant (Function.Proofs): register b already holds the masked
	// value, so the host work collapses to a register copy. The
	// modeled charge is unchanged — virtual cycles are charged for the
	// mask the virtual machine still "executes".
	opMaskElided
	// opCFICallIndElided: an OpCFICallInd whose target provably passed
	// an equivalent CFI check earlier on all paths. Identical to
	// OpCFICallInd minus the host-side cfiCheck call; charges
	// unchanged.
	opCFICallIndElided
)

// linkedInstr is one lowered instruction. Branch targets are code
// indices, direct calls carry the resolved callee, and segment heads
// carry the batched step/clock accounting for their segment.
type linkedInstr struct {
	op   Opcode
	dst  int
	a    Value
	b    Value
	c    Value
	imm  uint64
	size int
	sym  string
	args []Value

	t1, t2 int       // lowered Blk1/Blk2 (indices into linkedFn.code)
	callee *linkedFn // pre-resolved direct-call target

	// op2 is the secondary opcode of a fused superinstruction (the
	// comparison of a cmp+br pair, the ALU op of a const+ALU pair).
	op2 Opcode
	// fused holds the original lowered constituents of a
	// superinstruction, in execution order — the fusion table the
	// step-limit slow path replays per-instruction charges from. Nil on
	// ordinary instructions.
	fused []linkedInstr

	// icTarget/icFn are the site's monomorphic inline cache for
	// indirect calls: the last resolved (code address, lowered callee)
	// pair. A hit skips the Env address resolution and the linked-code
	// lookup; the cache dies with the linked code on every epoch flush,
	// so it can never outlive the code-space bindings it captured.
	icTarget uint64
	icFn     *linkedFn

	// charges is this instruction's own deterministic pre-charge (the
	// cycles the reference interpreter advances unconditionally before
	// the instruction can fail or call out), broken down by cost tag.
	// It aliases a shared per-opcode slice (instrCharges) — never
	// mutate it — except on superinstructions, where it is the
	// link-time concatenation of the constituents' shared slices.
	charges []tagCharge
	// segLen > 0 marks a segment head; it counts the instructions in
	// the segment and segCharges sums their charges per tag (built at
	// link time, so the hot loop applies the batch without un-batching).
	segLen     int
	segCharges []tagCharge
}

// tagCharge is one (tag, cycles) component of a deterministic charge.
type tagCharge struct {
	tag hw.Tag
	n   uint64
}

// linkedFn is a function lowered to a flat code array. calls counts
// frame entries since this lowering — the raw material of the
// execution-count profile that guides fusion (Engine.Profile folds the
// counts of flushed lowerings into its retained profile).
type linkedFn struct {
	fn    *Function
	code  []linkedInstr
	calls uint64
}

// Shared per-opcode charge slices: every linkedInstr of a given shape
// aliases the same slice, so lowering allocates nothing per instruction
// and the hot paths never build charge lists at run time.
var (
	chargeALU     = []tagCharge{{hw.TagEngine, hw.CostALU}}
	chargeMask    = []tagCharge{{hw.TagSandbox, hw.CostMaskCheck}}
	chargeLabel   = []tagCharge{{hw.TagCFI, hw.CostCFILabel}}
	chargeBranch  = []tagCharge{{hw.TagEngine, hw.CostBranch}}
	chargeCall    = []tagCharge{{hw.TagEngine, hw.CostCall}}
	chargeCFICall = []tagCharge{{hw.TagEngine, hw.CostCall}, {hw.TagCFI, hw.CostCFICheck}}
)

// instrCharges returns the deterministic pre-charge of a lowered
// instruction: the cycles the reference interpreter advances before
// the instruction can observably fail or enter the Env, per cost tag.
// Instructions whose charges are conditional (funcaddr resolved at run
// time) or internal to the Env (loads, stores, port I/O) charge zero
// here. Composite charges (CFI call/return: base call + label check)
// list one component per tag, in the order the reference interpreter
// charges them.
func instrCharges(op Opcode) []tagCharge {
	switch op {
	case OpConst, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE, OpSelect,
		opFuncAddrImm:
		return chargeALU
	case OpMaskGhost, opMaskElided:
		return chargeMask
	case OpCFILabel:
		return chargeLabel
	case OpBr, OpCondBr:
		return chargeBranch
	case OpCall, opCallIntrinsic, opCorruptReturn, OpCallInd, OpRet:
		return chargeCall
	case OpCFICallInd, opCFICallIndElided, OpCFIRet:
		return chargeCFICall
	}
	return nil
}

// endsSegment reports whether a lowered instruction must terminate its
// segment: anything that can fault, enter the Env, or transfer control.
// Only such instructions may sit at a position where the following
// instruction's execution is not yet certain.
func endsSegment(op Opcode) bool {
	switch op {
	case OpConst, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE, OpSelect,
		OpMaskGhost, opMaskElided, OpCFILabel, opFuncAddrImm,
		opFusedConstALU:
		return false
	}
	return true
}

// link lowers fn against env's current symbol bindings. Direct calls
// and funcaddrs resolve through the same Env lookups the reference
// interpreter performs per step; with epoch invalidation (CodeEpochs)
// the bindings cannot go stale between linking and execution.
//
// Branches to unknown blocks panic: the reference interpreter crashes
// on them too (FindBlock returns nil), and every translator-admitted
// function has verified branch targets.
func (e *Engine) link(env Env, fn *Function) *linkedFn {
	lf := &linkedFn{fn: fn}
	// Memoize before lowering so recursive and mutually recursive
	// direct calls link to the function being lowered.
	e.cache[fn] = lf

	// Pass 1: assign flat code offsets. A block that does not end in a
	// terminator gets a trailing opFellOff slot so running off its end
	// reproduces the reference error (and consumes a step, exactly as
	// the reference loop iteration that detects it does).
	starts := make(map[string]int, len(fn.Blocks))
	off := 0
	for _, b := range fn.Blocks {
		starts[b.Name] = off
		off += len(b.Instrs)
		if n := len(b.Instrs); n == 0 || !isTerminator(b.Instrs[n-1].Op) {
			off++
		}
	}
	lf.code = make([]linkedInstr, 0, off)

	// Pass 2: lower instructions.
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			lf.code = append(lf.code, e.lower(env, fn, b, i, starts))
		}
		if n := len(b.Instrs); n == 0 || !isTerminator(b.Instrs[n-1].Op) {
			lf.code = append(lf.code, linkedInstr{op: opFellOff, sym: b.Name})
		}
	}

	// Pass 2.5: superinstruction fusion, when the profile (or the loop
	// heuristic) marks the function hot. Runs before segment accounting
	// so fused charge lists and step weights batch exactly like their
	// constituents would have.
	isStart := make([]bool, len(lf.code))
	for _, b := range fn.Blocks {
		isStart[starts[b.Name]] = true
	}
	if e.shouldFuse(fn) {
		e.fusePass(lf, isStart)
	}

	// Pass 3: segment accounting. Segments begin at block starts (all
	// branch targets are block starts) and after any instruction that
	// can fault, call out, or branch. A segment's step count is the sum
	// of its instructions' headSteps (a superinstruction weighs its
	// constituents), and gap slots — consumed second halves of fused
	// pairs, never executed — contribute nothing and never head a
	// segment.
	head := 0
	for i := range lf.code {
		if lf.code[i].op == opFusedGap {
			if head == i {
				// The preceding superinstruction ended a segment; the
				// next one starts after the gap.
				head = i + 1
			}
			continue
		}
		if i > head && isStart[i] {
			// Fallthrough into a block start: close the previous
			// segment here.
			head = i
		}
		lf.code[head].segLen += lf.code[i].headSteps()
		for _, tc := range lf.code[i].charges {
			lf.code[head].segCharges = addTagCharge(lf.code[head].segCharges, tc)
		}
		if endsSegment(lf.code[i].op) {
			head = i + 1
		}
	}
	return lf
}

// addTagCharge merges one charge component into a segment's per-tag
// batch, keeping first-occurrence order (deterministic, and matching
// the order charges first appear in the segment).
func addTagCharge(batch []tagCharge, tc tagCharge) []tagCharge {
	for i := range batch {
		if batch[i].tag == tc.tag {
			batch[i].n += tc.n
			return batch
		}
	}
	return append(batch, tc)
}

// lower translates the instruction b.Instrs[idx].
func (e *Engine) lower(env Env, fn *Function, b *Block, idx int, starts map[string]int) linkedInstr {
	in := &b.Instrs[idx]
	li := linkedInstr{
		op: in.Op, dst: in.Dst, a: in.A, b: in.B, c: in.C,
		imm: in.Imm, size: in.Size, sym: in.Sym, args: in.Args,
	}
	switch in.Op {
	case OpBr:
		li.t1 = blockStart(fn, b, in.Blk1, starts)
	case OpCondBr:
		li.t1 = blockStart(fn, b, in.Blk1, starts)
		li.t2 = blockStart(fn, b, in.Blk2, starts)
	case OpCall:
		switch {
		case in.Sym == corruptReturnIntrinsic:
			li.op = opCorruptReturn
		default:
			if addr, ok := env.FuncAddr(in.Sym); ok {
				if callee, ok := env.FuncByAddr(addr); ok {
					li.callee = e.linked(env, callee)
					break
				}
			}
			li.op = opCallIntrinsic
		}
	case OpAsm:
		// Pre-concatenate the intrinsic name the reference builds per
		// execution.
		li.sym = "asm:" + in.Sym
	case OpFuncAddr:
		if addr, ok := env.FuncAddr(in.Sym); ok {
			li.op = opFuncAddrImm
			li.imm = addr
		}
	case OpMaskGhost:
		// Proof-carrying elision: when the admission checker proved a
		// register already holds the masked value on every path, the
		// mask collapses to a copy from it (operand b). Charges stay
		// those of the mask — the virtual machine still executes it.
		if e.elide {
			if p, ok := fn.Proofs.MaskAt(b.Name, idx); ok {
				li.op = opMaskElided
				li.b = R(p.CopyFrom)
				e.stats.MasksElided++
			}
		}
	case OpCFICallInd:
		// Dominated CFI check: the target value already passed an
		// identical check on every path, so the host-side re-check is
		// skipped. Charges stay those of the checked call.
		if e.elide && fn.Proofs.CFIDominatedAt(b.Name, idx) {
			li.op = opCFICallIndElided
			e.stats.CFIElided++
		}
	case OpConst, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE, OpSelect,
		OpLoad, OpStore, OpMemcpy, OpCallInd,
		OpRet, OpCFIRet, OpPortIn, OpPortOut, OpCFILabel:
		// Lowered as-is.
	default:
		li.op = opUnimpl
		li.imm = uint64(in.Op)
	}
	li.charges = instrCharges(li.op)
	return li
}

func blockStart(fn *Function, b *Block, name string, starts map[string]int) int {
	t, ok := starts[name]
	if !ok {
		panic(fmt.Sprintf("vir: link %s: branch in block %s to unknown block %q",
			fn.Name, b.Name, name))
	}
	return t
}
