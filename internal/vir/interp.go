package vir

import (
	"errors"
	"fmt"

	"repro/internal/hw"
)

// Env is the world an executing IR function sees: memory (through the
// simulated CPU/MMU at supervisor privilege), host intrinsics (kernel
// services exposed to modules), the code space (function-pointer
// resolution), and the clock. The kernel provides the Env when it runs
// module code.
type Env interface {
	// Load/Store/Memcpy access simulated virtual memory at the
	// privilege of the executing context.
	Load(addr hw.Virt, size int) (uint64, error)
	Store(addr hw.Virt, size int, v uint64) error
	Memcpy(dst, src hw.Virt, n int) error
	// Intrinsic invokes a named host service (console printing,
	// kernel helpers the module links against).
	Intrinsic(name string, args []uint64) (uint64, error)
	// FuncByAddr resolves a code address to a function, if the address
	// is the entry point of one.
	FuncByAddr(addr uint64) (*Function, bool)
	// FuncAddr returns the code address of a named function.
	FuncAddr(name string) (uint64, bool)
	// InKernelCode reports whether addr lies inside kernel code space
	// (the CFI pass also masks targets to this range).
	InKernelCode(addr uint64) bool
	// PortIn/PortOut access the I/O port bus. Under Virtual Ghost the
	// kernel's Env routes these through the SVA VM's checked I/O
	// instructions; natively they hit the bus directly.
	PortIn(port uint16) (uint64, error)
	PortOut(port uint16, v uint64) error
	Clock() *hw.Clock
}

// CFIViolation is raised when an instrumented return or indirect call
// detects an illegal target. The kernel terminates the offending thread
// (paper §4.5: "the CFI instrumentation would detect that and terminate
// the execution of the kernel thread").
type CFIViolation struct {
	Fn     string
	Target uint64
	Reason string
}

func (e *CFIViolation) Error() string {
	return fmt.Sprintf("vir: CFI violation in %s: target %#x: %s", e.Fn, e.Target, e.Reason)
}

// ErrStepLimit is returned when execution exceeds the interpreter's
// step budget (runaway loop guard).
var ErrStepLimit = errors.New("vir: step limit exceeded")

// corruptReturnIntrinsic is the interpreter-level model of a stack-smash
// that overwrites a return address: calling it stores an override that
// the enclosing function's return will use as its control target.
const corruptReturnIntrinsic = "__corrupt_return"

// Interp executes IR functions against an Env.
type Interp struct {
	Env      Env
	MaxSteps int
	steps    int
	active   bool
}

// NewInterp creates an interpreter with the default step budget.
func NewInterp(env Env) *Interp {
	return &Interp{Env: env, MaxSteps: 50_000_000}
}

type frame struct {
	fn          *Function
	regs        []uint64
	retOverride uint64 // code address forced by __corrupt_return; 0 = none
	overridden  bool
}

func (fr *frame) val(v Value) uint64 {
	if v.IsImm {
		return v.Imm
	}
	return fr.regs[v.Reg]
}

// Call runs fn with the given arguments and returns its return value.
// The step budget is per top-level run: a re-entrant Call (a host
// intrinsic invoking module code again) shares the outer run's budget
// instead of refreshing it, so an intrinsic-assisted loop cannot dodge
// the runaway guard.
func (ip *Interp) Call(fn *Function, args ...uint64) (uint64, error) {
	if ip.active {
		return ip.exec(fn, args, 0)
	}
	ip.active = true
	ip.steps = 0
	defer func() { ip.active = false }()
	return ip.exec(fn, args, 0)
}

func (ip *Interp) exec(fn *Function, args []uint64, depth int) (uint64, error) {
	if depth > 256 {
		return 0, fmt.Errorf("vir: call depth exceeded in %s", fn.Name)
	}
	if len(args) != fn.NParams {
		return 0, fmt.Errorf("vir: %s wants %d args, got %d", fn.Name, fn.NParams, len(args))
	}
	fr := &frame{fn: fn, regs: make([]uint64, fn.NRegs)}
	copy(fr.regs, args)
	clk := ip.Env.Clock()

	blk := fn.Entry()
	pc := 0
	for {
		ip.steps++
		if ip.steps > ip.MaxSteps {
			return 0, ErrStepLimit
		}
		if pc >= len(blk.Instrs) {
			return 0, fmt.Errorf("vir: fell off block %s/%s", fn.Name, blk.Name)
		}
		in := blk.Instrs[pc]
		switch in.Op {
		case OpConst:
			fr.regs[in.Dst] = in.Imm
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpMov:
			fr.regs[in.Dst] = fr.val(in.A)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpAdd:
			fr.regs[in.Dst] = fr.val(in.A) + fr.val(in.B)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpSub:
			fr.regs[in.Dst] = fr.val(in.A) - fr.val(in.B)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpMul:
			fr.regs[in.Dst] = fr.val(in.A) * fr.val(in.B)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpAnd:
			fr.regs[in.Dst] = fr.val(in.A) & fr.val(in.B)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpOr:
			fr.regs[in.Dst] = fr.val(in.A) | fr.val(in.B)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpXor:
			fr.regs[in.Dst] = fr.val(in.A) ^ fr.val(in.B)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpShl:
			fr.regs[in.Dst] = fr.val(in.A) << (fr.val(in.B) & 63)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpShr:
			fr.regs[in.Dst] = fr.val(in.A) >> (fr.val(in.B) & 63)
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpCmpEQ:
			fr.regs[in.Dst] = b2u(fr.val(in.A) == fr.val(in.B))
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpCmpNE:
			fr.regs[in.Dst] = b2u(fr.val(in.A) != fr.val(in.B))
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpCmpLT:
			fr.regs[in.Dst] = b2u(fr.val(in.A) < fr.val(in.B))
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpCmpGE:
			fr.regs[in.Dst] = b2u(fr.val(in.A) >= fr.val(in.B))
			clk.Charge(hw.TagEngine, hw.CostALU)
		case OpSelect:
			if fr.val(in.A) != 0 {
				fr.regs[in.Dst] = fr.val(in.B)
			} else {
				fr.regs[in.Dst] = fr.val(in.C)
			}
			clk.Charge(hw.TagEngine, hw.CostALU)

		case OpMaskGhost:
			// The sandbox sequence the compiler inserted: compare
			// against the partition bases, OR in the escape bit /
			// zero SVA-internal addresses.
			clk.Charge(hw.TagSandbox, hw.CostMaskCheck)
			fr.regs[in.Dst] = MaskAddress(fr.val(in.A))

		case OpLoad:
			v, err := ip.Env.Load(hw.Virt(fr.val(in.A)), in.Size)
			if err != nil {
				return 0, err
			}
			fr.regs[in.Dst] = v
		case OpStore:
			if err := ip.Env.Store(hw.Virt(fr.val(in.A)), in.Size, fr.val(in.B)); err != nil {
				return 0, err
			}
		case OpMemcpy:
			if err := ip.Env.Memcpy(hw.Virt(fr.val(in.A)), hw.Virt(fr.val(in.B)), int(fr.val(in.C))); err != nil {
				return 0, err
			}

		case OpBr:
			clk.Charge(hw.TagEngine, hw.CostBranch)
			blk = fn.FindBlock(in.Blk1)
			pc = 0
			continue
		case OpCondBr:
			clk.Charge(hw.TagEngine, hw.CostBranch)
			if fr.val(in.A) != 0 {
				blk = fn.FindBlock(in.Blk1)
			} else {
				blk = fn.FindBlock(in.Blk2)
			}
			pc = 0
			continue

		case OpCall:
			clk.Charge(hw.TagEngine, hw.CostCall)
			argv := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				argv[i] = fr.val(a)
			}
			if in.Sym == corruptReturnIntrinsic {
				// Stack smash: overwrite this frame's return target.
				if len(argv) != 1 {
					return 0, fmt.Errorf("vir: %s wants 1 arg", corruptReturnIntrinsic)
				}
				fr.retOverride = argv[0]
				fr.overridden = true
				fr.regs[in.Dst] = 0
				break
			}
			ret, err := ip.dispatchCall(in.Sym, argv, depth)
			if err != nil {
				return 0, err
			}
			fr.regs[in.Dst] = ret

		case OpCallInd, OpCFICallInd:
			clk.Charge(hw.TagEngine, hw.CostCall)
			target := fr.val(in.A)
			if in.Op == OpCFICallInd {
				clk.Charge(hw.TagCFI, hw.CostCFICheck)
				if err := ip.cfiCheckTarget(fn.Name, target); err != nil {
					return 0, err
				}
			}
			callee, ok := ip.Env.FuncByAddr(target)
			if !ok {
				return 0, fmt.Errorf("vir: indirect call in %s to non-code address %#x", fn.Name, target)
			}
			argv := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				argv[i] = fr.val(a)
			}
			ret, err := ip.exec(callee, argv, depth+1)
			if err != nil {
				return 0, err
			}
			fr.regs[in.Dst] = ret

		case OpRet, OpCFIRet:
			clk.Charge(hw.TagEngine, hw.CostCall)
			if in.Op == OpCFIRet {
				clk.Charge(hw.TagCFI, hw.CostCFICheck)
			}
			if fr.overridden {
				// The return address was smashed. An instrumented
				// return checks the target; a plain return pivots
				// control to it (the ROP case).
				target := fr.retOverride
				if in.Op == OpCFIRet {
					if err := ip.cfiCheckTarget(fn.Name, target); err != nil {
						return 0, err
					}
				}
				gadget, ok := ip.Env.FuncByAddr(target)
				if !ok {
					return 0, fmt.Errorf("vir: return pivots to non-code address %#x", target)
				}
				if gadget.NParams != 0 {
					return 0, fmt.Errorf("vir: return pivot target %s expects arguments", gadget.Name)
				}
				return ip.exec(gadget, nil, depth+1)
			}
			return fr.val(in.A), nil

		case OpPortIn:
			v, err := ip.Env.PortIn(uint16(fr.val(in.A)))
			if err != nil {
				return 0, err
			}
			fr.regs[in.Dst] = v
		case OpPortOut:
			if err := ip.Env.PortOut(uint16(fr.val(in.A)), fr.val(in.B)); err != nil {
				return 0, err
			}

		case OpAsm:
			// Inline assembly executes only in code the trusted
			// translator never saw (Native configuration); its effect
			// is whatever host intrinsic the text names.
			if _, err := ip.Env.Intrinsic("asm:"+in.Sym, nil); err != nil {
				return 0, err
			}

		case OpFuncAddr:
			addr, ok := ip.Env.FuncAddr(in.Sym)
			if !ok {
				return 0, fmt.Errorf("vir: funcaddr of unknown symbol %q", in.Sym)
			}
			fr.regs[in.Dst] = addr
			clk.Charge(hw.TagEngine, hw.CostALU)

		case OpCFILabel:
			clk.Charge(hw.TagCFI, hw.CostCFILabel)

		default:
			return 0, fmt.Errorf("vir: unimplemented opcode %v", in.Op)
		}
		pc++
	}
}

// dispatchCall resolves a direct call: module/code-space function first,
// then host intrinsic.
func (ip *Interp) dispatchCall(sym string, args []uint64, depth int) (uint64, error) {
	if addr, ok := ip.Env.FuncAddr(sym); ok {
		if callee, ok := ip.Env.FuncByAddr(addr); ok {
			return ip.exec(callee, args, depth+1)
		}
	}
	return ip.Env.Intrinsic(sym, args)
}

// cfiCheckTarget implements the instrumented control-transfer check:
// the target must be in kernel code space and must be the entry of a
// function that carries a CFI label.
func (ip *Interp) cfiCheckTarget(from string, target uint64) error {
	return cfiCheck(ip.Env, from, target)
}

// cfiCheck is the engine-independent CFI target check shared by the
// reference interpreter and the pre-linked engine, so both construct
// identical violations.
func cfiCheck(env Env, from string, target uint64) error {
	if !env.InKernelCode(target) {
		return &CFIViolation{Fn: from, Target: target, Reason: "target outside kernel code space"}
	}
	callee, ok := env.FuncByAddr(target)
	if !ok {
		return &CFIViolation{Fn: from, Target: target, Reason: "target is not a function entry"}
	}
	if !callee.Labeled {
		return &CFIViolation{Fn: from, Target: target, Reason: "target has no CFI label"}
	}
	return nil
}

// MaskAddress is the semantic of the sandbox masking sequence: ghost-
// partition addresses get the escape bit OR-ed in (pushing them into
// kernel space), and SVA-internal addresses are redirected to 0 (the
// prototype zeroed them; frame 0 is reserved so such accesses fault).
func MaskAddress(a uint64) uint64 {
	if a >= uint64(hw.GhostBase) {
		a |= uint64(hw.GhostEscapeBit)
	}
	if a >= uint64(SVAInternalBase) && a < uint64(SVAInternalTop) {
		a = 0
	}
	return a
}

// SVA internal memory occupies a carve-out of the kernel data segment,
// as in the prototype ("we opted to leave the SVA internal memory
// within the kernel's data segment"). The load/store instrumentation
// zeroes addresses in this window.
const (
	SVAInternalBase hw.Virt = 0xffffff9000000000
	SVAInternalTop  hw.Virt = 0xffffff9040000000 // 1 GiB window
)

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
