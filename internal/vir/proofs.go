package vir

// This file defines the proof-carrying-code side of link-time check
// elision. The static admission checker (internal/compiler/check) can
// prove some instrumentation sites redundant — a maskghost whose input
// is already mask-derived on every incoming path, a CFI indirect-call
// check whose target value already passed an equivalent check — and
// records those proofs here, attached to the translated Function. The
// pre-linked engine (link.go) consumes them: a proven site keeps its
// modeled virtual-cycle charge (the virtual clock must stay
// bit-identical; charges are modeled, not measured) but skips the
// host-side work of re-computing the mask or re-running the CFI check.
//
// The proofs are advisory for correctness of the *host* fast path
// only: an engine that ignores them is still correct, and the
// reference interpreter never looks at them, which is what lets the
// differential tests and fuzzers act as the oracle for the prover.

// MaskProof records that at one OpMaskGhost site, register CopyFrom
// already holds MaskAddress(input) on every path reaching the site
// (MaskAddress is idempotent, so "already masked" values qualify as
// their own mask). The engine may lower the site to a register copy.
type MaskProof struct {
	CopyFrom int
}

// CheckProofs is the per-function elision certificate emitted by the
// admission checker: which instrumentation sites are provably
// redundant, keyed by (block name, instruction index) in the function
// the proof was computed for. A nil *CheckProofs means "nothing
// proven" and is valid everywhere.
type CheckProofs struct {
	// Masks maps block name -> instruction index -> proof for
	// OpMaskGhost sites whose result provably equals an already-held
	// register value.
	Masks map[string]map[int]MaskProof
	// CFIs maps block name -> instruction index -> true for
	// OpCFICallInd sites whose target register provably passed the
	// same CFI check earlier on every path (and has not been
	// redefined since).
	CFIs map[string]map[int]bool
}

// MaskAt returns the proof for the maskghost at block[idx], if any.
func (p *CheckProofs) MaskAt(block string, idx int) (MaskProof, bool) {
	if p == nil {
		return MaskProof{}, false
	}
	mp, ok := p.Masks[block][idx]
	return mp, ok
}

// CFIDominatedAt reports whether the indirect-call check at block[idx]
// is proven dominated by an equivalent earlier check.
func (p *CheckProofs) CFIDominatedAt(block string, idx int) bool {
	return p != nil && p.CFIs[block][idx]
}

// Counts returns how many mask and CFI sites the certificate proves.
func (p *CheckProofs) Counts() (masks, cfis int) {
	if p == nil {
		return 0, 0
	}
	for _, m := range p.Masks {
		masks += len(m)
	}
	for _, m := range p.CFIs {
		cfis += len(m)
	}
	return masks, cfis
}

// Empty reports whether the certificate proves nothing.
func (p *CheckProofs) Empty() bool {
	m, c := p.Counts()
	return m+c == 0
}

// addMask records one mask proof (allocating lazily).
func (p *CheckProofs) addMask(block string, idx int, proof MaskProof) {
	if p.Masks == nil {
		p.Masks = make(map[string]map[int]MaskProof)
	}
	if p.Masks[block] == nil {
		p.Masks[block] = make(map[int]MaskProof)
	}
	p.Masks[block][idx] = proof
}

// addCFI records one dominated-check proof (allocating lazily).
func (p *CheckProofs) addCFI(block string, idx int) {
	if p.CFIs == nil {
		p.CFIs = make(map[string]map[int]bool)
	}
	if p.CFIs[block] == nil {
		p.CFIs[block] = make(map[int]bool)
	}
	p.CFIs[block][idx] = true
}

// AddMask records a proof that the maskghost at block[idx] may be
// lowered to a copy from register copyFrom. Exposed for the prover
// (internal/compiler/check); the engine only reads certificates.
func (p *CheckProofs) AddMask(block string, idx, copyFrom int) {
	p.addMask(block, idx, MaskProof{CopyFrom: copyFrom})
}

// AddCFIDominated records a proof that the indirect-call check at
// block[idx] is dominated by an equivalent earlier check.
func (p *CheckProofs) AddCFIDominated(block string, idx int) {
	p.addCFI(block, idx)
}
