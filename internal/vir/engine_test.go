package vir

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/hw"
)

// This file is the differential harness between the reference
// interpreter (interp.go) and the pre-linked engine (engine.go). The
// engine's contract is observational equivalence: identical return
// values, identical errors (strings included), and a bit-identical
// virtual clock at every observation point. Every test here runs both
// engines over independently constructed environments and asserts the
// observables match.

// epochMemEnv extends memEnv with the CodeEpochs capability so the
// engine's linked-code cache invalidation can be exercised directly.
type epochMemEnv struct {
	*memEnv
	epoch uint64
}

func (e *epochMemEnv) CodeEpoch() uint64 { return e.epoch }

// diffOutcome captures everything observable about one execution.
type diffOutcome struct {
	ret    uint64
	errStr string
	cycles uint64
	mem    map[hw.Virt]byte
	ports  map[uint16]uint64
}

func outcome(ret uint64, err error, env *memEnv) diffOutcome {
	o := diffOutcome{ret: ret, cycles: env.clock.Cycles(), mem: env.mem, ports: env.ports}
	if err != nil {
		o.errStr = err.Error()
	}
	return o
}

// runDiff executes the function produced by setup under the reference
// interpreter and the linked engine both with and without fusion (each
// against its own fresh env) and fails the test unless every observable
// matches across all three. It returns the common outcome.
func runDiff(t *testing.T, maxSteps int, setup func(env *memEnv) (*Function, []uint64)) diffOutcome {
	t.Helper()

	refEnv := newMemEnv()
	fn, args := setup(refEnv)
	ip := NewInterp(refEnv)
	if maxSteps > 0 {
		ip.MaxSteps = maxSteps
	}
	rv, rerr := ip.Call(fn, args...)
	ref := outcome(rv, rerr, refEnv)

	for _, fuse := range []bool{true, false} {
		engEnv := newMemEnv()
		fn2, args2 := setup(engEnv)
		eng := NewEngine()
		eng.SetFuse(fuse)
		if maxSteps > 0 {
			eng.MaxSteps = maxSteps
		}
		ev, eerr := eng.Call(engEnv, fn2, args2...)
		got := outcome(ev, eerr, engEnv)
		tag := map[bool]string{true: "engine(fuse)", false: "engine(nofuse)"}[fuse]

		if got.ret != ref.ret {
			t.Errorf("%s return mismatch: %#x, reference %#x", tag, got.ret, ref.ret)
		}
		if got.errStr != ref.errStr {
			t.Errorf("%s error mismatch:\n  engine:    %q\n  reference: %q", tag, got.errStr, ref.errStr)
		}
		if got.cycles != ref.cycles {
			t.Errorf("%s clock mismatch: %d cycles, reference %d", tag, got.cycles, ref.cycles)
		}
		if !reflect.DeepEqual(got.mem, ref.mem) {
			t.Errorf("%s memory state mismatch: %v, reference %v", tag, got.mem, ref.mem)
		}
		if !reflect.DeepEqual(got.ports, ref.ports) {
			t.Errorf("%s port state mismatch: %v, reference %v", tag, got.ports, ref.ports)
		}
		// The step-limit error must keep its identity, not just its text.
		if errors.Is(rerr, ErrStepLimit) != errors.Is(eerr, ErrStepLimit) {
			t.Errorf("%s ErrStepLimit identity mismatch: %v, reference %v", tag, eerr, rerr)
		}
	}
	return ref
}

func TestEngineDiffArithmeticLoop(t *testing.T) {
	o := runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		b := NewFunction("sumto", 1)
		n := b.Param(0)
		i := b.Mov(Imm(0))
		acc := b.Mov(Imm(0))
		b.Br("loop")
		b.NewBlock("loop")
		c := b.CmpLT(i, n)
		b.CondBr(c, "body", "done")
		b.NewBlock("body")
		b.Assign(acc, b.Add(acc, i))
		b.Assign(i, b.Add(i, Imm(1)))
		b.Br("loop")
		b.NewBlock("done")
		b.Ret(acc)
		env.addFunc(b.Fn())
		return b.Fn(), []uint64{100}
	})
	if o.ret != 4950 {
		t.Errorf("sumto(100) = %d", o.ret)
	}
	if o.cycles == 0 {
		t.Errorf("no cycles charged")
	}
}

func TestEngineDiffAllBinops(t *testing.T) {
	ops := []Opcode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE}
	for _, op := range ops {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
				b := NewFunction("t", 2)
				d := b.Fn().NRegs
				b.Fn().NRegs++
				b.Fn().Entry().Instrs = append(b.Fn().Entry().Instrs,
					Instr{Op: op, Dst: d, A: R(0), B: R(1)},
					Instr{Op: OpRet, A: R(d)},
				)
				env.addFunc(b.Fn())
				return b.Fn(), []uint64{0xdeadbeef, 13}
			})
		})
	}
}

func TestEngineDiffMemoryAndSelect(t *testing.T) {
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		b := NewFunction("mix", 2)
		v := b.Load(b.Param(0), 8)
		b.Store(b.Param(1), v, 8)
		b.Memcpy(b.Add(b.Param(1), Imm(8)), b.Param(0), Imm(4))
		c := b.CmpEQ(v, Imm(0))
		b.Ret(b.Select(c, Imm(1), b.Load(b.Param(1), 4)))
		env.addFunc(b.Fn())
		_ = env.Store(0x1000, 8, 0x1122334455667788)
		return b.Fn(), []uint64{0x1000, 0x2000}
	})
}

func TestEngineDiffMaskGhost(t *testing.T) {
	for _, addr := range []uint64{
		0x1000,                       // user: identity
		uint64(hw.GhostBase) + 0x10,  // ghost: escape bit
		uint64(SVAInternalBase) + 8,  // SVA internal: zeroed
		uint64(SVAInternalTop) + 0x8, // above the window
	} {
		runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
			f := &Function{Name: "mask", NParams: 1, NRegs: 2, Blocks: []*Block{
				{Name: "entry", Instrs: []Instr{
					{Op: OpMaskGhost, Dst: 1, A: R(0)},
					{Op: OpRet, A: R(1)},
				}},
			}}
			env.addFunc(f)
			return f, []uint64{addr}
		})
	}
}

func TestEngineDiffCallsAndIntrinsics(t *testing.T) {
	o := runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		callee := NewFunction("double", 1)
		callee.Ret(callee.Add(callee.Param(0), callee.Param(0)))
		env.addFunc(callee.Fn())
		env.intrinsics["probe"] = func(args []uint64) (uint64, error) {
			return args[0] + 1, nil
		}
		caller := NewFunction("main", 0)
		a := caller.Call("double", Imm(20))
		bb := caller.Call("probe", a)
		caller.Ret(bb)
		env.addFunc(caller.Fn())
		return caller.Fn(), nil
	})
	if o.ret != 41 {
		t.Errorf("main = %d", o.ret)
	}
}

func TestEngineDiffRecursion(t *testing.T) {
	// Direct recursion exercises the memoize-before-lower path of the
	// linker and the engine's frame stacking.
	o := runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		b := NewFunction("fib", 1)
		n := b.Param(0)
		c := b.CmpLT(n, Imm(2))
		b.CondBr(c, "base", "rec")
		b.NewBlock("base")
		b.Ret(n)
		b.NewBlock("rec")
		a := b.Call("fib", b.Sub(n, Imm(1)))
		bb := b.Call("fib", b.Sub(n, Imm(2)))
		b.Ret(b.Add(a, bb))
		env.addFunc(b.Fn())
		return b.Fn(), []uint64{15}
	})
	if o.ret != 610 {
		t.Errorf("fib(15) = %d", o.ret)
	}
}

func TestEngineDiffCallDepthExceeded(t *testing.T) {
	o := runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		b := NewFunction("down", 1)
		b.Ret(b.Call("down", b.Add(b.Param(0), Imm(1))))
		env.addFunc(b.Fn())
		return b.Fn(), []uint64{0}
	})
	if o.errStr == "" {
		t.Fatalf("infinite recursion did not error")
	}
}

func TestEngineDiffArityMismatch(t *testing.T) {
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		callee := NewFunction("two", 2)
		callee.Ret(Imm(0))
		env.addFunc(callee.Fn())
		caller := NewFunction("main", 0)
		caller.Ret(caller.Call("two", Imm(1)))
		env.addFunc(caller.Fn())
		return caller.Fn(), nil
	})
}

func TestEngineDiffIndirectCalls(t *testing.T) {
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		callee := NewFunction("leaf", 1)
		callee.Ret(callee.Mul(callee.Param(0), Imm(3)))
		env.addFunc(callee.Fn())
		caller := NewFunction("main", 0)
		fp := caller.FuncAddr("leaf")
		caller.Ret(caller.CallInd(fp, Imm(7)))
		env.addFunc(caller.Fn())
		return caller.Fn(), nil
	})
	// Indirect call to a non-code address.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		caller := NewFunction("main", 1)
		caller.Ret(caller.CallInd(caller.Param(0)))
		env.addFunc(caller.Fn())
		return caller.Fn(), []uint64{0x41414141}
	})
}

func TestEngineDiffCFIViolations(t *testing.T) {
	// Unlabeled target inside kernel code space.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		gadget := NewFunction("gadget", 0)
		gadget.Ret(Imm(1))
		addr := env.addFunc(gadget.Fn())
		caller := NewFunction("main", 1)
		caller.Fn().Entry().Instrs = append(caller.Fn().Entry().Instrs,
			Instr{Op: OpCFICallInd, Dst: 0, A: R(0)},
			Instr{Op: OpRet, A: R(0)},
		)
		env.addFunc(caller.Fn())
		return caller.Fn(), []uint64{addr}
	})
	// Target outside kernel code space.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		caller := NewFunction("main", 1)
		caller.Fn().Entry().Instrs = append(caller.Fn().Entry().Instrs,
			Instr{Op: OpCFICallInd, Dst: 0, A: R(0)},
			Instr{Op: OpRet, A: R(0)},
		)
		env.addFunc(caller.Fn())
		return caller.Fn(), []uint64{0x1000}
	})
	// Labeled target succeeds.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		callee := NewFunction("ok", 0)
		callee.Fn().Entry().Instrs = append(
			[]Instr{{Op: OpCFILabel, Imm: 0xCF1}},
			[]Instr{{Op: OpRet, A: Imm(9)}}...,
		)
		callee.Fn().Labeled = true
		addr := env.addFunc(callee.Fn())
		caller := NewFunction("main", 1)
		caller.Fn().Entry().Instrs = append(caller.Fn().Entry().Instrs,
			Instr{Op: OpCFICallInd, Dst: 0, A: R(0)},
			Instr{Op: OpRet, A: R(0)},
		)
		env.addFunc(caller.Fn())
		return caller.Fn(), []uint64{addr}
	})
}

func TestEngineDiffCorruptReturn(t *testing.T) {
	// Plain ret pivots to the gadget (the ROP case).
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		env.intrinsics["mark"] = func([]uint64) (uint64, error) { return 0, nil }
		gadget := NewFunction("gadget", 0)
		gadget.Call("mark")
		gadget.Ret(Imm(0))
		gAddr := env.addFunc(gadget.Fn())
		vuln := NewFunction("vuln", 1)
		vuln.Call(corruptReturnIntrinsic, vuln.Param(0))
		vuln.Ret(Imm(0))
		env.addFunc(vuln.Fn())
		return vuln.Fn(), []uint64{gAddr}
	})
	// cfi.ret blocks the pivot to non-code space.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		gadget := NewFunction("gadget", 0)
		gadget.Ret(Imm(0))
		env.funcs[gadget.Fn().Name] = gadget.Fn()
		env.addrs[0x41410000] = gadget.Fn()
		vuln := NewFunction("vuln", 1)
		vuln.Call(corruptReturnIntrinsic, vuln.Param(0))
		vuln.Fn().Entry().Instrs = append(vuln.Fn().Entry().Instrs,
			Instr{Op: OpCFIRet, A: Imm(0)})
		env.addFunc(vuln.Fn())
		return vuln.Fn(), []uint64{0x41410000}
	})
	// Pivot to a gadget that expects arguments.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		gadget := NewFunction("gadget", 2)
		gadget.Ret(Imm(0))
		gAddr := env.addFunc(gadget.Fn())
		vuln := NewFunction("vuln", 1)
		vuln.Call(corruptReturnIntrinsic, vuln.Param(0))
		vuln.Ret(Imm(0))
		env.addFunc(vuln.Fn())
		return vuln.Fn(), []uint64{gAddr}
	})
}

func TestEngineDiffFellOffBlock(t *testing.T) {
	// The verifier rejects fallthrough blocks, but the engines must
	// still agree on unverified IR.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		f := &Function{Name: "off", NRegs: 1, Blocks: []*Block{
			{Name: "entry", Instrs: []Instr{{Op: OpConst, Dst: 0, Imm: 7}}},
		}}
		env.addFunc(f)
		return f, nil
	})
	// Empty block.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		f := &Function{Name: "empty", Blocks: []*Block{{Name: "entry"}}}
		env.addFunc(f)
		return f, nil
	})
}

func TestEngineDiffPortIOAsmFuncAddr(t *testing.T) {
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		env.intrinsics["asm:nop"] = func([]uint64) (uint64, error) { return 0, nil }
		b := NewFunction("io", 0)
		b.PortOut(Imm(0x40), Imm(0x99))
		b.Asm("nop")
		b.Ret(b.PortIn(Imm(0x40)))
		env.addFunc(b.Fn())
		return b.Fn(), nil
	})
	// funcaddr of an unknown symbol errors identically.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		b := NewFunction("m", 0)
		b.Ret(b.FuncAddr("nonexistent"))
		env.addFunc(b.Fn())
		return b.Fn(), nil
	})
	// Unknown intrinsic errors identically.
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		b := NewFunction("m", 0)
		b.Ret(b.Call("no_such_service"))
		env.addFunc(b.Fn())
		return b.Fn(), nil
	})
}

func TestEngineDiffUnimplementedOpcode(t *testing.T) {
	runDiff(t, 0, func(env *memEnv) (*Function, []uint64) {
		f := &Function{Name: "bad", NRegs: 1, Blocks: []*Block{
			{Name: "entry", Instrs: []Instr{
				{Op: Opcode(0x77)},
				{Op: OpRet, A: Imm(0)},
			}},
		}}
		env.addFunc(f)
		return f, nil
	})
}

// TestEngineDiffStepLimit pins the hardest equivalence: when the step
// budget expires, both engines must stop with ErrStepLimit at the same
// virtual-clock reading, even when the engine's budget check fires at a
// segment head and the limit lands mid-segment. Sweeping MaxSteps
// across a window wider than any segment forces every possible
// expiry offset within a segment.
func TestEngineDiffStepLimit(t *testing.T) {
	for maxSteps := 1; maxSteps <= 40; maxSteps++ {
		o := runDiff(t, maxSteps, func(env *memEnv) (*Function, []uint64) {
			// Long pure runs (8 ALU ops per iteration) with branches
			// between them: segments of length 1, 2, and 9.
			b := NewFunction("spin", 1)
			acc := b.Mov(Imm(1))
			b.Br("loop")
			b.NewBlock("loop")
			b.Assign(acc, b.Add(acc, Imm(1)))
			b.Assign(acc, b.Mul(acc, Imm(3)))
			b.Assign(acc, b.Xor(acc, Imm(0x5a)))
			b.Assign(acc, b.Sub(acc, Imm(2)))
			b.Assign(acc, b.Or(acc, Imm(1)))
			b.Assign(acc, b.And(acc, Imm(0xffff)))
			b.Assign(acc, b.Shl(acc, Imm(1)))
			b.Assign(acc, b.Shr(acc, Imm(1)))
			b.Br("loop")
			env.addFunc(b.Fn())
			return b.Fn(), []uint64{0}
		})
		if o.errStr != ErrStepLimit.Error() {
			t.Fatalf("MaxSteps=%d: want step limit, got %q", maxSteps, o.errStr)
		}
	}
}

// TestEngineDiffStepLimitAcrossEnvOps covers budget expiry in segments
// that end with Env-charged operations (loads), where the final
// instruction's cost lives inside the Env and must not be double- or
// under-charged at the limit.
func TestEngineDiffStepLimitAcrossEnvOps(t *testing.T) {
	for maxSteps := 1; maxSteps <= 24; maxSteps++ {
		runDiff(t, maxSteps, func(env *memEnv) (*Function, []uint64) {
			b := NewFunction("ldspin", 1)
			b.Br("loop")
			b.NewBlock("loop")
			v := b.Load(b.Param(0), 8)
			w := b.Add(v, Imm(1))
			b.Store(b.Param(0), w, 8)
			b.Br("loop")
			env.addFunc(b.Fn())
			return b.Fn(), []uint64{0x1000}
		})
	}
}

// TestStepBudgetPerTopLevelRun covers the Interp.Call fix: a re-entrant
// call (host intrinsic invoking module code through the same engine)
// must share the outer run's step budget instead of refreshing it.
func TestStepBudgetPerTopLevelRun(t *testing.T) {
	// inner burns ~40 steps per invocation; outer loops forever calling
	// the re-entrant intrinsic. With the old per-Call reset, the budget
	// could never expire (each re-entry zeroed the counter).
	build := func(env *memEnv) (*Function, *Function) {
		inner := NewFunction("inner", 0)
		i := inner.Mov(Imm(0))
		inner.Br("loop")
		inner.NewBlock("loop")
		c := inner.CmpLT(i, Imm(10))
		inner.CondBr(c, "body", "done")
		inner.NewBlock("body")
		inner.Assign(i, inner.Add(i, Imm(1)))
		inner.Br("loop")
		inner.NewBlock("done")
		inner.Ret(i)
		env.addFunc(inner.Fn())

		outer := NewFunction("outer", 0)
		outer.Br("loop")
		outer.NewBlock("loop")
		outer.Call("reenter")
		outer.Br("loop")
		env.addFunc(outer.Fn())
		return inner.Fn(), outer.Fn()
	}

	t.Run("reference", func(t *testing.T) {
		env := newMemEnv()
		innerFn, outerFn := build(env)
		ip := NewInterp(env)
		ip.MaxSteps = 5000
		env.intrinsics["reenter"] = func([]uint64) (uint64, error) {
			return ip.Call(innerFn)
		}
		if _, err := ip.Call(outerFn); !errors.Is(err, ErrStepLimit) {
			t.Fatalf("want ErrStepLimit, got %v", err)
		}
		// A fresh top-level run gets a fresh budget.
		if _, err := ip.Call(innerFn); err != nil {
			t.Fatalf("budget did not reset for next top-level run: %v", err)
		}
	})
	t.Run("linked", func(t *testing.T) {
		env := newMemEnv()
		innerFn, outerFn := build(env)
		eng := NewEngine()
		eng.MaxSteps = 5000
		env.intrinsics["reenter"] = func([]uint64) (uint64, error) {
			return eng.Call(env, innerFn)
		}
		if _, err := eng.Call(env, outerFn); !errors.Is(err, ErrStepLimit) {
			t.Fatalf("want ErrStepLimit, got %v", err)
		}
		if _, err := eng.Call(env, innerFn); err != nil {
			t.Fatalf("budget did not reset for next top-level run: %v", err)
		}
	})
}

// TestEngineEpochInvalidation exercises the linked-code cache rule: a
// symbol that resolved to an intrinsic at link time must re-resolve to
// a real function after the code space's bindings change, provided the
// Env reports a new epoch.
func TestEngineEpochInvalidation(t *testing.T) {
	inner := newMemEnv()
	env := &epochMemEnv{memEnv: inner, epoch: 1}
	inner.intrinsics["helper"] = func([]uint64) (uint64, error) { return 1, nil }

	caller := NewFunction("main", 0)
	caller.Ret(caller.Call("helper"))
	inner.addFunc(caller.Fn())

	eng := NewEngine()
	if got, err := eng.Call(env, caller.Fn()); err != nil || got != 1 {
		t.Fatalf("before binding: got %d, %v", got, err)
	}

	// Bind "helper" in code space. Without an epoch bump the stale
	// linked code legitimately keeps hitting the intrinsic.
	helper := NewFunction("helper", 0)
	helper.Ret(Imm(2))
	inner.addFunc(helper.Fn())
	if got, err := eng.Call(env, caller.Fn()); err != nil || got != 1 {
		t.Fatalf("stale epoch should keep the old linkage: got %d, %v", got, err)
	}

	env.epoch++
	if got, err := eng.Call(env, caller.Fn()); err != nil || got != 2 {
		t.Fatalf("after epoch bump: got %d, %v", got, err)
	}

	// And the reference interpreter agrees with the post-bump result.
	if got, err := NewInterp(env).Call(caller.Fn()); err != nil || got != 2 {
		t.Fatalf("reference: got %d, %v", got, err)
	}
}

// TestEngineZeroAllocSteadyState asserts the acceptance criterion that
// the execution loop itself performs no host allocations once warm:
// loops, direct calls, and intrinsic dispatch all run from the arena.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	env := newMemEnv()
	env.intrinsics["sink"] = func(args []uint64) (uint64, error) { return args[0], nil }

	leaf := NewFunction("leaf", 2)
	leaf.Ret(leaf.Add(leaf.Param(0), leaf.Param(1)))
	env.addFunc(leaf.Fn())

	b := NewFunction("work", 1)
	n := b.Param(0)
	i := b.Mov(Imm(0))
	acc := b.Mov(Imm(0))
	b.Br("loop")
	b.NewBlock("loop")
	c := b.CmpLT(i, n)
	b.CondBr(c, "body", "done")
	b.NewBlock("body")
	b.Assign(acc, b.Call("leaf", acc, i))
	b.Assign(acc, b.Call("sink", acc))
	b.Assign(i, b.Add(i, Imm(1)))
	b.Br("loop")
	b.NewBlock("done")
	b.Ret(acc)
	env.addFunc(b.Fn())

	eng := NewEngine()
	// Warm: link the functions and grow the arena.
	if _, err := eng.Call(env, b.Fn(), 64); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := eng.Call(env, b.Fn(), 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Call allocates %v objects/run, want 0", allocs)
	}
}

// TestEngineDiffCorpus runs every function of every checked-in .vir
// module — the adversarial attack corpus, the admission-checker corpus,
// and the example modules — under both engines and asserts identical
// observables. Unverifiable functions are skipped only when *both*
// engines would be undefined on them (bad branch targets); everything
// parseable otherwise runs.
func TestEngineDiffCorpus(t *testing.T) {
	var files []string
	for _, dir := range []string{
		"../attack/testdata",
		"../compiler/check/testdata",
		"../../examples/kernel-module",
	} {
		fs, err := filepath.Glob(filepath.Join(dir, "*.vir"))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files found")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			text, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			m, err := ParseModule(string(text))
			if err != nil {
				t.Skipf("unparseable: %v", err)
			}
			for _, fn := range m.Funcs {
				// Unverifiable IR can crash the reference interpreter
				// (wild branches, out-of-range registers) rather than
				// error; the malformed-but-runnable cases get dedicated
				// diff tests above.
				if VerifyFunction(fn) != nil || fn.NParams > 2 {
					continue
				}
				fn := fn
				t.Run(fn.Name, func(t *testing.T) {
					args := []uint64{0x1000, 8}[:fn.NParams]
					runDiff(t, 100_000, func(env *memEnv) (*Function, []uint64) {
						// Fresh clone per env so any flag mutation
						// stays private.
						mc := m.Clone()
						for _, f := range mc.Funcs {
							env.addFunc(f)
						}
						stubIntrinsics(env)
						return mc.Func(fn.Name), args
					})
				})
			}
		})
	}
}

// stubIntrinsics gives corpus modules the kernel-ish services they
// import, deterministic and side-effect-free.
func stubIntrinsics(env *memEnv) {
	names := []string{"klog_acc", "klog_flush", "cur_pid", "mmap",
		"asm:cli", "asm:sti", "asm:nop", "asm:read_cr3"}
	for _, n := range names {
		n := n
		env.intrinsics[n] = func(args []uint64) (uint64, error) {
			if len(args) > 0 {
				return args[0] ^ uint64(len(n)), nil
			}
			return uint64(len(n)), nil
		}
	}
}

// FuzzEngineDifferential feeds arbitrary module text through the parser
// and, when it verifies, runs every function under both engines and
// requires identical observables. This is the engine's main regression
// net: any divergence the structured tests miss shows up here as a
// one-line reproducer.
func FuzzEngineDifferential(f *testing.F) {
	seeds := []string{
		"module m\nfunc f(0 params) {\nentry:\n  ret 0x0\n}\n",
		"module flow\nfunc loop(1 params) {\nentry:\n  %r1 = const 0x0\n  br head\nhead:\n  %r2 = cmplt %r1, %r0\n  condbr %r2, body, done\nbody:\n  %r1 = add %r1, 0x1\n  br head\ndone:\n  %r3 = select %r2, %r1, 0xff\n  ret %r3\n}\n",
		"module inst\nfunc g(2 params) {\nentry:\n  cfi.label 0xcf1\n  %r2 = maskghost %r0\n  %r3 = load8 [%r2]\n  store8 [%r2], %r3\n  cfi.ret %r3\n}\n",
		"module io\nfunc drv(0 params) {\nentry:\n  %r0 = portin 0x60\n  portout 0x61, %r0\n  %r1 = funcaddr drv\n  %r2 = callind %r1(%r0)\n  ret %r2\n}\n",
		"module c\nfunc rec(1 params) {\nentry:\n  %r1 = call rec(%r0)\n  ret %r1\n}\n",
		"module s\nfunc spin(0 params) {\nentry:\n  br entry\n}\n",
		// Redundant re-masks and a dominated indirect re-check: the
		// shapes the check prover elides (fuzzed here with Proofs nil,
		// i.e. the plain lowering; check's FuzzElisionDifferential
		// covers the elided lowering).
		"module r\nfunc h(1 params) {\nentry:\n  cfi.label 0xcf1\n  %r1 = maskghost %r0\n  store8 [%r1], 0x1\n  %r2 = maskghost %r0\n  %r3 = load8 [%r2]\n  %r4 = funcaddr h2\n  %r5 = cfi.callind %r4(%r3)\n  %r6 = cfi.callind %r4(%r5)\n  cfi.ret %r6\n}\nfunc h2(1 params) {\nentry:\n  cfi.label 0xcf1\n  cfi.ret %r0\n}\n",
		// Fusable idioms in a hot (back-edged) function: cmp+condbr,
		// add+br back-edge, const+ALU, and the call+ret pair — the
		// shapes the superinstruction pass collapses (fuse.go).
		"module fu\nfunc leaf(1 params) {\nentry:\n  %r1 = add %r0, 0x1\n  ret %r1\n}\nfunc hot(1 params) {\nentry:\n  %r1 = const 0x0\n  br head\nhead:\n  %r2 = cmplt %r1, %r0\n  condbr %r2, body, done\nbody:\n  %r3 = const 0x3\n  %r4 = mul %r1, %r3\n  %r1 = add %r1, 0x1\n  br head\ndone:\n  %r5 = call leaf(%r1)\n  ret %r5\n}\n",
		// Mask+load and mask+store pairs inside a loop.
		"module fm\nfunc mem(1 params) {\nentry:\n  %r1 = const 0x0\n  br head\nhead:\n  %r2 = cmplt %r1, 0x4\n  condbr %r2, body, done\nbody:\n  %r3 = maskghost %r0\n  store8 [%r3], %r1\n  %r4 = maskghost %r0\n  %r5 = load8 [%r4]\n  %r1 = add %r5, 0x1\n  br head\ndone:\n  ret %r1\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseModule(text)
		if err != nil {
			return
		}
		for _, fn := range m.Funcs {
			if VerifyFunction(fn) != nil || fn.NParams > 2 || fn.NRegs > 1<<16 {
				continue
			}
			fn := fn
			args := []uint64{0x2000, 5}[:fn.NParams]

			runFuzz := func(engine string) (diffOutcome, error) {
				env := newMemEnv()
				mc := m.Clone()
				for _, g := range mc.Funcs {
					env.addFunc(g)
				}
				stubIntrinsics(env)
				target := mc.Func(fn.Name)
				var (
					ret  uint64
					rerr error
				)
				if engine == "reference" {
					ip := NewInterp(env)
					ip.MaxSteps = 20_000
					ret, rerr = ip.Call(target, args...)
				} else {
					eng := NewEngine()
					eng.SetFuse(engine != "linked-nofuse")
					eng.MaxSteps = 20_000
					ret, rerr = eng.Call(env, target, args...)
				}
				return outcome(ret, rerr, env), rerr
			}
			ref, rerr := runFuzz("reference")
			for _, engine := range []string{"linked", "linked-nofuse"} {
				got, eerr := runFuzz(engine)
				if got.ret != ref.ret || got.errStr != ref.errStr || got.cycles != ref.cycles {
					t.Fatalf("engines diverge on %s (%s):\n  reference: ret=%#x err=%q cycles=%d\n  linked:    ret=%#x err=%q cycles=%d\nmodule:\n%s",
						fn.Name, engine, ref.ret, ref.errStr, ref.cycles, got.ret, got.errStr, got.cycles, text)
				}
				if !reflect.DeepEqual(got.mem, ref.mem) || !reflect.DeepEqual(got.ports, ref.ports) {
					t.Fatalf("engines diverge on %s (%s) state\nmodule:\n%s", fn.Name, engine, text)
				}
				if errors.Is(rerr, ErrStepLimit) != errors.Is(eerr, ErrStepLimit) {
					t.Fatalf("ErrStepLimit identity diverges on %s (%s)\nmodule:\n%s", fn.Name, engine, text)
				}
			}
		}
	})
}
