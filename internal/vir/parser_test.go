package vir

import (
	"math/rand"
	"strings"
	"testing"
)

// fullCoverageFunc exercises every printable opcode.
func fullCoverageFunc() *Function {
	b := NewFunction("kitchen_sink", 2)
	v := b.Load(b.Param(0), 8)
	b.Store(b.Param(1), v, 4)
	b.Memcpy(b.Param(1), b.Param(0), Imm(32))
	x := b.Add(v, Imm(1))
	x = b.Sub(x, Imm(2))
	x = b.Mul(x, Imm(3))
	x = b.And(x, Imm(0xff))
	x = b.Or(x, Imm(0x100))
	x = b.Xor(x, Imm(0x55))
	x = b.Shl(x, Imm(2))
	x = b.Shr(x, Imm(1))
	c := b.CmpEQ(x, Imm(0))
	c2 := b.CmpNE(x, Imm(1))
	c3 := b.CmpLT(x, Imm(100))
	c4 := b.CmpGE(x, Imm(5))
	s := b.Select(c, c2, c3)
	_ = c4
	b.PortOut(Imm(0x40), s)
	pi := b.PortIn(Imm(0x40))
	fa := b.FuncAddr("helper")
	r := b.CallInd(fa, pi, Imm(7))
	r2 := b.Call("helper", r)
	b.Asm("mov %cr3, %rax")
	mv := b.Mov(r2)
	b.CondBr(mv, "then", "done")
	b.NewBlock("then")
	b.Br("done")
	b.NewBlock("done")
	b.Ret(mv)
	return b.Fn()
}

func TestParserRoundTripKitchenSink(t *testing.T) {
	orig := fullCoverageFunc()
	text := Format(orig)
	parsed, err := ParseFunction(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if got := Format(parsed); got != text {
		t.Errorf("round trip mismatch:\n--- original\n%s\n--- reparsed\n%s", text, got)
	}
	if err := VerifyFunction(parsed); err != nil {
		t.Errorf("parsed function fails verification: %v", err)
	}
}

func TestParserRoundTripInstrumented(t *testing.T) {
	orig := fullCoverageFunc()
	// Hand-instrument (the compiler package would import-cycle here):
	// label + cfi.ret + maskghost forms all appear in printed output.
	orig.Blocks[0].Instrs = append([]Instr{{Op: OpCFILabel, Imm: 0xCF1}}, orig.Blocks[0].Instrs...)
	orig.Labeled = true
	orig.Sandboxed = true
	orig.Translated = true
	last := orig.Blocks[len(orig.Blocks)-1]
	last.Instrs[len(last.Instrs)-1].Op = OpCFIRet
	masked := orig.NRegs
	orig.NRegs++
	orig.Blocks[0].Instrs = append(orig.Blocks[0].Instrs[:1:1],
		append([]Instr{{Op: OpMaskGhost, Dst: masked, A: R(0)}}, orig.Blocks[0].Instrs[1:]...)...)

	text := Format(orig)
	parsed, err := ParseFunction(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if !parsed.Labeled || !parsed.Sandboxed || !parsed.Translated {
		t.Errorf("flags lost: %+v", parsed)
	}
	if got := Format(parsed); got != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", text, got)
	}
}

func TestParseModuleRoundTrip(t *testing.T) {
	m := NewModule("roundtrip")
	f1 := NewFunction("alpha", 1)
	f1.Ret(f1.Add(f1.Param(0), Imm(1)))
	_ = m.AddFunc(f1.Fn())
	f2 := NewFunction("beta", 0)
	f2.Ret(f2.Call("alpha", Imm(41)))
	_ = m.AddFunc(f2.Fn())

	text := FormatModule(m)
	parsed, err := ParseModule(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if parsed.Name != "roundtrip" || len(parsed.Funcs) != 2 {
		t.Fatalf("module structure lost")
	}
	if got := FormatModule(parsed); got != text {
		t.Errorf("module round trip mismatch:\n%s\nvs\n%s", text, got)
	}
}

// TestParsedModuleExecutes: a module written as text assembles and runs.
func TestParsedModuleExecutes(t *testing.T) {
	src := `module handwritten
func fib(1 params) {
entry:
  %r1 = cmplt %r0, 0x2
  condbr %r1, base, rec
base:
  ret %r0
rec:
  %r2 = sub %r0, 0x1
  %r3 = call fib(%r2)
  %r4 = sub %r0, 0x2
  %r5 = call fib(%r4)
  %r6 = add %r3, %r5
  ret %r6
}
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	env := newMemEnv()
	env.addFunc(m.Func("fib"))
	got, err := NewInterp(env).Call(m.Func("fib"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("fib(10) = %d", got)
	}
}

// TestParserRoundTripRandom: random builder-generated programs
// round-trip through the printer and parser.
func TestParserRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		b := NewFunction("rand", 2)
		vals := []Value{b.Param(0), b.Param(1), Imm(uint64(rng.Intn(1000)))}
		pick := func() Value { return vals[rng.Intn(len(vals))] }
		for i := 0; i < 12; i++ {
			switch rng.Intn(7) {
			case 0:
				vals = append(vals, b.Add(pick(), pick()))
			case 1:
				vals = append(vals, b.Xor(pick(), pick()))
			case 2:
				vals = append(vals, b.Load(pick(), 8))
			case 3:
				b.Store(pick(), pick(), 8)
			case 4:
				vals = append(vals, b.CmpLT(pick(), pick()))
			case 5:
				vals = append(vals, b.Select(pick(), pick(), pick()))
			case 6:
				vals = append(vals, b.Call("ext", pick()))
			}
		}
		b.Ret(pick())
		text := Format(b.Fn())
		parsed, err := ParseFunction(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if got := Format(parsed); got != text {
			t.Fatalf("trial %d mismatch:\n%s\nvs\n%s", trial, text, got)
		}
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		"not a function",
		"func broken(x params) {\nentry:\n  ret 0x0\n}",
		"func f(0 params) {\n  ret 0x0\n}",            // instr before label
		"func f(0 params) {\nentry:\n  frobnicate\n}", // unknown op
		"func f(0 params) {\nentry:\n  ret %rX\n}",    // bad register
		"func f(0 params) {\nentry:\n  ret 0x0\n",     // missing brace
	}
	for _, src := range cases {
		if _, err := ParseFunction(src); err == nil {
			t.Errorf("accepted %q", src)
		} else if !strings.Contains(err.Error(), "parse error") {
			t.Errorf("error without location: %v", err)
		}
	}
	if _, err := ParseModule("func f(0 params) {\nentry:\n  ret 0x0\n}"); err == nil {
		t.Errorf("module without header accepted")
	}
}

// FuzzParseFunction exercises the parser against arbitrary inputs: it
// must never panic, and anything it accepts must re-format and re-parse
// to a fixed point.
func FuzzParseFunction(f *testing.F) {
	f.Add(Format(fullCoverageFunc()))
	f.Add("func f(0 params) {\nentry:\n  ret 0x0\n}")
	f.Add("func f(2 params) {\nentry:\n  %r2 = add %r0, %r1\n  ret %r2\n}")
	f.Add("garbage input")
	f.Add("func broken(")
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := ParseFunction(src)
		if err != nil {
			return
		}
		text := Format(fn)
		fn2, err := ParseFunction(text)
		if err != nil {
			t.Fatalf("printer output rejected: %v\n%s", err, text)
		}
		if Format(fn2) != text {
			t.Fatalf("no fixed point:\n%s\nvs\n%s", text, Format(fn2))
		}
	})
}
