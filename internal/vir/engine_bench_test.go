package vir

import "testing"

// benchWorkload builds a call-heavy loop: the shape dominated by the
// costs the pre-linked engine removes (FindBlock per branch, string
// dispatch and fresh frames per call).
func benchWorkload(env *memEnv) *Function {
	leaf := NewFunction("leaf", 2)
	leaf.Ret(leaf.Add(leaf.Param(0), leaf.Param(1)))
	env.addFunc(leaf.Fn())

	b := NewFunction("work", 1)
	n := b.Param(0)
	i := b.Mov(Imm(0))
	acc := b.Mov(Imm(0))
	b.Br("loop")
	b.NewBlock("loop")
	c := b.CmpLT(i, n)
	b.CondBr(c, "body", "done")
	b.NewBlock("body")
	b.Assign(acc, b.Call("leaf", acc, i))
	b.Assign(acc, b.Xor(acc, Imm(0x9e37)))
	b.Assign(i, b.Add(i, Imm(1)))
	b.Br("loop")
	b.NewBlock("done")
	b.Ret(acc)
	env.addFunc(b.Fn())
	return b.Fn()
}

// BenchmarkEngineCallLoop measures the pre-linked engine on the
// call-heavy loop; compare with BenchmarkInterpCallLoop.
func BenchmarkEngineCallLoop(b *testing.B) {
	env := newMemEnv()
	fn := benchWorkload(env)
	eng := NewEngine()
	if _, err := eng.Call(env, fn, 1000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Call(env, fn, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineTracingDisabledZeroAlloc asserts the cost of the tagged
// accounting layer on the engine hot path: with no tracer attached,
// executing pre-linked code — including every per-segment tagged charge
// — performs zero host allocations per call. This is the "tracing
// disabled is free" guarantee: the only disabled-path cost is the nil
// check inside Clock.Charge.
func TestEngineTracingDisabledZeroAlloc(t *testing.T) {
	env := newMemEnv()
	fn := benchWorkload(env)
	eng := NewEngine()
	// Warm up: first call pays one-time linking and frame-pool growth.
	if _, err := eng.Call(env, fn, 200); err != nil {
		t.Fatal(err)
	}
	if env.clock.TracerAttached() {
		t.Fatal("tracer unexpectedly attached")
	}
	before := env.clock.Cycles()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := eng.Call(env, fn, 200); err != nil {
			t.Fatal(err)
		}
	})
	if env.clock.Cycles() == before {
		t.Fatal("workload charged no cycles; hot path not exercised")
	}
	if allocs != 0 {
		t.Errorf("engine hot path allocates %v objects/call with tracing disabled; want 0", allocs)
	}
}

// benchMaskSource is a mask-heavy loop: three memory ops per iteration
// through the same pointer, so two of the three maskghost sites are
// provably redundant — the shape the check prover certifies for
// link-time elision.
const benchMaskSource = `module bm
func hot(2 params) {
entry:
  %r2 = mov 0x0
  br loop
loop:
  %r3 = cmplt %r2, %r1
  condbr %r3, body, done
body:
  %r4 = maskghost %r0
  store8 [%r4], %r2
  %r5 = maskghost %r0
  %r6 = load8 [%r5]
  %r7 = maskghost %r0
  store8 [%r7], %r6
  %r8 = add %r2, 0x1
  %r2 = mov %r8
  br loop
done:
  ret 0x0
}
`

// benchMaskFn parses the mask-heavy loop and attaches the elision
// certificate by hand — exactly what check.ProveFunction emits for
// this code (the check package sits above vir and cannot be imported
// here; prove_test.go in that package pins the equivalence).
func benchMaskFn(b *testing.B) (*memEnv, *Function) {
	b.Helper()
	m, err := ParseModule(benchMaskSource)
	if err != nil {
		b.Fatal(err)
	}
	fn := m.Funcs[0]
	proofs := &CheckProofs{}
	proofs.AddMask("body", 2, 4)
	proofs.AddMask("body", 4, 4)
	fn.Proofs = proofs
	env := newMemEnv()
	env.addFunc(fn)
	return env, fn
}

// BenchmarkEngineMaskLoopElide measures the linked engine on the
// mask-heavy loop with proof-carrying elision on; compare with
// BenchmarkEngineMaskLoopNoElide for the same code with the proofs
// ignored. Virtual cycles are identical in both (the elided lowering
// keeps the modeled charges); only host work differs.
func BenchmarkEngineMaskLoopElide(b *testing.B)   { benchMaskLoop(b, true) }
func BenchmarkEngineMaskLoopNoElide(b *testing.B) { benchMaskLoop(b, false) }

func benchMaskLoop(b *testing.B, elide bool) {
	env, fn := benchMaskFn(b)
	eng := NewEngine()
	eng.SetElide(elide)
	if _, err := eng.Call(env, fn, 0x2000, 1000); err != nil {
		b.Fatal(err)
	}
	if st := eng.Elision(); elide && st.MasksElided == 0 {
		b.Fatal("elision enabled but nothing elided")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Call(env, fn, 0x2000, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCFISource hammers indirect calls through an unchanged target
// register: three of the four cfi.callind checks per iteration are
// dominated by the first. Eliding a CFI check saves real host work
// (a range check plus a map lookup plus a flag test), unlike a mask —
// this is where proof-carrying elision pays.
const benchCFISource = `module bc
func leaf(1 params) {
entry:
  ret %r0
}
func hot(1 params) {
entry:
  %r1 = funcaddr leaf
  %r2 = mov 0x0
  br loop
loop:
  %r3 = cmplt %r2, %r0
  condbr %r3, body, done
body:
  %r4 = cfi.callind %r1(%r2)
  %r5 = cfi.callind %r1(%r4)
  %r6 = cfi.callind %r1(%r5)
  %r7 = cfi.callind %r1(%r6)
  %r8 = add %r2, 0x1
  %r2 = mov %r8
  br loop
done:
  ret 0x0
}
`

// BenchmarkEngineCFILoopElide / NoElide: the linked engine on the
// indirect-call loop with the dominance certificate honoured vs
// ignored. Virtual cycles are identical; only the host-side re-checks
// disappear.
func BenchmarkEngineCFILoopElide(b *testing.B)   { benchCFILoop(b, true) }
func BenchmarkEngineCFILoopNoElide(b *testing.B) { benchCFILoop(b, false) }

func benchCFILoop(b *testing.B, elide bool) {
	m, err := ParseModule(benchCFISource)
	if err != nil {
		b.Fatal(err)
	}
	env := newMemEnv()
	var fn *Function
	for _, g := range m.Funcs {
		g.Labeled = true // parsed text lacks the translator's flag
		env.addFunc(g)
		if g.Name == "hot" {
			fn = g
		}
	}
	proofs := &CheckProofs{}
	proofs.AddCFIDominated("body", 1)
	proofs.AddCFIDominated("body", 2)
	proofs.AddCFIDominated("body", 3)
	fn.Proofs = proofs

	eng := NewEngine()
	eng.SetElide(elide)
	if _, err := eng.Call(env, fn, 1000); err != nil {
		b.Fatal(err)
	}
	if st := eng.Elision(); elide && st.CFIElided == 0 {
		b.Fatal("elision enabled but nothing elided")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Call(env, fn, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFuseSource is a checksum-style loop built entirely of fusable
// idioms: per iteration a cmp+condbr head, four const+ALU pairs, and an
// add+br back-edge — every dispatch collapses into a superinstruction
// when fusion is on (the BenchmarkEngineKChecksum-class shape; the
// mask-pair win rides the MaskLoop benchmarks above, the inline-cache
// win the ICLoop pair below).
const benchFuseSource = `module bf
func hot(2 params) {
entry:
  %r2 = mov 0x0
  br loop
loop:
  %r3 = cmplt %r2, %r1
  condbr %r3, body, done
body:
  %r4 = const 0x9e37
  %r5 = xor %r2, %r4
  %r6 = const 0x1f
  %r7 = mul %r5, %r6
  %r8 = const 0x7
  %r9 = shr %r7, %r8
  %r10 = const 0x3
  %r11 = add %r9, %r10
  %r2 = add %r2, 0x1
  br loop
done:
  ret %r2
}
`

// BenchmarkEngineLoopFuse / NoFuse: the linked engine on the fusable
// loop with the superinstruction pass on vs off. Virtual cycles are
// identical in both (fused charges are the concatenation of the
// constituents'); only dispatch count differs.
func BenchmarkEngineLoopFuse(b *testing.B)   { benchFuseLoop(b, true) }
func BenchmarkEngineLoopNoFuse(b *testing.B) { benchFuseLoop(b, false) }

func benchFuseLoop(b *testing.B, fuse bool) {
	m, err := ParseModule(benchFuseSource)
	if err != nil {
		b.Fatal(err)
	}
	env := newMemEnv()
	fn := m.Funcs[0]
	env.addFunc(fn)
	eng := NewEngine()
	eng.SetFuse(fuse)
	if _, err := eng.Call(env, fn, 0x2000, 1000); err != nil {
		b.Fatal(err)
	}
	if st := eng.Fusion(); fuse && st.SitesFused == 0 {
		b.Fatal("fusion enabled but nothing fused")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Call(env, fn, 0x2000, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// benchICSource hammers one indirect-call site with a monomorphic
// target: with fusion on, every iteration after the first hits the
// inline cache and skips the address resolution and linked-code lookup.
const benchICSource = `module bi
func leaf(1 params) {
entry:
  ret %r0
}
func hot(1 params) {
entry:
  %r1 = funcaddr leaf
  %r2 = mov 0x0
  br loop
loop:
  %r3 = cmplt %r2, %r0
  condbr %r3, body, done
body:
  %r4 = callind %r1(%r2)
  %r5 = callind %r1(%r4)
  %r6 = callind %r1(%r5)
  %r7 = callind %r1(%r6)
  %r8 = add %r2, 0x1
  %r2 = mov %r8
  br loop
done:
  ret 0x0
}
`

// BenchmarkEngineICLoopFuse / NoFuse: the indirect-call loop with the
// monomorphic inline caches on vs off.
func BenchmarkEngineICLoopFuse(b *testing.B)   { benchICLoop(b, true) }
func BenchmarkEngineICLoopNoFuse(b *testing.B) { benchICLoop(b, false) }

func benchICLoop(b *testing.B, fuse bool) {
	m, err := ParseModule(benchICSource)
	if err != nil {
		b.Fatal(err)
	}
	env := newMemEnv()
	var fn *Function
	for _, g := range m.Funcs {
		env.addFunc(g)
		if g.Name == "hot" {
			fn = g
		}
	}
	eng := NewEngine()
	eng.SetFuse(fuse)
	if _, err := eng.Call(env, fn, 1000); err != nil {
		b.Fatal(err)
	}
	if st := eng.Fusion(); fuse && st.ICHits == 0 {
		b.Fatal("fusion enabled but the inline cache never hit")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Call(env, fn, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpCallLoop is the reference interpreter on the same
// workload.
func BenchmarkInterpCallLoop(b *testing.B) {
	env := newMemEnv()
	fn := benchWorkload(env)
	ip := NewInterp(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Call(fn, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
