package vir

import "testing"

// benchWorkload builds a call-heavy loop: the shape dominated by the
// costs the pre-linked engine removes (FindBlock per branch, string
// dispatch and fresh frames per call).
func benchWorkload(env *memEnv) *Function {
	leaf := NewFunction("leaf", 2)
	leaf.Ret(leaf.Add(leaf.Param(0), leaf.Param(1)))
	env.addFunc(leaf.Fn())

	b := NewFunction("work", 1)
	n := b.Param(0)
	i := b.Mov(Imm(0))
	acc := b.Mov(Imm(0))
	b.Br("loop")
	b.NewBlock("loop")
	c := b.CmpLT(i, n)
	b.CondBr(c, "body", "done")
	b.NewBlock("body")
	b.Assign(acc, b.Call("leaf", acc, i))
	b.Assign(acc, b.Xor(acc, Imm(0x9e37)))
	b.Assign(i, b.Add(i, Imm(1)))
	b.Br("loop")
	b.NewBlock("done")
	b.Ret(acc)
	env.addFunc(b.Fn())
	return b.Fn()
}

// BenchmarkEngineCallLoop measures the pre-linked engine on the
// call-heavy loop; compare with BenchmarkInterpCallLoop.
func BenchmarkEngineCallLoop(b *testing.B) {
	env := newMemEnv()
	fn := benchWorkload(env)
	eng := NewEngine()
	if _, err := eng.Call(env, fn, 1000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Call(env, fn, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineTracingDisabledZeroAlloc asserts the cost of the tagged
// accounting layer on the engine hot path: with no tracer attached,
// executing pre-linked code — including every per-segment tagged charge
// — performs zero host allocations per call. This is the "tracing
// disabled is free" guarantee: the only disabled-path cost is the nil
// check inside Clock.Charge.
func TestEngineTracingDisabledZeroAlloc(t *testing.T) {
	env := newMemEnv()
	fn := benchWorkload(env)
	eng := NewEngine()
	// Warm up: first call pays one-time linking and frame-pool growth.
	if _, err := eng.Call(env, fn, 200); err != nil {
		t.Fatal(err)
	}
	if env.clock.TracerAttached() {
		t.Fatal("tracer unexpectedly attached")
	}
	before := env.clock.Cycles()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := eng.Call(env, fn, 200); err != nil {
			t.Fatal(err)
		}
	})
	if env.clock.Cycles() == before {
		t.Fatal("workload charged no cycles; hot path not exercised")
	}
	if allocs != 0 {
		t.Errorf("engine hot path allocates %v objects/call with tracing disabled; want 0", allocs)
	}
}

// BenchmarkInterpCallLoop is the reference interpreter on the same
// workload.
func BenchmarkInterpCallLoop(b *testing.B) {
	env := newMemEnv()
	fn := benchWorkload(env)
	ip := NewInterp(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Call(fn, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
