package vir

import "testing"

// benchWorkload builds a call-heavy loop: the shape dominated by the
// costs the pre-linked engine removes (FindBlock per branch, string
// dispatch and fresh frames per call).
func benchWorkload(env *memEnv) *Function {
	leaf := NewFunction("leaf", 2)
	leaf.Ret(leaf.Add(leaf.Param(0), leaf.Param(1)))
	env.addFunc(leaf.Fn())

	b := NewFunction("work", 1)
	n := b.Param(0)
	i := b.Mov(Imm(0))
	acc := b.Mov(Imm(0))
	b.Br("loop")
	b.NewBlock("loop")
	c := b.CmpLT(i, n)
	b.CondBr(c, "body", "done")
	b.NewBlock("body")
	b.Assign(acc, b.Call("leaf", acc, i))
	b.Assign(acc, b.Xor(acc, Imm(0x9e37)))
	b.Assign(i, b.Add(i, Imm(1)))
	b.Br("loop")
	b.NewBlock("done")
	b.Ret(acc)
	env.addFunc(b.Fn())
	return b.Fn()
}

// BenchmarkEngineCallLoop measures the pre-linked engine on the
// call-heavy loop; compare with BenchmarkInterpCallLoop.
func BenchmarkEngineCallLoop(b *testing.B) {
	env := newMemEnv()
	fn := benchWorkload(env)
	eng := NewEngine()
	if _, err := eng.Call(env, fn, 1000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Call(env, fn, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpCallLoop is the reference interpreter on the same
// workload.
func BenchmarkInterpCallLoop(b *testing.B) {
	env := newMemEnv()
	fn := benchWorkload(env)
	ip := NewInterp(env)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.Call(fn, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
