package vir

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

// memEnv is a minimal Env over a sparse byte map.
type memEnv struct {
	mem        map[hw.Virt]byte
	clock      *hw.Clock
	intrinsics map[string]func(args []uint64) (uint64, error)
	funcs      map[string]*Function
	addrs      map[uint64]*Function
	nextAddr   uint64
	ports      map[uint16]uint64
}

func newMemEnv() *memEnv {
	return &memEnv{
		mem:        make(map[hw.Virt]byte),
		clock:      &hw.Clock{},
		intrinsics: make(map[string]func([]uint64) (uint64, error)),
		funcs:      make(map[string]*Function),
		addrs:      make(map[uint64]*Function),
		nextAddr:   0xffffffc000000000,
		ports:      make(map[uint16]uint64),
	}
}

func (e *memEnv) addFunc(f *Function) uint64 {
	a := e.nextAddr
	e.nextAddr += 0x1000
	e.funcs[f.Name] = f
	e.addrs[a] = f
	return a
}

func (e *memEnv) Load(addr hw.Virt, size int) (uint64, error) {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(e.mem[addr+hw.Virt(i)])
	}
	return v, nil
}

func (e *memEnv) Store(addr hw.Virt, size int, v uint64) error {
	for i := 0; i < size; i++ {
		e.mem[addr+hw.Virt(i)] = byte(v >> (8 * i))
	}
	return nil
}

func (e *memEnv) Memcpy(dst, src hw.Virt, n int) error {
	if n > 1<<16 {
		// Keeps fuzzed IR from spinning the host; both engines see the
		// same error, so differential runs stay aligned.
		return errors.New("memcpy too large for test env")
	}
	for i := 0; i < n; i++ {
		e.mem[dst+hw.Virt(i)] = e.mem[src+hw.Virt(i)]
	}
	return nil
}

func (e *memEnv) Intrinsic(name string, args []uint64) (uint64, error) {
	if fn, ok := e.intrinsics[name]; ok {
		return fn(args)
	}
	return 0, errors.New("unknown intrinsic " + name)
}

func (e *memEnv) FuncByAddr(addr uint64) (*Function, bool) {
	f, ok := e.addrs[addr]
	return f, ok
}

func (e *memEnv) FuncAddr(name string) (uint64, bool) {
	f, ok := e.funcs[name]
	if !ok {
		return 0, false
	}
	for a, g := range e.addrs {
		if g == f {
			return a, true
		}
	}
	return 0, false
}

func (e *memEnv) InKernelCode(addr uint64) bool {
	return addr >= 0xffffffc000000000 && addr < 0xffffffd000000000
}

func (e *memEnv) PortIn(port uint16) (uint64, error)  { return e.ports[port], nil }
func (e *memEnv) PortOut(port uint16, v uint64) error { e.ports[port] = v; return nil }
func (e *memEnv) Clock() *hw.Clock                    { return e.clock }

func run(t *testing.T, f *Function, args ...uint64) uint64 {
	t.Helper()
	env := newMemEnv()
	env.addFunc(f)
	v, err := NewInterp(env).Call(f, args...)
	if err != nil {
		t.Fatalf("run %s: %v", f.Name, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	b := NewFunction("sum3", 3)
	s := b.Add(b.Param(0), b.Param(1))
	s = b.Add(s, b.Param(2))
	b.Ret(s)
	if got := run(t, b.Fn(), 10, 20, 12); got != 42 {
		t.Errorf("sum3 = %d", got)
	}
}

func TestAllBinops(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b uint64
		want uint64
	}{
		{OpAdd, 5, 3, 8}, {OpSub, 5, 3, 2}, {OpMul, 5, 3, 15},
		{OpAnd, 0b110, 0b011, 0b010}, {OpOr, 0b100, 0b001, 0b101},
		{OpXor, 0b110, 0b011, 0b101}, {OpShl, 1, 4, 16}, {OpShr, 16, 4, 1},
		{OpCmpEQ, 7, 7, 1}, {OpCmpNE, 7, 7, 0}, {OpCmpLT, 3, 7, 1},
		{OpCmpGE, 3, 7, 0},
	}
	for _, c := range cases {
		b := NewFunction("t", 2)
		d := b.Fn().NRegs
		b.Fn().NRegs++
		b.Fn().Entry().Instrs = append(b.Fn().Entry().Instrs,
			Instr{Op: c.op, Dst: d, A: R(0), B: R(1)},
			Instr{Op: OpRet, A: R(d)},
		)
		if got := run(t, b.Fn(), c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestLoopAndBranches(t *testing.T) {
	// sum 0..n-1
	b := NewFunction("sumto", 1)
	n := b.Param(0)
	i := b.Mov(Imm(0))
	acc := b.Mov(Imm(0))
	b.Br("loop")
	b.NewBlock("loop")
	c := b.CmpLT(i, n)
	b.CondBr(c, "body", "done")
	b.NewBlock("body")
	b.Assign(acc, b.Add(acc, i))
	b.Assign(i, b.Add(i, Imm(1)))
	b.Br("loop")
	b.NewBlock("done")
	b.Ret(acc)
	if got := run(t, b.Fn(), 10); got != 45 {
		t.Errorf("sumto(10) = %d", got)
	}
}

func TestSelect(t *testing.T) {
	b := NewFunction("max", 2)
	c := b.CmpGE(b.Param(0), b.Param(1))
	b.Ret(b.Select(c, b.Param(0), b.Param(1)))
	if got := run(t, b.Fn(), 3, 9); got != 9 {
		t.Errorf("max = %d", got)
	}
}

func TestLoadStoreMemcpy(t *testing.T) {
	b := NewFunction("copy8", 2)
	v := b.Load(b.Param(0), 8)
	b.Store(b.Param(1), v, 8)
	b.Memcpy(b.Add(b.Param(1), Imm(8)), b.Param(0), Imm(4))
	b.Ret(v)
	env := newMemEnv()
	env.addFunc(b.Fn())
	_ = env.Store(0x1000, 8, 0x1122334455667788)
	got, err := NewInterp(env).Call(b.Fn(), 0x1000, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1122334455667788 {
		t.Errorf("load = %#x", got)
	}
	dst, _ := env.Load(0x2000, 8)
	if dst != 0x1122334455667788 {
		t.Errorf("store = %#x", dst)
	}
	cp, _ := env.Load(0x2008, 4)
	if cp != 0x55667788 {
		t.Errorf("memcpy = %#x", cp)
	}
}

func TestDirectCallAndIntrinsic(t *testing.T) {
	callee := NewFunction("double", 1)
	callee.Ret(callee.Add(callee.Param(0), callee.Param(0)))
	caller := NewFunction("main", 0)
	caller.Ret(caller.Call("double", Imm(21)))
	env := newMemEnv()
	env.addFunc(callee.Fn())
	env.addFunc(caller.Fn())
	got, err := NewInterp(env).Call(caller.Fn())
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("call = %d", got)
	}

	// Unknown symbols resolve to intrinsics.
	ienv := newMemEnv()
	hit := uint64(0)
	ienv.intrinsics["probe"] = func(args []uint64) (uint64, error) {
		hit = args[0]
		return 7, nil
	}
	b := NewFunction("m", 0)
	b.Ret(b.Call("probe", Imm(5)))
	ienv.addFunc(b.Fn())
	got, err = NewInterp(ienv).Call(b.Fn())
	if err != nil || got != 7 || hit != 5 {
		t.Errorf("intrinsic: got=%d hit=%d err=%v", got, hit, err)
	}
}

func TestIndirectCallViaFuncAddr(t *testing.T) {
	callee := NewFunction("leaf", 1)
	callee.Ret(callee.Mul(callee.Param(0), Imm(3)))
	caller := NewFunction("main", 0)
	fp := caller.FuncAddr("leaf")
	caller.Ret(caller.CallInd(fp, Imm(7)))
	env := newMemEnv()
	env.addFunc(callee.Fn())
	env.addFunc(caller.Fn())
	got, err := NewInterp(env).Call(caller.Fn())
	if err != nil || got != 21 {
		t.Errorf("indirect call = %d, %v", got, err)
	}
}

func TestCFIRejectsUnlabeledTarget(t *testing.T) {
	gadget := NewFunction("gadget", 0)
	gadget.Ret(Imm(1))
	caller := NewFunction("main", 1)
	caller.Fn().Entry().Instrs = append(caller.Fn().Entry().Instrs,
		Instr{Op: OpCFICallInd, Dst: 0, A: R(0)},
		Instr{Op: OpRet, A: R(0)},
	)
	env := newMemEnv()
	addr := env.addFunc(gadget.Fn()) // not Labeled
	env.addFunc(caller.Fn())
	_, err := NewInterp(env).Call(caller.Fn(), addr)
	var viol *CFIViolation
	if !errors.As(err, &viol) {
		t.Fatalf("want CFIViolation, got %v", err)
	}
	if !strings.Contains(viol.Reason, "label") {
		t.Errorf("reason = %q", viol.Reason)
	}
}

func TestCFIAllowsLabeledKernelTarget(t *testing.T) {
	callee := NewFunction("ok", 0)
	callee.Fn().Entry().Instrs = append(
		[]Instr{{Op: OpCFILabel, Imm: 0xCF1}},
		[]Instr{{Op: OpRet, A: Imm(9)}}...,
	)
	callee.Fn().Labeled = true
	caller := NewFunction("main", 1)
	caller.Fn().Entry().Instrs = append(caller.Fn().Entry().Instrs,
		Instr{Op: OpCFICallInd, Dst: 0, A: R(0)},
		Instr{Op: OpRet, A: R(0)},
	)
	env := newMemEnv()
	addr := env.addFunc(callee.Fn())
	env.addFunc(caller.Fn())
	got, err := NewInterp(env).Call(caller.Fn(), addr)
	if err != nil || got != 9 {
		t.Errorf("labeled call failed: %d %v", got, err)
	}
}

func TestCorruptReturnPivotsPlainRet(t *testing.T) {
	ran := false
	env := newMemEnv()
	env.intrinsics["mark"] = func([]uint64) (uint64, error) { ran = true; return 0, nil }
	gadget := NewFunction("gadget", 0)
	gadget.Call("mark")
	gadget.Ret(Imm(0))
	gAddr := env.addFunc(gadget.Fn())
	vuln := NewFunction("vuln", 1)
	vuln.Call(corruptReturnIntrinsic, vuln.Param(0))
	vuln.Ret(Imm(0))
	env.addFunc(vuln.Fn())
	if _, err := NewInterp(env).Call(vuln.Fn(), gAddr); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Errorf("pivot did not execute gadget")
	}
}

func TestCorruptReturnBlockedByCFIRet(t *testing.T) {
	env := newMemEnv()
	// The gadget lives outside kernel code space.
	gadget := NewFunction("gadget", 0)
	gadget.Ret(Imm(0))
	env.funcs[gadget.Fn().Name] = gadget.Fn()
	env.addrs[0x41410000] = gadget.Fn()
	vuln := NewFunction("vuln", 1)
	vuln.Call(corruptReturnIntrinsic, vuln.Param(0))
	vuln.Fn().Entry().Instrs = append(vuln.Fn().Entry().Instrs,
		Instr{Op: OpCFIRet, A: Imm(0)})
	env.addFunc(vuln.Fn())
	_, err := NewInterp(env).Call(vuln.Fn(), 0x41410000)
	var viol *CFIViolation
	if !errors.As(err, &viol) {
		t.Fatalf("want CFIViolation, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	b := NewFunction("spin", 0)
	b.Br("loop")
	b.NewBlock("loop")
	b.Br("loop")
	env := newMemEnv()
	env.addFunc(b.Fn())
	ip := NewInterp(env)
	ip.MaxSteps = 1000
	if _, err := ip.Call(b.Fn()); !errors.Is(err, ErrStepLimit) {
		t.Errorf("want step limit, got %v", err)
	}
}

func TestPortIO(t *testing.T) {
	b := NewFunction("io", 0)
	b.PortOut(Imm(0x40), Imm(0x99))
	b.Ret(b.PortIn(Imm(0x40)))
	if got := run(t, b.Fn()); got != 0x99 {
		t.Errorf("port round trip = %#x", got)
	}
}

// --- verifier ---------------------------------------------------------

func TestVerifyCatchesEmptyBlock(t *testing.T) {
	f := &Function{Name: "bad", Blocks: []*Block{{Name: "entry"}}}
	if err := VerifyFunction(f); err == nil {
		t.Errorf("empty block accepted")
	}
}

func TestVerifyCatchesFallthrough(t *testing.T) {
	f := &Function{Name: "bad", NRegs: 1, Blocks: []*Block{
		{Name: "entry", Instrs: []Instr{{Op: OpConst, Dst: 0, Imm: 1}}},
	}}
	if err := VerifyFunction(f); err == nil {
		t.Errorf("fallthrough accepted")
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	f := &Function{Name: "bad", Blocks: []*Block{
		{Name: "entry", Instrs: []Instr{
			{Op: OpRet, A: Imm(0)},
			{Op: OpRet, A: Imm(0)},
		}},
	}}
	if err := VerifyFunction(f); err == nil {
		t.Errorf("mid-block terminator accepted")
	}
}

func TestVerifyCatchesBadBranchTarget(t *testing.T) {
	f := &Function{Name: "bad", Blocks: []*Block{
		{Name: "entry", Instrs: []Instr{{Op: OpBr, Blk1: "nowhere"}}},
	}}
	if err := VerifyFunction(f); err == nil {
		t.Errorf("branch to unknown block accepted")
	}
}

func TestVerifyCatchesRegOutOfRange(t *testing.T) {
	f := &Function{Name: "bad", NRegs: 1, Blocks: []*Block{
		{Name: "entry", Instrs: []Instr{{Op: OpRet, A: R(5)}}},
	}}
	if err := VerifyFunction(f); err == nil {
		t.Errorf("out-of-range register accepted")
	}
}

func TestVerifyCatchesBadAccessSize(t *testing.T) {
	f := &Function{Name: "bad", NRegs: 2, Blocks: []*Block{
		{Name: "entry", Instrs: []Instr{
			{Op: OpLoad, Dst: 1, A: R(0), Size: 3},
			{Op: OpRet, A: R(1)},
		}},
	}}
	if err := VerifyFunction(f); err == nil {
		t.Errorf("3-byte load accepted")
	}
}

func TestVerifyAcceptsBuilderOutput(t *testing.T) {
	b := NewFunction("good", 2)
	v := b.Load(b.Param(0), 8)
	b.Store(b.Param(1), v, 4)
	c := b.CmpEQ(v, Imm(0))
	b.CondBr(c, "a", "b")
	b.NewBlock("a")
	b.Ret(Imm(1))
	b.NewBlock("b")
	b.Asm("nop")
	b.Ret(Imm(2))
	if err := VerifyFunction(b.Fn()); err != nil {
		t.Errorf("builder output rejected: %v", err)
	}
}

func TestHasAsm(t *testing.T) {
	m := NewModule("m")
	clean := NewFunction("clean", 0)
	clean.Ret(Imm(0))
	_ = m.AddFunc(clean.Fn())
	if HasAsm(m) {
		t.Errorf("clean module reported as having asm")
	}
	dirty := NewFunction("dirty", 0)
	dirty.Asm("cli")
	dirty.Ret(Imm(0))
	_ = m.AddFunc(dirty.Fn())
	if !HasAsm(m) {
		t.Errorf("asm not detected")
	}
}

func TestModuleDuplicateFunc(t *testing.T) {
	m := NewModule("m")
	a := NewFunction("f", 0)
	a.Ret(Imm(0))
	if err := m.AddFunc(a.Fn()); err != nil {
		t.Fatal(err)
	}
	b := NewFunction("f", 0)
	b.Ret(Imm(0))
	if err := m.AddFunc(b.Fn()); err == nil {
		t.Errorf("duplicate function accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewModule("m")
	f := NewFunction("f", 1)
	f.Ret(f.Add(f.Param(0), Imm(1)))
	_ = m.AddFunc(f.Fn())
	c := m.Clone()
	c.Func("f").Blocks[0].Instrs[0].Imm = 999
	c.Func("f").Name = "f" // same name, different object
	if m.Func("f").Blocks[0].Instrs[0].Imm == 999 {
		t.Errorf("clone shares instruction storage")
	}
}

// --- MaskAddress properties ---------------------------------------------

func TestMaskAddressProperties(t *testing.T) {
	// 1. Ghost addresses never survive masking.
	ghost := func(off uint64) bool {
		a := uint64(hw.GhostBase) + off%(uint64(hw.GhostTop-hw.GhostBase))
		m := MaskAddress(a)
		return !hw.IsGhost(hw.Virt(m))
	}
	// 2. User addresses are untouched.
	user := func(off uint64) bool {
		a := uint64(hw.UserBase) + off%uint64(hw.UserTop-hw.UserBase)
		return MaskAddress(a) == a
	}
	// 3. SVA-internal addresses become 0.
	sva := func(off uint64) bool {
		a := uint64(SVAInternalBase) + off%uint64(SVAInternalTop-SVAInternalBase)
		return MaskAddress(a) == 0
	}
	// 4. Masking is idempotent.
	idem := func(a uint64) bool {
		return MaskAddress(MaskAddress(a)) == MaskAddress(a)
	}
	for name, fn := range map[string]func(uint64) bool{
		"ghost-escapes": ghost, "user-identity": user,
		"sva-zeroed": sva, "idempotent": idem,
	} {
		if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFormatCoversOpcodes(t *testing.T) {
	b := NewFunction("fmt", 2)
	v := b.Load(b.Param(0), 8)
	b.Store(b.Param(1), v, 8)
	b.Memcpy(b.Param(0), b.Param(1), Imm(8))
	b.PortOut(Imm(1), Imm(2))
	_ = b.PortIn(Imm(1))
	_ = b.FuncAddr("x")
	b.Asm("nop")
	c := b.CmpEQ(v, Imm(0))
	sel := b.Select(c, Imm(1), Imm(2))
	_ = b.CallInd(sel)
	b.Ret(Imm(0))
	text := Format(b.Fn())
	for _, want := range []string{"load8", "store8", "memcpy", "portout",
		"portin", "funcaddr", "asm", "select", "callind", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted output missing %q:\n%s", want, text)
		}
	}
}
