package vir

// This file is the superinstruction fusion pass of the pre-linked
// engine — the second optimizing tier ROADMAP item 3 asks for, built on
// the same contract as proof-carrying elision (link.go): host work may
// shrink, but the virtual clock and every other observable must stay
// bit-identical to the reference interpreter.
//
// The pass runs between lowering (link pass 2) and segment accounting
// (link pass 3). It recognizes hot two-instruction idioms in the flat
// code array and collapses each into a single pseudo-opcode whose
// handler executes the whole idiom in one dispatch:
//
//	cmp   + condbr     -> opFusedCmpBr     (loop heads)
//	add/sub + br       -> opFusedAddBr/SubBr (loop back-edges)
//	const + binary ALU -> opFusedConstALU  (immediate-forming pairs)
//	maskghost + load   -> opFusedMaskLoad  (the sandbox hot path)
//	maskghost + store  -> opFusedMaskStore
//	call  + ret        -> opFusedCallRet   (tail bookkeeping pair)
//
// A fused instruction keeps the slots of its constituents: the first
// slot holds the superinstruction, the second becomes an opFusedGap the
// handlers jump over — so every pc offset computed in link pass 1 stays
// valid and no branch target moves. Determinism is preserved by
// construction:
//
//   - the fused instruction's head charge list is the exact
//     concatenation of its constituents' shared instrCharges slices, so
//     segment batching (pass 3) sums the same cycles per tag;
//   - its step weight is the number of constituent instructions, so the
//     step budget expires at the same reference instruction;
//   - the constituents themselves ride along in linkedInstr.fused (the
//     per-segment fusion table), so the step-limit slow path can replay
//     per-instruction charges when the budget lands mid-idiom;
//   - call+ret is special: the ret's step and charge happen *after* the
//     callee runs in the reference, so only the call half is batched at
//     the segment head and the handler performs the ret's step check
//     and charge on the way out (engine.go).
//
// Fusion is profile-guided. When the engine carries an execution-count
// profile (SetProfile — e.g. harvested from a previous run via
// Profile), a function gets the aggressive pass iff its observed call
// count reaches FuseHotThreshold. Without a profile the policy falls
// back to a static loop-depth heuristic: any function with a branch
// back to an earlier block (loop depth >= 1) is presumed hot. Cold
// functions skip the pass — they pay one dispatch per instruction
// exactly as before, keeping link time and code shape simple where it
// cannot pay off.

// Fused pseudo-opcodes. They continue the linker's internal range
// (link.go) and never appear in IR.
const (
	// opFusedGap marks the consumed second slot of a fused pair. It is
	// unreachable: branch targets are block starts, fusion never spans
	// a block boundary, and fused handlers step over it.
	opFusedGap Opcode = 0xA0 + iota
	// opFusedCmpBr: Cmp*(dst,a,b) ; CondBr(R(dst), t1, t2). op2 holds
	// the comparison opcode; the comparison result is still written to
	// dst (it may be live past the branch).
	opFusedCmpBr
	// opFusedAddBr: Add(dst,a,b) ; Br(t1) — the classic counted-loop
	// back-edge.
	opFusedAddBr
	// opFusedSubBr: Sub(dst,a,b) ; Br(t1).
	opFusedSubBr
	// opFusedConstALU: Const(dst, imm) ; ALU(op2, t1, a, b). The ALU
	// operands may read dst (the constant is written first, exactly as
	// sequential execution would).
	opFusedConstALU
	// opFusedMaskLoad: MaskGhost(dst, a) ; Load(t1, [R(dst)], size).
	// The masked address is still written to dst.
	opFusedMaskLoad
	// opFusedMaskStore: MaskGhost(dst, a) ; Store([R(dst)], b, size).
	opFusedMaskStore
	// opFusedCallRet: Call(dst, callee, args) ; Ret(a). Only direct
	// calls with a link-time-resolved callee and a plain (non-CFI) ret
	// fuse; the handler performs the ret's bookkeeping after the callee
	// returns.
	opFusedCallRet
)

// FuseHotThreshold is the execution count at which a profiled function
// is considered hot enough for the aggressive fusion pass.
const FuseHotThreshold = 32

// FusionStats counts the fusion tier's work: superinstruction sites the
// linker fused (cumulative over lowerings, like ElisionStats) and
// monomorphic inline-cache hits/misses on indirect-call sites.
type FusionStats struct {
	SitesFused uint64
	ICHits     uint64
	ICMisses   uint64
}

// fusableALU reports whether op is a binary ALU/compare opcode eligible
// to be the second half of a const+ALU pair (and the first half of a
// cmp+br pair for the comparison subset).
func fusableALU(op Opcode) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE:
		return true
	}
	return false
}

func isCmp(op Opcode) bool {
	switch op {
	case OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpGE:
		return true
	}
	return false
}

// hasBackEdge is the static hotness heuristic used when no execution
// profile is installed: a branch from a block to itself or an earlier
// block means a loop, and loops are where saved dispatches multiply.
func hasBackEdge(fn *Function) bool {
	index := make(map[string]int, len(fn.Blocks))
	for i, b := range fn.Blocks {
		index[b.Name] = i
	}
	for i, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case OpBr, OpCondBr:
				if t, ok := index[in.Blk1]; ok && t <= i {
					return true
				}
				if in.Op == OpCondBr {
					if t, ok := index[in.Blk2]; ok && t <= i {
						return true
					}
				}
			}
		}
	}
	return false
}

// shouldFuse decides whether fn gets the aggressive fusion pass: the
// installed execution-count profile when one exists, the static
// loop-depth heuristic otherwise.
func (e *Engine) shouldFuse(fn *Function) bool {
	if !e.fuse {
		return false
	}
	if e.profile != nil {
		return e.profile[fn.Name] >= FuseHotThreshold
	}
	return hasBackEdge(fn)
}

// fusePair builds the superinstruction for the idiom (a, b), or returns
// false when the pair matches none. The returned instruction carries
// the concatenated head charges, the constituent list for the slow
// path, and the packed operands its handler expects.
func fusePair(a, b *linkedInstr) (linkedInstr, bool) {
	var fi linkedInstr
	switch {
	case isCmp(a.op) && b.op == OpCondBr && !b.a.IsImm && b.a.Reg == a.dst:
		fi = linkedInstr{op: opFusedCmpBr, op2: a.op, dst: a.dst, a: a.a, b: a.b, t1: b.t1, t2: b.t2}
	case a.op == OpAdd && b.op == OpBr:
		fi = linkedInstr{op: opFusedAddBr, dst: a.dst, a: a.a, b: a.b, t1: b.t1}
	case a.op == OpSub && b.op == OpBr:
		fi = linkedInstr{op: opFusedSubBr, dst: a.dst, a: a.a, b: a.b, t1: b.t1}
	case a.op == OpConst && fusableALU(b.op):
		fi = linkedInstr{op: opFusedConstALU, op2: b.op, dst: a.dst, imm: a.imm, t1: b.dst, a: b.a, b: b.b}
	case a.op == OpMaskGhost && b.op == OpLoad && !b.a.IsImm && b.a.Reg == a.dst:
		fi = linkedInstr{op: opFusedMaskLoad, dst: a.dst, a: a.a, t1: b.dst, size: b.size}
	case a.op == OpMaskGhost && b.op == OpStore && !b.a.IsImm && b.a.Reg == a.dst:
		fi = linkedInstr{op: opFusedMaskStore, dst: a.dst, a: a.a, b: b.b, size: b.size}
	case a.op == OpCall && a.callee != nil && b.op == OpRet:
		// Only the call half is batched at the segment head: the
		// reference charges (and step-counts) the ret after the callee
		// has run, and the handler reproduces that ordering.
		fi = linkedInstr{op: opFusedCallRet, dst: a.dst, callee: a.callee, args: a.args, a: b.a}
	default:
		return linkedInstr{}, false
	}

	// The fusion table: the original constituents, in order, each still
	// aliasing its shared instrCharges slice. The step-limit slow path
	// replays these when the budget lands mid-idiom.
	fi.fused = []linkedInstr{*a, *b}

	if fi.op == opFusedCallRet {
		fi.charges = a.charges
	} else {
		// Head charges: the exact concatenation of the constituents'
		// charge lists (pass 3 merges per tag, so totals and tags are
		// identical to the unfused segment batch).
		fi.charges = concatCharges(a.charges, b.charges)
	}
	return fi, true
}

// concatCharges concatenates two shared charge slices into a fresh one
// (link-time only; the hot path never builds charge lists).
func concatCharges(a, b []tagCharge) []tagCharge {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]tagCharge, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// fusePass rewrites lf.code in place, fusing adjacent idiom pairs. A
// pair is only fusable when the second instruction is not a block start
// (all branch targets are block starts, so fused pairs are never
// jumped into). Consumed slots become opFusedGap so pc offsets are
// untouched.
func (e *Engine) fusePass(lf *linkedFn, isStart []bool) {
	code := lf.code
	n := 0
	for i := 0; i+1 < len(code); i++ {
		if isStart[i+1] {
			continue
		}
		fi, ok := fusePair(&code[i], &code[i+1])
		if !ok {
			continue
		}
		code[i] = fi
		code[i+1] = linkedInstr{op: opFusedGap}
		n++
		i++ // the consumed slot cannot start another pair
	}
	if n > 0 {
		e.fstats.SitesFused += uint64(n)
		e.fuseSites[lf.fn.Name] += uint64(n)
	}
}

// headSteps is an instruction's weight in its segment's step batch: the
// number of reference-interpreter steps that are certain to execute
// once the segment is entered. Gaps weigh nothing; a fused pair weighs
// its constituents — except call+ret, whose ret step is counted by the
// handler after the callee returns, exactly where the reference counts
// it.
func (li *linkedInstr) headSteps() int {
	switch li.op {
	case opFusedGap:
		return 0
	case opFusedCallRet:
		return 1
	}
	if len(li.fused) > 0 {
		return len(li.fused)
	}
	return 1
}
