package vir

import "fmt"

// Builder assembles a Function instruction by instruction. It manages
// virtual-register allocation and the current insertion block, so module
// authors (the kernel's IR routines, the attack modules, tests) can
// write code in a compact fluent style.
type Builder struct {
	fn  *Function
	cur *Block
}

// NewFunction starts building a function with nparams parameters, which
// occupy registers 0..nparams-1. An entry block named "entry" is
// created and selected.
func NewFunction(name string, nparams int) *Builder {
	f := &Function{Name: name, NParams: nparams, NRegs: nparams}
	b := &Builder{fn: f}
	b.NewBlock("entry")
	return b
}

// Fn returns the function under construction.
func (b *Builder) Fn() *Function { return b.fn }

// Param returns the operand for parameter i.
func (b *Builder) Param(i int) Value {
	if i < 0 || i >= b.fn.NParams {
		panic(fmt.Sprintf("vir: parameter %d out of range", i))
	}
	return R(i)
}

// NewBlock appends a block and makes it the insertion point.
func (b *Builder) NewBlock(name string) *Block {
	blk := &Block{Name: name}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	b.cur = blk
	return blk
}

// SetBlock moves the insertion point to an existing block.
func (b *Builder) SetBlock(name string) {
	blk := b.fn.FindBlock(name)
	if blk == nil {
		panic(fmt.Sprintf("vir: no block %q", name))
	}
	b.cur = blk
}

func (b *Builder) newReg() int {
	r := b.fn.NRegs
	b.fn.NRegs++
	return r
}

func (b *Builder) emit(in Instr) {
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// Assign writes src into an existing register (for loop-carried
// variables).
func (b *Builder) Assign(dst Value, src Value) {
	if dst.IsImm {
		panic("vir: cannot assign to an immediate")
	}
	b.emit(Instr{Op: OpMov, Dst: dst.Reg, A: src})
}

// Const materializes an immediate into a fresh register.
func (b *Builder) Const(v uint64) Value {
	d := b.newReg()
	b.emit(Instr{Op: OpConst, Dst: d, Imm: v})
	return R(d)
}

// Mov copies a value into a fresh register.
func (b *Builder) Mov(a Value) Value {
	d := b.newReg()
	b.emit(Instr{Op: OpMov, Dst: d, A: a})
	return R(d)
}

func (b *Builder) bin(op Opcode, a, c Value) Value {
	d := b.newReg()
	b.emit(Instr{Op: op, Dst: d, A: a, B: c})
	return R(d)
}

// Add emits a + c.
func (b *Builder) Add(a, c Value) Value { return b.bin(OpAdd, a, c) }

// Sub emits a - c.
func (b *Builder) Sub(a, c Value) Value { return b.bin(OpSub, a, c) }

// Mul emits a * c.
func (b *Builder) Mul(a, c Value) Value { return b.bin(OpMul, a, c) }

// And emits a & c.
func (b *Builder) And(a, c Value) Value { return b.bin(OpAnd, a, c) }

// Or emits a | c.
func (b *Builder) Or(a, c Value) Value { return b.bin(OpOr, a, c) }

// Xor emits a ^ c.
func (b *Builder) Xor(a, c Value) Value { return b.bin(OpXor, a, c) }

// Shl emits a << c.
func (b *Builder) Shl(a, c Value) Value { return b.bin(OpShl, a, c) }

// Shr emits a >> c.
func (b *Builder) Shr(a, c Value) Value { return b.bin(OpShr, a, c) }

// CmpEQ emits a == c.
func (b *Builder) CmpEQ(a, c Value) Value { return b.bin(OpCmpEQ, a, c) }

// CmpNE emits a != c.
func (b *Builder) CmpNE(a, c Value) Value { return b.bin(OpCmpNE, a, c) }

// CmpLT emits unsigned a < c.
func (b *Builder) CmpLT(a, c Value) Value { return b.bin(OpCmpLT, a, c) }

// CmpGE emits unsigned a >= c.
func (b *Builder) CmpGE(a, c Value) Value { return b.bin(OpCmpGE, a, c) }

// Select emits cond != 0 ? x : y.
func (b *Builder) Select(cond, x, y Value) Value {
	d := b.newReg()
	b.emit(Instr{Op: OpSelect, Dst: d, A: cond, B: x, C: y})
	return R(d)
}

// Load emits a size-byte load from address a.
func (b *Builder) Load(a Value, size int) Value {
	d := b.newReg()
	b.emit(Instr{Op: OpLoad, Dst: d, A: a, Size: size})
	return R(d)
}

// Store emits a size-byte store of v to address a.
func (b *Builder) Store(a, v Value, size int) {
	b.emit(Instr{Op: OpStore, A: a, B: v, Size: size})
}

// Memcpy emits a block copy of n bytes from src to dst.
func (b *Builder) Memcpy(dst, src, n Value) {
	b.emit(Instr{Op: OpMemcpy, A: dst, B: src, C: n})
}

// Br emits an unconditional branch.
func (b *Builder) Br(block string) {
	b.emit(Instr{Op: OpBr, Blk1: block})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, then, els string) {
	b.emit(Instr{Op: OpCondBr, A: cond, Blk1: then, Blk2: els})
}

// Call emits a direct call to sym.
func (b *Builder) Call(sym string, args ...Value) Value {
	d := b.newReg()
	b.emit(Instr{Op: OpCall, Dst: d, Sym: sym, Args: args})
	return R(d)
}

// CallInd emits an indirect call through the code address in target.
func (b *Builder) CallInd(target Value, args ...Value) Value {
	d := b.newReg()
	b.emit(Instr{Op: OpCallInd, Dst: d, A: target, Args: args})
	return R(d)
}

// Ret emits a return.
func (b *Builder) Ret(v Value) {
	b.emit(Instr{Op: OpRet, A: v})
}

// PortIn emits an I/O-port read.
func (b *Builder) PortIn(port Value) Value {
	d := b.newReg()
	b.emit(Instr{Op: OpPortIn, Dst: d, A: port})
	return R(d)
}

// PortOut emits an I/O-port write.
func (b *Builder) PortOut(port, v Value) {
	b.emit(Instr{Op: OpPortOut, A: port, B: v})
}

// Asm emits an inline-assembly marker (rejected by the translator).
func (b *Builder) Asm(text string) {
	b.emit(Instr{Op: OpAsm, Sym: text})
}

// FuncAddr emits "take the code address of sym".
func (b *Builder) FuncAddr(sym string) Value {
	d := b.newReg()
	b.emit(Instr{Op: OpFuncAddr, Dst: d, Sym: sym})
	return R(d)
}
