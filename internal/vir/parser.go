package vir

import (
	"fmt"
	"strconv"
	"strings"
)

// This file parses the textual form emitted by Format/FormatModule, so
// modules can be written, stored, and inspected as assembly text. The
// parser and printer round-trip: ParseFunction(Format(f)) reproduces f
// up to formatting.

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("vir: parse error at line %d: %s", e.Line, e.Msg)
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) cur() (string, bool) {
	if p.pos >= len(p.lines) {
		return "", false
	}
	return strings.TrimSpace(p.lines[p.pos]), true
}

func (p *parser) next() { p.pos++ }

func (p *parser) skipBlank() {
	for {
		line, ok := p.cur()
		if !ok || line != "" {
			return
		}
		p.next()
	}
}

// ParseModule parses the textual form of a module (the FormatModule
// output): a "module NAME" line followed by function definitions.
func ParseModule(text string) (*Module, error) {
	p := &parser{lines: strings.Split(text, "\n")}
	p.skipBlank()
	line, ok := p.cur()
	if !ok || !strings.HasPrefix(line, "module ") {
		return nil, p.errf("expected 'module NAME'")
	}
	m := NewModule(strings.TrimSpace(strings.TrimPrefix(line, "module ")))
	p.next()
	for {
		p.skipBlank()
		line, ok := p.cur()
		if !ok {
			break
		}
		if !strings.HasPrefix(line, "func ") {
			return nil, p.errf("expected function definition, got %q", line)
		}
		f, err := p.function()
		if err != nil {
			return nil, err
		}
		if err := m.AddFunc(f); err != nil {
			return nil, p.errf("%v", err)
		}
	}
	return m, nil
}

// ParseFunction parses one function definition.
func ParseFunction(text string) (*Function, error) {
	p := &parser{lines: strings.Split(text, "\n")}
	p.skipBlank()
	return p.function()
}

// function parses "func NAME(N params) [flags] {" ... "}".
func (p *parser) function() (*Function, error) {
	header, _ := p.cur()
	if !strings.HasPrefix(header, "func ") || !strings.HasSuffix(header, "{") {
		return nil, p.errf("malformed function header %q", header)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(header, "func "), "{")
	open := strings.IndexByte(body, '(')
	closeP := strings.IndexByte(body, ')')
	if open < 0 || closeP < open {
		return nil, p.errf("malformed parameter list in %q", header)
	}
	f := &Function{Name: strings.TrimSpace(body[:open])}
	paramSpec := strings.TrimSpace(body[open+1 : closeP])
	if !strings.HasSuffix(paramSpec, " params") {
		return nil, p.errf("malformed parameter count %q", paramSpec)
	}
	n, err := strconv.Atoi(strings.TrimSuffix(paramSpec, " params"))
	if err != nil || n < 0 {
		return nil, p.errf("bad parameter count %q", paramSpec)
	}
	f.NParams = n
	maxReg := n - 1
	for _, flag := range strings.Fields(body[closeP+1:]) {
		switch flag {
		case "sandboxed":
			f.Sandboxed = true
		case "labeled":
			f.Labeled = true
		case "mmapmasked":
			f.MmapMasked = true
		case "translated":
			f.Translated = true
		default:
			return nil, p.errf("unknown function flag %q", flag)
		}
	}
	p.next()

	var blk *Block
	for {
		line, ok := p.cur()
		if !ok {
			return nil, p.errf("unexpected end of input in function %s", f.Name)
		}
		if line == "" {
			p.next()
			continue
		}
		if line == "}" {
			p.next()
			break
		}
		if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t=") {
			blk = &Block{Name: strings.TrimSuffix(line, ":")}
			f.Blocks = append(f.Blocks, blk)
			p.next()
			continue
		}
		if blk == nil {
			return nil, p.errf("instruction before any block label")
		}
		in, hi, err := p.instr(line)
		if err != nil {
			return nil, err
		}
		if hi > maxReg {
			maxReg = hi
		}
		blk.Instrs = append(blk.Instrs, in)
		p.next()
	}
	f.NRegs = maxReg + 1
	return f, nil
}

// value parses "%rN" or an immediate.
func (p *parser) value(tok string) (Value, int, error) {
	tok = strings.TrimSpace(tok)
	if strings.HasPrefix(tok, "%r") {
		r, err := strconv.Atoi(tok[2:])
		if err != nil || r < 0 {
			return Value{}, -1, p.errf("bad register %q", tok)
		}
		return R(r), r, nil
	}
	v, err := strconv.ParseUint(tok, 0, 64)
	if err != nil {
		return Value{}, -1, p.errf("bad immediate %q", tok)
	}
	return Imm(v), -1, nil
}

// dst parses "%rN" on the left of '='.
func (p *parser) dst(tok string) (int, error) {
	tok = strings.TrimSpace(tok)
	if !strings.HasPrefix(tok, "%r") {
		return 0, p.errf("bad destination %q", tok)
	}
	r, err := strconv.Atoi(tok[2:])
	if err != nil || r < 0 {
		return 0, p.errf("bad destination %q", tok)
	}
	return r, nil
}

var binOps = map[string]Opcode{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "and": OpAnd, "or": OpOr,
	"xor": OpXor, "shl": OpShl, "shr": OpShr, "cmpeq": OpCmpEQ,
	"cmpne": OpCmpNE, "cmplt": OpCmpLT, "cmpge": OpCmpGE,
}

// instr parses one formatted instruction line; hi is the highest
// register index referenced (for NRegs recovery).
func (p *parser) instr(line string) (Instr, int, error) {
	hi := -1
	track := func(r int) {
		if r > hi {
			hi = r
		}
	}
	val := func(tok string) (Value, error) {
		v, r, err := p.value(tok)
		track(r)
		return v, err
	}
	fail := func(msg string) (Instr, int, error) {
		return Instr{}, hi, p.errf("%s: %q", msg, line)
	}

	// Destination form: "%rN = rhs".
	if strings.HasPrefix(line, "%r") {
		eq := strings.Index(line, " = ")
		if eq < 0 {
			return fail("missing '='")
		}
		d, err := p.dst(line[:eq])
		if err != nil {
			return Instr{}, hi, err
		}
		track(d)
		rhs := strings.TrimSpace(line[eq+3:])
		op, rest, _ := strings.Cut(rhs, " ")
		switch {
		case op == "const":
			v, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 64)
			if err != nil {
				return fail("bad const")
			}
			return Instr{Op: OpConst, Dst: d, Imm: v}, hi, nil
		case op == "mov", op == "maskghost":
			a, err := val(rest)
			if err != nil {
				return Instr{}, hi, err
			}
			o := OpMov
			if op == "maskghost" {
				o = OpMaskGhost
			}
			return Instr{Op: o, Dst: d, A: a}, hi, nil
		case binOps[op] != 0 || op == "add":
			parts := strings.SplitN(rest, ",", 2)
			if len(parts) != 2 {
				return fail("binop wants two operands")
			}
			a, err := val(parts[0])
			if err != nil {
				return Instr{}, hi, err
			}
			b, err := val(parts[1])
			if err != nil {
				return Instr{}, hi, err
			}
			return Instr{Op: binOps[op], Dst: d, A: a, B: b}, hi, nil
		case op == "select":
			parts := strings.SplitN(rest, ",", 3)
			if len(parts) != 3 {
				return fail("select wants three operands")
			}
			a, err := val(parts[0])
			if err != nil {
				return Instr{}, hi, err
			}
			b, err := val(parts[1])
			if err != nil {
				return Instr{}, hi, err
			}
			c, err := val(parts[2])
			if err != nil {
				return Instr{}, hi, err
			}
			return Instr{Op: OpSelect, Dst: d, A: a, B: b, C: c}, hi, nil
		case strings.HasPrefix(op, "load"):
			size, err := strconv.Atoi(strings.TrimPrefix(op, "load"))
			if err != nil {
				return fail("bad load size")
			}
			inner := strings.TrimSpace(rest)
			if !strings.HasPrefix(inner, "[") || !strings.HasSuffix(inner, "]") {
				return fail("load wants [addr]")
			}
			a, err := val(inner[1 : len(inner)-1])
			if err != nil {
				return Instr{}, hi, err
			}
			return Instr{Op: OpLoad, Dst: d, A: a, Size: size}, hi, nil
		case op == "portin":
			a, err := val(rest)
			if err != nil {
				return Instr{}, hi, err
			}
			return Instr{Op: OpPortIn, Dst: d, A: a}, hi, nil
		case op == "funcaddr":
			return Instr{Op: OpFuncAddr, Dst: d, Sym: strings.TrimSpace(rest)}, hi, nil
		case op == "call":
			sym, args, err := p.callArgs(rest, val)
			if err != nil {
				return Instr{}, hi, err
			}
			return Instr{Op: OpCall, Dst: d, Sym: sym, Args: args}, hi, nil
		case op == "callind", op == "cfi.callind":
			target, args, err := p.callArgs(rest, val)
			if err != nil {
				return Instr{}, hi, err
			}
			t, err := val(target)
			if err != nil {
				return Instr{}, hi, err
			}
			o := OpCallInd
			if op == "cfi.callind" {
				o = OpCFICallInd
			}
			return Instr{Op: o, Dst: d, A: t, Args: args}, hi, nil
		}
		return fail("unknown rhs")
	}

	// Statement forms.
	op, rest, _ := strings.Cut(line, " ")
	switch op {
	case "store1", "store2", "store4", "store8":
		size, _ := strconv.Atoi(strings.TrimPrefix(op, "store"))
		parts := strings.SplitN(rest, ",", 2)
		if len(parts) != 2 {
			return fail("store wants [addr], value")
		}
		addr := strings.TrimSpace(parts[0])
		if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
			return fail("store wants [addr]")
		}
		a, err := val(addr[1 : len(addr)-1])
		if err != nil {
			return Instr{}, hi, err
		}
		b, err := val(parts[1])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: OpStore, A: a, B: b, Size: size}, hi, nil
	case "memcpy":
		parts := strings.SplitN(rest, ",", 3)
		if len(parts) != 3 {
			return fail("memcpy wants three operands")
		}
		trim := func(s string) string {
			s = strings.TrimSpace(s)
			s = strings.TrimPrefix(s, "[")
			return strings.TrimSuffix(s, "]")
		}
		a, err := val(trim(parts[0]))
		if err != nil {
			return Instr{}, hi, err
		}
		b, err := val(trim(parts[1]))
		if err != nil {
			return Instr{}, hi, err
		}
		c, err := val(parts[2])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: OpMemcpy, A: a, B: b, C: c}, hi, nil
	case "br":
		return Instr{Op: OpBr, Blk1: strings.TrimSpace(rest)}, hi, nil
	case "condbr":
		parts := strings.SplitN(rest, ",", 3)
		if len(parts) != 3 {
			return fail("condbr wants cond, then, else")
		}
		a, err := val(parts[0])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: OpCondBr, A: a,
			Blk1: strings.TrimSpace(parts[1]), Blk2: strings.TrimSpace(parts[2])}, hi, nil
	case "ret", "cfi.ret":
		a, err := val(rest)
		if err != nil {
			return Instr{}, hi, err
		}
		o := OpRet
		if op == "cfi.ret" {
			o = OpCFIRet
		}
		return Instr{Op: o, A: a}, hi, nil
	case "portout":
		parts := strings.SplitN(rest, ",", 2)
		if len(parts) != 2 {
			return fail("portout wants port, value")
		}
		a, err := val(parts[0])
		if err != nil {
			return Instr{}, hi, err
		}
		b, err := val(parts[1])
		if err != nil {
			return Instr{}, hi, err
		}
		return Instr{Op: OpPortOut, A: a, B: b}, hi, nil
	case "asm":
		text, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return fail("asm wants a quoted string")
		}
		return Instr{Op: OpAsm, Sym: text}, hi, nil
	case "cfi.label":
		v, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 64)
		if err != nil {
			return fail("bad label")
		}
		return Instr{Op: OpCFILabel, Imm: v}, hi, nil
	}
	return fail("unknown instruction")
}

// callArgs splits "sym(arg, arg)" or "%rN(arg, arg)", parsing the
// arguments with val and returning the callee token.
func (p *parser) callArgs(rest string, val func(string) (Value, error)) (string, []Value, error) {
	rest = strings.TrimSpace(rest)
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return "", nil, p.errf("malformed call %q", rest)
	}
	callee := strings.TrimSpace(rest[:open])
	argText := strings.TrimSpace(rest[open+1 : len(rest)-1])
	var args []Value
	if argText != "" {
		for _, tok := range strings.Split(argText, ",") {
			v, err := val(tok)
			if err != nil {
				return "", nil, err
			}
			args = append(args, v)
		}
	}
	return callee, args, nil
}
