package vir

import (
	"strings"
	"testing"
)

// FuzzParsePrintRoundTrip guards the canonicalization property that
// code signing depends on: Translation.Signature hashes FormatModule
// output, so the printed form must be a fixed point — parse(format(m))
// must succeed and reprint byte-identically. A canonicalization bug
// here would let two different texts of the "same" module carry
// different signatures (or worse, the same signature for different
// code).
func FuzzParsePrintRoundTrip(f *testing.F) {
	seeds := []string{
		"module m\nfunc f(0 params) {\nentry:\n  ret 0x0\n}\n",
		"module inst\nfunc g(2 params) sandboxed labeled {\nentry:\n  cfi.label 0xcf1\n  %r2 = maskghost %r0\n  %r3 = load8 [%r2]\n  store8 [%r2], %r3\n  cfi.ret %r3\n}\n",
		"module app\nfunc h(1 params) mmapmasked {\nentry:\n  %r1 = call mmap(0x0, 0x1000)\n  %r2 = maskghost %r1\n  memcpy [%r2], [%r2], 0x10\n  ret %r2\n}\n",
		"module flow\nfunc loop(1 params) translated {\nentry:\n  %r1 = const 0x0\n  br head\nhead:\n  %r2 = cmplt %r1, %r0\n  condbr %r2, body, done\nbody:\n  %r1 = add %r1, 0x1\n  br head\ndone:\n  %r3 = select %r2, %r1, 0xff\n  cfi.ret %r3\n}\n",
		"module io\nfunc drv(0 params) {\nentry:\n  %r0 = portin 0x60\n  portout 0x61, %r0\n  %r1 = funcaddr drv\n  %r2 = callind %r1(%r0)\n  %r3 = cfi.callind %r1()\n  asm \"cli\"\n  ret %r3\n}\n",
		"module ops\nfunc alu(2 params) {\nentry:\n  %r2 = sub %r0, %r1\n  %r3 = mul %r2, 0x3\n  %r4 = and %r3, %r0\n  %r5 = or %r4, %r1\n  %r6 = xor %r5, 0xff\n  %r7 = shl %r6, 0x2\n  %r8 = shr %r7, 0x1\n  %r9 = cmpeq %r8, %r0\n  %r10 = cmpne %r8, %r0\n  %r11 = cmpge %r8, %r0\n  %r12 = mov %r11\n  ret %r12\n}\n",
		"module empty\n",
		"module bad\nfunc broken(",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseModule(text)
		if err != nil {
			return // not parseable: no canonical form to defend
		}
		canon := FormatModule(m)
		m2, err := ParseModule(canon)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\n--- printed:\n%s", err, canon)
		}
		again := FormatModule(m2)
		if canon != again {
			t.Fatalf("printed form is not a fixed point\n--- first:\n%s--- second:\n%s", canon, again)
		}
		// The signature-relevant identity must survive: same functions,
		// same flags, same instruction counts.
		if m2.Name != m.Name || len(m2.Funcs) != len(m.Funcs) {
			t.Fatalf("module identity changed: %q/%d vs %q/%d",
				m.Name, len(m.Funcs), m2.Name, len(m2.Funcs))
		}
		for i, fn := range m.Funcs {
			fn2 := m2.Funcs[i]
			if fn2.Name != fn.Name || fn2.NParams != fn.NParams ||
				fn2.Sandboxed != fn.Sandboxed || fn2.Labeled != fn.Labeled ||
				fn2.MmapMasked != fn.MmapMasked || fn2.Translated != fn.Translated ||
				len(fn2.Blocks) != len(fn.Blocks) {
				t.Fatalf("function %d changed across round-trip:\n%s\nvs\n%s",
					i, Format(fn), Format(fn2))
			}
		}
	})
}

// TestRoundTripSeedsDirectly keeps the fuzz seeds exercised in plain
// `go test` runs (fuzz targets only replay the corpus when fuzzing
// machinery is available).
func TestRoundTripSeedsDirectly(t *testing.T) {
	m := NewModule("direct")
	b := NewFunction("f", 2)
	v := b.Load(b.Param(0), 4)
	b.Store(b.Param(1), v, 4)
	b.Ret(v)
	if err := m.AddFunc(b.Fn()); err != nil {
		t.Fatal(err)
	}
	text := FormatModule(m)
	m2, err := ParseModule(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatModule(m2); got != text {
		t.Fatalf("round trip not canonical:\n%s\nvs\n%s", text, got)
	}
	if !strings.Contains(text, "load4") || !strings.Contains(text, "store4") {
		t.Fatalf("unexpected format output:\n%s", text)
	}
}
