package vir

import (
	"fmt"

	"repro/internal/hw"
)

// Engine executes IR functions through the pre-linked form produced by
// link.go. It is observably identical to Interp — same return values,
// same errors, bit-identical virtual clock — but re-resolves nothing
// per step: branches are integer jumps, direct calls go through
// pre-resolved callees, deterministic clock charges are batched per
// segment, and frames and argument vectors come from a reusable arena
// so steady-state execution performs no host allocations.
//
// Linked code is cached per *Function. Envs whose symbol bindings can
// change implement CodeEpochs (the kernel's module Env reports the
// code-space epoch); the cache is flushed whenever the epoch moves.
// One Engine must only ever see Envs sharing a single code space (the
// kernel keeps one Engine per booted kernel), and like the rest of the
// simulated machine it is not safe for concurrent use — the kernel's
// cooperative scheduler runs one thread at a time.
//
// Interp remains the reference engine; the differential tests execute
// both over the same inputs and assert identical observables.
type Engine struct {
	// MaxSteps is the per-top-level-run step budget (runaway loop
	// guard), counted exactly like the reference interpreter's.
	MaxSteps int

	cache map[*Function]*linkedFn
	epoch uint64

	// elide enables proof-carrying check elision at link time: mask
	// and CFI sites certified redundant by Function.Proofs lower to
	// their host-cheap forms (charges unchanged). On by default;
	// SetElide(false) is the bisection escape hatch.
	elide bool
	stats ElisionStats

	// fuse enables the superinstruction fusion pass (fuse.go) and the
	// monomorphic inline caches on indirect-call sites. On by default;
	// SetFuse(false) is the bisection escape hatch, mirroring elide.
	fuse   bool
	fstats FusionStats
	// fuseSites tallies fused superinstruction sites per function name
	// (cumulative over lowerings; feeds the kernel's per-module fusion
	// counts).
	fuseSites map[string]uint64
	// profile, when installed via SetProfile, guides the fusion policy
	// by per-function execution counts; nil means the static loop
	// heuristic decides. profCounts retains call counts harvested from
	// lowerings discarded by cache flushes, so Profile() spans the
	// engine's whole life.
	profile    map[string]uint64
	profCounts map[string]uint64

	// arena backs register frames and call argument vectors as a
	// stack; sp is the high-water bump pointer.
	arena []uint64
	sp    int

	steps  int
	active bool
}

// ElisionStats counts instrumentation sites the linker lowered to
// their elided forms. Counts are cumulative over lowerings: relinking
// after an epoch bump counts the sites again, mirroring the work the
// linker actually did.
type ElisionStats struct {
	MasksElided uint64
	CFIElided   uint64
}

// NewEngine creates an engine with the default step budget and both
// optimizing tiers — proof-carrying elision and superinstruction
// fusion — enabled.
func NewEngine() *Engine {
	return &Engine{
		MaxSteps:   50_000_000,
		cache:      make(map[*Function]*linkedFn),
		elide:      true,
		fuse:       true,
		fuseSites:  make(map[string]uint64),
		profCounts: make(map[string]uint64),
	}
}

// flushCache discards every cached lowering, first folding the
// lowerings' call counts into the retained execution profile so
// Profile() survives epoch bumps and mode flips.
func (e *Engine) flushCache() {
	for fn, lf := range e.cache {
		if lf.calls > 0 {
			e.profCounts[fn.Name] += lf.calls
		}
	}
	clear(e.cache)
}

// ResetCaches discards every cached lowering without changing any
// setting (call counts fold into the retained profile first). Snapshot
// restore calls it: re-linking against the restored kernel is pure
// host-side work the virtual clock never sees, so a deterministic cold
// start is always safe and never stale.
func (e *Engine) ResetCaches() { e.flushCache() }

// SetElide switches proof-carrying check elision on or off. Toggling
// flushes the linked-code cache so the setting applies to everything
// executed afterwards.
func (e *Engine) SetElide(on bool) {
	if e.elide == on {
		return
	}
	e.elide = on
	e.flushCache()
}

// Elide reports whether proof-carrying elision is enabled.
func (e *Engine) Elide() bool { return e.elide }

// Elision returns the cumulative elision counters.
func (e *Engine) Elision() ElisionStats { return e.stats }

// SetFuse switches superinstruction fusion and the indirect-call inline
// caches on or off. Toggling flushes the linked-code cache so the
// setting applies to everything executed afterwards.
func (e *Engine) SetFuse(on bool) {
	if e.fuse == on {
		return
	}
	e.fuse = on
	e.flushCache()
}

// Fuse reports whether superinstruction fusion is enabled.
func (e *Engine) Fuse() bool { return e.fuse }

// Fusion returns the cumulative fusion counters: superinstruction
// sites fused by the linker and inline-cache hits/misses.
func (e *Engine) Fusion() FusionStats { return e.fstats }

// FuseSites returns a copy of the per-function fused-site tallies
// (function name -> superinstruction sites, cumulative over lowerings).
func (e *Engine) FuseSites() map[string]uint64 {
	out := make(map[string]uint64, len(e.fuseSites))
	for name, n := range e.fuseSites {
		out[name] = n
	}
	return out
}

// SetProfile installs (or, with nil, removes) an execution-count
// profile guiding the fusion policy: functions at or above
// FuseHotThreshold get the aggressive pass, everything else stays
// unfused. The linked-code cache is flushed so the policy applies to
// the next lowering of every function. A typical feedback loop harvests
// Profile() from a run and installs it for the next.
func (e *Engine) SetProfile(p map[string]uint64) {
	e.profile = p
	e.flushCache()
}

// Profile returns per-function execution counts observed by this
// engine: frame entries per function name, including lowerings already
// discarded by cache flushes.
func (e *Engine) Profile() map[string]uint64 {
	out := make(map[string]uint64, len(e.profCounts)+len(e.cache))
	for name, n := range e.profCounts {
		out[name] = n
	}
	for fn, lf := range e.cache {
		if lf.calls > 0 {
			out[fn.Name] += lf.calls
		}
	}
	return out
}

// Call runs fn with the given arguments against env and returns its
// return value. A re-entrant Call (a host intrinsic invoking module
// code again) shares the outer run's step budget rather than
// refreshing it.
func (e *Engine) Call(env Env, fn *Function, args ...uint64) (uint64, error) {
	if ce, ok := env.(CodeEpochs); ok {
		if ep := ce.CodeEpoch(); ep != e.epoch {
			e.flushCache()
			e.epoch = ep
		}
	}
	// The clock is hoisted out of the frame loop: one Env interface
	// call per top-level run instead of one per frame.
	clk := env.Clock()
	if e.active {
		return e.exec(env, clk, e.linked(env, fn), args, 0)
	}
	e.active = true
	e.steps = 0
	defer func() { e.active = false }()
	return e.exec(env, clk, e.linked(env, fn), args, 0)
}

// linked returns the cached lowering of fn, linking it on first use.
func (e *Engine) linked(env Env, fn *Function) *linkedFn {
	if lf, ok := e.cache[fn]; ok {
		return lf
	}
	return e.link(env, fn)
}

// carve reserves n words of arena. Frames released by restoring sp
// keep their own slice headers, so arena growth never invalidates a
// live frame.
func (e *Engine) carve(n int) []uint64 {
	need := e.sp + n
	if need > len(e.arena) {
		na := make([]uint64, need+1024)
		copy(na, e.arena[:e.sp])
		e.arena = na
	}
	s := e.arena[e.sp:need:need]
	e.sp = need
	return s
}

// lval evaluates an operand against a register frame.
func lval(regs []uint64, v Value) uint64 {
	if v.IsImm {
		return v.Imm
	}
	return regs[v.Reg]
}

// exec wraps run with the frame epilogue: the arena pointer is
// restored on every way out (returns and errors alike) by the caller
// frame instead of a per-frame defer, which keeps the hot call path
// free of defer bookkeeping.
func (e *Engine) exec(env Env, clk *hw.Clock, lf *linkedFn, args []uint64, depth int) (uint64, error) {
	sp0 := e.sp
	ret, err := e.run(env, clk, lf, args, depth)
	e.sp = sp0
	return ret, err
}

func (e *Engine) run(env Env, clk *hw.Clock, lf *linkedFn, args []uint64, depth int) (uint64, error) {
	if depth > 256 {
		return 0, fmt.Errorf("vir: call depth exceeded in %s", lf.fn.Name)
	}
	if len(args) != lf.fn.NParams {
		return 0, fmt.Errorf("vir: %s wants %d args, got %d", lf.fn.Name, lf.fn.NParams, len(args))
	}
	lf.calls++ // execution-count profile (guides fusion; see Profile)
	regs := e.carve(lf.fn.NRegs)
	// Parameters overwrite the frame's head; only the remainder needs
	// zeroing (the arena hands out dirty memory).
	n := copy(regs, args)
	clear(regs[n:])
	code := lf.code

	var retOverride uint64 // code address forced by __corrupt_return
	overridden := false

	pc := 0
	for {
		in := &code[pc]
		if n := in.segLen; n > 0 {
			// Segment head: account the whole segment's steps and
			// deterministic charges at once. Everything in the segment
			// is certain to execute, so the batch is exact — unless
			// the step budget expires inside it, which falls back to
			// per-instruction accounting to stay bit-identical. The
			// batch was merged per tag at link time, so attribution
			// costs one Charge per tag present, not per instruction.
			e.steps += n
			if e.steps > e.MaxSteps {
				return 0, e.stepLimit(clk, regs, code, pc, n)
			}
			for _, tc := range in.segCharges {
				clk.Charge(tc.tag, tc.n)
			}
		}
		switch in.op {
		case OpConst:
			regs[in.dst] = in.imm
		case OpMov:
			regs[in.dst] = lval(regs, in.a)
		case OpAdd:
			regs[in.dst] = lval(regs, in.a) + lval(regs, in.b)
		case OpSub:
			regs[in.dst] = lval(regs, in.a) - lval(regs, in.b)
		case OpMul:
			regs[in.dst] = lval(regs, in.a) * lval(regs, in.b)
		case OpAnd:
			regs[in.dst] = lval(regs, in.a) & lval(regs, in.b)
		case OpOr:
			regs[in.dst] = lval(regs, in.a) | lval(regs, in.b)
		case OpXor:
			regs[in.dst] = lval(regs, in.a) ^ lval(regs, in.b)
		case OpShl:
			regs[in.dst] = lval(regs, in.a) << (lval(regs, in.b) & 63)
		case OpShr:
			regs[in.dst] = lval(regs, in.a) >> (lval(regs, in.b) & 63)
		case OpCmpEQ:
			regs[in.dst] = b2u(lval(regs, in.a) == lval(regs, in.b))
		case OpCmpNE:
			regs[in.dst] = b2u(lval(regs, in.a) != lval(regs, in.b))
		case OpCmpLT:
			regs[in.dst] = b2u(lval(regs, in.a) < lval(regs, in.b))
		case OpCmpGE:
			regs[in.dst] = b2u(lval(regs, in.a) >= lval(regs, in.b))
		case OpSelect:
			if lval(regs, in.a) != 0 {
				regs[in.dst] = lval(regs, in.b)
			} else {
				regs[in.dst] = lval(regs, in.c)
			}
		case OpMaskGhost:
			regs[in.dst] = MaskAddress(lval(regs, in.a))
		case opMaskElided:
			// Proven redundant: operand b already holds the masked
			// value (charges unchanged, batched at the segment head).
			regs[in.dst] = lval(regs, in.b)
		case opFuncAddrImm:
			regs[in.dst] = in.imm
		case OpCFILabel:
			// Charge batched at the segment head; a label has no
			// data effect.

		// --- Superinstructions (fuse.go). Charges and step weights
		// were batched at the segment head exactly as the constituents'
		// would have been; the handlers execute the idiom sequentially
		// and step over the consumed gap slot. ---
		case opFusedConstALU:
			regs[in.dst] = in.imm
			av, bv := lval(regs, in.a), lval(regs, in.b)
			var v uint64
			switch in.op2 {
			case OpAdd:
				v = av + bv
			case OpSub:
				v = av - bv
			case OpMul:
				v = av * bv
			case OpAnd:
				v = av & bv
			case OpOr:
				v = av | bv
			case OpXor:
				v = av ^ bv
			case OpShl:
				v = av << (bv & 63)
			case OpShr:
				v = av >> (bv & 63)
			case OpCmpEQ:
				v = b2u(av == bv)
			case OpCmpNE:
				v = b2u(av != bv)
			case OpCmpLT:
				v = b2u(av < bv)
			case OpCmpGE:
				v = b2u(av >= bv)
			}
			regs[in.t1] = v
			pc++ // skip the gap

		case opFusedCmpBr:
			av, bv := lval(regs, in.a), lval(regs, in.b)
			var c bool
			switch in.op2 {
			case OpCmpEQ:
				c = av == bv
			case OpCmpNE:
				c = av != bv
			case OpCmpLT:
				c = av < bv
			case OpCmpGE:
				c = av >= bv
			}
			// The comparison result may be live past the branch.
			regs[in.dst] = b2u(c)
			if c {
				pc = in.t1
			} else {
				pc = in.t2
			}
			continue

		case opFusedAddBr:
			regs[in.dst] = lval(regs, in.a) + lval(regs, in.b)
			pc = in.t1
			continue

		case opFusedSubBr:
			regs[in.dst] = lval(regs, in.a) - lval(regs, in.b)
			pc = in.t1
			continue

		case opFusedMaskLoad:
			m := MaskAddress(lval(regs, in.a))
			regs[in.dst] = m
			v, err := env.Load(hw.Virt(m), in.size)
			if err != nil {
				return 0, err
			}
			regs[in.t1] = v
			pc++ // skip the gap

		case opFusedMaskStore:
			m := MaskAddress(lval(regs, in.a))
			regs[in.dst] = m
			if err := env.Store(hw.Virt(m), in.size, lval(regs, in.b)); err != nil {
				return 0, err
			}
			pc++ // skip the gap

		case opFusedCallRet:
			asp := e.sp
			argv := e.carve(len(in.args))
			for i, a := range in.args {
				argv[i] = lval(regs, a)
			}
			ret, err := e.exec(env, clk, in.callee, argv, depth+1)
			e.sp = asp
			if err != nil {
				return 0, err
			}
			regs[in.dst] = ret
			// The ret half: its step and charge come after the callee
			// has run, exactly where the reference interpreter puts
			// them (so a budget expiring inside the callee, or on the
			// ret itself, lands on the same instruction with the same
			// cycles).
			e.steps++
			if e.steps > e.MaxSteps {
				return 0, ErrStepLimit
			}
			clk.Charge(hw.TagEngine, hw.CostCall)
			if overridden {
				target := retOverride
				gadget, ok := env.FuncByAddr(target)
				if !ok {
					return 0, fmt.Errorf("vir: return pivots to non-code address %#x", target)
				}
				if gadget.NParams != 0 {
					return 0, fmt.Errorf("vir: return pivot target %s expects arguments", gadget.Name)
				}
				return e.exec(env, clk, e.linked(env, gadget), nil, depth+1)
			}
			return lval(regs, in.a), nil

		case opFusedGap:
			// Unreachable by construction: gaps are never branch
			// targets and fused handlers step over them.
			return 0, fmt.Errorf("vir: internal error: executed fused gap in %s", lf.fn.Name)

		case OpLoad:
			v, err := env.Load(hw.Virt(lval(regs, in.a)), in.size)
			if err != nil {
				return 0, err
			}
			regs[in.dst] = v
		case OpStore:
			if err := env.Store(hw.Virt(lval(regs, in.a)), in.size, lval(regs, in.b)); err != nil {
				return 0, err
			}
		case OpMemcpy:
			if err := env.Memcpy(hw.Virt(lval(regs, in.a)), hw.Virt(lval(regs, in.b)), int(lval(regs, in.c))); err != nil {
				return 0, err
			}

		case OpBr:
			pc = in.t1
			continue
		case OpCondBr:
			if lval(regs, in.a) != 0 {
				pc = in.t1
			} else {
				pc = in.t2
			}
			continue

		case OpCall:
			asp := e.sp
			argv := e.carve(len(in.args))
			for i, a := range in.args {
				argv[i] = lval(regs, a)
			}
			ret, err := e.exec(env, clk, in.callee, argv, depth+1)
			e.sp = asp
			if err != nil {
				return 0, err
			}
			regs[in.dst] = ret

		case opCallIntrinsic:
			// argv is arena-backed and only valid for the duration of
			// the intrinsic call; host intrinsics must not retain it.
			asp := e.sp
			argv := e.carve(len(in.args))
			for i, a := range in.args {
				argv[i] = lval(regs, a)
			}
			ret, err := env.Intrinsic(in.sym, argv)
			e.sp = asp
			if err != nil {
				return 0, err
			}
			regs[in.dst] = ret

		case opCorruptReturn:
			if len(in.args) != 1 {
				return 0, fmt.Errorf("vir: %s wants 1 arg", corruptReturnIntrinsic)
			}
			retOverride = lval(regs, in.args[0])
			overridden = true
			regs[in.dst] = 0

		case OpCallInd, OpCFICallInd, opCFICallIndElided:
			target := lval(regs, in.a)
			// opCFICallIndElided carries the same charges but skips
			// the host-side check its dominating predecessor already
			// performed on this exact value.
			if in.op == OpCFICallInd {
				if err := cfiCheck(env, lf.fn.Name, target); err != nil {
					return 0, err
				}
			}
			var clf *linkedFn
			if e.fuse && in.icFn != nil && in.icTarget == target {
				// Monomorphic inline-cache hit: the site calls the same
				// target as last time, so skip the address resolution and
				// the linked-cache lookup. The cache lives inside this
				// lowering's code array, so an epoch bump (which flushes
				// the lowering itself) can never leave it stale.
				clf = in.icFn
				e.fstats.ICHits++
			} else {
				callee, ok := env.FuncByAddr(target)
				if !ok {
					return 0, fmt.Errorf("vir: indirect call in %s to non-code address %#x", lf.fn.Name, target)
				}
				clf = e.linked(env, callee)
				if e.fuse {
					in.icTarget, in.icFn = target, clf
					e.fstats.ICMisses++
				}
			}
			asp := e.sp
			argv := e.carve(len(in.args))
			for i, a := range in.args {
				argv[i] = lval(regs, a)
			}
			ret, err := e.exec(env, clk, clf, argv, depth+1)
			e.sp = asp
			if err != nil {
				return 0, err
			}
			regs[in.dst] = ret

		case OpRet, OpCFIRet:
			if overridden {
				target := retOverride
				if in.op == OpCFIRet {
					if err := cfiCheck(env, lf.fn.Name, target); err != nil {
						return 0, err
					}
				}
				gadget, ok := env.FuncByAddr(target)
				if !ok {
					return 0, fmt.Errorf("vir: return pivots to non-code address %#x", target)
				}
				if gadget.NParams != 0 {
					return 0, fmt.Errorf("vir: return pivot target %s expects arguments", gadget.Name)
				}
				return e.exec(env, clk, e.linked(env, gadget), nil, depth+1)
			}
			return lval(regs, in.a), nil

		case OpPortIn:
			v, err := env.PortIn(uint16(lval(regs, in.a)))
			if err != nil {
				return 0, err
			}
			regs[in.dst] = v
		case OpPortOut:
			if err := env.PortOut(uint16(lval(regs, in.a)), lval(regs, in.b)); err != nil {
				return 0, err
			}

		case OpAsm:
			if _, err := env.Intrinsic(in.sym, nil); err != nil {
				return 0, err
			}

		case OpFuncAddr:
			// Unresolved at link time: resolve per execution like the
			// reference, charging only on success.
			addr, ok := env.FuncAddr(in.sym)
			if !ok {
				return 0, fmt.Errorf("vir: funcaddr of unknown symbol %q", in.sym)
			}
			regs[in.dst] = addr
			clk.Charge(hw.TagEngine, hw.CostALU)

		case opFellOff:
			return 0, fmt.Errorf("vir: fell off block %s/%s", lf.fn.Name, in.sym)

		default: // opUnimpl
			return 0, fmt.Errorf("vir: unimplemented opcode %v", Opcode(in.imm))
		}
		pc++
	}
}

// stepLimit is the exact slow path for a budget expiring inside a
// segment: the reference interpreter executes (and charges) each
// instruction until the step counter crosses MaxSteps, so replay the
// remaining budget per instruction. Only non-final logical steps of a
// segment can be involved, and those are pure by construction — fused
// sites expand back into their constituents through the fusion table
// (linkedInstr.fused), gap slots weigh nothing and are skipped, and a
// segment-final impure constituent (a fused pair's load/store/branch
// half, or a call+ret's call) is past the replayable range because
// nExec is strictly below the segment's step weight.
func (e *Engine) stepLimit(clk *hw.Clock, regs []uint64, code []linkedInstr, pc, segLen int) error {
	nExec := e.MaxSteps - (e.steps - segLen)
	for i := pc; nExec > 0; i++ {
		in := &code[i]
		if in.op == opFusedGap {
			continue
		}
		if len(in.fused) > 0 {
			for j := range in.fused {
				if nExec == 0 {
					break
				}
				c := &in.fused[j]
				for _, tc := range c.charges {
					clk.Charge(tc.tag, tc.n)
				}
				pureEval(regs, c)
				nExec--
			}
			continue
		}
		for _, tc := range in.charges {
			clk.Charge(tc.tag, tc.n)
		}
		pureEval(regs, in)
		nExec--
	}
	return ErrStepLimit
}

// pureEval executes one pure (non-faulting, non-calling, non-branching)
// instruction. It must stay in sync with the corresponding cases of
// the Engine.exec switch.
func pureEval(regs []uint64, in *linkedInstr) {
	switch in.op {
	case OpConst:
		regs[in.dst] = in.imm
	case OpMov:
		regs[in.dst] = lval(regs, in.a)
	case OpAdd:
		regs[in.dst] = lval(regs, in.a) + lval(regs, in.b)
	case OpSub:
		regs[in.dst] = lval(regs, in.a) - lval(regs, in.b)
	case OpMul:
		regs[in.dst] = lval(regs, in.a) * lval(regs, in.b)
	case OpAnd:
		regs[in.dst] = lval(regs, in.a) & lval(regs, in.b)
	case OpOr:
		regs[in.dst] = lval(regs, in.a) | lval(regs, in.b)
	case OpXor:
		regs[in.dst] = lval(regs, in.a) ^ lval(regs, in.b)
	case OpShl:
		regs[in.dst] = lval(regs, in.a) << (lval(regs, in.b) & 63)
	case OpShr:
		regs[in.dst] = lval(regs, in.a) >> (lval(regs, in.b) & 63)
	case OpCmpEQ:
		regs[in.dst] = b2u(lval(regs, in.a) == lval(regs, in.b))
	case OpCmpNE:
		regs[in.dst] = b2u(lval(regs, in.a) != lval(regs, in.b))
	case OpCmpLT:
		regs[in.dst] = b2u(lval(regs, in.a) < lval(regs, in.b))
	case OpCmpGE:
		regs[in.dst] = b2u(lval(regs, in.a) >= lval(regs, in.b))
	case OpSelect:
		if lval(regs, in.a) != 0 {
			regs[in.dst] = lval(regs, in.b)
		} else {
			regs[in.dst] = lval(regs, in.c)
		}
	case OpMaskGhost:
		regs[in.dst] = MaskAddress(lval(regs, in.a))
	case opMaskElided:
		regs[in.dst] = lval(regs, in.b)
	case opFuncAddrImm:
		regs[in.dst] = in.imm
	case OpCFILabel:
		// no data effect
	}
}
