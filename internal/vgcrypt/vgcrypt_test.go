package vgcrypt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testKey(b byte) []byte {
	k := make([]byte, KeySize)
	for i := range k {
		k[i] = b
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := testKey(1)
	ns := NewNonceSource([4]byte{1, 2, 3, 4})
	fn := func(msg []byte) bool {
		blob, err := Seal(key, ns.Next(), msg)
		if err != nil {
			return false
		}
		out, err := Open(key, blob)
		return err == nil && bytes.Equal(out, msg)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOpenDetectsEveryBitFlip(t *testing.T) {
	key := testKey(2)
	blob, err := SealWithKeyAndCounter(key, 1, []byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(blob); i++ {
		mutated := append([]byte(nil), blob...)
		mutated[i] ^= 0x01
		if _, err := Open(key, mutated); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

func TestOpenWrongKey(t *testing.T) {
	blob, _ := SealWithKeyAndCounter(testKey(3), 1, []byte("secret"))
	if _, err := Open(testKey(4), blob); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong key accepted: %v", err)
	}
}

func TestOpenTruncated(t *testing.T) {
	blob, _ := SealWithKeyAndCounter(testKey(3), 1, []byte("secret"))
	for _, n := range []int{0, 1, NonceSize, len(blob) - 1} {
		if _, err := Open(testKey(3), blob[:n]); err == nil {
			t.Errorf("truncated blob (%d bytes) accepted", n)
		}
	}
}

func TestBadKeySize(t *testing.T) {
	if _, err := Seal([]byte("short"), [NonceSize]byte{}, nil); !errors.Is(err, ErrBadKey) {
		t.Errorf("short key accepted: %v", err)
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	key := testKey(5)
	msg := []byte("very-recognizable-plaintext-marker")
	blob, _ := SealWithKeyAndCounter(key, 9, msg)
	if bytes.Contains(blob, msg) || bytes.Contains(blob, msg[:8]) {
		t.Errorf("ciphertext contains plaintext")
	}
}

func TestNonceUniqueness(t *testing.T) {
	ns := NewNonceSource([4]byte{9, 9, 9, 9})
	seen := map[[NonceSize]byte]bool{}
	for i := 0; i < 10000; i++ {
		n := ns.Next()
		if seen[n] {
			t.Fatalf("nonce repeated at %d", i)
		}
		seen[n] = true
	}
}

func TestChecksumStability(t *testing.T) {
	a := Checksum([]byte("x"))
	b := Checksum([]byte("x"))
	c := Checksum([]byte("y"))
	if a != b || a == c {
		t.Errorf("checksum misbehaves")
	}
}

func TestSignVerify(t *testing.T) {
	var seed [32]byte
	seed[0] = 7
	kp := DeriveKeyPair(seed)
	msg := []byte("authenticate me")
	sig := kp.Sign(msg)
	if !VerifySig(kp.Public, msg, sig) {
		t.Fatalf("valid signature rejected")
	}
	if VerifySig(kp.Public, []byte("other"), sig) {
		t.Errorf("signature verified over wrong message")
	}
	sig[0] ^= 1
	if VerifySig(kp.Public, msg, sig) {
		t.Errorf("corrupted signature verified")
	}
	if VerifySig([]byte("not a key"), msg, sig) {
		t.Errorf("garbage public key verified")
	}
}

func TestDeriveKeyPairDeterministic(t *testing.T) {
	var seed [32]byte
	seed[5] = 42
	a := DeriveKeyPair(seed)
	b := DeriveKeyPair(seed)
	if !bytes.Equal(a.Private, b.Private) {
		t.Errorf("same seed gave different keys")
	}
}

func TestDeriveKeySeparation(t *testing.T) {
	parent := testKey(6)
	a := DeriveKey(parent, "swap")
	b := DeriveKey(parent, "seal")
	if bytes.Equal(a, b) {
		t.Errorf("different labels derived the same key")
	}
	if len(a) != KeySize {
		t.Errorf("derived key size %d", len(a))
	}
	c := DeriveKey(testKey(7), "swap")
	if bytes.Equal(a, c) {
		t.Errorf("different parents derived the same key")
	}
}

func TestOverheadMatchesSeal(t *testing.T) {
	blob, _ := SealWithKeyAndCounter(testKey(1), 1, make([]byte, 100))
	if len(blob) != 100+Overhead() {
		t.Errorf("overhead = %d, want %d", len(blob)-100, Overhead())
	}
}
