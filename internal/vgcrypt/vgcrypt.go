// Package vgcrypt provides the cryptographic primitives used by the
// Virtual Ghost VM and by ghosting applications: authenticated
// encryption (AES-GCM), checksums, and signing key pairs (Ed25519).
// Everything is deterministic given a caller-supplied nonce source so
// the simulation is reproducible.
//
// The paper lets each application choose its own algorithms and key
// lengths (§3.3); this package is the default suite the reproduction's
// libc and VM use.
package vgcrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
)

// KeySize is the symmetric key size (AES-256).
const KeySize = 32

// NonceSize is the AES-GCM nonce size.
const NonceSize = 12

// ErrBadKey reports a key of the wrong length.
var ErrBadKey = errors.New("vgcrypt: key must be 32 bytes")

// ErrCorrupt reports failed authentication on open.
var ErrCorrupt = errors.New("vgcrypt: ciphertext corrupt or wrong key")

// NonceSource produces unique nonces. The VM's is backed by the
// hardware RNG plus a counter; applications derive theirs from the
// trusted random instruction.
type NonceSource struct {
	counter uint64
	salt    [4]byte
}

// NewNonceSource creates a nonce source from 4 bytes of salt.
func NewNonceSource(salt [4]byte) *NonceSource {
	return &NonceSource{salt: salt}
}

// Counter returns how many nonces have been issued. Snapshot/restore
// persists it so a restored VM never reissues a nonce it already used.
func (n *NonceSource) Counter() uint64 { return n.counter }

// SetCounter restores the issue counter from a snapshot.
func (n *NonceSource) SetCounter(v uint64) { n.counter = v }

// Next returns the next unique nonce.
func (n *NonceSource) Next() [NonceSize]byte {
	var out [NonceSize]byte
	copy(out[:4], n.salt[:])
	n.counter++
	v := n.counter
	for i := 0; i < 8; i++ {
		out[4+i] = byte(v >> (8 * i))
	}
	return out
}

// Seal encrypts and authenticates plaintext with AES-256-GCM. The
// returned blob is nonce || ciphertext+tag and is self-contained.
func Seal(key []byte, nonce [NonceSize]byte, plaintext []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, NonceSize, NonceSize+len(plaintext)+aead.Overhead())
	copy(out, nonce[:])
	return aead.Seal(out, nonce[:], plaintext, nil), nil
}

// Open authenticates and decrypts a blob produced by Seal.
func Open(key []byte, blob []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(blob) < NonceSize+aead.Overhead() {
		return nil, ErrCorrupt
	}
	pt, err := aead.Open(nil, blob[:NonceSize], blob[NonceSize:], nil)
	if err != nil {
		return nil, ErrCorrupt
	}
	return pt, nil
}

// Overhead returns the ciphertext expansion of Seal.
func Overhead() int { return NonceSize + 16 }

func newAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("%w (got %d)", ErrBadKey, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Checksum returns the SHA-256 digest of b. Ghosting applications store
// an encrypted checksum beside file contents so that OS tampering is
// detected on read-back (paper §3.3).
func Checksum(b []byte) [32]byte { return sha256.Sum256(b) }

// KeyPair is a signing key pair (Ed25519). The Virtual Ghost VM holds
// one per machine; its private half is sealed by the TPM storage key.
type KeyPair struct {
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// DeriveKeyPair deterministically derives a key pair from 32 bytes of
// seed material (e.g. hardware entropy at install time).
func DeriveKeyPair(seed [32]byte) KeyPair {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return KeyPair{Public: priv.Public().(ed25519.PublicKey), Private: priv}
}

// Sign signs msg.
func (kp KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(kp.Private, msg)
}

// VerifySig verifies sig over msg against a public key.
func VerifySig(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// DeriveKey derives a subkey from parent key material and a label
// (HKDF-flavoured single-step expansion: SHA-256(parent || label)).
func DeriveKey(parent []byte, label string) []byte {
	h := sha256.New()
	h.Write(parent)
	h.Write([]byte(label))
	return h.Sum(nil)
}

// SealWithKeyAndCounter is a convenience for callers that keep their own
// nonce counters: it builds the nonce from the counter and seals.
func SealWithKeyAndCounter(key []byte, counter uint64, plaintext []byte) ([]byte, error) {
	var nonce [NonceSize]byte
	for i := 0; i < 8; i++ {
		nonce[i] = byte(counter >> (8 * i))
	}
	return Seal(key, nonce, plaintext)
}
