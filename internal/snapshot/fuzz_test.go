package snapshot

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzSnapshotRoundTrip drives the whole contract from fuzzed inputs:
// pick a mode and a snap point, compare a snapshotted run against the
// straight run over the full final state (cycles, ledgers, memory,
// kernel structures — all folded into the encoded image), and check
// that a fuzz-chosen bit flip anywhere in the encoded image is rejected
// by the checksum before any state is touched.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint32(0))
	f.Add(uint8(1), uint8(1), uint32(17))
	f.Add(uint8(2), uint8(0), uint32(4099))
	f.Add(uint8(1), uint8(0), uint32(1<<20))
	f.Fuzz(func(t *testing.T, modeB, snapB uint8, flip uint32) {
		mode := core.Mode(int(modeB) % 3)
		const phases = 2
		snap := int(snapB) % phases

		cold := newSys(t, mode, 1, false)
		for i := 0; i < phases; i++ {
			runPhase(t, cold, i)
		}
		want := fingerprint(t, cold)
		wantCycles := cold.Machine.Clock.Cycles()

		src := newSys(t, mode, 1, false)
		for i := 0; i < snap; i++ {
			runPhase(t, src, i)
		}
		img, err := Capture(src)
		if err != nil {
			t.Fatal(err)
		}
		data, err := Encode(img)
		if err != nil {
			t.Fatal(err)
		}

		// Corruption corpus: any single-bit mutation must be rejected.
		mut := append([]byte(nil), data...)
		pos := int(flip) % len(mut)
		mut[pos] ^= byte(1 << (flip % 8))
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d accepted", pos)
		}

		img2, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		dst := newSys(t, mode, 1, false)
		if err := Restore(dst, img2); err != nil {
			t.Fatal(err)
		}
		for i := snap; i < phases; i++ {
			runPhase(t, dst, i)
		}
		if got := fingerprint(t, dst); !bytes.Equal(got, want) {
			t.Fatalf("mode %v snap %d: restored run diverged from straight run", mode, snap)
		}
		if got := dst.Machine.Clock.Cycles(); got != wantCycles {
			t.Fatalf("mode %v snap %d: cycles %d, want %d", mode, snap, got, wantCycles)
		}
	})
}
