package snapshot

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro"
	"repro/internal/kernel"
)

// Image file layout:
//
//	magic(8) | version(4 LE) | flags(4 LE) | payload | sha256(32)
//
// The header constants live in the kernel package (snapshotmeta.go) so
// flag validation can probe image files without importing this package.
// The payload is the Image struct as JSON: Go's encoder emits struct
// fields in declaration order and sorts map keys, and every set-valued
// field is sorted at capture, so equal machine states produce
// byte-identical images. The trailing SHA-256 covers header + payload;
// Decode verifies it before parsing a single payload byte, so any
// corruption or truncation is rejected before any state is touched.
//
// The checksum is an *integrity* check against accidental corruption,
// not an authenticity seal — anyone can recompute it after mutating a
// decoded image, which is precisely the hostile-OS move the
// tampered-snapshot security row plays. Tamper protection for the
// frames that need it comes from the sealed-page layer (AES-GCM under a
// TPM-rooted key, core.SnapshotSealer), which a re-checksummed image
// cannot forge.

// ErrCorruptImage reports a checksum mismatch or truncation.
var ErrCorruptImage = errors.New("snapshot: image corrupt (checksum mismatch or truncated)")

const checksumSize = sha256.Size

// Encode serializes an image into the versioned, checksummed file
// format.
func Encode(img *Image) ([]byte, error) {
	payload, err := json.Marshal(img)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	var flags uint32
	if img.Record != nil {
		flags |= kernel.SnapshotFlagRecorded
	}
	hdr := kernel.PutSnapshotHeader(kernel.SnapshotHeader{
		Version: kernel.SnapshotImageVersion,
		Flags:   flags,
	})
	out := make([]byte, 0, len(hdr)+len(payload)+checksumSize)
	out = append(out, hdr[:]...)
	out = append(out, payload...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...), nil
}

// Decode parses an encoded image. The checksum is verified over the
// whole prefix before anything else — a flipped bit anywhere in the
// file, or a truncated file, is rejected here, never half-applied.
func Decode(data []byte) (*Image, error) {
	if len(data) < kernel.SnapshotHeaderSize+checksumSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptImage, len(data))
	}
	body, sum := data[:len(data)-checksumSize], data[len(data)-checksumSize:]
	if sha256.Sum256(body) != [checksumSize]byte(sum) {
		return nil, ErrCorruptImage
	}
	hdr, err := kernel.ParseSnapshotHeader(body)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	img := &Image{}
	if err := json.Unmarshal(body[kernel.SnapshotHeaderSize:], img); err != nil {
		return nil, fmt.Errorf("snapshot: payload: %w", err)
	}
	if hdr.Recorded() != (img.Record != nil) {
		return nil, fmt.Errorf("snapshot: header recorded flag %v but trailer presence %v", hdr.Recorded(), img.Record != nil)
	}
	return img, nil
}

// Save captures sys and writes the encoded image to path, returning the
// image and its encoded size.
func Save(sys *repro.System, path string) (*Image, int, error) {
	img, err := Capture(sys)
	if err != nil {
		return nil, 0, err
	}
	data, err := Encode(img)
	if err != nil {
		return nil, 0, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, 0, fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	return img, len(data), nil
}

// Load reads and decodes an image file.
func Load(path string) (*Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read image: %w", err)
	}
	return Decode(data)
}
