package snapshot

import (
	"repro"
	"repro/internal/hw"
)

// This file is the record-replay layer. A run of the simulation is
// deterministic given its inputs; the inputs that are *not* derivable
// from the image are the nondeterministic ones — values drawn from the
// hardware RNG (whose internal state the image does capture, but which
// an external TRNG or an attacker-visible source may override) and
// packets arriving from outside the machine (a peer NIC the image does
// not contain). A Recorder taps both between Capture and Save; the
// resulting Record travels in the image trailer, and a Replayer serves
// it back so a restored machine re-enacts the exact execution, draw for
// draw and packet for packet.
//
// Console output is not recorded: it is an *output* of the machine
// (fully reproduced by replaying the inputs), not an input.

// NetEvent is one external packet arrival, stamped with the virtual
// cycle count at which the NIC accepted it.
type NetEvent struct {
	Cycles  uint64 `json:"cycles"`
	Port    uint16 `json:"port"`
	Payload []byte `json:"payload"`
}

// Record is the nondeterministic-input trailer of an image.
type Record struct {
	RNGDraws  []uint64   `json:"rng_draws,omitempty"`
	NetEvents []NetEvent `json:"net_events,omitempty"`
}

// Recorder captures nondeterministic inputs on a live system.
type Recorder struct {
	m   *hw.Machine
	rec Record
}

// StartRecording installs taps on sys's RNG and NIC ingress. Taps are
// pure host-side observers: they charge nothing and change nothing, so
// a recorded run's virtual numbers equal an unrecorded run's.
func StartRecording(sys *repro.System) *Recorder {
	r := &Recorder{m: sys.Machine}
	sys.Machine.RNG.SetTap(func(v uint64) {
		r.rec.RNGDraws = append(r.rec.RNGDraws, v)
	})
	sys.Machine.NIC.SetRecvTap(func(p hw.Packet) {
		r.rec.NetEvents = append(r.rec.NetEvents, NetEvent{
			Cycles:  r.m.Clock.Cycles(),
			Port:    p.Port,
			Payload: append([]byte(nil), p.Payload...),
		})
	})
	return r
}

// Stop removes the taps and returns the captured record (attach it to
// an Image before Encode).
func (r *Recorder) Stop() *Record {
	r.m.RNG.SetTap(nil)
	r.m.NIC.SetRecvTap(nil)
	rec := r.rec
	return &rec
}

// Replayer serves a Record back into a restored system.
type Replayer struct {
	m      *hw.Machine
	rec    *Record
	rngPos int
	netPos int
}

// StartReplay installs the record's RNG draws as the machine's entropy
// source: each draw is served in recorded order without advancing the
// PRNG state (modeling the external TRNG whose outputs were recorded);
// when the record is exhausted the machine falls back to its own
// deterministic PRNG. Recorded packet arrivals are delivered by Pump.
func StartReplay(sys *repro.System, rec *Record) *Replayer {
	rp := &Replayer{m: sys.Machine, rec: rec}
	sys.Machine.RNG.SetSource(func() (uint64, bool) {
		if rp.rngPos < len(rec.RNGDraws) {
			v := rec.RNGDraws[rp.rngPos]
			rp.rngPos++
			return v, true
		}
		return 0, false
	})
	return rp
}

// Pump injects every recorded packet whose arrival cycle is due at the
// machine's current virtual time, returning how many were delivered.
// Drivers call it between scheduler steps (where the kernel polls the
// NIC anyway), so replayed arrivals interleave with execution at the
// same virtual times they originally did.
func (rp *Replayer) Pump() int { return rp.PumpTo(rp.m.Clock.Cycles()) }

// PumpTo injects recorded packets with arrival cycles <= cycles.
// Injection charges nothing: the receive cost was charged when the
// packet originally arrived and is part of the recorded timeline.
func (rp *Replayer) PumpTo(cycles uint64) int {
	n := 0
	for rp.netPos < len(rp.rec.NetEvents) {
		ev := rp.rec.NetEvents[rp.netPos]
		if ev.Cycles > cycles {
			break
		}
		rp.m.NIC.Inject(hw.Packet{Port: ev.Port, Payload: append([]byte(nil), ev.Payload...)})
		rp.netPos++
		n++
	}
	return n
}

// Remaining reports how many recorded inputs have not been served yet.
func (rp *Replayer) Remaining() (rngDraws, netEvents int) {
	return len(rp.rec.RNGDraws) - rp.rngPos, len(rp.rec.NetEvents) - rp.netPos
}

// Stop removes the replay source; the machine's own PRNG takes over.
func (rp *Replayer) Stop() { rp.m.RNG.SetSource(nil) }
