package snapshot

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/libc"
	"repro/internal/vir"
)

func sysOpts(cpus int, hostpar bool) repro.Options {
	return repro.Options{
		Machine:      hw.MachineConfig{NumCPUs: cpus},
		HostParallel: hostpar,
	}
}

func newSys(t testing.TB, mode core.Mode, cpus int, hostpar bool) *repro.System {
	t.Helper()
	sys, err := repro.NewSystemWithOptions(mode, sysOpts(cpus, hostpar))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runPhase runs one deterministic workload slice: ghost allocations,
// file I/O through the buffer cache, fork/wait children, syscalls,
// trusted randomness, and console output. Each tag perturbs the state
// differently so distinct phase histories produce distinct images.
func runPhase(t testing.TB, sys *repro.System, tag int) {
	t.Helper()
	errs := make(chan error, 8)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	_, err := sys.Kernel.Spawn(fmt.Sprintf("phase%d", tag), func(p *kernel.Proc) {
		l, err := libc.NewGhosting(p)
		if err != nil {
			fail(err)
			return
		}
		msg := []byte(fmt.Sprintf("ghost-secret-%d", tag))
		g, err := l.Malloc(256)
		if err != nil {
			fail(err)
			return
		}
		l.WriteGhost(g, msg)

		path := fmt.Sprintf("/wk%d", tag)
		fd, err := l.Open(path, kernel.OCreat|kernel.ORdWr)
		if err != nil {
			fail(fmt.Errorf("open %s: %w", path, err))
			return
		}
		if _, err := l.Write(fd, g, len(msg)); err != nil {
			fail(err)
			return
		}
		l.Close(fd)

		fd, err = l.Open(path, kernel.ORdWr)
		if err != nil {
			fail(err)
			return
		}
		buf, err := l.Malloc(256)
		if err != nil {
			fail(err)
			return
		}
		n, err := l.Read(fd, buf, len(msg))
		if err != nil {
			fail(err)
			return
		}
		l.Close(fd)
		if got := l.ReadGhost(buf, n); !bytes.Equal(got, msg) {
			fail(fmt.Errorf("read back %q, want %q", got, msg))
			return
		}
		if tag%2 == 1 {
			if err := l.Unlink(path); err != nil {
				fail(err)
				return
			}
		}

		for i := 0; i < 2; i++ {
			p.Fork(func(c *kernel.Proc) {
				c.Compute(2_000)
			})
		}
		for i := 0; i < 2; i++ {
			p.Wait()
		}
		_ = l.Rand()
		p.Kernel().Console().Printf("phase %d done", tag)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RunUntilIdle()
	select {
	case err := <-errs:
		t.Fatalf("phase %d workload: %v", tag, err)
	default:
	}
}

// fingerprint captures and encodes the system's whole state. Two
// machines with bit-identical state produce byte-identical encodings.
func fingerprint(t testing.TB, sys *repro.System) []byte {
	t.Helper()
	img, err := Capture(sys)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRoundTripBitIdentical is the determinism contract: a machine
// restored from a snapshot taken at any quiescent point finishes the
// remaining workload in a state byte-identical to the uninterrupted
// run — same cycles, same ledger, same memory, same kernel structures.
// The snap points include the freshly-booted machine and, on the SMP
// configs, epoch barriers of the host-parallel scheduler.
func TestRoundTripBitIdentical(t *testing.T) {
	const phases = 3
	cfgs := []struct {
		name    string
		mode    core.Mode
		cpus    int
		hostpar bool
	}{
		{"native-1cpu", core.ModeNative, 1, false},
		{"vg-1cpu", core.ModeVirtualGhost, 1, false},
		{"shadow-1cpu", core.ModeShadow, 1, false},
		{"native-4cpu-hostpar", core.ModeNative, 4, true},
		{"vg-4cpu-hostpar", core.ModeVirtualGhost, 4, true},
	}
	for _, c := range cfgs {
		t.Run(c.name, func(t *testing.T) {
			cold := newSys(t, c.mode, c.cpus, c.hostpar)
			for i := 0; i < phases; i++ {
				runPhase(t, cold, i)
			}
			want := fingerprint(t, cold)
			wantCycles := cold.Machine.Clock.Cycles()
			wantLedger := cold.Machine.Clock.Ledger()

			for snap := 0; snap < phases; snap++ {
				src := newSys(t, c.mode, c.cpus, c.hostpar)
				for i := 0; i < snap; i++ {
					runPhase(t, src, i)
				}
				img, err := Capture(src)
				if err != nil {
					t.Fatalf("snap point %d: capture: %v", snap, err)
				}
				data, err := Encode(img)
				if err != nil {
					t.Fatalf("snap point %d: encode: %v", snap, err)
				}
				img2, err := Decode(data)
				if err != nil {
					t.Fatalf("snap point %d: decode: %v", snap, err)
				}

				dst := newSys(t, c.mode, c.cpus, c.hostpar)
				if err := Restore(dst, img2); err != nil {
					t.Fatalf("snap point %d: restore: %v", snap, err)
				}
				for i := snap; i < phases; i++ {
					runPhase(t, dst, i)
				}
				if got := fingerprint(t, dst); !bytes.Equal(got, want) {
					t.Errorf("snap point %d: final image differs from uninterrupted run (%d vs %d bytes)", snap, len(got), len(want))
				}
				if got := dst.Machine.Clock.Cycles(); got != wantCycles {
					t.Errorf("snap point %d: cycles %d, want %d", snap, got, wantCycles)
				}
				if got := dst.Machine.Clock.Ledger(); !reflect.DeepEqual(got, wantLedger) {
					t.Errorf("snap point %d: ledger %+v, want %+v", snap, got, wantLedger)
				}
			}
		})
	}
}

// TestForkCOW forks several systems from one image, diverges them
// concurrently, and checks (a) the forks are independent, (b) the image
// is never mutated, and (c) a fork's execution equals a restore's.
func TestForkCOW(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeNative, core.ModeVirtualGhost} {
		t.Run(mode.String(), func(t *testing.T) {
			src := newSys(t, mode, 1, false)
			runPhase(t, src, 0)
			img, err := Capture(src)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Encode(img)
			if err != nil {
				t.Fatal(err)
			}

			forks := make([]*repro.System, 3)
			for i := range forks {
				forks[i], err = Fork(img, sysOpts(1, false))
				if err != nil {
					t.Fatalf("fork %d: %v", i, err)
				}
			}
			// Diverge concurrently: forks[0] and forks[2] run the same
			// phase, forks[1] a different one, all sharing the image's
			// pages copy-on-write.
			var wg sync.WaitGroup
			for i, tag := range []int{1, 2, 1} {
				wg.Add(1)
				go func(s *repro.System, tag int) {
					defer wg.Done()
					runPhase(t, s, tag)
				}(forks[i], tag)
			}
			wg.Wait()

			f0 := fingerprint(t, forks[0])
			f1 := fingerprint(t, forks[1])
			f2 := fingerprint(t, forks[2])
			if bytes.Equal(f0, f1) {
				t.Error("forks running different phases produced identical state")
			}
			if !bytes.Equal(f0, f2) {
				t.Error("forks running the same phase diverged")
			}
			if again, err := Encode(img); err != nil || !bytes.Equal(ref, again) {
				t.Errorf("image mutated by forks (err=%v)", err)
			}

			// A restore onto a fresh machine runs the same schedule as a
			// fork.
			dst := newSys(t, mode, 1, false)
			if err := Restore(dst, img); err != nil {
				t.Fatal(err)
			}
			runPhase(t, dst, 1)
			if got := fingerprint(t, dst); !bytes.Equal(got, f0) {
				t.Error("restore and fork of the same image diverged")
			}
		})
	}
}

// TestErrSnapshotStale: restoring an image onto a kernel whose module
// load history differs must fail with the typed sentinel, not silently
// re-link (regression for the code-epoch identity check).
func TestErrSnapshotStale(t *testing.T) {
	const extraSrc = `module extra
func extra(0 params) {
entry:
  ret 0x1
}
`
	withModule := func(t *testing.T) *repro.System {
		sys := newSys(t, core.ModeNative, 1, false)
		m, err := vir.ParseModule(extraSrc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Kernel.LoadModule(m); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	src := withModule(t)
	img, err := Capture(src)
	if err != nil {
		t.Fatal(err)
	}
	plain := newSys(t, core.ModeNative, 1, false)
	if err := Restore(plain, img); !errors.Is(err, kernel.ErrSnapshotStale) {
		t.Fatalf("restore onto kernel missing a module: got %v, want ErrSnapshotStale", err)
	}

	// And the mirror image: plain snapshot onto a module-loaded kernel.
	img2, err := Capture(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(withModule(t), img2); !errors.Is(err, kernel.ErrSnapshotStale) {
		t.Fatalf("restore onto kernel with an extra module: got %v, want ErrSnapshotStale", err)
	}

	// Matching histories restore fine.
	if err := Restore(withModule(t), img); err != nil {
		t.Fatalf("restore with matching modules: %v", err)
	}
}

// TestNotQuiescent: live processes cannot be snapshotted.
func TestNotQuiescent(t *testing.T) {
	sys := newSys(t, core.ModeNative, 1, false)
	if _, err := sys.Kernel.Spawn("spinner", func(p *kernel.Proc) {
		p.Compute(1_000)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Capture(sys); !errors.Is(err, kernel.ErrNotQuiescent) {
		t.Fatalf("capture with live proc: got %v, want ErrNotQuiescent", err)
	}
	sys.Kernel.RunUntilIdle()
	if _, err := Capture(sys); err != nil {
		t.Fatalf("capture after drain: %v", err)
	}
}

// TestModeMismatch: an image restores only onto its own mode.
func TestModeMismatch(t *testing.T) {
	img, err := Capture(newSys(t, core.ModeNative, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(newSys(t, core.ModeVirtualGhost, 1, false), img); err == nil {
		t.Fatal("native image restored onto a Virtual Ghost machine")
	}
}

// TestCorruptImageRejected flips bits across the whole encoded image
// (every header byte, sampled payload bytes, the checksum itself) and
// truncates it at every interesting boundary; Decode must reject every
// mutation with ErrCorruptImage before touching any state.
func TestCorruptImageRejected(t *testing.T) {
	sys := newSys(t, core.ModeVirtualGhost, 1, false)
	runPhase(t, sys, 0)
	data := fingerprint(t, sys)
	if _, err := Decode(data); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}

	truncs := []int{0, 1, kernel.SnapshotHeaderSize - 1, kernel.SnapshotHeaderSize,
		kernel.SnapshotHeaderSize + checksumSize, len(data) / 2, len(data) - checksumSize, len(data) - 1}
	for _, n := range truncs {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorruptImage) {
			t.Errorf("truncation to %d bytes: got %v, want ErrCorruptImage", n, err)
		}
	}

	idx := map[int]bool{len(data) - 1: true, len(data) - checksumSize: true}
	for i := 0; i < kernel.SnapshotHeaderSize; i++ {
		idx[i] = true
	}
	for i := kernel.SnapshotHeaderSize; i < len(data); i += 251 {
		idx[i] = true
	}
	for i := range idx {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); !errors.Is(err, ErrCorruptImage) {
			t.Errorf("bit flip at offset %d: got %v, want ErrCorruptImage", i, err)
		}
	}
}

// TestVersionMismatch: a well-checksummed image from a different format
// version is refused by the header check, distinctly from corruption.
func TestVersionMismatch(t *testing.T) {
	data := fingerprint(t, newSys(t, core.ModeNative, 1, false))
	body := append([]byte(nil), data[:len(data)-checksumSize]...)
	body[8] = byte(kernel.SnapshotImageVersion + 1) // version field, LE
	sum := sha256.Sum256(body)
	bad := append(body, sum[:]...)
	_, err := Decode(bad)
	if err == nil || errors.Is(err, ErrCorruptImage) {
		t.Fatalf("version-bumped image: got %v, want a version error", err)
	}
}

// TestRecordReplay exercises the nondeterministic-input layer: taps
// capture RNG draws and packet arrivals; a replayer serves them back
// draw-for-draw without advancing the PRNG, falls back to the PRNG when
// exhausted, and re-injects packets at their recorded virtual times.
func TestRecordReplay(t *testing.T) {
	sys := newSys(t, core.ModeNative, 1, false)
	rec := StartRecording(sys)
	var drawn []uint64
	if _, err := sys.Kernel.Spawn("drawer", func(p *kernel.Proc) {
		for i := 0; i < 3; i++ {
			drawn = append(drawn, p.TrustedRandom())
		}
	}); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RunUntilIdle()
	sys.Machine.NIC.Inject(hw.Packet{Port: 7, Payload: []byte("external")})
	r := rec.Stop()
	if !reflect.DeepEqual(r.RNGDraws, drawn) {
		t.Fatalf("recorded draws %v, want %v", r.RNGDraws, drawn)
	}
	if len(r.NetEvents) != 1 || r.NetEvents[0].Port != 7 || string(r.NetEvents[0].Payload) != "external" {
		t.Fatalf("recorded events %+v", r.NetEvents)
	}

	// Replay synthetic draws into a fresh machine; a twin without the
	// replay source shows where the untouched PRNG sequence resumes.
	twin := newSys(t, core.ModeNative, 1, false)
	t1 := twin.Machine.RNG.Next()

	rp := StartReplay(newTestReplaySys(t), &Record{
		RNGDraws: []uint64{11, 22},
		NetEvents: []NetEvent{
			{Cycles: 0, Port: 9, Payload: []byte("x")},
			{Cycles: 1 << 60, Port: 9, Payload: []byte("y")},
		},
	})
	m := rp.m
	if got := m.RNG.Next(); got != 11 {
		t.Fatalf("first replayed draw %d, want 11", got)
	}
	if got := m.RNG.Next(); got != 22 {
		t.Fatalf("second replayed draw %d, want 22", got)
	}
	// Exhausted: the PRNG takes over exactly where it would have been
	// without any replay (serving recorded draws advances no state).
	if got := m.RNG.Next(); got != t1 {
		t.Fatalf("post-record fallback draw %d, want PRNG's %d", got, t1)
	}

	if n := rp.Pump(); n != 1 {
		t.Fatalf("Pump delivered %d events, want 1", n)
	}
	if m.NIC.Pending(9) != 1 {
		t.Fatalf("pending packets %d, want 1", m.NIC.Pending(9))
	}
	if n := rp.PumpTo(1 << 60); n != 1 {
		t.Fatalf("PumpTo delivered %d events, want 1", n)
	}
	rng, net := rp.Remaining()
	if rng != 0 || net != 0 {
		t.Fatalf("remaining rng=%d net=%d, want 0,0", rng, net)
	}
	rp.Stop()
}

func newTestReplaySys(t *testing.T) *repro.System {
	t.Helper()
	return newSys(t, core.ModeNative, 1, false)
}

// TestRecordedImageRoundTrip: the record trailer travels in the image
// and sets the header's recorded flag.
func TestRecordedImageRoundTrip(t *testing.T) {
	sys := newSys(t, core.ModeNative, 1, false)
	rec := StartRecording(sys)
	runPhase(t, sys, 0)
	img, err := Capture(sys)
	if err != nil {
		t.Fatal(err)
	}
	img.Record = rec.Stop()
	if len(img.Record.RNGDraws) == 0 {
		t.Fatal("workload drew no entropy; record is empty")
	}
	data, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := kernel.ParseSnapshotHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.Recorded() {
		t.Fatal("recorded image missing header flag")
	}
	img2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(img2.Record, img.Record) {
		t.Fatal("record trailer did not round-trip")
	}
}
