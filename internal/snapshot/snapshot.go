// Package snapshot serializes a whole booted machine — hardware, HAL,
// kernel — into a versioned, checksummed image and reconstructs
// machines from it (DESIGN.md §18).
//
// The subsystem rests on the reproduction's determinism contract: all
// timing flows through the tagged virtual clock and every architectural
// structure is plain data, so the machine is a serializable value. A
// restored machine's subsequent execution is bit-identical to the
// uninterrupted run — asserted against golden_cycles.json and the
// differential suite — which is what makes warm-start benchmarking
// (skip boot, keep every virtual number) and fork-from-snapshot fan-out
// sound.
//
// Three operations:
//
//   - Capture/Restore: deep-copy the machine state into an Image /
//     overwrite an equivalently booted machine with it.
//   - Fork: boot a fresh machine and apply the image with copy-on-write
//     page sharing, so N divergent schedules run from one image without
//     copying memory.
//   - Record/Replay (record.go): capture the nondeterministic inputs
//     (RNG draws, external packet arrivals) into the image's trailer so
//     a replay from the snapshot re-enacts an exact execution.
//
// Snapshots are taken at quiescent points only: processes are host
// goroutines whose stacks cannot be serialized, so Capture refuses
// (kernel.ErrNotQuiescent) until the kernel has drained. On an SMP
// machine a quiescent point is by construction an epoch barrier of the
// epoch/barrier scheduler, so SMP images under -hostpar restore exactly
// like serial ones.
package snapshot

import (
	"errors"
	"fmt"

	"repro"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
)

// Image is one machine's decoded snapshot. The JSON encoding of this
// struct (wrapped in the checksummed envelope, encode.go) is the image
// payload; field names are part of the format and changes require a
// kernel.SnapshotImageVersion bump.
//
// For Virtual Ghost machines, frames the OS must never read — ghost
// memory and SVA-internal frames — do not appear in Machine.Mem.Pages;
// they travel in SealedPages, encrypted under a TPM-rooted key that is
// not in the image (core.SnapshotSealer). Native and shadow images
// carry every frame in plaintext: that exposure is the paper's point,
// and the tampered-snapshot security row demonstrates it.
type Image struct {
	Mode        core.Mode          `json:"mode"`
	Machine     *hw.MachineSnap    `json:"machine"`
	HAL         *core.HALSnap      `json:"hal"`
	Kernel      *kernel.KernelSnap `json:"kernel"`
	SealedPages map[uint64][]byte  `json:"sealed_pages,omitempty"`
	Record      *Record            `json:"record,omitempty"`
}

// ErrUnsupportedHAL reports a HAL that does not implement snapshotting.
var ErrUnsupportedHAL = errors.New("snapshot: HAL does not support snapshot/restore")

// Capture serializes sys into an in-memory Image. The system must be
// quiescent (kernel.ErrNotQuiescent otherwise); it is not modified and
// may keep running afterwards.
func Capture(sys *repro.System) (*Image, error) {
	ks, err := sys.Kernel.CaptureKernelSnap()
	if err != nil {
		return nil, err
	}
	ss, ok := sys.HAL.(core.SnapshotStateful)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedHAL, sys.HAL)
	}
	hs, err := ss.CaptureHALSnap()
	if err != nil {
		return nil, err
	}
	ms, err := sys.Machine.CaptureSnap()
	if err != nil {
		return nil, err
	}
	img := &Image{Mode: sys.Mode, Machine: ms, HAL: hs, Kernel: ks}
	if sealer, ok := sys.HAL.(core.SnapshotSealer); ok {
		if err := sealProtectedPages(img, sealer); err != nil {
			return nil, err
		}
	}
	return img, nil
}

// sealProtectedPages moves ghost and SVA-internal frame contents out of
// the plaintext page map into the sealed section.
func sealProtectedPages(img *Image, sealer core.SnapshotSealer) error {
	for f, b := range img.Machine.Mem.Pages {
		t := hw.FrameType(img.Machine.Mem.FType[f])
		if t != hw.FrameGhost && t != hw.FrameSVA {
			continue
		}
		blob, err := sealer.SealSnapshotPage(f, b)
		if err != nil {
			return fmt.Errorf("snapshot: sealing frame %d: %w", f, err)
		}
		if img.SealedPages == nil {
			img.SealedPages = make(map[uint64][]byte)
		}
		img.SealedPages[f] = blob
		delete(img.Machine.Mem.Pages, f)
	}
	return nil
}

// Restore overwrites sys's state with the image's. The target must be
// an equivalently booted machine: same mode, same geometry, same module
// load history (kernel.ErrSnapshotStale otherwise), and quiescent. All
// refusals happen before any state is touched; after the pre-flight the
// apply is infallible barring a sealed page that fails authentication,
// which is also checked up front. On success, sys's subsequent
// execution is bit-identical to the run the image was captured from.
func Restore(sys *repro.System, img *Image) error {
	return apply(sys, img, false)
}

// Fork boots a fresh system and restores the image into it with
// copy-on-write page sharing: physical frames and disk blocks alias the
// image's buffers until first write, so N forks of one image cost one
// machine's worth of page copies only where they diverge. The image
// must stay immutable while forks of it are alive. opts must describe
// the same machine configuration the image was captured on (geometry is
// checked; for Virtual Ghost the TPM seed must match too, or the sealed
// pages refuse to open).
func Fork(img *Image, opts repro.Options) (*repro.System, error) {
	sys, err := repro.NewSystemWithOptions(img.Mode, opts)
	if err != nil {
		return nil, err
	}
	if err := apply(sys, img, true); err != nil {
		return nil, err
	}
	return sys, nil
}

// apply is the shared restore path. It never mutates img, so one
// decoded image can be applied to many systems, concurrently.
func apply(sys *repro.System, img *Image, share bool) error {
	if sys.Mode != img.Mode {
		return fmt.Errorf("snapshot: image is a %v machine, target is %v", img.Mode, sys.Mode)
	}
	if err := sys.Kernel.CheckQuiescent(); err != nil {
		return fmt.Errorf("snapshot: restore target: %w", err)
	}
	if err := sys.Kernel.CheckModuleIdentity(img.Kernel.Modules); err != nil {
		return err
	}
	ss, ok := sys.HAL.(core.SnapshotStateful)
	if !ok {
		return fmt.Errorf("%w: %T", ErrUnsupportedHAL, sys.HAL)
	}
	ms := img.Machine
	if len(img.SealedPages) > 0 {
		sealer, ok := sys.HAL.(core.SnapshotSealer)
		if !ok {
			return fmt.Errorf("snapshot: image carries sealed pages but a %v HAL cannot open them", sys.Mode)
		}
		// Build a private overlay of the page map: the unsealed
		// plaintext pages are fresh buffers, the rest alias the image.
		cp := *img.Machine
		pages := make(map[uint64][]byte, len(img.Machine.Mem.Pages)+len(img.SealedPages))
		for f, b := range img.Machine.Mem.Pages {
			pages[f] = b
		}
		for f, blob := range img.SealedPages {
			plain, err := sealer.OpenSnapshotPage(f, blob)
			if err != nil {
				return fmt.Errorf("snapshot: sealed frame %d refused: %w", f, err)
			}
			if len(plain) != hw.PageSize {
				return fmt.Errorf("snapshot: sealed frame %d opens to %d bytes, want %d", f, len(plain), hw.PageSize)
			}
			pages[f] = plain
		}
		cp.Mem.Pages = pages
		ms = &cp
	}
	if err := sys.Machine.ApplySnap(ms, share); err != nil {
		return err
	}
	if err := ss.ApplyHALSnap(img.HAL); err != nil {
		return err
	}
	return sys.Kernel.ApplyKernelSnap(img.Kernel)
}
