package hw

// MachineConfig sizes a simulated machine.
type MachineConfig struct {
	// MemFrames is the number of physical frames (default 16384 = 64 MiB).
	MemFrames int
	// DiskBlocks is the disk capacity in 4 KiB blocks (default 32768 = 128 MiB).
	DiskBlocks int
	// Seed seeds the hardware RNG (and hence the TPM key).
	Seed uint64
}

// DefaultConfig returns the standard experiment machine.
func DefaultConfig() MachineConfig {
	return MachineConfig{MemFrames: 16384, DiskBlocks: 32768, Seed: 0x5eed}
}

// Machine bundles one complete simulated computer. Experiments build two
// of these (server + client) and connect their NICs.
type Machine struct {
	Clock   *Clock
	Mem     *Memory
	MMU     *MMU
	CPU     *CPU
	Ports   *PortBus
	IOMMU   *IOMMU
	DMA     *DMAEngine
	Disk    *Disk
	NIC     *NIC
	Console *Console
	RNG     *RNG
	TPM     *TPM
	Timer   *Timer
}

// NewMachine assembles a machine from the configuration.
func NewMachine(cfg MachineConfig) *Machine {
	return NewMachineWith(cfg, &Clock{})
}

// NewMachineWith assembles a machine ticking an existing clock, so that
// several machines (e.g. the server and client of a network experiment)
// share one global timeline.
func NewMachineWith(cfg MachineConfig, clock *Clock) *Machine {
	if cfg.MemFrames == 0 {
		cfg.MemFrames = 16384
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 32768
	}
	mem := NewMemory(cfg.MemFrames, clock)
	mmu := NewMMU(mem, clock)
	cpu := NewCPU(mmu, clock)
	ports := NewPortBus()
	iommu := NewIOMMU()
	ports.Register(IOMMUPortFrame, 2, iommu)
	rng := NewRNG(cfg.Seed)
	m := &Machine{
		Clock:   clock,
		Mem:     mem,
		MMU:     mmu,
		CPU:     cpu,
		Ports:   ports,
		IOMMU:   iommu,
		DMA:     NewDMAEngine(mem, iommu, clock),
		Disk:    NewDisk(clock, cfg.DiskBlocks),
		NIC:     NewNIC(clock),
		Console: &Console{},
		RNG:     rng,
		TPM:     NewTPM(rng),
		Timer:   NewTimer(clock, 10_000_000), // ~3 ms quantum
	}
	return m
}
