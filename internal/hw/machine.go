package hw

import "fmt"

// MachineConfig sizes a simulated machine.
type MachineConfig struct {
	// MemFrames is the number of physical frames (default 16384 = 64 MiB).
	MemFrames int
	// DiskBlocks is the disk capacity in 4 KiB blocks (default 32768 = 128 MiB).
	DiskBlocks int
	// Seed seeds the hardware RNG (and hence the TPM key).
	Seed uint64
	// NumCPUs is the number of simulated CPUs (default 1). All CPUs
	// share physical memory and devices; each has its own register
	// file, TLB, and interrupt line. Execution stays deterministic: the
	// kernel scheduler interleaves the CPUs round-robin in virtual
	// time, never with host goroutines.
	NumCPUs int
}

// DefaultConfig returns the standard experiment machine.
func DefaultConfig() MachineConfig {
	return MachineConfig{MemFrames: 16384, DiskBlocks: 32768, Seed: 0x5eed}
}

// IPIKind identifies the purpose of an inter-processor interrupt.
type IPIKind uint8

const (
	// IPIShootdown asks the target CPU to invalidate TLB entries for a
	// frame (Arg) and acknowledge. ShootdownFrame sends these
	// synchronously itself; the kind exists so drained interrupt logs
	// and counters can tell the traffic classes apart.
	IPIShootdown IPIKind = iota
	// IPIResched asks the target CPU to re-run its scheduler (used for
	// cross-CPU signal delivery and wakeups). Arg carries the PID being
	// woken, for diagnostics.
	IPIResched
)

func (k IPIKind) String() string {
	switch k {
	case IPIShootdown:
		return "shootdown"
	case IPIResched:
		return "resched"
	}
	return fmt.Sprintf("IPIKind(%d)", uint8(k))
}

// IPI is one pending inter-processor interrupt on a CPU's line.
type IPI struct {
	From int
	Kind IPIKind
	Arg  uint64
}

// Machine bundles one complete simulated computer. Experiments build two
// of these (server + client) and connect their NICs.
//
// CPU and MMU name the boot CPU (CPUs[0]) and its MMU; single-CPU code
// keeps using them unchanged. Multi-CPU code indexes CPUs or asks for
// Cur(), the CPU the scheduler most recently selected with
// SetCurrentCPU.
type Machine struct {
	Clock   *Clock
	Mem     *Memory
	MMU     *MMU
	CPU     *CPU
	CPUs    []*CPU
	Ports   *PortBus
	IOMMU   *IOMMU
	DMA     *DMAEngine
	Disk    *Disk
	NIC     *NIC
	Console *Console
	RNG     *RNG
	TPM     *TPM
	Timer   *Timer

	curCPU int
	// tlbIncoherent disables both the shootdown broadcast and the
	// stale-translation guard. Test-only: it models the buggy/hostile
	// configuration the stale-remote-TLB attack needs, proving the
	// protocol is load-bearing.
	tlbIncoherent bool

	ipisSent      uint64
	ipisDelivered uint64
	shootdowns    uint64
}

// NewMachine assembles a machine from the configuration.
func NewMachine(cfg MachineConfig) *Machine {
	return NewMachineWith(cfg, &Clock{})
}

// NewMachineWith assembles a machine ticking an existing clock, so that
// several machines (e.g. the server and client of a network experiment)
// share one global timeline.
func NewMachineWith(cfg MachineConfig, clock *Clock) *Machine {
	if cfg.MemFrames == 0 {
		cfg.MemFrames = 16384
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 32768
	}
	if cfg.NumCPUs <= 0 {
		cfg.NumCPUs = 1
	}
	mem := NewMemory(cfg.MemFrames, clock)
	mmu := NewMMU(mem, clock)
	cpu := NewCPU(mmu, clock)
	ports := NewPortBus()
	iommu := NewIOMMU()
	ports.Register(IOMMUPortFrame, 2, iommu)
	rng := NewRNG(cfg.Seed)
	m := &Machine{
		Clock:   clock,
		Mem:     mem,
		MMU:     mmu,
		CPU:     cpu,
		CPUs:    make([]*CPU, cfg.NumCPUs),
		Ports:   ports,
		IOMMU:   iommu,
		DMA:     NewDMAEngine(mem, iommu, clock),
		Disk:    NewDisk(clock, cfg.DiskBlocks),
		NIC:     NewNIC(clock),
		Console: &Console{},
		RNG:     rng,
		TPM:     NewTPM(rng),
		Timer:   NewTimer(clock, 10_000_000), // ~3 ms quantum
	}
	m.CPUs[0] = cpu
	for i := 1; i < cfg.NumCPUs; i++ {
		u := NewMMUSharing(mem, clock, mmu)
		u.cpu = i
		c := NewCPU(u, clock)
		c.ID = i
		m.CPUs[i] = c
	}
	mem.SetStaleCheck(m.staleTranslationCheck)
	clock.EnsureCPUs(cfg.NumCPUs)
	if t := DefaultTracer(); t != nil {
		clock.AttachTracer(t)
	}
	return m
}

// NumCPUs returns the number of simulated CPUs.
func (m *Machine) NumCPUs() int { return len(m.CPUs) }

// CurCPU returns the index of the currently selected CPU.
func (m *Machine) CurCPU() int { return m.curCPU }

// SetCurrentCPU selects which CPU subsequent machine-level operations
// (Cur, CurMMU) refer to. The kernel scheduler calls this as it steps
// CPUs round-robin; it is pure host bookkeeping and charges nothing.
func (m *Machine) SetCurrentCPU(id int) {
	if id < 0 || id >= len(m.CPUs) {
		panic(fmt.Sprintf("hw: SetCurrentCPU(%d) with %d CPUs", id, len(m.CPUs)))
	}
	m.curCPU = id
	m.Clock.SetCPU(id)
}

// Cur returns the currently selected CPU (the boot CPU by default).
func (m *Machine) Cur() *CPU { return m.CPUs[m.curCPU] }

// CurMMU returns the currently selected CPU's MMU.
func (m *Machine) CurMMU() *MMU { return m.CPUs[m.curCPU].MMU }

// SetTLBCoherence enables or disables the TLB-shootdown protocol AND
// the stale-translation guard together. Shipping configurations never
// call this; the stale-remote-TLB attack vector disables coherence to
// demonstrate the leak the protocol prevents.
func (m *Machine) SetTLBCoherence(on bool) { m.tlbIncoherent = !on }

// TLBCoherent reports whether the shootdown protocol is active.
func (m *Machine) TLBCoherent() bool { return !m.tlbIncoherent }

// SendIPI queues an inter-processor interrupt on CPU to's line and
// charges the sender's APIC programming cost. Self-IPIs are dropped
// (the caller is already running there).
func (m *Machine) SendIPI(to int, kind IPIKind, arg uint64) {
	if to < 0 || to >= len(m.CPUs) || to == m.curCPU {
		return
	}
	m.Clock.Charge(TagIPI, CostIPISend)
	m.ipisSent++
	c := m.CPUs[to]
	c.ipi = append(c.ipi, IPI{From: m.curCPU, Kind: kind, Arg: arg})
}

// DrainIPIs delivers (and discards) all interrupts pending on CPU id's
// line, charging the delivery cost for each, and returns how many were
// delivered. The scheduler calls it when it next steps that CPU: the
// interrupts' only architectural effect in this model is to force a
// trip through the scheduler, which is exactly what draining at
// schedule time provides.
func (m *Machine) DrainIPIs(id int) int {
	c := m.CPUs[id]
	n := len(c.ipi)
	if n == 0 {
		return 0
	}
	c.ipi = c.ipi[:0]
	for i := 0; i < n; i++ {
		m.Clock.Charge(TagIPI, CostIPIDeliver)
		m.ipisDelivered++
	}
	return n
}

// PendingIPIs returns how many interrupts are queued on CPU id's line.
func (m *Machine) PendingIPIs(id int) int { return len(m.CPUs[id].ipi) }

// ShootdownFrame runs the synchronous TLB-shootdown protocol for frame
// f: every remote CPU receives a shootdown IPI, flushes its TLB entries
// for f, and acknowledges before this returns. The SVA layer must call
// this before a ghost or page-table frame is freed or retyped, so no
// CPU can retain a stale translation to memory that is about to change
// owners (paper §4.2). Returns the number of remote CPUs flushed.
//
// Single-CPU machines (and machines with coherence disabled for the
// attack demonstration) return 0 without charging anything, which keeps
// every NumCPUs=1 cycle count bit-identical to the pre-SMP model.
func (m *Machine) ShootdownFrame(f Frame) int {
	if len(m.CPUs) == 1 || m.tlbIncoherent {
		return 0
	}
	acks := 0
	for _, c := range m.CPUs {
		if c.ID == m.curCPU {
			continue
		}
		// Synchronous send + remote handler + ack: the sender spins
		// until the remote invlpg loop completes, so both sides' costs
		// land on the shared timeline here.
		m.Clock.Charge(TagIPI, CostIPISend+CostIPIDeliver)
		m.ipisSent++
		m.ipisDelivered++
		c.MMU.FlushFrame(f)
		acks++
	}
	m.shootdowns++
	return acks
}

// staleTranslationCheck is the run-time guard the Memory layer consults
// before a ghost or page-table frame is freed or retyped: if any
// *remote* CPU's TLB still holds a translation to the frame, the
// operation is refused — the caller skipped the shootdown protocol.
// (The initiating CPU's own TLB is its invlpg responsibility, charged
// in rawUnmap.) Host-only bookkeeping (no cycle charge); on a correct
// tree it never fires.
func (m *Machine) staleTranslationCheck(f Frame) error {
	if len(m.CPUs) == 1 || m.tlbIncoherent {
		return nil
	}
	for _, c := range m.CPUs {
		if c.ID == m.curCPU {
			continue
		}
		if c.MMU.HoldsFrame(f) {
			return fmt.Errorf("hw: cpu%d TLB still holds a translation to frame %d (missing shootdown)", c.ID, f)
		}
	}
	return nil
}

// BeginUserPhase opens an epoch's user phase (DESIGN.md §14): the
// clock's global counters freeze behind per-CPU shards and the shared
// walk cache becomes read-only, so each CPU's in-flight process can
// execute its user segment on its own host goroutine without sharing
// one mutable word with its siblings. Serial context (the epoch
// scheduler) only.
func (m *Machine) BeginUserPhase() {
	m.MMU.FreezeWalkCache()
	m.Clock.BeginShardPhase(len(m.CPUs))
}

// EndUserPhase is the epoch barrier: shards merge into the global
// clock in CPU-id order and the walk cache reopens for the serial
// kernel phase (where IPIs, shootdowns and mapping updates happen).
func (m *Machine) EndUserPhase() {
	m.Clock.EndShardPhase()
	m.MMU.UnfreezeWalkCache()
}

// IPICounts returns (sent, delivered, shootdowns) totals for the
// machine, for experiment reporting.
func (m *Machine) IPICounts() (sent, delivered, shootdowns uint64) {
	return m.ipisSent, m.ipisDelivered, m.shootdowns
}
