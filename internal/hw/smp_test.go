package hw

import (
	"strings"
	"testing"
)

// smpMachine builds an n-CPU machine with a small address space mapped
// in, returning the machine and the root frame.
func smpMachine(t *testing.T, n int) (*Machine, Frame) {
	t.Helper()
	m := NewMachine(MachineConfig{MemFrames: 256, DiskBlocks: 16, Seed: 1, NumCPUs: n})
	root, err := m.Mem.AllocFrame(FramePageTable)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.ZeroFrame(root); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.CPUs {
		c.MMU.SetRoot(root)
	}
	return m, root
}

// prime loads va into cpu's TLB via a translation.
func prime(t *testing.T, c *CPU, va Virt) {
	t.Helper()
	if _, err := c.MMU.Translate(va, AccRead, false); err != nil {
		t.Fatalf("cpu%d translate %#x: %v", c.ID, uint64(va), err)
	}
}

func TestMachineDefaultsToOneCPU(t *testing.T) {
	m := NewMachine(MachineConfig{MemFrames: 64, DiskBlocks: 16, Seed: 1})
	if m.NumCPUs() != 1 {
		t.Fatalf("NumCPUs = %d, want 1", m.NumCPUs())
	}
	if m.CPUs[0] != m.CPU || m.Cur() != m.CPU || m.CurMMU() != m.MMU {
		t.Fatal("boot CPU aliases are wrong")
	}
	// The shootdown fast path must be free on single-CPU machines so
	// golden cycle counts stay bit-identical.
	before := m.Clock.Cycles()
	if n := m.ShootdownFrame(5); n != 0 {
		t.Fatalf("ShootdownFrame on 1 CPU flushed %d remotes", n)
	}
	if m.Clock.Cycles() != before {
		t.Fatal("single-CPU shootdown charged cycles")
	}
}

func TestCPUsSharePhysicalMemoryAndWalkCache(t *testing.T) {
	m, root := smpMachine(t, 2)
	va := Virt(0x400000)
	f := mapOne(t, m.Mem, m.MMU, root, va, PTEWrite|PTEUser)

	// Both CPUs resolve the same mapping; the walk cache is shared.
	for _, c := range m.CPUs {
		p, err := c.MMU.Translate(va, AccRead, false)
		if err != nil {
			t.Fatalf("cpu%d: %v", c.ID, err)
		}
		if FrameOf(p) != f {
			t.Fatalf("cpu%d resolved frame %d, want %d", c.ID, FrameOf(p), f)
		}
	}
	if m.CPUs[0].MMU.cache != m.CPUs[1].MMU.cache {
		t.Fatal("CPUs do not share the walk cache")
	}
	// TLBs are private: flushing CPU0 must not disturb CPU1.
	m.CPUs[0].MMU.FlushTLB()
	if m.CPUs[0].MMU.HoldsFrame(f) {
		t.Fatal("cpu0 TLB survived flush")
	}
	if !m.CPUs[1].MMU.HoldsFrame(f) {
		t.Fatal("cpu1 TLB lost its entry to a cpu0 flush")
	}
}

func TestSendAndDrainIPIsChargeCycles(t *testing.T) {
	m, _ := smpMachine(t, 2)
	before := m.Clock.Cycles()
	m.SendIPI(1, IPIResched, 42)
	if got := m.Clock.Cycles() - before; got != CostIPISend {
		t.Fatalf("SendIPI charged %d cycles, want %d", got, CostIPISend)
	}
	if m.PendingIPIs(1) != 1 {
		t.Fatalf("cpu1 has %d pending IPIs, want 1", m.PendingIPIs(1))
	}
	// Self-IPIs are dropped.
	m.SendIPI(0, IPIResched, 0)
	if m.PendingIPIs(0) != 0 {
		t.Fatal("self-IPI was queued")
	}
	before = m.Clock.Cycles()
	if n := m.DrainIPIs(1); n != 1 {
		t.Fatalf("DrainIPIs = %d, want 1", n)
	}
	if got := m.Clock.Cycles() - before; got != CostIPIDeliver {
		t.Fatalf("DrainIPIs charged %d cycles, want %d", got, CostIPIDeliver)
	}
	sent, delivered, _ := m.IPICounts()
	if sent != 1 || delivered != 1 {
		t.Fatalf("IPICounts = (%d,%d), want (1,1)", sent, delivered)
	}
}

func TestShootdownFlushesRemoteTLBs(t *testing.T) {
	m, root := smpMachine(t, 4)
	va := Virt(0x400000)
	f := mapOne(t, m.Mem, m.MMU, root, va, PTEWrite|PTEUser)
	for _, c := range m.CPUs {
		prime(t, c, va)
	}

	before := m.Clock.Cycles()
	if n := m.ShootdownFrame(f); n != 3 {
		t.Fatalf("ShootdownFrame flushed %d remotes, want 3", n)
	}
	want := uint64(3) * (CostIPISend + CostIPIDeliver)
	if got := m.Clock.Cycles() - before; got != want {
		t.Fatalf("shootdown charged %d cycles, want %d", got, want)
	}
	for _, c := range m.CPUs[1:] {
		if c.MMU.HoldsFrame(f) {
			t.Fatalf("cpu%d TLB still holds frame %d after shootdown", c.ID, f)
		}
	}
	// The initiating CPU's TLB is untouched (local invlpg is the
	// caller's separate responsibility).
	if !m.CPUs[0].MMU.HoldsFrame(f) {
		t.Fatal("shootdown flushed the initiating CPU")
	}
}

func TestStaleGuardRefusesFreeAndRetype(t *testing.T) {
	m, root := smpMachine(t, 2)
	va := Virt(0x400000)
	f := mapOne(t, m.Mem, m.MMU, root, va, PTEWrite|PTEUser)
	prime(t, m.CPUs[1], va)

	// Tear the mapping down on CPU0 only: clear the PTE, drop to zero
	// refs, but skip the shootdown. CPU1's TLB is now stale.
	table, idx, ok, err := m.MMU.WalkLeaf(root, va)
	if err != nil || !ok {
		t.Fatalf("WalkLeaf: ok=%v err=%v", ok, err)
	}
	if err := m.MMU.RawWritePTE(table, idx, 0); err != nil {
		t.Fatal(err)
	}
	m.MMU.InvalidatePage(va)

	if err := m.Mem.SetType(f, FrameGhost); err == nil {
		t.Fatal("retype to ghost succeeded with a stale remote TLB entry")
	} else if !strings.Contains(err.Error(), "cpu1") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := m.Mem.SetType(f, FrameKernelData); err != nil {
		t.Fatalf("retype to a non-critical type should not be guarded: %v", err)
	}
	if err := m.Mem.SetType(f, FrameUserData); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.FreeFrame(f); err != nil {
		t.Fatalf("freeing a user frame should not be guarded: %v", err)
	}

	// After the shootdown protocol runs, the same retype is legal.
	prime2 := func() {
		if f2, err := m.Mem.AllocFrame(FrameUserData); err != nil || f2 != f {
			t.Fatalf("LIFO reuse broken: got frame %d err %v, want %d", f2, err, f)
		}
	}
	prime2()
	m.ShootdownFrame(f)
	if err := m.Mem.SetType(f, FrameGhost); err != nil {
		t.Fatalf("retype after shootdown: %v", err)
	}

	// A ghost frame free is guarded too: re-prime CPU1 by hand.
	m.CPUs[1].MMU.tlb[va] = tlbEntry{frame: f, flags: PTEPresent}
	if err := m.Mem.FreeFrame(f); err == nil {
		t.Fatal("ghost frame freed with a stale remote TLB entry")
	}
	m.ShootdownFrame(f)
	if err := m.Mem.FreeFrame(f); err != nil {
		t.Fatalf("free after shootdown: %v", err)
	}
}

func TestTLBCoherenceKnobDisablesProtocolAndGuard(t *testing.T) {
	m, root := smpMachine(t, 2)
	va := Virt(0x400000)
	f := mapOne(t, m.Mem, m.MMU, root, va, PTEWrite|PTEUser)
	prime(t, m.CPUs[1], va)

	m.SetTLBCoherence(false)
	if m.TLBCoherent() {
		t.Fatal("TLBCoherent after disabling")
	}
	if n := m.ShootdownFrame(f); n != 0 {
		t.Fatalf("incoherent shootdown flushed %d CPUs", n)
	}
	if !m.CPUs[1].MMU.HoldsFrame(f) {
		t.Fatal("stale entry was flushed despite coherence off")
	}
	// Guard is off too: the retype that TestStaleGuard refuses sails
	// through — this is the hole the attack vector drives through.
	table, idx, _, err := m.MMU.WalkLeaf(root, va)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MMU.RawWritePTE(table, idx, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.SetType(f, FrameGhost); err != nil {
		t.Fatalf("guard still active with coherence off: %v", err)
	}
}
