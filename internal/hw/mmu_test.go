package hw

import (
	"errors"
	"testing"
	"testing/quick"
)

// testAS builds a machine-less memory+MMU pair with one address space
// rooted at the returned frame.
func testAS(t *testing.T) (*Memory, *MMU, Frame) {
	t.Helper()
	m := NewMemory(256, &Clock{})
	u := NewMMU(m, &Clock{})
	root, err := m.AllocFrame(FramePageTable)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ZeroFrame(root); err != nil {
		t.Fatal(err)
	}
	u.SetRoot(root)
	return m, u, root
}

// mapOne installs va -> fresh frame with the given flags.
func mapOne(t *testing.T, m *Memory, u *MMU, root Frame, va Virt, flags uint64) Frame {
	t.Helper()
	f, err := m.AllocFrame(FrameUserData)
	if err != nil {
		t.Fatal(err)
	}
	table, idx, err := u.EnsureTables(root, va,
		func() (Frame, error) {
			nf, err := m.AllocFrame(FramePageTable)
			if err != nil {
				return 0, err
			}
			return nf, m.ZeroFrame(nf)
		},
		func(tb Frame, i uint64, e PTE) error { return u.RawWritePTE(tb, i, e) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.RawWritePTE(table, idx, MakePTE(f, flags|PTEPresent)); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTranslateBasic(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	f := mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	p, err := u.Translate(va+123, AccRead, true)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if p != f.Addr()+123 {
		t.Errorf("pa = %#x, want %#x", uint64(p), uint64(f.Addr()+123))
	}
}

func TestTranslateUnmappedFaults(t *testing.T) {
	_, u, _ := testAS(t)
	_, err := u.Translate(0x500000, AccRead, true)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("want *Fault, got %v", err)
	}
	if fault.VA != 0x500000 {
		t.Errorf("fault VA = %#x", uint64(fault.VA))
	}
}

func TestWriteProtection(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	mapOne(t, m, u, root, va, PTEUser) // read-only
	if _, err := u.Translate(va, AccRead, true); err != nil {
		t.Fatalf("read should succeed: %v", err)
	}
	if _, err := u.Translate(va, AccWrite, true); err == nil {
		t.Errorf("write to read-only page allowed")
	}
}

func TestUserSupervisorSplit(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x600000)
	mapOne(t, m, u, root, va, PTEWrite) // supervisor-only
	if _, err := u.Translate(va, AccRead, true); err == nil {
		t.Errorf("user access to supervisor page allowed")
	}
	if _, err := u.Translate(va, AccRead, false); err != nil {
		t.Errorf("supervisor access refused: %v", err)
	}
}

func TestNoExec(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x700000)
	mapOne(t, m, u, root, va, PTEUser|PTEWrite|PTENoExec)
	if _, err := u.Translate(va, AccExec, true); err == nil {
		t.Errorf("exec of NX page allowed")
	}
}

func TestTLBInvalidation(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	f := mapOne(t, m, u, root, va, PTEUser|PTEWrite)
	if _, err := u.Translate(va, AccRead, true); err != nil {
		t.Fatal(err)
	}
	// Remap the page to a different frame behind the TLB's back.
	f2, _ := m.AllocFrame(FrameUserData)
	table, idx, ok, err := u.WalkLeaf(root, va)
	if err != nil || !ok {
		t.Fatalf("walk: %v ok=%v", err, ok)
	}
	if err := u.RawWritePTE(table, idx, MakePTE(f2, PTEPresent|PTEUser|PTEWrite)); err != nil {
		t.Fatal(err)
	}
	// Stale TLB still points at the old frame.
	p, _ := u.Translate(va, AccRead, true)
	if FrameOf(p) != f {
		t.Errorf("expected stale translation before invlpg")
	}
	u.InvalidatePage(va)
	p, _ = u.Translate(va, AccRead, true)
	if FrameOf(p) != f2 {
		t.Errorf("stale translation after invlpg: frame %d", FrameOf(p))
	}
}

func TestSetRootFlushesTLB(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	mapOne(t, m, u, root, va, PTEUser|PTEWrite)
	if _, err := u.Translate(va, AccRead, true); err != nil {
		t.Fatal(err)
	}
	// A second empty address space must not inherit translations.
	root2, _ := m.AllocFrame(FramePageTable)
	_ = m.ZeroFrame(root2)
	u.SetRoot(root2)
	if _, err := u.Translate(va, AccRead, true); err == nil {
		t.Errorf("translation leaked across address spaces")
	}
}

// TestTranslationConsistency: for random mapped pages, translation is a
// pure function of (page, frame) — every in-page offset maps to the
// same frame at the right offset.
func TestTranslationConsistency(t *testing.T) {
	m, u, root := testAS(t)
	pages := map[Virt]Frame{}
	for i := 0; i < 16; i++ {
		va := Virt(0x1000000 + i*0x10000)
		pages[va] = mapOne(t, m, u, root, va, PTEUser|PTEWrite)
	}
	fn := func(pick uint8, off uint16) bool {
		i := int(pick) % 16
		va := Virt(0x1000000 + i*0x10000)
		o := Virt(off) % PageSize
		p, err := u.Translate(va+o, AccRead, true)
		if err != nil {
			return false
		}
		return p == pages[va].Addr()+Phys(o)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPTEAccessors(t *testing.T) {
	f := Frame(42)
	e := MakePTE(f, PTEPresent|PTEWrite|PTEUser|PTENoExec)
	if !e.Present() || !e.Writable() || !e.UserOK() || !e.NoExec() {
		t.Errorf("flag accessors wrong: %#x", uint64(e))
	}
	if e.Frame() != f {
		t.Errorf("frame = %d", e.Frame())
	}
}

func TestAddressSpacePartitions(t *testing.T) {
	cases := []struct {
		va             Virt
		user, ghost, k bool
	}{
		{0x400000, true, false, false},
		{UserTop, true, false, false},
		{GhostBase, false, true, false},
		{GhostTop - 1, false, true, false},
		{GhostTop, false, false, true},
		{KernBase + 0x1000, false, false, true},
	}
	for _, c := range cases {
		if IsUser(c.va) != c.user || IsGhost(c.va) != c.ghost || IsKernel(c.va) != c.k {
			t.Errorf("partition of %#x = user%v ghost%v kern%v",
				uint64(c.va), IsUser(c.va), IsGhost(c.va), IsKernel(c.va))
		}
	}
}

// TestGhostEscapeBitInvariant: OR-ing the escape bit into any ghost
// address must yield a kernel address — the property the sandboxing
// pass relies on (paper §5).
func TestGhostEscapeBitInvariant(t *testing.T) {
	fn := func(off uint64) bool {
		va := GhostBase + Virt(off%(uint64(GhostTop-GhostBase)))
		masked := va | GhostEscapeBit
		return IsKernel(masked) && !IsGhost(masked)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCPUCopyAcrossPages: block copies through the CPU must handle
// page-crossing buffers over discontiguous frames.
func TestCPUCopyAcrossPages(t *testing.T) {
	m, u, root := testAS(t)
	cpu := NewCPU(u, &Clock{})
	// Two adjacent pages backed by (likely) non-adjacent frames.
	va := Virt(0x800000)
	mapOne(t, m, u, root, va, PTEUser|PTEWrite)
	mapOne(t, m, u, root, va+PageSize, PTEUser|PTEWrite)
	cpu.Regs.Priv = User
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	start := va + PageSize - 100 // straddles the boundary
	if err := cpu.CopyToVirt(start, data); err != nil {
		t.Fatal(err)
	}
	got, err := cpu.CopyFromVirt(start, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

// TestCPUCopyFaultsAtBoundary: a copy that runs off the mapped region
// reports a fault naming the faulting page.
func TestCPUCopyFaultsAtBoundary(t *testing.T) {
	m, u, root := testAS(t)
	cpu := NewCPU(u, &Clock{})
	va := Virt(0x900000)
	mapOne(t, m, u, root, va, PTEUser|PTEWrite)
	cpu.Regs.Priv = User
	err := cpu.CopyToVirt(va+PageSize-10, make([]byte, 100))
	var f *Fault
	if !errorsAsFault(err, &f) {
		t.Fatalf("want fault, got %v", err)
	}
	if PageOf(f.VA) != va+PageSize {
		t.Errorf("fault at %#x, want the next page", uint64(f.VA))
	}
}

func errorsAsFault(err error, target **Fault) bool {
	for err != nil {
		if f, ok := err.(*Fault); ok {
			*target = f
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestSupervisorIgnoresUserBit: kernel-privilege accesses reach
// supervisor-only pages; user accesses do not (already covered) and
// both respect write protection.
func TestSupervisorRespectsWriteProtect(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0xa00000)
	mapOne(t, m, u, root, va, 0) // read-only, supervisor-only
	if _, err := u.Translate(va, AccWrite, false); err == nil {
		t.Errorf("supervisor write to read-only page allowed")
	}
	if _, err := u.Translate(va, AccRead, false); err != nil {
		t.Errorf("supervisor read refused: %v", err)
	}
}
