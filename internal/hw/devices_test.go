package hw

import (
	"bytes"
	"testing"
)

func TestDiskRoundTrip(t *testing.T) {
	d := NewDisk(&Clock{}, 64)
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := d.WriteBlock(7, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBlock(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip mismatch")
	}
}

func TestDiskBounds(t *testing.T) {
	d := NewDisk(&Clock{}, 4)
	if _, err := d.ReadBlock(4); err == nil {
		t.Errorf("read past end accepted")
	}
	if err := d.WriteBlock(-1, nil); err == nil {
		t.Errorf("negative block accepted")
	}
	if err := d.WriteBlock(0, make([]byte, BlockSize+1)); err == nil {
		t.Errorf("oversized write accepted")
	}
}

func TestDiskChargesTime(t *testing.T) {
	clk := &Clock{}
	d := NewDisk(clk, 8)
	before := clk.Cycles()
	_, _ = d.ReadBlock(1)
	if clk.Cycles() == before {
		t.Errorf("disk read charged no time")
	}
}

func TestDiskPeekPokeChargeNothing(t *testing.T) {
	clk := &Clock{}
	d := NewDisk(clk, 8)
	d.PokeBlock(2, []byte{9, 9})
	before := clk.Cycles()
	b := d.PeekBlock(2)
	if clk.Cycles() != before {
		t.Errorf("peek charged time")
	}
	if b[0] != 9 || b[1] != 9 {
		t.Errorf("poke/peek mismatch")
	}
}

func TestNICDelivery(t *testing.T) {
	clk := &Clock{}
	a, b := NewNIC(clk), NewNIC(clk)
	Connect(a, b)
	a.Send(Packet{Port: 80, Payload: []byte("hello")})
	pkt, ok := b.Receive(80)
	if !ok || string(pkt.Payload) != "hello" {
		t.Fatalf("receive = %v %q", ok, pkt.Payload)
	}
	if _, ok := b.Receive(80); ok {
		t.Errorf("packet delivered twice")
	}
}

func TestNICPortDemux(t *testing.T) {
	clk := &Clock{}
	a, b := NewNIC(clk), NewNIC(clk)
	Connect(a, b)
	a.Send(Packet{Port: 1, Payload: []byte("one")})
	a.Send(Packet{Port: 2, Payload: []byte("two")})
	if p, ok := b.Receive(2); !ok || string(p.Payload) != "two" {
		t.Errorf("port 2 demux failed")
	}
	if b.Pending(1) != 1 {
		t.Errorf("port 1 pending = %d", b.Pending(1))
	}
}

func TestNICUnconnectedDrops(t *testing.T) {
	n := NewNIC(&Clock{})
	n.Send(Packet{Port: 9, Payload: []byte("x")})
	_, _, dropped := n.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestNICSerializationCost(t *testing.T) {
	clk := &Clock{}
	a, b := NewNIC(clk), NewNIC(clk)
	Connect(a, b)
	before := clk.Cycles()
	a.Send(Packet{Port: 1, Payload: make([]byte, 1000)})
	small := clk.Cycles() - before
	before = clk.Cycles()
	a.Send(Packet{Port: 1, Payload: make([]byte, 1)})
	tiny := clk.Cycles() - before
	if small <= tiny {
		t.Errorf("larger payload should cost more wire time (%d vs %d)", small, tiny)
	}
}

func TestNICSnoopExposesTraffic(t *testing.T) {
	clk := &Clock{}
	a, b := NewNIC(clk), NewNIC(clk)
	Connect(a, b)
	a.Send(Packet{Port: 5, Payload: []byte("plaintext-secret")})
	snooped := b.Snoop()
	if len(snooped) != 1 || string(snooped[0].Payload) != "plaintext-secret" {
		t.Fatalf("snoop failed: %v", snooped)
	}
	// Snooping must not consume the packet.
	if b.Pending(5) != 1 {
		t.Errorf("snoop consumed the packet")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Errorf("zero seed stuck at zero")
	}
}

func TestTPMKeyStability(t *testing.T) {
	r := NewRNG(3)
	tpm := NewTPM(r)
	k1 := tpm.StorageKey()
	k2 := tpm.StorageKey()
	if k1 != k2 {
		t.Errorf("storage key changed between reads")
	}
	var zero [32]byte
	if k1 == zero {
		t.Errorf("storage key is all zeros")
	}
}

func TestConsoleContains(t *testing.T) {
	c := &Console{}
	c.Printf("boot: %s", "ok")
	c.Printf("secret=%s", "hunter2")
	if !c.Contains("hunter2") || c.Contains("hunter3") {
		t.Errorf("Contains misbehaves")
	}
	if len(c.Lines()) != 2 {
		t.Errorf("lines = %d", len(c.Lines()))
	}
}

func TestTimerFires(t *testing.T) {
	clk := &Clock{}
	tm := NewTimer(clk, 100)
	if tm.Fired() {
		t.Errorf("fired immediately")
	}
	clk.Advance(101)
	if !tm.Fired() {
		t.Errorf("did not fire after interval")
	}
	if tm.Fired() {
		t.Errorf("fired twice without advancing")
	}
}

func TestPortBusRouting(t *testing.T) {
	bus := NewPortBus()
	io := NewIOMMU()
	bus.Register(IOMMUPortFrame, 2, io)
	bus.Out(IOMMUPortFrame, 5)
	bus.Out(IOMMUPortCmd, IOMMUCmdAllow)
	if !io.Allowed(Frame(5)) {
		t.Errorf("IOMMU programming via ports failed")
	}
	if bus.In(0x9999) != ^uint64(0) {
		t.Errorf("unclaimed port should read all-ones")
	}
}

func TestIOMMUGatesDMA(t *testing.T) {
	clk := &Clock{}
	mem := NewMemory(16, clk)
	io := NewIOMMU()
	dma := NewDMAEngine(mem, io, clk)
	f, _ := mem.AllocFrame(FrameUserData)
	if _, err := dma.CopyFromFrame(f); err == nil {
		t.Fatalf("DMA to unlisted frame allowed")
	}
	io.Allow(f)
	if _, err := dma.CopyFromFrame(f); err != nil {
		t.Fatalf("DMA to allowed frame refused: %v", err)
	}
	io.Revoke(f)
	if err := dma.CopyToFrame(f, []byte{1}); err == nil {
		t.Fatalf("DMA after revoke allowed")
	}
}

func TestDMACopies(t *testing.T) {
	clk := &Clock{}
	mem := NewMemory(16, clk)
	io := NewIOMMU()
	dma := NewDMAEngine(mem, io, clk)
	f, _ := mem.AllocFrame(FrameUserData)
	io.Allow(f)
	src := make([]byte, PageSize)
	src[0], src[4095] = 0xaa, 0xbb
	if err := dma.CopyToFrame(f, src); err != nil {
		t.Fatal(err)
	}
	out, err := dma.CopyFromFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xaa || out[4095] != 0xbb {
		t.Errorf("DMA round trip lost data")
	}
}

func TestClockConversions(t *testing.T) {
	if Micros(3_400_000) != 1000 {
		t.Errorf("3.4M cycles should be 1000us, got %v", Micros(3_400_000))
	}
	c := &Clock{}
	c.AdvanceBytes(16, 2)
	if c.Cycles() != 4 { // 2 words * 2
		t.Errorf("AdvanceBytes = %d", c.Cycles())
	}
}

func TestCPUTrapSavesAndRestores(t *testing.T) {
	m := NewMemory(64, &Clock{})
	u := NewMMU(m, &Clock{})
	cpu := NewCPU(u, &Clock{})
	cpu.Regs.GPR[RAX] = 111
	cpu.Regs.GPR[RDI] = 222
	cpu.Regs.Priv = User
	var seen *TrapFrame
	cpu.SetTrapHandler(func(tf *TrapFrame) {
		seen = tf
		if cpu.Regs.Priv != Supervisor {
			t.Errorf("not in supervisor mode during trap")
		}
		tf.Regs.GPR[RAX] = 999 // syscall return value
		cpu.ReturnFromTrap(tf)
	})
	cpu.Trap(TrapSyscall, 1)
	if seen == nil || seen.Regs.GPR[RDI] != 222 {
		t.Fatalf("trap frame missing register state")
	}
	if cpu.Regs.GPR[RAX] != 999 || cpu.Regs.Priv != User {
		t.Errorf("return-from-trap did not restore/patch state")
	}
}

func TestCPUISTRedirectsStack(t *testing.T) {
	m := NewMemory(64, &Clock{})
	u := NewMMU(m, &Clock{})
	cpu := NewCPU(u, &Clock{})
	cpu.ISTTarget = 0xdead0000
	cpu.SetTrapHandler(func(tf *TrapFrame) {
		if cpu.Regs.RSP != 0xdead0000 {
			t.Errorf("IST did not switch the stack: rsp=%#x", cpu.Regs.RSP)
		}
		cpu.ReturnFromTrap(tf)
	})
	cpu.Regs.RSP = 0x1000
	cpu.Trap(TrapTimer, 0)
	if cpu.Regs.RSP != 0x1000 {
		t.Errorf("user stack not restored")
	}
}

func TestRegFileZeroKeepsSyscallArgs(t *testing.T) {
	var r RegFile
	for i := Reg(0); i < NumRegs; i++ {
		r.GPR[i] = uint64(i) + 1
	}
	r.Zero(true)
	for _, keep := range []Reg{RAX, RDI, RSI, RDX, RCX, R8, R9} {
		if r.GPR[keep] == 0 {
			t.Errorf("syscall arg register %v zeroed", keep)
		}
	}
	for _, gone := range []Reg{RBX, RBP, R10, R11, R12, R13, R14, R15} {
		if r.GPR[gone] != 0 {
			t.Errorf("register %v not zeroed", gone)
		}
	}
	r.Zero(false)
	for i := Reg(0); i < NumRegs; i++ {
		if r.GPR[i] != 0 {
			t.Errorf("register %v survived full zero", i)
		}
	}
}
