package hw

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceEvent is one tagged cycle charge: which mechanism (Tag), where
// (CPU), on whose behalf (PID and a context word — by convention the
// in-flight syscall number), and when (Start virtual cycle, Dur cycles).
type TraceEvent struct {
	Tag   Tag
	CPU   int32
	PID   int32
	Ctx   uint32
	Start uint64 // virtual cycle at which the charge began
	Dur   uint64 // charge size in virtual cycles
}

// Tracer is a bounded ring buffer of TraceEvents fed by Clock.Charge.
// The buffer is allocated once at construction; recording never
// allocates, and when the buffer is full the oldest events are
// overwritten (the tail of a run is usually the interesting part).
// Recording is mutex-guarded so tracers are safe to share across the
// goroutines of a parallel experiment sweep.
//
// Tracing costs zero *virtual* cycles by construction — the tracer
// observes charges, it never makes them — and a detached tracer costs
// the charge path a single nil check (asserted by the engine's
// zero-allocation benchmark).
type Tracer struct {
	mu    sync.Mutex
	ring  []TraceEvent
	next  int    // ring index of the next write
	total uint64 // events ever recorded, including overwritten ones
}

// DefaultTraceCapacity is the ring size used by the CLI -trace flags.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer whose ring holds the most recent capacity
// events. Capacity must be positive.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]TraceEvent, 0, capacity)}
}

func (t *Tracer) record(ev TraceEvent) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
		t.next++
		if t.next == len(t.ring) {
			t.next = 0
		}
	}
	t.total++
	t.mu.Unlock()
}

// Total returns the number of events ever recorded, including any that
// have been overwritten in the ring.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten because the ring
// filled.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.ring))
}

// Events returns the retained events in recording order (oldest first).
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteChromeTrace serializes the retained events in the Chrome
// trace_event JSON format (load in chrome://tracing or Perfetto). Each
// charge becomes a complete ("ph":"X") event: name = tag, pid = the
// simulated process, tid = the simulated CPU, ts/dur in virtual
// microseconds at the nominal Frequency; exact cycle values and the
// syscall context ride in args.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			"{\"name\":%q,\"ph\":\"X\",\"ts\":%.4f,\"dur\":%.4f,\"pid\":%d,\"tid\":%d,"+
				"\"args\":{\"cycles\":%d,\"start_cycle\":%d,\"ctx\":%d}}%s\n",
			ev.Tag.String(), Micros(ev.Start), Micros(ev.Dur), ev.PID, ev.CPU,
			ev.Dur, ev.Start, ev.Ctx, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// traceRing is one CPU's private, preallocated trace ring, written
// lock-free during a sharded user phase (exactly one goroutine writes
// it between barriers) and drained into the shared Tracer at the
// barrier. Like the main ring, it keeps the most recent events when
// full; overwrites are counted so merge accounting stays exact.
type traceRing struct {
	buf     []TraceEvent
	next    int
	wrapped bool
	dropped uint64
}

func (r *traceRing) init(capacity int) {
	r.buf = make([]TraceEvent, 0, capacity)
}

func (r *traceRing) record(ev TraceEvent) {
	if r.buf == nil {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next++
	r.dropped++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// drain returns the retained events oldest-first and resets the ring
// for the next phase (capacity is kept; nothing is reallocated).
func (r *traceRing) drain() []TraceEvent {
	if r.buf == nil || len(r.buf) == 0 {
		return nil
	}
	var out []TraceEvent
	if r.wrapped || r.next > 0 && len(r.buf) == cap(r.buf) {
		out = make([]TraceEvent, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = make([]TraceEvent, len(r.buf))
		copy(out, r.buf)
	}
	r.buf = r.buf[:0]
	r.next = 0
	r.wrapped = false
	return out
}

// mergeShardRings drains every shard's ring and replays the events into
// the main ring in timestamp order (stable; ties keep CPU-id order,
// because shards are drained in CPU-id order and the sort is stable).
// Runs at the epoch barrier, in serial context; the result is
// deterministic regardless of how the host interleaved the CPUs during
// the phase, because each ring's contents depend only on its own CPU's
// charges.
func (t *Tracer) mergeShardRings(shards []clockShard) {
	var all []TraceEvent
	var dropped uint64
	for i := range shards {
		r := &shards[i].ring
		dropped += r.dropped
		r.dropped = 0
		evs := r.drain()
		if len(evs) > 0 {
			all = append(all, evs...)
		}
	}
	if len(all) == 0 && dropped == 0 {
		return
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	t.mu.Lock()
	t.total += dropped // overwritten in a shard ring: recorded, not retained
	t.mu.Unlock()
	for _, ev := range all {
		t.record(ev)
	}
}

// defaultTracer is attached to every subsequently constructed machine's
// clock. It exists for the CLI -trace flags: vgbench boots its systems
// deep inside the experiments package, so the tracer has to travel via
// package state rather than a parameter thread.
var (
	defaultTracerMu sync.Mutex
	defaultTracer   *Tracer
)

// SetDefaultTracer installs (or, with nil, removes) the tracer that new
// machines attach at construction. Machines already built are
// unaffected.
func SetDefaultTracer(t *Tracer) {
	defaultTracerMu.Lock()
	defaultTracer = t
	defaultTracerMu.Unlock()
}

// DefaultTracer returns the tracer new machines will attach, or nil.
func DefaultTracer() *Tracer {
	defaultTracerMu.Lock()
	defer defaultTracerMu.Unlock()
	return defaultTracer
}
