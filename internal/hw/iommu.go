package hw

import "fmt"

// IOMMU gates device (DMA) access to physical memory: a device may only
// read or write frames that appear in the IOMMU's table. The table is
// configured through I/O ports, so whoever controls port I/O controls
// DMA reach. On the Native configuration the kernel programs it freely;
// under Virtual Ghost the SVA VM's checked port-I/O instructions refuse
// to expose ghost or SVA frames (paper §4.3.3).
type IOMMU struct {
	allowed map[Frame]bool
	// commandLatch assembles the two-word program command written via
	// ports: first the frame number, then the enable/disable opcode.
	latchFrame Frame
}

// IOMMU port-interface opcodes (written to IOMMUPortCmd).
const (
	IOMMUCmdAllow  = 1
	IOMMUCmdRevoke = 2
)

// Port numbers of the IOMMU's configuration interface.
const (
	IOMMUPortFrame uint16 = 0x1000
	IOMMUPortCmd   uint16 = 0x1001
)

// NewIOMMU creates an IOMMU with an empty (deny-all) table.
func NewIOMMU() *IOMMU { return &IOMMU{allowed: make(map[Frame]bool)} }

// Allow adds a frame to the DMA-visible set.
func (i *IOMMU) Allow(f Frame) { i.allowed[f] = true }

// Revoke removes a frame from the DMA-visible set.
func (i *IOMMU) Revoke(f Frame) { delete(i.allowed, f) }

// Allowed reports whether a frame is DMA-visible.
func (i *IOMMU) Allowed(f Frame) bool { return i.allowed[f] }

// PortIn implements PortHandler: reads report whether the latched frame
// is currently allowed.
func (i *IOMMU) PortIn(port uint16) uint64 {
	if port == IOMMUPortFrame {
		return uint64(i.latchFrame)
	}
	if i.allowed[i.latchFrame] {
		return 1
	}
	return 0
}

// PortOut implements PortHandler: programs the table.
func (i *IOMMU) PortOut(port uint16, val uint64) {
	switch port {
	case IOMMUPortFrame:
		i.latchFrame = Frame(val)
	case IOMMUPortCmd:
		switch val {
		case IOMMUCmdAllow:
			i.Allow(i.latchFrame)
		case IOMMUCmdRevoke:
			i.Revoke(i.latchFrame)
		}
	}
}

// DMAEngine copies between devices and physical memory subject to the
// IOMMU. The rootkit's DMA attack vector drives this directly.
type DMAEngine struct {
	mem   *Memory
	iommu *IOMMU
	clock *Clock
}

// NewDMAEngine builds the engine.
func NewDMAEngine(mem *Memory, iommu *IOMMU, clock *Clock) *DMAEngine {
	return &DMAEngine{mem: mem, iommu: iommu, clock: clock}
}

// ErrIOMMU is returned when the IOMMU blocks a transfer.
type ErrIOMMU struct{ F Frame }

func (e *ErrIOMMU) Error() string {
	return fmt.Sprintf("hw: IOMMU blocked DMA to frame %d (%v)", e.F, e.F.Addr())
}

// CopyFromFrame DMAs a frame's contents out to a device buffer.
func (d *DMAEngine) CopyFromFrame(f Frame) ([]byte, error) {
	if !d.iommu.Allowed(f) {
		return nil, &ErrIOMMU{F: f}
	}
	d.clock.Charge(TagIO, CostPageZero) // a page-sized transfer
	b, err := d.mem.FrameBytes(f)
	if err != nil {
		return nil, err
	}
	out := make([]byte, PageSize)
	copy(out, b)
	return out, nil
}

// CopyToFrame DMAs a device buffer into a frame.
func (d *DMAEngine) CopyToFrame(f Frame, b []byte) error {
	if !d.iommu.Allowed(f) {
		return &ErrIOMMU{F: f}
	}
	d.clock.Charge(TagIO, CostPageZero)
	dst, err := d.mem.FrameBytes(f)
	if err != nil {
		return err
	}
	copy(dst, b)
	return nil
}
