package hw

import "fmt"

// Reg names the general-purpose registers of the simulated CPU. The set
// mirrors x86-64's sixteen GPRs; RIP and RSP are held separately in
// RegFile because trap handling treats them specially.
type Reg uint8

// General-purpose registers.
const (
	RAX Reg = iota
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumRegs
)

var regNames = [NumRegs]string{
	"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// Priv is a CPU privilege level.
type Priv uint8

const (
	// Supervisor is ring 0 (kernel and the SVA VM, which runs at the
	// same privilege as the kernel — Virtual Ghost has no hypervisor).
	Supervisor Priv = 0
	// User is ring 3.
	User Priv = 3
)

// RegFile is the architectural register state of a hardware thread.
type RegFile struct {
	GPR    [NumRegs]uint64
	RIP    uint64
	RSP    uint64
	RFLAGS uint64
	Priv   Priv
}

// Zero clears the general-purpose registers, optionally preserving the
// registers that carry system-call arguments (RDI, RSI, RDX, RCX, R8,
// R9 and the syscall number in RAX), as the SVA VM does on syscall
// entry (paper §4.6).
func (r *RegFile) Zero(keepSyscallArgs bool) {
	for i := Reg(0); i < NumRegs; i++ {
		if keepSyscallArgs {
			switch i {
			case RAX, RDI, RSI, RDX, RCX, R8, R9:
				continue
			}
		}
		r.GPR[i] = 0
	}
}

// TrapKind identifies why control entered supervisor mode.
type TrapKind uint8

const (
	// TrapSyscall is a system call.
	TrapSyscall TrapKind = iota
	// TrapPageFault is a page fault.
	TrapPageFault
	// TrapTimer is a timer interrupt.
	TrapTimer
	// TrapDevice is a device interrupt.
	TrapDevice
	// TrapIllegal is an illegal instruction or privilege violation.
	TrapIllegal
)

func (k TrapKind) String() string {
	switch k {
	case TrapSyscall:
		return "syscall"
	case TrapPageFault:
		return "pagefault"
	case TrapTimer:
		return "timer"
	case TrapDevice:
		return "device"
	case TrapIllegal:
		return "illegal"
	}
	return "trap?"
}

// TrapFrame is the state the hardware saves when a trap or system call
// occurs. Where it is saved is the crux of the Interrupt Context
// protection: with the IST configured (Virtual Ghost), the hardware
// switches to an SVA-VM-internal stack, so this state is never visible
// to the OS; on the Native configuration it lands on the kernel stack.
type TrapFrame struct {
	Regs RegFile
	Kind TrapKind
	// Info carries kind-specific data (faulting VA for page faults,
	// syscall number for syscalls).
	Info uint64
}

// CPU is one simulated hardware thread. It owns a register file, its
// own MMU (each CPU has a private TLB over the shared physical
// memory), and the IST configuration.
type CPU struct {
	// ID is the CPU's index in its machine's CPUs slice (0 for the
	// boot CPU and for single-CPU machines).
	ID    int
	Regs  RegFile
	MMU   *MMU
	Clock *Clock

	// ISTTarget, when non-zero, is the supervisor stack pointer loaded
	// on every trap regardless of privilege change (x86-64 Interrupt
	// Stack Table). The SVA VM points this into its internal memory.
	ISTTarget uint64

	// trapHandler receives traps; installed by whoever owns the boot
	// path (the SVA VM under Virtual Ghost, the kernel natively).
	trapHandler func(*TrapFrame)

	// ipi is the CPU's interrupt line: pending inter-processor
	// interrupts queued by Machine.SendIPI, drained (and charged) by
	// Machine.DrainIPIs when the scheduler next steps this CPU.
	ipi []IPI
}

// NewCPU builds a CPU over the memory/MMU.
func NewCPU(mmu *MMU, clock *Clock) *CPU {
	return &CPU{MMU: mmu, Clock: clock}
}

// SetTrapHandler installs the software entry point invoked on traps.
func (c *CPU) SetTrapHandler(h func(*TrapFrame)) { c.trapHandler = h }

// Trap simulates the hardware trap sequence: it charges the entry cost,
// snapshots the register file into a TrapFrame, switches to supervisor
// mode (loading the IST stack if configured), and calls the handler.
func (c *CPU) Trap(kind TrapKind, info uint64) {
	c.Clock.Charge(TagTrap, CostTrapEntry)
	tf := &TrapFrame{Regs: c.Regs, Kind: kind, Info: info}
	c.Regs.Priv = Supervisor
	if c.ISTTarget != 0 {
		c.Regs.RSP = c.ISTTarget
	}
	if c.trapHandler == nil {
		panic("hw: trap with no handler installed")
	}
	c.trapHandler(tf)
}

// ReturnFromTrap simulates iret: it charges the exit cost and reloads
// the register file from the given frame.
func (c *CPU) ReturnFromTrap(tf *TrapFrame) {
	c.Clock.Charge(TagTrap, CostTrapExit)
	c.Regs = tf.Regs
}

// LoadVirt performs a data load of size bytes at virtual address v at
// the CPU's current privilege, charging the access cost.
//
// The data-access paths below charge via ChargeOn(c.ID): they execute
// in process context, which the epoch scheduler may run on a host
// goroutine during a parallel user phase, so their cycles must land on
// this CPU's shard. (Trap/ReturnFromTrap stay on the global Charge:
// traps are kernel-phase work by construction, and the global path's
// shard panic enforces exactly that.)
func (c *CPU) LoadVirt(v Virt, size int) (uint64, error) {
	c.Clock.ChargeOn(c.ID, TagMemAccess, CostMemAccess)
	p, err := c.MMU.Translate(v, AccRead, c.Regs.Priv == User)
	if err != nil {
		return 0, err
	}
	return c.MMU.mem.ReadLE(p, size)
}

// StoreVirt performs a data store of size bytes at virtual address v.
func (c *CPU) StoreVirt(v Virt, size int, val uint64) error {
	c.Clock.ChargeOn(c.ID, TagMemAccess, CostMemAccess)
	p, err := c.MMU.Translate(v, AccWrite, c.Regs.Priv == User)
	if err != nil {
		return err
	}
	return c.MMU.mem.WriteLE(p, size, val)
}

// CopyToVirt copies a byte block into the virtual address space,
// page by page, charging block-copy costs.
func (c *CPU) CopyToVirt(v Virt, b []byte) error {
	c.Clock.ChargeOn(c.ID, TagMemAccess, CostMemAccess)
	c.Clock.ChargeBytesOn(c.ID, TagMemAccess, len(b), CostBcopyPerByte)
	for len(b) > 0 {
		n := int(PageSize - (v & (PageSize - 1)))
		if n > len(b) {
			n = len(b)
		}
		p, err := c.MMU.Translate(v, AccWrite, c.Regs.Priv == User)
		if err != nil {
			return err
		}
		if err := c.MMU.mem.WritePhys(p, b[:n]); err != nil {
			return err
		}
		v += Virt(n)
		b = b[n:]
	}
	return nil
}

// CopyFromVirt copies n bytes out of the virtual address space.
func (c *CPU) CopyFromVirt(v Virt, n int) ([]byte, error) {
	c.Clock.ChargeOn(c.ID, TagMemAccess, CostMemAccess)
	c.Clock.ChargeBytesOn(c.ID, TagMemAccess, n, CostBcopyPerByte)
	out := make([]byte, n)
	pos := 0
	for n > 0 {
		chunk := min(n, int(PageSize-(v&(PageSize-1))))
		p, err := c.MMU.Translate(v, AccRead, c.Regs.Priv == User)
		if err != nil {
			return nil, err
		}
		if err := c.MMU.mem.ReadPhysInto(p, out[pos:pos+chunk]); err != nil {
			return nil, err
		}
		pos += chunk
		v += Virt(chunk)
		n -= chunk
	}
	return out, nil
}
