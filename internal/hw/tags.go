package hw

// Tag classifies a virtual-cycle charge by the mechanism that incurred
// it. Every Clock.Charge call names a tag, so the machine accumulates a
// per-tag ledger alongside the total cycle counter — this is what lets
// the Table 2/3/4 overheads be decomposed the way the paper's §8
// discussion decomposes them ("the cost of saving the Interrupt
// Context", "the MMU checks", "the bit-masking instrumentation")
// instead of reported as opaque totals.
//
// The tag set is deliberately small and mechanism-shaped, not
// module-shaped: a charge is tagged by *why* the cycles were spent
// (sandbox mask, CFI check, trap hardware, page crypto), regardless of
// which package spent them. The per-tag sums are exactly a partition of
// the total: Ledger.Total() == Clock.Cycles() at every instant (see
// TestLedgerSumsToTotal).
type Tag uint8

const (
	// TagMemAccess is plain data movement: loads, stores, and the
	// per-word cost of block copies — the work every configuration pays.
	TagMemAccess Tag = iota
	// TagSandbox is the Virtual Ghost load/store instrumentation: the
	// compare+or bit-masking sequences guarding memory accesses
	// (CostMaskCheck), per access or per memcpy operand.
	TagSandbox
	// TagCFI is control-flow-integrity work: label checks on returns
	// and indirect calls, and label landing pads.
	TagCFI
	// TagEngine is instruction-execution base cost: ALU ops, branches,
	// and calls in IR code and along modeled kernel paths. Present in
	// every configuration; the instrumentation tags measure what Virtual
	// Ghost adds on top of it.
	TagEngine
	// TagVerify is the static admission checker's linear scan over
	// translated IR (module-load time, never hot paths).
	TagVerify
	// TagTrap is the hardware trap sequence: mode switch and IST stack
	// switch on entry, iret on exit.
	TagTrap
	// TagICSave is the SVA VM's Interrupt Context work: copying trap
	// state into VM internal memory, zeroing registers, and the
	// icontext save/load/newstate operations (Virtual Ghost only).
	TagICSave
	// TagMMUCheck is the SVA VM's validation of page-table updates
	// against the ghost/code/VM-memory constraints (Virtual Ghost only).
	TagMMUCheck
	// TagTLB is address-translation hardware: TLB hits, page-table
	// walks, and TLB flushes.
	TagTLB
	// TagCrypt is cryptography: page encryption/hash for ghost swap and
	// the shadowing baseline, binary validation hashes, and the ghosting
	// libc's per-byte AES-GCM work.
	TagCrypt
	// TagSched is kernel context-switch work (register save/restore,
	// runqueue manipulation, excluding TLB effects).
	TagSched
	// TagIPI is inter-processor-interrupt traffic: APIC programming,
	// remote delivery, and TLB-shootdown rounds.
	TagIPI
	// TagIO is device access: disk transfers, NIC serialization,
	// loopback, DMA, and I/O port operations.
	TagIO
	// TagShadow is the hypervisor-baseline boundary: VM exits,
	// paravirtual MMU hypercalls, shadow-fault repair, and shadow
	// address-space construction (Shadow configuration only).
	TagShadow
	// TagCompute is pure user computation declared by applications
	// through Proc.Compute.
	TagCompute
	// TagOther is the unattributed bucket: charges made through the
	// legacy Clock.Advance/AdvanceBytes entry points (tests simulating
	// the passage of time). Production charge paths never use it — a
	// source-scan test keeps raw Advance calls out of non-test code.
	TagOther
	// TagNet is network-path work split out of TagIO: NIC serialization
	// and latency, loopback delivery, and idle-time skips while every
	// runnable process waits on a network timer. Appended after TagOther
	// so ledgers serialized before the split decode with their original
	// tag meanings intact.
	TagNet

	// NumTags sizes per-tag arrays.
	NumTags
)

var tagNames = [NumTags]string{
	"mem-access", "sandbox", "cfi", "engine", "verify", "trap",
	"ic-save", "mmu-check", "tlb", "crypt", "sched", "ipi", "io",
	"shadow", "compute", "other", "net",
}

// String returns the tag's stable snake-ish name, used in trace export,
// JSON breakdowns, and table output.
func (t Tag) String() string {
	if t < NumTags {
		return tagNames[t]
	}
	return "tag?"
}

// ParseTag resolves a tag name as printed by String. The second return
// is false for unknown names.
func ParseTag(s string) (Tag, bool) {
	for i, n := range tagNames {
		if n == s {
			return Tag(i), true
		}
	}
	return 0, false
}

// Ledger is a per-tag cycle account. The zero value is an empty ledger.
type Ledger [NumTags]uint64

// Total sums the ledger. On a clock's live ledger this equals
// Clock.Cycles() exactly — the accounting refactor that introduced tags
// preserves the untagged totals bit-for-bit.
func (l *Ledger) Total() uint64 {
	var sum uint64
	for _, v := range l {
		sum += v
	}
	return sum
}

// Sub returns the per-tag delta l - prev (the charges between two
// snapshots of the same clock).
func (l Ledger) Sub(prev Ledger) Ledger {
	var d Ledger
	for i := range l {
		d[i] = l[i] - prev[i]
	}
	return d
}

// Add returns the per-tag sum of two ledgers.
func (l Ledger) Add(o Ledger) Ledger {
	var s Ledger
	for i := range l {
		s[i] = l[i] + o[i]
	}
	return s
}

// TopShares returns the tags with non-zero cycles, ordered by
// descending share of the ledger total, as (tag, fraction) pairs.
// Useful for "34% ic-save, 22% sandbox"-style breakdown lines.
func (l Ledger) TopShares() []TagShare {
	total := l.Total()
	if total == 0 {
		return nil
	}
	out := make([]TagShare, 0, NumTags)
	for t := Tag(0); t < NumTags; t++ {
		if l[t] > 0 {
			out = append(out, TagShare{Tag: t, Cycles: l[t],
				Share: float64(l[t]) / float64(total)})
		}
	}
	// Insertion sort by descending cycles: NumTags is tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Cycles > out[j-1].Cycles; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TagShare is one tag's slice of a ledger.
type TagShare struct {
	Tag    Tag
	Cycles uint64
	Share  float64 // fraction of the ledger total, 0..1
}
