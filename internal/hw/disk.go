package hw

import (
	"errors"
	"fmt"
)

// BlockSize is the disk sector/block size.
const BlockSize = 4096

// Disk is a simple block device with a seek latency and a transfer
// bandwidth, modelled on the paper's SSD (files in /usr lived on the
// SSD). Reads and writes are whole blocks and charge virtual time.
//
// The disk is OS-visible in its entirety: the threat model gives the OS
// full read/write access to persistent storage, which is why ghosting
// applications must encrypt what they store here.
type Disk struct {
	clock  *Clock
	blocks [][]byte
	// latencyCycles is charged once per request; perBlockCycles once
	// per block transferred.
	latencyCycles  uint64
	perBlockCycles uint64
	reads          uint64
	writes         uint64
	// failNext makes the next N requests fail with ErrDiskIO
	// (failure injection for robustness tests).
	failNext int
}

// Disk timing at 3.4 GHz: ~24 µs access latency (SSD-class) and ~3 µs
// per 4 KiB block transferred.
const (
	diskLatencyCycles  = 80_000
	diskPerBlockCycles = 10_000
)

// NewDisk creates a disk with nblocks blocks.
func NewDisk(clock *Clock, nblocks int) *Disk {
	return &Disk{
		clock:          clock,
		blocks:         make([][]byte, nblocks),
		latencyCycles:  diskLatencyCycles,
		perBlockCycles: diskPerBlockCycles,
	}
}

// NumBlocks returns the disk capacity in blocks.
func (d *Disk) NumBlocks() int { return len(d.blocks) }

// ErrDiskIO is an injected or surfaced media error.
var ErrDiskIO = errors.New("hw: disk I/O error")

// InjectFailures makes the next n requests fail (media-error
// injection).
func (d *Disk) InjectFailures(n int) { d.failNext = n }

// takeFailure consumes one injected failure if armed.
func (d *Disk) takeFailure() bool {
	if d.failNext > 0 {
		d.failNext--
		return true
	}
	return false
}

// Stats returns cumulative read/write request counts.
func (d *Disk) Stats() (reads, writes uint64) { return d.reads, d.writes }

func (d *Disk) check(blk int) error {
	if blk < 0 || blk >= len(d.blocks) {
		return fmt.Errorf("hw: disk block %d out of range (%d blocks)", blk, len(d.blocks))
	}
	return nil
}

// ReadBlock returns the contents of a block (zeros if never written).
func (d *Disk) ReadBlock(blk int) ([]byte, error) {
	if err := d.check(blk); err != nil {
		return nil, err
	}
	if d.takeFailure() {
		return nil, ErrDiskIO
	}
	d.clock.Charge(TagIO, d.latencyCycles+d.perBlockCycles)
	d.reads++
	out := make([]byte, BlockSize)
	if d.blocks[blk] != nil {
		copy(out, d.blocks[blk])
	}
	return out, nil
}

// WriteBlock stores a block (short writes are zero-padded).
func (d *Disk) WriteBlock(blk int, b []byte) error {
	if err := d.check(blk); err != nil {
		return err
	}
	if len(b) > BlockSize {
		return fmt.Errorf("hw: write of %d bytes exceeds block size", len(b))
	}
	if d.takeFailure() {
		return ErrDiskIO
	}
	d.clock.Charge(TagIO, d.latencyCycles+d.perBlockCycles)
	d.writes++
	buf := make([]byte, BlockSize)
	copy(buf, b)
	d.blocks[blk] = buf
	return nil
}

// PeekBlock reads a block without charging time (used by the hostile-OS
// attack vectors that tamper with on-disk data, and by tests).
func (d *Disk) PeekBlock(blk int) []byte {
	if blk < 0 || blk >= len(d.blocks) || d.blocks[blk] == nil {
		return make([]byte, BlockSize)
	}
	out := make([]byte, BlockSize)
	copy(out, d.blocks[blk])
	return out
}

// PokeBlock overwrites a block without charging time (hostile tampering).
func (d *Disk) PokeBlock(blk int, b []byte) {
	if blk < 0 || blk >= len(d.blocks) {
		return
	}
	buf := make([]byte, BlockSize)
	copy(buf, b)
	d.blocks[blk] = buf
}
