package hw

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestLedgerSumsToTotal is the accounting invariant: every cycle the
// clock advances lands in exactly one ledger bucket, so the ledger
// total equals the cycle counter at every instant — tags partition the
// total, they never change it.
func TestLedgerSumsToTotal(t *testing.T) {
	var c Clock
	charges := []struct {
		tag Tag
		n   uint64
	}{
		{TagMemAccess, 4}, {TagSandbox, 14}, {TagTrap, 120},
		{TagICSave, 420}, {TagCrypt, 9000}, {TagMemAccess, 0},
		{TagOther, 3}, {TagCFI, 9},
	}
	for _, ch := range charges {
		c.Charge(ch.tag, ch.n)
		l := c.Ledger()
		if got := l.Total(); got != c.Cycles() {
			t.Fatalf("after Charge(%v, %d): ledger total %d != cycles %d",
				ch.tag, ch.n, got, c.Cycles())
		}
	}
	l := c.Ledger()
	if l[TagMemAccess] != 4 || l[TagSandbox] != 14 || l[TagICSave] != 420 {
		t.Errorf("per-tag buckets wrong: %v", l)
	}
}

// TestPerCPULedgersPartitionTotal checks that with per-CPU accounting
// enabled, the per-CPU ledgers also sum exactly to the global total.
func TestPerCPULedgersPartitionTotal(t *testing.T) {
	var c Clock
	c.EnsureCPUs(3)
	c.SetCPU(0)
	c.Charge(TagTrap, 100)
	c.SetCPU(2)
	c.Charge(TagSandbox, 50)
	c.Charge(TagTrap, 7)
	c.SetCPU(1)
	c.Charge(TagIO, 1)
	var sum uint64
	for cpu := 0; cpu < 3; cpu++ {
		l := c.CPULedger(cpu)
		sum += l.Total()
	}
	if sum != c.Cycles() {
		t.Fatalf("per-CPU ledgers sum to %d, clock at %d", sum, c.Cycles())
	}
	if l := c.CPULedger(2); l[TagSandbox] != 50 || l[TagTrap] != 7 {
		t.Errorf("cpu2 ledger wrong: %v", l)
	}
}

// TestAdvanceBytesRounding pins the words-not-bytes rule: AdvanceBytes
// charges per started 8-byte word, so 1..8 bytes cost one word and 9
// bytes cost two. The boundary cases are the ones a per-byte rewrite
// would silently change.
func TestAdvanceBytesRounding(t *testing.T) {
	const costPer8 = 4
	cases := []struct {
		bytes int
		want  uint64
	}{
		{0, 0},
		{1, 1 * costPer8},
		{7, 1 * costPer8},
		{8, 1 * costPer8},
		{9, 2 * costPer8},
	}
	for _, tc := range cases {
		var c Clock
		c.AdvanceBytes(tc.bytes, costPer8)
		if got := c.Cycles(); got != tc.want {
			t.Errorf("AdvanceBytes(%d, %d) advanced %d cycles, want %d",
				tc.bytes, costPer8, got, tc.want)
		}
		// The legacy entry point books under TagOther, and ChargeBytes
		// must round identically under any tag.
		if l := c.Ledger(); l[TagOther] != tc.want {
			t.Errorf("AdvanceBytes(%d) booked %d under other, want %d",
				tc.bytes, l[TagOther], tc.want)
		}
		var c2 Clock
		c2.ChargeBytes(TagMemAccess, tc.bytes, costPer8)
		if got := c2.Cycles(); got != tc.want {
			t.Errorf("ChargeBytes(mem-access, %d, %d) advanced %d cycles, want %d",
				tc.bytes, costPer8, got, tc.want)
		}
	}
}

func TestParseTagRoundTrip(t *testing.T) {
	for tag := Tag(0); tag < NumTags; tag++ {
		got, ok := ParseTag(tag.String())
		if !ok || got != tag {
			t.Errorf("ParseTag(%q) = %v, %v; want %v", tag.String(), got, ok, tag)
		}
	}
	if _, ok := ParseTag("no-such-tag"); ok {
		t.Error("ParseTag accepted an unknown name")
	}
}

// TestTracerRing checks the bounded ring: the newest capacity events
// are kept in order, older ones are counted as dropped.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	var c Clock
	c.AttachTracer(tr)
	for i := 0; i < 7; i++ {
		c.Charge(TagTrap, uint64(i+1))
	}
	if got := tr.Total(); got != 7 {
		t.Fatalf("Total() = %d, want 7", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i + 4); ev.Dur != want {
			t.Errorf("event %d: dur %d, want %d (oldest-first order)", i, ev.Dur, want)
		}
	}
}

// TestZeroDurChargesNotTraced checks that zero-cycle charges produce no
// trace events (they would be invisible slices and pure overhead).
func TestZeroDurChargesNotTraced(t *testing.T) {
	tr := NewTracer(4)
	var c Clock
	c.AttachTracer(tr)
	c.Charge(TagSandbox, 0)
	if tr.Total() != 0 {
		t.Errorf("zero-cycle charge was traced")
	}
}

// chromeTrace mirrors the subset of the Chrome trace_event format the
// exporter emits; the validation here is what the CI trace smoke step
// relies on.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string   `json:"name"`
		Ph   string   `json:"ph"`
		Ts   *float64 `json:"ts"`
		Dur  *float64 `json:"dur"`
		Pid  *int     `json:"pid"`
		Tid  *int     `json:"tid"`
		Args struct {
			Cycles     *uint64 `json:"cycles"`
			StartCycle *uint64 `json:"start_cycle"`
			Ctx        *uint32 `json:"ctx"`
		} `json:"args"`
	} `json:"traceEvents"`
}

// validateChromeTrace decodes raw as trace_event JSON and fails the
// test on any shape violation.
func validateChromeTrace(t *testing.T, raw []byte) {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want \"ns\"", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for i, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d: ph = %q, want \"X\" (complete event)", i, ev.Ph)
		}
		if _, ok := ParseTag(ev.Name); !ok {
			t.Fatalf("event %d: name %q is not a cost tag", i, ev.Name)
		}
		if ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d: missing ts/dur/pid/tid", i)
		}
		if ev.Args.Cycles == nil || ev.Args.StartCycle == nil || ev.Args.Ctx == nil {
			t.Fatalf("event %d: missing args.cycles/start_cycle/ctx", i)
		}
		if *ev.Dur <= 0 {
			t.Fatalf("event %d: non-positive dur %v", i, *ev.Dur)
		}
	}
}

// TestWriteChromeTraceShape exports a synthetic trace and validates the
// trace_event shape end to end.
func TestWriteChromeTraceShape(t *testing.T) {
	tr := NewTracer(16)
	var c Clock
	c.EnsureCPUs(2)
	c.AttachTracer(tr)
	c.SetContext(42, 7)
	c.Charge(TagTrap, CostTrapEntry)
	c.SetCPU(1)
	c.Charge(TagSandbox, CostMaskCheck)
	c.ChargeBytes(TagMemAccess, 33, CostBcopyPerByte)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	validateChromeTrace(t, buf.Bytes())
}

// TestChromeTraceFile validates a CI-produced trace file (the smoke
// step runs `vgrun -trace <file>` and points VG_TRACE_FILE at it).
// Skipped when the environment variable is unset.
func TestChromeTraceFile(t *testing.T) {
	path := os.Getenv("VG_TRACE_FILE")
	if path == "" {
		t.Skip("VG_TRACE_FILE not set (CI trace smoke step only)")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	validateChromeTrace(t, raw)
}
