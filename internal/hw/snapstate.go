package hw

import (
	"fmt"
	"sort"
)

// This file is the hardware half of the snapshot subsystem
// (internal/snapshot, DESIGN.md §18): a complete, serializable capture
// of one machine's architectural state. The split is deliberate — this
// package knows every private field that constitutes machine state, so
// the capture/apply logic lives here, while the snapshot package owns
// the image format, checksumming and sealing.
//
// Host-side acceleration structures are *not* state: the walk cache,
// tracer, tap hooks and device handler registrations are rebuilt or
// cold-started on restore. Cold-starting the walk cache is safe by its
// own contract — callers charge virtual time as if every lookup walked
// the tables, so hit/miss behaviour is invisible to the virtual clock.

// MachineSnap is the full serializable hardware state of one machine.
// Field order and JSON names are part of the image format; changing
// them requires a snapshot version bump (kernel.SnapshotImageVersion).
type MachineSnap struct {
	NumCPUs    int `json:"num_cpus"`
	MemFrames  int `json:"mem_frames"`
	DiskBlocks int `json:"disk_blocks"`
	CurCPU     int `json:"cur_cpu"`

	Clock ClockSnap `json:"clock"`
	Mem   MemSnap   `json:"mem"`
	CPUs  []CPUSnap `json:"cpus"`
	Disk  DiskSnap  `json:"disk"`
	NIC   NICSnap   `json:"nic"`
	IOMMU IOMMUSnap `json:"iommu"`

	Console   []string `json:"console,omitempty"`
	RNGState  uint64   `json:"rng_state"`
	TimerNext uint64   `json:"timer_next"`

	IPIsSent      uint64 `json:"ipis_sent"`
	IPIsDelivered uint64 `json:"ipis_delivered"`
	Shootdowns    uint64 `json:"shootdowns"`
	TLBIncoherent bool   `json:"tlb_incoherent,omitempty"`
}

// ClockSnap is the virtual timeline: total cycles plus the tag ledgers
// that partition them.
type ClockSnap struct {
	Cycles uint64   `json:"cycles"`
	CPU    int      `json:"cpu"`
	Ledger Ledger   `json:"ledger"`
	PerCPU []Ledger `json:"per_cpu,omitempty"`
}

// MemSnap is physical memory: per-frame metadata, the free list in its
// exact LIFO order (allocation order is architectural — frame numbers
// end up in page tables), and the contents of every non-zero frame.
type MemSnap struct {
	FType []byte            `json:"ftype"`
	Refs  []uint16          `json:"refs"`
	Free  []uint64          `json:"free"`
	Pages map[uint64][]byte `json:"pages"`
}

// CPUSnap is one hardware thread: registers, IST configuration, the
// pending interrupt line, and its MMU's root + TLB contents.
type CPUSnap struct {
	Regs      RegFile        `json:"regs"`
	ISTTarget uint64         `json:"ist_target"`
	IPIs      []IPI          `json:"ipis,omitempty"`
	MMURoot   uint64         `json:"mmu_root"`
	TLB       []TLBSnapEntry `json:"tlb,omitempty"`
}

// TLBSnapEntry is one cached translation, sorted by page for a stable
// encoding.
type TLBSnapEntry struct {
	Page  uint64 `json:"page"`
	Frame uint64 `json:"frame"`
	Flags uint64 `json:"flags"`
}

// DiskSnap is the block device: contents of every written block plus
// the request counters and any armed failure injection.
type DiskSnap struct {
	Blocks   map[int][]byte `json:"blocks"`
	Reads    uint64         `json:"reads"`
	Writes   uint64         `json:"writes"`
	FailNext int            `json:"fail_next,omitempty"`
}

// NICSnap is the network interface: the undelivered receive queue in
// global arrival order (the per-port split is rebuilt on apply) and
// the cumulative counters.
type NICSnap struct {
	RX             []Packet       `json:"rx,omitempty"`
	BytesSent      uint64         `json:"bytes_sent"`
	BytesReceived  uint64         `json:"bytes_received"`
	PacketsDropped uint64         `json:"packets_dropped"`
	PortDrops      []PortDropSnap `json:"port_drops,omitempty"`
}

// PortDropSnap is one port's cumulative queue-overflow drop count,
// sorted by port for a stable encoding.
type PortDropSnap struct {
	Port  uint16 `json:"port"`
	Drops uint64 `json:"drops"`
}

// IOMMUSnap is the DMA-visibility table (sorted) and the command latch.
type IOMMUSnap struct {
	Allowed    []uint64 `json:"allowed,omitempty"`
	LatchFrame uint64   `json:"latch_frame"`
}

// CaptureSnap deep-copies the machine's architectural state. The
// machine must be between epochs (no open clock shard phase); captured
// buffers are private to the snap, so the machine may keep running.
func (m *Machine) CaptureSnap() (*MachineSnap, error) {
	if m.Clock.Sharding() {
		return nil, fmt.Errorf("hw: snapshot capture during an open shard phase (capture only at epoch barriers)")
	}
	s := &MachineSnap{
		NumCPUs:       len(m.CPUs),
		MemFrames:     m.Mem.nframes,
		DiskBlocks:    len(m.Disk.blocks),
		CurCPU:        m.curCPU,
		Clock:         m.Clock.captureSnap(),
		Mem:           m.Mem.captureSnap(),
		CPUs:          make([]CPUSnap, len(m.CPUs)),
		Disk:          m.Disk.captureSnap(),
		NIC:           m.NIC.captureSnap(),
		IOMMU:         m.IOMMU.captureSnap(),
		Console:       m.Console.Lines(),
		RNGState:      m.RNG.state,
		TimerNext:     m.Timer.next,
		IPIsSent:      m.ipisSent,
		IPIsDelivered: m.ipisDelivered,
		Shootdowns:    m.shootdowns,
		TLBIncoherent: m.tlbIncoherent,
	}
	for i, c := range m.CPUs {
		s.CPUs[i] = c.captureSnap()
	}
	return s, nil
}

// ApplySnap overwrites the machine's architectural state with the
// snap's. The machine must have the same geometry (frames, blocks,
// CPUs) — restore targets are booted from the same configuration. With
// sharePages, frame and disk contents alias the snap's buffers
// copy-on-write, so N machines can be forked from one decoded image
// without copying memory; the snap must then stay immutable.
func (m *Machine) ApplySnap(s *MachineSnap, sharePages bool) error {
	if m.Clock.Sharding() {
		return fmt.Errorf("hw: snapshot apply during an open shard phase")
	}
	if len(m.CPUs) != s.NumCPUs || m.Mem.nframes != s.MemFrames || len(m.Disk.blocks) != s.DiskBlocks {
		return fmt.Errorf("hw: snapshot geometry mismatch: image %d cpus/%d frames/%d blocks, machine %d/%d/%d",
			s.NumCPUs, s.MemFrames, s.DiskBlocks, len(m.CPUs), m.Mem.nframes, len(m.Disk.blocks))
	}
	m.Clock.applySnap(&s.Clock)
	m.Mem.applySnap(&s.Mem, sharePages)
	for i, c := range m.CPUs {
		c.applySnap(&s.CPUs[i])
	}
	// All cached walks describe pre-restore page tables; drop them. The
	// cache is shared, so resetting the primary MMU reaches every CPU.
	m.MMU.ResetWalkCache()
	m.Disk.applySnap(&s.Disk, sharePages)
	m.NIC.applySnap(&s.NIC)
	m.IOMMU.applySnap(&s.IOMMU)
	m.Console.mu.Lock()
	m.Console.lines = append([]string(nil), s.Console...)
	m.Console.mu.Unlock()
	m.RNG.state = s.RNGState
	m.Timer.next = s.TimerNext
	m.ipisSent = s.IPIsSent
	m.ipisDelivered = s.IPIsDelivered
	m.shootdowns = s.Shootdowns
	m.tlbIncoherent = s.TLBIncoherent
	m.SetCurrentCPU(s.CurCPU)
	return nil
}

func (c *Clock) captureSnap() ClockSnap {
	s := ClockSnap{Cycles: c.cycles, CPU: c.cpu, Ledger: c.ledger}
	if c.perCPU != nil {
		s.PerCPU = append([]Ledger(nil), c.perCPU...)
	}
	return s
}

func (c *Clock) applySnap(s *ClockSnap) {
	c.cycles = s.Cycles
	c.ledger = s.Ledger
	c.EnsureCPUs(len(s.PerCPU))
	for i := range c.perCPU {
		if i < len(s.PerCPU) {
			c.perCPU[i] = s.PerCPU[i]
		} else {
			c.perCPU[i] = Ledger{}
		}
	}
	c.SetCPU(s.CPU)
}

func (m *Memory) captureSnap() MemSnap {
	s := MemSnap{
		FType: make([]byte, m.nframes),
		Refs:  append([]uint16(nil), m.refs...),
		Free:  make([]uint64, len(m.free)),
		Pages: make(map[uint64][]byte),
	}
	for i, t := range m.ftype {
		s.FType[i] = byte(t)
	}
	for i, f := range m.free {
		s.Free[i] = uint64(f)
	}
	for f, pg := range m.pages {
		if pg == nil {
			continue
		}
		zero := true
		for _, b := range pg {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		s.Pages[uint64(f)] = append([]byte(nil), pg[:]...)
	}
	return s
}

func (m *Memory) applySnap(s *MemSnap, sharePages bool) {
	for i := range m.ftype {
		m.ftype[i] = FrameType(s.FType[i])
	}
	copy(m.refs, s.Refs)
	m.free = m.free[:0]
	for _, f := range s.Free {
		m.free = append(m.free, Frame(f))
	}
	clear(m.pages)
	if sharePages {
		if m.shared == nil {
			m.shared = make([]bool, m.nframes)
		} else {
			clear(m.shared)
		}
	} else if m.shared != nil {
		clear(m.shared)
	}
	for f, b := range s.Pages {
		if len(b) != PageSize {
			continue
		}
		if sharePages {
			m.pages[f] = (*[PageSize]byte)(b)
			m.shared[f] = true
		} else {
			pg := new([PageSize]byte)
			copy(pg[:], b)
			m.pages[f] = pg
		}
	}
}

func (c *CPU) captureSnap() CPUSnap {
	s := CPUSnap{
		Regs:      c.Regs,
		ISTTarget: c.ISTTarget,
		IPIs:      append([]IPI(nil), c.ipi...),
		MMURoot:   uint64(c.MMU.root),
	}
	for v, te := range c.MMU.tlb {
		s.TLB = append(s.TLB, TLBSnapEntry{Page: uint64(v), Frame: uint64(te.frame), Flags: te.flags})
	}
	sort.Slice(s.TLB, func(i, j int) bool { return s.TLB[i].Page < s.TLB[j].Page })
	return s
}

func (c *CPU) applySnap(s *CPUSnap) {
	c.Regs = s.Regs
	c.ISTTarget = s.ISTTarget
	c.ipi = append(c.ipi[:0], s.IPIs...)
	c.MMU.root = Frame(s.MMURoot)
	c.MMU.tlb = make(map[Virt]tlbEntry, len(s.TLB))
	for _, e := range s.TLB {
		c.MMU.tlb[Virt(e.Page)] = tlbEntry{frame: Frame(e.Frame), flags: e.Flags}
	}
}

// ResetWalkCache drops every cached software walk. Restore calls it
// because cached walks describe the pre-restore page tables; by the
// cache's contract a cold start is invisible to the virtual clock.
func (u *MMU) ResetWalkCache() {
	if u.cache.frozen {
		panic("hw: walk-cache reset during a frozen (parallel user) phase")
	}
	clear(u.cache.walk)
	clear(u.cache.walkDeps)
}

func (d *Disk) captureSnap() DiskSnap {
	s := DiskSnap{Blocks: make(map[int][]byte), Reads: d.reads, Writes: d.writes, FailNext: d.failNext}
	for i, b := range d.blocks {
		if b != nil {
			s.Blocks[i] = append([]byte(nil), b...)
		}
	}
	return s
}

func (d *Disk) applySnap(s *DiskSnap, shareBlocks bool) {
	clear(d.blocks)
	for i, b := range s.Blocks {
		if i < 0 || i >= len(d.blocks) {
			continue
		}
		if shareBlocks {
			// WriteBlock/PokeBlock replace the block slice wholesale and
			// ReadBlock/PeekBlock copy out, so aliasing the image's block
			// is safe: the image bytes are never mutated in place.
			d.blocks[i] = b
		} else {
			d.blocks[i] = append([]byte(nil), b...)
		}
	}
	d.reads = s.Reads
	d.writes = s.Writes
	d.failNext = s.FailNext
}

func (n *NIC) captureSnap() NICSnap {
	s := NICSnap{
		BytesSent:      n.bytesSent,
		BytesReceived:  n.bytesReceived,
		PacketsDropped: n.packetsDropped,
	}
	// Snoop returns copies in global arrival order — exactly the wire
	// state the image must preserve.
	s.RX = n.Snoop()
	for port, d := range n.portDrops {
		s.PortDrops = append(s.PortDrops, PortDropSnap{Port: port, Drops: d})
	}
	sort.Slice(s.PortDrops, func(i, j int) bool { return s.PortDrops[i].Port < s.PortDrops[j].Port })
	return s
}

func (n *NIC) applySnap(s *NICSnap) {
	clear(n.rxq)
	clear(n.queuedBytes)
	clear(n.portDrops)
	n.rxPorts = n.rxPorts[:0]
	n.rxCount = 0
	n.nextSeq = 0
	// Requeue in arrival order; seq numbers regenerate identically
	// because delivery order is the serialized order.
	for _, p := range s.RX {
		cp := Packet{Port: p.Port, Payload: append([]byte(nil), p.Payload...)}
		if len(n.rxq[cp.Port]) == 0 {
			n.insertPort(cp.Port)
		}
		n.rxq[cp.Port] = append(n.rxq[cp.Port], rxPacket{pkt: cp, seq: n.nextSeq})
		n.nextSeq++
		n.rxCount++
		n.queuedBytes[cp.Port] += uint64(len(cp.Payload))
	}
	n.bytesSent = s.BytesSent
	n.bytesReceived = s.BytesReceived
	n.packetsDropped = s.PacketsDropped
	for _, pd := range s.PortDrops {
		n.portDrops[pd.Port] = pd.Drops
	}
}

func (i *IOMMU) captureSnap() IOMMUSnap {
	s := IOMMUSnap{LatchFrame: uint64(i.latchFrame)}
	for f, ok := range i.allowed {
		if ok {
			s.Allowed = append(s.Allowed, uint64(f))
		}
	}
	sort.Slice(s.Allowed, func(a, b int) bool { return s.Allowed[a] < s.Allowed[b] })
	return s
}

func (i *IOMMU) applySnap(s *IOMMUSnap) {
	clear(i.allowed)
	for _, f := range s.Allowed {
		i.allowed[Frame(f)] = true
	}
	i.latchFrame = Frame(s.LatchFrame)
}
