// Package hw models the hardware substrate that the Virtual Ghost
// reproduction runs on: physical memory and frames, a 4-level MMU with a
// TLB, a CPU with a register file and privilege levels, IST-style trap
// handling, an IOMMU and DMA engine, a TPM, and simple disk/NIC/console
// devices. Everything is deterministic and driven by a virtual cycle
// clock so that experiments are reproducible.
//
// The paper's prototype ran on real x86-64 hardware; this package is the
// synthetic equivalent (see DESIGN.md §2). The structures the security
// checks care about — page-table entries, physical frames, saved
// register state, IOMMU tables — are modelled faithfully; timing is
// modelled by the cost constants in this file.
package hw

import "fmt"

// Frequency is the nominal clock rate used to convert virtual cycles to
// seconds. It matches the paper's testbed (Intel i7-3770 at 3.4 GHz) so
// that native-column latencies land in the same order of magnitude as
// Table 2 of the paper.
const Frequency = 3.4e9 // cycles per second

// Cost constants: the single source of truth for how many virtual cycles
// each primitive event charges. The native latencies of Table 2 emerge
// from counts of these events along each kernel path; the Virtual Ghost
// latencies then emerge from the *additional* events its instrumentation
// and run-time checks introduce (mask ops, CFI checks, Interrupt Context
// save + register zeroing, MMU check walks). No ratio from the paper is
// hard-coded anywhere.
const (
	// CostMemAccess is charged for every load or store performed by
	// kernel or user code against simulated memory.
	CostMemAccess = 4
	// CostMaskCheck is charged by the sandboxing instrumentation for
	// the compare+or bit-masking sequence guarding one memory access.
	CostMaskCheck = 14
	// CostCFICheck is charged for one CFI label check (on a return or
	// an indirect call).
	CostCFICheck = 8
	// CostCFILabel is charged for executing a CFI label landing pad.
	CostCFILabel = 1
	// CostVerifyPerOp is charged per IR instruction by the static
	// admission checker that the translator runs over instrumented
	// output (a linear dataflow scan, amortized at translation/module-
	// load time, never on hot paths).
	CostVerifyPerOp = 3
	// CostALU is charged for one arithmetic/logic IR instruction.
	CostALU = 1
	// CostBranch is charged for a direct branch.
	CostBranch = 1
	// CostCall is charged for a direct call or return (base cost; CFI
	// checks are charged separately).
	CostCall = 4
	// CostTrapEntry is charged for the hardware part of a trap or
	// syscall entry (mode switch, IST stack switch).
	CostTrapEntry = 120
	// CostTrapExit is charged for the return-from-trap path.
	CostTrapExit = 100
	// CostICSave is charged by the SVA VM for copying the Interrupt
	// Context into VM internal memory (Virtual Ghost configs only).
	CostICSave = 420
	// CostICZero is charged for zeroing general-purpose registers
	// after the Interrupt Context is saved (Virtual Ghost only).
	CostICZero = 60
	// CostPTWalk is charged for one 4-level page-table walk on a TLB
	// miss.
	CostPTWalk = 60
	// CostTLBHit is charged for a TLB hit.
	CostTLBHit = 1
	// CostTLBFlush is charged for a full TLB flush (address-space
	// switch).
	CostTLBFlush = 80
	// CostMMUCheckPerPage is charged by the SVA VM for validating one
	// page-table update against the ghost/code/VM-memory constraints
	// (Virtual Ghost only).
	CostMMUCheckPerPage = 150
	// CostPageZero is charged for zeroing a 4 KiB frame.
	CostPageZero = 512
	// CostPageCrypt is charged for encrypting or decrypting one 4 KiB
	// page (used by the shadowing baseline on every OS access to an
	// application page, and by Virtual Ghost only for swap).
	CostPageCrypt = 9000
	// CostPageHash is charged for hashing one 4 KiB page (shadowing
	// baseline integrity checks, Virtual Ghost swap MACs).
	CostPageHash = 3500
	// CostContextSwitch is charged for a kernel context switch
	// (register save/restore, runqueue work), excluding TLB effects.
	CostContextSwitch = 700
	// CostIPISend is charged on the sending CPU for one inter-processor
	// interrupt: APIC programming plus the wait for the remote
	// acknowledgement (TLB shootdowns are synchronous).
	CostIPISend = 700
	// CostIPIDeliver is charged for the remote side of an IPI: the
	// interrupt entry, the handler (e.g. the invlpg loop of a TLB
	// shootdown), and the acknowledgement store.
	CostIPIDeliver = 500
	// CostBcopyPerByte is charged per byte for block copies
	// (copyin/copyout, memcpy) in addition to the per-call access
	// charge. Block copies charge one mask check per call, not per
	// byte, mirroring the prototype's memcpy instrumentation.
	CostBcopyPerByte = 1 // cycles per 8 bytes are charged as /8
	// CostCryptPerByte is charged per byte of application-level
	// encryption or decryption (AES-GCM in the ghosting libc).
	CostCryptPerByte = 2
)

// Clock is the virtual cycle counter for one machine, plus the tagged
// cost ledger that attributes every cycle to the mechanism that charged
// it. All durations in experiments are differences of Clock readings.
//
// Invariant: the per-tag ledger is an exact partition of the total —
// every path that advances cycles also credits exactly one tag, so
// Ledger().Total() == Cycles() always. The tagging refactor changed only
// *where* cycles are recorded, never *how many*: totals are bit-identical
// to the pre-tag accounting (pinned by golden_cycles.json).
type Clock struct {
	cycles uint64
	ledger Ledger
	// perCPU attributes charges to the CPU selected by SetCPU. Sized by
	// EnsureCPUs at machine construction; nil on bare clocks (tests),
	// in which case only the machine-wide ledger accumulates.
	perCPU []Ledger
	cpu    int
	// Trace context: host-side bookkeeping stamped onto trace events.
	// Setting it costs no virtual cycles.
	pid int32
	ctx uint32
	// tracer receives one event per charge when attached. The nil check
	// is the entire disabled-path cost: no allocations, no cycles.
	tracer *Tracer

	// Shard state for the epoch/barrier scheduler (DESIGN.md §14).
	// Between BeginShardPhase and EndShardPhase, ChargeOn accumulates
	// into per-CPU shards instead of the global counters, so CPUs can
	// charge concurrently from host goroutines without sharing any
	// mutable word. EndShardPhase merges the shards in CPU-id order;
	// totals are sums of charges, so the merged ledger is bit-identical
	// no matter how the host interleaved the CPUs.
	sharding  bool
	shardBase uint64 // global cycles at BeginShardPhase (view origin)
	shards    []clockShard

	// idleSources are the kernels sharing this clock. When every source
	// is idle (no runnable work anywhere) but timers are armed, the
	// schedulers skip virtual time forward to the earliest expiry
	// instead of busy-waiting — the simulation analogue of the CPU
	// halting until the next timer interrupt. Host-side wiring, not
	// architectural state (re-registered at boot, never serialized).
	idleSources []IdleSource
}

// IdleSource is one scheduler's view for the idle-time protocol:
// the earliest virtual-time timer it has armed (hasTimer=false when
// none) and whether it has runnable work right now (a runnable process
// or undelivered network input).
type IdleSource interface {
	IdleInfo() (next uint64, hasTimer, runnable bool)
}

// RegisterIdleSource adds a scheduler to the clock's idle protocol.
func (c *Clock) RegisterIdleSource(s IdleSource) {
	c.idleSources = append(c.idleSources, s)
}

// IdleTarget returns the earliest armed timer expiry across every
// registered source, but only if no source has runnable work — a
// runnable process anywhere on the shared clock means virtual time
// must not skip. ok=false when skipping is not allowed or no timer is
// armed.
func (c *Clock) IdleTarget() (uint64, bool) {
	var best uint64
	found := false
	for _, s := range c.idleSources {
		next, has, runnable := s.IdleInfo()
		if runnable {
			return 0, false
		}
		if has && (!found || next < best) {
			best, found = next, true
		}
	}
	return best, found
}

// clockShard is one CPU's private accumulator during a parallel user
// phase. Exactly one goroutine (that CPU's) touches it between the
// barriers; the scheduler reads it only after the phase joins.
type clockShard struct {
	cycles uint64
	ledger Ledger
	// Trace context stamped onto this CPU's shard events (the PID of
	// the process dispatched on this CPU), set by the scheduler in the
	// serial schedule phase.
	pid int32
	ctx uint32
	// ring is the per-CPU trace ring (satellite of ISSUE 6): events
	// recorded during the sharded phase land here, lock-free, and are
	// merged timestamp-ordered into the main tracer at the barrier.
	ring traceRing
}

// Cycles returns the current virtual time in cycles.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Charge advances the clock by n cycles attributed to tag. This is the
// single entry point through which all simulated time passes.
//
// During a shard phase the global counters are frozen: every charge
// must arrive through ChargeOn with an explicit CPU so it lands in
// that CPU's private shard. A global charge here would be a data race
// and a determinism bug, so it panics loudly instead of corrupting
// the ledger.
func (c *Clock) Charge(tag Tag, n uint64) {
	if c.sharding {
		panic("hw: global Clock.Charge during a sharded user phase (use ChargeOn, or run this work in the kernel phase)")
	}
	start := c.cycles
	c.cycles += n
	c.ledger[tag] += n
	if c.perCPU != nil {
		c.perCPU[c.cpu][tag] += n
	}
	if c.tracer != nil && n > 0 {
		c.tracer.record(TraceEvent{
			Tag: tag, CPU: int32(c.cpu), PID: c.pid, Ctx: c.ctx,
			Start: start, Dur: n,
		})
	}
}

// ChargeOn charges n cycles attributed to tag on behalf of a specific
// CPU. Outside a shard phase it is exactly Charge (the scheduler keeps
// the clock's selected CPU in sync with the executing CPU, so the
// attribution is unchanged); inside a shard phase it accumulates into
// the CPU's private shard so concurrent CPUs never share a counter.
// Hardware owned by one CPU (the CPU core itself, its MMU) and
// process-context compute charges route through here.
func (c *Clock) ChargeOn(cpu int, tag Tag, n uint64) {
	if !c.sharding {
		c.Charge(tag, n)
		return
	}
	s := &c.shards[cpu]
	start := c.shardBase + s.cycles
	s.cycles += n
	s.ledger[tag] += n
	if c.tracer != nil && n > 0 {
		s.ring.record(TraceEvent{
			Tag: tag, CPU: int32(cpu), PID: s.pid, Ctx: s.ctx,
			Start: start, Dur: n,
		})
	}
}

// ChargeBytesOn is ChargeBytes routed through ChargeOn (same per-8-byte
// rounding rule).
func (c *Clock) ChargeBytesOn(cpu int, tag Tag, n int, costPer8 uint64) {
	words := uint64(n+7) / 8
	c.ChargeOn(cpu, tag, words*costPer8)
}

// BeginShardPhase freezes the global counters and opens per-CPU shards
// for n CPUs. Called by the epoch scheduler (serial context) before
// the user phase; until EndShardPhase, each CPU i may charge only via
// ChargeOn(i, ...) and only from one goroutine.
func (c *Clock) BeginShardPhase(n int) {
	if c.sharding {
		panic("hw: BeginShardPhase while already sharding")
	}
	c.EnsureCPUs(n)
	c.growShards(n)
	for i := 0; i < n; i++ {
		s := &c.shards[i]
		s.cycles = 0
		s.ledger = Ledger{}
		if c.tracer != nil && s.ring.buf == nil {
			s.ring.init(DefaultTraceCapacity)
		}
	}
	c.shardBase = c.cycles
	c.sharding = true
}

// EndShardPhase merges the shards into the global clock in CPU-id
// order and replays the per-CPU trace rings into the attached tracer,
// timestamp-ordered (ties broken by CPU id). Totals are order-
// independent sums, so the merged state is identical whether the
// phase ran serially or on concurrent host goroutines.
func (c *Clock) EndShardPhase() {
	if !c.sharding {
		panic("hw: EndShardPhase without BeginShardPhase")
	}
	c.sharding = false
	for i := range c.shards {
		s := &c.shards[i]
		if s.cycles == 0 && c.tracer == nil {
			continue
		}
		c.cycles += s.cycles
		for t := Tag(0); t < NumTags; t++ {
			if v := s.ledger[t]; v != 0 {
				c.ledger[t] += v
				if c.perCPU != nil {
					c.perCPU[i][t] += v
				}
			}
		}
	}
	if c.tracer != nil {
		c.tracer.mergeShardRings(c.shards)
	}
}

// Sharding reports whether a shard phase is open (user segments are —
// or may be — executing on host goroutines).
func (c *Clock) Sharding() bool { return c.sharding }

// ShardCycles returns the cycles CPU cpu has accumulated in the open
// shard phase. The scheduler reads it after the phase joins to credit
// per-CPU busy time.
func (c *Clock) ShardCycles(cpu int) uint64 {
	if cpu < 0 || cpu >= len(c.shards) {
		return 0
	}
	return c.shards[cpu].cycles
}

// CyclesOn returns CPU cpu's view of the current time: during a shard
// phase, the phase origin plus the CPU's own accumulated cycles
// (monotonic per CPU, independent of its siblings); otherwise the
// global cycle counter.
func (c *Clock) CyclesOn(cpu int) uint64 {
	if c.sharding && cpu >= 0 && cpu < len(c.shards) {
		return c.shardBase + c.shards[cpu].cycles
	}
	return c.cycles
}

// SetShardContext stamps CPU cpu's shard trace events with a process
// id and context word. The scheduler sets it during the serial
// schedule phase, before user segments run. Costs no virtual cycles.
func (c *Clock) SetShardContext(cpu int, pid int32, ctx uint32) {
	if cpu < 0 {
		return
	}
	c.growShards(cpu + 1)
	c.shards[cpu].pid, c.shards[cpu].ctx = pid, ctx
}

// growShards sizes the shard slice for at least n CPUs.
func (c *Clock) growShards(n int) {
	if n > len(c.shards) {
		grown := make([]clockShard, n)
		copy(grown, c.shards)
		c.shards = grown
	}
}

// ChargeBytes charges the per-byte cost for an n-byte block operation at
// the given per-8-byte cost, attributed to tag. Charging is per 8-byte
// word, rounded up — a 1-byte copy costs one word (the rounding rule is
// pinned by TestAdvanceBytesRounding).
func (c *Clock) ChargeBytes(tag Tag, n int, costPer8 uint64) {
	words := uint64(n+7) / 8
	c.Charge(tag, words*costPer8)
}

// Advance charges n unattributed cycles (TagOther). Retained for tests
// that simulate the passage of time; production charge paths use Charge
// with a real tag — a source-scan test keeps raw Advance calls out of
// non-test code.
func (c *Clock) Advance(n uint64) { c.Charge(TagOther, n) }

// AdvanceBytes charges the per-byte cost for an n-byte block operation
// at the given per-8-byte cost, unattributed (TagOther). See Advance.
func (c *Clock) AdvanceBytes(n int, costPer8 uint64) {
	c.ChargeBytes(TagOther, n, costPer8)
}

// Ledger returns a snapshot of the machine-wide per-tag cycle account.
func (c *Clock) Ledger() Ledger { return c.ledger }

// CPULedger returns a snapshot of the per-tag account for one CPU, or a
// zero ledger if per-CPU tracking is not enabled or the CPU is out of
// range.
func (c *Clock) CPULedger(cpu int) Ledger {
	if cpu < 0 || cpu >= len(c.perCPU) {
		return Ledger{}
	}
	return c.perCPU[cpu]
}

// EnsureCPUs enables per-CPU attribution for at least n CPUs. Machines
// call this at construction; on a shared clock (networked pairs) the
// slice grows to the largest machine.
func (c *Clock) EnsureCPUs(n int) {
	if n > len(c.perCPU) {
		grown := make([]Ledger, n)
		copy(grown, c.perCPU)
		c.perCPU = grown
	}
}

// SetCPU selects the CPU subsequent charges are attributed to. Costs no
// virtual cycles.
func (c *Clock) SetCPU(cpu int) {
	if cpu >= 0 {
		c.EnsureCPUs(cpu + 1)
		c.cpu = cpu
	}
}

// CPU returns the currently selected CPU.
func (c *Clock) CPU() int { return c.cpu }

// SetContext stamps subsequent trace events with a process id and a
// context word (by convention the in-flight syscall number, or 0).
// Host-side bookkeeping only: costs no virtual cycles.
func (c *Clock) SetContext(pid int32, ctx uint32) {
	c.pid, c.ctx = pid, ctx
}

// Context returns the current trace context, for save/restore around
// nested dispatch.
func (c *Clock) Context() (pid int32, ctx uint32) { return c.pid, c.ctx }

// AttachTracer directs one event per charge into t. Pass nil to detach;
// a detached clock's charge path costs one nil check and nothing else.
func (c *Clock) AttachTracer(t *Tracer) { c.tracer = t }

// TracerAttached reports whether a tracer is receiving events.
func (c *Clock) TracerAttached() bool { return c.tracer != nil }

// Seconds converts a cycle count to seconds at the nominal frequency.
func Seconds(cycles uint64) float64 { return float64(cycles) / Frequency }

// Micros converts a cycle count to microseconds.
func Micros(cycles uint64) float64 { return Seconds(cycles) * 1e6 }

// FormatMicros renders a cycle count as microseconds for table output.
func FormatMicros(cycles uint64) string {
	return fmt.Sprintf("%.3g", Micros(cycles))
}
