package hw

import (
	"errors"
	"fmt"
)

// Virtual address space layout, mirroring the prototype (paper §5):
// user space in the low canonical half, the ghost partition in the
// 512 GiB slice 0xffffff0000000000–0xffffff8000000000, and kernel space
// above it. The sandboxing instrumentation's bit trick relies on this
// alignment: OR-ing bit 39 into any ghost-partition address produces a
// kernel-space address.
const (
	UserBase  Virt = 0x0000000000001000
	UserTop   Virt = 0x00007fffffffffff
	GhostBase Virt = 0xffffff0000000000
	GhostTop  Virt = 0xffffff8000000000 // exclusive
	KernBase  Virt = 0xffffff8000000000
	KernTop   Virt = 0xffffffffffffffff
	// GhostEscapeBit is the bit the sandbox instrumentation ORs into
	// addresses at or above GhostBase (1<<39), moving them out of the
	// ghost partition and into kernel space.
	GhostEscapeBit Virt = 1 << 39
)

// IsUser reports whether v lies in the user partition.
func IsUser(v Virt) bool { return v >= UserBase && v <= UserTop }

// IsGhost reports whether v lies in the ghost partition.
func IsGhost(v Virt) bool { return v >= GhostBase && v < GhostTop }

// IsKernel reports whether v lies in the kernel partition.
func IsKernel(v Virt) bool { return v >= KernBase }

// PTE flag bits (x86-64 style).
const (
	PTEPresent  uint64 = 1 << 0
	PTEWrite    uint64 = 1 << 1
	PTEUser     uint64 = 1 << 2
	PTEAccessed uint64 = 1 << 5
	PTEDirty    uint64 = 1 << 6
	PTENoExec   uint64 = 1 << 63
	pteAddrMask uint64 = 0x000ffffffffff000
)

// PTE is one page-table entry.
type PTE uint64

// Present reports the present bit.
func (e PTE) Present() bool { return uint64(e)&PTEPresent != 0 }

// Writable reports the writable bit.
func (e PTE) Writable() bool { return uint64(e)&PTEWrite != 0 }

// UserOK reports the user-accessible bit.
func (e PTE) UserOK() bool { return uint64(e)&PTEUser != 0 }

// NoExec reports the no-execute bit.
func (e PTE) NoExec() bool { return uint64(e)&PTENoExec != 0 }

// Frame returns the frame the entry points at.
func (e PTE) Frame() Frame { return FrameOf(Phys(uint64(e) & pteAddrMask)) }

// MakePTE builds an entry from a frame and flags.
func MakePTE(f Frame, flags uint64) PTE {
	return PTE(uint64(f.Addr())&pteAddrMask | flags)
}

// Page-table geometry: 4 levels, 9 bits each, 512 entries per table.
const (
	ptLevels  = 4
	ptEntries = 512
)

func ptIndex(v Virt, level int) uint64 {
	// level 3 = root (PML4), level 0 = leaf (PT).
	shift := PageShift + 9*level
	return (uint64(v) >> uint(shift)) & (ptEntries - 1)
}

// Access describes the kind of memory access being translated.
type Access uint8

const (
	// AccRead is a data load.
	AccRead Access = iota
	// AccWrite is a data store.
	AccWrite
	// AccExec is an instruction fetch.
	AccExec
)

func (a Access) String() string {
	switch a {
	case AccRead:
		return "read"
	case AccWrite:
		return "write"
	case AccExec:
		return "exec"
	}
	return "access?"
}

// Fault is a translation fault (page fault or protection violation).
type Fault struct {
	VA     Virt
	Acc    Access
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("hw: page fault at %#x (%s): %s", uint64(f.VA), f.Acc, f.Reason)
}

// ErrNotMapped distinguishes "no translation" faults.
var ErrNotMapped = errors.New("not mapped")

// MMU performs virtual-to-physical translation using 4-level page
// tables that live in simulated physical memory (FramePageTable frames),
// exactly as the real hardware walker does. A per-root TLB caches leaf
// translations; address-space switches flush it.
type MMU struct {
	mem   *Memory
	clock *Clock
	root  Frame // current CR3 (root page-table frame); 0 = none
	tlb   map[Virt]tlbEntry
}

type tlbEntry struct {
	frame Frame
	flags uint64
}

// NewMMU creates an MMU over the given memory.
func NewMMU(mem *Memory, clock *Clock) *MMU {
	return &MMU{mem: mem, clock: clock, tlb: make(map[Virt]tlbEntry)}
}

// Root returns the current root page-table frame (CR3).
func (u *MMU) Root() Frame { return u.root }

// SetRoot switches address spaces (loads CR3) and flushes the TLB.
func (u *MMU) SetRoot(f Frame) {
	u.root = f
	u.FlushTLB()
	if u.clock != nil {
		u.clock.Advance(CostTLBFlush)
	}
}

// FlushTLB invalidates all cached translations.
func (u *MMU) FlushTLB() {
	if len(u.tlb) > 0 {
		u.tlb = make(map[Virt]tlbEntry)
	}
}

// InvalidatePage drops one page's cached translation (invlpg).
func (u *MMU) InvalidatePage(v Virt) { delete(u.tlb, PageOf(v)) }

// Translate walks the page tables for v in the current address space and
// checks permissions for the given access at the given privilege.
// userMode=true means CPL 3. It returns the physical address.
func (u *MMU) Translate(v Virt, acc Access, userMode bool) (Phys, error) {
	page := PageOf(v)
	off := Phys(v - page)
	if te, ok := u.tlb[page]; ok {
		if u.clock != nil {
			u.clock.Advance(CostTLBHit)
		}
		if err := checkPerm(te.flags, acc, userMode, v); err != nil {
			return 0, err
		}
		return te.frame.Addr() + off, nil
	}
	if u.root == 0 {
		return 0, &Fault{VA: v, Acc: acc, Reason: "no address space loaded"}
	}
	if u.clock != nil {
		u.clock.Advance(CostPTWalk)
	}
	table := u.root
	// Accumulate the AND of the user/write permissions along the walk,
	// as x86 does.
	effFlags := PTEWrite | PTEUser
	for level := ptLevels - 1; level >= 1; level-- {
		e, err := u.readPTE(table, ptIndex(v, level))
		if err != nil {
			return 0, err
		}
		if !e.Present() {
			return 0, &Fault{VA: v, Acc: acc, Reason: ErrNotMapped.Error()}
		}
		effFlags &= uint64(e) & (PTEWrite | PTEUser)
		table = e.Frame()
	}
	leaf, err := u.readPTE(table, ptIndex(v, 0))
	if err != nil {
		return 0, err
	}
	if !leaf.Present() {
		return 0, &Fault{VA: v, Acc: acc, Reason: ErrNotMapped.Error()}
	}
	flags := uint64(leaf)&^(PTEWrite|PTEUser) | (uint64(leaf) & effFlags)
	u.tlb[page] = tlbEntry{frame: leaf.Frame(), flags: flags}
	if err := checkPerm(flags, acc, userMode, v); err != nil {
		return 0, err
	}
	return leaf.Frame().Addr() + off, nil
}

func checkPerm(flags uint64, acc Access, userMode bool, v Virt) error {
	if userMode && flags&PTEUser == 0 {
		return &Fault{VA: v, Acc: acc, Reason: "supervisor page accessed from user mode"}
	}
	switch acc {
	case AccWrite:
		if flags&PTEWrite == 0 {
			return &Fault{VA: v, Acc: acc, Reason: "write to read-only page"}
		}
	case AccExec:
		if flags&PTENoExec != 0 {
			return &Fault{VA: v, Acc: acc, Reason: "execute of no-exec page"}
		}
	}
	return nil
}

// readPTE loads entry idx of the page-table page in frame table.
func (u *MMU) readPTE(table Frame, idx uint64) (PTE, error) {
	v, err := u.mem.Read64(table.Addr() + Phys(idx*8))
	if err != nil {
		return 0, err
	}
	return PTE(v), nil
}

// RawWritePTE stores a page-table entry directly into physical memory.
// This is the *hardware* primitive: on a real machine any supervisor
// store can do this, which is exactly why Virtual Ghost makes the SVA VM
// the only code that may reach page-table frames. The SVA layer
// (internal/core) performs its checks and then calls this. A hostile
// kernel on the Native configuration can call it freely.
func (u *MMU) RawWritePTE(table Frame, idx uint64, e PTE) error {
	if idx >= ptEntries {
		return fmt.Errorf("hw: PTE index %d out of range", idx)
	}
	return u.mem.Write64(table.Addr()+Phys(idx*8), uint64(e))
}

// ReadPTE reads a page-table entry (used by the SVA checks and by the
// kernel's software page-table walks).
func (u *MMU) ReadPTE(table Frame, idx uint64) (PTE, error) {
	return u.readPTE(table, idx)
}

// WalkLeaf returns the leaf PTE location (table frame + index) for v in
// the address space rooted at root, allocating nothing. It reports
// whether every intermediate level was present.
func (u *MMU) WalkLeaf(root Frame, v Virt) (table Frame, idx uint64, ok bool, err error) {
	table = root
	for level := ptLevels - 1; level >= 1; level-- {
		e, err := u.readPTE(table, ptIndex(v, level))
		if err != nil {
			return 0, 0, false, err
		}
		if !e.Present() {
			return 0, 0, false, nil
		}
		table = e.Frame()
	}
	return table, ptIndex(v, 0), true, nil
}

// EnsureTables walks from root toward the leaf level for v, allocating
// missing intermediate page-table pages with alloc, writing entries via
// write. It returns the leaf table frame and index. alloc and write are
// callbacks so that the caller (kernel via SVA, or a hostile kernel
// directly) controls frame provenance and entry flags.
func (u *MMU) EnsureTables(root Frame, v Virt,
	alloc func() (Frame, error),
	write func(table Frame, idx uint64, e PTE) error,
) (Frame, uint64, error) {
	table := root
	for level := ptLevels - 1; level >= 1; level-- {
		idx := ptIndex(v, level)
		e, err := u.readPTE(table, idx)
		if err != nil {
			return 0, 0, err
		}
		if !e.Present() {
			nf, err := alloc()
			if err != nil {
				return 0, 0, err
			}
			// Intermediate entries carry permissive flags; real
			// permission bits are enforced at the leaf and by the
			// AND-walk in Translate.
			if err := write(table, idx, MakePTE(nf, PTEPresent|PTEWrite|PTEUser)); err != nil {
				return 0, 0, err
			}
			table = nf
			continue
		}
		table = e.Frame()
	}
	return table, ptIndex(v, 0), nil
}
