package hw

import (
	"errors"
	"fmt"
)

// Virtual address space layout, mirroring the prototype (paper §5):
// user space in the low canonical half, the ghost partition in the
// 512 GiB slice 0xffffff0000000000–0xffffff8000000000, and kernel space
// above it. The sandboxing instrumentation's bit trick relies on this
// alignment: OR-ing bit 39 into any ghost-partition address produces a
// kernel-space address.
const (
	UserBase  Virt = 0x0000000000001000
	UserTop   Virt = 0x00007fffffffffff
	GhostBase Virt = 0xffffff0000000000
	GhostTop  Virt = 0xffffff8000000000 // exclusive
	KernBase  Virt = 0xffffff8000000000
	KernTop   Virt = 0xffffffffffffffff
	// GhostEscapeBit is the bit the sandbox instrumentation ORs into
	// addresses at or above GhostBase (1<<39), moving them out of the
	// ghost partition and into kernel space.
	GhostEscapeBit Virt = 1 << 39
)

// IsUser reports whether v lies in the user partition.
func IsUser(v Virt) bool { return v >= UserBase && v <= UserTop }

// IsGhost reports whether v lies in the ghost partition.
func IsGhost(v Virt) bool { return v >= GhostBase && v < GhostTop }

// IsKernel reports whether v lies in the kernel partition.
func IsKernel(v Virt) bool { return v >= KernBase }

// PTE flag bits (x86-64 style).
const (
	PTEPresent  uint64 = 1 << 0
	PTEWrite    uint64 = 1 << 1
	PTEUser     uint64 = 1 << 2
	PTEAccessed uint64 = 1 << 5
	PTEDirty    uint64 = 1 << 6
	PTENoExec   uint64 = 1 << 63
	pteAddrMask uint64 = 0x000ffffffffff000
)

// PTE is one page-table entry.
type PTE uint64

// Present reports the present bit.
func (e PTE) Present() bool { return uint64(e)&PTEPresent != 0 }

// Writable reports the writable bit.
func (e PTE) Writable() bool { return uint64(e)&PTEWrite != 0 }

// UserOK reports the user-accessible bit.
func (e PTE) UserOK() bool { return uint64(e)&PTEUser != 0 }

// NoExec reports the no-execute bit.
func (e PTE) NoExec() bool { return uint64(e)&PTENoExec != 0 }

// Frame returns the frame the entry points at.
func (e PTE) Frame() Frame { return FrameOf(Phys(uint64(e) & pteAddrMask)) }

// MakePTE builds an entry from a frame and flags.
func MakePTE(f Frame, flags uint64) PTE {
	return PTE(uint64(f.Addr())&pteAddrMask | flags)
}

// Page-table geometry: 4 levels, 9 bits each, 512 entries per table.
const (
	ptLevels  = 4
	ptEntries = 512
)

func ptIndex(v Virt, level int) uint64 {
	// level 3 = root (PML4), level 0 = leaf (PT).
	shift := PageShift + 9*level
	return (uint64(v) >> uint(shift)) & (ptEntries - 1)
}

// Access describes the kind of memory access being translated.
type Access uint8

const (
	// AccRead is a data load.
	AccRead Access = iota
	// AccWrite is a data store.
	AccWrite
	// AccExec is an instruction fetch.
	AccExec
)

func (a Access) String() string {
	switch a {
	case AccRead:
		return "read"
	case AccWrite:
		return "write"
	case AccExec:
		return "exec"
	}
	return "access?"
}

// Fault is a translation fault (page fault or protection violation).
type Fault struct {
	VA     Virt
	Acc    Access
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("hw: page fault at %#x (%s): %s", uint64(f.VA), f.Acc, f.Reason)
}

// ErrNotMapped distinguishes "no translation" faults.
var ErrNotMapped = errors.New("not mapped")

// MMU performs virtual-to-physical translation using 4-level page
// tables that live in simulated physical memory (FramePageTable frames),
// exactly as the real hardware walker does. A per-root TLB caches leaf
// translations; address-space switches flush it.
//
// Alongside the modeled TLB the MMU keeps a host-side *walk cache* of
// completed software walks, keyed by (root, page) so it is valid across
// address-space switches. It is a pure simulator speedup: users of
// CachedLeaf charge virtual time as if they had walked the tables. Its
// correctness contract is strict invalidation — every way a page-table
// byte can change (RawWritePTE, raw physical stores, frame zero/free/
// retype, explicit InvalidatePageIn) drops the affected entries, so a
// cached translation can never outlive the mapping it describes.
type MMU struct {
	mem   *Memory
	clock *Clock
	// cpu is the owning CPU's id, so translation charges stay on that
	// CPU's shard when the epoch scheduler runs user segments on
	// concurrent host goroutines (0 for the boot CPU and bare MMUs).
	cpu  int
	root Frame // current CR3 (root page-table frame); 0 = none
	tlb  map[Virt]tlbEntry

	// cache is the host-side walk cache. It caches completed software
	// walks of *physical memory*, which all CPUs share, so on a
	// multi-CPU machine every MMU points at one cache (per-CPU state is
	// the modeled TLB above, never the walk cache — a stale shared
	// entry would be a simulator bug, while a stale TLB entry is a
	// modeled hardware hazard).
	cache *walkCache
}

// walkCache is the shared host-side cache of completed software walks;
// see the MMU comment above for its strict-invalidation contract.
//
// Concurrency contract (DESIGN.md §14): during a parallel user phase
// the cache is *frozen* — concurrent CPUs may read it lock-free, but
// nothing may insert or invalidate until the epoch barrier. Mutation
// (mapping updates, frame frees/retypes, module loads) is kernel work,
// which the epoch scheduler serializes at the barrier, so on a correct
// tree the freeze is free; Freeze/Unfreeze plus the panics below turn
// any violation into a loud failure instead of a data race.
type walkCache struct {
	walk     map[walkKey]walkEntry
	walkDeps map[Frame]map[walkKey]struct{} // table frame -> entries whose walk traversed it
	frozen   bool
}

func newWalkCache() *walkCache {
	return &walkCache{
		walk:     make(map[walkKey]walkEntry),
		walkDeps: make(map[Frame]map[walkKey]struct{}),
	}
}

type tlbEntry struct {
	frame Frame
	flags uint64
}

// walkKey identifies a cached software walk: the address space it was
// performed in (root frame, standing in for CR3) and the page.
type walkKey struct {
	root Frame
	page Virt
}

// walkEntry is a completed positive walk: the leaf PTE plus every
// page-table frame the walk read, root included, for dependency-based
// invalidation.
type walkEntry struct {
	pte    PTE
	tables [ptLevels]Frame
}

// NewMMU creates an MMU over the given memory.
func NewMMU(mem *Memory, clock *Clock) *MMU {
	u := &MMU{
		mem:   mem,
		clock: clock,
		tlb:   make(map[Virt]tlbEntry),
		cache: newWalkCache(),
	}
	mem.SetPTWatch(u.invalidateTableFrame)
	return u
}

// NewMMUSharing creates an MMU for an additional CPU of the same
// machine. It has its own TLB (the per-CPU hazard the shootdown
// protocol exists for) but shares the primary MMU's walk cache, since
// that cache describes the shared physical page tables. The primary's
// page-table watch already invalidates the shared cache, so no second
// watch is registered.
func NewMMUSharing(mem *Memory, clock *Clock, primary *MMU) *MMU {
	return &MMU{
		mem:   mem,
		clock: clock,
		tlb:   make(map[Virt]tlbEntry),
		cache: primary.cache,
	}
}

// Root returns the current root page-table frame (CR3).
func (u *MMU) Root() Frame { return u.root }

// SetRoot switches address spaces (loads CR3) and flushes the TLB.
func (u *MMU) SetRoot(f Frame) {
	u.root = f
	u.FlushTLB()
	if u.clock != nil {
		u.clock.ChargeOn(u.cpu, TagTLB, CostTLBFlush)
	}
}

// FlushTLB invalidates all cached translations.
func (u *MMU) FlushTLB() {
	if len(u.tlb) > 0 {
		u.tlb = make(map[Virt]tlbEntry)
	}
}

// InvalidatePage drops one page's cached translation (invlpg). Like
// the real instruction it is strictly local to this CPU's TLB; remote
// TLBs require the shootdown protocol (Machine.ShootdownFrame).
func (u *MMU) InvalidatePage(v Virt) { delete(u.tlb, PageOf(v)) }

// HoldsFrame reports whether this TLB caches any translation that
// resolves to frame f. Machine.staleTranslationCheck uses it to refuse
// freeing or retyping a frame a remote CPU could still reach.
func (u *MMU) HoldsFrame(f Frame) bool {
	for _, te := range u.tlb {
		if te.frame == f {
			return true
		}
	}
	return false
}

// FlushFrame drops every TLB entry that maps frame f — the remote half
// of a TLB shootdown (the invlpg loop run in the IPI handler).
func (u *MMU) FlushFrame(f Frame) {
	for v, te := range u.tlb {
		if te.frame == f {
			delete(u.tlb, v)
		}
	}
}

// Translate walks the page tables for v in the current address space and
// checks permissions for the given access at the given privilege.
// userMode=true means CPL 3. It returns the physical address.
func (u *MMU) Translate(v Virt, acc Access, userMode bool) (Phys, error) {
	page := PageOf(v)
	off := Phys(v - page)
	if te, ok := u.tlb[page]; ok {
		if u.clock != nil {
			u.clock.ChargeOn(u.cpu, TagTLB, CostTLBHit)
		}
		if err := checkPerm(te.flags, acc, userMode, v); err != nil {
			return 0, err
		}
		return te.frame.Addr() + off, nil
	}
	if u.root == 0 {
		return 0, &Fault{VA: v, Acc: acc, Reason: "no address space loaded"}
	}
	if u.clock != nil {
		u.clock.ChargeOn(u.cpu, TagTLB, CostPTWalk)
	}
	table := u.root
	// Accumulate the AND of the user/write permissions along the walk,
	// as x86 does.
	effFlags := PTEWrite | PTEUser
	for level := ptLevels - 1; level >= 1; level-- {
		e, err := u.readPTE(table, ptIndex(v, level))
		if err != nil {
			return 0, err
		}
		if !e.Present() {
			return 0, &Fault{VA: v, Acc: acc, Reason: ErrNotMapped.Error()}
		}
		effFlags &= uint64(e) & (PTEWrite | PTEUser)
		table = e.Frame()
	}
	leaf, err := u.readPTE(table, ptIndex(v, 0))
	if err != nil {
		return 0, err
	}
	if !leaf.Present() {
		return 0, &Fault{VA: v, Acc: acc, Reason: ErrNotMapped.Error()}
	}
	flags := uint64(leaf)&^(PTEWrite|PTEUser) | (uint64(leaf) & effFlags)
	u.tlb[page] = tlbEntry{frame: leaf.Frame(), flags: flags}
	if err := checkPerm(flags, acc, userMode, v); err != nil {
		return 0, err
	}
	return leaf.Frame().Addr() + off, nil
}

func checkPerm(flags uint64, acc Access, userMode bool, v Virt) error {
	if userMode && flags&PTEUser == 0 {
		return &Fault{VA: v, Acc: acc, Reason: "supervisor page accessed from user mode"}
	}
	switch acc {
	case AccWrite:
		if flags&PTEWrite == 0 {
			return &Fault{VA: v, Acc: acc, Reason: "write to read-only page"}
		}
	case AccExec:
		if flags&PTENoExec != 0 {
			return &Fault{VA: v, Acc: acc, Reason: "execute of no-exec page"}
		}
	}
	return nil
}

// readPTE loads entry idx of the page-table page in frame table.
func (u *MMU) readPTE(table Frame, idx uint64) (PTE, error) {
	v, err := u.mem.Read64(table.Addr() + Phys(idx*8))
	if err != nil {
		return 0, err
	}
	return PTE(v), nil
}

// RawWritePTE stores a page-table entry directly into physical memory.
// This is the *hardware* primitive: on a real machine any supervisor
// store can do this, which is exactly why Virtual Ghost makes the SVA VM
// the only code that may reach page-table frames. The SVA layer
// (internal/core) performs its checks and then calls this. A hostile
// kernel on the Native configuration can call it freely.
func (u *MMU) RawWritePTE(table Frame, idx uint64, e PTE) error {
	if idx >= ptEntries {
		return fmt.Errorf("hw: PTE index %d out of range", idx)
	}
	if err := u.mem.Write64(table.Addr()+Phys(idx*8), uint64(e)); err != nil {
		return err
	}
	// Any cached walk that traversed this table may now be stale. This
	// covers tables the kernel never declared as FramePageTable (the
	// Memory-level watch only sees typed frames), so hostile Native
	// kernels cannot bypass it.
	u.invalidateTableFrame(table)
	return nil
}

// ReadPTE reads a page-table entry (used by the SVA checks and by the
// kernel's software page-table walks).
func (u *MMU) ReadPTE(table Frame, idx uint64) (PTE, error) {
	return u.readPTE(table, idx)
}

// WalkLeaf returns the leaf PTE location (table frame + index) for v in
// the address space rooted at root, allocating nothing. It reports
// whether every intermediate level was present.
func (u *MMU) WalkLeaf(root Frame, v Virt) (table Frame, idx uint64, ok bool, err error) {
	table = root
	for level := ptLevels - 1; level >= 1; level-- {
		e, err := u.readPTE(table, ptIndex(v, level))
		if err != nil {
			return 0, 0, false, err
		}
		if !e.Present() {
			return 0, 0, false, nil
		}
		table = e.Frame()
	}
	return table, ptIndex(v, 0), true, nil
}

// EnsureTables walks from root toward the leaf level for v, allocating
// missing intermediate page-table pages with alloc, writing entries via
// write. It returns the leaf table frame and index. alloc and write are
// callbacks so that the caller (kernel via SVA, or a hostile kernel
// directly) controls frame provenance and entry flags.
func (u *MMU) EnsureTables(root Frame, v Virt,
	alloc func() (Frame, error),
	write func(table Frame, idx uint64, e PTE) error,
) (Frame, uint64, error) {
	table := root
	for level := ptLevels - 1; level >= 1; level-- {
		idx := ptIndex(v, level)
		e, err := u.readPTE(table, idx)
		if err != nil {
			return 0, 0, err
		}
		if !e.Present() {
			nf, err := alloc()
			if err != nil {
				return 0, 0, err
			}
			// Intermediate entries carry permissive flags; real
			// permission bits are enforced at the leaf and by the
			// AND-walk in Translate.
			if err := write(table, idx, MakePTE(nf, PTEPresent|PTEWrite|PTEUser)); err != nil {
				return 0, 0, err
			}
			table = nf
			continue
		}
		table = e.Frame()
	}
	return table, ptIndex(v, 0), nil
}

// CachedLeaf returns the leaf PTE for v in the address space rooted at
// root, serving repeated lookups from the walk cache. ok is false when
// any level of the walk is non-present (negative results are never
// cached). Callers model their own timing: a hit here must still charge
// whatever virtual cost the modeled access would pay, because the cache
// exists only to spare the *host* the O(levels) physical reads.
func (u *MMU) CachedLeaf(root Frame, v Virt) (PTE, bool, error) {
	key := walkKey{root: root, page: PageOf(v)}
	if we, ok := u.cache.walk[key]; ok {
		return we.pte, true, nil
	}
	var tables [ptLevels]Frame
	table := root
	for level := ptLevels - 1; level >= 1; level-- {
		tables[level] = table
		e, err := u.readPTE(table, ptIndex(v, level))
		if err != nil {
			return 0, false, err
		}
		if !e.Present() {
			return 0, false, nil
		}
		table = e.Frame()
	}
	tables[0] = table
	leaf, err := u.readPTE(table, ptIndex(v, 0))
	if err != nil {
		return 0, false, err
	}
	if !leaf.Present() {
		return 0, false, nil
	}
	if u.cache.frozen {
		// Frozen phase: serve the walk but do not populate the cache —
		// an insert would race with the other CPUs' lock-free reads.
		// Misses during a frozen phase simply pay the host walk again.
		return leaf, true, nil
	}
	u.cache.walk[key] = walkEntry{pte: leaf, tables: tables}
	for _, f := range tables {
		deps := u.cache.walkDeps[f]
		if deps == nil {
			deps = make(map[walkKey]struct{})
			u.cache.walkDeps[f] = deps
		}
		deps[key] = struct{}{}
	}
	return leaf, true, nil
}

// InvalidatePageIn drops the cached walk for one page of one address
// space. The SVA layer calls it from its mapping-update operations
// (rawMap/rawUnmap); because the cache is keyed by (root, page) and
// entries are dropped eagerly, switching roots can never resurrect a
// translation invalidated while its address space was inactive.
func (u *MMU) InvalidatePageIn(root Frame, v Virt) {
	u.dropWalk(walkKey{root: root, page: PageOf(v)})
}

// invalidateTableFrame drops every cached walk that traversed the given
// page-table frame. It is registered as the Memory layer's page-table
// watch, so raw physical stores, ZeroFrame, FrameBytes hand-outs,
// SetType and FreeFrame on declared table frames all funnel here.
func (u *MMU) invalidateTableFrame(f Frame) {
	deps := u.cache.walkDeps[f]
	if len(deps) == 0 {
		return
	}
	keys := make([]walkKey, 0, len(deps))
	for k := range deps {
		keys = append(keys, k)
	}
	for _, k := range keys {
		u.dropWalk(k)
	}
}

// FreezeWalkCache marks the shared walk cache read-only for the
// duration of a parallel user phase. Concurrent readers are safe on
// the frozen cache; any insert is skipped and any invalidation panics
// (invalidation is kernel work and must happen at epoch barriers —
// see the walkCache comment). Idempotent per phase; serial context.
func (u *MMU) FreezeWalkCache() { u.cache.frozen = true }

// UnfreezeWalkCache reopens the walk cache for mutation at the epoch
// barrier.
func (u *MMU) UnfreezeWalkCache() { u.cache.frozen = false }

func (u *MMU) dropWalk(key walkKey) {
	we, ok := u.cache.walk[key]
	if !ok {
		return
	}
	if u.cache.frozen {
		panic("hw: walk-cache invalidation during a frozen (parallel user) phase — page-table mutation must happen at epoch barriers")
	}
	delete(u.cache.walk, key)
	for _, f := range we.tables {
		if deps := u.cache.walkDeps[f]; deps != nil {
			delete(deps, key)
			if len(deps) == 0 {
				delete(u.cache.walkDeps, f)
			}
		}
	}
}
