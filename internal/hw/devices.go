package hw

import (
	"fmt"
	"sync"
)

// PortHandler receives I/O-port reads and writes. Port I/O is how the
// IOMMU and legacy devices are configured; under Virtual Ghost only the
// SVA VM's checked I/O instructions may reach the port bus.
type PortHandler interface {
	PortIn(port uint16) uint64
	PortOut(port uint16, val uint64)
}

// PortBus routes I/O-port accesses to registered devices.
type PortBus struct {
	handlers map[uint16]PortHandler
}

// NewPortBus creates an empty port bus.
func NewPortBus() *PortBus { return &PortBus{handlers: make(map[uint16]PortHandler)} }

// Register attaches a device to a port range [base, base+n).
func (b *PortBus) Register(base uint16, n int, h PortHandler) {
	for i := 0; i < n; i++ {
		b.handlers[base+uint16(i)] = h
	}
}

// In reads a port; unclaimed ports read as all-ones like real hardware.
func (b *PortBus) In(port uint16) uint64 {
	if h, ok := b.handlers[port]; ok {
		return h.PortIn(port)
	}
	return ^uint64(0)
}

// Out writes a port; writes to unclaimed ports are dropped.
func (b *PortBus) Out(port uint16, val uint64) {
	if h, ok := b.handlers[port]; ok {
		h.PortOut(port, val)
	}
}

// Console is the system log / terminal device. The rootkit's first
// attack exfiltrates stolen data by printing it here, so tests inspect
// the console transcript.
//
// Printf is mutex-guarded: during a parallel user phase, processes on
// different CPUs may print concurrently. Line *content* per process is
// deterministic; relative order of lines from concurrent CPUs is not
// part of the deterministic surface (consumers use Contains, never
// positional indexing of another CPU's output).
type Console struct {
	mu    sync.Mutex
	lines []string
}

// Printf appends a formatted line to the console transcript.
func (c *Console) Printf(format string, args ...interface{}) {
	line := fmt.Sprintf(format, args...)
	c.mu.Lock()
	c.lines = append(c.lines, line)
	c.mu.Unlock()
}

// Lines returns a snapshot of the transcript.
func (c *Console) Lines() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.lines))
	copy(out, c.lines)
	return out
}

// Contains reports whether any transcript line contains s.
func (c *Console) Contains(s string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range c.lines {
		if containsStr(l, s) {
			return true
		}
	}
	return false
}

func containsStr(haystack, needle string) bool {
	if len(needle) == 0 {
		return true
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// RNG is the hardware entropy source. It is a deterministic PRNG
// (xorshift*) seeded at machine construction so that experiments are
// reproducible; the trusted randomness *property* the paper cares about
// is that applications read it through the SVA VM's instruction rather
// than through an OS-controlled /dev/random.
type RNG struct {
	state uint64
	// tap, when set, observes every value handed out (record-replay
	// capture). Host-side bookkeeping: costs nothing, changes nothing.
	tap func(uint64)
	// source, when set, overrides the generator: each draw is served
	// from it (modeling an external TRNG whose outputs were recorded)
	// without advancing the internal state. When it reports ok=false the
	// generator falls back to the seeded PRNG.
	source func() (uint64, bool)
}

// NewRNG seeds the generator. A zero seed is remapped to a fixed
// non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// SetTap installs (or, with nil, removes) the draw observer used by the
// record layer to capture entropy consumed during a recorded run.
func (r *RNG) SetTap(fn func(uint64)) { r.tap = fn }

// SetSource installs (or, with nil, removes) the replay override that
// serves recorded draws back in order.
func (r *RNG) SetSource(fn func() (uint64, bool)) { r.source = fn }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	if r.source != nil {
		if v, ok := r.source(); ok {
			if r.tap != nil {
				r.tap(v)
			}
			return v
		}
	}
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	v := x * 0x2545f4914f6cdd1d
	if r.tap != nil {
		r.tap(v)
	}
	return v
}

// Fill fills b with random bytes.
func (r *RNG) Fill(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := r.Next()
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
}

// TPM models the trusted platform module: it holds a storage key that
// never leaves the chip. Callers can only ask the TPM to unseal or seal
// blobs with that key; the SVA VM uses this to protect its private key
// at rest (paper §4.4).
type TPM struct {
	storageKey [32]byte
}

// NewTPM provisions a TPM whose storage key is derived from the RNG.
func NewTPM(rng *RNG) *TPM {
	t := &TPM{}
	rng.Fill(t.storageKey[:])
	return t
}

// StorageKey returns the sealed-storage root key. Only the SVA VM's key
// manager calls this; it stands in for the TPM's seal/unseal protocol.
func (t *TPM) StorageKey() [32]byte { return t.storageKey }

// Timer produces periodic timer interrupts in virtual time. The kernel
// scheduler polls it at syscall boundaries (the simulation is
// cooperative, so "interrupts" fire at check points).
type Timer struct {
	clock    *Clock
	interval uint64
	next     uint64
}

// NewTimer creates a timer with the given virtual-cycle period.
func NewTimer(clock *Clock, interval uint64) *Timer {
	return &Timer{clock: clock, interval: interval, next: interval}
}

// Fired reports whether the timer has expired since the last call, and
// re-arms it.
func (t *Timer) Fired() bool {
	if t.clock.Cycles() >= t.next {
		t.next = t.clock.Cycles() + t.interval
		return true
	}
	return false
}
