package hw

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newTestMem(t *testing.T, frames int) *Memory {
	t.Helper()
	return NewMemory(frames, &Clock{})
}

func TestFrameAllocFree(t *testing.T) {
	m := newTestMem(t, 16)
	if m.FreeFrames() != 15 { // frame 0 reserved
		t.Fatalf("free frames = %d, want 15", m.FreeFrames())
	}
	f, err := m.AllocFrame(FrameUserData)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if m.TypeOf(f) != FrameUserData {
		t.Errorf("type = %v", m.TypeOf(f))
	}
	if err := m.FreeFrame(f); err != nil {
		t.Fatalf("free: %v", err)
	}
	if m.TypeOf(f) != FrameFree {
		t.Errorf("freed frame type = %v", m.TypeOf(f))
	}
}

func TestFrameDoubleFree(t *testing.T) {
	m := newTestMem(t, 16)
	f, _ := m.AllocFrame(FrameKernelData)
	if err := m.FreeFrame(f); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := m.FreeFrame(f); err == nil {
		t.Errorf("double free accepted")
	}
}

func TestFreeWithLiveMappingsRefused(t *testing.T) {
	m := newTestMem(t, 16)
	f, _ := m.AllocFrame(FrameUserData)
	m.AddRef(f)
	if err := m.FreeFrame(f); err == nil {
		t.Errorf("freed a frame with live mappings")
	}
	m.DropRef(f)
	if err := m.FreeFrame(f); err != nil {
		t.Errorf("free after unref: %v", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	m := newTestMem(t, 4) // frames 1..3 allocatable
	for i := 0; i < 3; i++ {
		if _, err := m.AllocFrame(FrameUserData); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := m.AllocFrame(FrameUserData); err != ErrOutOfMemory {
		t.Errorf("want ErrOutOfMemory, got %v", err)
	}
}

func TestPhysReadWrite(t *testing.T) {
	m := newTestMem(t, 16)
	f, _ := m.AllocFrame(FrameKernelData)
	p := f.Addr() + 100
	data := []byte{1, 2, 3, 4, 5}
	if err := m.WritePhys(p, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := m.ReadPhys(p, 5)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %v", got)
	}
}

func TestPhysBounds(t *testing.T) {
	m := newTestMem(t, 4)
	if _, err := m.ReadPhys(Phys(4*PageSize), 8); err == nil {
		t.Errorf("read past end accepted")
	}
	if err := m.WritePhys(Phys(0), []byte{1}); err == nil {
		t.Errorf("write to reserved frame 0 accepted")
	}
	if _, err := m.ReadPhys(Phys(4*PageSize-4), 8); err == nil {
		t.Errorf("straddling read accepted")
	}
}

func TestRead64Write64RoundTrip(t *testing.T) {
	m := newTestMem(t, 8)
	f, _ := m.AllocFrame(FrameKernelData)
	fn := func(off uint16, v uint64) bool {
		p := f.Addr() + Phys(off%(PageSize-8))
		if err := m.Write64(p, v); err != nil {
			return false
		}
		got, err := m.Read64(p)
		return err == nil && got == v
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroFrame(t *testing.T) {
	m := newTestMem(t, 8)
	f, _ := m.AllocFrame(FrameUserData)
	if err := m.WritePhys(f.Addr(), []byte{0xff, 0xfe}); err != nil {
		t.Fatal(err)
	}
	if err := m.ZeroFrame(f); err != nil {
		t.Fatal(err)
	}
	b, _ := m.FrameBytes(f)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %#x after zero", i, v)
		}
	}
}

type fakeMMIO struct {
	lastOff uint32
	lastVal uint64
	reads   int
}

func (f *fakeMMIO) MMIORead(off uint32, size int) uint64 {
	f.reads++
	return uint64(off) + 7
}

func (f *fakeMMIO) MMIOWrite(off uint32, size int, val uint64) {
	f.lastOff, f.lastVal = off, val
}

func TestMMIORouting(t *testing.T) {
	m := newTestMem(t, 8)
	f, _ := m.AllocFrame(FrameIO)
	dev := &fakeMMIO{}
	if err := m.RegisterMMIO(f, dev); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePhys(f.Addr()+0x10, []byte{0xab, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if dev.lastOff != 0x10 || dev.lastVal != 0xab {
		t.Errorf("MMIO write routed to off=%#x val=%#x", dev.lastOff, dev.lastVal)
	}
	v, err := m.Read64(f.Addr() + 0x20)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x27 || dev.reads != 1 {
		t.Errorf("MMIO read = %#x reads=%d", v, dev.reads)
	}
}

func TestFrameTypeStrings(t *testing.T) {
	for ft := FrameFree; ft <= FrameIO; ft++ {
		if ft.String() == "" {
			t.Errorf("empty string for %d", ft)
		}
	}
}
