package hw

import (
	"fmt"
	"sync"
	"testing"
)

// cachedFrame resolves va through the walk cache and fails the test on
// error; mapped=false is reported as frame 0.
func cachedFrame(t *testing.T, u *MMU, root Frame, va Virt) (Frame, bool) {
	t.Helper()
	e, ok, err := u.CachedLeaf(root, va)
	if err != nil {
		t.Fatalf("CachedLeaf(%#x): %v", uint64(va), err)
	}
	if !ok {
		return 0, false
	}
	return e.Frame(), true
}

func TestWalkCacheHitReturnsSameLeaf(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	f := mapOne(t, m, u, root, va, PTEWrite|PTEUser)

	got, ok := cachedFrame(t, u, root, va)
	if !ok || got != f {
		t.Fatalf("first lookup: got (%d,%v), want (%d,true)", got, ok, f)
	}
	if len(u.cache.walk) != 1 {
		t.Fatalf("walk cache has %d entries, want 1", len(u.cache.walk))
	}
	got, ok = cachedFrame(t, u, root, va+123)
	if !ok || got != f {
		t.Fatalf("cached lookup: got (%d,%v), want (%d,true)", got, ok, f)
	}
}

func TestWalkCacheNegativeNotCached(t *testing.T) {
	_, u, root := testAS(t)
	if _, ok := cachedFrame(t, u, root, 0x400000); ok {
		t.Fatal("unmapped page resolved")
	}
	if len(u.cache.walk) != 0 {
		t.Fatalf("negative walk was cached: %d entries", len(u.cache.walk))
	}
}

func TestWalkCacheRawWritePTEInvalidates(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	f1 := mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	if got, _ := cachedFrame(t, u, root, va); got != f1 {
		t.Fatalf("got frame %d, want %d", got, f1)
	}

	// Point the leaf at a different frame through the raw hardware
	// primitive (exactly what a hostile Native kernel can do).
	table, idx, ok, err := u.WalkLeaf(root, va)
	if err != nil || !ok {
		t.Fatalf("WalkLeaf: ok=%v err=%v", ok, err)
	}
	f2, err := m.AllocFrame(FrameUserData)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.RawWritePTE(table, idx, MakePTE(f2, PTEPresent|PTEWrite|PTEUser)); err != nil {
		t.Fatal(err)
	}

	if got, _ := cachedFrame(t, u, root, va); got != f2 {
		t.Fatalf("stale translation survived RawWritePTE: got frame %d, want %d", got, f2)
	}
}

func TestWalkCachePhysicalWriteToTableInvalidates(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	if _, ok := cachedFrame(t, u, root, va); !ok {
		t.Fatal("expected mapping")
	}

	// Clear the leaf PTE with a raw physical store to the (declared)
	// page-table frame, bypassing every MMU primitive.
	table, idx, ok, err := u.WalkLeaf(root, va)
	if err != nil || !ok {
		t.Fatalf("WalkLeaf: ok=%v err=%v", ok, err)
	}
	if err := m.Write64(table.Addr()+Phys(idx*8), 0); err != nil {
		t.Fatal(err)
	}

	if _, ok := cachedFrame(t, u, root, va); ok {
		t.Fatal("stale translation survived a physical page-table write")
	}
}

func TestWalkCacheZeroFrameInvalidates(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	if _, ok := cachedFrame(t, u, root, va); !ok {
		t.Fatal("expected mapping")
	}
	table, _, _, err := u.WalkLeaf(root, va)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ZeroFrame(table); err != nil {
		t.Fatal(err)
	}
	if _, ok := cachedFrame(t, u, root, va); ok {
		t.Fatal("stale translation survived ZeroFrame of its leaf table")
	}
}

func TestWalkCacheFrameBytesInvalidates(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	if _, ok := cachedFrame(t, u, root, va); !ok {
		t.Fatal("expected mapping")
	}
	table, idx, _, err := u.WalkLeaf(root, va)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.FrameBytes(table)
	if err != nil {
		t.Fatal(err)
	}
	// Scribble the leaf PTE through the raw slice.
	for i := 0; i < 8; i++ {
		raw[int(idx)*8+i] = 0
	}
	if _, ok := cachedFrame(t, u, root, va); ok {
		t.Fatal("stale translation survived FrameBytes mutation")
	}
}

func TestWalkCacheInvalidatePageIn(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	f1 := mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	if got, _ := cachedFrame(t, u, root, va); got != f1 {
		t.Fatal("expected mapping")
	}
	u.InvalidatePageIn(root, va+5) // any address within the page
	if len(u.cache.walk) != 0 {
		t.Fatalf("InvalidatePageIn left %d entries", len(u.cache.walk))
	}
}

// TestWalkCacheNoResurrectionAcrossSetRoot is the FlushTLB/SetRoot
// interaction fix: entries are keyed (root, page) and dropped eagerly,
// so invalidating a mapping while its address space is inactive must
// stick when that root is loaded again.
func TestWalkCacheNoResurrectionAcrossSetRoot(t *testing.T) {
	m, u, root1 := testAS(t)
	va := Virt(0x400000)
	f1 := mapOne(t, m, u, root1, va, PTEWrite|PTEUser)

	root2, err := m.AllocFrame(FramePageTable)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ZeroFrame(root2); err != nil {
		t.Fatal(err)
	}

	// Populate the cache for root1, then switch away.
	if got, _ := cachedFrame(t, u, root1, va); got != f1 {
		t.Fatal("expected mapping in root1")
	}
	u.SetRoot(root2)

	// While root1 is inactive, tear down its mapping.
	table, idx, ok, err := u.WalkLeaf(root1, va)
	if err != nil || !ok {
		t.Fatalf("WalkLeaf: ok=%v err=%v", ok, err)
	}
	if err := u.RawWritePTE(table, idx, 0); err != nil {
		t.Fatal(err)
	}

	// Switching back must not bring the old translation with it.
	u.SetRoot(root1)
	if _, ok := cachedFrame(t, u, root1, va); ok {
		t.Fatal("invalidated translation resurrected by SetRoot")
	}
}

// TestWalkCacheSurvivesSetRoot pins the flip side: entries for *other*
// roots are host-side state, not TLB state, so an address-space switch
// alone must not discard them (that is the point of (root, page) keys).
func TestWalkCacheSurvivesSetRoot(t *testing.T) {
	m, u, root1 := testAS(t)
	va := Virt(0x400000)
	f1 := mapOne(t, m, u, root1, va, PTEWrite|PTEUser)

	root2, err := m.AllocFrame(FramePageTable)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ZeroFrame(root2); err != nil {
		t.Fatal(err)
	}
	if got, _ := cachedFrame(t, u, root1, va); got != f1 {
		t.Fatal("expected mapping in root1")
	}
	u.SetRoot(root2)
	if len(u.cache.walk) != 1 {
		t.Fatalf("SetRoot dropped walk-cache entries: %d left, want 1", len(u.cache.walk))
	}
	if got, _ := cachedFrame(t, u, root1, va); got != f1 {
		t.Fatal("cross-AS translation lost after SetRoot")
	}
}

// TestWalkCacheFreedTableFrame covers root/table frame recycling: once
// a page-table frame is freed (or retyped), every cached walk through
// it must die, so a later reallocation of the same frame cannot serve
// stale translations.
func TestWalkCacheFreedTableFrame(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	if _, ok := cachedFrame(t, u, root, va); !ok {
		t.Fatal("expected mapping")
	}

	table, _, _, err := u.WalkLeaf(root, va)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.FreeFrame(table); err != nil {
		t.Fatal(err)
	}
	if len(u.cache.walk) != 0 {
		t.Fatalf("FreeFrame of a table frame left %d cached walks", len(u.cache.walk))
	}
	if len(u.cache.walkDeps) != 0 {
		t.Fatalf("FreeFrame left %d dependency sets", len(u.cache.walkDeps))
	}
}

func TestWalkCacheSetTypeInvalidates(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	if _, ok := cachedFrame(t, u, root, va); !ok {
		t.Fatal("expected mapping")
	}
	table, _, _, err := u.WalkLeaf(root, va)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetType(table, FrameUserData); err != nil {
		t.Fatal(err)
	}
	if len(u.cache.walk) != 0 {
		t.Fatalf("SetType away from FramePageTable left %d cached walks", len(u.cache.walk))
	}
}

func TestWalkCachePermissionChangeObserved(t *testing.T) {
	m, u, root := testAS(t)
	va := Virt(0x400000)
	f := mapOne(t, m, u, root, va, PTEWrite|PTEUser)
	e, ok, err := u.CachedLeaf(root, va)
	if err != nil || !ok {
		t.Fatalf("CachedLeaf: ok=%v err=%v", ok, err)
	}
	if !e.Writable() {
		t.Fatal("expected writable leaf")
	}

	// Downgrade to read-only through the raw primitive.
	table, idx, _, err := u.WalkLeaf(root, va)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.RawWritePTE(table, idx, MakePTE(f, PTEPresent|PTEUser)); err != nil {
		t.Fatal(err)
	}
	e, ok, err = u.CachedLeaf(root, va)
	if err != nil || !ok {
		t.Fatalf("CachedLeaf after downgrade: ok=%v err=%v", ok, err)
	}
	if e.Writable() {
		t.Fatal("stale writable PTE served after permission downgrade")
	}
}

// TestWalkCacheParallelReaders pins the epoch-scheduler concurrency
// contract (see the walkCache comment in mmu.go): during a frozen
// phase any number of CPUs may call CachedLeaf concurrently — cached
// entries are served lock-free, misses walk the tables without
// inserting — and all mutation waits for the barrier. Run under -race
// this fails loudly if anyone adds a write to a reader path.
func TestWalkCacheParallelReaders(t *testing.T) {
	m, u, root := testAS(t)
	const pages = 16
	frames := make([]Frame, pages)
	for i := range frames {
		frames[i] = mapOne(t, m, u, root, Virt(0x400000+i*PageSize), PTEWrite|PTEUser)
	}
	// Warm the cache for the even pages only, so readers exercise both
	// the hit path and the frozen-miss (full walk, no insert) path.
	for i := 0; i < pages; i += 2 {
		if _, ok := cachedFrame(t, u, root, Virt(0x400000+i*PageSize)); !ok {
			t.Fatalf("page %d did not resolve", i)
		}
	}
	warm := len(u.cache.walk)

	u.FreezeWalkCache()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for cpu := 0; cpu < 8; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for round := 0; round < 100; round++ {
				i := (cpu + round) % pages
				e, ok, err := u.CachedLeaf(root, Virt(0x400000+i*PageSize))
				if err != nil || !ok {
					select {
					case errs <- fmt.Sprintf("cpu %d page %d: ok=%v err=%v", cpu, i, ok, err):
					default:
					}
					return
				}
				if e.Frame() != frames[i] {
					select {
					case errs <- fmt.Sprintf("cpu %d page %d: frame %d, want %d", cpu, i, e.Frame(), frames[i]):
					default:
					}
					return
				}
			}
		}(cpu)
	}
	wg.Wait()
	u.UnfreezeWalkCache()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	if len(u.cache.walk) != warm {
		t.Fatalf("frozen phase mutated the walk cache: %d entries, want %d", len(u.cache.walk), warm)
	}

	// The invalidation hook is mutation and must panic while frozen.
	u.FreezeWalkCache()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("dropWalk during a frozen phase did not panic")
			}
		}()
		u.dropWalk(walkKey{root: root, page: PageOf(0x400000)})
	}()
	u.UnfreezeWalkCache()
}
