package hw

import (
	"errors"
	"fmt"
)

// PageSize is the size of a physical frame and of a virtual page.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Phys is a physical address.
type Phys uint64

// Virt is a virtual address.
type Virt uint64

// Frame is a physical frame number (Phys >> PageShift).
type Frame uint64

// Addr returns the physical address of the first byte of the frame.
func (f Frame) Addr() Phys { return Phys(f) << PageShift }

// FrameOf returns the frame containing the physical address.
func FrameOf(p Phys) Frame { return Frame(p >> PageShift) }

// PageOf returns the page-aligned base of a virtual address.
func PageOf(v Virt) Virt { return v &^ (PageSize - 1) }

// FrameType records what a physical frame is currently used for. The
// SVA VM's MMU checks are predicated on these types: for example, a
// FrameGhost frame may never appear in a kernel- or user-visible
// mapping, and a FrameCode frame may never be mapped writable.
type FrameType uint8

const (
	// FrameFree is an unallocated frame.
	FrameFree FrameType = iota
	// FrameKernelData holds ordinary kernel data.
	FrameKernelData
	// FrameUserData holds traditional (OS-accessible) user memory.
	FrameUserData
	// FrameGhost holds ghost memory; only the SVA VM may map it.
	FrameGhost
	// FrameSVA holds SVA VM internal memory.
	FrameSVA
	// FrameCode holds translated native code (kernel or application).
	FrameCode
	// FramePageTable holds a declared page-table page; the OS may only
	// modify it through the SVA-OS MMU update operations.
	FramePageTable
	// FrameIO is a memory-mapped I/O frame (e.g. the IOMMU's control
	// registers); mappable only into SVA VM space.
	FrameIO
)

func (t FrameType) String() string {
	switch t {
	case FrameFree:
		return "free"
	case FrameKernelData:
		return "kernel"
	case FrameUserData:
		return "user"
	case FrameGhost:
		return "ghost"
	case FrameSVA:
		return "sva"
	case FrameCode:
		return "code"
	case FramePageTable:
		return "pagetable"
	case FrameIO:
		return "io"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// ErrOutOfMemory is returned when no free frame is available.
var ErrOutOfMemory = errors.New("hw: out of physical memory")

// ErrBadPhys is returned for accesses outside physical memory.
var ErrBadPhys = errors.New("hw: physical address out of range")

// Memory is the machine's physical memory: per-frame byte storage plus
// per-frame metadata. Frame metadata is the ground truth that the SVA
// VM's run-time checks consult.
//
// Frame contents are allocated lazily on first write: a machine with
// gigabytes of simulated RAM costs the host nothing until frames are
// actually touched, and reads of never-written memory return zeros —
// exactly what a flat pre-zeroed array would hold. This is purely a
// host-side optimisation; nothing about the modeled hardware (or the
// virtual clock) depends on it.
type Memory struct {
	pages    []*[PageSize]byte
	ftype    []FrameType
	refs     []uint16 // mapping reference counts, maintained by the MMU layer
	free     []Frame  // free list (LIFO)
	nframes  int
	clock    *Clock
	ioFrames map[Frame]MMIOHandler
	// shared marks frames whose backing page is aliased into an
	// immutable snapshot image (fork-from-snapshot). The first write to
	// a shared frame copies the page (copy-on-write) so the image — and
	// every sibling machine forked from it — never observes the store.
	// nil on machines that were not restored with page sharing.
	shared []bool
	// ptWatch, when set, is called with any FramePageTable frame whose
	// contents may have changed through a physical write (stores,
	// ZeroFrame, FrameBytes hand-out) or whose page-table role started
	// or ended (SetType, FreeFrame). The MMU registers its walk-cache
	// invalidator here so no software-cached translation can outlive a
	// page-table mutation, however the mutation was performed.
	ptWatch func(Frame)
	// staleCheck, when set, guards FreeFrame and SetType of frames
	// whose old or new type is security-critical (ghost or page-table):
	// the machine refuses the operation while a remote CPU's TLB could
	// still translate to the frame, i.e. the TLB-shootdown protocol was
	// skipped. Registered by Machine on multi-CPU configurations.
	staleCheck func(Frame) error
}

// MMIOHandler receives loads and stores to a memory-mapped I/O frame.
type MMIOHandler interface {
	MMIORead(off uint32, size int) uint64
	MMIOWrite(off uint32, size int, val uint64)
}

// NewMemory creates physical memory with the given number of frames.
func NewMemory(nframes int, clock *Clock) *Memory {
	m := &Memory{
		pages:    make([]*[PageSize]byte, nframes),
		ftype:    make([]FrameType, nframes),
		refs:     make([]uint16, nframes),
		nframes:  nframes,
		clock:    clock,
		ioFrames: make(map[Frame]MMIOHandler),
	}
	// Push frames so that low frame numbers come off the list first;
	// frame 0 is reserved (never allocated) to keep Phys 0 invalid.
	for f := nframes - 1; f >= 1; f-- {
		m.free = append(m.free, Frame(f))
	}
	return m
}

// SetPTWatch registers the observer for physical mutations of declared
// page-table frames. Only one observer is supported (the machine's
// primary MMU — secondary CPUs' MMUs share its walk cache, so one
// invalidation reaches them all).
func (m *Memory) SetPTWatch(fn func(Frame)) { m.ptWatch = fn }

// SetStaleCheck registers the stale-translation guard consulted before
// ghost/page-table frames are freed or retyped (the machine's TLB
// coherence check).
func (m *Memory) SetStaleCheck(fn func(Frame) error) { m.staleCheck = fn }

// checkStale applies the stale-translation guard when a frame
// transitions into or out of a security-critical type.
func (m *Memory) checkStale(f Frame, types ...FrameType) error {
	if m.staleCheck == nil {
		return nil
	}
	for _, t := range types {
		if t == FrameGhost || t == FramePageTable {
			return m.staleCheck(f)
		}
	}
	return nil
}

// notifyPT reports a possible content or role change of a page-table
// frame to the registered observer.
func (m *Memory) notifyPT(f Frame) {
	if m.ptWatch != nil {
		m.ptWatch(f)
	}
}

// page returns the backing storage of frame f, or nil if the frame has
// never been written (all-zero).
func (m *Memory) page(f Frame) *[PageSize]byte { return m.pages[f] }

// ensurePage returns the backing storage of frame f, allocating it on
// first write and breaking copy-on-write sharing: the returned page is
// always private to this machine, so every write path may store through
// it directly.
func (m *Memory) ensurePage(f Frame) *[PageSize]byte {
	pg := m.pages[f]
	if pg == nil {
		pg = new([PageSize]byte)
		m.pages[f] = pg
		return pg
	}
	if m.shared != nil && m.shared[f] {
		cp := *pg
		pg = &cp
		m.pages[f] = pg
		m.shared[f] = false
	}
	return pg
}

// NumFrames returns the number of physical frames.
func (m *Memory) NumFrames() int { return m.nframes }

// FreeFrames returns how many frames are currently free.
func (m *Memory) FreeFrames() int { return len(m.free) }

// AllocFrame takes a free frame and tags it with the given type.
func (m *Memory) AllocFrame(t FrameType) (Frame, error) {
	if len(m.free) == 0 {
		return 0, ErrOutOfMemory
	}
	f := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.ftype[f] = t
	m.refs[f] = 0
	return f, nil
}

// FreeFrame returns a frame to the free list. The frame must have no
// remaining mapping references.
func (m *Memory) FreeFrame(f Frame) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	if m.ftype[f] == FrameFree {
		return fmt.Errorf("hw: double free of frame %d", f)
	}
	if m.refs[f] != 0 {
		return fmt.Errorf("hw: freeing frame %d with %d live mappings", f, m.refs[f])
	}
	if err := m.checkStale(f, m.ftype[f]); err != nil {
		return fmt.Errorf("hw: freeing frame %d: %w", f, err)
	}
	if m.ftype[f] == FramePageTable {
		m.notifyPT(f)
	}
	m.ftype[f] = FrameFree
	m.free = append(m.free, f)
	return nil
}

// TypeOf returns the current type of a frame.
func (m *Memory) TypeOf(f Frame) FrameType {
	if f >= Frame(m.nframes) {
		return FrameFree
	}
	return m.ftype[f]
}

// SetType retags a frame. Retagging is how the SVA VM converts an OS-
// provided frame into a ghost or page-table frame after validating it.
func (m *Memory) SetType(f Frame, t FrameType) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	if err := m.checkStale(f, m.ftype[f], t); err != nil {
		return fmt.Errorf("hw: retyping frame %d to %s: %w", f, t, err)
	}
	if m.ftype[f] == FramePageTable || t == FramePageTable {
		m.notifyPT(f)
	}
	m.ftype[f] = t
	return nil
}

// Refs returns the mapping reference count of a frame.
func (m *Memory) Refs(f Frame) int { return int(m.refs[f]) }

// AddRef / DropRef maintain the mapping reference count. They are called
// by the MMU layer when page-table entries naming the frame are created
// or destroyed.
func (m *Memory) AddRef(f Frame) { m.refs[f]++ }

// DropRef decrements the mapping reference count.
func (m *Memory) DropRef(f Frame) {
	if m.refs[f] == 0 {
		panic(fmt.Sprintf("hw: ref underflow on frame %d", f))
	}
	m.refs[f]--
}

// RegisterMMIO attaches a handler to a frame so that physical accesses
// to it are routed to a device instead of RAM.
func (m *Memory) RegisterMMIO(f Frame, h MMIOHandler) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	m.ftype[f] = FrameIO
	m.ioFrames[f] = h
	return nil
}

func (m *Memory) checkFrame(f Frame) error {
	if f == 0 || f >= Frame(m.nframes) {
		return fmt.Errorf("%w: frame %d", ErrBadPhys, f)
	}
	return nil
}

func (m *Memory) checkRange(p Phys, n int) error {
	if n < 0 || uint64(p)+uint64(n) > uint64(m.nframes)*PageSize || p < PageSize {
		return fmt.Errorf("%w: [%#x,+%d)", ErrBadPhys, uint64(p), n)
	}
	return nil
}

// ReadPhys copies n bytes at physical address p into a fresh slice.
// MMIO frames are routed to their device handler (size 1/2/4/8 only).
func (m *Memory) ReadPhys(p Phys, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := m.ReadPhysInto(p, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadPhysInto copies len(buf) bytes at physical address p into buf
// without allocating. MMIO frames are routed to their device handler.
func (m *Memory) ReadPhysInto(p Phys, buf []byte) error {
	if err := m.checkRange(p, len(buf)); err != nil {
		return err
	}
	if h, ok := m.ioFrames[FrameOf(p)]; ok {
		v := h.MMIORead(uint32(p&(PageSize-1)), len(buf))
		putLE(buf, v)
		return nil
	}
	for len(buf) > 0 {
		off := int(p & (PageSize - 1))
		n := min(len(buf), PageSize-off)
		if pg := m.page(FrameOf(p)); pg != nil {
			copy(buf[:n], pg[off:off+n])
		} else {
			clear(buf[:n])
		}
		p += Phys(n)
		buf = buf[n:]
	}
	return nil
}

// WritePhys stores b at physical address p.
func (m *Memory) WritePhys(p Phys, b []byte) error {
	if err := m.checkRange(p, len(b)); err != nil {
		return err
	}
	if h, ok := m.ioFrames[FrameOf(p)]; ok {
		h.MMIOWrite(uint32(p&(PageSize-1)), len(b), getLE(b))
		return nil
	}
	for len(b) > 0 {
		f := FrameOf(p)
		off := int(p & (PageSize - 1))
		n := min(len(b), PageSize-off)
		copy(m.ensurePage(f)[off:], b[:n])
		if m.ftype[f] == FramePageTable {
			m.notifyPT(f)
		}
		p += Phys(n)
		b = b[n:]
	}
	return nil
}

// ReadLE loads a little-endian value of size bytes (1..8) at p without
// allocating.
func (m *Memory) ReadLE(p Phys, size int) (uint64, error) {
	if size < 0 || size > 8 {
		return 0, fmt.Errorf("hw: scalar read of %d bytes", size)
	}
	if err := m.checkRange(p, size); err != nil {
		return 0, err
	}
	if h, ok := m.ioFrames[FrameOf(p)]; ok {
		return h.MMIORead(uint32(p&(PageSize-1)), size), nil
	}
	off := int(p & (PageSize - 1))
	if off+size <= PageSize {
		pg := m.page(FrameOf(p))
		if pg == nil {
			return 0, nil
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(pg[off+i])
		}
		return v, nil
	}
	var buf [8]byte
	if err := m.ReadPhysInto(p, buf[:size]); err != nil {
		return 0, err
	}
	return getLE(buf[:size]), nil
}

// WriteLE stores a little-endian value of size bytes (1..8) at p
// without allocating.
func (m *Memory) WriteLE(p Phys, size int, v uint64) error {
	if size < 0 || size > 8 {
		return fmt.Errorf("hw: scalar write of %d bytes", size)
	}
	if err := m.checkRange(p, size); err != nil {
		return err
	}
	f := FrameOf(p)
	if h, ok := m.ioFrames[f]; ok {
		h.MMIOWrite(uint32(p&(PageSize-1)), size, v)
		return nil
	}
	off := int(p & (PageSize - 1))
	if off+size <= PageSize {
		pg := m.ensurePage(f)
		for i := 0; i < size; i++ {
			pg[off+i] = byte(v >> (8 * i))
		}
		if m.ftype[f] == FramePageTable {
			m.notifyPT(f)
		}
		return nil
	}
	var buf [8]byte
	putLE(buf[:size], v)
	return m.WritePhys(p, buf[:size])
}

// Read64 loads a little-endian uint64 at p.
func (m *Memory) Read64(p Phys) (uint64, error) {
	return m.ReadLE(p, 8)
}

// Write64 stores a little-endian uint64 at p.
func (m *Memory) Write64(p Phys, v uint64) error {
	return m.WriteLE(p, 8, v)
}

// ZeroFrame clears a frame's contents and charges the zeroing cost.
func (m *Memory) ZeroFrame(f Frame) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	if pg := m.page(f); pg != nil {
		if m.shared != nil && m.shared[f] {
			// Shared with a snapshot image: dropping the alias zeroes
			// this machine's view without touching the image's page.
			m.pages[f] = nil
			m.shared[f] = false
		} else {
			clear(pg[:])
		}
	}
	if m.ftype[f] == FramePageTable {
		m.notifyPT(f)
	}
	if m.clock != nil {
		m.clock.Charge(TagMemAccess, CostPageZero)
	}
	return nil
}

// FrameBytes exposes the raw contents of a frame. It is used by the
// devices (disk DMA, swap) and by tests; guest code never touches it.
func (m *Memory) FrameBytes(f Frame) ([]byte, error) {
	if err := m.checkFrame(f); err != nil {
		return nil, err
	}
	// The caller may write through the returned slice; treat the
	// hand-out as a potential mutation of a page-table frame.
	if m.ftype[f] == FramePageTable {
		m.notifyPT(f)
	}
	return m.ensurePage(f)[:], nil
}

func getLE(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLE(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v)
		v >>= 8
	}
}
