package hw

import (
	"errors"
	"fmt"
)

// PageSize is the size of a physical frame and of a virtual page.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Phys is a physical address.
type Phys uint64

// Virt is a virtual address.
type Virt uint64

// Frame is a physical frame number (Phys >> PageShift).
type Frame uint64

// Addr returns the physical address of the first byte of the frame.
func (f Frame) Addr() Phys { return Phys(f) << PageShift }

// FrameOf returns the frame containing the physical address.
func FrameOf(p Phys) Frame { return Frame(p >> PageShift) }

// PageOf returns the page-aligned base of a virtual address.
func PageOf(v Virt) Virt { return v &^ (PageSize - 1) }

// FrameType records what a physical frame is currently used for. The
// SVA VM's MMU checks are predicated on these types: for example, a
// FrameGhost frame may never appear in a kernel- or user-visible
// mapping, and a FrameCode frame may never be mapped writable.
type FrameType uint8

const (
	// FrameFree is an unallocated frame.
	FrameFree FrameType = iota
	// FrameKernelData holds ordinary kernel data.
	FrameKernelData
	// FrameUserData holds traditional (OS-accessible) user memory.
	FrameUserData
	// FrameGhost holds ghost memory; only the SVA VM may map it.
	FrameGhost
	// FrameSVA holds SVA VM internal memory.
	FrameSVA
	// FrameCode holds translated native code (kernel or application).
	FrameCode
	// FramePageTable holds a declared page-table page; the OS may only
	// modify it through the SVA-OS MMU update operations.
	FramePageTable
	// FrameIO is a memory-mapped I/O frame (e.g. the IOMMU's control
	// registers); mappable only into SVA VM space.
	FrameIO
)

func (t FrameType) String() string {
	switch t {
	case FrameFree:
		return "free"
	case FrameKernelData:
		return "kernel"
	case FrameUserData:
		return "user"
	case FrameGhost:
		return "ghost"
	case FrameSVA:
		return "sva"
	case FrameCode:
		return "code"
	case FramePageTable:
		return "pagetable"
	case FrameIO:
		return "io"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// ErrOutOfMemory is returned when no free frame is available.
var ErrOutOfMemory = errors.New("hw: out of physical memory")

// ErrBadPhys is returned for accesses outside physical memory.
var ErrBadPhys = errors.New("hw: physical address out of range")

// Memory is the machine's physical memory: a flat byte array divided
// into frames, plus per-frame metadata. Frame metadata is the ground
// truth that the SVA VM's run-time checks consult.
type Memory struct {
	bytes    []byte
	ftype    []FrameType
	refs     []uint16 // mapping reference counts, maintained by the MMU layer
	free     []Frame  // free list (LIFO)
	nframes  int
	clock    *Clock
	ioFrames map[Frame]MMIOHandler
}

// MMIOHandler receives loads and stores to a memory-mapped I/O frame.
type MMIOHandler interface {
	MMIORead(off uint32, size int) uint64
	MMIOWrite(off uint32, size int, val uint64)
}

// NewMemory creates physical memory with the given number of frames.
func NewMemory(nframes int, clock *Clock) *Memory {
	m := &Memory{
		bytes:    make([]byte, nframes*PageSize),
		ftype:    make([]FrameType, nframes),
		refs:     make([]uint16, nframes),
		nframes:  nframes,
		clock:    clock,
		ioFrames: make(map[Frame]MMIOHandler),
	}
	// Push frames so that low frame numbers come off the list first;
	// frame 0 is reserved (never allocated) to keep Phys 0 invalid.
	for f := nframes - 1; f >= 1; f-- {
		m.free = append(m.free, Frame(f))
	}
	return m
}

// NumFrames returns the number of physical frames.
func (m *Memory) NumFrames() int { return m.nframes }

// FreeFrames returns how many frames are currently free.
func (m *Memory) FreeFrames() int { return len(m.free) }

// AllocFrame takes a free frame and tags it with the given type.
func (m *Memory) AllocFrame(t FrameType) (Frame, error) {
	if len(m.free) == 0 {
		return 0, ErrOutOfMemory
	}
	f := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.ftype[f] = t
	m.refs[f] = 0
	return f, nil
}

// FreeFrame returns a frame to the free list. The frame must have no
// remaining mapping references.
func (m *Memory) FreeFrame(f Frame) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	if m.ftype[f] == FrameFree {
		return fmt.Errorf("hw: double free of frame %d", f)
	}
	if m.refs[f] != 0 {
		return fmt.Errorf("hw: freeing frame %d with %d live mappings", f, m.refs[f])
	}
	m.ftype[f] = FrameFree
	m.free = append(m.free, f)
	return nil
}

// TypeOf returns the current type of a frame.
func (m *Memory) TypeOf(f Frame) FrameType {
	if f >= Frame(m.nframes) {
		return FrameFree
	}
	return m.ftype[f]
}

// SetType retags a frame. Retagging is how the SVA VM converts an OS-
// provided frame into a ghost or page-table frame after validating it.
func (m *Memory) SetType(f Frame, t FrameType) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	m.ftype[f] = t
	return nil
}

// Refs returns the mapping reference count of a frame.
func (m *Memory) Refs(f Frame) int { return int(m.refs[f]) }

// AddRef / DropRef maintain the mapping reference count. They are called
// by the MMU layer when page-table entries naming the frame are created
// or destroyed.
func (m *Memory) AddRef(f Frame) { m.refs[f]++ }

// DropRef decrements the mapping reference count.
func (m *Memory) DropRef(f Frame) {
	if m.refs[f] == 0 {
		panic(fmt.Sprintf("hw: ref underflow on frame %d", f))
	}
	m.refs[f]--
}

// RegisterMMIO attaches a handler to a frame so that physical accesses
// to it are routed to a device instead of RAM.
func (m *Memory) RegisterMMIO(f Frame, h MMIOHandler) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	m.ftype[f] = FrameIO
	m.ioFrames[f] = h
	return nil
}

func (m *Memory) checkFrame(f Frame) error {
	if f == 0 || f >= Frame(m.nframes) {
		return fmt.Errorf("%w: frame %d", ErrBadPhys, f)
	}
	return nil
}

func (m *Memory) checkRange(p Phys, n int) error {
	if n < 0 || uint64(p)+uint64(n) > uint64(m.nframes)*PageSize || p < PageSize {
		return fmt.Errorf("%w: [%#x,+%d)", ErrBadPhys, uint64(p), n)
	}
	return nil
}

// ReadPhys copies n bytes at physical address p into a fresh slice.
// MMIO frames are routed to their device handler (size 1/2/4/8 only).
func (m *Memory) ReadPhys(p Phys, n int) ([]byte, error) {
	if err := m.checkRange(p, n); err != nil {
		return nil, err
	}
	if h, ok := m.ioFrames[FrameOf(p)]; ok {
		v := h.MMIORead(uint32(p&(PageSize-1)), n)
		buf := make([]byte, n)
		putLE(buf, v)
		return buf, nil
	}
	out := make([]byte, n)
	copy(out, m.bytes[p:int(p)+n])
	return out, nil
}

// WritePhys stores b at physical address p.
func (m *Memory) WritePhys(p Phys, b []byte) error {
	if err := m.checkRange(p, len(b)); err != nil {
		return err
	}
	if h, ok := m.ioFrames[FrameOf(p)]; ok {
		h.MMIOWrite(uint32(p&(PageSize-1)), len(b), getLE(b))
		return nil
	}
	copy(m.bytes[p:], b)
	return nil
}

// Read64 loads a little-endian uint64 at p.
func (m *Memory) Read64(p Phys) (uint64, error) {
	b, err := m.ReadPhys(p, 8)
	if err != nil {
		return 0, err
	}
	return getLE(b), nil
}

// Write64 stores a little-endian uint64 at p.
func (m *Memory) Write64(p Phys, v uint64) error {
	var b [8]byte
	putLE(b[:], v)
	return m.WritePhys(p, b[:])
}

// ZeroFrame clears a frame's contents and charges the zeroing cost.
func (m *Memory) ZeroFrame(f Frame) error {
	if err := m.checkFrame(f); err != nil {
		return err
	}
	base := f.Addr()
	for i := Phys(0); i < PageSize; i++ {
		m.bytes[base+i] = 0
	}
	if m.clock != nil {
		m.clock.Advance(CostPageZero)
	}
	return nil
}

// FrameBytes exposes the raw contents of a frame. It is used by the
// devices (disk DMA, swap) and by tests; guest code never touches it.
func (m *Memory) FrameBytes(f Frame) ([]byte, error) {
	if err := m.checkFrame(f); err != nil {
		return nil, err
	}
	base := int(f.Addr())
	return m.bytes[base : base+PageSize], nil
}

func getLE(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLE(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v)
		v >>= 8
	}
}
