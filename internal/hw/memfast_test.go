package hw

import (
	"bytes"
	"testing"
)

func TestReadPhysIntoMatchesReadPhys(t *testing.T) {
	m := newTestMem(t, 16)
	f, err := m.AllocFrame(FrameKernelData)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := m.WritePhys(f.Addr()+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.ReadPhysInto(f.Addr()+100, got); err != nil {
		t.Fatal(err)
	}
	want, err := m.ReadPhys(f.Addr()+100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadPhysInto = %v, ReadPhys = %v", got, want)
	}
}

func TestLazyFramesReadZero(t *testing.T) {
	m := newTestMem(t, 16)
	f, err := m.AllocFrame(FrameKernelData)
	if err != nil {
		t.Fatal(err)
	}
	// Never-written frames must read as zero, like pre-zeroed RAM.
	buf := []byte{0xff, 0xff, 0xff, 0xff}
	if err := m.ReadPhysInto(f.Addr()+17, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d of untouched frame = %#x, want 0", i, b)
		}
	}
	v, err := m.ReadLE(f.Addr()+8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("ReadLE of untouched frame = %#x, want 0", v)
	}
}

func TestReadWriteLECrossFrame(t *testing.T) {
	m := newTestMem(t, 16)
	// Two adjacent frames so an 8-byte scalar can straddle the boundary.
	var f1, f2 Frame
	for {
		f, err := m.AllocFrame(FrameKernelData)
		if err != nil {
			t.Fatal(err)
		}
		if f1 == 0 {
			f1 = f
			continue
		}
		if f == f1+1 {
			f2 = f
			break
		}
	}
	_ = f2
	p := f1.Addr() + PageSize - 3 // 3 bytes in f1, 5 in f2
	const val = 0x1122334455667788
	if err := m.WriteLE(p, 8, val); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadLE(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != val {
		t.Fatalf("cross-frame ReadLE = %#x, want %#x", got, val)
	}
	// The same bytes must be visible through the slice path.
	b, err := m.ReadPhys(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if getLE(b) != val {
		t.Fatalf("ReadPhys sees %#x, want %#x", getLE(b), val)
	}
}

func TestWriteLEReadLESizes(t *testing.T) {
	m := newTestMem(t, 16)
	f, err := m.AllocFrame(FrameKernelData)
	if err != nil {
		t.Fatal(err)
	}
	const val = 0xa1b2c3d4e5f60718
	for size := 1; size <= 8; size++ {
		p := f.Addr() + Phys(size*16)
		if err := m.WriteLE(p, size, val); err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadLE(p, size)
		if err != nil {
			t.Fatal(err)
		}
		want := val & (^uint64(0) >> (64 - 8*size))
		if size == 8 {
			want = val
		}
		if got != want {
			t.Fatalf("size %d: got %#x, want %#x", size, got, want)
		}
	}
}
