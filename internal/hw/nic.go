package hw

// NIC models a gigabit Ethernet interface as a pair of packet queues
// with a per-packet latency and a serialization (bandwidth) cost. The
// network experiments (thttpd, ssh transfers) move their bytes through
// here, so large transfers become NIC-bound — reproducing the paper's
// "negligible reduction for large files" shape.
//
// Like the disk, the wire is untrusted: the peer helper methods expose
// everything in flight, which is why ghosting applications encrypt
// network payloads.
type NIC struct {
	clock *Clock
	// rx holds packets delivered to this NIC and not yet read.
	rx []Packet
	// peer, when set, receives transmitted packets (simple two-node
	// link, matching the paper's dedicated GigE network).
	peer *NIC

	latencyCycles  uint64
	perByteCycles  float64
	bytesSent      uint64
	bytesReceived  uint64
	packetsDropped uint64
	queueLimit     int

	// recvTap, when set, observes every packet accepted into rx — the
	// record layer's view of external input arriving on the wire. Pure
	// host bookkeeping, charges nothing.
	recvTap func(Packet)
}

// Packet is one frame on the wire.
type Packet struct {
	Port    uint16 // demultiplexing key (like a UDP/TCP port)
	Payload []byte
}

// MTU is the largest payload a single packet may carry.
const MTU = 1500

// NIC timing at 3.4 GHz: ~50 µs per-packet latency (interrupt +
// protocol cost) and 1 Gbit/s serialization = 8 ns/byte ≈ 27.2
// cycles/byte.
const (
	nicLatencyCycles = 8_000
	nicPerByteCycles = 27.2
)

// NewNIC creates an unconnected NIC.
func NewNIC(clock *Clock) *NIC {
	return &NIC{
		clock:         clock,
		latencyCycles: nicLatencyCycles,
		perByteCycles: nicPerByteCycles,
		queueLimit:    4096,
	}
}

// Connect links two NICs as the two ends of a dedicated cable.
func Connect(a, b *NIC) {
	a.peer = b
	b.peer = a
}

// Send transmits a packet to the peer, charging latency + serialization
// time. Oversized payloads are rejected by the caller (the kernel's
// network stack segments to MTU).
func (n *NIC) Send(p Packet) {
	n.clock.Charge(TagIO, n.latencyCycles+uint64(float64(len(p.Payload))*n.perByteCycles))
	n.bytesSent += uint64(len(p.Payload))
	if n.peer == nil {
		n.packetsDropped++
		return
	}
	n.peer.deliver(p)
}

func (n *NIC) deliver(p Packet) {
	if len(n.rx) >= n.queueLimit {
		n.packetsDropped++
		return
	}
	n.bytesReceived += uint64(len(p.Payload))
	cp := Packet{Port: p.Port, Payload: append([]byte(nil), p.Payload...)}
	n.rx = append(n.rx, cp)
	if n.recvTap != nil {
		n.recvTap(cp)
	}
}

// SetRecvTap installs (or, with nil, removes) the ingress observer used
// by the record layer.
func (n *NIC) SetRecvTap(fn func(Packet)) { n.recvTap = fn }

// Inject delivers a packet into the receive queue as if it had arrived
// from the wire, charging nothing — the replay layer's re-enactment of
// a recorded external arrival.
func (n *NIC) Inject(p Packet) { n.deliver(p) }

// Receive dequeues the next packet destined for port, searching the rx
// queue in order. It reports ok=false if none is queued.
func (n *NIC) Receive(port uint16) (Packet, bool) {
	for i, p := range n.rx {
		if p.Port == port {
			n.rx = append(n.rx[:i], n.rx[i+1:]...)
			return p, true
		}
	}
	return Packet{}, false
}

// Pending reports how many packets are queued for port.
func (n *NIC) Pending(port uint16) int {
	c := 0
	for _, p := range n.rx {
		if p.Port == port {
			c++
		}
	}
	return c
}

// Stats returns cumulative byte counters.
func (n *NIC) Stats() (sent, received, dropped uint64) {
	return n.bytesSent, n.bytesReceived, n.packetsDropped
}

// Snoop returns copies of every queued packet without dequeuing them —
// the untrusted-wire primitive used by eavesdropping tests.
func (n *NIC) Snoop() []Packet {
	out := make([]Packet, len(n.rx))
	for i, p := range n.rx {
		out[i] = Packet{Port: p.Port, Payload: append([]byte(nil), p.Payload...)}
	}
	return out
}
