package hw

import "sort"

// NIC models a gigabit Ethernet interface as a pair of packet queues
// with a per-packet latency and a serialization (bandwidth) cost. The
// network experiments (thttpd, ssh transfers, the C10K harness) move
// their bytes through here, so large transfers become NIC-bound —
// reproducing the paper's "negligible reduction for large files" shape.
//
// Receive-side buffering is indexed by destination port: each port gets
// its own bounded queue, so a stack serving tens of thousands of
// connections dequeues in O(1) instead of scanning one shared ring.
// The set of ports with pending packets is kept sorted — that list is
// the NIC's "descriptor ring", and draining it in port order is what
// keeps multi-port delivery deterministic under -hostpar.
//
// Like the disk, the wire is untrusted: the peer helper methods expose
// everything in flight, which is why ghosting applications encrypt
// network payloads.
type NIC struct {
	clock *Clock
	// rxq holds the per-port receive queues: packets delivered to this
	// NIC and not yet read, keyed by destination port. rxPorts mirrors
	// the non-empty keys in sorted order; rxCount is the total queued
	// packet count across ports.
	rxq     map[uint16][]rxPacket
	rxPorts []uint16
	rxCount int
	// queuedBytes tracks queued payload bytes per port — the receive
	// window math in the kernel charges senders against it.
	queuedBytes map[uint16]uint64
	// nextSeq stamps packets in arrival order across all ports, so
	// Snoop and snapshot images preserve the global arrival sequence
	// even though storage is per-port.
	nextSeq uint64

	// peer, when set, receives transmitted packets (simple two-node
	// link, matching the paper's dedicated GigE network).
	peer *NIC
	// owner is an opaque back-pointer set by whoever drives this NIC
	// (the kernel's net stack), letting the sending side consult the
	// receiver's flow-control state without a hw→kernel dependency.
	owner any

	latencyCycles  uint64
	perByteCycles  float64
	bytesSent      uint64
	bytesReceived  uint64
	packetsDropped uint64
	// portLimit caps each port's queue length; overflow drops the
	// packet and charges the port's drop counter.
	portLimit int
	portDrops map[uint16]uint64

	// recvTap, when set, observes every packet accepted into rx — the
	// record layer's view of external input arriving on the wire. Pure
	// host bookkeeping, charges nothing.
	recvTap func(Packet)
}

// rxPacket is a queued frame plus its global arrival sequence number.
type rxPacket struct {
	pkt Packet
	seq uint64
}

// Packet is one frame on the wire.
type Packet struct {
	Port    uint16 // demultiplexing key (like a UDP/TCP port)
	Payload []byte
}

// MTU is the largest payload a single packet may carry.
const MTU = 1500

// NIC timing at 3.4 GHz: ~50 µs per-packet latency (interrupt +
// protocol cost) and 1 Gbit/s serialization = 8 ns/byte ≈ 27.2
// cycles/byte.
const (
	nicLatencyCycles = 8_000
	nicPerByteCycles = 27.2
)

// defaultPortLimit bounds each port's receive queue. It matches the
// old NIC's global queue limit, so single-stream workloads see the
// same drop behavior as before the per-port split.
const defaultPortLimit = 4096

// NewNIC creates an unconnected NIC.
func NewNIC(clock *Clock) *NIC {
	return &NIC{
		clock:         clock,
		rxq:           make(map[uint16][]rxPacket),
		queuedBytes:   make(map[uint16]uint64),
		portDrops:     make(map[uint16]uint64),
		latencyCycles: nicLatencyCycles,
		perByteCycles: nicPerByteCycles,
		portLimit:     defaultPortLimit,
	}
}

// Connect links two NICs as the two ends of a dedicated cable.
func Connect(a, b *NIC) {
	a.peer = b
	b.peer = a
}

// Peer returns the NIC at the other end of the cable, nil if unplugged.
func (n *NIC) Peer() *NIC { return n.peer }

// SetOwner attaches the driving stack's back-pointer; Owner reads it.
// The NIC never interprets the value.
func (n *NIC) SetOwner(o any) { n.owner = o }
func (n *NIC) Owner() any     { return n.owner }

// SetPortLimit changes the per-port queue cap (test hook and kernel
// tuning knob).
func (n *NIC) SetPortLimit(limit int) { n.portLimit = limit }

// PortLimit reports the per-port queue cap.
func (n *NIC) PortLimit() int { return n.portLimit }

// Send transmits a packet to the peer, charging latency + serialization
// time. Oversized payloads are rejected by the caller (the kernel's
// network stack segments to MTU).
func (n *NIC) Send(p Packet) {
	n.clock.Charge(TagNet, n.latencyCycles+uint64(float64(len(p.Payload))*n.perByteCycles))
	n.bytesSent += uint64(len(p.Payload))
	if n.peer == nil {
		n.packetsDropped++
		return
	}
	n.peer.deliver(p)
}

func (n *NIC) deliver(p Packet) {
	q := n.rxq[p.Port]
	if len(q) >= n.portLimit {
		n.packetsDropped++
		n.portDrops[p.Port]++
		return
	}
	n.bytesReceived += uint64(len(p.Payload))
	cp := Packet{Port: p.Port, Payload: append([]byte(nil), p.Payload...)}
	if len(q) == 0 {
		n.insertPort(p.Port)
	}
	n.rxq[p.Port] = append(q, rxPacket{pkt: cp, seq: n.nextSeq})
	n.nextSeq++
	n.rxCount++
	n.queuedBytes[p.Port] += uint64(len(cp.Payload))
	if n.recvTap != nil {
		n.recvTap(cp)
	}
}

// insertPort adds port to the sorted pending list (not already present).
func (n *NIC) insertPort(port uint16) {
	i := sort.Search(len(n.rxPorts), func(i int) bool { return n.rxPorts[i] >= port })
	n.rxPorts = append(n.rxPorts, 0)
	copy(n.rxPorts[i+1:], n.rxPorts[i:])
	n.rxPorts[i] = port
}

// removePort drops port from the sorted pending list.
func (n *NIC) removePort(port uint16) {
	i := sort.Search(len(n.rxPorts), func(i int) bool { return n.rxPorts[i] >= port })
	if i < len(n.rxPorts) && n.rxPorts[i] == port {
		n.rxPorts = append(n.rxPorts[:i], n.rxPorts[i+1:]...)
	}
}

// SetRecvTap installs (or, with nil, removes) the ingress observer used
// by the record layer.
func (n *NIC) SetRecvTap(fn func(Packet)) { n.recvTap = fn }

// Inject delivers a packet into the receive queue as if it had arrived
// from the wire, charging nothing — the replay layer's re-enactment of
// a recorded external arrival.
func (n *NIC) Inject(p Packet) { n.deliver(p) }

// Receive dequeues the next packet destined for port in arrival order.
// It reports ok=false if none is queued. O(1) amortized: a map lookup
// plus a head pop.
func (n *NIC) Receive(port uint16) (Packet, bool) {
	q := n.rxq[port]
	if len(q) == 0 {
		return Packet{}, false
	}
	head := q[0]
	if len(q) == 1 {
		delete(n.rxq, port)
		n.removePort(port)
	} else {
		n.rxq[port] = q[1:]
	}
	n.rxCount--
	n.queuedBytes[port] -= uint64(len(head.pkt.Payload))
	if n.queuedBytes[port] == 0 {
		delete(n.queuedBytes, port)
	}
	return head.pkt, true
}

// PeekPayloadLen reports the payload length of the head packet queued
// for port, or -1 if the queue is empty. The kernel's receive-window
// check uses it to decide whether the head frame fits without
// dequeuing it.
func (n *NIC) PeekPayloadLen(port uint16) int {
	q := n.rxq[port]
	if len(q) == 0 {
		return -1
	}
	return len(q[0].pkt.Payload)
}

// Pending reports how many packets are queued for port.
func (n *NIC) Pending(port uint16) int { return len(n.rxq[port]) }

// HasPending reports whether any packet is queued on any port — the
// interrupt line the kernel checks instead of scanning every socket.
func (n *NIC) HasPending() bool { return n.rxCount > 0 }

// PendingPorts returns the ports with at least one queued packet, in
// ascending order. The returned slice is a copy; callers may drain
// while iterating it.
func (n *NIC) PendingPorts() []uint16 {
	return append([]uint16(nil), n.rxPorts...)
}

// QueuedBytes reports the payload bytes currently queued for port —
// in-flight data the receiver has not yet consumed, which the sender's
// window math counts against the receive window.
func (n *NIC) QueuedBytes(port uint16) uint64 { return n.queuedBytes[port] }

// PortDrops reports how many packets addressed to port were dropped by
// the per-port queue limit.
func (n *NIC) PortDrops(port uint16) uint64 { return n.portDrops[port] }

// Stats returns cumulative byte counters.
func (n *NIC) Stats() (sent, received, dropped uint64) {
	return n.bytesSent, n.bytesReceived, n.packetsDropped
}

// Snoop returns copies of every queued packet in arrival order without
// dequeuing them — the untrusted-wire primitive used by eavesdropping
// tests.
func (n *NIC) Snoop() []Packet {
	all := make([]rxPacket, 0, n.rxCount)
	for _, port := range n.rxPorts {
		all = append(all, n.rxq[port]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]Packet, len(all))
	for i, p := range all {
		out[i] = Packet{Port: p.pkt.Port, Payload: append([]byte(nil), p.pkt.Payload...)}
	}
	return out
}
