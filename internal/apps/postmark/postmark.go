// Package postmark reimplements the Postmark mail-server benchmark as
// configured in the paper's Table 5: 500 base files of 500 bytes to
// 9.77 KB, 512-byte I/O blocks, read/append and create/delete biases of
// 5 (even mix), buffered file I/O, and a configurable transaction
// count (the paper ran 500,000; tests scale this down).
package postmark

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/kernel"
)

// Config mirrors Postmark's knobs.
type Config struct {
	BaseFiles    int
	MinSize      int
	MaxSize      int
	BlockSize    int
	Transactions int
	// Biases on a 0..10 scale; 5 = even split (the paper's setting).
	ReadAppendBias   int
	CreateDeleteBias int
	Seed             uint64
}

// PaperConfig returns the paper's §8.5 configuration with a scaled
// transaction count.
func PaperConfig(transactions int) Config {
	return Config{
		BaseFiles:        500,
		MinSize:          500,
		MaxSize:          10000, // "9.77 KB"
		BlockSize:        512,
		Transactions:     transactions,
		ReadAppendBias:   5,
		CreateDeleteBias: 5,
		Seed:             42,
	}
}

// Result is one Postmark run.
type Result struct {
	Transactions int
	Seconds      float64
	TPS          float64
	Creates      int
	Deletes      int
	Reads        int
	Appends      int
}

// prng is Postmark's own tiny generator (deterministic workload).
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

// Run executes the benchmark in a fresh process and returns the result.
func Run(k *kernel.Kernel, cfg Config) Result {
	var res Result
	var startCycles, endCycles uint64
	_, err := k.Spawn("postmark", func(p *kernel.Proc) {
		rng := &prng{s: cfg.Seed | 1}
		// Working set bookkeeping (file name -> current size).
		files := make([]string, 0, cfg.BaseFiles*2)
		nextID := 0
		newName := func() string {
			nextID++
			return fmt.Sprintf("/pm%06d", nextID)
		}
		blockBuf := p.Alloc(cfg.BlockSize)
		p.Write(blockBuf, make([]byte, cfg.BlockSize))
		writeFile := func(name string, size int) {
			pp := p.PushString(name)
			fd := p.Syscall(kernel.SysOpen, pp, kernel.OCreat|kernel.ORdWr|kernel.OTrunc)
			for off := 0; off < size; off += cfg.BlockSize {
				n := cfg.BlockSize
				if size-off < n {
					n = size - off
				}
				p.Syscall(kernel.SysWrite, fd, blockBuf, uint64(n))
			}
			p.Syscall(kernel.SysClose, fd)
		}
		fileSize := func() int { return cfg.MinSize + rng.intn(cfg.MaxSize-cfg.MinSize+1) }

		// Phase 1: create the base set.
		for i := 0; i < cfg.BaseFiles; i++ {
			name := newName()
			writeFile(name, fileSize())
			files = append(files, name)
		}

		// Phase 2: transactions.
		startCycles = k.M.Clock.Cycles()
		readBuf := p.Alloc(cfg.BlockSize)
		for t := 0; t < cfg.Transactions; t++ {
			if rng.intn(10) < cfg.CreateDeleteBias {
				// create/delete pair half
				if rng.intn(10) < 5 || len(files) == 0 {
					name := newName()
					writeFile(name, fileSize())
					files = append(files, name)
					res.Creates++
				} else {
					i := rng.intn(len(files))
					pp := p.PushString(files[i])
					p.Syscall(kernel.SysUnlink, pp)
					files[i] = files[len(files)-1]
					files = files[:len(files)-1]
					res.Deletes++
				}
			} else {
				// read/append half
				if len(files) == 0 {
					continue
				}
				name := files[rng.intn(len(files))]
				pp := p.PushString(name)
				if rng.intn(10) < cfg.ReadAppendBias {
					fd := p.Syscall(kernel.SysOpen, pp, kernel.ORdOnly)
					for {
						n := p.Syscall(kernel.SysRead, fd, readBuf, uint64(cfg.BlockSize))
						if _, bad := kernel.IsErr(n); bad || n == 0 {
							break
						}
					}
					p.Syscall(kernel.SysClose, fd)
					res.Reads++
				} else {
					fd := p.Syscall(kernel.SysOpen, pp, kernel.ORdWr|kernel.OAppend)
					p.Syscall(kernel.SysWrite, fd, blockBuf, uint64(cfg.BlockSize))
					p.Syscall(kernel.SysClose, fd)
					res.Appends++
				}
			}
		}
		endCycles = k.M.Clock.Cycles()

		// Phase 3: delete everything left.
		for _, name := range files {
			pp := p.PushString(name)
			p.Syscall(kernel.SysUnlink, pp)
		}
		p.Exit(0)
	})
	if err != nil {
		panic(fmt.Sprintf("postmark: spawn: %v", err))
	}
	k.RunUntilIdle()
	res.Transactions = cfg.Transactions
	res.Seconds = hw.Seconds(endCycles - startCycles)
	if res.Seconds > 0 {
		res.TPS = float64(cfg.Transactions) / res.Seconds
	}
	return res
}
