package postmark

import (
	"testing"

	"repro"
)

func TestRunCompletesAllPhases(t *testing.T) {
	sys := repro.MustNewSystem(repro.Native)
	res := Run(sys.Kernel, PaperConfig(300))
	if res.Transactions != 300 {
		t.Errorf("transactions = %d", res.Transactions)
	}
	if res.Creates+res.Deletes+res.Reads+res.Appends == 0 {
		t.Fatalf("no operations recorded: %+v", res)
	}
	// The biases of 5 give roughly even create/delete vs read/append
	// splits; sanity-check that every class occurred.
	if res.Creates == 0 || res.Deletes == 0 || res.Reads == 0 || res.Appends == 0 {
		t.Errorf("operation mix missing a class: %+v", res)
	}
	if res.Seconds <= 0 || res.TPS <= 0 {
		t.Errorf("no timing: %+v", res)
	}
	// Teardown deleted the working set.
	names, err := sys.Kernel.FS.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if len(n) > 2 && n[:2] == "pm" {
			t.Errorf("leftover postmark file %q", n)
		}
	}
}

func TestDeterministicWorkload(t *testing.T) {
	a := Run(repro.MustNewSystem(repro.Native).Kernel, PaperConfig(200))
	b := Run(repro.MustNewSystem(repro.Native).Kernel, PaperConfig(200))
	if a.Creates != b.Creates || a.Reads != b.Reads || a.Seconds != b.Seconds {
		t.Errorf("same seed, different runs: %+v vs %+v", a, b)
	}
}

func TestVirtualGhostOverheadShape(t *testing.T) {
	nat := Run(repro.MustNewSystem(repro.Native).Kernel, PaperConfig(300))
	vg := Run(repro.MustNewSystem(repro.VirtualGhost).Kernel, PaperConfig(300))
	ratio := vg.Seconds / nat.Seconds
	// Paper Table 5: 4.72x. Accept the band 3x–6.5x.
	if ratio < 3 || ratio > 6.5 {
		t.Errorf("postmark overhead %.2fx outside the paper's band", ratio)
	}
}
