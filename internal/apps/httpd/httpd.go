// Package httpd is the thttpd-like static web server and the
// ApacheBench-like load generator of the paper's Figure 2 experiment:
// files of 1 KB–1 MB served over the simulated gigabit link, bandwidth
// reported per file size.
//
// The server is a standard, non-ghosting application (as in the paper:
// "a statically linked, non-ghosting version of the thttpd web
// server"); the experiment measures how the kernel configuration alone
// affects network service throughput.
package httpd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/kernel"
)

// Port is the server's listening port.
const Port = 80

// chunk is the server's send unit.
const chunk = 32 * 1024

// requestUserCycles is thttpd's per-request user-space work (HTTP
// parsing, logging, response headers) — ~74 µs at 3.4 GHz, putting the
// native 1 KB request rate near the paper's ~8 MB/s.
const requestUserCycles = 250_000

// ServerMain runs the web server inside a process: accept, parse a
// one-line request, stream the file, close. A request line of "QUIT"
// shuts the server down (the harness's replacement for SIGTERM).
func ServerMain(p *kernel.Proc) {
	sfd := p.Syscall(kernel.SysSocket)
	if ret := p.Syscall(kernel.SysBind, sfd, Port); ret != 0 {
		p.Exit(1)
	}
	p.Syscall(kernel.SysListen, sfd)
	reqBuf := p.Alloc(256)
	for {
		cfd := p.Syscall(kernel.SysAccept, sfd)
		if _, bad := kernel.IsErr(cfd); bad {
			p.Exit(1)
		}
		n := p.Syscall(kernel.SysRecv, cfd, reqBuf, 256)
		// Request parsing, logging, and header formatting are
		// application CPU, identical on every kernel configuration.
		p.Compute(requestUserCycles)
		req := strings.TrimSpace(string(p.Read(reqBuf, int(n))))
		if req == "QUIT" {
			p.Syscall(kernel.SysClose, cfd)
			break
		}
		path := strings.TrimPrefix(req, "GET ")
		serveFile(p, cfd, path)
		p.Syscall(kernel.SysClose, cfd)
	}
	p.Exit(0)
}

// serveFile streams a file (or a 404 header) to the connection.
func serveFile(p *kernel.Proc, cfd uint64, path string) {
	pathPtr := p.PushString(path)
	fd := p.Syscall(kernel.SysOpen, pathPtr, kernel.ORdOnly)
	if _, bad := kernel.IsErr(fd); bad {
		hdr := p.PushString("404\n")
		p.Syscall(kernel.SysSendTo, cfd, hdr, 4)
		return
	}
	// stat for the Content-Length header.
	statBuf := p.Alloc(16)
	p.Syscall(kernel.SysStat, pathPtr, statBuf)
	size := p.Load(statBuf, 8)
	hdr := p.PushString(fmt.Sprintf("200 %d\n", size))
	p.Syscall(kernel.SysSendTo, cfd, hdr, uint64(len(fmt.Sprintf("200 %d\n", size))))
	buf := p.Alloc(chunk)
	for {
		n := p.Syscall(kernel.SysRead, fd, buf, chunk)
		if _, bad := kernel.IsErr(n); bad || n == 0 {
			break
		}
		p.Syscall(kernel.SysSendTo, cfd, buf, n)
	}
	p.Syscall(kernel.SysClose, fd)
}

// BenchResult is one load-generator measurement.
type BenchResult struct {
	FileSize int
	Requests int
	Bytes    uint64
	Seconds  float64
	KBPerSec float64
	Failures int
}

// ClientMain runs an ApacheBench-style load generator: `requests`
// sequential fetches of path, measuring total goodput. (Concurrency in
// the paper's ab run keeps the link saturated; in the serialized
// simulation sequential fetches measure the same per-byte path.)
func ClientMain(p *kernel.Proc, path string, requests int, out *BenchResult) {
	buf := p.Alloc(chunk)
	req := p.PushString("GET " + path)
	start := p.Kernel().M.Clock.Cycles()
	for i := 0; i < requests; i++ {
		fd := p.Syscall(kernel.SysSocket)
		p.Syscall(kernel.SysConnect, fd, Port, kernel.RemoteHost)
		p.Syscall(kernel.SysSendTo, fd, req, uint64(len("GET "+path)))
		// Read the header line then the body until EOF.
		n := p.Syscall(kernel.SysRecv, fd, buf, chunk)
		if _, bad := kernel.IsErr(n); bad || n == 0 {
			out.Failures++
			p.Syscall(kernel.SysClose, fd)
			continue
		}
		first := p.Read(buf, int(n))
		body, want, okHdr := parseHeader(first)
		if !okHdr {
			out.Failures++
			p.Syscall(kernel.SysClose, fd)
			continue
		}
		got := uint64(len(body))
		for got < want {
			n := p.Syscall(kernel.SysRecv, fd, buf, chunk)
			if _, bad := kernel.IsErr(n); bad || n == 0 {
				break
			}
			got += n
		}
		if got < want {
			out.Failures++
		}
		out.Bytes += got
		p.Syscall(kernel.SysClose, fd)
	}
	cycles := p.Kernel().M.Clock.Cycles() - start
	out.Requests = requests
	out.Seconds = float64(cycles) / 3.4e9
	if out.Seconds > 0 {
		out.KBPerSec = float64(out.Bytes) / 1024 / out.Seconds
	}
}

// parseHeader splits "200 <len>\n<body...>" and returns the body bytes
// in this first packet, the advertised length, and whether the response
// was a success.
func parseHeader(b []byte) (body []byte, want uint64, ok bool) {
	s := string(b)
	nl := strings.IndexByte(s, '\n')
	if nl < 0 {
		return nil, 0, false
	}
	fields := strings.Fields(s[:nl])
	if len(fields) != 2 || fields[0] != "200" {
		return nil, 0, false
	}
	n, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return nil, 0, false
	}
	return b[nl+1:], n, true
}

// StopServer sends the QUIT request from a client process.
func StopServer(p *kernel.Proc) {
	fd := p.Syscall(kernel.SysSocket)
	p.Syscall(kernel.SysConnect, fd, Port, kernel.RemoteHost)
	quit := p.PushString("QUIT")
	p.Syscall(kernel.SysSendTo, fd, quit, 4)
	p.Syscall(kernel.SysClose, fd)
}
