package httpd

import (
	"testing"

	"repro"
	"repro/internal/hw"
	"repro/internal/kernel"
)

func pairUp(t *testing.T, serverMode repro.Mode) (*repro.System, *repro.System, *kernel.World) {
	t.Helper()
	server, err := repro.NewSystem(serverMode)
	if err != nil {
		t.Fatal(err)
	}
	client, err := repro.NewSystemWithOptions(repro.Native,
		repro.Options{SharedClock: server.Machine.Clock})
	if err != nil {
		t.Fatal(err)
	}
	hw.Connect(server.Machine.NIC, client.Machine.NIC)
	return server, client, &kernel.World{Kernels: []*kernel.Kernel{server.Kernel, client.Kernel}}
}

func TestServeAndMeasure(t *testing.T) {
	for _, mode := range []repro.Mode{repro.Native, repro.VirtualGhost} {
		server, client, world := pairUp(t, mode)
		payload := make([]byte, 10_000)
		server.Machine.RNG.Fill(payload)
		server.Kernel.WriteKernelFile("/site.bin", payload)
		if _, err := server.Kernel.Spawn("thttpd", ServerMain); err != nil {
			t.Fatal(err)
		}
		var res BenchResult
		done := false
		if _, err := client.Kernel.Spawn("ab", func(p *kernel.Proc) {
			ClientMain(p, "/site.bin", 4, &res)
			StopServer(p)
			done = true
		}); err != nil {
			t.Fatal(err)
		}
		if !world.Run(func() bool { return done }) {
			t.Fatalf("[%v] stalled", mode)
		}
		if res.Failures != 0 {
			t.Errorf("[%v] %d failed requests", mode, res.Failures)
		}
		if res.Bytes != 4*uint64(len(payload)) {
			t.Errorf("[%v] bytes = %d", mode, res.Bytes)
		}
		if res.KBPerSec <= 0 {
			t.Errorf("[%v] bandwidth not measured", mode)
		}
	}
}

func TestMissingFile404(t *testing.T) {
	server, client, world := pairUp(t, repro.Native)
	if _, err := server.Kernel.Spawn("thttpd", ServerMain); err != nil {
		t.Fatal(err)
	}
	var res BenchResult
	done := false
	if _, err := client.Kernel.Spawn("ab", func(p *kernel.Proc) {
		ClientMain(p, "/nope.bin", 1, &res)
		StopServer(p)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done }) {
		t.Fatalf("stalled")
	}
	if res.Failures != 1 || res.Bytes != 0 {
		t.Errorf("404 handling: %+v", res)
	}
}

func TestServerStopsOnQuit(t *testing.T) {
	server, client, world := pairUp(t, repro.Native)
	if _, err := server.Kernel.Spawn("thttpd", ServerMain); err != nil {
		t.Fatal(err)
	}
	done := false
	if _, err := client.Kernel.Spawn("q", func(p *kernel.Proc) {
		StopServer(p)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done }) {
		t.Fatalf("stalled")
	}
	server.Kernel.RunUntilIdle()
	if server.Kernel.NumLive() != 0 {
		t.Errorf("server still alive after QUIT")
	}
}

func TestParseHeader(t *testing.T) {
	body, want, ok := parseHeader([]byte("200 12345\nabc"))
	if !ok || want != 12345 || string(body) != "abc" {
		t.Errorf("parse = %q %d %v", body, want, ok)
	}
	for _, bad := range []string{"404\n", "garbage", "200 notanumber\n"} {
		if _, _, ok := parseHeader([]byte(bad)); ok {
			t.Errorf("%q parsed as success", bad)
		}
	}
	// An empty 200 response is still a success.
	if _, w, ok := parseHeader([]byte("200 0\n")); !ok || w != 0 {
		t.Errorf("empty 200 rejected")
	}
}
