// The event-driven ghost web server: one process serving every
// connection through nonblocking sockets and the poll-set readiness
// syscalls (DESIGN.md §19), in contrast to ServerMain's
// accept-serve-close loop. It speaks the same one-line protocol plus a
// session layer sealed with the application key, so a hostile OS that
// reads the server's buffers or the wire sees only ciphertext tokens:
//
//	GET <path>            -> 200 <len>\n<body> | 404\n
//	LOGIN <user>          -> 210 <hex sealed token>\n
//	AUTH <hextoken> <path> -> 200 <len>\n<body> | 403\n
//	QUIT                  -> server drains and exits
//
// Oversized or malformed request lines get 400\n and a close, which is
// what defeats the slowloris and oversized-header adversaries in the
// C10K experiment: a client that dribbles bytes forever is cut by the
// idle timeout, one that sends a huge "header" is cut at MaxHeader.
package httpd

import (
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/vgcrypt"
)

// EventPort is the event-driven server's default listening port.
const EventPort = 8080

// EventServerConfig parameterizes EventServerMain.
type EventServerConfig struct {
	Port    uint16
	Backlog int // listener backlog cap (0 = unlimited)
	// IdleTimeoutCycles auto-closes connections with no received data
	// for this long (0 = never): the keep-alive reaper.
	IdleTimeoutCycles uint64
	// MaxHeader caps the request line; longer lines get 400 and a
	// close. 0 means the default of 256 bytes.
	MaxHeader int
	// AppKey seals session tokens. nil means fetch the key from the VM
	// (sva.getKey) — the ghosting path, which requires the server to be
	// installed as a trusted program.
	AppKey []byte
}

// evConn is the per-connection state of the event loop: the partial
// request line read so far and the unsent response tail.
type evConn struct {
	in      []byte
	out     []byte
	wantOut bool // POLLOUT registered
	dead    bool // close after the out buffer drains
}

// sessionLabel derives the token-sealing subkey from the app key.
const sessionLabel = "eventd-session"

// EventServerMain returns the server's process main. The server owns
// every connection from one process: a poll set multiplexes the
// listener and all live connections, and the per-request work is the
// same requestUserCycles of parsing/logging CPU as the classic server.
func EventServerMain(cfg EventServerConfig) func(p *kernel.Proc) {
	if cfg.Port == 0 {
		cfg.Port = EventPort
	}
	if cfg.MaxHeader == 0 {
		cfg.MaxHeader = 256
	}
	return func(p *kernel.Proc) {
		key := cfg.AppKey
		if key == nil {
			k, err := p.GetKey()
			if err != nil {
				p.Exit(1)
			}
			key = k
		}
		sessKey := vgcrypt.DeriveKey(key, sessionLabel)

		sfd := p.Syscall(kernel.SysSocket)
		if ret := p.Syscall(kernel.SysBind, sfd, uint64(cfg.Port)); ret != 0 {
			p.Exit(1)
		}
		p.Syscall(kernel.SysListen, sfd, uint64(cfg.Backlog))
		// Accepted connections inherit both settings from the listener.
		p.Syscall(kernel.SysNonblock, sfd, 1)
		if cfg.IdleTimeoutCycles != 0 {
			p.Syscall(kernel.SysSockTimeo, sfd, cfg.IdleTimeoutCycles)
		}

		pfd := p.Syscall(kernel.SysPollCreate)
		p.Syscall(kernel.SysPollCtl, pfd, kernel.PollCtlAdd, sfd, kernel.POLLIN)

		const maxEvents = 64
		evBuf := p.Alloc(maxEvents * 8)
		ioBuf := p.Alloc(chunk)
		conns := make(map[int]*evConn)
		var sessCtr uint64
		quit := false

		closeConn := func(fd int) {
			p.Syscall(kernel.SysPollCtl, pfd, kernel.PollCtlDel, uint64(fd))
			p.Syscall(kernel.SysClose, uint64(fd))
			delete(conns, fd)
		}

		// flush pushes c.out until done or the window fills, adjusting
		// POLLOUT interest to match whether output is still pending.
		flush := func(fd int, c *evConn) {
			for len(c.out) > 0 {
				n := len(c.out)
				if n > chunk {
					n = chunk
				}
				p.Write(ioBuf, c.out[:n])
				ret := p.Syscall(kernel.SysSendTo, uint64(fd), ioBuf, uint64(n))
				if e, bad := kernel.IsErr(ret); bad {
					if e == kernel.EAGAIN {
						break
					}
					c.dead = true // peer gone; nothing left to deliver
					c.out = nil
					break
				}
				c.out = c.out[ret:]
			}
			if len(c.out) > 0 && !c.wantOut {
				c.wantOut = true
				p.Syscall(kernel.SysPollCtl, pfd, kernel.PollCtlMod, uint64(fd), kernel.POLLIN|kernel.POLLOUT)
			} else if len(c.out) == 0 && c.wantOut {
				c.wantOut = false
				p.Syscall(kernel.SysPollCtl, pfd, kernel.PollCtlMod, uint64(fd), kernel.POLLIN)
			}
			if len(c.out) == 0 && c.dead {
				closeConn(fd)
			}
		}

		// respond queues a reply and attempts an immediate send.
		respond := func(fd int, c *evConn, b []byte, thenClose bool) {
			c.out = append(c.out, b...)
			if thenClose {
				c.dead = true
			}
			flush(fd, c)
		}

		serve := func(path string) []byte {
			pathPtr := p.PushString(path)
			ffd := p.Syscall(kernel.SysOpen, pathPtr, kernel.ORdOnly)
			if _, bad := kernel.IsErr(ffd); bad {
				return []byte("404\n")
			}
			statBuf := p.Alloc(16)
			p.Syscall(kernel.SysStat, pathPtr, statBuf)
			size := p.Load(statBuf, 8)
			resp := []byte(fmt.Sprintf("200 %d\n", size))
			for {
				n := p.Syscall(kernel.SysRead, ffd, ioBuf, chunk)
				if _, bad := kernel.IsErr(n); bad || n == 0 {
					break
				}
				resp = append(resp, p.Read(ioBuf, int(n))...)
			}
			p.Syscall(kernel.SysClose, ffd)
			return resp
		}

		handleLine := func(fd int, c *evConn, line string) {
			p.Compute(requestUserCycles)
			switch {
			case line == "QUIT":
				quit = true
			case strings.HasPrefix(line, "GET "):
				respond(fd, c, serve(strings.TrimPrefix(line, "GET ")), false)
			case strings.HasPrefix(line, "LOGIN "):
				user := strings.TrimPrefix(line, "LOGIN ")
				sessCtr++
				blob, err := vgcrypt.SealWithKeyAndCounter(sessKey, sessCtr, []byte("u="+user))
				if err != nil {
					respond(fd, c, []byte("400\n"), true)
					return
				}
				p.ComputeCrypt(uint64(len(blob)) * hw.CostCryptPerByte)
				respond(fd, c, []byte("210 "+hex.EncodeToString(blob)+"\n"), false)
			case strings.HasPrefix(line, "AUTH "):
				rest := strings.TrimPrefix(line, "AUTH ")
				tok, path, ok := strings.Cut(rest, " ")
				blob, err := hex.DecodeString(tok)
				if !ok || err != nil {
					respond(fd, c, []byte("400\n"), true)
					return
				}
				p.ComputeCrypt(uint64(len(blob)) * hw.CostCryptPerByte)
				plain, err := vgcrypt.Open(sessKey, blob)
				if err != nil || !strings.HasPrefix(string(plain), "u=") {
					respond(fd, c, []byte("403\n"), false)
					return
				}
				respond(fd, c, serve(path), false)
			default:
				respond(fd, c, []byte("400\n"), true)
			}
		}

		handleReadable := func(fd int, c *evConn) {
			ret := p.Syscall(kernel.SysRecv, uint64(fd), ioBuf, chunk)
			if e, bad := kernel.IsErr(ret); bad {
				if e != kernel.EAGAIN {
					closeConn(fd)
				}
				return
			}
			if ret == 0 { // peer FIN (or idle kill) with nothing buffered
				if len(c.out) == 0 {
					closeConn(fd)
				} else {
					c.dead = true
				}
				return
			}
			c.in = append(c.in, p.Read(ioBuf, int(ret))...)
			for !c.dead {
				nl := -1
				for i, b := range c.in {
					if b == '\n' {
						nl = i
						break
					}
				}
				if nl < 0 {
					if len(c.in) > cfg.MaxHeader {
						respond(fd, c, []byte("400\n"), true)
					}
					return
				}
				line := strings.TrimSpace(string(c.in[:nl]))
				c.in = c.in[nl+1:]
				handleLine(fd, c, line)
				if quit {
					return
				}
			}
		}

		for !quit {
			n := p.Syscall(kernel.SysPollWait, pfd, evBuf, maxEvents, 0)
			if _, bad := kernel.IsErr(n); bad {
				break
			}
			for i := 0; i < int(n); i++ {
				fd := int(p.Load(evBuf+uint64(i)*8, 4))
				ev := uint32(p.Load(evBuf+uint64(i)*8+4, 4))
				if fd == int(sfd) {
					for {
						cfd := p.Syscall(kernel.SysAccept, sfd)
						if _, bad := kernel.IsErr(cfd); bad {
							break
						}
						conns[int(cfd)] = &evConn{}
						p.Syscall(kernel.SysPollCtl, pfd, kernel.PollCtlAdd, cfd, kernel.POLLIN)
					}
					continue
				}
				c, live := conns[fd]
				if !live {
					continue // closed earlier in this batch
				}
				if ev&kernel.POLLERR != 0 {
					closeConn(fd)
					continue
				}
				if ev&kernel.POLLOUT != 0 {
					flush(fd, c)
					if _, live := conns[fd]; !live {
						continue
					}
				}
				if ev&(kernel.POLLIN|kernel.POLLHUP) != 0 {
					handleReadable(fd, c)
				}
				if quit {
					break
				}
			}
		}
		// Drain: close every live connection in fd order, then the
		// listener and the poll set.
		fds := make([]int, 0, len(conns))
		for fd := range conns {
			fds = append(fds, fd)
		}
		sort.Ints(fds)
		for _, fd := range fds {
			closeConn(fd)
		}
		p.Syscall(kernel.SysClose, sfd)
		p.Syscall(kernel.SysClose, pfd)
		p.Exit(0)
	}
}

// --- blocking client helpers (functional tests; the C10K load
// generator in internal/experiments drives the same protocol through
// its own event loop) -----------------------------------------------------

// EventDial opens a blocking connection to the event server. A connect
// that races ahead of the server's listen draws ECONNREFUSED; like a
// real client it yields and retries (bounded), so callers spawned
// alongside the server on a multi-CPU machine still connect.
func EventDial(p *kernel.Proc, port uint16, remote bool) (uint64, bool) {
	host := uint64(kernel.LocalHost)
	if remote {
		host = kernel.RemoteHost
	}
	for attempt := 0; attempt < 64; attempt++ {
		fd := p.Syscall(kernel.SysSocket)
		ret := p.Syscall(kernel.SysConnect, fd, uint64(port), host)
		if ret == 0 {
			return fd, true
		}
		p.Syscall(kernel.SysClose, fd)
		if e, bad := kernel.IsErr(ret); !bad || e != kernel.ECONNREFUSED {
			return 0, false
		}
		p.Syscall(kernel.SysYield)
	}
	return 0, false
}

// EventRequest sends one request line and reads one reply (status line
// plus body for 200 replies). It assumes a blocking socket.
func EventRequest(p *kernel.Proc, fd uint64, line string) (status string, body []byte, ok bool) {
	msg := p.PushString(line + "\n")
	if ret := p.Syscall(kernel.SysSendTo, fd, msg, uint64(len(line)+1)); ret != uint64(len(line)+1) {
		return "", nil, false
	}
	buf := p.Alloc(chunk)
	var acc []byte
	for {
		n := p.Syscall(kernel.SysRecv, fd, buf, chunk)
		if _, bad := kernel.IsErr(n); bad || n == 0 {
			return "", nil, false
		}
		acc = append(acc, p.Read(buf, int(n))...)
		nl := strings.IndexByte(string(acc), '\n')
		if nl < 0 {
			continue
		}
		status = strings.TrimSpace(string(acc[:nl]))
		rest := acc[nl+1:]
		if !strings.HasPrefix(status, "200 ") {
			return status, nil, true
		}
		var want uint64
		fmt.Sscanf(status, "200 %d", &want)
		for uint64(len(rest)) < want {
			n := p.Syscall(kernel.SysRecv, fd, buf, chunk)
			if _, bad := kernel.IsErr(n); bad || n == 0 {
				return status, rest, false
			}
			rest = append(rest, p.Read(buf, int(n))...)
		}
		return status, rest, true
	}
}

// StopEventServer connects and sends QUIT.
func StopEventServer(p *kernel.Proc, port uint16, remote bool) {
	fd, ok := EventDial(p, port, remote)
	if !ok {
		return
	}
	quit := p.PushString("QUIT\n")
	p.Syscall(kernel.SysSendTo, fd, quit, 5)
	p.Syscall(kernel.SysClose, fd)
}
