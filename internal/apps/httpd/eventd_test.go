package httpd

import (
	"bytes"
	"strings"
	"testing"

	"repro"
	"repro/internal/kernel"
)

func bootOne(t *testing.T, mode repro.Mode) *repro.System {
	t.Helper()
	sys, err := repro.NewSystem(mode)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestEventServerKeepAlive drives the full protocol over loopback:
// several requests on one connection, sealed login/auth sessions, 404s,
// rejected tokens, and an oversized header that gets 400-and-close.
func TestEventServerKeepAlive(t *testing.T) {
	sys := bootOne(t, repro.Native)
	payload := make([]byte, 10_000)
	sys.Machine.RNG.Fill(payload)
	sys.Kernel.WriteKernelFile("/a.bin", payload)
	appKey := bytes.Repeat([]byte{7}, 32)
	cfg := EventServerConfig{Port: EventPort, AppKey: appKey}
	if _, err := sys.Kernel.Spawn("eventd", EventServerMain(cfg)); err != nil {
		t.Fatal(err)
	}
	var fail string
	done := false
	if _, err := sys.Kernel.Spawn("client", func(p *kernel.Proc) {
		defer func() { done = true }()
		fd, ok := EventDial(p, EventPort, false)
		if !ok {
			fail = "dial"
			return
		}
		// Two GETs on the same connection: keep-alive.
		for i := 0; i < 2; i++ {
			st, body, ok := EventRequest(p, fd, "GET /a.bin")
			if !ok || !strings.HasPrefix(st, "200 ") || !bytes.Equal(body, payload) {
				fail = "keep-alive GET"
				return
			}
		}
		if st, _, _ := EventRequest(p, fd, "GET /nope"); st != "404" {
			fail = "404: " + st
			return
		}
		// Session flow: LOGIN yields a sealed token, AUTH accepts it.
		st, _, ok := EventRequest(p, fd, "LOGIN alice")
		if !ok || !strings.HasPrefix(st, "210 ") {
			fail = "login: " + st
			return
		}
		token := strings.TrimPrefix(st, "210 ")
		st, body, ok := EventRequest(p, fd, "AUTH "+token+" /a.bin")
		if !ok || !strings.HasPrefix(st, "200 ") || !bytes.Equal(body, payload) {
			fail = "auth serve: " + st
			return
		}
		// A forged token (valid hex, bad ciphertext) is 403.
		if st, _, _ := EventRequest(p, fd, "AUTH deadbeef /a.bin"); st != "403" {
			fail = "forged token: " + st
			return
		}
		p.Syscall(kernel.SysClose, fd)
		// Oversized header: 400 then close.
		fd2, _ := EventDial(p, EventPort, false)
		junk := p.PushString(strings.Repeat("x", 400))
		p.Syscall(kernel.SysSendTo, fd2, junk, 400)
		buf := p.Alloc(64)
		n := p.Syscall(kernel.SysRecv, fd2, buf, 64)
		if string(p.Read(buf, int(n))) != "400\n" {
			fail = "oversized header"
			return
		}
		if n := p.Syscall(kernel.SysRecv, fd2, buf, 64); n != 0 {
			fail = "conn not closed after 400"
			return
		}
		p.Syscall(kernel.SysClose, fd2)
		StopEventServer(p, EventPort, false)
	}); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RunUntilIdle()
	if !done {
		t.Fatal("client stalled")
	}
	if fail != "" {
		t.Fatal(fail)
	}
	if n := sys.Kernel.NumLive(); n != 0 {
		t.Errorf("%d processes still alive after QUIT", n)
	}
}

// TestEventServerGhostKey runs the server as a trusted program under
// Virtual Ghost with no configured key: the session-sealing key comes
// from the VM (sva.getKey), which the OS never sees.
func TestEventServerGhostKey(t *testing.T) {
	sys := bootOne(t, repro.VirtualGhost)
	sys.Kernel.WriteKernelFile("/s.bin", []byte("sealed site"))
	cfg := EventServerConfig{Port: EventPort} // AppKey nil: fetch from VM
	if _, err := sys.Kernel.InstallTrustedProgram("/bin/eventd", nil, EventServerMain(cfg)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.SpawnProgram("/bin/eventd"); err != nil {
		t.Fatal(err)
	}
	var fail string
	done := false
	if _, err := sys.Kernel.Spawn("client", func(p *kernel.Proc) {
		defer func() { done = true }()
		fd, ok := EventDial(p, EventPort, false)
		if !ok {
			fail = "dial"
			return
		}
		st, _, ok := EventRequest(p, fd, "LOGIN bob")
		if !ok || !strings.HasPrefix(st, "210 ") {
			fail = "login: " + st
			return
		}
		token := strings.TrimPrefix(st, "210 ")
		st, body, ok := EventRequest(p, fd, "AUTH "+token+" /s.bin")
		if !ok || st != "200 11" || string(body) != "sealed site" {
			fail = "auth: " + st
			return
		}
		p.Syscall(kernel.SysClose, fd)
		StopEventServer(p, EventPort, false)
	}); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RunUntilIdle()
	if !done {
		t.Fatal("client stalled")
	}
	if fail != "" {
		t.Fatal(fail)
	}
}

// TestEventServerIdleKill is the slowloris defense: a client that sends
// a partial request line and stalls is auto-closed by the keep-alive
// reaper once virtual time skips to the idle timer's expiry.
func TestEventServerIdleKill(t *testing.T) {
	sys := bootOne(t, repro.Native)
	cfg := EventServerConfig{Port: EventPort, IdleTimeoutCycles: 2_000_000, AppKey: make([]byte, 32)}
	if _, err := sys.Kernel.Spawn("eventd", EventServerMain(cfg)); err != nil {
		t.Fatal(err)
	}
	killed := false
	if _, err := sys.Kernel.Spawn("slowloris", func(p *kernel.Proc) {
		fd, ok := EventDial(p, EventPort, false)
		if !ok {
			return
		}
		frag := p.PushString("GE")
		p.Syscall(kernel.SysSendTo, fd, frag, 2)
		// Block reading a reply that never comes; EOF means the server
		// cut us off.
		buf := p.Alloc(16)
		n := p.Syscall(kernel.SysRecv, fd, buf, 16)
		killed = n == 0
		p.Syscall(kernel.SysClose, fd)
		StopEventServer(p, EventPort, false)
	}); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RunUntilIdle()
	if !killed {
		t.Fatal("stalled connection was not idle-killed")
	}
	if got := sys.Kernel.Net.Stats().TimeoutKills; got != 1 {
		t.Errorf("TimeoutKills = %d, want 1", got)
	}
}
