// Package lmbench reimplements the LMBench micro-operations the paper
// measures in Table 2 (null syscall, open/close, mmap, page fault,
// signal install/delivery, fork+exit, fork+exec, select) and the file
// create/delete loops of Tables 3 and 4. Latencies are measured in
// virtual cycles on the machine clock and reported in microseconds at
// the nominal 3.4 GHz.
package lmbench

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/libc"
)

// DefaultIters matches the paper's per-run iteration count.
const DefaultIters = 1000

// measure runs body inside a fresh process and returns the cycles it
// took.
func measure(k *kernel.Kernel, body func(p *kernel.Proc)) uint64 {
	var start, end uint64
	_, err := k.Spawn("lmbench", func(p *kernel.Proc) {
		start = k.M.Clock.Cycles()
		body(p)
		end = k.M.Clock.Cycles()
	})
	if err != nil {
		panic(fmt.Sprintf("lmbench: spawn: %v", err))
	}
	k.RunUntilIdle()
	return end - start
}

// perOpMicros converts total cycles to µs/op.
func perOpMicros(cycles uint64, ops int) float64 {
	return hw.Micros(cycles) / float64(ops)
}

// NullSyscall measures getpid latency (µs).
func NullSyscall(k *kernel.Kernel, iters int) float64 {
	c := measure(k, func(p *kernel.Proc) {
		for i := 0; i < iters; i++ {
			p.Syscall(kernel.SysGetpid)
		}
	})
	return perOpMicros(c, iters)
}

// OpenClose measures open+close latency on an existing file (µs).
func OpenClose(k *kernel.Kernel, iters int) float64 {
	k.WriteKernelFile("/lmb.open", []byte("x"))
	c := measure(k, func(p *kernel.Proc) {
		path := p.PushString("/lmb.open")
		for i := 0; i < iters; i++ {
			fd := p.Syscall(kernel.SysOpen, path, kernel.ORdOnly)
			p.Syscall(kernel.SysClose, fd)
		}
	})
	return perOpMicros(c, iters)
}

// Mmap measures mmap+munmap of a 64 KiB anonymous region (µs).
func Mmap(k *kernel.Kernel, iters int) float64 {
	const length = 64 * 1024
	c := measure(k, func(p *kernel.Proc) {
		for i := 0; i < iters; i++ {
			base := p.Syscall(kernel.SysMmap, length, ^uint64(0), 0)
			p.Syscall(kernel.SysMunmap, base, length)
		}
	})
	return perOpMicros(c, iters)
}

// PageFault measures the fault-in latency of file-backed pages (µs per
// fault), the LMBench "page fault" test: a file is mapped and each page
// touched once.
func PageFault(k *kernel.Kernel, pages int) float64 {
	data := make([]byte, pages*hw.PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	k.WriteKernelFile("/lmb.mapped", data)
	// Push the file out of the buffer cache so faults hit the disk, as
	// they do on a freshly mapped file in LMBench's timing.
	if err := k.FS.Cache().DropClean(); err != nil {
		panic(err)
	}
	c := measure(k, func(p *kernel.Proc) {
		path := p.PushString("/lmb.mapped")
		fd := p.Syscall(kernel.SysOpen, path, kernel.ORdOnly)
		base := p.Syscall(kernel.SysMmap, uint64(pages*hw.PageSize), fd, 0)
		for i := 0; i < pages; i++ {
			p.Load(base+uint64(i*hw.PageSize), 1)
		}
		p.Syscall(kernel.SysClose, fd)
	})
	return perOpMicros(c, pages)
}

// SigInstall measures signal-handler installation (µs): the ghosting
// path registers the handler with the VM (sva.permitFunction) and then
// calls sigaction, as the libc wrapper does.
func SigInstall(k *kernel.Kernel, iters int) float64 {
	c := measure(k, func(p *kernel.Proc) {
		addr := p.RegisterCode(func(p *kernel.Proc, args []uint64) {})
		if err := p.PermitFunction(addr); err != nil {
			panic(err)
		}
		start := k.M.Clock.Cycles()
		for i := 0; i < iters; i++ {
			p.Syscall(kernel.SysSigact, kernel.SIGUSR1, addr)
		}
		_ = start
	})
	return perOpMicros(c, iters)
}

// SigDeliver measures delivery of a signal to the current process (µs).
func SigDeliver(k *kernel.Kernel, iters int) float64 {
	c := measure(k, func(p *kernel.Proc) {
		addr := p.RegisterCode(func(p *kernel.Proc, args []uint64) {})
		if err := p.PermitFunction(addr); err != nil {
			panic(err)
		}
		p.Syscall(kernel.SysSigact, kernel.SIGUSR1, addr)
		for i := 0; i < iters; i++ {
			p.Syscall(kernel.SysKill, uint64(p.PID), kernel.SIGUSR1)
		}
	})
	return perOpMicros(c, iters)
}

// ForkExit measures fork + child exit + wait (µs).
func ForkExit(k *kernel.Kernel, iters int) float64 {
	c := measure(k, func(p *kernel.Proc) {
		for i := 0; i < iters; i++ {
			p.Fork(func(c *kernel.Proc) { c.Exit(0) })
			p.Wait()
		}
	})
	return perOpMicros(c, iters)
}

// ForkExec measures fork + execve of /bin/true + wait (µs).
func ForkExec(k *kernel.Kernel, iters int) float64 {
	if _, err := k.InstallTrustedProgram("/bin/true", nil, func(p *kernel.Proc) {
		p.Exit(0)
	}); err != nil {
		panic(err)
	}
	c := measure(k, func(p *kernel.Proc) {
		for i := 0; i < iters; i++ {
			p.Fork(func(c *kernel.Proc) {
				_ = c.Exec("/bin/true")
				c.Exit(1)
			})
			p.Wait()
		}
	})
	return perOpMicros(c, iters)
}

// Select measures select() over nfds file descriptors (µs).
func Select(k *kernel.Kernel, nfds, iters int) float64 {
	k.WriteKernelFile("/lmb.sel", []byte("x"))
	c := measure(k, func(p *kernel.Proc) {
		path := p.PushString("/lmb.sel")
		fds := make([]int, nfds)
		for i := range fds {
			fds[i] = int(p.Syscall(kernel.SysOpen, path, kernel.ORdOnly))
		}
		arr := p.Alloc(4 * nfds)
		for i, fd := range fds {
			p.Store(arr+uint64(4*i), 4, uint64(fd))
		}
		start := k.M.Clock.Cycles()
		for i := 0; i < iters; i++ {
			p.Syscall(kernel.SysSelect, arr, uint64(nfds), 0)
		}
		_ = start
	})
	return perOpMicros(c, iters)
}

// FileCreate measures files created per second for the given file size
// (Table 4). Sizes of 0 are the pure create path.
func FileCreate(k *kernel.Kernel, size, count int) float64 {
	payload := make([]byte, size)
	c := measure(k, func(p *kernel.Proc) {
		var buf uint64
		if size > 0 {
			buf = p.Alloc(size)
			p.Write(buf, payload)
		}
		for i := 0; i < count; i++ {
			path := p.PushString(fmt.Sprintf("/c%05d", i))
			fd := p.Syscall(kernel.SysOpen, path, kernel.OCreat|kernel.ORdWr)
			if size > 0 {
				p.Syscall(kernel.SysWrite, fd, buf, uint64(size))
			}
			p.Syscall(kernel.SysClose, fd)
		}
	})
	return float64(count) / hw.Seconds(c)
}

// FileDelete measures files deleted per second for the given file size
// (Table 3). The files are created outside the timed region.
func FileDelete(k *kernel.Kernel, size, count int) float64 {
	payload := make([]byte, size)
	for i := 0; i < count; i++ {
		k.WriteKernelFile(fmt.Sprintf("/d%05d", i), payload)
	}
	c := measure(k, func(p *kernel.Proc) {
		for i := 0; i < count; i++ {
			path := p.PushString(fmt.Sprintf("/d%05d", i))
			p.Syscall(kernel.SysUnlink, path)
		}
	})
	return float64(count) / hw.Seconds(c)
}

// GhostRoundTrip measures a ghosting application's read of file data
// into ghost memory (not part of Table 2; used by ablation benches).
func GhostRoundTrip(k *kernel.Kernel, size, iters int) float64 {
	payload := make([]byte, size)
	k.WriteKernelFile("/lmb.ghost", payload)
	c := measure(k, func(p *kernel.Proc) {
		l, err := libc.NewGhosting(p)
		if err != nil {
			panic(err)
		}
		dst, err := l.Malloc(size)
		if err != nil {
			panic(err)
		}
		fd, err := l.Open("/lmb.ghost", kernel.ORdOnly)
		if err != nil {
			panic(err)
		}
		for i := 0; i < iters; i++ {
			p.Syscall(kernel.SysLseek, uint64(fd), 0, 0)
			if _, err := l.Read(fd, dst, size); err != nil {
				panic(err)
			}
		}
	})
	return perOpMicros(c, iters)
}
