package lmbench

import (
	"testing"

	"repro"
)

func kernels(t *testing.T) (nat, vg *repro.System) {
	t.Helper()
	return repro.MustNewSystem(repro.Native), repro.MustNewSystem(repro.VirtualGhost)
}

func TestAllMicrobenchmarksReturnPositive(t *testing.T) {
	nat, _ := kernels(t)
	k := nat.Kernel
	checks := map[string]float64{
		"null":       NullSyscall(k, 50),
		"open/close": OpenClose(k, 30),
		"mmap":       Mmap(k, 20),
		"pagefault":  PageFault(k, 16),
		"siginstall": SigInstall(k, 30),
		"sigdeliver": SigDeliver(k, 20),
		"fork+exit":  ForkExit(k, 3),
		"fork+exec":  ForkExec(k, 3),
		"select":     Select(k, 16, 20),
		"ghost-rt":   GhostRoundTrip(repro.MustNewSystem(repro.VirtualGhost).Kernel, 4096, 5),
	}
	for name, v := range checks {
		if v <= 0 {
			t.Errorf("%s = %v", name, v)
		}
	}
}

func TestLatencyOrderings(t *testing.T) {
	nat, _ := kernels(t)
	k := nat.Kernel
	null := NullSyscall(k, 100)
	oc := OpenClose(k, 50)
	fork := ForkExit(k, 4)
	if !(null < oc && oc < fork) {
		t.Errorf("orderings violated: null=%.3f open/close=%.3f fork=%.3f", null, oc, fork)
	}
}

func TestFileRatesPositiveAndSizeSensitive(t *testing.T) {
	nat, _ := kernels(t)
	small := FileCreate(nat.Kernel, 0, 50)
	nat2 := repro.MustNewSystem(repro.Native)
	big := FileCreate(nat2.Kernel, 10240, 50)
	if small <= 0 || big <= 0 {
		t.Fatalf("rates: %f %f", small, big)
	}
	if big > small {
		t.Errorf("larger files should create slower (%.0f vs %.0f)", big, small)
	}
	del := FileDelete(repro.MustNewSystem(repro.Native).Kernel, 1024, 50)
	if del <= 0 {
		t.Errorf("delete rate %f", del)
	}
}

func TestDeterminism(t *testing.T) {
	a := NullSyscall(repro.MustNewSystem(repro.Native).Kernel, 100)
	b := NullSyscall(repro.MustNewSystem(repro.Native).Kernel, 100)
	if a != b {
		t.Errorf("virtual time is nondeterministic: %v vs %v", a, b)
	}
}

func TestPageFaultIsDiskBound(t *testing.T) {
	nat, vg := kernels(t)
	n := PageFault(nat.Kernel, 32)
	v := PageFault(vg.Kernel, 32)
	if v/n > 1.5 {
		t.Errorf("page fault should be I/O-dominated: %.2fx", v/n)
	}
	// A fault costs at least the disk latency (~24 µs).
	if n < 20 {
		t.Errorf("fault latency %.1fµs implausibly cheap", n)
	}
}
