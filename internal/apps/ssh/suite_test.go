package ssh

import (
	"testing"

	"repro"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/vgcrypt"
)

// TestSection6Suite runs the paper's §6 scenario end to end on a
// Virtual Ghost machine pair:
//
//  1. ssh-keygen (ghosting, signed, holding the shared application
//     key) generates an authentication key pair, sealing the private
//     half on disk;
//  2. the public half is installed on the remote server's
//     authorized_keys;
//  3. the ghosting ssh client — a *different process* sharing the same
//     application key — unseals the private key into ghost memory and
//     authenticates to sshd;
//  4. nothing the OS can see (disk files, wire traffic) contains the
//     private key.
func TestSection6Suite(t *testing.T) {
	server, err := repro.NewSystem(repro.Native)
	if err != nil {
		t.Fatal(err)
	}
	client, err := repro.NewSystemWithOptions(repro.VirtualGhost,
		repro.Options{SharedClock: server.Machine.Clock})
	if err != nil {
		t.Fatal(err)
	}
	hw.Connect(server.Machine.NIC, client.Machine.NIC)
	world := &kernel.World{Kernels: []*kernel.Kernel{server.Kernel, client.Kernel}}

	// One application key shared by the whole suite (installed into
	// each signed binary by the trusted installer).
	appKey := make([]byte, 32)
	client.Machine.RNG.Fill(appKey)

	// Step 1: ssh-keygen.
	if _, err := client.Kernel.InstallTrustedProgram("/bin/ssh-keygen", appKey, KeygenMain); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Kernel.SpawnProgram("/bin/ssh-keygen"); err != nil {
		t.Fatal(err)
	}
	client.Kernel.RunUntilIdle()
	pub, ok := client.Kernel.ReadKernelFile(PublicKeyPath)
	if !ok || len(pub) != 32 {
		t.Fatalf("keygen produced no public key")
	}
	sealedPriv, ok := client.Kernel.ReadKernelFile(PrivateKeyPath)
	if !ok {
		t.Fatalf("keygen produced no private key file")
	}
	// The OS's view of the private key is ciphertext: unsealing with
	// the right key works, and the plaintext is NOT a substring.
	plainPriv, err := vgcrypt.Open(appKey, sealedPriv)
	if err != nil {
		t.Fatalf("private key not sealed with the suite's app key: %v", err)
	}
	if containsSub(sealedPriv, plainPriv[:16]) {
		t.Fatalf("plaintext key material visible on disk")
	}

	// Step 2: install the public key on the server.
	server.Kernel.WriteKernelFile(AuthorizedPath, pub)
	payload := make([]byte, 30_000)
	server.Machine.RNG.Fill(payload)
	server.Kernel.WriteKernelFile("/pull.bin", payload)
	if _, err := server.Kernel.Spawn("sshd", ServerMain); err != nil {
		t.Fatal(err)
	}

	// Step 3: the ghosting ssh client authenticates with the key
	// ssh-keygen made.
	var res TransferResult
	done := false
	main := ClientMain(true, "/pull.bin", &res)
	if _, err := client.Kernel.InstallTrustedProgram("/bin/ssh", appKey, func(p *kernel.Proc) {
		main(p)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Kernel.SpawnProgram("/bin/ssh"); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done }) {
		t.Fatalf("suite transfer stalled")
	}
	if !res.AuthOK {
		t.Fatalf("cross-program key sharing failed: auth rejected")
	}
	if res.Bytes != uint64(len(payload)) {
		t.Errorf("transferred %d/%d", res.Bytes, len(payload))
	}

	// Step 4: the wire never carried the private key (the signature is
	// derived, not the key itself).
	for _, pkt := range server.Machine.NIC.Snoop() {
		if containsSub(pkt.Payload, plainPriv[:16]) {
			t.Fatalf("private key crossed the wire")
		}
	}
}

func containsSub(haystack, needle []byte) bool {
	if len(needle) == 0 || len(haystack) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TestClientAuthViaAgent: the ssh client authenticates with a signature
// produced by the local ssh-agent; the private key never leaves the
// agent's ghost heap.
func TestClientAuthViaAgent(t *testing.T) {
	server, err := repro.NewSystem(repro.Native)
	if err != nil {
		t.Fatal(err)
	}
	client, err := repro.NewSystemWithOptions(repro.VirtualGhost,
		repro.Options{SharedClock: server.Machine.Clock})
	if err != nil {
		t.Fatal(err)
	}
	hw.Connect(server.Machine.NIC, client.Machine.NIC)
	world := &kernel.World{Kernels: []*kernel.Kernel{server.Kernel, client.Kernel}}

	appKey := make([]byte, 32)
	client.Machine.RNG.Fill(appKey)
	var seed [32]byte
	client.Machine.RNG.Fill(seed[:])
	pair := vgcrypt.DeriveKeyPair(seed)
	sealed, err := vgcrypt.SealWithKeyAndCounter(appKey, 1, pair.Private)
	if err != nil {
		t.Fatal(err)
	}
	client.Kernel.WriteKernelFile(PrivateKeyPath, sealed)
	server.Kernel.WriteKernelFile(AuthorizedPath, pair.Public)
	payload := make([]byte, 20_000)
	server.Machine.RNG.Fill(payload)
	server.Kernel.WriteKernelFile("/agented.bin", payload)

	const agentPort = 2222
	st := &AgentState{}
	if _, err := client.Kernel.InstallTrustedProgram("/bin/ssh-agent", appKey, AgentMain(agentPort, st)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Kernel.SpawnProgram("/bin/ssh-agent"); err != nil {
		t.Fatal(err)
	}
	if !client.Kernel.RunUntil(func() bool { return st.Ready }) {
		t.Fatal("agent never ready")
	}
	if _, err := server.Kernel.Spawn("sshd", ServerMain); err != nil {
		t.Fatal(err)
	}
	var res TransferResult
	done := false
	if _, err := client.Kernel.Spawn("ssh", func(p *kernel.Proc) {
		ClientViaAgent(agentPort, "/agented.bin", &res)(p)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done }) {
		t.Fatalf("agent-backed transfer stalled")
	}
	if !res.AuthOK || res.Bytes != uint64(len(payload)) {
		t.Errorf("agent-backed auth: ok=%v bytes=%d", res.AuthOK, res.Bytes)
	}
	if st.Requests != 1 {
		t.Errorf("agent served %d requests", st.Requests)
	}
}
