// Package ssh is the OpenSSH-derived application suite of paper §6:
// ssh-keygen, ssh-agent, the ssh client (ghosting and original
// variants), and sshd. The three ghosting programs share one
// application key, which protects the private authentication keys at
// rest; the agent additionally keeps a secret string in its ghost heap
// as the rootkit's target.
package ssh

import (
	"crypto/ed25519"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/libc"
	"repro/internal/vgcrypt"
)

// File-system locations of the key material.
const (
	PrivateKeyPath = "/root.ssh.id_dsa"     // sealed with the app key
	PublicKeyPath  = "/root.ssh.id_dsa.pub" // plaintext
	AuthorizedPath = "/etc.authorized_keys" // installed on the server
)

// SSHPort is sshd's listening port.
const SSHPort = 22

// transferChunk is the per-read unit of bulk transfers.
const transferChunk = 32 * 1024

// cryptCost charges the SSH transport cipher for n bytes on p's clock.
func cryptCost(p *kernel.Proc, n int) {
	p.ComputeCrypt(uint64(n) * hw.CostCryptPerByte)
}

// KeygenMain is ssh-keygen: derive an authentication key pair from
// trusted randomness, seal the private half with the application key,
// and write both halves to the file system.
func KeygenMain(p *kernel.Proc) {
	l, err := libc.NewGhosting(p)
	if err != nil {
		p.Exit(1)
	}
	var seed [32]byte
	for i := 0; i < 4; i++ {
		v := l.Rand()
		for j := 0; j < 8; j++ {
			seed[i*8+j] = byte(v >> (8 * j))
		}
	}
	pair := vgcrypt.DeriveKeyPair(seed)
	// The private key lives in ghost memory from the moment it exists.
	priv, err := l.Malloc(len(pair.Private))
	if err != nil {
		p.Exit(1)
	}
	l.WriteGhost(priv, pair.Private)
	if err := l.SecureWriteFile(PrivateKeyPath, priv, len(pair.Private)); err != nil {
		p.Exit(1)
	}
	// The public key is not secret.
	fd, err := l.Open(PublicKeyPath, kernel.OCreat|kernel.ORdWr|kernel.OTrunc)
	if err != nil {
		p.Exit(1)
	}
	buf := p.Alloc(len(pair.Public))
	p.Write(buf, pair.Public)
	p.Syscall(kernel.SysWrite, uint64(fd), buf, uint64(len(pair.Public)))
	l.Close(fd)
	p.Exit(0)
}

// AgentState is the observable state of a running ssh-agent, published
// for the attack experiments (which need the victim's pid and the ghost
// address of its secret).
type AgentState struct {
	PID        int
	SecretAddr uint64
	KeyAddr    uint64
	Ready      bool
	Requests   int
	Corrupted  bool
}

// AgentSecret is the in-memory secret the rootkit hunts for (paper §6:
// "we added code to place a secret string within a heap-allocated
// memory buffer").
const AgentSecret = "agent-held-private-key-0xDEADBEEF-do-not-exfiltrate"

// AgentMain is ssh-agent: it loads the sealed private authentication
// key into its ghost heap, stores the secret marker string, and serves
// signing requests on a local socket until told to quit.
func AgentMain(port uint16, st *AgentState) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		l, err := libc.NewGhosting(p)
		if err != nil {
			p.Exit(1)
		}
		keyPtr, keyLen, err := l.SecureReadFile(PrivateKeyPath)
		if err != nil {
			p.Exit(1)
		}
		secret, err := l.Malloc(len(AgentSecret))
		if err != nil {
			p.Exit(1)
		}
		l.WriteGhost(secret, []byte(AgentSecret))
		st.PID = p.PID
		st.SecretAddr = uint64(secret)
		st.KeyAddr = uint64(keyPtr)
		st.Ready = true

		sfd := p.Syscall(kernel.SysSocket)
		p.Syscall(kernel.SysBind, sfd, uint64(port))
		p.Syscall(kernel.SysListen, sfd)
		reqBuf := p.Alloc(256)
		for {
			cfd := p.Syscall(kernel.SysAccept, sfd)
			if _, bad := kernel.IsErr(cfd); bad {
				break
			}
			// The agent reads requests with read(2) — the syscall the
			// rootkit interposes on (paper §7: the malicious module
			// "executes the attack as the victim process reads data
			// from a file descriptor").
			n := p.Syscall(kernel.SysRead, cfd, reqBuf, 256)
			req := string(p.Read(reqBuf, int(n)))
			if strings.HasPrefix(req, "QUIT") {
				p.Syscall(kernel.SysClose, cfd)
				break
			}
			if strings.HasPrefix(req, "SIGN ") {
				st.Requests++
				challenge := []byte(strings.TrimPrefix(req, "SIGN "))
				privBytes := l.ReadGhost(libc.GPtr(keyPtr), keyLen)
				sig := ed25519.Sign(ed25519.PrivateKey(privBytes), challenge)
				out := p.Alloc(len(sig))
				p.Write(out, sig)
				p.Syscall(kernel.SysSendTo, cfd, out, uint64(len(sig)))
			}
			// Integrity self-check: has anything scribbled on the
			// secret?
			if string(l.ReadGhost(secret, len(AgentSecret))) != AgentSecret {
				st.Corrupted = true
			}
			p.Syscall(kernel.SysClose, cfd)
		}
		p.Exit(0)
	}
}

// --- sshd -------------------------------------------------------------------

// ServerMain is sshd: accept a connection, issue a challenge, verify
// the client's signature against the installed authorized key, then
// serve "CAT <path>" requests by streaming the (transport-encrypted)
// file. A QUIT connection shuts it down.
func ServerMain(p *kernel.Proc) {
	// Load the authorized public key.
	authPtr := p.PushString(AuthorizedPath)
	afd := p.Syscall(kernel.SysOpen, authPtr, kernel.ORdOnly)
	var authorized []byte
	if _, bad := kernel.IsErr(afd); !bad {
		tmp := p.Alloc(64)
		n := p.Syscall(kernel.SysRead, afd, tmp, 64)
		authorized = p.Read(tmp, int(n))
		p.Syscall(kernel.SysClose, afd)
	}
	sfd := p.Syscall(kernel.SysSocket)
	p.Syscall(kernel.SysBind, sfd, SSHPort)
	p.Syscall(kernel.SysListen, sfd)
	buf := p.Alloc(transferChunk)
	for {
		cfd := p.Syscall(kernel.SysAccept, sfd)
		if _, bad := kernel.IsErr(cfd); bad {
			break
		}
		if !serveSession(p, cfd, buf, authorized) {
			p.Syscall(kernel.SysClose, cfd)
			break
		}
		p.Syscall(kernel.SysClose, cfd)
	}
	p.Exit(0)
}

// serveSession handles one connection; it returns false on QUIT.
func serveSession(p *kernel.Proc, cfd uint64, buf uint64, authorized []byte) bool {
	// Challenge/response authentication.
	challenge := fmt.Sprintf("challenge-%d", p.Kernel().M.RNG.Next())
	ch := p.PushString(challenge)
	p.Syscall(kernel.SysSendTo, cfd, ch, uint64(len(challenge)))
	n := p.Syscall(kernel.SysRecv, cfd, buf, transferChunk)
	if _, bad := kernel.IsErr(n); bad || n == 0 {
		return true
	}
	resp := p.Read(buf, int(n))
	if len(resp) < ed25519.SignatureSize {
		return string(resp) != "QUIT"
	}
	sig := resp[:ed25519.SignatureSize]
	if len(authorized) == ed25519.PublicKeySize &&
		!vgcrypt.VerifySig(authorized, []byte(challenge), sig) {
		deny := p.PushString("DENIED")
		p.Syscall(kernel.SysSendTo, cfd, deny, 6)
		return true
	}
	ok := p.PushString("OK")
	p.Syscall(kernel.SysSendTo, cfd, ok, 2)
	// Command phase.
	n = p.Syscall(kernel.SysRecv, cfd, buf, transferChunk)
	cmd := string(p.Read(buf, int(n)))
	if strings.HasPrefix(cmd, "QUIT") {
		return false
	}
	if strings.HasPrefix(cmd, "CAT ") {
		streamFile(p, cfd, buf, strings.TrimSpace(strings.TrimPrefix(cmd, "CAT ")))
	}
	return true
}

// streamFile cats a file over the encrypted transport.
func streamFile(p *kernel.Proc, cfd uint64, buf uint64, path string) {
	pp := p.PushString(path)
	statBuf := p.Alloc(16)
	if ret := p.Syscall(kernel.SysStat, pp, statBuf); ret != 0 {
		hdr := p.PushString("ERR 0\n")
		p.Syscall(kernel.SysSendTo, cfd, hdr, 6)
		return
	}
	size := p.Load(statBuf, 8)
	hdr := fmt.Sprintf("LEN %d\n", size)
	hp := p.PushString(hdr)
	p.Syscall(kernel.SysSendTo, cfd, hp, uint64(len(hdr)))
	fd := p.Syscall(kernel.SysOpen, pp, kernel.ORdOnly)
	for {
		n := p.Syscall(kernel.SysRead, fd, buf, transferChunk)
		if _, bad := kernel.IsErr(n); bad || n == 0 {
			break
		}
		cryptCost(p, int(n)) // transport encryption
		p.Syscall(kernel.SysSendTo, cfd, buf, n)
	}
	p.Syscall(kernel.SysClose, fd)
}

// --- ssh client ---------------------------------------------------------------

// TransferResult reports one client download.
type TransferResult struct {
	Bytes    uint64
	Seconds  float64
	KBPerSec float64
	AuthOK   bool
}

// ClientMain is the ssh client downloading path from sshd ("ssh host
// cat file"). When ghosting is true the client keeps the decrypted
// authentication key and all received data in ghost memory (the §6
// port); otherwise it is the original client using traditional memory.
// Both variants pay the transport cipher; only the ghosting variant
// pays the ghost/staging copies.
func ClientMain(ghosting bool, path string, out *TransferResult) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		var l *libc.Libc
		var err error
		if ghosting {
			l, err = libc.NewGhosting(p)
			if err != nil {
				p.Exit(1)
			}
		}
		// Load the private authentication key.
		var priv ed25519.PrivateKey
		if ghosting {
			kp, klen, err := l.SecureReadFile(PrivateKeyPath)
			if err != nil {
				p.Exit(1)
			}
			priv = ed25519.PrivateKey(l.ReadGhost(kp, klen))
		} else {
			// The original client reads the (plaintext) key file
			// directly; in the experiments the non-ghosting client is
			// given an unsealed key file.
			pp := p.PushString(PrivateKeyPath + ".plain")
			fd := p.Syscall(kernel.SysOpen, pp, kernel.ORdOnly)
			if _, bad := kernel.IsErr(fd); !bad {
				tmp := p.Alloc(128)
				n := p.Syscall(kernel.SysRead, fd, tmp, 128)
				priv = ed25519.PrivateKey(p.Read(tmp, int(n)))
				p.Syscall(kernel.SysClose, fd)
			}
		}
		fd := p.Syscall(kernel.SysSocket)
		p.Syscall(kernel.SysConnect, fd, SSHPort, kernel.RemoteHost)
		buf := p.Alloc(transferChunk)
		// Receive the challenge, sign it, send the signature.
		n := p.Syscall(kernel.SysRecv, fd, buf, transferChunk)
		challenge := p.Read(buf, int(n))
		if len(priv) != ed25519.PrivateKeySize {
			p.Exit(1)
		}
		sig := ed25519.Sign(priv, challenge)
		sp := p.Alloc(len(sig))
		p.Write(sp, sig)
		p.Syscall(kernel.SysSendTo, fd, sp, uint64(len(sig)))
		n = p.Syscall(kernel.SysRecv, fd, buf, transferChunk)
		if string(p.Read(buf, int(n))) != "OK" {
			p.Exit(1)
		}
		out.AuthOK = true
		// Request the file and stream it down.
		cmd := p.PushString("CAT " + path)
		p.Syscall(kernel.SysSendTo, fd, cmd, uint64(len("CAT "+path)))
		start := p.Kernel().M.Clock.Cycles()
		var ghostBuf libc.GPtr
		if ghosting {
			ghostBuf, err = l.Malloc(transferChunk)
			if err != nil {
				p.Exit(1)
			}
		}
		var want, got uint64
		headerDone := false
		for {
			n := p.Syscall(kernel.SysRecv, fd, buf, transferChunk)
			if _, bad := kernel.IsErr(n); bad || n == 0 {
				break
			}
			data := p.Read(buf, int(n))
			if !headerDone {
				nl := strings.IndexByte(string(data), '\n')
				if nl < 0 {
					break
				}
				fields := strings.Fields(string(data[:nl]))
				if len(fields) != 2 || fields[0] != "LEN" {
					break
				}
				want, _ = strconv.ParseUint(fields[1], 10, 64)
				data = data[nl+1:]
				headerDone = true
			}
			cryptCost(p, len(data)) // transport decryption
			if ghosting {
				// The §6 port keeps received data in ghost memory:
				// copy each chunk from the traditional receive buffer
				// into the ghost heap.
				l.WriteGhost(ghostBuf, data)
			}
			got += uint64(len(data))
			if got >= want {
				break
			}
		}
		cycles := p.Kernel().M.Clock.Cycles() - start
		out.Bytes = got
		out.Seconds = float64(cycles) / 3.4e9
		if out.Seconds > 0 {
			out.KBPerSec = float64(got) / 1024 / out.Seconds
		}
		p.Syscall(kernel.SysClose, fd)
	}
}

// StopServer connects and QUITs sshd.
func StopServer(p *kernel.Proc) {
	fd := p.Syscall(kernel.SysSocket)
	p.Syscall(kernel.SysConnect, fd, SSHPort, kernel.RemoteHost)
	buf := p.Alloc(transferChunk)
	// Absorb the challenge, then send QUIT in the auth slot.
	p.Syscall(kernel.SysRecv, fd, buf, transferChunk)
	q := p.PushString("QUIT")
	p.Syscall(kernel.SysSendTo, fd, q, 4)
	p.Syscall(kernel.SysClose, fd)
}

// ClientViaAgent is the ssh client authenticating through a local
// ssh-agent instead of reading the key file itself — the other §6 data
// flow ("the ssh-agent server stores private encryption keys which the
// ssh client may use for public/private key authentication"). The
// private key never enters this process at all.
func ClientViaAgent(agentPort uint16, path string, out *TransferResult) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		fd := p.Syscall(kernel.SysSocket)
		p.Syscall(kernel.SysConnect, fd, SSHPort, kernel.RemoteHost)
		buf := p.Alloc(transferChunk)
		// Receive the challenge and forward it to the agent for
		// signing over the local socket.
		n := p.Syscall(kernel.SysRecv, fd, buf, transferChunk)
		challenge := p.Read(buf, int(n))
		afd := p.Syscall(kernel.SysSocket)
		if ret := p.Syscall(kernel.SysConnect, afd, uint64(agentPort), kernel.LocalHost); ret != 0 {
			return
		}
		req := p.PushString("SIGN " + string(challenge))
		p.Syscall(kernel.SysSendTo, afd, req, uint64(5+len(challenge)))
		an := p.Syscall(kernel.SysRecv, afd, buf, transferChunk)
		sig := p.Read(buf, int(an))
		p.Syscall(kernel.SysClose, afd)
		if len(sig) != ed25519.SignatureSize {
			return
		}
		sp := p.Alloc(len(sig))
		p.Write(sp, sig)
		p.Syscall(kernel.SysSendTo, fd, sp, uint64(len(sig)))
		n = p.Syscall(kernel.SysRecv, fd, buf, transferChunk)
		if string(p.Read(buf, int(n))) != "OK" {
			return
		}
		out.AuthOK = true
		// Stream the file exactly as the direct client does.
		cmd := p.PushString("CAT " + path)
		p.Syscall(kernel.SysSendTo, fd, cmd, uint64(len("CAT "+path)))
		start := p.Kernel().M.Clock.Cycles()
		var want, got uint64
		headerDone := false
		for {
			n := p.Syscall(kernel.SysRecv, fd, buf, transferChunk)
			if _, bad := kernel.IsErr(n); bad || n == 0 {
				break
			}
			data := p.Read(buf, int(n))
			if !headerDone {
				nl := strings.IndexByte(string(data), '\n')
				if nl < 0 {
					break
				}
				fields := strings.Fields(string(data[:nl]))
				if len(fields) != 2 || fields[0] != "LEN" {
					break
				}
				want, _ = strconv.ParseUint(fields[1], 10, 64)
				data = data[nl+1:]
				headerDone = true
			}
			cryptCost(p, len(data))
			got += uint64(len(data))
			if got >= want {
				break
			}
		}
		cycles := p.Kernel().M.Clock.Cycles() - start
		out.Bytes = got
		out.Seconds = float64(cycles) / 3.4e9
		if out.Seconds > 0 {
			out.KBPerSec = float64(got) / 1024 / out.Seconds
		}
		p.Syscall(kernel.SysClose, fd)
	}
}
