package ssh

import (
	"bytes"
	"testing"

	"repro"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/vgcrypt"
)

// provision sets up an app key, a sealed private key, and the server's
// authorized key across a machine pair.
func provision(t *testing.T, server, client *repro.System) []byte {
	t.Helper()
	appKey := make([]byte, 32)
	client.Machine.RNG.Fill(appKey)
	var seed [32]byte
	client.Machine.RNG.Fill(seed[:])
	pair := vgcrypt.DeriveKeyPair(seed)
	server.Kernel.WriteKernelFile(AuthorizedPath, pair.Public)
	client.Kernel.WriteKernelFile(PrivateKeyPath+".plain", pair.Private)
	sealed, err := vgcrypt.SealWithKeyAndCounter(appKey, 1, pair.Private)
	if err != nil {
		t.Fatal(err)
	}
	client.Kernel.WriteKernelFile(PrivateKeyPath, sealed)
	return appKey
}

func pairUp(t *testing.T, serverMode, clientMode repro.Mode) (*repro.System, *repro.System, *kernel.World) {
	t.Helper()
	server, err := repro.NewSystem(serverMode)
	if err != nil {
		t.Fatal(err)
	}
	client, err := repro.NewSystemWithOptions(clientMode,
		repro.Options{SharedClock: server.Machine.Clock})
	if err != nil {
		t.Fatal(err)
	}
	hw.Connect(server.Machine.NIC, client.Machine.NIC)
	return server, client, &kernel.World{Kernels: []*kernel.Kernel{server.Kernel, client.Kernel}}
}

func TestKeygenProducesSealedKeys(t *testing.T) {
	sys := repro.MustNewSystem(repro.VirtualGhost)
	k := sys.Kernel
	appKey := make([]byte, 32)
	k.M.RNG.Fill(appKey)
	if _, err := k.InstallTrustedProgram("/bin/ssh-keygen", appKey, KeygenMain); err != nil {
		t.Fatal(err)
	}
	if _, err := k.SpawnProgram("/bin/ssh-keygen"); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	priv, ok := k.ReadKernelFile(PrivateKeyPath)
	if !ok {
		t.Fatalf("no private key file")
	}
	pub, ok := k.ReadKernelFile(PublicKeyPath)
	if !ok || len(pub) != 32 {
		t.Fatalf("public key file missing or wrong size (%d)", len(pub))
	}
	// The private key file is sealed: decrypting with the app key must
	// yield a key pair matching the public half.
	plain, err := vgcrypt.Open(appKey, priv)
	if err != nil {
		t.Fatalf("private key not sealed with the app key: %v", err)
	}
	if !bytes.Contains(plain, pub) {
		// ed25519 private keys embed the public key in their second
		// half.
		t.Errorf("key halves do not match")
	}
	// And the raw file must not contain the plaintext key.
	if bytes.Contains(priv, plain[:16]) {
		t.Errorf("private key readable on disk")
	}
}

func TestAuthAndTransferEndToEnd(t *testing.T) {
	for _, ghosting := range []bool{false, true} {
		server, client, world := pairUp(t, repro.Native, repro.VirtualGhost)
		appKey := provision(t, server, client)
		payload := make([]byte, 50_000)
		server.Machine.RNG.Fill(payload)
		server.Kernel.WriteKernelFile("/data.bin", payload)
		if _, err := server.Kernel.Spawn("sshd", ServerMain); err != nil {
			t.Fatal(err)
		}
		var res TransferResult
		done := false
		main := ClientMain(ghosting, "/data.bin", &res)
		wrapped := func(p *kernel.Proc) { main(p); done = true }
		if ghosting {
			if _, err := client.Kernel.InstallTrustedProgram("/bin/ssh", appKey, wrapped); err != nil {
				t.Fatal(err)
			}
			if _, err := client.Kernel.SpawnProgram("/bin/ssh"); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := client.Kernel.Spawn("ssh", wrapped); err != nil {
				t.Fatal(err)
			}
		}
		if !world.Run(func() bool { return done }) {
			t.Fatalf("ghosting=%v: transfer stalled", ghosting)
		}
		if !res.AuthOK {
			t.Fatalf("ghosting=%v: authentication failed", ghosting)
		}
		if res.Bytes != uint64(len(payload)) {
			t.Errorf("ghosting=%v: transferred %d/%d bytes", ghosting, res.Bytes, len(payload))
		}
		if res.KBPerSec <= 0 {
			t.Errorf("ghosting=%v: no bandwidth measured", ghosting)
		}
	}
}

func TestServerRejectsWrongKey(t *testing.T) {
	server, client, world := pairUp(t, repro.Native, repro.Native)
	provision(t, server, client)
	// Replace the client's plaintext key with a different (wrong) one.
	var seed [32]byte
	seed[0] = 0xbd
	wrong := vgcrypt.DeriveKeyPair(seed)
	client.Kernel.WriteKernelFile(PrivateKeyPath+".plain", wrong.Private)
	server.Kernel.WriteKernelFile("/data.bin", []byte("payload"))
	if _, err := server.Kernel.Spawn("sshd", ServerMain); err != nil {
		t.Fatal(err)
	}
	var res TransferResult
	done := false
	if _, err := client.Kernel.Spawn("ssh", func(p *kernel.Proc) {
		ClientMain(false, "/data.bin", &res)(p)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	// The client exits with failure; world goes idle.
	world.Run(func() bool { return done })
	if res.AuthOK {
		t.Errorf("server accepted a signature from the wrong key")
	}
}

func TestAgentServesAndSelfChecks(t *testing.T) {
	sys := repro.MustNewSystem(repro.VirtualGhost)
	k := sys.Kernel
	appKey := make([]byte, 32)
	k.M.RNG.Fill(appKey)
	var seed [32]byte
	k.M.RNG.Fill(seed[:])
	pair := vgcrypt.DeriveKeyPair(seed)
	sealed, _ := vgcrypt.SealWithKeyAndCounter(appKey, 1, pair.Private)
	k.WriteKernelFile(PrivateKeyPath, sealed)
	st := &AgentState{}
	if _, err := k.InstallTrustedProgram("/bin/ssh-agent", appKey, AgentMain(2222, st)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.SpawnProgram("/bin/ssh-agent"); err != nil {
		t.Fatal(err)
	}
	var sig []byte
	if _, err := k.Spawn("client", func(p *kernel.Proc) {
		fd := p.Syscall(kernel.SysSocket)
		p.Syscall(kernel.SysConnect, fd, 2222, kernel.LocalHost)
		req := p.PushString("SIGN challenge-xyz")
		p.Syscall(kernel.SysSendTo, fd, req, 18)
		buf := p.Alloc(128)
		n := p.Syscall(kernel.SysRecv, fd, buf, 128)
		sig = p.Read(buf, int(n))
		p.Syscall(kernel.SysClose, fd)
		// Shut the agent down.
		fd = p.Syscall(kernel.SysSocket)
		p.Syscall(kernel.SysConnect, fd, 2222, kernel.LocalHost)
		q := p.PushString("QUIT")
		p.Syscall(kernel.SysSendTo, fd, q, 4)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if st.Requests != 1 || st.Corrupted {
		t.Errorf("agent state: %+v", st)
	}
	if !vgcrypt.VerifySig(pair.Public, []byte("challenge-xyz"), sig) {
		t.Errorf("agent produced an invalid signature")
	}
}

// TestWireCarriesNoPlaintextKey: the agent's signing key never crosses
// the wire, and the sealed key file on disk is ciphertext — the §6
// "suite of cooperating applications" guarantee.
func TestKeyNeverOnDiskInPlaintext(t *testing.T) {
	sys := repro.MustNewSystem(repro.VirtualGhost)
	k := sys.Kernel
	appKey := make([]byte, 32)
	k.M.RNG.Fill(appKey)
	var seed [32]byte
	k.M.RNG.Fill(seed[:])
	pair := vgcrypt.DeriveKeyPair(seed)
	sealed, _ := vgcrypt.SealWithKeyAndCounter(appKey, 1, pair.Private)
	k.WriteKernelFile(PrivateKeyPath, sealed)
	onDisk, _ := k.ReadKernelFile(PrivateKeyPath)
	if bytes.Contains(onDisk, pair.Private[:16]) {
		t.Errorf("plaintext key material on disk")
	}
}
