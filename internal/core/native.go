package core

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/hw"
	"repro/internal/vir"
)

// NativeHAL is the baseline configuration: the same API surface as the
// Virtual Ghost VM with *no* protection. MMU updates are raw PTE
// writes, trap state stays where the hardware left it (reachable by the
// kernel and therefore by rootkits), "ghost" allocations are ordinary
// user memory, kernel loads and stores are uninstrumented, and modules
// compile without sandboxing or CFI. It corresponds to the paper's
// native FreeBSD/LLVM baseline.
type NativeHAL struct {
	halCommon
	appKeys map[ThreadID][]byte
	// scratch backs kernel-space addresses touched by module code (the
	// direct-map model shared with moduleEnv).
	scratch *scratchMem
}

// NewNativeHAL boots the baseline HAL on a machine.
func NewNativeHAL(m *hw.Machine) (*NativeHAL, error) {
	h := &NativeHAL{
		halCommon: newHALCommon(m, compiler.NativeOptions()),
		appKeys:   make(map[ThreadID][]byte),
	}
	for _, c := range m.CPUs {
		c.ISTTarget = 0 // trap state stays on the kernel stack
		c.SetTrapHandler(h.onTrap)
	}
	return h, nil
}

// Mode identifies the baseline configuration.
func (h *NativeHAL) Mode() Mode { return ModeNative }

// onTrap hands the raw trap frame straight to the kernel: no Interrupt
// Context copy, no register zeroing. A rootkit holding the kernel's
// trap path can read and rewrite everything.
func (h *NativeHAL) onTrap(tf *hw.TrapFrame) {
	tid := h.currentTID()
	ts := h.thread(tid)
	ts.ic = tf
	if h.handler == nil {
		panic("core: trap with no kernel handler registered")
	}
	h.handler(&nativeIC{baseIC{tf: tf, tid: tid}}, tf.Kind, tf.Info)
	h.m.Cur().ReturnFromTrap(tf)
}

// Syscall enters the kernel.
func (h *NativeHAL) Syscall(num uint64, args [6]uint64) uint64 {
	return h.doSyscall(num, args)
}

// Trap raises a non-syscall trap.
func (h *NativeHAL) Trap(kind hw.TrapKind, info uint64) {
	h.m.Cur().Trap(kind, info)
}

// TranslateModule compiles without instrumentation and accepts inline
// assembly — the stock-compiler baseline.
func (h *NativeHAL) TranslateModule(m *vir.Module) (*compiler.Translation, error) {
	return h.xlator.Translate(m)
}

// --- MMU (unchecked) --------------------------------------------------

// DeclarePTP just zeroes and retags — the OS can also write PTEs
// directly, so this is bookkeeping, not protection.
func (h *NativeHAL) DeclarePTP(f hw.Frame) error {
	if err := h.m.Mem.ZeroFrame(f); err != nil {
		return err
	}
	return h.m.Mem.SetType(f, hw.FramePageTable)
}

// NewAddressSpace allocates a root table.
func (h *NativeHAL) NewAddressSpace() (hw.Frame, error) {
	f, err := h.getFrame()
	if err != nil {
		return 0, err
	}
	if err := h.DeclarePTP(f); err != nil {
		h.frames.PutFrame(f)
		return 0, err
	}
	return f, nil
}

// MapPage writes the mapping with no policy checks.
func (h *NativeHAL) MapPage(root hw.Frame, va hw.Virt, f hw.Frame, flags uint64) error {
	return h.rawMap(root, va, f, flags, h.DeclarePTP)
}

// UnmapPage removes a mapping with no policy checks.
func (h *NativeHAL) UnmapPage(root hw.Frame, va hw.Virt) error {
	return h.rawUnmap(root, va)
}

// LoadAddressSpace loads CR3.
func (h *NativeHAL) LoadAddressSpace(root hw.Frame) error {
	h.m.CurMMU().SetRoot(root)
	if ts, ok := h.threads[h.currentTID()]; ok {
		ts.root = root
	}
	return nil
}

// --- "ghost" memory (plain user memory on the baseline) ---------------

// AllocGhost maps ordinary user frames at the requested addresses. The
// application's "protected" heap is fully visible to the OS — which is
// exactly what the attack experiments demonstrate.
func (h *NativeHAL) AllocGhost(t ThreadID, root hw.Frame, va hw.Virt, npages int) error {
	if err := checkGhostRange(va, npages); err != nil {
		return err
	}
	ts := h.thread(t)
	ts.root = root
	for i := 0; i < npages; i++ {
		pva := va + hw.Virt(i)*hw.PageSize
		if _, exists := ts.ghost[pva]; exists {
			return fmt.Errorf("core: page %#x already allocated", uint64(pva))
		}
		f, err := h.getFrame()
		if err != nil {
			return err
		}
		if err := h.m.Mem.ZeroFrame(f); err != nil {
			return err
		}
		if err := h.rawMap(root, pva, f, hw.PTEUser|hw.PTEWrite, h.DeclarePTP); err != nil {
			return err
		}
		ts.ghost[pva] = f
	}
	return nil
}

// FreeGhost unmaps and returns the frames (no scrubbing — the baseline
// OS leaks freed contents, as real kernels may).
func (h *NativeHAL) FreeGhost(t ThreadID, root hw.Frame, va hw.Virt, npages int) error {
	if err := checkGhostRange(va, npages); err != nil {
		return err
	}
	ts, err := h.lookup(t)
	if err != nil {
		return err
	}
	for i := 0; i < npages; i++ {
		pva := va + hw.Virt(i)*hw.PageSize
		f, ok := ts.ghost[pva]
		if !ok {
			return fmt.Errorf("core: free of unallocated page %#x", uint64(pva))
		}
		if err := h.rawUnmap(root, pva); err != nil {
			return err
		}
		delete(ts.ghost, pva)
		if h.m.Mem.Refs(f) == 0 {
			h.frames.PutFrame(f)
		}
	}
	return nil
}

// GhostPages reports resident pages.
func (h *NativeHAL) GhostPages(t ThreadID) int {
	ts, ok := h.threads[t]
	if !ok {
		return 0
	}
	return len(ts.ghost)
}

// InheritGhost shares the parent's pages with the child.
func (h *NativeHAL) InheritGhost(parent, child ThreadID, childRoot hw.Frame) error {
	pts, err := h.lookup(parent)
	if err != nil {
		return err
	}
	cts := h.thread(child)
	cts.root = childRoot
	for _, va := range sortedGhostVAs(pts.ghost) {
		f := pts.ghost[va]
		if err := h.rawMap(childRoot, va, f, hw.PTEUser|hw.PTEWrite, h.DeclarePTP); err != nil {
			return err
		}
		cts.ghost[va] = f
	}
	if k, ok := h.appKeys[parent]; ok {
		h.appKeys[child] = append([]byte(nil), k...)
	}
	return nil
}

// SwapOutGhost on the baseline returns the page *in plaintext* — the
// OS-controlled swap file sees everything.
func (h *NativeHAL) SwapOutGhost(t ThreadID, va hw.Virt) ([]byte, error) {
	ts, err := h.lookup(t)
	if err != nil {
		return nil, err
	}
	f, ok := ts.ghost[va]
	if !ok {
		return nil, fmt.Errorf("core: %#x is not resident", uint64(va))
	}
	raw, err := h.m.Mem.FrameBytes(f)
	if err != nil {
		return nil, err
	}
	blob := append([]byte(nil), raw...)
	if err := h.rawUnmap(ts.root, va); err != nil {
		return nil, err
	}
	delete(ts.ghost, va)
	h.frames.PutFrame(f)
	return blob, nil
}

// SwapInGhost restores a plaintext blob with no verification — stale or
// tampered pages are accepted silently.
func (h *NativeHAL) SwapInGhost(t ThreadID, va hw.Virt, blob []byte) error {
	ts, err := h.lookup(t)
	if err != nil {
		return err
	}
	if err := h.AllocGhost(t, ts.root, va, 1); err != nil {
		return err
	}
	dst, err := h.m.Mem.FrameBytes(ts.ghost[va])
	if err != nil {
		return err
	}
	copy(dst, blob)
	return nil
}

// --- Interrupt Context operations (unchecked) --------------------------

// NewState clones the parent context on the kernel stack.
func (h *NativeHAL) NewState(parent IContext, child ThreadID) (IContext, error) {
	rf, ok := parent.(RawFramer)
	if !ok {
		return nil, fmt.Errorf("core: native NewState needs a native context")
	}
	cts := h.thread(child)
	cts.ic = cloneFrame(rf.RawFrame())
	return &nativeIC{baseIC{tf: cts.ic, tid: child}}, nil
}

// ReinitIContext resets the context with no validation of the entry.
func (h *NativeHAL) ReinitIContext(ic IContext, entry uint64, stackTop uint64) error {
	rf, ok := ic.(RawFramer)
	if !ok {
		return fmt.Errorf("core: native ReinitIContext needs a native context")
	}
	rf.RawFrame().Regs = hw.RegFile{RIP: entry, RSP: stackTop, Priv: hw.User}
	return nil
}

// PermitFunction is a no-op baseline: nothing checks the list.
func (h *NativeHAL) PermitFunction(t ThreadID, addr uint64) error {
	ts := h.thread(t)
	ts.permitted[addr] = true
	return nil
}

// IPushFunction redirects the interrupted program to any address at all
// — the attack surface used by the code-injection rootkit.
func (h *NativeHAL) IPushFunction(ic IContext, addr uint64, args ...uint64) error {
	ts := h.thread(ic.Thread())
	ts.pendingAddr = addr
	ts.pendingArgs = append([]uint64(nil), args...)
	ts.pendingSet = true
	return nil
}

// PoppedHandler consumes the pending handler.
func (h *NativeHAL) PoppedHandler(t ThreadID) (uint64, []uint64, bool) {
	ts, ok := h.threads[t]
	if !ok || !ts.pendingSet {
		return 0, nil, false
	}
	ts.pendingSet = false
	return ts.pendingAddr, ts.pendingArgs, true
}

// SaveIC stores the context copy on the kernel stack (OS-visible).
func (h *NativeHAL) SaveIC(t ThreadID) error {
	ts, err := h.lookup(t)
	if err != nil {
		return err
	}
	if ts.ic == nil {
		return fmt.Errorf("core: thread %d has no interrupt context", t)
	}
	ts.icStack = append(ts.icStack, cloneFrame(ts.ic))
	return nil
}

// LoadIC restores the most recent copy.
func (h *NativeHAL) LoadIC(t ThreadID) error {
	ts, err := h.lookup(t)
	if err != nil {
		return err
	}
	if len(ts.icStack) == 0 {
		return fmt.Errorf("core: thread %d has no saved context", t)
	}
	top := ts.icStack[len(ts.icStack)-1]
	ts.icStack = ts.icStack[:len(ts.icStack)-1]
	*ts.ic = *top
	return nil
}

// EndThread drops thread state.
func (h *NativeHAL) EndThread(t ThreadID) {
	ts, ok := h.threads[t]
	if !ok {
		return
	}
	for _, va := range sortedGhostVAs(ts.ghost) {
		f := ts.ghost[va]
		_ = h.rawUnmap(ts.root, va)
		if h.m.Mem.Refs(f) == 0 {
			h.frames.PutFrame(f)
		}
	}
	delete(h.threads, t)
	delete(h.appKeys, t)
}

// --- keys (unprotected baseline) ---------------------------------------

// LoadBinary accepts anything; the key section, if present, is treated
// as the plaintext key (the baseline has no machine key to unseal with).
func (h *NativeHAL) LoadBinary(t ThreadID, bin *Binary) error {
	ts := h.thread(t)
	ts.binName = bin.Name
	if len(bin.KeySection) > 0 {
		h.appKeys[t] = append([]byte(nil), bin.KeySection...)
	}
	return nil
}

// GetKey returns the unprotected key.
func (h *NativeHAL) GetKey(t ThreadID) ([]byte, error) {
	k, ok := h.appKeys[t]
	if !ok {
		return nil, ErrNoKey
	}
	return append([]byte(nil), k...), nil
}

// VMPublicKey returns nil: the baseline has no machine key.
func (h *NativeHAL) VMPublicKey() []byte { return nil }

// Random draws from the hardware generator; on the baseline nothing
// stops the kernel from interposing (the Iago randomness attack works
// against /dev/random, which the kernel implements — see the attack
// suite).
func (h *NativeHAL) Random() uint64 { return h.m.RNG.Next() }

// --- unchecked I/O ------------------------------------------------------

// PortIn reads a port directly.
func (h *NativeHAL) PortIn(port uint16) (uint64, error) {
	h.m.Clock.Charge(hw.TagIO, hw.CostMemAccess)
	return h.m.Ports.In(port), nil
}

// PortOut writes a port directly — including IOMMU programming that
// exposes anything at all to DMA.
func (h *NativeHAL) PortOut(port uint16, v uint64) error {
	h.m.Clock.Charge(hw.TagIO, hw.CostMemAccess)
	h.m.Ports.Out(port, v)
	return nil
}

// --- costs (no instrumentation) ----------------------------------------

// KAccess charges the bare memory-access cost.
func (h *NativeHAL) KAccess(n int) {
	h.m.Clock.Charge(hw.TagMemAccess, uint64(n)*hw.CostMemAccess)
}

// OnIndirectCall charges the bare call cost.
func (h *NativeHAL) OnIndirectCall(n int) {
	h.m.Clock.Charge(hw.TagEngine, uint64(n)*hw.CostCall)
}

// BlockCopyCost charges the bare copy cost.
func (h *NativeHAL) BlockCopyCost(n int) {
	h.m.Clock.ChargeBytes(hw.TagMemAccess, n, hw.CostBcopyPerByte)
}

// --- uninstrumented kernel memory access --------------------------------

// KLoad reads exactly what the MMU maps — including application "ghost"
// pages, since nothing masks the address.
func (h *NativeHAL) KLoad(rootF hw.Frame, va hw.Virt, size int) (uint64, error) {
	h.m.Clock.Charge(hw.TagMemAccess, hw.CostMemAccess)
	p, err := h.translateIn(rootF, va, hw.AccRead)
	if err != nil {
		return 0, err
	}
	return h.m.Mem.ReadLE(p, size)
}

// KStore writes exactly where the MMU maps.
func (h *NativeHAL) KStore(rootF hw.Frame, va hw.Virt, size int, v uint64) error {
	h.m.Clock.Charge(hw.TagMemAccess, hw.CostMemAccess)
	p, err := h.translateIn(rootF, va, hw.AccWrite)
	if err != nil {
		return err
	}
	return h.m.Mem.WriteLE(p, size, v)
}

// Copyin copies from user space without masking.
func (h *NativeHAL) Copyin(rootF hw.Frame, va hw.Virt, n int) ([]byte, error) {
	h.BlockCopyCost(n)
	out := make([]byte, n)
	pos := 0
	for n > 0 {
		chunk := min(n, int(hw.PageSize-(va&(hw.PageSize-1))))
		p, err := h.translateIn(rootF, va, hw.AccRead)
		if err != nil {
			return nil, err
		}
		if err := h.m.Mem.ReadPhysInto(p, out[pos:pos+chunk]); err != nil {
			return nil, err
		}
		pos += chunk
		va += hw.Virt(chunk)
		n -= chunk
	}
	return out, nil
}

// Copyout copies to user space without masking.
func (h *NativeHAL) Copyout(rootF hw.Frame, va hw.Virt, b []byte) error {
	h.BlockCopyCost(len(b))
	for len(b) > 0 {
		chunk := min(len(b), int(hw.PageSize-(va&(hw.PageSize-1))))
		p, err := h.translateIn(rootF, va, hw.AccWrite)
		if err != nil {
			return err
		}
		if err := h.m.Mem.WritePhys(p, b[:chunk]); err != nil {
			return err
		}
		va += hw.Virt(chunk)
		b = b[chunk:]
	}
	return nil
}

var _ HAL = (*NativeHAL)(nil)

// OnVMRegion is free natively (no hypervisor region bookkeeping).
func (h *NativeHAL) OnVMRegion(npages int) {}
