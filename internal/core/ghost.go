package core

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/vgcrypt"
)

// ErrBadGhostRange is returned for allocgm/freegm arguments outside the
// ghost partition or misaligned.
var errBadGhostRange = fmt.Errorf("core: ghost range must be page-aligned and inside the ghost partition")

func checkGhostRange(va hw.Virt, npages int) error {
	if npages <= 0 || va%hw.PageSize != 0 {
		return errBadGhostRange
	}
	end := va + hw.Virt(npages)*hw.PageSize
	if !hw.IsGhost(va) || end > hw.GhostTop || end < va {
		return errBadGhostRange
	}
	return nil
}

// AllocGhost implements allocgm (paper §3.2): the VM requests physical
// frames from the operating system, verifies the OS holds no mappings
// to them, retags them as ghost frames, zeroes them, and maps them into
// the application's ghost partition.
func (vm *VM) AllocGhost(t ThreadID, root hw.Frame, va hw.Virt, npages int) error {
	if err := checkGhostRange(va, npages); err != nil {
		return err
	}
	ts := vm.thread(t)
	ts.root = root
	for i := 0; i < npages; i++ {
		pva := va + hw.Virt(i)*hw.PageSize
		if _, exists := ts.ghost[pva]; exists {
			return fmt.Errorf("core: ghost page %#x already allocated", uint64(pva))
		}
		f, err := vm.getFrame()
		if err != nil {
			return err
		}
		vm.m.Clock.Charge(hw.TagMMUCheck, hw.CostMMUCheckPerPage)
		// Verify the OS removed every virtual-to-physical mapping for
		// the frame before handing it over.
		if vm.m.Mem.Refs(f) != 0 {
			vm.frames.PutFrame(f)
			return fmt.Errorf("%w: OS-provided frame %d still mapped %d times",
				ErrGhostMapping, f, vm.m.Mem.Refs(f))
		}
		switch vm.m.Mem.TypeOf(f) {
		case hw.FrameSVA, hw.FramePageTable, hw.FrameIO, hw.FrameCode, hw.FrameGhost:
			vm.frames.PutFrame(f)
			return fmt.Errorf("%w: OS-provided frame %d is %v",
				ErrGhostMapping, f, vm.m.Mem.TypeOf(f))
		}
		// The OS unmapped the frame, but on an SMP machine another
		// CPU's TLB may still translate to it from the frame's previous
		// life. Run the shootdown protocol before retyping: a stale
		// remote translation into a ghost frame would hand the OS the
		// application's secrets (the stale-remote-TLB attack).
		vm.m.ShootdownFrame(f)
		if err := vm.m.Mem.SetType(f, hw.FrameGhost); err != nil {
			return err
		}
		if err := vm.m.Mem.ZeroFrame(f); err != nil {
			return err
		}
		// Only the VM maps into the ghost partition; this bypasses the
		// kernel-facing policy check by construction.
		if err := vm.rawMap(root, pva, f, hw.PTEUser|hw.PTEWrite, vm.DeclarePTP); err != nil {
			return err
		}
		ts.ghost[pva] = f
	}
	return nil
}

// FreeGhost implements freegm: unmap, zero, and return the frames to
// the operating system. Zeroing before return is what keeps freed ghost
// contents unreadable.
func (vm *VM) FreeGhost(t ThreadID, root hw.Frame, va hw.Virt, npages int) error {
	if err := checkGhostRange(va, npages); err != nil {
		return err
	}
	ts, err := vm.lookup(t)
	if err != nil {
		return err
	}
	for i := 0; i < npages; i++ {
		pva := va + hw.Virt(i)*hw.PageSize
		f, ok := ts.ghost[pva]
		if !ok {
			return fmt.Errorf("core: freegm of unallocated ghost page %#x", uint64(pva))
		}
		if err := vm.releaseGhostPage(ts, root, pva, f); err != nil {
			return err
		}
	}
	return nil
}

// releaseGhostPage unmaps one ghost page for this thread; when the last
// sharer unmaps (fork shares ghost frames across an application's
// processes), the frame is scrubbed, retagged, and returned to the OS.
func (vm *VM) releaseGhostPage(ts *threadState, root hw.Frame, pva hw.Virt, f hw.Frame) error {
	if err := vm.rawUnmap(root, pva); err != nil {
		return err
	}
	delete(ts.ghost, pva)
	if vm.m.Mem.Refs(f) > 0 {
		// Another thread of the application still maps the frame.
		return nil
	}
	// Last mapping gone: flush every remote TLB before the frame is
	// scrubbed and returned to the OS, so no CPU retains a stale
	// window onto memory about to change owners.
	vm.m.ShootdownFrame(f)
	if err := vm.m.Mem.ZeroFrame(f); err != nil {
		return err
	}
	if err := vm.m.Mem.SetType(f, hw.FrameUserData); err != nil {
		return err
	}
	vm.frames.PutFrame(f)
	return nil
}

// GhostPages reports the thread's resident ghost page count.
func (vm *VM) GhostPages(t ThreadID) int {
	ts, ok := vm.threads[t]
	if !ok {
		return 0
	}
	return len(ts.ghost)
}

// InheritGhost maps the parent's ghost pages into the child's address
// space, sharing frames: "any ghost memory belonging to the current
// thread will also belong to the new thread" (paper §4.6.2).
func (vm *VM) InheritGhost(parent, child ThreadID, childRoot hw.Frame) error {
	pts, err := vm.lookup(parent)
	if err != nil {
		return err
	}
	cts := vm.thread(child)
	cts.root = childRoot
	for _, va := range sortedGhostVAs(pts.ghost) {
		f := pts.ghost[va]
		if err := vm.rawMap(childRoot, va, f, hw.PTEUser|hw.PTEWrite, vm.DeclarePTP); err != nil {
			return err
		}
		cts.ghost[va] = f
	}
	// The application key is process state shared across fork.
	if pts.appKey != nil {
		cts.appKey = append([]byte(nil), pts.appKey...)
		cts.binName = pts.binName
	}
	for a := range pts.permitted {
		cts.permitted[a] = true
	}
	return nil
}

// --- secure swap (paper §3.3) -----------------------------------------

// swapHeader binds a swap blob to its virtual address so the OS cannot
// swap page A's contents back in at page B.
func swapHeader(va hw.Virt) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(va) >> (8 * i))
	}
	return b
}

// SwapOutGhost encrypts and MACs one ghost page under the VM's swap key
// and releases the frame back to the OS. The VM records the blob digest
// so that swap-in rejects corruption *and replay of stale versions* (an
// extension beyond the prototype, which left swap unimplemented — see
// DESIGN.md §9).
func (vm *VM) SwapOutGhost(t ThreadID, va hw.Virt) ([]byte, error) {
	if vm.legacy {
		return nil, ErrNotImplementedLegacy
	}
	ts, err := vm.lookup(t)
	if err != nil {
		return nil, err
	}
	f, ok := ts.ghost[va]
	if !ok {
		return nil, fmt.Errorf("%w: %#x is not a resident ghost page", ErrSwap, uint64(va))
	}
	raw, err := vm.m.Mem.FrameBytes(f)
	if err != nil {
		return nil, err
	}
	plain := append(swapHeader(va), raw...)
	vm.m.Clock.Charge(hw.TagCrypt, hw.CostPageCrypt+hw.CostPageHash)
	vm.swapCounter++
	blob, err := vgcrypt.SealWithKeyAndCounter(vm.keys.swapKey(), vm.swapCounter, plain)
	if err != nil {
		return nil, err
	}
	if err := vm.releaseGhostPage(ts, ts.root, va, f); err != nil {
		return nil, err
	}
	ts.swapped[va] = vgcrypt.Checksum(blob)
	return blob, nil
}

// SwapInGhost verifies and decrypts a swap blob back into the thread's
// ghost partition at its original address.
func (vm *VM) SwapInGhost(t ThreadID, va hw.Virt, blob []byte) error {
	ts, err := vm.lookup(t)
	if err != nil {
		return err
	}
	want, ok := ts.swapped[va]
	if !ok {
		return fmt.Errorf("%w: %#x was not swapped out", ErrSwap, uint64(va))
	}
	if vgcrypt.Checksum(blob) != want {
		return fmt.Errorf("%w: blob does not match the page swapped out at %#x (corruption or replay)", ErrSwap, uint64(va))
	}
	vm.m.Clock.Charge(hw.TagCrypt, hw.CostPageCrypt+hw.CostPageHash)
	plain, err := vgcrypt.Open(vm.keys.swapKey(), blob)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSwap, err)
	}
	if len(plain) != 8+hw.PageSize {
		return fmt.Errorf("%w: bad payload size %d", ErrSwap, len(plain))
	}
	hdr := swapHeader(va)
	for i := range hdr {
		if plain[i] != hdr[i] {
			return fmt.Errorf("%w: blob was sealed for a different address", ErrSwap)
		}
	}
	if err := vm.AllocGhost(t, ts.root, va, 1); err != nil {
		return err
	}
	f := ts.ghost[va]
	dst, err := vm.m.Mem.FrameBytes(f)
	if err != nil {
		return err
	}
	copy(dst, plain[8:])
	delete(ts.swapped, va)
	return nil
}
