package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/hw"
)

// mapUser allocates a user frame and maps it at va with the given flags.
func mapUser(t *testing.T, h HAL, m *hw.Machine, root hw.Frame, va hw.Virt, flags uint64) hw.Frame {
	t.Helper()
	f, err := m.Mem.AllocFrame(hw.FrameUserData)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.MapPage(root, va, f, flags); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestKLoadObservesUnmap(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	va := hw.Virt(0x400000)
	f := mapUser(t, vm, m, root, va, hw.PTEUser|hw.PTEWrite)
	b, _ := m.Mem.FrameBytes(f)
	b[0] = 0x5a

	if v, err := vm.KLoad(root, va, 1); err != nil || v != 0x5a {
		t.Fatalf("KLoad before unmap: v=%#x err=%v", v, err)
	}
	if err := vm.UnmapPage(root, va); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.KLoad(root, va, 1); err == nil {
		t.Fatal("KLoad after UnmapPage succeeded: stale cached translation")
	}
}

func TestKLoadObservesRemap(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	va := hw.Virt(0x400000)
	f1 := mapUser(t, vm, m, root, va, hw.PTEUser|hw.PTEWrite)
	b1, _ := m.Mem.FrameBytes(f1)
	b1[0] = 0x11
	if v, err := vm.KLoad(root, va, 1); err != nil || v != 0x11 {
		t.Fatalf("KLoad of first mapping: v=%#x err=%v", v, err)
	}

	// Remap the same page to a different frame (no unmap in between:
	// rawMap replaces the live leaf).
	f2, err := m.Mem.AllocFrame(hw.FrameUserData)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := m.Mem.FrameBytes(f2)
	b2[0] = 0x22
	if err := vm.MapPage(root, va, f2, hw.PTEUser|hw.PTEWrite); err != nil {
		t.Fatal(err)
	}
	if v, err := vm.KLoad(root, va, 1); err != nil || v != 0x22 {
		t.Fatalf("KLoad after remap: v=%#x err=%v, want 0x22", v, err)
	}
}

func TestKStoreObservesPermissionDowngrade(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	va := hw.Virt(0x400000)
	f := mapUser(t, vm, m, root, va, hw.PTEUser|hw.PTEWrite)
	if err := vm.KStore(root, va, 1, 0xaa); err != nil {
		t.Fatalf("KStore to writable page: %v", err)
	}
	// Downgrade to read-only by remapping the same frame.
	if err := vm.MapPage(root, va, f, hw.PTEUser); err != nil {
		t.Fatal(err)
	}
	if err := vm.KStore(root, va, 1, 0xbb); err == nil {
		t.Fatal("KStore after permission downgrade succeeded")
	}
	if v, err := vm.KLoad(root, va, 1); err != nil || v != 0xaa {
		t.Fatalf("KLoad after downgrade: v=%#x err=%v, want 0xaa", v, err)
	}
}

func TestCopyinObservesRemap(t *testing.T) {
	h, m := newNative(t)
	root, _ := h.NewAddressSpace()
	va := hw.Virt(0x400000)
	f1 := mapUser(t, h, m, root, va, hw.PTEUser|hw.PTEWrite)
	b1, _ := m.Mem.FrameBytes(f1)
	copy(b1, []byte("first"))
	got, err := h.Copyin(root, va, 5)
	if err != nil || !bytes.Equal(got, []byte("first")) {
		t.Fatalf("Copyin of first mapping: %q err=%v", got, err)
	}

	if err := h.UnmapPage(root, va); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Copyin(root, va, 5); err == nil {
		t.Fatal("Copyin after unmap succeeded: stale cached translation")
	}

	f2, err := m.Mem.AllocFrame(hw.FrameUserData)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := m.Mem.FrameBytes(f2)
	copy(b2, []byte("other"))
	if err := h.MapPage(root, va, f2, hw.PTEUser|hw.PTEWrite); err != nil {
		t.Fatal(err)
	}
	got, err = h.Copyin(root, va, 5)
	if err != nil || !bytes.Equal(got, []byte("other")) {
		t.Fatalf("Copyin after remap: %q err=%v, want %q", got, err, "other")
	}
}

// TestStaleTranslationGhostFrameRegression models the attack the
// invalidation hooks exist to stop (cf. internal/attack): the kernel
// touches a user page (priming any translation cache), the page is
// unmapped and its frame freed, and the frame is then reallocated as a
// *ghost* frame holding an application secret. The memory allocator's
// LIFO free list makes the reuse deterministic. A walk cache without
// invalidation would satisfy the kernel's next load from the stale
// (root, page) entry and leak the ghost frame's contents; with the
// shipped hooks the load must fault.
func TestStaleTranslationGhostFrameRegression(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.LoadAddressSpace(root); err != nil {
		t.Fatal(err)
	}
	va := hw.Virt(0x400000)
	f := mapUser(t, vm, m, root, va, hw.PTEUser|hw.PTEWrite)

	// Prime the translation path.
	if _, err := vm.KLoad(root, va, 8); err != nil {
		t.Fatalf("priming KLoad: %v", err)
	}

	// Tear down the mapping and free the frame; the LIFO free list
	// guarantees the very next allocation returns it.
	if err := vm.UnmapPage(root, va); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.FreeFrame(f); err != nil {
		t.Fatal(err)
	}

	// The application allocates ghost memory: the freed frame comes
	// back as a FrameGhost frame holding a secret.
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	gf := vm.threads[1].ghost[hw.GhostBase]
	if gf != f {
		t.Fatalf("test setup: ghost frame %d, want recycled frame %d", gf, f)
	}
	secret := []byte{0x13, 0x37, 0xc0, 0xde, 0x13, 0x37, 0xc0, 0xde}
	gb, _ := m.Mem.FrameBytes(gf)
	copy(gb, secret)

	// The hostile kernel retries its load of the unmapped user page. A
	// stale cached translation would hand it the ghost frame.
	v, err := vm.KLoad(root, va, 8)
	if err == nil {
		t.Fatalf("KLoad of unmapped page succeeded (v=%#x), want fault", v)
	}
	var fault *hw.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("KLoad error = %v, want *hw.Fault", err)
	}
}

func TestCopyinCopyoutRoundTripLarge(t *testing.T) {
	h, m := newNative(t)
	root, _ := h.NewAddressSpace()
	// Three pages so copies straddle page boundaries.
	base := hw.Virt(0x400000)
	for i := 0; i < 3; i++ {
		mapUser(t, h, m, root, base+hw.Virt(i*hw.PageSize), hw.PTEUser|hw.PTEWrite)
	}
	data := make([]byte, 2*hw.PageSize+777)
	for i := range data {
		data[i] = byte(i * 7)
	}
	va := base + 123 // unaligned start
	if err := h.Copyout(root, va, data); err != nil {
		t.Fatal(err)
	}
	got, err := h.Copyin(root, va, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Copyin/Copyout round trip mismatch")
	}
}
