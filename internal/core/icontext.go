package core

import "repro/internal/hw"

// syscallArgRegs is the argument-register order (System V-style).
var syscallArgRegs = [6]hw.Reg{hw.RDI, hw.RSI, hw.RDX, hw.RCX, hw.R8, hw.R9}

// baseIC implements the checked IContext view over a trap frame. Both
// HALs use it; the difference is where the frame lives (VM internal
// memory vs the kernel stack) and whether the raw frame is reachable.
type baseIC struct {
	tf  *hw.TrapFrame
	tid ThreadID
}

func (ic *baseIC) SyscallNum() uint64 { return ic.tf.Regs.GPR[hw.RAX] }

func (ic *baseIC) Arg(i int) uint64 {
	if i < 0 || i >= len(syscallArgRegs) {
		return 0
	}
	return ic.tf.Regs.GPR[syscallArgRegs[i]]
}

func (ic *baseIC) SetRet(v uint64) { ic.tf.Regs.GPR[hw.RAX] = v }

func (ic *baseIC) Thread() ThreadID { return ic.tid }

// vgIC is the Virtual Ghost Interrupt Context handle. The underlying
// frame is stored in VM internal memory; there is deliberately no
// RawFrame method — the kernel can only use the checked mutators.
type vgIC struct{ baseIC }

// nativeIC is the native Interrupt Context: the frame sits on the
// kernel stack and RawFrame hands it out for arbitrary mutation, which
// is exactly the attack surface Virtual Ghost closes.
type nativeIC struct{ baseIC }

// RawFrame implements RawFramer.
func (ic *nativeIC) RawFrame() *hw.TrapFrame { return ic.tf }

var _ RawFramer = (*nativeIC)(nil)

// cloneFrame deep-copies a trap frame.
func cloneFrame(tf *hw.TrapFrame) *hw.TrapFrame {
	cp := *tf
	return &cp
}
