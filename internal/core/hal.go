// Package core implements the paper's primary contribution: the Virtual
// Ghost VM — the SVA-OS hardware abstraction layer plus the trusted
// services (ghost memory, Interrupt Context protection, key management,
// secure swap, trusted randomness) layered on it.
//
// The kernel (internal/kernel) is written against the HAL interface
// defined here. Two implementations exist:
//
//   - VM (vm.go): the Virtual Ghost configuration. Every operation
//     performs the run-time checks of paper §4, kernel memory accesses
//     pay the sandboxing instrumentation cost, traps save the Interrupt
//     Context into VM-internal memory and zero registers, and kernel
//     modules must be translated by the instrumenting compiler.
//
//   - NativeHAL (native.go): the baseline. Operations manipulate the
//     hardware directly with no checks and no instrumentation costs —
//     this is the stock FreeBSD/LLVM configuration the paper measures
//     against, and the configuration on which the rootkit attacks
//     succeed.
//
// Nothing in this package runs at a higher privilege than the kernel:
// the VM is a library the kernel calls into (paper §1), and its
// integrity comes from the compiler instrumentation applied to all
// kernel code, not from hardware privilege.
package core

import (
	"repro/internal/compiler"
	"repro/internal/hw"
	"repro/internal/vir"
)

// Mode identifies which protection configuration a HAL provides.
type Mode int

const (
	// ModeNative is the unprotected baseline.
	ModeNative Mode = iota
	// ModeVirtualGhost is the full Virtual Ghost configuration.
	ModeVirtualGhost
	// ModeShadow is the InkTag/Overshadow-style shadowing baseline
	// (implemented in internal/shadow by wrapping NativeHAL).
	ModeShadow
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeVirtualGhost:
		return "virtualghost"
	case ModeShadow:
		return "shadow"
	}
	return "mode?"
}

// ThreadID identifies a kernel thread to the HAL. The kernel assigns
// them; the HAL keeps per-thread Interrupt Context state.
type ThreadID int

// IContext is the kernel's handle on an interrupted program's saved
// state (paper §4.6). Under Virtual Ghost the underlying trap frame
// lives in VM-internal memory and the kernel can only mutate it through
// the checked HAL operations; natively the frame is on the kernel stack
// and the kernel (or a rootkit) can do anything to it — see RawFramer.
type IContext interface {
	// SyscallNum returns the system-call number (RAX at trap time).
	SyscallNum() uint64
	// Arg returns system-call argument i (0..5: RDI RSI RDX RCX R8 R9).
	Arg(i int) uint64
	// SetRet sets the value returned to the interrupted program (RAX).
	SetRet(v uint64)
	// Thread returns the thread this context belongs to.
	Thread() ThreadID
}

// RawFramer is implemented only by the native IContext: it exposes the
// raw trap frame for direct mutation. Attack code type-asserts to this;
// under Virtual Ghost the assertion fails, which *is* the defence —
// there is no unchecked path to the saved state.
type RawFramer interface {
	RawFrame() *hw.TrapFrame
}

// TrapHandler is the kernel's trap/syscall entry point, registered at
// boot. The HAL invokes it after performing its entry work (under
// Virtual Ghost: saving the Interrupt Context into VM memory and
// zeroing registers).
type TrapHandler func(ic IContext, kind hw.TrapKind, info uint64)

// FrameSource lets the HAL request and return physical frames from the
// kernel's allocator — Virtual Ghost asks the *operating system* for
// page frames and then validates them (paper §3.2).
type FrameSource interface {
	GetFrame() (hw.Frame, error)
	PutFrame(f hw.Frame)
}

// HAL is the SVA-OS API: the complete set of operations the kernel may
// use to manipulate hardware and application state. It corresponds to
// the SVA-OS instructions of paper §4/§5 (sva.* operations, allocgm/
// freegm, MMU update instructions, the I/O instructions).
type HAL interface {
	Mode() Mode
	Machine() *hw.Machine

	// --- boot-time registration ---
	RegisterTrapHandler(h TrapHandler)
	RegisterFrameSource(src FrameSource)

	// --- code translation (the compiler boundary) ---
	// TranslateModule compiles a kernel module through the configured
	// pipeline; under Virtual Ghost this applies sandboxing + CFI and
	// refuses inline assembly. The kernel cannot execute supervisor
	// code that has not been translated.
	TranslateModule(m *vir.Module) (*compiler.Translation, error)
	CodeSpace() *compiler.CodeSpace
	// ModuleEnv builds the execution environment for translated module
	// code running against the address space rooted at root.
	ModuleEnv(root hw.Frame, intrinsics IntrinsicFunc) vir.Env

	// --- MMU operations (paper §4.3.2) ---
	// DeclarePTP hands a kernel frame to the HAL for use as a page-
	// table page; Virtual Ghost validates and zeroes it and from then
	// on the kernel may only write it through UpdateMapping.
	DeclarePTP(f hw.Frame) error
	// NewAddressSpace allocates and declares a root page-table frame.
	NewAddressSpace() (hw.Frame, error)
	// MapPage installs/updates the leaf mapping va -> frame in the
	// address space rooted at root. Virtual Ghost checks that the
	// mapping cannot expose ghost, SVA, or page-table frames.
	MapPage(root hw.Frame, va hw.Virt, f hw.Frame, flags uint64) error
	// UnmapPage removes a leaf mapping.
	UnmapPage(root hw.Frame, va hw.Virt) error
	// LoadAddressSpace loads root into CR3 (context switch).
	LoadAddressSpace(root hw.Frame) error

	// --- ghost memory (paper §3.2: allocgm/freegm) ---
	AllocGhost(t ThreadID, root hw.Frame, va hw.Virt, npages int) error
	FreeGhost(t ThreadID, root hw.Frame, va hw.Virt, npages int) error
	// GhostPages reports how many ghost pages the thread's process
	// currently holds (for accounting and tests).
	GhostPages(t ThreadID) int
	// InheritGhost maps the parent's ghost pages (and key) into the
	// child (fork shares ghost memory within an application,
	// paper §4.6.2).
	InheritGhost(parent, child ThreadID, childRoot hw.Frame) error

	// --- secure swap (paper §3.3) ---
	// SwapOutGhost encrypts+MACs one ghost page with the VM key,
	// releases its frame back to the OS, and returns the blob for the
	// OS to store wherever it likes.
	SwapOutGhost(t ThreadID, va hw.Virt) ([]byte, error)
	// SwapInGhost verifies and decrypts a blob previously produced by
	// SwapOutGhost back into the thread's ghost partition.
	SwapInGhost(t ThreadID, va hw.Virt, blob []byte) error

	// --- Interrupt Context operations (paper §4.6) ---
	// Syscall is the user->kernel entry: it loads the arguments into
	// the CPU, takes the trap, and returns the value the kernel set.
	Syscall(num uint64, args [6]uint64) uint64
	// Trap raises a non-syscall trap (page fault, timer) for the
	// current thread.
	Trap(kind hw.TrapKind, info uint64)
	// NewState creates the Interrupt Context + thread state for a new
	// thread (fork); the child's context is a clone of the parent's
	// (sva.newstate).
	NewState(parent IContext, child ThreadID) (IContext, error)
	// ReinitIContext resets a thread's context for a fresh program
	// image (execve); any ghost memory of the old image is unmapped
	// (sva.reinit.icontext).
	ReinitIContext(ic IContext, entry uint64, stackTop uint64) error
	// PermitFunction registers addr as a legal signal-handler entry
	// for the thread's process (sva.permitFunction). Must be invoked
	// from the application's own context (the libc wrapper does).
	PermitFunction(t ThreadID, addr uint64) error
	// IPushFunction modifies an Interrupt Context so the interrupted
	// program runs the handler at addr when resumed
	// (sva.ipush.function). Virtual Ghost refuses unregistered
	// targets.
	IPushFunction(ic IContext, addr uint64, args ...uint64) error
	// PoppedHandler reports and clears the pending pushed-handler
	// address for a thread (consumed by the return-to-user path).
	PoppedHandler(t ThreadID) (addr uint64, args []uint64, ok bool)
	// SaveIC / LoadIC push and pop a copy of the Interrupt Context
	// around signal delivery (sva.icontext.save/load).
	SaveIC(t ThreadID) error
	LoadIC(t ThreadID) error
	// EndThread releases all HAL state for a thread (process exit).
	EndThread(t ThreadID)

	// --- key management (paper §3.3, §4.4) ---
	// LoadBinary validates a signed application binary, decrypts its
	// key section into VM memory, and associates it with the thread.
	LoadBinary(t ThreadID, bin *Binary) error
	// GetKey returns the application's private key (sva.getKey); the
	// application stores it in ghost memory.
	GetKey(t ThreadID) ([]byte, error)
	// VMPublicKey returns the machine's Virtual Ghost public key, used
	// by trusted installers to sign binaries and encrypt key sections.
	VMPublicKey() []byte

	// --- trusted randomness (paper §4.7) ---
	Random() uint64

	// --- checked I/O (paper §4.3.3) ---
	PortIn(port uint16) (uint64, error)
	PortOut(port uint16, v uint64) error

	// --- instrumentation cost hooks (see DESIGN.md §7) ---
	// KAccess charges n kernel data-structure accesses; Virtual Ghost
	// adds the per-access sandboxing cost the compiled kernel pays.
	KAccess(n int)
	// OnIndirectCall charges n kernel indirect-call/return sites;
	// Virtual Ghost adds the CFI check cost.
	OnIndirectCall(n int)
	// CopyinCost/CopyoutCost charge block-copy instrumentation (one
	// mask per memcpy operand, as the prototype instruments memcpy).
	BlockCopyCost(n int)
	// OnVMRegion is invoked for VM-region create/destroy of npages
	// (mmap/munmap). Native and Virtual Ghost charge nothing here
	// (Virtual Ghost checks at mapping time); the shadowing baseline
	// charges per-page hypervisor region bookkeeping.
	OnVMRegion(npages int)

	// --- kernel access to user/ghost virtual memory ---
	// The compiled kernel's loads and stores: under Virtual Ghost the
	// effective address is masked (so ghost reads return kernel noise
	// and ghost writes land harmlessly in kernel space); natively they
	// reach whatever the MMU maps.
	KLoad(root hw.Frame, va hw.Virt, size int) (uint64, error)
	KStore(root hw.Frame, va hw.Virt, size int, v uint64) error
	Copyin(root hw.Frame, va hw.Virt, n int) ([]byte, error)
	Copyout(root hw.Frame, va hw.Virt, b []byte) error

	// CurrentThread is maintained by the kernel scheduler.
	SetCurrentThread(t ThreadID)
	CurrentThread() ThreadID
}
