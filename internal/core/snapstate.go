package core

import (
	"fmt"
	"sort"

	"repro/internal/hw"
	"repro/internal/vgcrypt"
)

// This file is the HAL half of the snapshot subsystem (DESIGN.md §18):
// the per-thread state both HALs keep — interrupt contexts, ghost page
// maps, permitted-handler sets, application keys — plus the VM-private
// counters (swap nonces, sealing nonces, the IOMMU latch mirror) and
// the scratch direct-map contents. Host-side structures (translator,
// code space, registered handler/frame-source closures) are rebuilt by
// booting an equivalent machine before ApplyHALSnap overwrites state.

// SnapshotStateful is implemented by every HAL that supports
// snapshot/restore. The shadow HAL inherits the native implementation:
// its hypervisor costs are stateless constants.
type SnapshotStateful interface {
	CaptureHALSnap() (*HALSnap, error)
	ApplyHALSnap(*HALSnap) error
}

// SnapshotSealer is the Virtual Ghost VM's image-sealing service: a
// snapshot image must not expose ghost or VM-internal frame contents in
// the clear, so the snapshot subsystem routes those pages through the
// VM, which seals them under a TPM-rooted key that never appears in the
// image (paper §4.4 key chain; MProtect's sealed-memory threat model).
// Only *VM implements this — native and shadow images carry every frame
// in plaintext, which is exactly the exposure the tampered-snapshot
// security row demonstrates.
type SnapshotSealer interface {
	SealSnapshotPage(frame uint64, plain []byte) ([]byte, error)
	OpenSnapshotPage(frame uint64, blob []byte) ([]byte, error)
}

// HALSnap is the serializable HAL state. VG-only fields are zero for
// native captures; Mode-tagged images keep the two from mixing.
type HALSnap struct {
	Cur     []int64      `json:"cur"`
	Threads []ThreadSnap `json:"threads,omitempty"`
	Scratch ScratchSnap  `json:"scratch,omitempty"`

	// Virtual Ghost VM state.
	SwapCounter  uint64 `json:"swap_counter,omitempty"`
	IOMMULatch   uint64 `json:"iommu_latch,omitempty"`
	NonceCounter uint64 `json:"nonce_counter,omitempty"`
	Legacy       bool   `json:"legacy,omitempty"`

	// Native HAL state: per-thread raw key sections (the native kernel
	// holds them in the clear — that exposure is the paper's point).
	AppKeys []AppKeySnap `json:"app_keys,omitempty"`
}

// ThreadSnap is one thread's HAL state, sorted by ID in HALSnap.
type ThreadSnap struct {
	ID          int64           `json:"id"`
	Root        uint64          `json:"root"`
	IC          *hw.TrapFrame   `json:"ic,omitempty"`
	ICStack     []*hw.TrapFrame `json:"ic_stack,omitempty"`
	PendingAddr uint64          `json:"pending_addr,omitempty"`
	PendingArgs []uint64        `json:"pending_args,omitempty"`
	PendingSet  bool            `json:"pending_set,omitempty"`
	Permitted   []uint64        `json:"permitted,omitempty"`
	Ghost       []GhostPageSnap `json:"ghost,omitempty"`
	Swapped     []SwapPageSnap  `json:"swapped,omitempty"`
	AppKey      []byte          `json:"app_key,omitempty"`
	BinName     string          `json:"bin_name,omitempty"`
}

// GhostPageSnap records one ghost-partition mapping.
type GhostPageSnap struct {
	VA    uint64 `json:"va"`
	Frame uint64 `json:"frame"`
}

// SwapPageSnap records the integrity digest of one swapped-out ghost
// page.
type SwapPageSnap struct {
	VA     uint64 `json:"va"`
	Digest []byte `json:"digest"`
}

// ScratchSnap is the kernel direct-map contents (page base -> bytes).
type ScratchSnap map[uint64][]byte

// AppKeySnap is one native thread's key section.
type AppKeySnap struct {
	ID  int64  `json:"id"`
	Key []byte `json:"key"`
}

func (h *halCommon) captureCommon() *HALSnap {
	s := &HALSnap{Cur: make([]int64, len(h.cur))}
	for i, t := range h.cur {
		s.Cur[i] = int64(t)
	}
	ids := make([]int, 0, len(h.threads))
	for id := range h.threads {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		ts := h.threads[ThreadID(id)]
		t := ThreadSnap{
			ID:          int64(ts.id),
			Root:        uint64(ts.root),
			PendingAddr: ts.pendingAddr,
			PendingArgs: append([]uint64(nil), ts.pendingArgs...),
			PendingSet:  ts.pendingSet,
			AppKey:      append([]byte(nil), ts.appKey...),
			BinName:     ts.binName,
		}
		if ts.ic != nil {
			ic := *ts.ic
			t.IC = &ic
		}
		for _, f := range ts.icStack {
			cp := *f
			t.ICStack = append(t.ICStack, &cp)
		}
		for a, ok := range ts.permitted {
			if ok {
				t.Permitted = append(t.Permitted, a)
			}
		}
		sort.Slice(t.Permitted, func(i, j int) bool { return t.Permitted[i] < t.Permitted[j] })
		for va, f := range ts.ghost {
			t.Ghost = append(t.Ghost, GhostPageSnap{VA: uint64(va), Frame: uint64(f)})
		}
		sort.Slice(t.Ghost, func(i, j int) bool { return t.Ghost[i].VA < t.Ghost[j].VA })
		for va, d := range ts.swapped {
			t.Swapped = append(t.Swapped, SwapPageSnap{VA: uint64(va), Digest: append([]byte(nil), d[:]...)})
		}
		sort.Slice(t.Swapped, func(i, j int) bool { return t.Swapped[i].VA < t.Swapped[j].VA })
		s.Threads = append(s.Threads, t)
	}
	return s
}

func (h *halCommon) applyCommon(s *HALSnap) error {
	if len(s.Cur) != len(h.cur) {
		return fmt.Errorf("core: snapshot has %d CPUs of scheduled-thread state, machine has %d", len(s.Cur), len(h.cur))
	}
	for i, t := range s.Cur {
		h.cur[i] = ThreadID(t)
	}
	clear(h.threads)
	for _, t := range s.Threads {
		ts := &threadState{
			id:          ThreadID(t.ID),
			root:        hw.Frame(t.Root),
			pendingAddr: t.PendingAddr,
			pendingArgs: append([]uint64(nil), t.PendingArgs...),
			pendingSet:  t.PendingSet,
			permitted:   make(map[uint64]bool, len(t.Permitted)),
			ghost:       make(map[hw.Virt]hw.Frame, len(t.Ghost)),
			swapped:     make(map[hw.Virt][32]byte, len(t.Swapped)),
			appKey:      append([]byte(nil), t.AppKey...),
			binName:     t.BinName,
		}
		if t.IC != nil {
			ic := *t.IC
			ts.ic = &ic
		}
		for _, f := range t.ICStack {
			cp := *f
			ts.icStack = append(ts.icStack, &cp)
		}
		for _, a := range t.Permitted {
			ts.permitted[a] = true
		}
		for _, g := range t.Ghost {
			ts.ghost[hw.Virt(g.VA)] = hw.Frame(g.Frame)
		}
		for _, sw := range t.Swapped {
			var d [32]byte
			copy(d[:], sw.Digest)
			ts.swapped[hw.Virt(sw.VA)] = d
		}
		h.threads[ts.id] = ts
	}
	return nil
}

func (s *scratchMem) captureSnap() ScratchSnap {
	// The native HAL allocates its scratch map lazily; an absent map and
	// an empty one are the same machine state, so both capture as nil
	// and images never depend on allocation history.
	if s == nil || len(s.pages) == 0 {
		return nil
	}
	out := make(ScratchSnap, len(s.pages))
	for va, pg := range s.pages {
		out[uint64(va)] = append([]byte(nil), pg[:]...)
	}
	return out
}

func (s *scratchMem) applySnap(snap ScratchSnap) {
	if s == nil {
		return
	}
	clear(s.pages)
	for va, b := range snap {
		if len(b) != hw.PageSize {
			continue
		}
		pg := new([hw.PageSize]byte)
		copy(pg[:], b)
		s.pages[hw.Virt(va)] = pg
	}
}

// CaptureHALSnap serializes the VM's state: common thread state plus
// the sealing counters, the IOMMU latch mirror and the scratch direct
// map. The key chain itself is not captured — it re-derives from the
// machine's TPM storage key, which never leaves the platform.
func (vm *VM) CaptureHALSnap() (*HALSnap, error) {
	s := vm.captureCommon()
	s.Scratch = vm.scratch.captureSnap()
	s.SwapCounter = vm.swapCounter
	s.IOMMULatch = uint64(vm.iommuLatch)
	s.NonceCounter = vm.keys.nonces.Counter()
	s.Legacy = vm.legacy
	return s, nil
}

// ApplyHALSnap overwrites the VM's state with a captured snapshot.
func (vm *VM) ApplyHALSnap(s *HALSnap) error {
	if s.Legacy != vm.legacy {
		return fmt.Errorf("core: snapshot legacy-prototype mode %v, VM %v", s.Legacy, vm.legacy)
	}
	if err := vm.applyCommon(s); err != nil {
		return err
	}
	vm.scratch.applySnap(s.Scratch)
	vm.swapCounter = s.SwapCounter
	vm.iommuLatch = hw.Frame(s.IOMMULatch)
	vm.keys.nonces.SetCounter(s.NonceCounter)
	return nil
}

// snapshotPageKey derives the symmetric key sealing protected frames in
// snapshot images. It hangs off the same TPM-rooted chain as the key
// sections, so an equivalent machine (same TPM storage key) re-derives
// it at restore and nothing key-like is ever written into the image.
func (vm *VM) snapshotPageKey() []byte {
	return vgcrypt.DeriveKey(vm.keys.sealKey, "snapshot-frame-seal")
}

// SealSnapshotPage encrypts one protected frame's contents for a
// snapshot image. The frame number keys the nonce, so the encoding is
// deterministic: equal machine states produce byte-identical images.
func (vm *VM) SealSnapshotPage(frame uint64, plain []byte) ([]byte, error) {
	return vgcrypt.SealWithKeyAndCounter(vm.snapshotPageKey(), frame, plain)
}

// OpenSnapshotPage authenticates and decrypts a sealed image frame.
// Any bit flipped in the blob — or a key chain rooted in a different
// TPM — fails authentication (vgcrypt.ErrCorrupt) and the restore is
// refused before the page touches memory.
func (vm *VM) OpenSnapshotPage(frame uint64, blob []byte) ([]byte, error) {
	_ = frame // the nonce travels inside the blob; frame is the caller's index
	return vgcrypt.Open(vm.snapshotPageKey(), blob)
}

// CaptureHALSnap serializes the native HAL's state: common thread
// state, the scratch direct map, and the per-thread raw key sections.
func (h *NativeHAL) CaptureHALSnap() (*HALSnap, error) {
	s := h.captureCommon()
	s.Scratch = h.scratch.captureSnap()
	ids := make([]int, 0, len(h.appKeys))
	for id := range h.appKeys {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		s.AppKeys = append(s.AppKeys, AppKeySnap{
			ID:  int64(id),
			Key: append([]byte(nil), h.appKeys[ThreadID(id)]...),
		})
	}
	return s, nil
}

// ApplyHALSnap overwrites the native HAL's state with a captured
// snapshot.
func (h *NativeHAL) ApplyHALSnap(s *HALSnap) error {
	if err := h.applyCommon(s); err != nil {
		return err
	}
	if h.scratch == nil && len(s.Scratch) > 0 {
		h.scratch = newScratchMem()
	}
	h.scratch.applySnap(s.Scratch)
	clear(h.appKeys)
	for _, ak := range s.AppKeys {
		h.appKeys[ThreadID(ak.ID)] = append([]byte(nil), ak.Key...)
	}
	return nil
}
