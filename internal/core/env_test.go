package core

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/vir"
)

// buildPoker builds a module function that stores then loads at an
// address: poke8(addr, v) -> loaded value.
func buildPoker() *vir.Module {
	m := vir.NewModule("poker")
	b := vir.NewFunction("poke8", 2)
	b.Store(b.Param(0), b.Param(1), 8)
	b.Ret(b.Load(b.Param(0), 8))
	if err := m.AddFunc(b.Fn()); err != nil {
		panic(err)
	}
	io := vir.NewFunction("ioprobe", 2)
	io.PortOut(io.Param(0), io.Param(1))
	io.Ret(io.PortIn(io.Param(0)))
	if err := m.AddFunc(io.Fn()); err != nil {
		panic(err)
	}
	return m
}

func TestModuleEnvKernelScratchCoherentWithKLoad(t *testing.T) {
	vm, _ := newVM(t)
	tr, err := vm.TranslateModule(buildPoker())
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := tr.Entry("poke8")
	f, _ := vm.CodeSpace().FuncByAddr(addr)
	env := vm.ModuleEnv(0, nil)
	ip := vir.NewInterp(env)
	const kva = 0xffffff8000200000
	got, err := ip.Call(f, kva, 0xfeedface)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xfeedface {
		t.Fatalf("module store/load = %#x", got)
	}
	// The Go-kernel accessor sees the same kernel memory image.
	v, err := vm.KLoad(0, kva, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xfeedface {
		t.Errorf("KLoad sees %#x; module env and kernel scratch diverge", v)
	}
}

func TestModuleEnvUserMemory(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	f, _ := m.Mem.AllocFrame(hw.FrameUserData)
	_ = m.Mem.ZeroFrame(f)
	if err := vm.MapPage(root, 0x400000, f, hw.PTEUser|hw.PTEWrite); err != nil {
		t.Fatal(err)
	}
	tr, err := vm.TranslateModule(vir.NewModule("empty"))
	_ = tr
	if err != nil {
		t.Fatal(err)
	}
	env := vm.ModuleEnv(root, nil)
	if err := env.Store(0x400010, 4, 0xabcd); err != nil {
		t.Fatal(err)
	}
	v, err := env.Load(0x400010, 4)
	if err != nil || v != 0xabcd {
		t.Fatalf("user load = %#x, %v", v, err)
	}
	// The store really landed in the frame.
	b, _ := m.Mem.FrameBytes(f)
	if b[0x10] != 0xcd || b[0x11] != 0xab {
		t.Errorf("frame bytes: % x", b[0x10:0x12])
	}
	// Unmapped user addresses fault.
	if _, err := env.Load(0x500000, 8); err == nil {
		t.Errorf("unmapped user load succeeded")
	}
}

func TestModuleEnvMemcpy(t *testing.T) {
	vm, _ := newVM(t)
	env := vm.ModuleEnv(0, nil)
	const a, b = 0xffffff8000300000, 0xffffff8000300100
	for i := uint64(0); i < 8; i++ {
		if err := env.Store(hw.Virt(a+i), 1, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Memcpy(b, a, 8); err != nil {
		t.Fatal(err)
	}
	v, _ := env.Load(b, 8)
	if v != 0x0807060504030201 {
		t.Errorf("memcpy = %#x", v)
	}
}

func TestModuleEnvPortIOCheckedUnderVG(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	var ghostFrame hw.Frame
	for fr := hw.Frame(1); fr < 2048; fr++ {
		if m.Mem.TypeOf(fr) == hw.FrameGhost {
			ghostFrame = fr
			break
		}
	}
	tr, err := vm.TranslateModule(buildPoker())
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	addr, _ := vm.CodeSpace().FuncAddr("ioprobe")
	f, _ := vm.CodeSpace().FuncByAddr(addr)
	env := vm.ModuleEnv(root, nil)
	ip := vir.NewInterp(env)
	// Latch the ghost frame, then try to allow it: the checked port
	// write must fail mid-execution.
	if _, err := ip.Call(f, uint64(hw.IOMMUPortFrame), uint64(ghostFrame)); err != nil {
		t.Fatalf("latching failed: %v", err)
	}
	if _, err := ip.Call(f, uint64(hw.IOMMUPortCmd), hw.IOMMUCmdAllow); err == nil {
		t.Errorf("module exposed a ghost frame to DMA through checked I/O")
	}
	if m.IOMMU.Allowed(ghostFrame) {
		t.Errorf("IOMMU table contains the ghost frame")
	}
}

func TestModuleEnvCodeSpaceResolution(t *testing.T) {
	vm, _ := newVM(t)
	tr, err := vm.TranslateModule(buildPoker())
	if err != nil {
		t.Fatal(err)
	}
	env := vm.ModuleEnv(0, nil)
	addr, ok := env.FuncAddr("poke8")
	if !ok {
		t.Fatal("FuncAddr failed")
	}
	if got, _ := tr.Entry("poke8"); got != addr {
		t.Errorf("env and translation disagree on the entry address")
	}
	if !env.InKernelCode(addr) {
		t.Errorf("module entry outside kernel code")
	}
	if env.InKernelCode(0x1000) {
		t.Errorf("user address reported as kernel code")
	}
}
