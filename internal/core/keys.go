package core

import (
	"crypto/sha256"
	"errors"

	"repro/internal/vgcrypt"
)

// Binary is an application's object file as extended by Virtual Ghost
// (paper §4.4): the program image plus a dedicated section holding the
// application's private key encrypted under the Virtual Ghost machine
// key, the whole signed at install time by a trusted administrator so
// the OS cannot substitute different code for the key.
type Binary struct {
	// Name is the program name.
	Name string
	// Image is the program image (its digest stands in for the code
	// pages of a real executable).
	Image []byte
	// KeySection is the application key sealed under the VM's sealing
	// key.
	KeySection []byte
	// Signature is the installer's signature over Name+Image+KeySection
	// with the Virtual Ghost machine key pair.
	Signature []byte
}

// digest computes the signing payload for a binary.
func (b *Binary) digest() []byte {
	h := sha256.New()
	h.Write([]byte(b.Name))
	h.Write([]byte{0})
	h.Write(b.Image)
	h.Write(b.KeySection)
	sum := h.Sum(nil)
	return sum
}

// ErrBadBinary is returned when a binary's signature or key section
// fails validation: Virtual Ghost "refuses to prepare the native code
// for execution" (paper §4.5), so the program never starts.
var ErrBadBinary = errors.New("core: binary signature or key section invalid; refusing to prepare for execution")

// keyChain is the VM's TPM-rooted key material (paper §4.4):
//
//	TPM storage key ⇒ Virtual Ghost private key ⇒ application keys.
type keyChain struct {
	pair    vgcrypt.KeyPair
	sealKey []byte // symmetric key for key sections and swap
	nonces  *vgcrypt.NonceSource
}

func newKeyChain(tpmStorage [32]byte) *keyChain {
	seedBytes := vgcrypt.DeriveKey(tpmStorage[:], "virtual-ghost-private-key")
	var seed [32]byte
	copy(seed[:], seedBytes)
	sealKey := vgcrypt.DeriveKey(seedBytes, "key-section-seal")
	var salt [4]byte
	copy(salt[:], sealKey[:4])
	return &keyChain{
		pair:    vgcrypt.DeriveKeyPair(seed),
		sealKey: sealKey,
		nonces:  vgcrypt.NewNonceSource(salt),
	}
}

// sealAppKey encrypts an application key for embedding in a binary.
func (kc *keyChain) sealAppKey(appKey []byte) ([]byte, error) {
	return vgcrypt.Seal(kc.sealKey, kc.nonces.Next(), appKey)
}

// openAppKey decrypts a binary's key section.
func (kc *keyChain) openAppKey(section []byte) ([]byte, error) {
	return vgcrypt.Open(kc.sealKey, section)
}

// signBinary signs a binary in place (the trusted-installer path).
func (kc *keyChain) signBinary(b *Binary) {
	b.Signature = kc.pair.Sign(b.digest())
}

// verifyBinary checks a binary's installer signature.
func (kc *keyChain) verifyBinary(b *Binary) bool {
	return vgcrypt.VerifySig(kc.pair.Public, b.digest(), b.Signature)
}

// swapKey derives the key used to seal swapped-out ghost pages.
func (kc *keyChain) swapKey() []byte {
	return vgcrypt.DeriveKey(kc.sealKey, "ghost-swap")
}
