package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/hw"
)

// sortedGhostVAs returns a thread's ghost-mapped virtual addresses in
// ascending order. Teardown and inheritance walk the ghost map per page
// while allocating or returning physical frames, so walking it in map
// order would make frame assignment depend on Go's map randomization —
// invisible to the virtual clock but fatal to bit-identical snapshots.
func sortedGhostVAs(ghost map[hw.Virt]hw.Frame) []hw.Virt {
	vas := make([]hw.Virt, 0, len(ghost))
	for va := range ghost {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	return vas
}

// ErrNoFrameSource is returned when a HAL operation needs frames but the
// kernel has not registered a FrameSource.
var ErrNoFrameSource = errors.New("core: no frame source registered")

// ErrUnknownThread is returned for operations on unregistered threads.
var ErrUnknownThread = errors.New("core: unknown thread")

// threadState is the per-thread state the HAL keeps. Under Virtual
// Ghost this conceptually lives in SVA VM internal memory, out of the
// kernel's reach; natively the equivalents live on kernel stacks and in
// kernel structures where anything can touch them.
type threadState struct {
	id   ThreadID
	root hw.Frame // address-space root, recorded on first use

	// ic is the live interrupt context (most recent trap frame).
	ic *hw.TrapFrame
	// icStack holds contexts saved around signal delivery.
	icStack []*hw.TrapFrame

	// pending is the handler pushed by IPushFunction, consumed by the
	// return-to-user path.
	pendingAddr uint64
	pendingArgs []uint64
	pendingSet  bool

	// permitted is the sva.permitFunction allow-list.
	permitted map[uint64]bool

	// ghost maps ghost-partition page VAs to their frames.
	ghost map[hw.Virt]hw.Frame

	// swapped records a digest for each swapped-out ghost page so that
	// corrupt or replayed swap blobs are rejected.
	swapped map[hw.Virt][32]byte

	// appKey is the application's private key, decrypted from the
	// binary's key section at load time.
	appKey []byte
	// binName is the name of the validated binary, for diagnostics.
	binName string
}

// halCommon carries the state shared by the Virtual Ghost VM and the
// native HAL: the machine, the kernel's registrations, thread states,
// and the code translator.
type halCommon struct {
	m       *hw.Machine
	handler TrapHandler
	frames  FrameSource
	xlator  *compiler.Translator
	threads map[ThreadID]*threadState
	// cur is the scheduled thread per CPU: the HAL state that is
	// per-processor on a real SMP machine (the prototype keeps it in
	// per-CPU SVA internal memory). Indexed by Machine.CurCPU().
	cur []ThreadID
}

func newHALCommon(m *hw.Machine, opts compiler.Options) halCommon {
	xlator := compiler.NewTranslator(opts)
	// Admission verification runs on this machine, so its cost lands on
	// this machine's clock.
	xlator.Clock = m.Clock
	return halCommon{
		m:       m,
		xlator:  xlator,
		threads: make(map[ThreadID]*threadState),
		cur:     make([]ThreadID, m.NumCPUs()),
	}
}

// Machine returns the underlying hardware.
func (h *halCommon) Machine() *hw.Machine { return h.m }

// RegisterTrapHandler installs the kernel's trap entry point.
func (h *halCommon) RegisterTrapHandler(fn TrapHandler) { h.handler = fn }

// RegisterFrameSource installs the kernel's frame allocator.
func (h *halCommon) RegisterFrameSource(src FrameSource) { h.frames = src }

// CodeSpace exposes the machine's kernel code space.
func (h *halCommon) CodeSpace() *compiler.CodeSpace { return h.xlator.Space }

// SetCurrentThread records the scheduled thread on the current CPU.
func (h *halCommon) SetCurrentThread(t ThreadID) { h.cur[h.m.CurCPU()] = t }

// CurrentThread returns the thread scheduled on the current CPU.
func (h *halCommon) CurrentThread() ThreadID { return h.cur[h.m.CurCPU()] }

// currentTID is the internal shorthand for the current CPU's thread.
func (h *halCommon) currentTID() ThreadID { return h.cur[h.m.CurCPU()] }

// thread returns (creating if needed) the state for t.
func (h *halCommon) thread(t ThreadID) *threadState {
	ts, ok := h.threads[t]
	if !ok {
		ts = &threadState{
			id:        t,
			permitted: make(map[uint64]bool),
			ghost:     make(map[hw.Virt]hw.Frame),
			swapped:   make(map[hw.Virt][32]byte),
		}
		h.threads[t] = ts
	}
	return ts
}

// lookup returns the state for t or an error.
func (h *halCommon) lookup(t ThreadID) (*threadState, error) {
	ts, ok := h.threads[t]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownThread, t)
	}
	return ts, nil
}

// getFrame pulls a frame from the kernel's allocator.
func (h *halCommon) getFrame() (hw.Frame, error) {
	if h.frames == nil {
		return 0, ErrNoFrameSource
	}
	return h.frames.GetFrame()
}

// translateIn walks the page tables rooted at root for va, independent
// of the currently loaded CR3 (the kernel frequently operates on
// another process's address space). Supervisor accesses ignore the
// user bit but honour write protection.
func (h *halCommon) translateIn(root hw.Frame, va hw.Virt, acc hw.Access) (hw.Phys, error) {
	// This models a *software* walk: the target address space is
	// usually not the one loaded in CR3, so the hardware TLB cannot
	// serve it and every call pays the full walk cost. The walk cache
	// consulted by CachedLeaf is a host-side structure only; charging
	// is identical whether it hits or misses.
	h.m.Clock.Charge(hw.TagTLB, hw.CostPTWalk)
	e, ok, err := h.m.MMU.CachedLeaf(root, va)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, &hw.Fault{VA: va, Acc: acc, Reason: hw.ErrNotMapped.Error()}
	}
	if acc == hw.AccWrite && !e.Writable() {
		return 0, &hw.Fault{VA: va, Acc: acc, Reason: "write to read-only page"}
	}
	return e.Frame().Addr() + hw.Phys(va&(hw.PageSize-1)), nil
}

// rawMap installs va -> frame in root without any policy checks,
// allocating intermediate page-table pages from the frame source and
// declaring them via declare (which differs between the two HALs).
// It maintains frame mapping reference counts.
func (h *halCommon) rawMap(root hw.Frame, va hw.Virt, f hw.Frame, flags uint64,
	declare func(hw.Frame) error) error {
	table, idx, err := h.m.MMU.EnsureTables(root, va,
		func() (hw.Frame, error) {
			nf, err := h.getFrame()
			if err != nil {
				return 0, err
			}
			if err := declare(nf); err != nil {
				h.frames.PutFrame(nf)
				return 0, err
			}
			return nf, nil
		},
		func(table hw.Frame, idx uint64, e hw.PTE) error {
			return h.m.MMU.RawWritePTE(table, idx, e)
		},
	)
	if err != nil {
		return err
	}
	old, err := h.m.MMU.ReadPTE(table, idx)
	if err != nil {
		return err
	}
	if old.Present() {
		h.m.Mem.DropRef(old.Frame())
	}
	if err := h.m.MMU.RawWritePTE(table, idx, hw.MakePTE(f, flags|hw.PTEPresent)); err != nil {
		return err
	}
	h.m.Mem.AddRef(f)
	h.m.CurMMU().InvalidatePage(va)
	h.m.MMU.InvalidatePageIn(root, va)
	return nil
}

// rawUnmap removes the leaf mapping for va in root, if present.
func (h *halCommon) rawUnmap(root hw.Frame, va hw.Virt) error {
	table, idx, ok, err := h.m.MMU.WalkLeaf(root, va)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	old, err := h.m.MMU.ReadPTE(table, idx)
	if err != nil {
		return err
	}
	if !old.Present() {
		return nil
	}
	if err := h.m.MMU.RawWritePTE(table, idx, 0); err != nil {
		return err
	}
	h.m.Mem.DropRef(old.Frame())
	// invlpg is local to the CPU performing the unmap; flushing other
	// CPUs' TLBs takes the shootdown protocol, which the Virtual Ghost
	// VM runs before a ghost or page-table frame changes owners.
	h.m.CurMMU().InvalidatePage(va)
	h.m.MMU.InvalidatePageIn(root, va)
	return nil
}

// doSyscall is the shared trap choreography: load arguments into the
// register file, take the trap (the HAL-specific trap handler runs the
// kernel), and read back the return value.
func (h *halCommon) doSyscall(num uint64, args [6]uint64) uint64 {
	cpu := h.m.Cur()
	cpu.Regs.GPR[hw.RAX] = num
	cpu.Regs.GPR[hw.RDI] = args[0]
	cpu.Regs.GPR[hw.RSI] = args[1]
	cpu.Regs.GPR[hw.RDX] = args[2]
	cpu.Regs.GPR[hw.RCX] = args[3]
	cpu.Regs.GPR[hw.R8] = args[4]
	cpu.Regs.GPR[hw.R9] = args[5]
	cpu.Regs.Priv = hw.User
	cpu.Trap(hw.TrapSyscall, num)
	return cpu.Regs.GPR[hw.RAX]
}
