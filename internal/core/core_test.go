package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

// testFrames is a FrameSource over a machine's memory.
type testFrames struct{ m *hw.Memory }

func (t testFrames) GetFrame() (hw.Frame, error) { return t.m.AllocFrame(hw.FrameUserData) }
func (t testFrames) PutFrame(f hw.Frame)         { _ = t.m.FreeFrame(f) }

func newVM(t *testing.T) (*VM, *hw.Machine) {
	t.Helper()
	m := hw.NewMachine(hw.MachineConfig{MemFrames: 2048, DiskBlocks: 64, Seed: 1})
	vm, err := NewVM(m)
	if err != nil {
		t.Fatal(err)
	}
	vm.RegisterFrameSource(testFrames{m: m.Mem})
	vm.RegisterTrapHandler(func(ic IContext, kind hw.TrapKind, info uint64) {})
	return vm, m
}

func newNative(t *testing.T) (*NativeHAL, *hw.Machine) {
	t.Helper()
	m := hw.NewMachine(hw.MachineConfig{MemFrames: 2048, DiskBlocks: 64, Seed: 1})
	h, err := NewNativeHAL(m)
	if err != nil {
		t.Fatal(err)
	}
	h.RegisterFrameSource(testFrames{m: m.Mem})
	h.RegisterTrapHandler(func(ic IContext, kind hw.TrapKind, info uint64) {})
	return h, m
}

// --- MMU policy checks ---------------------------------------------------

func TestVMRefusesMappingGhostVA(t *testing.T) {
	vm, _ := newVM(t)
	root, err := vm.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := vm.getFrame()
	err = vm.MapPage(root, hw.GhostBase+0x1000, f, hw.PTEUser|hw.PTEWrite)
	if !errors.Is(err, ErrGhostMapping) {
		t.Errorf("mapping into ghost partition: %v", err)
	}
}

func TestVMRefusesMappingGhostFrame(t *testing.T) {
	vm, _ := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	var ghostFrame hw.Frame
	for f := hw.Frame(1); f < 2048; f++ {
		if vm.m.Mem.TypeOf(f) == hw.FrameGhost {
			ghostFrame = f
			break
		}
	}
	if ghostFrame == 0 {
		t.Fatal("no ghost frame found")
	}
	err := vm.MapPage(root, 0x400000, ghostFrame, hw.PTEWrite)
	if !errors.Is(err, ErrGhostMapping) {
		t.Errorf("mapping a ghost frame: %v", err)
	}
	// And it cannot become a page-table page either.
	if err := vm.DeclarePTP(ghostFrame); !errors.Is(err, ErrBadFrameForPTP) {
		t.Errorf("ghost frame declared as PTP: %v", err)
	}
}

func TestVMRefusesSVAMappings(t *testing.T) {
	vm, _ := newVM(t)
	root, _ := vm.NewAddressSpace()
	f, _ := vm.getFrame()
	if err := vm.MapPage(root, 0xffffff9000001000, f, hw.PTEWrite); !errors.Is(err, ErrSVAMapping) {
		t.Errorf("mapping into SVA internal memory: %v", err)
	}
	var svaFrame hw.Frame
	for fr := hw.Frame(1); fr < 2048; fr++ {
		if vm.m.Mem.TypeOf(fr) == hw.FrameSVA {
			svaFrame = fr
			break
		}
	}
	if svaFrame == 0 {
		t.Fatal("no SVA frame reserved at boot")
	}
	if err := vm.MapPage(root, 0x400000, svaFrame, 0); !errors.Is(err, ErrSVAMapping) {
		t.Errorf("mapping an SVA frame: %v", err)
	}
}

func TestVMRefusesWritablePTP(t *testing.T) {
	vm, _ := newVM(t)
	root, _ := vm.NewAddressSpace()
	err := vm.MapPage(root, 0x400000, root, hw.PTEWrite)
	if !errors.Is(err, ErrPTPMapping) {
		t.Errorf("writable mapping of a page-table page: %v", err)
	}
	// Read-only aliasing of a PTP is permitted (the OS may inspect).
	if err := vm.MapPage(root, 0x400000, root, 0); err != nil {
		t.Errorf("read-only PTP mapping refused: %v", err)
	}
}

func TestVMRefusesUndeclaredRoot(t *testing.T) {
	vm, _ := newVM(t)
	f, _ := vm.getFrame() // still FrameUserData
	if err := vm.LoadAddressSpace(f); err == nil {
		t.Errorf("CR3 load of a non-PTP frame accepted")
	}
}

func TestNativeAllowsEverything(t *testing.T) {
	h, _ := newNative(t)
	root, _ := h.NewAddressSpace()
	if err := h.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	// The native HAL happily maps the "ghost" frame elsewhere.
	var frame hw.Frame
	ts := h.threads[1]
	for _, f := range ts.ghost {
		frame = f
	}
	if err := h.MapPage(root, 0x400000, frame, hw.PTEWrite); err != nil {
		t.Errorf("native remap refused: %v", err)
	}
}

// --- ghost memory ---------------------------------------------------------

func TestGhostAllocZeroesAndMaps(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	// Dirty a frame, free it, and make sure ghost allocation scrubs.
	f, _ := m.Mem.AllocFrame(hw.FrameUserData)
	b, _ := m.Mem.FrameBytes(f)
	copy(b, []byte("stale secrets"))
	_ = m.Mem.FreeFrame(f)
	if err := vm.AllocGhost(1, root, hw.GhostBase, 2); err != nil {
		t.Fatal(err)
	}
	if vm.GhostPages(1) != 2 {
		t.Errorf("ghost pages = %d", vm.GhostPages(1))
	}
	for va := hw.GhostBase; va < hw.GhostBase+2*hw.PageSize; va += hw.PageSize {
		ff := vm.threads[1].ghost[va]
		bb, _ := m.Mem.FrameBytes(ff)
		for _, v := range bb {
			if v != 0 {
				t.Fatalf("ghost page not zeroed")
			}
		}
	}
}

func TestGhostRangeValidation(t *testing.T) {
	vm, _ := newVM(t)
	root, _ := vm.NewAddressSpace()
	cases := []struct {
		va hw.Virt
		n  int
	}{
		{hw.GhostBase + 1, 1},          // misaligned
		{hw.GhostBase, 0},              // zero pages
		{hw.UserBase, 1},               // outside partition
		{hw.GhostTop - hw.PageSize, 2}, // overflows partition
	}
	for _, c := range cases {
		if err := vm.AllocGhost(1, root, c.va, c.n); err == nil {
			t.Errorf("alloc %#x/%d accepted", uint64(c.va), c.n)
		}
	}
}

func TestGhostDoubleAllocRefused(t *testing.T) {
	vm, _ := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err == nil {
		t.Errorf("double allocation accepted")
	}
}

func TestGhostFreeScrubsAndReturns(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	f := vm.threads[1].ghost[hw.GhostBase]
	b, _ := m.Mem.FrameBytes(f)
	copy(b, []byte("ghost data"))
	if err := vm.FreeGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	if m.Mem.TypeOf(f) != hw.FrameFree {
		t.Errorf("frame not returned: %v", m.Mem.TypeOf(f))
	}
	// Contents must be scrubbed before the OS can look.
	bb, _ := m.Mem.FrameBytes(f)
	if bytes.Contains(bb, []byte("ghost")) {
		t.Errorf("freed ghost frame leaked contents")
	}
}

func TestGhostInheritance(t *testing.T) {
	vm, m := newVM(t)
	root1, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root1, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	f := vm.threads[1].ghost[hw.GhostBase]
	b, _ := m.Mem.FrameBytes(f)
	copy(b, []byte("shared"))
	root2, _ := vm.NewAddressSpace()
	if err := vm.InheritGhost(1, 2, root2); err != nil {
		t.Fatal(err)
	}
	if vm.threads[2].ghost[hw.GhostBase] != f {
		t.Errorf("child does not share the parent's frame")
	}
}

// --- swap -------------------------------------------------------------------

func setupGhostPage(t *testing.T, vm *VM) (root hw.Frame, secret []byte) {
	t.Helper()
	root, err := vm.NewAddressSpace()
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	secret = []byte("swap me but never read me")
	f := vm.threads[1].ghost[hw.GhostBase]
	b, _ := vm.m.Mem.FrameBytes(f)
	copy(b, secret)
	return root, secret
}

func TestSwapRoundTrip(t *testing.T) {
	vm, _ := newVM(t)
	_, secret := setupGhostPage(t, vm)
	blob, err := vm.SwapOutGhost(1, hw.GhostBase)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, secret) {
		t.Errorf("swap blob contains plaintext")
	}
	if vm.GhostPages(1) != 0 {
		t.Errorf("page still resident after swap-out")
	}
	if err := vm.SwapInGhost(1, hw.GhostBase, blob); err != nil {
		t.Fatal(err)
	}
	f := vm.threads[1].ghost[hw.GhostBase]
	b, _ := vm.m.Mem.FrameBytes(f)
	if !bytes.HasPrefix(b, secret) {
		t.Errorf("swap-in restored wrong contents")
	}
}

func TestSwapInRejectsCorruption(t *testing.T) {
	vm, _ := newVM(t)
	setupGhostPage(t, vm)
	blob, _ := vm.SwapOutGhost(1, hw.GhostBase)
	blob[10] ^= 0xff
	if err := vm.SwapInGhost(1, hw.GhostBase, blob); !errors.Is(err, ErrSwap) {
		t.Errorf("corrupt blob accepted: %v", err)
	}
}

func TestSwapInRejectsReplay(t *testing.T) {
	vm, _ := newVM(t)
	setupGhostPage(t, vm)
	old, _ := vm.SwapOutGhost(1, hw.GhostBase)
	// Restore and swap out again: the page now has a newer version.
	if err := vm.SwapInGhost(1, hw.GhostBase, old); err != nil {
		t.Fatal(err)
	}
	f := vm.threads[1].ghost[hw.GhostBase]
	b, _ := vm.m.Mem.FrameBytes(f)
	copy(b, []byte("version 2"))
	if _, err := vm.SwapOutGhost(1, hw.GhostBase); err != nil {
		t.Fatal(err)
	}
	// Replaying the stale blob must fail.
	if err := vm.SwapInGhost(1, hw.GhostBase, old); !errors.Is(err, ErrSwap) {
		t.Errorf("replayed stale blob accepted: %v", err)
	}
}

func TestSwapInRejectsWrongAddress(t *testing.T) {
	vm, _ := newVM(t)
	root, _ := setupGhostPage(t, vm)
	if err := vm.AllocGhost(1, root, hw.GhostBase+hw.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	blob, _ := vm.SwapOutGhost(1, hw.GhostBase)
	// Swapping page A's blob in at page B must fail even if the OS
	// forges the bookkeeping by also swapping B out.
	if _, err := vm.SwapOutGhost(1, hw.GhostBase+hw.PageSize); err != nil {
		t.Fatal(err)
	}
	err := vm.SwapInGhost(1, hw.GhostBase+hw.PageSize, blob)
	if !errors.Is(err, ErrSwap) {
		t.Errorf("cross-address swap-in accepted: %v", err)
	}
}

// --- keys & binaries ---------------------------------------------------------

func TestBinaryLifecycle(t *testing.T) {
	vm, _ := newVM(t)
	key := make([]byte, 32)
	key[0] = 0x77
	bin, err := vm.Installer().Install("/bin/app", []byte("code"), key)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.LoadBinary(5, bin); err != nil {
		t.Fatal(err)
	}
	got, err := vm.GetKey(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Errorf("key mismatch")
	}
}

func TestBinaryTamperDetection(t *testing.T) {
	vm, _ := newVM(t)
	key := make([]byte, 32)
	bin, _ := vm.Installer().Install("/bin/app", []byte("code"), key)

	tampered := *bin
	tampered.Image = []byte("evil")
	if err := vm.LoadBinary(5, &tampered); !errors.Is(err, ErrBadBinary) {
		t.Errorf("image tamper accepted: %v", err)
	}
	tampered = *bin
	tampered.KeySection = append([]byte(nil), bin.KeySection...)
	tampered.KeySection[0] ^= 1
	if err := vm.LoadBinary(5, &tampered); !errors.Is(err, ErrBadBinary) {
		t.Errorf("key-section tamper accepted: %v", err)
	}
	tampered = *bin
	tampered.Name = "/bin/other"
	if err := vm.LoadBinary(5, &tampered); !errors.Is(err, ErrBadBinary) {
		t.Errorf("renamed binary accepted: %v", err)
	}
}

func TestGetKeyWithoutBinary(t *testing.T) {
	vm, _ := newVM(t)
	vm.thread(9)
	if _, err := vm.GetKey(9); !errors.Is(err, ErrNoKey) {
		t.Errorf("key without binary: %v", err)
	}
}

func TestKeyChainDeterministicPerTPM(t *testing.T) {
	m1 := hw.NewMachine(hw.MachineConfig{MemFrames: 256, DiskBlocks: 16, Seed: 5})
	m2 := hw.NewMachine(hw.MachineConfig{MemFrames: 256, DiskBlocks: 16, Seed: 5})
	vm1, _ := NewVM(m1)
	vm2, _ := NewVM(m2)
	if !bytes.Equal(vm1.VMPublicKey(), vm2.VMPublicKey()) {
		t.Errorf("same TPM seed produced different machine keys")
	}
	m3 := hw.NewMachine(hw.MachineConfig{MemFrames: 256, DiskBlocks: 16, Seed: 6})
	vm3, _ := NewVM(m3)
	if bytes.Equal(vm1.VMPublicKey(), vm3.VMPublicKey()) {
		t.Errorf("different TPM seeds produced the same machine key")
	}
}

// --- IC operations --------------------------------------------------------------

func TestIPushRefusedWithoutPermit(t *testing.T) {
	vm, _ := newVM(t)
	vm.SetCurrentThread(3)
	var captured IContext
	vm.RegisterTrapHandler(func(ic IContext, kind hw.TrapKind, info uint64) {
		captured = ic
	})
	vm.Syscall(1, [6]uint64{})
	if captured == nil {
		t.Fatal("no trap delivered")
	}
	if err := vm.IPushFunction(captured, 0x1234); !errors.Is(err, ErrNotPermitted) {
		t.Errorf("unregistered handler accepted: %v", err)
	}
	if err := vm.PermitFunction(3, 0x1234); err != nil {
		t.Fatal(err)
	}
	if err := vm.IPushFunction(captured, 0x1234, 7); err != nil {
		t.Errorf("registered handler refused: %v", err)
	}
	addr, args, ok := vm.PoppedHandler(3)
	if !ok || addr != 0x1234 || len(args) != 1 || args[0] != 7 {
		t.Errorf("pending handler = %#x %v %v", addr, args, ok)
	}
	// Consumed.
	if _, _, ok := vm.PoppedHandler(3); ok {
		t.Errorf("handler delivered twice")
	}
}

func TestVGICHidesRawFrame(t *testing.T) {
	vm, _ := newVM(t)
	vm.SetCurrentThread(1)
	var ic IContext
	vm.RegisterTrapHandler(func(i IContext, kind hw.TrapKind, info uint64) { ic = i })
	vm.Syscall(42, [6]uint64{1, 2, 3, 4, 5, 6})
	if _, ok := ic.(RawFramer); ok {
		t.Errorf("Virtual Ghost IC exposes the raw frame")
	}
	if ic.SyscallNum() != 42 || ic.Arg(0) != 1 || ic.Arg(5) != 6 {
		t.Errorf("checked accessors wrong")
	}
	if ic.Arg(6) != 0 || ic.Arg(-1) != 0 {
		t.Errorf("out-of-range args should read 0")
	}
}

func TestNativeICExposesRawFrame(t *testing.T) {
	h, _ := newNative(t)
	h.SetCurrentThread(1)
	var ic IContext
	h.RegisterTrapHandler(func(i IContext, kind hw.TrapKind, info uint64) { i.SetRet(9); ic = i })
	ret := h.Syscall(1, [6]uint64{})
	if ret != 9 {
		t.Errorf("ret = %d", ret)
	}
	if _, ok := ic.(RawFramer); !ok {
		t.Errorf("native IC should expose the raw frame")
	}
}

func TestVGZeroesRegistersOnTrap(t *testing.T) {
	vm, m := newVM(t)
	vm.SetCurrentThread(1)
	leaked := uint64(0)
	vm.RegisterTrapHandler(func(ic IContext, kind hw.TrapKind, info uint64) {
		// A hostile kernel peeks at the live register file looking for
		// interrupted application state.
		leaked = m.CPU.Regs.GPR[hw.R12]
	})
	m.CPU.Regs.GPR[hw.R12] = 0x5ec2e7
	vm.Syscall(1, [6]uint64{})
	if leaked != 0 {
		t.Errorf("callee-saved register leaked into the kernel: %#x", leaked)
	}
}

func TestNativeLeaksRegistersOnTrap(t *testing.T) {
	h, m := newNative(t)
	h.SetCurrentThread(1)
	leaked := uint64(0)
	h.RegisterTrapHandler(func(ic IContext, kind hw.TrapKind, info uint64) {
		leaked = m.CPU.Regs.GPR[hw.R12]
	})
	m.CPU.Regs.GPR[hw.R12] = 0x5ec2e7
	h.Syscall(1, [6]uint64{})
	if leaked != 0x5ec2e7 {
		t.Errorf("native kernel should see interrupted registers, got %#x", leaked)
	}
}

func TestSaveLoadICStack(t *testing.T) {
	vm, _ := newVM(t)
	vm.SetCurrentThread(1)
	var ic IContext
	vm.RegisterTrapHandler(func(i IContext, kind hw.TrapKind, info uint64) { ic = i })
	vm.Syscall(7, [6]uint64{})
	if err := vm.SaveIC(1); err != nil {
		t.Fatal(err)
	}
	ic.SetRet(123) // signal handler runs, mutating state
	if err := vm.LoadIC(1); err != nil {
		t.Fatal(err)
	}
	if vm.threads[1].ic.Regs.GPR[hw.RAX] == 123 {
		t.Errorf("sigreturn did not restore the pre-signal context")
	}
	if err := vm.LoadIC(1); err == nil {
		t.Errorf("empty IC stack pop accepted")
	}
}

// --- kernel memory access & masking ----------------------------------------

func TestKLoadMasksGhost(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	f := vm.threads[1].ghost[hw.GhostBase]
	b, _ := m.Mem.FrameBytes(f)
	copy(b, []byte{0xde, 0xad})
	v, err := vm.KLoad(root, hw.GhostBase, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0xadde {
		t.Errorf("masked kernel load returned ghost data")
	}
	// Writes land in kernel scratch, not the ghost frame.
	if err := vm.KStore(root, hw.GhostBase, 2, 0xffff); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xde || b[1] != 0xad {
		t.Errorf("masked kernel store reached ghost memory")
	}
}

func TestCopyinMasksGhostPointers(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	f := vm.threads[1].ghost[hw.GhostBase]
	b, _ := m.Mem.FrameBytes(f)
	copy(b, []byte("ghost-contents"))
	got, err := vm.Copyin(root, hw.GhostBase, 14)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("ghost-contents")) {
		t.Errorf("copyin read ghost memory")
	}
}

// TestScratchCoherence: masked kernel stores and loads are coherent with
// each other (the direct-map model), property-checked.
func TestScratchCoherence(t *testing.T) {
	vm, _ := newVM(t)
	root, _ := vm.NewAddressSpace()
	fn := func(off uint32, v uint64) bool {
		va := hw.KernBase + hw.Virt(off)
		if err := vm.KStore(root, va, 8, v); err != nil {
			return false
		}
		got, err := vm.KLoad(root, va, 8)
		return err == nil && got == v
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- checked I/O ------------------------------------------------------------

func TestVMRefusesIOMMUExposure(t *testing.T) {
	vm, _ := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	f := vm.threads[1].ghost[hw.GhostBase]
	if err := vm.PortOut(hw.IOMMUPortFrame, uint64(f)); err != nil {
		t.Fatal(err)
	}
	if err := vm.PortOut(hw.IOMMUPortCmd, hw.IOMMUCmdAllow); !errors.Is(err, ErrIOMMUPolicy) {
		t.Errorf("IOMMU exposure of ghost frame: %v", err)
	}
	// Ordinary frames may be exposed.
	uf, _ := vm.getFrame()
	_ = vm.PortOut(hw.IOMMUPortFrame, uint64(uf))
	if err := vm.PortOut(hw.IOMMUPortCmd, hw.IOMMUCmdAllow); err != nil {
		t.Errorf("legitimate DMA setup refused: %v", err)
	}
}

func TestEndThreadScrubsGhost(t *testing.T) {
	vm, m := newVM(t)
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 2); err != nil {
		t.Fatal(err)
	}
	f := vm.threads[1].ghost[hw.GhostBase]
	b, _ := m.Mem.FrameBytes(f)
	copy(b, []byte("residual"))
	vm.EndThread(1)
	if vm.GhostPages(1) != 0 {
		t.Errorf("ghost pages survive thread end")
	}
	bb, _ := m.Mem.FrameBytes(f)
	if bytes.Contains(bb, []byte("residual")) {
		t.Errorf("thread teardown leaked ghost contents")
	}
}

func TestTrustedRandomVaries(t *testing.T) {
	vm, _ := newVM(t)
	a, b := vm.Random(), vm.Random()
	if a == b {
		t.Errorf("trusted random repeated")
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ModeNative, ModeVirtualGhost, ModeShadow} {
		if m.String() == "" || m.String() == "mode?" {
			t.Errorf("bad mode string for %d", int(m))
		}
	}
}

// --- LegacyPrototype fidelity mode -------------------------------------

func TestLegacyPrototypeGaps(t *testing.T) {
	m := hw.NewMachine(hw.MachineConfig{MemFrames: 2048, DiskBlocks: 64, Seed: 1})
	vm, err := NewVMWithOptions(m, VMOptions{LegacyPrototype: true})
	if err != nil {
		t.Fatal(err)
	}
	vm.RegisterFrameSource(testFrames{m: m.Mem})
	vm.RegisterTrapHandler(func(ic IContext, kind hw.TrapKind, info uint64) {})
	root, _ := vm.NewAddressSpace()
	if err := vm.AllocGhost(1, root, hw.GhostBase, 1); err != nil {
		t.Fatal(err)
	}
	// 1. Swap is unimplemented.
	if _, err := vm.SwapOutGhost(1, hw.GhostBase); !errors.Is(err, ErrNotImplementedLegacy) {
		t.Errorf("legacy swap: %v", err)
	}
	// 2. DMA protection is absent: ghost frames can be exposed.
	f := vm.threads[1].ghost[hw.GhostBase]
	_ = vm.PortOut(hw.IOMMUPortFrame, uint64(f))
	if err := vm.PortOut(hw.IOMMUPortCmd, hw.IOMMUCmdAllow); err != nil {
		t.Errorf("legacy IOMMU programming refused: %v", err)
	}
	if !m.IOMMU.Allowed(f) {
		t.Errorf("legacy prototype should allow the DMA exposure")
	}
	// 3. The key chain is hard-coded, not TPM-rooted: two different
	// machines share it.
	m2 := hw.NewMachine(hw.MachineConfig{MemFrames: 2048, DiskBlocks: 64, Seed: 99})
	vm2, _ := NewVMWithOptions(m2, VMOptions{LegacyPrototype: true})
	if !bytes.Equal(vm.VMPublicKey(), vm2.VMPublicKey()) {
		t.Errorf("legacy key should be machine-independent")
	}
	// But the memory protections are all still active.
	uf, _ := vm.getFrame()
	if err := vm.MapPage(root, hw.GhostBase+hw.PageSize, uf, hw.PTEWrite); !errors.Is(err, ErrGhostMapping) {
		t.Errorf("legacy mode lost MMU protection: %v", err)
	}
}
