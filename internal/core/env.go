package core

import (
	"repro/internal/hw"
	"repro/internal/vir"
)

// IntrinsicFunc dispatches host intrinsics (kernel services linked into
// a module) for IR execution.
type IntrinsicFunc func(name string, args []uint64) (uint64, error)

// moduleEnv is the vir.Env for kernel-module execution. Its memory
// operations are *uninstrumented* — the sandboxing lives in the
// translated instruction stream itself (OpMaskGhost), exactly as on
// real hardware where the check is emitted code, not a property of the
// load/store unit. Whether a module's accesses are masked therefore
// depends entirely on whether it was compiled by the Virtual Ghost
// translator.
type moduleEnv struct {
	h          *halCommon
	root       hw.Frame
	intrinsics IntrinsicFunc
	// scratch, when non-nil (Virtual Ghost), backs kernel-space
	// addresses (the direct-map model); natively kernel-space accesses
	// use the same scratch owned by the kernel via its HAL.
	scratch *scratchMem
	// checkedPorts, when non-nil, routes port I/O through the VM's
	// policy checks.
	vm *VM
}

// ModuleEnv returns the execution environment for module code running
// on the Virtual Ghost configuration.
func (vm *VM) ModuleEnv(root hw.Frame, intrinsics IntrinsicFunc) vir.Env {
	return &moduleEnv{h: &vm.halCommon, root: root, intrinsics: intrinsics, scratch: vm.scratch, vm: vm}
}

// ModuleEnv returns the execution environment for module code running
// on the native configuration.
func (h *NativeHAL) ModuleEnv(root hw.Frame, intrinsics IntrinsicFunc) vir.Env {
	if h.scratch == nil {
		h.scratch = newScratchMem()
	}
	return &moduleEnv{h: &h.halCommon, root: root, intrinsics: intrinsics, scratch: h.scratch}
}

func (e *moduleEnv) Clock() *hw.Clock { return e.h.m.Clock }

func (e *moduleEnv) Load(addr hw.Virt, size int) (uint64, error) {
	e.h.m.Clock.Charge(hw.TagMemAccess, hw.CostMemAccess)
	if hw.IsKernel(addr) {
		return e.scratch.load(addr, size), nil
	}
	p, err := e.h.translateIn(e.root, addr, hw.AccRead)
	if err != nil {
		return 0, err
	}
	return e.h.m.Mem.ReadLE(p, size)
}

func (e *moduleEnv) Store(addr hw.Virt, size int, v uint64) error {
	e.h.m.Clock.Charge(hw.TagMemAccess, hw.CostMemAccess)
	if hw.IsKernel(addr) {
		e.scratch.store(addr, size, v)
		return nil
	}
	p, err := e.h.translateIn(e.root, addr, hw.AccWrite)
	if err != nil {
		return err
	}
	return e.h.m.Mem.WriteLE(p, size, v)
}

func (e *moduleEnv) Memcpy(dst, src hw.Virt, n int) error {
	e.h.m.Clock.ChargeBytes(hw.TagMemAccess, n, hw.CostBcopyPerByte)
	for i := 0; i < n; i++ {
		v, err := e.Load(src+hw.Virt(i), 1)
		if err != nil {
			return err
		}
		if err := e.Store(dst+hw.Virt(i), 1, v); err != nil {
			return err
		}
	}
	return nil
}

func (e *moduleEnv) Intrinsic(name string, args []uint64) (uint64, error) {
	if e.intrinsics == nil {
		return 0, nil
	}
	return e.intrinsics(name, args)
}

func (e *moduleEnv) FuncByAddr(addr uint64) (*vir.Function, bool) {
	return e.h.xlator.Space.FuncByAddr(addr)
}

func (e *moduleEnv) FuncAddr(name string) (uint64, bool) {
	return e.h.xlator.Space.FuncAddr(name)
}

func (e *moduleEnv) InKernelCode(addr uint64) bool {
	return e.h.xlator.Space.InKernelCode(addr)
}

// CodeEpoch implements vir.CodeEpochs: the pre-linked engine flushes
// its code cache whenever the code space's bindings change.
func (e *moduleEnv) CodeEpoch() uint64 {
	return e.h.xlator.Space.Epoch()
}

func (e *moduleEnv) PortIn(port uint16) (uint64, error) {
	if e.vm != nil {
		return e.vm.PortIn(port)
	}
	e.h.m.Clock.Charge(hw.TagIO, hw.CostMemAccess)
	return e.h.m.Ports.In(port), nil
}

func (e *moduleEnv) PortOut(port uint16, v uint64) error {
	if e.vm != nil {
		return e.vm.PortOut(port, v)
	}
	e.h.m.Clock.Charge(hw.TagIO, hw.CostMemAccess)
	e.h.m.Ports.Out(port, v)
	return nil
}

var (
	_ vir.Env        = (*moduleEnv)(nil)
	_ vir.CodeEpochs = (*moduleEnv)(nil)
)
