package core

import (
	"errors"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/hw"
	"repro/internal/vgcrypt"
	"repro/internal/vir"
)

// Policy-violation errors raised by the VM's run-time checks.
var (
	// ErrGhostMapping is returned when the OS tries to create or
	// modify a mapping involving ghost memory (paper §4.3.2).
	ErrGhostMapping = errors.New("core: MMU operation would expose ghost memory to the OS")
	// ErrSVAMapping guards the VM's internal memory the same way.
	ErrSVAMapping = errors.New("core: MMU operation would expose SVA VM memory to the OS")
	// ErrPTPMapping prevents mapping a declared page-table page where
	// the OS could write it directly.
	ErrPTPMapping = errors.New("core: MMU operation would make a page-table page writable by the OS")
	// ErrBadFrameForPTP rejects frames that cannot become page tables.
	ErrBadFrameForPTP = errors.New("core: frame unsuitable for page-table use")
	// ErrNotPermitted is returned by sva.ipush.function for handler
	// addresses the application never registered (paper §4.6.1).
	ErrNotPermitted = errors.New("core: function not registered via sva.permitFunction")
	// ErrNoKey is returned by sva.getKey when no validated binary
	// provided a key for the thread.
	ErrNoKey = errors.New("core: no application key loaded for thread")
	// ErrIOMMUPolicy is returned when the OS tries to program the
	// IOMMU to expose protected frames to DMA (paper §4.3.3).
	ErrIOMMUPolicy = errors.New("core: refusing to expose protected frame to DMA")
	// ErrSwap covers invalid ghost swap-in attempts (corruption,
	// replay, wrong address).
	ErrSwap = errors.New("core: ghost swap blob rejected")
	// ErrNoBinary is returned when execve reinitializes a context for
	// a program that was never validated by LoadBinary.
	ErrNoBinary = errors.New("core: no validated program image for thread")
)

// VM is the Virtual Ghost virtual machine: the SVA-OS implementation
// with all run-time checks enabled. It runs at the same privilege as
// the kernel; its own state (thread contexts, keys, ghost tracking) is
// conceptually in SVA internal memory, which the compiler
// instrumentation makes unaddressable from kernel code.
type VM struct {
	halCommon
	keys *keyChain
	// scratch models the kernel direct map that sandbox-masked
	// addresses land in: reads of never-written locations return zero.
	scratch *scratchMem
	// swapNonces provides unique nonces for ghost-page swap sealing.
	swapCounter uint64
	// iommuLatch mirrors the IOMMU's frame latch so port writes can be
	// policy-checked before they reach the device.
	iommuLatch hw.Frame
	// translations caches signed translations by module name.
	translations map[string]*compiler.Translation
	// legacy enables the paper-section-5 prototype fidelity mode.
	legacy bool
}

// NewVM boots a Virtual Ghost VM on the machine: it derives the key
// chain from the TPM, reserves SVA internal frames, points the IST at
// VM memory so trap state is saved out of the kernel's reach, and
// installs the VM's first-level trap handler.
func NewVM(m *hw.Machine) (*VM, error) {
	return NewVMWithOptions(m, VMOptions{})
}

// VMOptions tunes VM construction.
type VMOptions struct {
	// LegacyPrototype reverts to the paper's section-5 prototype
	// fidelity mode: no TPM-rooted key chain (a hard-coded
	// 128-bit-AES-style application key stands in, as the prototype
	// hard-coded one into SVA-OS), no ghost-memory swapping, and no
	// DMA/IOMMU protections. The full implementation (the default)
	// provides all three — see DESIGN.md section 9.
	LegacyPrototype bool
}

// legacyHardCodedKey is the prototype's stand-in key material ("a
// 128-bit AES application key is hard-coded into SVA-OS for our
// experiments", paper section 5).
var legacyHardCodedKey = [32]byte{
	0x13, 0x37, 0xc0, 0xde, 0x13, 0x37, 0xc0, 0xde,
	0x13, 0x37, 0xc0, 0xde, 0x13, 0x37, 0xc0, 0xde,
}

// ErrNotImplementedLegacy marks features absent from the prototype.
var ErrNotImplementedLegacy = errors.New("core: not implemented in the legacy prototype configuration (paper section 5)")

// NewVMWithOptions boots a VM with explicit options.
func NewVMWithOptions(m *hw.Machine, opts VMOptions) (*VM, error) {
	seed := m.TPM.StorageKey()
	if opts.LegacyPrototype {
		seed = legacyHardCodedKey
	}
	vm := &VM{
		halCommon:    newHALCommon(m, compiler.VirtualGhostOptions()),
		keys:         newKeyChain(seed),
		legacy:       opts.LegacyPrototype,
		scratch:      newScratchMem(),
		translations: make(map[string]*compiler.Translation),
	}
	// Reserve frames for VM internal memory so the frame-type ground
	// truth reflects the SVA region (MMU checks key off FrameSVA).
	for i := 0; i < 16; i++ {
		f, err := m.Mem.AllocFrame(hw.FrameSVA)
		if err != nil {
			return nil, fmt.Errorf("core: reserving SVA frames: %w", err)
		}
		if i == 0 {
			// The first internal frame holds the VM's identity block:
			// its public key staging area. Deterministic (derived from
			// the TPM), non-zero, and — like all SVA/ghost frames —
			// carried sealed in snapshot images, never plaintext.
			b, err := m.Mem.FrameBytes(f)
			if err != nil {
				return nil, err
			}
			n := copy(b, "SVA-VM-IDENT\x00")
			copy(b[n:], vm.keys.pair.Public)
		}
	}
	// The Interrupt Stack Table forces trap state onto a VM-internal
	// stack regardless of privilege change (paper §5). Each CPU gets
	// its own interrupt-context stack inside SVA memory so concurrent
	// traps on different processors never share a save area.
	for i, c := range m.CPUs {
		c.ISTTarget = uint64(vir.SVAInternalBase) + 0x8000 + uint64(i)*0x2000
		c.SetTrapHandler(vm.onTrap)
	}
	return vm, nil
}

// Mode identifies this HAL as the Virtual Ghost configuration.
func (vm *VM) Mode() Mode { return ModeVirtualGhost }

// onTrap is the VM's first-level trap handler: it moves the Interrupt
// Context into VM internal memory, zeroes the general-purpose registers
// (keeping syscall arguments for syscalls), and only then calls the
// kernel — so the OS never sees interrupted application state
// (paper §4.6).
func (vm *VM) onTrap(tf *hw.TrapFrame) {
	clk := vm.m.Clock
	clk.Charge(hw.TagICSave, hw.CostICSave)
	tid := vm.currentTID()
	ts := vm.thread(tid)
	saved := cloneFrame(tf) // the copy in VM internal memory
	ts.ic = saved
	clk.Charge(hw.TagICSave, hw.CostICZero)
	vm.m.Cur().Regs.Zero(tf.Kind == hw.TrapSyscall)
	if vm.handler == nil {
		panic("core: trap with no kernel handler registered")
	}
	ic := &vgIC{baseIC{tf: saved, tid: tid}}
	vm.handler(ic, tf.Kind, tf.Info)
	// Return to the interrupted program from the protected copy.
	vm.m.Cur().ReturnFromTrap(saved)
}

// Syscall enters the kernel from user mode.
func (vm *VM) Syscall(num uint64, args [6]uint64) uint64 {
	return vm.doSyscall(num, args)
}

// Trap raises a non-syscall trap (page fault, timer) for the current
// thread.
func (vm *VM) Trap(kind hw.TrapKind, info uint64) {
	vm.m.Cur().Trap(kind, info)
}

// TranslateModule compiles OS code through the full Virtual Ghost
// pipeline: verification, inline-assembly rejection, sandboxing, CFI,
// signing.
func (vm *VM) TranslateModule(m *vir.Module) (*compiler.Translation, error) {
	tr, err := vm.xlator.Translate(m)
	if err != nil {
		return nil, err
	}
	vm.translations[m.Name] = tr
	return tr, nil
}

// --- MMU operations -------------------------------------------------

// DeclarePTP validates and takes ownership of a kernel-provided frame
// for page-table use: the frame must not be mapped anywhere and must
// not be a protected frame; it is zeroed before use.
func (vm *VM) DeclarePTP(f hw.Frame) error {
	vm.m.Clock.Charge(hw.TagMMUCheck, hw.CostMMUCheckPerPage)
	switch vm.m.Mem.TypeOf(f) {
	case hw.FrameGhost, hw.FrameSVA, hw.FrameIO, hw.FrameCode:
		return fmt.Errorf("%w: frame %d is %v", ErrBadFrameForPTP, f, vm.m.Mem.TypeOf(f))
	}
	if vm.m.Mem.Refs(f) != 0 {
		return fmt.Errorf("%w: frame %d still has %d mappings", ErrBadFrameForPTP, f, vm.m.Mem.Refs(f))
	}
	if err := vm.m.Mem.ZeroFrame(f); err != nil {
		return err
	}
	// Before the frame becomes a page-table page, flush any stale
	// translation to it from every remote TLB (SVA-OS shootdown
	// protocol); the Memory layer refuses the retype otherwise.
	vm.m.ShootdownFrame(f)
	return vm.m.Mem.SetType(f, hw.FramePageTable)
}

// NewAddressSpace allocates a root page-table frame from the OS and
// declares it.
func (vm *VM) NewAddressSpace() (hw.Frame, error) {
	f, err := vm.getFrame()
	if err != nil {
		return 0, err
	}
	if err := vm.DeclarePTP(f); err != nil {
		vm.frames.PutFrame(f)
		return 0, err
	}
	return f, nil
}

// checkMapPolicy enforces the Virtual Ghost mapping constraints
// (paper §4.3.2): the OS may not map anything into the ghost partition
// or the SVA region, may not map ghost/SVA/IO frames anywhere, and may
// not create writable mappings of page-table pages or code frames.
func (vm *VM) checkMapPolicy(va hw.Virt, f hw.Frame, flags uint64) error {
	vm.m.Clock.Charge(hw.TagMMUCheck, hw.CostMMUCheckPerPage)
	if hw.IsGhost(va) {
		return fmt.Errorf("%w: va %#x is in the ghost partition", ErrGhostMapping, uint64(va))
	}
	if va >= vir.SVAInternalBase && va < vir.SVAInternalTop {
		return fmt.Errorf("%w: va %#x is in SVA internal memory", ErrSVAMapping, uint64(va))
	}
	switch vm.m.Mem.TypeOf(f) {
	case hw.FrameGhost:
		return fmt.Errorf("%w: frame %d holds ghost memory", ErrGhostMapping, f)
	case hw.FrameSVA:
		return fmt.Errorf("%w: frame %d holds SVA VM memory", ErrSVAMapping, f)
	case hw.FrameIO:
		return fmt.Errorf("%w: frame %d is memory-mapped I/O", ErrSVAMapping, f)
	case hw.FramePageTable:
		if flags&hw.PTEWrite != 0 {
			return fmt.Errorf("%w: frame %d", ErrPTPMapping, f)
		}
	case hw.FrameCode:
		if flags&hw.PTEWrite != 0 {
			return fmt.Errorf("%w: code frame %d may not be mapped writable", ErrPTPMapping, f)
		}
	}
	return nil
}

// MapPage installs a checked mapping.
func (vm *VM) MapPage(root hw.Frame, va hw.Virt, f hw.Frame, flags uint64) error {
	if err := vm.checkMapPolicy(va, f, flags); err != nil {
		return err
	}
	return vm.rawMap(root, va, f, flags, vm.DeclarePTP)
}

// UnmapPage removes a mapping. Removing mappings never exposes ghost
// memory, but unmapping inside the ghost partition is still refused —
// only the VM manages those entries.
func (vm *VM) UnmapPage(root hw.Frame, va hw.Virt) error {
	vm.m.Clock.Charge(hw.TagMMUCheck, hw.CostMMUCheckPerPage)
	if hw.IsGhost(va) {
		return fmt.Errorf("%w: unmap of %#x", ErrGhostMapping, uint64(va))
	}
	return vm.rawUnmap(root, va)
}

// LoadAddressSpace loads CR3 after checking the root is a declared
// page-table page.
func (vm *VM) LoadAddressSpace(root hw.Frame) error {
	if vm.m.Mem.TypeOf(root) != hw.FramePageTable {
		return fmt.Errorf("%w: CR3 load of non-page-table frame %d", ErrBadFrameForPTP, root)
	}
	vm.m.CurMMU().SetRoot(root)
	if ts, ok := vm.threads[vm.currentTID()]; ok {
		ts.root = root
	}
	return nil
}

// --- costs ------------------------------------------------------------

// KAccess charges n instrumented kernel memory accesses: the base
// access plus the sandboxing mask sequence the compiled kernel executes
// before every load and store. The base access and the mask land in
// separate ledger buckets (so breakdowns can show what the sandbox adds
// over native); splitting a sum across two Charge calls is exact, so the
// total is bit-identical to the old combined Advance.
func (vm *VM) KAccess(n int) {
	vm.m.Clock.Charge(hw.TagMemAccess, uint64(n)*hw.CostMemAccess)
	vm.m.Clock.Charge(hw.TagSandbox, uint64(n)*hw.CostMaskCheck)
}

// OnIndirectCall charges n indirect-call/return sites including their
// CFI checks and landing pads. The base call cost is engine work; the
// check + label are the CFI instrumentation's share.
func (vm *VM) OnIndirectCall(n int) {
	vm.m.Clock.Charge(hw.TagEngine, uint64(n)*hw.CostCall)
	vm.m.Clock.Charge(hw.TagCFI, uint64(n)*(hw.CostCFICheck+hw.CostCFILabel))
}

// BlockCopyCost charges the instrumentation overhead of one kernel
// memcpy: a mask per operand (the bulk per-byte cost is charged by the
// copy implementation itself).
func (vm *VM) BlockCopyCost(n int) {
	vm.m.Clock.Charge(hw.TagSandbox, 2*hw.CostMaskCheck)
	vm.m.Clock.ChargeBytes(hw.TagMemAccess, n, hw.CostBcopyPerByte)
}

// --- kernel memory access (the compiled kernel's loads/stores) -------

// maskVA applies the sandboxing mask and its cost, exactly as the
// instrumented load/store sequences do.
func (vm *VM) maskVA(va hw.Virt) hw.Virt {
	vm.m.Clock.Charge(hw.TagSandbox, hw.CostMaskCheck)
	return hw.Virt(vir.MaskAddress(uint64(va)))
}

// KLoad performs an instrumented kernel load. Ghost-partition addresses
// are masked into kernel space, where the load reads whatever the
// kernel direct map holds there — never the ghost data (the first
// rootkit attack "simply reads unknown data out of its own address
// space", paper §7).
func (vm *VM) KLoad(root hw.Frame, va hw.Virt, size int) (uint64, error) {
	vm.m.Clock.Charge(hw.TagMemAccess, hw.CostMemAccess)
	va = vm.maskVA(va)
	if hw.IsKernel(va) {
		return vm.scratchLoad(va, size), nil
	}
	p, err := vm.translateIn(root, va, hw.AccRead)
	if err != nil {
		return 0, err
	}
	return vm.m.Mem.ReadLE(p, size)
}

// KStore performs an instrumented kernel store.
func (vm *VM) KStore(root hw.Frame, va hw.Virt, size int, v uint64) error {
	vm.m.Clock.Charge(hw.TagMemAccess, hw.CostMemAccess)
	va = vm.maskVA(va)
	if hw.IsKernel(va) {
		vm.scratchStore(va, size, v)
		return nil
	}
	p, err := vm.translateIn(root, va, hw.AccWrite)
	if err != nil {
		return err
	}
	return vm.m.Mem.WriteLE(p, size, v)
}

// Copyin copies n bytes from user space into the kernel (instrumented
// memcpy: one mask on the source pointer, block-copy cost).
func (vm *VM) Copyin(root hw.Frame, va hw.Virt, n int) ([]byte, error) {
	vm.BlockCopyCost(n)
	va = hw.Virt(vir.MaskAddress(uint64(va)))
	out := make([]byte, n)
	pos := 0
	for n > 0 {
		if hw.IsKernel(va) {
			chunk := min(n, hw.PageSize)
			vm.scratch.read(va, out[pos:pos+chunk])
			pos += chunk
			va += hw.Virt(chunk)
			n -= chunk
			continue
		}
		chunk := min(n, int(hw.PageSize-(va&(hw.PageSize-1))))
		p, err := vm.translateIn(root, va, hw.AccRead)
		if err != nil {
			return nil, err
		}
		if err := vm.m.Mem.ReadPhysInto(p, out[pos:pos+chunk]); err != nil {
			return nil, err
		}
		pos += chunk
		va += hw.Virt(chunk)
		n -= chunk
	}
	return out, nil
}

// Copyout copies kernel bytes to user space (instrumented memcpy).
func (vm *VM) Copyout(root hw.Frame, va hw.Virt, b []byte) error {
	vm.BlockCopyCost(len(b))
	va = hw.Virt(vir.MaskAddress(uint64(va)))
	for len(b) > 0 {
		if hw.IsKernel(va) {
			chunk := min(len(b), hw.PageSize)
			vm.scratch.write(va, b[:chunk])
			va += hw.Virt(chunk)
			b = b[chunk:]
			continue
		}
		chunk := min(len(b), int(hw.PageSize-(va&(hw.PageSize-1))))
		p, err := vm.translateIn(root, va, hw.AccWrite)
		if err != nil {
			return err
		}
		if err := vm.m.Mem.WritePhys(p, b[:chunk]); err != nil {
			return err
		}
		va += hw.Virt(chunk)
		b = b[chunk:]
	}
	return nil
}

func (vm *VM) scratchLoad(va hw.Virt, size int) uint64 {
	return vm.scratch.load(va, size)
}

func (vm *VM) scratchStore(va hw.Virt, size int, v uint64) {
	vm.scratch.store(va, size, v)
}

// --- checked I/O ------------------------------------------------------

// PortIn reads an I/O port through the VM's checked instruction.
func (vm *VM) PortIn(port uint16) (uint64, error) {
	vm.m.Clock.Charge(hw.TagIO, hw.CostMemAccess)
	return vm.m.Ports.In(port), nil
}

// PortOut writes an I/O port, refusing IOMMU programming that would
// expose ghost, SVA, or page-table frames to device DMA.
func (vm *VM) PortOut(port uint16, v uint64) error {
	vm.m.Clock.Charge(hw.TagIO, hw.CostMemAccess)
	if vm.legacy {
		// The prototype had not yet implemented the DMA protections
		// (paper section 5); IOMMU programming passes through
		// unchecked.
		vm.m.Ports.Out(port, v)
		return nil
	}
	switch port {
	case hw.IOMMUPortFrame:
		vm.iommuLatch = hw.Frame(v)
	case hw.IOMMUPortCmd:
		if v == hw.IOMMUCmdAllow {
			switch vm.m.Mem.TypeOf(vm.iommuLatch) {
			case hw.FrameGhost, hw.FrameSVA, hw.FramePageTable:
				return fmt.Errorf("%w: frame %d is %v", ErrIOMMUPolicy,
					vm.iommuLatch, vm.m.Mem.TypeOf(vm.iommuLatch))
			}
		}
	}
	vm.m.Ports.Out(port, v)
	return nil
}

// Random returns trusted randomness from the VM's built-in generator
// (paper §4.7: defeats Iago attacks that feed applications non-random
// numbers).
func (vm *VM) Random() uint64 {
	vm.m.Clock.Charge(hw.TagMemAccess, hw.CostMemAccess)
	return vm.m.RNG.Next()
}

// --- key management ---------------------------------------------------

// Installer returns the trusted-administrator interface for preparing
// signed binaries on this machine (paper §4.4/§4.5: binaries are signed
// when installed by a trusted administrator, e.g. in single-user mode).
func (vm *VM) Installer() *Installer { return &Installer{keys: vm.keys} }

// LoadBinary validates a binary's installer signature, decrypts the key
// section into VM memory, and binds it to the thread. Tampered binaries
// are refused, preventing startup (security guarantee 4, paper §3.4).
func (vm *VM) LoadBinary(t ThreadID, bin *Binary) error {
	vm.m.Clock.Charge(hw.TagCrypt, hw.CostPageHash)
	if !vm.keys.verifyBinary(bin) {
		return ErrBadBinary
	}
	key, err := vm.keys.openAppKey(bin.KeySection)
	if err != nil {
		return ErrBadBinary
	}
	ts := vm.thread(t)
	ts.appKey = key
	ts.binName = bin.Name
	return nil
}

// GetKey returns the application key (sva.getKey). The application
// stores it in ghost memory; the OS has no path to it.
func (vm *VM) GetKey(t ThreadID) ([]byte, error) {
	ts, err := vm.lookup(t)
	if err != nil {
		return nil, err
	}
	if ts.appKey == nil {
		return nil, ErrNoKey
	}
	out := make([]byte, len(ts.appKey))
	copy(out, ts.appKey)
	return out, nil
}

// VMPublicKey returns the machine's Virtual Ghost public key.
func (vm *VM) VMPublicKey() []byte {
	return append([]byte(nil), vm.keys.pair.Public...)
}

// Installer signs binaries with the machine's Virtual Ghost key pair.
// It models the trusted installation path (software distributor or
// administrator on trusted media); the hostile OS never holds it.
type Installer struct {
	keys *keyChain
}

// Install builds and signs a binary embedding the given application
// key.
func (ins *Installer) Install(name string, image []byte, appKey []byte) (*Binary, error) {
	if len(appKey) != vgcrypt.KeySize {
		return nil, fmt.Errorf("core: application key must be %d bytes", vgcrypt.KeySize)
	}
	section, err := ins.keys.sealAppKey(appKey)
	if err != nil {
		return nil, err
	}
	b := &Binary{Name: name, Image: append([]byte(nil), image...), KeySection: section}
	ins.keys.signBinary(b)
	return b, nil
}

var _ HAL = (*VM)(nil)

// OnVMRegion charges nothing: Virtual Ghost validates mappings when
// they are installed (MapPage/AllocGhost), not at region granularity.
func (vm *VM) OnVMRegion(npages int) {}
