package core

import (
	"fmt"

	"repro/internal/hw"
)

// This file implements the VM's Interrupt Context and thread-state
// operations (paper §4.6): sva.newstate, sva.reinit.icontext,
// sva.permitFunction, sva.ipush.function, sva.icontext.save/load.

// NewState creates the state for a new thread (fork): the child's
// Interrupt Context is a clone of the parent's, held in VM internal
// memory. The kernel then sets the child's return value (0) through the
// checked IContext interface; nothing else about the context is under
// OS control.
func (vm *VM) NewState(parent IContext, child ThreadID) (IContext, error) {
	p, ok := parent.(*vgIC)
	if !ok {
		return nil, fmt.Errorf("core: NewState requires a Virtual Ghost interrupt context")
	}
	vm.m.Clock.Charge(hw.TagICSave, hw.CostICSave)
	cts := vm.thread(child)
	cts.ic = cloneFrame(p.tf)
	return &vgIC{baseIC{tf: cts.ic, tid: child}}, nil
}

// ReinitIContext reinitializes a context for a freshly loaded program
// image (execve): the program counter and stack are reset and the
// privilege forced to user. The VM requires that a validated binary was
// loaded for the thread (paper §4.6.2: the program counter must point
// to the entry of a program previously copied into VM memory), and it
// unmaps any ghost memory of the previous image so the new program
// cannot read it.
func (vm *VM) ReinitIContext(ic IContext, entry uint64, stackTop uint64) error {
	c, ok := ic.(*vgIC)
	if !ok {
		return fmt.Errorf("core: ReinitIContext requires a Virtual Ghost interrupt context")
	}
	ts, err := vm.lookup(c.tid)
	if err != nil {
		return err
	}
	if ts.binName == "" {
		return ErrNoBinary
	}
	vm.m.Clock.Charge(hw.TagICSave, hw.CostICSave)
	// Drop the previous image's ghost memory.
	for va, f := range ts.ghost {
		if err := vm.releaseGhostPage(ts, ts.root, va, f); err != nil {
			return err
		}
	}
	// Registered handler entries belong to the old image too.
	ts.permitted = make(map[uint64]bool)
	ts.pendingSet = false
	c.tf.Regs = hw.RegFile{RIP: entry, RSP: stackTop, Priv: hw.User}
	return nil
}

// PermitFunction registers a legal signal-handler entry point for the
// thread's process (sva.permitFunction). The libc signal()/sigaction()
// wrappers call this from the application's own context before asking
// the kernel to install the handler.
func (vm *VM) PermitFunction(t ThreadID, addr uint64) error {
	ts := vm.thread(t)
	ts.permitted[addr] = true
	vm.m.Clock.Charge(hw.TagMemAccess, hw.CostMemAccess)
	return nil
}

// IPushFunction modifies an Interrupt Context so that the interrupted
// program executes the function at addr when resumed
// (sva.ipush.function). It refuses any target the application did not
// register — this is the check that defeats the signal-handler
// code-injection attack of paper §7.
func (vm *VM) IPushFunction(ic IContext, addr uint64, args ...uint64) error {
	c, ok := ic.(*vgIC)
	if !ok {
		return fmt.Errorf("core: IPushFunction requires a Virtual Ghost interrupt context")
	}
	ts, err := vm.lookup(c.tid)
	if err != nil {
		return err
	}
	vm.m.Clock.Charge(hw.TagICSave, hw.CostICSave/2)
	if !ts.permitted[addr] {
		return fmt.Errorf("%w: %#x", ErrNotPermitted, addr)
	}
	ts.pendingAddr = addr
	ts.pendingArgs = append([]uint64(nil), args...)
	ts.pendingSet = true
	// The VM adds the handler frame to the application stack on the
	// OS's behalf; it only pushes, never reads or overwrites live data
	// (paper §4.6.1).
	c.tf.Regs.RSP -= 128
	return nil
}

// PoppedHandler consumes the pending pushed handler for the thread, if
// any. The user-mode resume path calls this to learn it must run a
// signal handler.
func (vm *VM) PoppedHandler(t ThreadID) (uint64, []uint64, bool) {
	ts, ok := vm.threads[t]
	if !ok || !ts.pendingSet {
		return 0, nil, false
	}
	ts.pendingSet = false
	return ts.pendingAddr, ts.pendingArgs, true
}

// SaveIC pushes a copy of the thread's Interrupt Context onto its
// VM-internal stack before signal delivery (sva.icontext.save). The OS
// cannot modify the saved copy, so sigreturn always restores the true
// pre-signal state.
func (vm *VM) SaveIC(t ThreadID) error {
	ts, err := vm.lookup(t)
	if err != nil {
		return err
	}
	if ts.ic == nil {
		return fmt.Errorf("core: thread %d has no interrupt context to save", t)
	}
	vm.m.Clock.Charge(hw.TagICSave, hw.CostICSave)
	ts.icStack = append(ts.icStack, cloneFrame(ts.ic))
	return nil
}

// LoadIC pops the most recently saved context back into place after
// signal handling (sva.icontext.load, the sigreturn path).
func (vm *VM) LoadIC(t ThreadID) error {
	ts, err := vm.lookup(t)
	if err != nil {
		return err
	}
	if len(ts.icStack) == 0 {
		return fmt.Errorf("core: thread %d has no saved interrupt context", t)
	}
	vm.m.Clock.Charge(hw.TagICSave, hw.CostICSave)
	top := ts.icStack[len(ts.icStack)-1]
	ts.icStack = ts.icStack[:len(ts.icStack)-1]
	*ts.ic = *top
	return nil
}

// EndThread releases all VM state for an exiting thread, scrubbing and
// returning its ghost frames.
func (vm *VM) EndThread(t ThreadID) {
	ts, ok := vm.threads[t]
	if !ok {
		return
	}
	for _, va := range sortedGhostVAs(ts.ghost) {
		// Best effort: scrubbing failure cannot block process exit.
		_ = vm.releaseGhostPage(ts, ts.root, va, ts.ghost[va])
	}
	delete(vm.threads, t)
}
