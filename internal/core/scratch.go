package core

import "repro/internal/hw"

// scratchMem models the kernel direct map that sandbox-masked addresses
// land in: reads of never-written locations return zero. Backing is
// page-granular so bulk operations (Copyin/Copyout, Memcpy) are single
// copies rather than one map probe per byte.
type scratchMem struct {
	pages map[hw.Virt]*[hw.PageSize]byte
}

func newScratchMem() *scratchMem {
	return &scratchMem{pages: make(map[hw.Virt]*[hw.PageSize]byte)}
}

// page returns the backing page containing va, or nil if untouched.
func (s *scratchMem) page(va hw.Virt) *[hw.PageSize]byte {
	return s.pages[hw.PageOf(va)]
}

// ensure returns the backing page containing va, allocating on first
// write.
func (s *scratchMem) ensure(va hw.Virt) *[hw.PageSize]byte {
	base := hw.PageOf(va)
	pg := s.pages[base]
	if pg == nil {
		pg = new([hw.PageSize]byte)
		s.pages[base] = pg
	}
	return pg
}

// load reads a little-endian scalar of size bytes (1..8) at va.
func (s *scratchMem) load(va hw.Virt, size int) uint64 {
	off := int(va & (hw.PageSize - 1))
	if off+size <= hw.PageSize {
		pg := s.page(va)
		if pg == nil {
			return 0
		}
		var v uint64
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(pg[off+i])
		}
		return v
	}
	var buf [8]byte
	s.read(va, buf[:size])
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}

// store writes a little-endian scalar of size bytes (1..8) at va.
func (s *scratchMem) store(va hw.Virt, size int, v uint64) {
	off := int(va & (hw.PageSize - 1))
	if off+size <= hw.PageSize {
		pg := s.ensure(va)
		for i := 0; i < size; i++ {
			pg[off+i] = byte(v >> (8 * i))
		}
		return
	}
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	s.write(va, buf[:size])
}

// read bulk-copies len(dst) bytes starting at va into dst, zero-filling
// ranges that were never written.
func (s *scratchMem) read(va hw.Virt, dst []byte) {
	for len(dst) > 0 {
		off := int(va & (hw.PageSize - 1))
		n := min(len(dst), hw.PageSize-off)
		if pg := s.page(va); pg != nil {
			copy(dst[:n], pg[off:off+n])
		} else {
			clear(dst[:n])
		}
		va += hw.Virt(n)
		dst = dst[n:]
	}
}

// write bulk-copies src into the scratch map starting at va.
func (s *scratchMem) write(va hw.Virt, src []byte) {
	for len(src) > 0 {
		off := int(va & (hw.PageSize - 1))
		n := min(len(src), hw.PageSize-off)
		copy(s.ensure(va)[off:], src[:n])
		va += hw.Virt(n)
		src = src[n:]
	}
}
