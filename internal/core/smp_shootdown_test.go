package core

import (
	"strings"
	"testing"

	"repro/internal/hw"
)

// newSMPVM boots a VirtualGhost VM on an n-CPU machine.
func newSMPVM(t *testing.T, n int) (*VM, *hw.Machine) {
	t.Helper()
	m := hw.NewMachine(hw.MachineConfig{MemFrames: 2048, DiskBlocks: 64, Seed: 1, NumCPUs: n})
	vm, err := NewVM(m)
	if err != nil {
		t.Fatal(err)
	}
	vm.RegisterFrameSource(testFrames{m: m.Mem})
	vm.RegisterTrapHandler(func(ic IContext, kind hw.TrapKind, info uint64) {})
	return vm, m
}

// TestGhostFrameFreeBlockedByRemoteTLB: after a remote CPU caches a
// translation to a ghost frame, freeing or retyping the frame must be
// refused until a shootdown flushes the stale entry.
func TestGhostFrameFreeBlockedByRemoteTLB(t *testing.T) {
	vm, m := newSMPVM(t, 2)
	root, _ := vm.NewAddressSpace()
	va := hw.GhostBase + 0x3000
	if err := vm.AllocGhost(1, root, va, 1); err != nil {
		t.Fatalf("AllocGhost: %v", err)
	}
	f := vm.threads[1].ghost[va]

	// CPU 1 touches the ghost page: its TLB caches va -> f. (The ghost
	// PTE carries PTEUser, so a user-mode access on the remote CPU
	// works — this is the victim's own thread running there.)
	remote := m.CPUs[1].MMU
	remote.SetRoot(root)
	if _, err := remote.Translate(va, hw.AccRead, true); err != nil {
		t.Fatalf("remote translate: %v", err)
	}
	if !remote.HoldsFrame(f) {
		t.Fatalf("remote TLB did not cache frame %d", f)
	}

	// The mapping is torn down with only a local invlpg — the stale
	// remote entry survives, and the hardware-level guard must refuse
	// to let the frame change hands.
	if err := vm.rawUnmap(root, va); err != nil {
		t.Fatalf("rawUnmap: %v", err)
	}
	if err := m.Mem.FreeFrame(f); err == nil {
		t.Fatalf("FreeFrame of ghost frame succeeded with a stale remote translation")
	} else if !strings.Contains(err.Error(), "cpu1") {
		t.Errorf("FreeFrame error should name the stale CPU: %v", err)
	}
	if err := m.Mem.SetType(f, hw.FrameUserData); err == nil {
		t.Fatalf("retype of ghost frame succeeded with a stale remote translation")
	}

	// After the shootdown protocol runs, release proceeds.
	if acks := m.ShootdownFrame(f); acks != 1 {
		t.Fatalf("ShootdownFrame acks = %d, want 1", acks)
	}
	if remote.HoldsFrame(f) {
		t.Errorf("shootdown left the stale entry in place")
	}
	if err := m.Mem.SetType(f, hw.FrameUserData); err != nil {
		t.Fatalf("retype after shootdown: %v", err)
	}
	if err := m.Mem.FreeFrame(f); err != nil {
		t.Fatalf("free after shootdown: %v", err)
	}
}

// TestFreeGhostRunsShootdown: the ordinary freegm path must leave no
// remote CPU holding a translation to the released frame.
func TestFreeGhostRunsShootdown(t *testing.T) {
	vm, m := newSMPVM(t, 4)
	root, _ := vm.NewAddressSpace()
	va := hw.GhostBase + 0x5000
	if err := vm.AllocGhost(1, root, va, 1); err != nil {
		t.Fatalf("AllocGhost: %v", err)
	}
	f := vm.threads[1].ghost[va]
	for _, c := range m.CPUs[1:] {
		c.MMU.SetRoot(root)
		if _, err := c.MMU.Translate(va, hw.AccRead, true); err != nil {
			t.Fatalf("cpu%d translate: %v", c.ID, err)
		}
	}
	_, _, before := m.IPICounts()
	if err := vm.FreeGhost(1, root, va, 1); err != nil {
		t.Fatalf("FreeGhost: %v", err)
	}
	for _, c := range m.CPUs {
		if c.MMU.HoldsFrame(f) {
			t.Errorf("cpu%d still translates to released ghost frame %d", c.ID, f)
		}
	}
	if _, _, after := m.IPICounts(); after == before {
		t.Errorf("FreeGhost released a remotely-cached ghost frame without a shootdown")
	}
}
