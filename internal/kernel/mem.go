package kernel

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
)

// sortedPageVAs returns the mapped virtual addresses in ascending
// order. Paths that allocate or free physical frames per page must walk
// the page map in this order, not Go's randomized map order: the frame
// allocator hands out and reclaims frames in call order, so iteration
// order becomes physical frame assignment, and snapshot images are
// bit-for-bit comparisons of that state.
func sortedPageVAs(pages map[hw.Virt]hw.Frame) []hw.Virt {
	vas := make([]hw.Virt, 0, len(pages))
	for va := range pages {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	return vas
}

// This file is the kernel's virtual-memory subsystem: demand paging for
// heap/stack/anonymous/file mappings, the page-fault handler, fork-time
// address-space duplication, mmap/munmap, ghost swap-in, and teardown.

// findVMA locates the region containing va.
func (p *Proc) findVMA(va hw.Virt) *VMA {
	for _, v := range p.vmas {
		if v.contains(va) {
			return v
		}
	}
	return nil
}

// mapUserPage materializes one user page (allocating and zeroing a
// frame) and records it.
func (k *Kernel) mapUserPage(p *Proc, page hw.Virt) (hw.Frame, error) {
	f, err := k.M.Mem.AllocFrame(hw.FrameUserData)
	if err != nil {
		return 0, err
	}
	if err := k.M.Mem.ZeroFrame(f); err != nil {
		return 0, err
	}
	if err := k.HAL.MapPage(p.root, page, f, hw.PTEUser|hw.PTEWrite); err != nil {
		_ = k.M.Mem.FreeFrame(f)
		return 0, err
	}
	p.pages[page] = f
	return f, nil
}

// handleFault resolves a user page fault: demand-zero for heap, stack,
// and anonymous mmaps; file read-in for file mmaps; encrypted swap-in
// for ghost pages the OS previously swapped out. Unresolvable faults
// kill the process.
func (k *Kernel) handleFault(p *Proc, va hw.Virt, ic core.IContext) {
	k.HAL.KAccess(workPageFault)
	if !k.resolveFault(p, va) {
		k.forceExit(p, 128+SIGSEGV)
	}
}

// forceExit marks a process for termination. If it is the current
// process the unwind happens at its next user-mode check; otherwise the
// kill takes effect when it is next scheduled.
func (k *Kernel) forceExit(p *Proc, code int) {
	if p.state == procZombie || p.state == procDead {
		return
	}
	p.killed = true
	p.exitCode = code
}

// dupAddressSpace copies every materialized page of the parent into the
// child (eager copy; the paper's workloads measure fork cost, not COW
// behaviour).
func (k *Kernel) dupAddressSpace(parent, child *Proc) error {
	// Clone the VMA list.
	child.vmas = nil
	for _, v := range parent.vmas {
		cv := *v
		child.vmas = append(child.vmas, &cv)
	}
	child.allocPtr = parent.allocPtr
	child.mmapNext = parent.mmapNext
	child.ghostBrk = parent.ghostBrk
	for _, page := range sortedPageVAs(parent.pages) {
		pf := parent.pages[page]
		k.HAL.KAccess(workForkPerPage)
		cf, err := k.mapUserPage(child, page)
		if err != nil {
			return err
		}
		src, err := k.M.Mem.FrameBytes(pf)
		if err != nil {
			return err
		}
		dst, err := k.M.Mem.FrameBytes(cf)
		if err != nil {
			return err
		}
		copy(dst, src)
		k.M.Clock.ChargeBytes(hw.TagMemAccess, hw.PageSize, hw.CostBcopyPerByte)
	}
	return nil
}

// releaseUserMemory unmaps and frees every materialized user page and
// resets the VMA list (exit and exec both use this).
func (k *Kernel) releaseUserMemory(p *Proc) {
	for _, page := range sortedPageVAs(p.pages) {
		f := p.pages[page]
		if err := k.HAL.UnmapPage(p.root, page); err != nil {
			panic(fmt.Sprintf("kernel: unmap %#x: %v", uint64(page), err))
		}
		if err := k.M.Mem.FreeFrame(f); err != nil {
			panic(fmt.Sprintf("kernel: free frame %d: %v", f, err))
		}
	}
	p.pages = make(map[hw.Virt]hw.Frame)
	p.vmas = nil
	p.heapPgs = 0
}

// freePageTables releases the page-table tree of an address space after
// all leaf mappings are gone.
func (k *Kernel) freePageTables(root hw.Frame) {
	k.freePTLevel(root, 3)
}

func (k *Kernel) freePTLevel(table hw.Frame, level int) {
	if level > 0 {
		for i := uint64(0); i < 512; i++ {
			e, err := k.M.MMU.ReadPTE(table, i)
			if err != nil {
				continue
			}
			if e.Present() {
				k.freePTLevel(e.Frame(), level-1)
			}
		}
	}
	// Level-0 entries point at data frames (freed by
	// releaseUserMemory), so only the table frames themselves are
	// freed here, at every level.
	_ = k.M.Mem.SetType(table, hw.FrameUserData)
	_ = k.M.Mem.FreeFrame(table)
}

// growHeap extends the process heap region (sbrk).
func (k *Kernel) growHeap(p *Proc, npages int) uint64 {
	k.HAL.KAccess(workMmap / 4)
	p.heapPgs += npages
	return uint64(UserHeapBase) + uint64(p.heapPgs)*hw.PageSize
}

// mmapRegion creates a new mapping and returns its base address.
// fd < 0 means anonymous.
func (k *Kernel) mmapRegion(p *Proc, npages int, fd int, off int64) (hw.Virt, uint64) {
	k.HAL.KAccess(workMmap)
	k.HAL.OnVMRegion(npages)
	if npages <= 0 {
		return 0, errno(EINVAL)
	}
	base := p.mmapNext
	p.mmapNext += hw.Virt(npages+1) * hw.PageSize // guard gap
	v := &VMA{Base: base, NPages: npages, Kind: vmaAnon}
	if fd >= 0 {
		fdesc, e := p.fd(fd)
		if e != 0 {
			return 0, errno(e)
		}
		ff, ok := fdesc.Ops.(*fsFile)
		if !ok {
			return 0, errno(EINVAL)
		}
		v.Kind = vmaFile
		v.ino = ff.ino
		v.fileOff = off
	}
	p.vmas = append(p.vmas, v)
	return base, 0
}

// munmapRegion removes a mapping, freeing its materialized pages.
func (k *Kernel) munmapRegion(p *Proc, base hw.Virt, npages int) uint64 {
	k.HAL.KAccess(workMunmap)
	k.HAL.OnVMRegion(npages)
	for i, v := range p.vmas {
		if v.Base == base && v.NPages == npages {
			for j := 0; j < npages; j++ {
				page := base + hw.Virt(j)*hw.PageSize
				if f, ok := p.pages[page]; ok {
					if err := k.HAL.UnmapPage(p.root, page); err != nil {
						return errno(EFAULT)
					}
					_ = k.M.Mem.FreeFrame(f)
					delete(p.pages, page)
				}
			}
			p.vmas = append(p.vmas[:i], p.vmas[i+1:]...)
			return 0
		}
	}
	return errno(EINVAL)
}

// resolveFault attempts to materialize the page backing va (demand
// paging). It returns false when the address is not part of any region.
func (k *Kernel) resolveFault(p *Proc, va hw.Virt) bool {
	page := hw.PageOf(va)
	if hw.IsGhost(va) {
		if blobs, ok := k.swappedGhost[p.PID]; ok {
			if blob, ok := blobs[page]; ok {
				if err := k.HAL.SwapInGhost(p.tid, page, blob); err == nil {
					delete(blobs, page)
					return true
				}
			}
		}
		return false
	}
	v := p.findVMA(va)
	if v == nil {
		return false
	}
	if _, present := p.pages[page]; present {
		return true
	}
	f, err := k.mapUserPage(p, page)
	if err != nil {
		return false
	}
	if v.Kind == vmaFile {
		off := v.fileOff + int64(page-v.Base)
		buf := make([]byte, hw.PageSize)
		n, rerr := k.FS.ReadAt(v.ino, buf, off)
		if rerr != nil && n == 0 {
			return false
		}
		dst, derr := k.M.Mem.FrameBytes(f)
		if derr != nil {
			return false
		}
		copy(dst, buf[:n])
		k.M.Clock.ChargeBytes(hw.TagMemAccess, n, hw.CostBcopyPerByte)
	}
	return true
}

// copyin is the kernel's fault-tolerant copy from user space: like the
// real copyin, it services demand-paging faults on the user buffer.
func (k *Kernel) copyin(p *Proc, va hw.Virt, n int) ([]byte, error) {
	for tries := 0; ; tries++ {
		b, err := k.HAL.Copyin(p.root, va, n)
		if err == nil {
			return b, nil
		}
		var f *hw.Fault
		if !errorsAs(err, &f) || tries > n/hw.PageSize+2 || !k.resolveFault(p, f.VA) {
			return nil, err
		}
	}
}

// copyout is the fault-tolerant copy to user space.
func (k *Kernel) copyout(p *Proc, va hw.Virt, b []byte) error {
	for tries := 0; ; tries++ {
		err := k.HAL.Copyout(p.root, va, b)
		if err == nil {
			return nil
		}
		var f *hw.Fault
		if !errorsAs(err, &f) || tries > len(b)/hw.PageSize+2 || !k.resolveFault(p, f.VA) {
			return err
		}
	}
}

func errorsAs(err error, target **hw.Fault) bool {
	for err != nil {
		if f, ok := err.(*hw.Fault); ok {
			*target = f
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
