package kernel

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestResolveExecFlags(t *testing.T) {
	cases := []struct {
		name    string
		in      ExecFlags
		want    ExecConfig
		wantErr string // substring of the expected error; empty = success
	}{
		{
			name: "defaults",
			in:   ExecFlags{CPUs: 1},
			want: ExecConfig{Engine: EngineLinked, Elide: true, Fuse: true},
		},
		{
			name: "linked with everything off",
			in:   ExecFlags{Engine: "linked", Elide: "off", ElideSet: true, Fuse: "off", FuseSet: true, CPUs: 1},
			want: ExecConfig{Engine: EngineLinked, Elide: false, Fuse: false},
		},
		{
			name: "reference with defaulted optimizers records them off",
			in:   ExecFlags{Engine: "reference", Elide: "on", Fuse: "on", CPUs: 1},
			want: ExecConfig{Engine: EngineReference, Elide: false, Fuse: false},
		},
		{
			name:    "explicit -elide with reference engine",
			in:      ExecFlags{Engine: "reference", Elide: "on", ElideSet: true, CPUs: 1},
			wantErr: "-elide only applies to the linked engine",
		},
		{
			name:    "explicit -fuse with reference engine",
			in:      ExecFlags{Engine: "reference", Fuse: "off", FuseSet: true, CPUs: 1},
			wantErr: "-fuse only applies to the linked engine",
		},
		{
			name: "hostpar multi-cpu",
			in:   ExecFlags{HostPar: true, CPUs: 4},
			want: ExecConfig{Engine: EngineLinked, Elide: true, Fuse: true, HostPar: true},
		},
		{
			name:    "hostpar single-cpu",
			in:      ExecFlags{HostPar: true, CPUs: 1},
			wantErr: "-hostpar needs multi-CPU machines",
		},
		{
			name:    "unknown engine",
			in:      ExecFlags{Engine: "jit", CPUs: 1},
			wantErr: "unknown engine",
		},
		{
			name:    "malformed elide value",
			in:      ExecFlags{Elide: "yes", ElideSet: true, CPUs: 1},
			wantErr: "unknown elide setting",
		},
		{
			name:    "malformed fuse value",
			in:      ExecFlags{Fuse: "1", FuseSet: true, CPUs: 1},
			wantErr: "unknown fuse setting",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ResolveExecFlags(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestResolveSnapshotFlags drives the -snapshot/-replay validation
// against real image files: well-formed headers, a recorded image, a
// missing file, a wrong-version image, and every malformed flag shape.
func TestResolveSnapshotFlags(t *testing.T) {
	dir := t.TempDir()
	writeImage := func(name string, hdr SnapshotHeader) string {
		t.Helper()
		path := dir + "/" + name
		b := PutSnapshotHeader(hdr)
		if err := os.WriteFile(path, b[:], 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	plain := writeImage("plain.vgsnap", SnapshotHeader{Version: SnapshotImageVersion})
	recorded := writeImage("recorded.vgsnap", SnapshotHeader{Version: SnapshotImageVersion, Flags: SnapshotFlagRecorded})
	oldVersion := writeImage("old.vgsnap", SnapshotHeader{Version: SnapshotImageVersion + 1})
	missing := dir + "/nonexistent.vgsnap"

	cases := []struct {
		name     string
		in       ExecFlags
		wantMode string
		wantPath string
		wantRep  bool
		wantErr  string
	}{
		{
			name: "no snapshot flags",
			in:   ExecFlags{CPUs: 1},
		},
		{
			name:     "save mode needs no existing file",
			in:       ExecFlags{CPUs: 1, Snapshot: "save=" + missing},
			wantMode: SnapshotSave,
			wantPath: missing,
		},
		{
			name:     "use mode with a valid image",
			in:       ExecFlags{CPUs: 1, Snapshot: "use=" + plain},
			wantMode: SnapshotUse,
			wantPath: plain,
		},
		{
			name:     "replay with a recorded image",
			in:       ExecFlags{CPUs: 1, Snapshot: "use=" + recorded, Replay: true},
			wantMode: SnapshotUse,
			wantPath: recorded,
			wantRep:  true,
		},
		{
			name:    "use mode with a missing image",
			in:      ExecFlags{CPUs: 1, Snapshot: "use=" + missing},
			wantErr: "-snapshot use=" + missing + ": unusable image",
		},
		{
			name:    "use mode with a version-mismatched image",
			in:      ExecFlags{CPUs: 1, Snapshot: "use=" + oldVersion},
			wantErr: "-snapshot use=" + oldVersion + ": unusable image",
		},
		{
			name:    "replay with an unrecorded image",
			in:      ExecFlags{CPUs: 1, Snapshot: "use=" + plain, Replay: true},
			wantErr: "-replay needs a recorded image",
		},
		{
			name:    "replay without a snapshot",
			in:      ExecFlags{CPUs: 1, Replay: true},
			wantErr: "-replay needs an image to replay from",
		},
		{
			name:    "replay with save mode",
			in:      ExecFlags{CPUs: 1, Snapshot: "save=" + recorded, Replay: true},
			wantErr: "-replay needs an image to replay from",
		},
		{
			name:    "unknown snapshot verb",
			in:      ExecFlags{CPUs: 1, Snapshot: "load=" + plain},
			wantErr: "-snapshot wants save=PATH or use=PATH",
		},
		{
			name:    "missing path",
			in:      ExecFlags{CPUs: 1, Snapshot: "use="},
			wantErr: "-snapshot wants save=PATH or use=PATH",
		},
		{
			name:    "bare path without verb",
			in:      ExecFlags{CPUs: 1, Snapshot: plain},
			wantErr: "-snapshot wants save=PATH or use=PATH",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ResolveExecFlags(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got.SnapshotMode != tc.wantMode || got.SnapshotPath != tc.wantPath || got.Replay != tc.wantRep {
				t.Errorf("got mode=%q path=%q replay=%v, want mode=%q path=%q replay=%v",
					got.SnapshotMode, got.SnapshotPath, got.Replay, tc.wantMode, tc.wantPath, tc.wantRep)
			}
		})
	}
}

// TestExecConfigApply checks Apply installs (and a second Apply
// restores) the package defaults kernels boot with.
func TestExecConfigApply(t *testing.T) {
	orig := ExecConfig{
		Engine:  SetDefaultEngine(EngineLinked),
		Elide:   DefaultElision(),
		Fuse:    DefaultFusion(),
		HostPar: DefaultHostParallel(),
	}
	SetDefaultEngine(orig.Engine)
	defer orig.Apply()

	cfg := ExecConfig{Engine: EngineReference, Elide: false, Fuse: false, HostPar: false}
	cfg.Apply()
	if DefaultElision() || DefaultFusion() || defaultEngine != EngineReference {
		t.Errorf("Apply did not install defaults: elide=%v fuse=%v engine=%v",
			DefaultElision(), DefaultFusion(), defaultEngine)
	}
}

// TestKernelFusionStats boots a kernel and checks the fusion state is
// visible through it: the core module's hot routines fuse sites, and
// SetFusion(false) reports disabled.
func TestKernelFusionStats(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	st := k.FusionStats()
	if !st.Enabled {
		t.Error("fusion not enabled on a default-booted kernel")
	}
	if mf := k.ModuleFusion(); len(mf) > 0 && st.SitesFused == 0 {
		t.Errorf("ModuleFusion reports %v but SitesFused is 0", mf)
	}
	k.SetFusion(false)
	if k.FusionStats().Enabled {
		t.Error("SetFusion(false) still reports enabled")
	}
	k.SetFusion(true)
}
