package kernel

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestResolveExecFlags(t *testing.T) {
	cases := []struct {
		name    string
		in      ExecFlags
		want    ExecConfig
		wantErr string // substring of the expected error; empty = success
	}{
		{
			name: "defaults",
			in:   ExecFlags{CPUs: 1},
			want: ExecConfig{Engine: EngineLinked, Elide: true, Fuse: true},
		},
		{
			name: "linked with everything off",
			in:   ExecFlags{Engine: "linked", Elide: "off", ElideSet: true, Fuse: "off", FuseSet: true, CPUs: 1},
			want: ExecConfig{Engine: EngineLinked, Elide: false, Fuse: false},
		},
		{
			name: "reference with defaulted optimizers records them off",
			in:   ExecFlags{Engine: "reference", Elide: "on", Fuse: "on", CPUs: 1},
			want: ExecConfig{Engine: EngineReference, Elide: false, Fuse: false},
		},
		{
			name:    "explicit -elide with reference engine",
			in:      ExecFlags{Engine: "reference", Elide: "on", ElideSet: true, CPUs: 1},
			wantErr: "-elide only applies to the linked engine",
		},
		{
			name:    "explicit -fuse with reference engine",
			in:      ExecFlags{Engine: "reference", Fuse: "off", FuseSet: true, CPUs: 1},
			wantErr: "-fuse only applies to the linked engine",
		},
		{
			name: "hostpar multi-cpu",
			in:   ExecFlags{HostPar: true, CPUs: 4},
			want: ExecConfig{Engine: EngineLinked, Elide: true, Fuse: true, HostPar: true},
		},
		{
			name:    "hostpar single-cpu",
			in:      ExecFlags{HostPar: true, CPUs: 1},
			wantErr: "-hostpar needs multi-CPU machines",
		},
		{
			name:    "unknown engine",
			in:      ExecFlags{Engine: "jit", CPUs: 1},
			wantErr: "unknown engine",
		},
		{
			name:    "malformed elide value",
			in:      ExecFlags{Elide: "yes", ElideSet: true, CPUs: 1},
			wantErr: "unknown elide setting",
		},
		{
			name:    "malformed fuse value",
			in:      ExecFlags{Fuse: "1", FuseSet: true, CPUs: 1},
			wantErr: "unknown fuse setting",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ResolveExecFlags(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestExecConfigApply checks Apply installs (and a second Apply
// restores) the package defaults kernels boot with.
func TestExecConfigApply(t *testing.T) {
	orig := ExecConfig{
		Engine:  SetDefaultEngine(EngineLinked),
		Elide:   DefaultElision(),
		Fuse:    DefaultFusion(),
		HostPar: DefaultHostParallel(),
	}
	SetDefaultEngine(orig.Engine)
	defer orig.Apply()

	cfg := ExecConfig{Engine: EngineReference, Elide: false, Fuse: false, HostPar: false}
	cfg.Apply()
	if DefaultElision() || DefaultFusion() || defaultEngine != EngineReference {
		t.Errorf("Apply did not install defaults: elide=%v fuse=%v engine=%v",
			DefaultElision(), DefaultFusion(), defaultEngine)
	}
}

// TestKernelFusionStats boots a kernel and checks the fusion state is
// visible through it: the core module's hot routines fuse sites, and
// SetFusion(false) reports disabled.
func TestKernelFusionStats(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	st := k.FusionStats()
	if !st.Enabled {
		t.Error("fusion not enabled on a default-booted kernel")
	}
	if mf := k.ModuleFusion(); len(mf) > 0 && st.SitesFused == 0 {
		t.Errorf("ModuleFusion reports %v but SitesFused is 0", mf)
	}
	k.SetFusion(false)
	if k.FusionStats().Enabled {
		t.Error("SetFusion(false) still reports enabled")
	}
	k.SetFusion(true)
}
