package kernel

import "sort"

// This file is the hierarchical timer wheel driving every network
// timeout (DESIGN.md §19): poll-wait timeouts, per-connection idle
// auto-close, and connect timeouts. It is indexed by virtual time —
// the same deterministic clock every other cost runs on — so arming,
// cascading, and firing are all replayable.
//
// Layout: wheelLevels levels of wheelSlots slots each. A level-0 slot
// covers one tick of wheelGranularity cycles; each higher level covers
// wheelSlots times the span of the one below. Entries beyond the top
// level's horizon wait in a sorted overflow list and fire straight
// from there. Advancing the wheel steps tick by tick, cascading a
// higher-level slot down whenever the cursor crosses its boundary —
// the classic O(1)-amortized scheme.
//
// Determinism: due entries fire in (expiry, id) order, where id is a
// monotonic arm sequence number. Two timers armed for the same instant
// therefore fire in arm order, never map order or slot-chain order.

const (
	// wheelGranularity is the level-0 tick in cycles (~2.4 µs at
	// 3.4 GHz) — finer than any modeled network latency, so timeout
	// rounding is invisible next to the NIC's 8000-cycle latency.
	wheelGranularity = 8192
	wheelSlots       = 64
	wheelLevels      = 4
)

// timerID names one armed timer; 0 is never a valid id.
type timerID uint64

type wheelEntry struct {
	id     timerID
	expiry uint64 // absolute virtual time
	fn     func()
}

type timerWheel struct {
	// curTick is the absolute level-0 tick the wheel has advanced to:
	// every live entry with expiry < curTick*wheelGranularity has
	// fired.
	curTick uint64
	slots   [wheelLevels][wheelSlots][]wheelEntry
	// overflow holds entries beyond the top level's horizon, sorted by
	// (expiry, id); advance pops due entries straight off its head.
	overflow []wheelEntry
	// live holds armed-not-yet-fired ids; dead marks cancelled ids
	// whose entries are reaped lazily when their slot is processed.
	live    map[timerID]struct{}
	dead    map[timerID]struct{}
	pending int
	// slotEntries counts entries physically stored in slots (live or
	// lazily dead, excluding overflow). When it is zero, advance can
	// jump the cursor without walking ticks.
	slotEntries int
	nextID      timerID
}

func newTimerWheel(now uint64) *timerWheel {
	return &timerWheel{
		curTick: now / wheelGranularity,
		live:    make(map[timerID]struct{}),
		dead:    make(map[timerID]struct{}),
		nextID:  1,
	}
}

// after arms fn to fire once virtual time reaches now+delay and
// returns the timer's id for cancel. A zero delay still fires strictly
// in the future (the next advance past now).
func (w *timerWheel) after(now, delay uint64, fn func()) timerID {
	if delay == 0 {
		delay = 1
	}
	id := w.nextID
	w.nextID++
	w.live[id] = struct{}{}
	w.insert(wheelEntry{id: id, expiry: now + delay, fn: fn})
	w.pending++
	return id
}

// cancel disarms a timer. It reports whether the id was still armed
// (false for already-fired, already-cancelled, or invalid ids).
func (w *timerWheel) cancel(id timerID) bool {
	if _, ok := w.live[id]; !ok {
		return false
	}
	delete(w.live, id)
	w.dead[id] = struct{}{}
	w.pending--
	return true
}

// insert places an entry into the level whose span covers its delay.
// Entries due at or before the cursor land in the current slot and
// fire on the next advance.
func (w *timerWheel) insert(e wheelEntry) {
	tick := e.expiry / wheelGranularity
	if tick < w.curTick {
		tick = w.curTick
	}
	delta := tick - w.curTick
	span := uint64(wheelSlots) // total ticks covered by levels 0..lvl
	width := uint64(1)         // ticks per slot at lvl
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if delta < span {
			idx := (tick / width) % wheelSlots
			w.slots[lvl][idx] = append(w.slots[lvl][idx], e)
			w.slotEntries++
			return
		}
		width = span
		span *= wheelSlots
	}
	// Beyond the horizon (≈137 G cycles): sorted overflow.
	i := sort.Search(len(w.overflow), func(i int) bool {
		o := w.overflow[i]
		return o.expiry > e.expiry || (o.expiry == e.expiry && o.id > e.id)
	})
	w.overflow = append(w.overflow, wheelEntry{})
	copy(w.overflow[i+1:], w.overflow[i:])
	w.overflow[i] = e
}

// advance fires every live entry with expiry <= now, in (expiry, id)
// order, and returns how many fired. Handlers may arm new timers; a
// handler-armed timer already due fires on the next advance, not this
// one.
func (w *timerWheel) advance(now uint64) int {
	targetTick := now / wheelGranularity
	if w.pending == 0 {
		// Nothing armed: just keep the cursor current so later inserts
		// land in the right slot. (Lazily-dead entries can linger in
		// slots; they are reaped whenever their slot is next touched.)
		w.curTick = targetTick
		return 0
	}
	var due []wheelEntry
	collect := func(e wheelEntry) bool {
		// Reap cancelled entries; move due live ones to the fire list.
		if _, gone := w.dead[e.id]; gone {
			delete(w.dead, e.id)
			return true
		}
		if e.expiry <= now {
			delete(w.live, e.id)
			due = append(due, e)
			return true
		}
		return false
	}
	// filterCur sweeps the cursor's own slot: entries there can be due
	// within the current tick (zero-delay arms land here).
	filterCur := func() {
		slot := &w.slots[0][w.curTick%wheelSlots]
		if len(*slot) == 0 {
			return
		}
		keep := (*slot)[:0]
		for _, e := range *slot {
			if !collect(e) {
				keep = append(keep, e)
			}
		}
		w.slotEntries -= len(*slot) - len(keep)
		*slot = keep
	}
	filterCur()
	for w.curTick < targetTick {
		if w.slotEntries == 0 {
			// Everything armed lives in the overflow list: no slot can
			// fire or cascade, so the cursor jumps straight to the
			// target instead of walking (possibly millions of) ticks.
			w.curTick = targetTick
			break
		}
		w.curTick++
		w.cascade()
		slot := &w.slots[0][w.curTick%wheelSlots]
		if len(*slot) == 0 {
			continue
		}
		entries := *slot
		*slot = nil
		w.slotEntries -= len(entries)
		for _, e := range entries {
			if !collect(e) {
				// Not yet due (a handler re-armed into the in-progress
				// region): keep it for a later advance.
				w.insert(e)
			}
		}
	}
	// The target tick's slot may hold entries due within the tick.
	filterCur()
	// Overflow entries that came due (huge jumps).
	for len(w.overflow) > 0 && w.overflow[0].expiry <= now {
		e := w.overflow[0]
		w.overflow = w.overflow[1:]
		collect(e)
	}
	if len(due) == 0 {
		return 0
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].expiry != due[j].expiry {
			return due[i].expiry < due[j].expiry
		}
		return due[i].id < due[j].id
	})
	for _, e := range due {
		w.pending--
		e.fn()
	}
	return len(due)
}

// cascade pulls the next higher-level slot down whenever the cursor
// crosses that level's boundary, re-distributing its entries into the
// finer levels below.
func (w *timerWheel) cascade() {
	width := uint64(wheelSlots) // ticks per slot at the level being pulled
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if w.curTick%width != 0 {
			return
		}
		idx := (w.curTick / width) % wheelSlots
		entries := w.slots[lvl][idx]
		if len(entries) != 0 {
			w.slots[lvl][idx] = nil
			w.slotEntries -= len(entries)
			for _, e := range entries {
				if _, gone := w.dead[e.id]; gone {
					delete(w.dead, e.id)
					continue
				}
				w.insert(e)
			}
		}
		width *= wheelSlots
	}
}

// nextExpiry returns the earliest live expiry and whether one exists.
// O(levels × slots + queued entries) scan — called only on the idle
// path, never per packet.
func (w *timerWheel) nextExpiry() (uint64, bool) {
	if w.pending == 0 {
		return 0, false
	}
	var best uint64
	found := false
	for lvl := 0; lvl < wheelLevels; lvl++ {
		for idx := 0; idx < wheelSlots; idx++ {
			for _, e := range w.slots[lvl][idx] {
				if _, gone := w.dead[e.id]; gone {
					continue
				}
				if !found || e.expiry < best {
					best, found = e.expiry, true
				}
			}
		}
	}
	for _, e := range w.overflow {
		if _, gone := w.dead[e.id]; gone {
			continue
		}
		if !found || e.expiry < best {
			best, found = e.expiry, true
		}
		break // sorted: the first live entry is the overflow minimum
	}
	return best, found
}

// pendingCount reports how many timers are armed and not cancelled.
func (w *timerWheel) pendingCount() int { return w.pending }
