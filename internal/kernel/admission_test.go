package kernel

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// fakeTranslation lets the admission gate be driven directly: a
// translation claiming whatever combination of admission proof and
// signature validity an attack on the loader would need.
type fakeTranslation struct {
	admitted, verified bool
}

func (f *fakeTranslation) Entry(string) (uint64, bool) { return 0, false }
func (f *fakeTranslation) Verify() bool                { return f.verified }
func (f *fakeTranslation) Admitted() bool              { return f.admitted }

func TestAdmitModuleGate(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)

	if _, err := k.admitModule("good", &fakeTranslation{admitted: true, verified: true}); err != nil {
		t.Errorf("admitted+verified translation refused: %v", err)
	}

	_, err := k.admitModule("noproof", &fakeTranslation{admitted: false, verified: true})
	if err == nil || !strings.Contains(err.Error(), "admission proof") {
		t.Errorf("translation without admission proof must be refused, got %v", err)
	}

	_, err = k.admitModule("tampered", &fakeTranslation{admitted: true, verified: false})
	if err == nil || !strings.Contains(err.Error(), "signature") {
		t.Errorf("signature-mismatched translation must be refused, got %v", err)
	}
}

// TestLoadModuleAdmitsRealTranslations is the end-to-end positive case:
// both pipelines' real translations pass the gate (Virtual Ghost with
// an admission proof, native by declaring no admission requirement).
func TestLoadModuleAdmitsRealTranslations(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		mod, err := k.LoadModule(buildCounterModule())
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !mod.Translation.Admitted() {
			t.Errorf("%v: loaded module translation not admitted", mode)
		}
	}
}
