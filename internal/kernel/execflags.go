package kernel

import (
	"fmt"
	"strings"
)

// This file centralizes the validation of the engine-related
// command-line flags shared by cmd/vgrun, cmd/vgbench and cmd/vgattack.
// Each command used to parse and cross-check its own flags, which let
// contradictory combinations slip through with different (or no)
// diagnostics; ResolveExecFlags is now the single place that refuses
// them, so every command reports the same clear error.

// ExecFlags carries the raw flag values as the user typed them.
// ElideSet/FuseSet record whether the flag appeared on the command line
// at all (flag.Visit in the commands) — needed to tell "defaulted" from
// "explicitly requested", which decides whether a combination is
// contradictory or merely redundant.
type ExecFlags struct {
	Engine   string // -engine: "linked" | "reference" (empty means default)
	Elide    string // -elide: "on" | "off" (empty means default)
	ElideSet bool   // -elide appeared explicitly
	Fuse     string // -fuse: "on" | "off" (empty means default)
	FuseSet  bool   // -fuse appeared explicitly
	HostPar  bool   // -hostpar
	CPUs     int    // -cpus (validated against -hostpar)
	Snapshot string // -snapshot: "save=PATH" | "use=PATH" (empty means off)
	Replay   bool   // -replay (needs -snapshot use= of a recorded image)
}

// Snapshot modes resolved from the -snapshot flag.
const (
	SnapshotOff  = ""
	SnapshotSave = "save"
	SnapshotUse  = "use"
)

// ExecConfig is the validated execution configuration. Apply installs
// it as the package defaults picked up by subsequently booted kernels.
type ExecConfig struct {
	Engine  EngineKind
	Elide   bool
	Fuse    bool
	HostPar bool
	// SnapshotMode is SnapshotOff, SnapshotSave or SnapshotUse;
	// SnapshotPath is the image path. For SnapshotUse the image file
	// has already been probed: it exists and its header matches this
	// build's format version.
	SnapshotMode string
	SnapshotPath string
	// Replay requests serving the image's recorded nondeterministic
	// inputs; validation guarantees the image's header carries the
	// recorded flag.
	Replay bool
}

// ResolveExecFlags validates the flag combination and resolves it to a
// configuration. Rejected combinations:
//
//   - -elide or -fuse passed explicitly with -engine=reference: the
//     reference interpreter has no optimizing linker, so the request
//     cannot be honoured and silently ignoring it would misreport what
//     was measured;
//   - -hostpar with -cpus <= 1: host-parallel phases need a multi-CPU
//     machine;
//   - malformed values (unknown engine names, -elide/-fuse values other
//     than on/off).
func ResolveExecFlags(f ExecFlags) (ExecConfig, error) {
	var (
		cfg ExecConfig
		err error
	)
	if f.Engine == "" {
		f.Engine = "linked"
	}
	if cfg.Engine, err = ParseEngine(f.Engine); err != nil {
		return cfg, err
	}
	cfg.Elide = DefaultElision()
	if f.Elide != "" {
		if cfg.Elide, err = ParseElide(f.Elide); err != nil {
			return cfg, err
		}
	}
	cfg.Fuse = DefaultFusion()
	if f.Fuse != "" {
		if cfg.Fuse, err = ParseFuse(f.Fuse); err != nil {
			return cfg, err
		}
	}
	if cfg.Engine == EngineReference {
		if f.ElideSet {
			return cfg, fmt.Errorf("kernel: -elide only applies to the linked engine; drop -elide or use -engine=linked")
		}
		if f.FuseSet {
			return cfg, fmt.Errorf("kernel: -fuse only applies to the linked engine; drop -fuse or use -engine=linked")
		}
		// Not requested, just defaulted: record the truth — the
		// reference engine neither elides nor fuses.
		cfg.Elide, cfg.Fuse = false, false
	}
	if f.HostPar && f.CPUs <= 1 {
		return cfg, fmt.Errorf("kernel: -hostpar needs multi-CPU machines; pass -cpus > 1")
	}
	cfg.HostPar = f.HostPar
	if err := resolveSnapshotFlags(f, &cfg); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// resolveSnapshotFlags validates -snapshot/-replay. A use-mode image is
// probed up front so a missing file and a version-mismatched one fail
// the same way at flag time — one shared diagnostic naming the flag —
// instead of two different errors deep inside a half-started run.
func resolveSnapshotFlags(f ExecFlags, cfg *ExecConfig) error {
	if f.Snapshot != "" {
		mode, path, ok := strings.Cut(f.Snapshot, "=")
		if !ok || path == "" || (mode != SnapshotSave && mode != SnapshotUse) {
			return fmt.Errorf("kernel: -snapshot wants save=PATH or use=PATH, got %q", f.Snapshot)
		}
		cfg.SnapshotMode, cfg.SnapshotPath = mode, path
	}
	if cfg.SnapshotMode == SnapshotUse {
		if _, err := ProbeSnapshotHeader(cfg.SnapshotPath); err != nil {
			return fmt.Errorf("kernel: -snapshot use=%s: unusable image: %v", cfg.SnapshotPath, err)
		}
	}
	if f.Replay {
		if cfg.SnapshotMode != SnapshotUse {
			return fmt.Errorf("kernel: -replay needs an image to replay from; pass -snapshot use=PATH")
		}
		hdr, err := ProbeSnapshotHeader(cfg.SnapshotPath)
		if err != nil {
			return fmt.Errorf("kernel: -snapshot use=%s: unusable image: %v", cfg.SnapshotPath, err)
		}
		if !hdr.Recorded() {
			return fmt.Errorf("kernel: -replay needs a recorded image, and %s carries no record trailer", cfg.SnapshotPath)
		}
		cfg.Replay = true
	}
	return nil
}

// Apply installs the configuration as the package defaults used by
// subsequently booted kernels (SetDefaultEngine and friends).
func (c ExecConfig) Apply() {
	SetDefaultEngine(c.Engine)
	SetDefaultElision(c.Elide)
	SetDefaultFusion(c.Fuse)
	SetDefaultHostParallel(c.HostPar)
}
