package kernel

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// This file defines the snapshot image *header*: the 16 fixed bytes at
// the front of every image file. It lives in the kernel package — not
// internal/snapshot — so that ResolveExecFlags can validate a
// `-snapshot use=PATH` argument (magic, version, recorded-trailer flag)
// without importing the snapshot subsystem, which itself imports the
// kernel. The snapshot package writes and re-checks the same header
// through these helpers.

const (
	// SnapshotImageMagic is the 8-byte file signature. The \r\n catches
	// images mangled by text-mode transfers, like PNG's.
	SnapshotImageMagic = "VGSNAP\r\n"
	// SnapshotImageVersion is the current image format version. Bump on
	// any change to the header, section layout, or payload encoding.
	// v2: KernelSnap.NextPort folded into a NetSnap section (port range,
	// receive-window default, net counters, timer-id cursor); NICSnap
	// gained per-port drop counters.
	SnapshotImageVersion = 2
	// SnapshotHeaderSize is the fixed header length:
	// magic(8) | version(4 LE) | flags(4 LE).
	SnapshotHeaderSize = 16
	// SnapshotFlagRecorded marks an image carrying a record-replay
	// trailer (-replay requires it).
	SnapshotFlagRecorded = 1 << 0
)

// SnapshotHeader is the decoded fixed header of an image file.
type SnapshotHeader struct {
	Version uint32
	Flags   uint32
}

// Recorded reports whether the image carries a record-replay trailer.
func (h SnapshotHeader) Recorded() bool { return h.Flags&SnapshotFlagRecorded != 0 }

// PutSnapshotHeader encodes a header into its fixed wire form.
func PutSnapshotHeader(h SnapshotHeader) [SnapshotHeaderSize]byte {
	var out [SnapshotHeaderSize]byte
	copy(out[:8], SnapshotImageMagic)
	binary.LittleEndian.PutUint32(out[8:12], h.Version)
	binary.LittleEndian.PutUint32(out[12:16], h.Flags)
	return out
}

// ParseSnapshotHeader decodes and validates the fixed header at the
// front of b: the magic must match and the version must be exactly
// SnapshotImageVersion (there are no compatible older versions yet).
func ParseSnapshotHeader(b []byte) (SnapshotHeader, error) {
	var h SnapshotHeader
	if len(b) < SnapshotHeaderSize {
		return h, fmt.Errorf("truncated header (%d bytes, want %d)", len(b), SnapshotHeaderSize)
	}
	if string(b[:8]) != SnapshotImageMagic {
		return h, fmt.Errorf("bad magic %q: not a snapshot image", b[:8])
	}
	h.Version = binary.LittleEndian.Uint32(b[8:12])
	h.Flags = binary.LittleEndian.Uint32(b[12:16])
	if h.Version != SnapshotImageVersion {
		return h, fmt.Errorf("image version %d, this build reads version %d", h.Version, SnapshotImageVersion)
	}
	return h, nil
}

// ProbeSnapshotHeader opens path and validates its snapshot header
// without reading the (potentially large) payload. A missing file, a
// non-image, and a version mismatch all return an error suitable for
// the shared -snapshot diagnostic.
func ProbeSnapshotHeader(path string) (SnapshotHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotHeader{}, err
	}
	defer f.Close()
	var buf [SnapshotHeaderSize]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		return SnapshotHeader{}, fmt.Errorf("truncated header: %v", err)
	}
	return ParseSnapshotHeader(buf[:])
}
