package kernel

import (
	"repro/internal/core"
	"repro/internal/hw"
)

// sysGetpid is the null-syscall of the microbenchmarks.
func sysGetpid(k *Kernel, p *Proc, ic core.IContext) uint64 {
	return uint64(p.PID)
}

// sysExit implements exit(code).
func sysExit(k *Kernel, p *Proc, ic core.IContext) uint64 {
	p.sysExitInternal(int(ic.Arg(0)))
	return 0
}

// sysExitInternal performs kernel-side process teardown and zombifies
// the process. It runs in process context; the caller unwinds the user
// stack afterwards.
func (p *Proc) sysExitInternal(code int) {
	if p.state == procZombie || p.state == procDead {
		return
	}
	k := p.k
	k.HAL.KAccess(workExit)
	p.exitCode = code
	p.closeAllFDs(k)
	k.releaseUserMemory(p)
	// The HAL scrubs and returns ghost pages and drops thread state.
	k.HAL.EndThread(p.tid)
	k.freePageTables(p.root)
	// Orphan children are reparented to nobody and reaped immediately
	// when they die (no init in this world).
	for _, c := range p.children {
		c.parent = nil
	}
	delete(k.swappedGhost, p.PID)
	p.state = procZombie
	if p.parent == nil {
		// Nothing will wait for us; become fully dead.
		p.state = procDead
		k.schedRemove(p)
		delete(k.procs, p.PID)
	}
}

// sysFork implements fork(): the child is a full copy of the parent's
// user memory image, file table, and (via the HAL) interrupt context
// and ghost mappings.
func sysFork(k *Kernel, p *Proc, ic core.IContext) uint64 {
	if p.pendingChildMain == nil {
		return errno(EINVAL)
	}
	k.HAL.KAccess(workFork)
	k.stats.ForksCreated++
	child, err := k.newProc(p.Name+"+", p, p.pendingChildMain)
	if err != nil {
		return errno(ENOMEM)
	}
	// Duplicate the traditional memory image.
	if err := k.dupAddressSpace(p, child); err != nil {
		k.forceExit(child, 128+SIGKILL)
		return errno(ENOMEM)
	}
	// Share file descriptors (refcounted open-file entries).
	child.fds = make([]*FileDesc, len(p.fds))
	for i, d := range p.fds {
		if d != nil {
			d.Refs++
			child.fds[i] = d
		}
	}
	child.fdHint = p.fdHint
	// Clone signal dispositions and the user-side code registry (same
	// image).
	for sig, h := range p.sigHandlers {
		child.sigHandlers[sig] = h
	}
	for a, f := range p.handlerFns {
		child.handlerFns[a] = f
	}
	child.nextCode = p.nextCode
	// sva.newstate: clone the interrupt context inside the VM.
	cic, err := k.HAL.NewState(ic, child.tid)
	if err != nil {
		return errno(ENOMEM)
	}
	cic.SetRet(0) // the child's fork() returns 0
	// Ghost memory is shared with the new thread (paper §4.6.2).
	if err := k.HAL.InheritGhost(p.tid, child.tid, child.root); err != nil {
		return errno(ENOMEM)
	}
	child.start()
	return uint64(child.PID)
}

// sysWait4 implements wait4(status*): blocks for any child zombie,
// writes its exit code, reaps it, and returns its pid.
func sysWait4(k *Kernel, p *Proc, ic core.IContext) uint64 {
	if len(p.children) == 0 {
		return errno(EINVAL)
	}
	var zombie *Proc
	p.block(func() bool {
		for _, c := range p.children {
			if c.state == procZombie {
				zombie = c
				return true
			}
		}
		return false
	})
	k.HAL.KAccess(workWait)
	out := make([]byte, 8)
	putU64(out, uint64(zombie.exitCode))
	if ic.Arg(0) != 0 {
		if err := k.copyout(p, hw.Virt(ic.Arg(0)), out); err != nil {
			return errno(EFAULT)
		}
	}
	zombie.state = procDead
	k.schedRemove(zombie)
	delete(p.children, zombie.PID)
	delete(k.procs, zombie.PID)
	return uint64(zombie.PID)
}

// sysExecve implements execve(path): validates the installed binary
// through the HAL (Virtual Ghost refuses tampered images), releases the
// old user image including its ghost memory, and reinitializes the
// interrupt context for the new entry point.
func sysExecve(k *Kernel, p *Proc, ic core.IContext) uint64 {
	path, e := copyinPath(k, p, ic.Arg(0))
	if e != 0 {
		return e
	}
	prog, ok := k.programs[path]
	if !ok {
		return errno(ENOENT)
	}
	k.HAL.KAccess(workExec)
	// Binary validation: under Virtual Ghost a bad installer signature
	// or key section refuses to prepare the image (paper §4.5).
	if err := k.HAL.LoadBinary(p.tid, prog.Bin); err != nil {
		return errno(EPERM)
	}
	// Tear down the old image.
	k.releaseUserMemory(p)
	p.vmas = append(p.vmas,
		&VMA{Base: UserHeapBase, NPages: 1 << 16, Kind: vmaHeap},
		&VMA{Base: UserStackTop - stackPages*hw.PageSize, NPages: stackPages, Kind: vmaStack},
	)
	p.allocPtr = UserHeapBase
	p.mmapNext = UserMmapBase
	p.heapPgs = 0
	p.sigHandlers = make(map[int]uint64)
	p.handlerFns = make(map[uint64]HandlerFunc)
	p.nextCode = uint64(UserText) + 0x1000
	p.ghostBrk = hw.GhostBase
	// sva.reinit.icontext: new PC/SP, user privilege, old ghost memory
	// unmapped by the VM.
	if err := k.HAL.ReinitIContext(ic, uint64(UserText), uint64(UserStackTop)); err != nil {
		return errno(EPERM)
	}
	p.Name = path
	p.execNext = prog.Main
	return 0
}
