// Package kernel implements a FreeBSD-like monolithic kernel on top of
// the SVA-OS HAL (internal/core): processes and a scheduler, a syscall
// table, signals, a VFS with a disk-backed UFS-like file system and
// buffer cache, pipes, a socket/network stack over the simulated NIC,
// mmap with demand paging, ghost-page swap, and dynamically loadable
// kernel modules expressed in the virtual instruction set.
//
// The kernel is deliberately *unaware* of which HAL it booted on: the
// same code runs on the native baseline and under Virtual Ghost. All of
// its accesses to user/ghost virtual memory go through the HAL's
// compiled-kernel accessors (KLoad/Copyin/...), its hardware
// manipulation goes through the HAL operations, and its abstract
// data-structure work is charged through KAccess — so the cost and the
// security differences between configurations emerge from the HAL, not
// from kernel branches.
package kernel

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/vir"
)

// Syscall numbers (FreeBSD-flavoured).
const (
	SysExit    = 1
	SysFork    = 2
	SysRead    = 3
	SysWrite   = 4
	SysOpen    = 5
	SysClose   = 6
	SysWait4   = 7
	SysUnlink  = 10
	SysGetpid  = 20
	SysKill    = 37
	SysSigact  = 46
	SysSigret  = 47
	SysPipe    = 42
	SysSelect  = 93
	SysFsync   = 95
	SysSocket  = 97
	SysConnect = 98
	SysBind    = 104
	SysListen  = 106
	SysAccept  = 30
	SysSendTo  = 133
	SysRecv    = 29
	SysExecve  = 59
	SysMmap    = 477
	SysMunmap  = 73
	SysLseek   = 478
	SysMkdir   = 136
	SysRmdir   = 137
	SysStat    = 188
	SysSbrk    = 569
	SysSwapOut = 570 // OS-initiated ghost swap (experiment hook)
	SysRandom  = 571 // /dev/random-style OS randomness (attackable)
	SysYield   = 572
	// Event-driven networking (DESIGN.md §19).
	SysPollCreate = 573 // allocate an empty poll set, returns its fd
	SysPollCtl    = 574 // (pollfd, op, fd, events) add/mod/del a member
	SysPollWait   = 575 // (pollfd, evbuf, maxev, timeout) wait for readiness
	SysNonblock   = 576 // (fd, on) toggle a socket's blocking discipline
	SysSockTimeo  = 577 // (fd, cycles) connect timeout / idle auto-close
)

// Errno values returned (negated) by syscalls.
const (
	EOK     = 0
	EPERM   = 1
	ENOENT  = 2
	EBADF   = 9
	ENOMEM  = 12
	EFAULT  = 14
	EEXIST  = 17
	ENOTDIR = 20
	EISDIR  = 21
	EINVAL  = 22
	EMFILE  = 24
	ENOSPC  = 28
	ESPIPE  = 29
	EPIPE   = 32
	// EAGAIN: a nonblocking operation would block, or a resource pool
	// (ephemeral ports) is exhausted — retry later.
	EAGAIN    = 35
	ETIMEDOUT = 60
	// ECONNREFUSED: the destination port answered a SYN with an RST
	// (nobody listening there).
	ECONNREFUSED = 61
	ENOSYS       = 78
)

// errno encodes an error as a negative return value.
func errno(e uint64) uint64 { return ^e + 1 } // two's complement negation

// IsErr reports whether a syscall return value encodes an errno, and
// which.
func IsErr(ret uint64) (uint64, bool) {
	if int64(ret) < 0 {
		return -uint64(int64(ret)), true
	}
	return 0, false
}

// SyscallHandler implements one system call. Handlers run in process
// context on the calling process's goroutine, exactly like a monolithic
// kernel's top half.
type SyscallHandler func(k *Kernel, p *Proc, ic core.IContext) uint64

// PlantedFunc is attacker-injected "machine code" sitting at an address
// in some process's address space: if control ever reaches that
// address, this runs with the process's user privileges. Virtual
// Ghost's CFI and sva.ipush.function checks exist to make sure control
// never does.
type PlantedFunc func(p *Proc, args []uint64)

// Kernel is one booted operating-system instance.
type Kernel struct {
	HAL core.HAL
	M   *hw.Machine
	FS  *FS
	Net *NetStack

	procs    map[int]*Proc
	nextPID  int
	cpus     []*cpuRun // per-CPU run queues (see sched.go)
	lastCPU  int       // round-robin cursor over cpus
	cur      *Proc
	syscalls map[uint64]SyscallHandler
	modules  []*Module
	coreMod  *Module

	// programs is the installed-binary registry (what the file system
	// + loader would provide): name -> signed binary + entry function.
	programs map[string]*Program

	// planted is the registry of attacker-injected code addresses.
	planted map[uint64]PlantedFunc

	// swappedGhost holds encrypted ghost swap blobs the OS stored
	// (keyed by pid then page VA).
	swappedGhost map[int]map[hw.Virt][]byte

	// devRandomHook, when set, intercepts the OS randomness syscall —
	// the Iago randomness attack installs one.
	devRandomHook func() uint64

	// modLogBuf accumulates bytes module code logs via the klog
	// intrinsics.
	modLogBuf []byte

	// Module execution engines: the pre-linked engine (default) and the
	// tree-walking reference interpreter, selected by engineKind. Both
	// are per-kernel so step budgets and code caches follow the kernel's
	// lifetime. modEnvs caches the module Env per address-space root so
	// steady-state module calls allocate nothing on the host.
	engineKind EngineKind
	engine     *vir.Engine
	refInterps map[vir.Env]*vir.Interp
	modEnvs    map[hw.Frame]vir.Env

	// moduleProofs records, per admitted module, how many mask/CFI
	// instrumentation sites the admission checker proved redundant
	// (see internal/compiler/check prove.go). The linked engine elides
	// the host work of proven sites; the counts feed vgbench's BENCH
	// elision report.
	moduleProofs map[string]ProofCounts

	// intrinsics is the kernel-service linkage table for module code,
	// built once at boot (see modintr.go).
	intrinsics map[string]IntrinsicHandler

	// epochMode is true on multi-CPU machines: the scheduler runs the
	// deterministic epoch/barrier protocol (epoch.go) instead of the
	// single-CPU serial loop. hostPar additionally runs each epoch's
	// user phase on concurrent host goroutines; it changes host
	// wall-clock only — every virtual number is bit-identical either
	// way, because the phases execute the same code in the same order.
	epochMode bool
	hostPar   bool

	stats Stats
	// sysProf is the per-syscall cycle histogram (see profile.go).
	sysProf map[uint64]*SyscallCycles
}

// EngineKind selects how the kernel executes module IR.
type EngineKind int

const (
	// EngineLinked is the pre-linked engine (internal/vir/engine.go):
	// functions are lowered once to a flat pre-resolved form.
	EngineLinked EngineKind = iota
	// EngineReference is the original tree-walking interpreter, kept as
	// the semantic reference.
	EngineReference
)

// String names the engine kind as accepted by ParseEngine.
func (e EngineKind) String() string {
	if e == EngineReference {
		return "reference"
	}
	return "linked"
}

// ParseEngine converts a command-line engine name to an EngineKind.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "linked":
		return EngineLinked, nil
	case "reference":
		return EngineReference, nil
	}
	return EngineLinked, fmt.Errorf("kernel: unknown engine %q (want linked or reference)", s)
}

// defaultEngine is the engine new kernels boot with.
var defaultEngine = EngineLinked

// SetDefaultEngine changes the engine used by subsequently booted
// kernels and returns the previous default. cmd/vgrun and cmd/vgbench
// use it to honour their -engine flag.
func SetDefaultEngine(e EngineKind) EngineKind {
	old := defaultEngine
	defaultEngine = e
	return old
}

// SetEngine switches this kernel's module execution engine.
func (k *Kernel) SetEngine(e EngineKind) { k.engineKind = e }

// Engine reports which engine this kernel executes module IR with.
func (k *Kernel) Engine() EngineKind { return k.engineKind }

// defaultHostParallel is the host-parallelism setting new kernels boot
// with (see SetDefaultHostParallel).
var defaultHostParallel = false

// SetDefaultHostParallel changes whether subsequently booted multi-CPU
// kernels run their epoch user phases on concurrent host goroutines,
// and returns the previous default. cmd/vgrun, cmd/vgbench and
// cmd/vgattack use it to honour their -hostpar flag; like
// SetDefaultEngine it exists so experiment helpers that boot kernels
// internally (the security matrix, scaling sweeps) pick the mode up
// without threading a parameter through every constructor.
func SetDefaultHostParallel(on bool) bool {
	old := defaultHostParallel
	defaultHostParallel = on
	return old
}

// DefaultHostParallel reports the current package default (what the
// next Boot will use on a multi-CPU machine).
func DefaultHostParallel() bool { return defaultHostParallel }

// defaultElision is the proof-carrying check-elision setting new
// kernels boot with. On by default: elision changes host work only —
// every virtual number is bit-identical either way (the charges of a
// proven-redundant site are still modeled).
var defaultElision = true

// SetDefaultElision changes whether subsequently booted kernels' linked
// engines elide instrumentation sites the admission checker proved
// redundant, and returns the previous default. cmd/vgrun and
// cmd/vgbench use it to honour their -elide flag; off is the bisection
// escape hatch when a host-speed regression needs to be attributed to
// (or exonerated from) the optimizer.
func SetDefaultElision(on bool) bool {
	old := defaultElision
	defaultElision = on
	return old
}

// DefaultElision reports the current package default.
func DefaultElision() bool { return defaultElision }

// ParseElide converts a command-line -elide value ("on"|"off") to a
// bool. A string flag rather than a bool one so misspellings are
// refused loudly instead of silently defaulting.
func ParseElide(s string) (bool, error) {
	switch s {
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return true, fmt.Errorf("kernel: unknown elide setting %q (want on or off)", s)
}

// SetElision switches this kernel's linked engine between eliding and
// not eliding proven-redundant checks (flushing its linked-code cache).
func (k *Kernel) SetElision(on bool) { k.engine.SetElide(on) }

// defaultFusion is the superinstruction-fusion setting new kernels boot
// with. On by default: like elision, fusion changes host work only —
// fused charge lists are the exact concatenation of their constituents',
// so every virtual number is bit-identical either way.
var defaultFusion = true

// SetDefaultFusion changes whether subsequently booted kernels' linked
// engines fuse hot instruction idioms into superinstructions (and use
// the monomorphic indirect-call inline caches), and returns the
// previous default. cmd/vgrun and cmd/vgbench use it to honour their
// -fuse flag; off is the bisection escape hatch, mirroring -elide.
func SetDefaultFusion(on bool) bool {
	old := defaultFusion
	defaultFusion = on
	return old
}

// DefaultFusion reports the current package default.
func DefaultFusion() bool { return defaultFusion }

// ParseFuse converts a command-line -fuse value ("on"|"off") to a bool.
// A string flag rather than a bool one so misspellings are refused
// loudly instead of silently defaulting.
func ParseFuse(s string) (bool, error) {
	switch s {
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return true, fmt.Errorf("kernel: unknown fuse setting %q (want on or off)", s)
}

// SetFusion switches this kernel's linked engine between fusing and not
// fusing hot idioms (flushing its linked-code cache).
func (k *Kernel) SetFusion(on bool) { k.engine.SetFuse(on) }

// FusionStats describes the kernel's superinstruction-fusion state:
// whether the linked engine is fusing, how many idiom sites its linker
// collapsed into superinstructions (cumulative over relinks), and the
// monomorphic inline-cache hit/miss counts on indirect-call sites (all
// zero when running the reference engine or -fuse=off).
type FusionStats struct {
	Enabled    bool
	SitesFused uint64
	ICHits     uint64
	ICMisses   uint64
}

// FusionStats reports the kernel's current fusion state.
func (k *Kernel) FusionStats() FusionStats {
	fs := k.engine.Fusion()
	return FusionStats{
		Enabled:    k.engine.Fuse(),
		SitesFused: fs.SitesFused,
		ICHits:     fs.ICHits,
		ICMisses:   fs.ICMisses,
	}
}

// ModuleFusion returns, per loaded module, how many superinstruction
// sites the engine's linker fused in that module's functions (module
// name -> sites, cumulative over relinks, zero-count modules omitted).
// Functions are matched by name, so modules sharing a function name
// share its tally.
func (k *Kernel) ModuleFusion() map[string]uint64 {
	sites := k.engine.FuseSites()
	out := make(map[string]uint64)
	for _, mod := range k.modules {
		var n uint64
		for _, fn := range mod.fnNames {
			n += sites[fn]
		}
		if n > 0 {
			out[mod.Name] = n
		}
	}
	return out
}

// ProofCounts is the per-module tally of instrumentation sites the
// admission checker proved redundant at translation time.
type ProofCounts struct {
	Masks int // maskghost sites provably already-masked on all paths
	CFIs  int // cfi.callind sites dominated by an equivalent check
}

// ModuleProofs returns the per-module proof tallies for every module
// admitted so far (module name -> counts, zero-count modules omitted).
func (k *Kernel) ModuleProofs() map[string]ProofCounts {
	out := make(map[string]ProofCounts, len(k.moduleProofs))
	for name, c := range k.moduleProofs {
		out[name] = c
	}
	return out
}

// ElisionStats describes the kernel's check-elision state: whether the
// linked engine is eliding, how many sites translation proved
// redundant across all admitted modules, and how many sites the
// engine's linker actually lowered to elided forms (cumulative over
// relinks; zero when running the reference engine or -elide=off).
type ElisionStats struct {
	Enabled     bool
	MasksProven int
	CFIProven   int
	MasksElided uint64
	CFIElided   uint64
}

// ElisionStats reports the kernel's current elision state.
func (k *Kernel) ElisionStats() ElisionStats {
	st := ElisionStats{Enabled: k.engine.Elide()}
	for _, c := range k.moduleProofs {
		st.MasksProven += c.Masks
		st.CFIProven += c.CFIs
	}
	es := k.engine.Elision()
	st.MasksElided = es.MasksElided
	st.CFIElided = es.CFIElided
	return st
}

// SetHostParallel switches this kernel between serial and host-parallel
// user phases. It only has an effect on multi-CPU machines (single-CPU
// kernels never run the epoch scheduler) and is safe to flip between
// runs; every exported virtual number is identical in both modes.
func (k *Kernel) SetHostParallel(on bool) { k.hostPar = on }

// HostParallel reports whether epoch user phases run on concurrent
// host goroutines.
func (k *Kernel) HostParallel() bool { return k.hostPar }

// Stats counts kernel events for tests and experiment reporting.
type Stats struct {
	Syscalls       uint64
	ContextSwitch  uint64
	PageFaults     uint64
	SignalsSent    uint64
	SignalsBlocked uint64
	ForksCreated   uint64
	// IPIs counts rescheduling interrupts the kernel sent for
	// cross-CPU signal delivery; Steals counts run-queue migrations by
	// idle CPUs. Both stay zero on single-CPU machines.
	IPIs   uint64
	Steals uint64
}

// Program is an installed executable: the signed binary plus its entry
// point (the Go closure standing in for its machine code).
type Program struct {
	Bin  *core.Binary
	Main func(p *Proc)
}

// frameSource adapts the kernel's physical allocator to the HAL.
type frameSource struct{ m *hw.Memory }

func (fs frameSource) GetFrame() (hw.Frame, error) { return fs.m.AllocFrame(hw.FrameUserData) }
func (fs frameSource) PutFrame(f hw.Frame) {
	// Returned frames rejoin the free pool.
	if err := fs.m.FreeFrame(f); err != nil {
		panic(fmt.Sprintf("kernel: PutFrame: %v", err))
	}
}

// ErrNoProgram is returned by exec for unknown program names.
var ErrNoProgram = errors.New("kernel: no such installed program")

// Boot initializes a kernel on the HAL: registers the trap handler and
// frame source, builds the syscall table, creates the file system (with
// a fresh mkfs on the machine's disk), and starts the network stack.
func Boot(hal core.HAL) (*Kernel, error) {
	k := &Kernel{
		HAL:          hal,
		M:            hal.Machine(),
		procs:        make(map[int]*Proc),
		nextPID:      1,
		syscalls:     make(map[uint64]SyscallHandler),
		programs:     make(map[string]*Program),
		planted:      make(map[uint64]PlantedFunc),
		swappedGhost: make(map[int]map[hw.Virt][]byte),
		engineKind:   defaultEngine,
		engine:       vir.NewEngine(),
		refInterps:   make(map[vir.Env]*vir.Interp),
		modEnvs:      make(map[hw.Frame]vir.Env),
		moduleProofs: make(map[string]ProofCounts),
	}
	k.engine.SetElide(defaultElision)
	k.engine.SetFuse(defaultFusion)
	k.cpus = make([]*cpuRun, k.M.NumCPUs())
	for i := range k.cpus {
		k.cpus[i] = &cpuRun{id: i}
	}
	k.lastCPU = len(k.cpus) - 1 // first schedStep starts at CPU 0
	k.epochMode = len(k.cpus) > 1
	k.hostPar = k.epochMode && defaultHostParallel
	k.installIntrinsics()
	hal.RegisterFrameSource(frameSource{m: k.M.Mem})
	hal.RegisterTrapHandler(k.trapEntry)
	fs, err := Mkfs(k, k.M.Disk)
	if err != nil {
		return nil, fmt.Errorf("kernel: mkfs: %w", err)
	}
	k.FS = fs
	k.Net = NewNetStack(k)
	// Join the clock's idle protocol: when every kernel sharing the
	// clock is idle but timers are armed, the schedulers skip virtual
	// time to the earliest expiry (sched.go idleAdvance).
	k.M.Clock.RegisterIdleSource(k)
	k.installSyscalls()
	// The kernel's own IR routines pass through the translator like
	// every other piece of OS code.
	if err := k.loadCoreModule(); err != nil {
		return nil, err
	}
	return k, nil
}

// installSyscalls populates the dispatch table.
func (k *Kernel) installSyscalls() {
	k.syscalls[SysExit] = sysExit
	k.syscalls[SysFork] = sysFork
	k.syscalls[SysRead] = sysRead
	k.syscalls[SysWrite] = sysWrite
	k.syscalls[SysOpen] = sysOpen
	k.syscalls[SysClose] = sysClose
	k.syscalls[SysWait4] = sysWait4
	k.syscalls[SysUnlink] = sysUnlink
	k.syscalls[SysGetpid] = sysGetpid
	k.syscalls[SysKill] = sysKill
	k.syscalls[SysSigact] = sysSigaction
	k.syscalls[SysSigret] = sysSigreturn
	k.syscalls[SysPipe] = sysPipe
	k.syscalls[SysSelect] = sysSelect
	k.syscalls[SysFsync] = sysFsync
	k.syscalls[SysExecve] = sysExecve
	k.syscalls[SysMmap] = sysMmap
	k.syscalls[SysMunmap] = sysMunmap
	k.syscalls[SysLseek] = sysLseek
	k.syscalls[SysMkdir] = sysMkdir
	k.syscalls[SysRmdir] = sysRmdir
	k.syscalls[SysStat] = sysStat
	k.syscalls[SysSbrk] = sysSbrk
	k.syscalls[SysSwapOut] = sysSwapOut
	k.syscalls[SysRandom] = sysRandom
	k.syscalls[SysYield] = sysYield
	k.syscalls[SysSocket] = sysSocket
	k.syscalls[SysConnect] = sysConnect
	k.syscalls[SysBind] = sysBind
	k.syscalls[SysListen] = sysListen
	k.syscalls[SysAccept] = sysAccept
	k.syscalls[SysSendTo] = sysSendTo
	k.syscalls[SysRecv] = sysRecv
	k.syscalls[SysPollCreate] = sysPollCreate
	k.syscalls[SysPollCtl] = sysPollCtl
	k.syscalls[SysPollWait] = sysPollWait
	k.syscalls[SysNonblock] = sysNonblock
	k.syscalls[SysSockTimeo] = sysSockTimeo
}

// SetSyscallHandler replaces a syscall handler and returns the previous
// one. This is the hook the rootkit module uses to interpose on read()
// (paper §7); it is also how legitimate modules extend the kernel.
func (k *Kernel) SetSyscallHandler(num uint64, h SyscallHandler) SyscallHandler {
	old := k.syscalls[num]
	k.syscalls[num] = h
	return old
}

// trapEntry is the kernel's first-level trap handler, invoked by the
// HAL after its own entry work.
func (k *Kernel) trapEntry(ic core.IContext, kind hw.TrapKind, info uint64) {
	p := k.cur
	if p == nil {
		panic("kernel: trap with no current process")
	}
	switch kind {
	case hw.TrapSyscall:
		k.stats.Syscalls++
		num := ic.SyscallNum()
		// Stamp trace events inside the dispatch with the syscall
		// context, and profile its cycle cost. Both are host-side
		// bookkeeping: no cycles are charged for them.
		ppid, pctx := k.M.Clock.Context()
		k.M.Clock.SetContext(int32(p.PID), uint32(num))
		start := k.M.Clock.Cycles()
		// Syscall dispatch is an indirect call through the table, and
		// the entry path touches the thread, credential, and syscall-
		// args structures.
		k.HAL.OnIndirectCall(1)
		k.HAL.KAccess(workSyscallDispatch)
		h, ok := k.syscalls[num]
		if !ok {
			ic.SetRet(errno(ENOSYS))
		} else {
			ic.SetRet(h(k, p, ic))
		}
		k.recordSyscall(num, k.M.Clock.Cycles()-start)
		k.M.Clock.SetContext(ppid, pctx)
	case hw.TrapPageFault:
		k.stats.PageFaults++
		k.handleFault(p, hw.Virt(info), ic)
	case hw.TrapTimer, hw.TrapDevice:
		// Quantum bookkeeping happens at yield points.
		k.HAL.KAccess(workTimerTick)
	case hw.TrapIllegal:
		k.forceExit(p, 128+4)
	}
	// Signal delivery happens on the return-to-user path (paper
	// §4.6.1); this may modify the interrupt context via the HAL.
	k.deliverSignals(p, ic)
}

// InstallProgram registers an executable. On Virtual Ghost the binary
// must have been produced by the trusted installer (core.Installer);
// exec validates it before the program may run.
func (k *Kernel) InstallProgram(name string, bin *core.Binary, main func(p *Proc)) {
	k.programs[name] = &Program{Bin: bin, Main: main}
}

// Program returns an installed program.
func (k *Kernel) Program(name string) (*Program, bool) {
	pr, ok := k.programs[name]
	return pr, ok
}

// PlantCode registers attacker-controlled code at an address. It models
// writing exploit bytes into a mapped buffer: the code is now *present*
// in the address space; whether control can ever be transferred to it
// is what the defences decide.
func (k *Kernel) PlantCode(addr uint64, fn PlantedFunc) {
	k.planted[addr] = fn
}

// PlantedAt looks up injected code.
func (k *Kernel) PlantedAt(addr uint64) (PlantedFunc, bool) {
	fn, ok := k.planted[addr]
	return fn, ok
}

// Console is a shortcut to the machine console.
func (k *Kernel) Console() *hw.Console { return k.M.Console }

// Stats returns a copy of the kernel counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Current returns the currently scheduled process (nil if none).
func (k *Kernel) Current() *Proc { return k.cur }

// Module is a loaded kernel module: its translation plus the
// interpreter environment it executes in.
type Module struct {
	Name        string
	Translation moduleTranslation
	kernel      *Kernel
	// fnNames lists the module's function names, recorded at load time
	// so per-module fusion tallies (ModuleFusion) can be assembled from
	// the engine's per-function counters.
	fnNames []string
	// irDigest is the SHA-256 of the module's canonical IR text,
	// recorded at load time. The ordered (name, digest) list is the
	// kernel's code-epoch identity: a snapshot taken on one kernel may
	// only be restored onto a kernel whose module history matches
	// (snapstate.go).
	irDigest [32]byte
}

// moduleTranslation abstracts over compiler.Translation to keep the
// kernel decoupled from compiler internals it does not need.
type moduleTranslation interface {
	Entry(name string) (uint64, bool)
	Verify() bool
	// Admitted reports whether the static admission checker proved the
	// sandbox/CFI invariants on the emitted code (or the pipeline
	// declares no admission requirement, as in the native baseline).
	Admitted() bool
}

// LoadModule submits module IR to the HAL's translator — under Virtual
// Ghost this applies sandboxing and CFI and refuses inline assembly —
// and links the module's intrinsic imports against kernel services.
// The returned Module can invoke module functions via RunModuleFunc.
func (k *Kernel) LoadModule(m *vir.Module) (*Module, error) {
	tr, err := k.HAL.TranslateModule(m)
	if err != nil {
		return nil, fmt.Errorf("kernel: module %q rejected by translator: %w", m.Name, err)
	}
	mod, err := k.admitModule(m.Name, tr)
	if err != nil {
		return nil, err
	}
	for _, fn := range m.Funcs {
		mod.fnNames = append(mod.fnNames, fn.Name)
	}
	mod.irDigest = sha256.Sum256([]byte(vir.FormatModule(m)))
	k.modules = append(k.modules, mod)
	return mod, nil
}

// admitModule gates a finished translation into the kernel's module
// list: the code must carry an admission proof (or come from a
// pipeline with no admission requirement) and its signature must still
// match — a translation altered after signing is refused.
func (k *Kernel) admitModule(name string, tr moduleTranslation) (*Module, error) {
	if !tr.Admitted() {
		return nil, fmt.Errorf("kernel: module %q refused: translation carries no admission proof", name)
	}
	if !tr.Verify() {
		return nil, fmt.Errorf("kernel: module %q refused: translation signature mismatch", name)
	}
	// Record elision-proof tallies when the translation carries them
	// (a type assertion so moduleTranslation stays minimal and fake
	// translations in tests need not implement it).
	if pc, ok := tr.(interface{ ProofCounts() (int, int) }); ok {
		masks, cfis := pc.ProofCounts()
		if masks+cfis > 0 {
			k.moduleProofs[name] = ProofCounts{Masks: masks, CFIs: cfis}
		}
	}
	return &Module{Name: name, Translation: tr, kernel: k}, nil
}

// RunModuleFunc executes a loaded module function in the context of the
// current process's address space, with kernel intrinsics available.
func (k *Kernel) RunModuleFunc(mod *Module, fn string, args ...uint64) (uint64, error) {
	addr, ok := mod.Translation.Entry(fn)
	if !ok {
		return 0, fmt.Errorf("kernel: module %q has no function %q", mod.Name, fn)
	}
	f, ok := k.HAL.CodeSpace().FuncByAddr(addr)
	if !ok {
		return 0, fmt.Errorf("kernel: module function %q not in code space", fn)
	}
	root := hw.Frame(0)
	if k.cur != nil {
		root = k.cur.root
	}
	env := k.moduleEnv(root)
	if k.engineKind == EngineReference {
		return k.refInterp(env).Call(f, args...)
	}
	return k.engine.Call(env, f, args...)
}

// moduleEnv returns the (cached) execution environment for module code
// under the given address-space root. Envs only capture the HAL and the
// root, so they stay valid for the kernel's lifetime.
func (k *Kernel) moduleEnv(root hw.Frame) vir.Env {
	if env, ok := k.modEnvs[root]; ok {
		return env
	}
	env := k.HAL.ModuleEnv(root, k.moduleIntrinsics)
	k.modEnvs[root] = env
	return env
}

// refInterp returns the (cached) reference interpreter for an Env.
// Caching keeps the step budget per top-level run even when a host
// intrinsic re-enters module code through RunModuleFunc.
func (k *Kernel) refInterp(env vir.Env) *vir.Interp {
	if ip, ok := k.refInterps[env]; ok {
		return ip
	}
	ip := vir.NewInterp(env)
	k.refInterps[env] = ip
	return ip
}
