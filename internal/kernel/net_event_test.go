package kernel

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/hw"
)

// mkFrame builds a raw wire frame (white-box: same layout as send).
func mkFrame(typ byte, src, dst uint16, data []byte) []byte {
	pl := make([]byte, netHdrSize+len(data))
	pl[0] = typ
	pl[1], pl[2] = byte(src), byte(src>>8)
	pl[3], pl[4] = byte(dst), byte(dst>>8)
	copy(pl[netHdrSize:], data)
	return pl
}

// TestPollDrainsPortsInSortedOrder pins the cross-port drain order:
// frames injected for ports 7002, 7000, 7001 must be delivered in
// ascending port order, not injection or map-iteration order. The
// witness is the idle-timer re-arm each delivery performs — wheel ids
// are a monotonic arm sequence, so delivery order is readable from the
// conns' timer ids after one Poll.
func TestPollDrainsPortsInSortedOrder(t *testing.T) {
	server, client, _ := bootPair(t)
	ports := []uint16{7000, 7001, 7002}
	for _, port := range ports {
		c := &Conn{local: port, remote: 9999, established: true, rxWindow: 1 << 20, idleTimeout: 1 << 30}
		server.Net.conns[port] = c
	}
	for _, port := range []uint16{7002, 7000, 7001} {
		client.M.NIC.Send(hw.Packet{Port: port, Payload: mkFrame(pktDATA, 9999, port, []byte{'x'})})
	}
	server.Net.Poll()
	var ids []timerID
	for _, port := range ports {
		c := server.Net.conns[port]
		if string(c.rx) != "x" {
			t.Fatalf("port %d rx = %q", port, c.rx)
		}
		ids = append(ids, c.idleTimer)
	}
	if !(ids[0] < ids[1] && ids[1] < ids[2]) {
		t.Errorf("drain order not ascending by port: timer ids %v", ids)
	}
}

// TestPortExhaustionEAGAIN (the allocPort fix): a drained ephemeral
// range returns EAGAIN instead of spinning forever, and closing a
// connection makes its port reusable.
func TestPortExhaustionEAGAIN(t *testing.T) {
	k, _, _ := bootPair(t)
	k.Net.SetEphemeralRange(40000, 40002) // three ephemeral ports
	var fourth, retry uint64
	if _, err := k.Spawn("hog", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 6000)
		p.Syscall(SysListen, sfd)
		var fds []uint64
		for i := 0; i < 3; i++ {
			fd := p.Syscall(SysSocket)
			p.Syscall(SysNonblock, fd, 1)
			if ret := p.Syscall(SysConnect, fd, 6000, LocalHost); ret != 0 {
				t.Errorf("connect %d failed: %d", i, int64(ret))
			}
			fds = append(fds, fd)
		}
		fd := p.Syscall(SysSocket)
		p.Syscall(SysNonblock, fd, 1)
		fourth = p.Syscall(SysConnect, fd, 6000, LocalHost)
		// Releasing one connection frees its port for reuse.
		p.Syscall(SysClose, fds[0])
		retry = p.Syscall(SysConnect, fd, 6000, LocalHost)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if e, bad := IsErr(fourth); !bad || e != EAGAIN {
		t.Errorf("4th connect = %d, want EAGAIN", int64(fourth))
	}
	if retry != 0 {
		t.Errorf("connect after close = %d, want success", int64(retry))
	}
}

// TestLateFrameDropCounters (the FIN-race fix): frames addressed to a
// port with no connection are dropped with accounting, not silently.
func TestLateFrameDropCounters(t *testing.T) {
	server, client, _ := bootPair(t)
	client.M.NIC.Send(hw.Packet{Port: 5555, Payload: mkFrame(pktDATA, 1234, 5555, []byte("late"))})
	client.M.NIC.Send(hw.Packet{Port: 5556, Payload: mkFrame(pktFIN, 1234, 5556, nil)})
	server.Net.Poll()
	st := server.Net.Stats()
	if st.LateDataDrops != 1 || st.LateFinDrops != 1 {
		t.Errorf("late drops = %+v", st)
	}
}

// TestRecvDrainsBufferedDataBeforeEOF: data that arrived before the
// peer's FIN is readable after it; EOF comes only once the buffer is
// empty.
func TestRecvDrainsBufferedDataBeforeEOF(t *testing.T) {
	k, _, _ := bootPair(t)
	var got string
	var eof bool
	if _, err := k.Spawn("p", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7100)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysSocket)
		p.Syscall(SysNonblock, cfd, 1) // loopback: accept runs in this proc
		p.Syscall(SysConnect, cfd, 7100, LocalHost)
		afd := p.Syscall(SysAccept, sfd)
		msg := p.PushString("hello")
		p.Syscall(SysSendTo, cfd, msg, 5)
		p.Syscall(SysClose, cfd) // FIN with "hello" still buffered
		buf := p.Alloc(16)
		n := p.Syscall(SysRecv, afd, buf, 16)
		got = string(p.Read(buf, int(n)))
		eof = p.Syscall(SysRecv, afd, buf, 16) == 0
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if got != "hello" || !eof {
		t.Errorf("got %q, eof=%v; want buffered data then EOF", got, eof)
	}
}

// TestDoubleClose: the second close of a socket fd is EBADF, and the
// underlying connection teardown is idempotent.
func TestDoubleClose(t *testing.T) {
	k, _, _ := bootPair(t)
	var second uint64
	if _, err := k.Spawn("p", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7200)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysSocket)
		p.Syscall(SysNonblock, cfd, 1)
		p.Syscall(SysConnect, cfd, 7200, LocalHost)
		p.Syscall(SysClose, cfd)
		second = p.Syscall(SysClose, cfd)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if e, bad := IsErr(second); !bad || e != EBADF {
		t.Errorf("double close = %d, want EBADF", int64(second))
	}
}

// TestWriteAfterPeerFIN: writing into a connection whose peer closed
// returns EPIPE and raises SIGPIPE.
func TestWriteAfterPeerFIN(t *testing.T) {
	k, _, _ := bootPair(t)
	var ret uint64
	sigpiped := false
	if _, err := k.Spawn("p", func(p *Proc) {
		addr := p.RegisterCode(func(p *Proc, args []uint64) { sigpiped = true })
		p.Syscall(SysSigact, SIGPIPE, addr)
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7300)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysSocket)
		p.Syscall(SysNonblock, cfd, 1)
		p.Syscall(SysConnect, cfd, 7300, LocalHost)
		afd := p.Syscall(SysAccept, sfd)
		p.Syscall(SysClose, afd) // server side FINs
		msg := p.PushString("doomed")
		ret = p.Syscall(SysSendTo, cfd, msg, 6)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if e, bad := IsErr(ret); !bad || e != EPIPE {
		t.Errorf("write after FIN = %d, want EPIPE", int64(ret))
	}
	if !sigpiped {
		t.Errorf("SIGPIPE not delivered")
	}
}

// TestBindReuseAfterTeardown: closing a listener releases its port for
// a fresh bind.
func TestBindReuseAfterTeardown(t *testing.T) {
	k, _, _ := bootPair(t)
	var rebind uint64
	done := false
	if _, err := k.Spawn("p", func(p *Proc) {
		defer func() { done = true }()
		a := p.Syscall(SysSocket)
		p.Syscall(SysBind, a, 7400)
		p.Syscall(SysListen, a)
		p.Syscall(SysClose, a)
		b := p.Syscall(SysSocket)
		rebind = p.Syscall(SysBind, b, 7400)
		p.Syscall(SysListen, b)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if !done {
		t.Fatal("proc stalled")
	}
	if rebind != 0 {
		t.Errorf("rebind after teardown = %d, want 0", int64(rebind))
	}
}

// TestSegmentationAtMTUBoundary: a send of exactly maxSegment bytes is
// one DATA frame; one more byte adds a second, 1-byte frame.
func TestSegmentationAtMTUBoundary(t *testing.T) {
	server, client, world := bootPair(t)
	var segs []int
	server.M.NIC.SetRecvTap(func(pkt hw.Packet) {
		if len(pkt.Payload) > 0 && pkt.Payload[0] == pktDATA {
			segs = append(segs, len(pkt.Payload)-netHdrSize)
		}
	})
	total := maxSegment + (maxSegment + 1)
	var received int
	if _, err := server.Spawn("srv", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7500)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysAccept, sfd)
		buf := p.Alloc(64 * 1024)
		for received < total {
			n := p.Syscall(SysRecv, cfd, buf, 64*1024)
			if _, bad := IsErr(n); bad || n == 0 {
				break
			}
			received += int(n)
		}
	}); err != nil {
		t.Fatal(err)
	}
	done := false
	if _, err := client.Spawn("cli", func(p *Proc) {
		fd := p.Syscall(SysSocket)
		p.Syscall(SysConnect, fd, 7500, RemoteHost)
		buf := p.Alloc(maxSegment + 1)
		p.Write(buf, bytes.Repeat([]byte{'a'}, maxSegment+1))
		p.Syscall(SysSendTo, fd, buf, uint64(maxSegment)) // exactly one MTU
		p.Syscall(SysSendTo, fd, buf, uint64(maxSegment+1))
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done && received >= total }) {
		t.Fatalf("stalled: %d/%d", received, total)
	}
	want := []int{maxSegment, maxSegment, 1}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segments = %v, want %v", segs, want)
		}
	}
}

// TestListenerBacklogCap: SYNs beyond the cap are dropped and counted.
func TestListenerBacklogCap(t *testing.T) {
	k, _, _ := bootPair(t)
	if _, err := k.Spawn("p", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7600)
		p.Syscall(SysListen, sfd, 2) // backlog cap 2
		for i := 0; i < 5; i++ {
			fd := p.Syscall(SysSocket)
			p.Syscall(SysNonblock, fd, 1)
			p.Syscall(SysConnect, fd, 7600, LocalHost)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if got := k.Net.Stats().SynDrops; got != 3 {
		t.Errorf("SynDrops = %d, want 3", got)
	}
}

// TestConnectRefused: a blocking connect to a port nobody listens on
// draws an RST and fails fast with ECONNREFUSED — it must not hang
// waiting for a SYNACK that will never come (the connect-before-listen
// race the epoch scheduler exposes).
func TestConnectRefused(t *testing.T) {
	server, client, world := bootPair(t)
	var ret uint64
	done := false
	if _, err := client.Spawn("cli", func(p *Proc) {
		fd := p.Syscall(SysSocket)
		ret = p.Syscall(SysConnect, fd, 9999, RemoteHost)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done }) {
		t.Fatal("connect never returned")
	}
	if e, bad := IsErr(ret); !bad || e != ECONNREFUSED {
		t.Errorf("connect = %d, want ECONNREFUSED", int64(ret))
	}
	if got := server.Net.Stats().RefusedSyns; got != 1 {
		t.Errorf("RefusedSyns = %d, want 1", got)
	}
}

// TestConnectTimeout: a SYN silently dropped by a full listener backlog
// (no RST — the TCP overflow shape) leaves the connect pending until
// its timeout fires on the wheel (virtual time skips to the expiry)
// instead of hanging forever.
func TestConnectTimeout(t *testing.T) {
	server, client, world := bootPair(t)
	if _, err := server.Spawn("srv", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7800)
		p.Syscall(SysListen, sfd, 1)
		// Never accepts on 7800: the one backlog slot stays occupied.
		// Park forever in a blocking accept on a second listener nobody
		// dials (keeps the proc — and with it the 7800 listener — alive).
		pfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, pfd, 7801)
		p.Syscall(SysListen, pfd)
		p.Syscall(SysAccept, pfd)
	}); err != nil {
		t.Fatal(err)
	}
	var ret uint64
	done := false
	if _, err := client.Spawn("cli", func(p *Proc) {
		f1 := p.Syscall(SysSocket)
		p.Syscall(SysNonblock, f1, 1)
		p.Syscall(SysConnect, f1, 7800, RemoteHost) // fills the backlog
		fd := p.Syscall(SysSocket)
		p.Syscall(SysSockTimeo, fd, 2_000_000)
		ret = p.Syscall(SysConnect, fd, 7800, RemoteHost)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done }) {
		t.Fatal("connect never timed out")
	}
	if e, bad := IsErr(ret); !bad || e != ETIMEDOUT {
		t.Errorf("connect = %d, want ETIMEDOUT", int64(ret))
	}
	if got := server.Net.Stats().SynDrops; got != 1 {
		t.Errorf("SynDrops = %d, want 1", got)
	}
}

// TestNonblockWindowBackpressure: with a small receive window, a
// nonblocking send returns a short count, then EAGAIN; draining the
// receiver reopens the window.
func TestNonblockWindowBackpressure(t *testing.T) {
	k, _, _ := bootPair(t)
	k.Net.SetRecvWindow(1024)
	var short, again, after uint64
	if _, err := k.Spawn("p", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7700)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysSocket)
		p.Syscall(SysNonblock, cfd, 1)
		p.Syscall(SysConnect, cfd, 7700, LocalHost)
		afd := p.Syscall(SysAccept, sfd)
		buf := p.Alloc(4096)
		p.Write(buf, bytes.Repeat([]byte{'b'}, 4096))
		short = p.Syscall(SysSendTo, cfd, buf, 4096)
		again = p.Syscall(SysSendTo, cfd, buf, 4096)
		rbuf := p.Alloc(4096)
		p.Syscall(SysRecv, afd, rbuf, 4096) // drain the window
		after = p.Syscall(SysSendTo, cfd, buf, 4096)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if short != 1024 {
		t.Errorf("first send = %d, want short count 1024", int64(short))
	}
	if e, bad := IsErr(again); !bad || e != EAGAIN {
		t.Errorf("send into full window = %d, want EAGAIN", int64(again))
	}
	if after != 1024 {
		t.Errorf("send after drain = %d, want 1024", int64(after))
	}
}

// TestBlockingWindowBackpressure: a bulk transfer much larger than the
// receive window completes intact across machines — the sender blocks
// on the window and resumes as the receiver drains.
func TestBlockingWindowBackpressure(t *testing.T) {
	server, client, world := bootPair(t)
	server.Net.SetRecvWindow(4096)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	var received []byte
	if _, err := server.Spawn("srv", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7800)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysAccept, sfd)
		buf := p.Alloc(2048)
		for len(received) < len(payload) {
			n := p.Syscall(SysRecv, cfd, buf, 2048)
			if _, bad := IsErr(n); bad || n == 0 {
				break
			}
			received = append(received, p.Read(buf, int(n))...)
		}
	}); err != nil {
		t.Fatal(err)
	}
	done := false
	if _, err := client.Spawn("cli", func(p *Proc) {
		fd := p.Syscall(SysSocket)
		p.Syscall(SysConnect, fd, 7800, RemoteHost)
		buf := p.Alloc(len(payload))
		p.Write(buf, payload)
		p.Syscall(SysSendTo, fd, buf, uint64(len(payload)))
		p.Syscall(SysClose, fd)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done && len(received) >= len(payload) }) {
		t.Fatalf("stalled at %d/%d", len(received), len(payload))
	}
	if !bytes.Equal(received, payload) {
		t.Error("payload corrupted under backpressure")
	}
}

// TestPollSyscalls: level-triggered readiness, poll-set edit errnos,
// and the poll-wait timeout driven by the wheel.
func TestPollSyscalls(t *testing.T) {
	k, _, _ := bootPair(t)
	var fail string
	done := false
	if _, err := k.Spawn("p", func(p *Proc) {
		defer func() { done = true }()
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7900)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysSocket)
		p.Syscall(SysNonblock, cfd, 1)
		p.Syscall(SysConnect, cfd, 7900, LocalHost)
		afd := p.Syscall(SysAccept, sfd)

		pfd := p.Syscall(SysPollCreate)
		if ret := p.Syscall(SysPollCtl, pfd, PollCtlAdd, afd, POLLIN); ret != 0 {
			fail = "add"
			return
		}
		if e, _ := IsErr(p.Syscall(SysPollCtl, pfd, PollCtlAdd, afd, POLLIN)); e != EEXIST {
			fail = "dup add not EEXIST"
			return
		}
		if e, _ := IsErr(p.Syscall(SysPollCtl, pfd, PollCtlMod, 99, POLLIN)); e != EBADF {
			fail = "mod of bad fd"
			return
		}
		if e, _ := IsErr(p.Syscall(SysPollCtl, pfd, PollCtlDel, sfd)); e != ENOENT {
			fail = "del of non-member not ENOENT"
			return
		}
		// Nothing readable yet: wait with a timeout, which must elapse
		// (virtual time skips to it) and report zero events.
		evb := p.Alloc(8 * 8)
		if n := p.Syscall(SysPollWait, pfd, evb, 8, 1_000_000); n != 0 {
			fail = "timeout wait returned events"
			return
		}
		// Send data; level-triggered POLLIN persists until drained.
		msg := p.PushString("abcdef")
		p.Syscall(SysSendTo, cfd, msg, 6)
		for i := 0; i < 2; i++ {
			if n := p.Syscall(SysPollWait, pfd, evb, 8, 0); n != 1 {
				fail = "pollwait count"
				return
			}
			if fd := p.Load(evb, 4); fd != afd {
				fail = "pollwait fd"
				return
			}
			if ev := p.Load(evb+4, 4); ev&POLLIN == 0 {
				fail = "no POLLIN"
				return
			}
		}
		buf := p.Alloc(16)
		p.Syscall(SysRecv, afd, buf, 16)
		if n := p.Syscall(SysPollWait, pfd, evb, 8, 500_000); n != 0 {
			fail = "drained socket still ready"
			return
		}
		// Peer close: POLLIN|POLLHUP even with only POLLIN interest.
		p.Syscall(SysClose, cfd)
		if n := p.Syscall(SysPollWait, pfd, evb, 8, 0); n != 1 {
			fail = "no event after close"
			return
		}
		if ev := p.Load(evb+4, 4); ev&POLLHUP == 0 || ev&POLLIN == 0 {
			fail = "close not POLLIN|POLLHUP"
			return
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if !done {
		t.Fatal("proc stalled")
	}
	if fail != "" {
		t.Fatal(fail)
	}
}

// TestNonblockingConnectAndAccept: EAGAIN disciplines and POLLOUT as
// connect completion.
func TestNonblockingConnectAndAccept(t *testing.T) {
	k, _, _ := bootPair(t)
	var fail string
	done := false
	if _, err := k.Spawn("p", func(p *Proc) {
		defer func() { done = true }()
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 8000)
		p.Syscall(SysListen, sfd)
		p.Syscall(SysNonblock, sfd, 1)
		if e, _ := IsErr(p.Syscall(SysAccept, sfd)); e != EAGAIN {
			fail = "accept on empty backlog not EAGAIN"
			return
		}
		cfd := p.Syscall(SysSocket)
		p.Syscall(SysNonblock, cfd, 1)
		if ret := p.Syscall(SysConnect, cfd, 8000, LocalHost); ret != 0 {
			fail = "nonblocking connect errored"
			return
		}
		afd := p.Syscall(SysAccept, sfd) // SYN queued: succeeds now
		if _, bad := IsErr(afd); bad {
			fail = "accept after SYN failed"
			return
		}
		// SYNACK (synchronous on loopback) established the client side:
		// POLLOUT reports.
		pfd := p.Syscall(SysPollCreate)
		p.Syscall(SysPollCtl, pfd, PollCtlAdd, cfd, POLLOUT)
		evb := p.Alloc(8)
		if n := p.Syscall(SysPollWait, pfd, evb, 1, 0); n != 1 {
			fail = "no POLLOUT after establish"
			return
		}
		if ev := p.Load(evb+4, 4); ev&POLLOUT == 0 {
			fail = "event not POLLOUT"
			return
		}
		// Nonblocking recv with nothing buffered: EAGAIN.
		buf := p.Alloc(8)
		if e, _ := IsErr(p.Syscall(SysRecv, afd, buf, 8)); e != EAGAIN {
			fail = "nonblock recv not EAGAIN"
			return
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if !done {
		t.Fatal("proc stalled")
	}
	if fail != "" {
		t.Fatal(fail)
	}
}

// TestNetSnapshotRoundTrip: armed timers block capture (quiescence);
// the NetSnap section restores the port cursor, window default, stats,
// and the timer-id sequence.
func TestNetSnapshotRoundTrip(t *testing.T) {
	k, client, _ := bootPair(t)
	// Accumulate some observable net state.
	client.M.NIC.Send(hw.Packet{Port: 4242, Payload: mkFrame(pktDATA, 1, 4242, []byte("x"))})
	k.Net.Poll() // LateDataDrops = 1
	k.Net.SetRecvWindow(8192)
	k.Net.nextPort = 45000
	id := k.Net.wheel.after(k.M.Clock.Cycles(), 50_000, func() {})
	if _, err := k.CaptureKernelSnap(); !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("capture with armed timer = %v, want ErrNotQuiescent", err)
	}
	k.Net.wheel.cancel(id)
	snap, err := k.CaptureKernelSnap()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Net.NextPort != 45000 || snap.Net.RecvWindow != 8192 || snap.Net.Stats.LateDataDrops != 1 {
		t.Fatalf("captured NetSnap = %+v", snap.Net)
	}
	wantSeq := snap.Net.TimerSeq
	// Perturb, then restore.
	k.Net.nextPort = 1
	k.Net.defWindow = 7
	k.Net.stats = NetStats{}
	k.Net.wheel = newTimerWheel(0)
	if err := k.ApplyKernelSnap(snap); err != nil {
		t.Fatal(err)
	}
	if k.Net.nextPort != 45000 || k.Net.defWindow != 8192 || k.Net.stats.LateDataDrops != 1 {
		t.Errorf("restored net state: port=%d win=%d stats=%+v", k.Net.nextPort, k.Net.defWindow, k.Net.stats)
	}
	if uint64(k.Net.wheel.nextID) != wantSeq {
		t.Errorf("timer seq = %d, want %d", k.Net.wheel.nextID, wantSeq)
	}
}
