package kernel

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

func TestForkSharesGhostMemory(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	var parentSaw, childSaw []byte
	_, err := k.Spawn("parent", func(p *Proc) {
		va, err := p.AllocGM(1)
		if err != nil {
			t.Fatalf("allocgm: %v", err)
		}
		p.Write(uint64(va), []byte("family secret"))
		p.Fork(func(c *Proc) {
			// Ghost memory is shared with the new thread (§4.6.2).
			childSaw = c.Read(uint64(va), 13)
			c.Write(uint64(va), []byte("child wrote !"))
			c.Exit(0)
		})
		p.Wait()
		parentSaw = p.Read(uint64(va), 13)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if string(childSaw) != "family secret" {
		t.Errorf("child saw %q", childSaw)
	}
	if string(parentSaw) != "child wrote !" {
		t.Errorf("parent saw %q (writes not shared)", parentSaw)
	}
}

func TestForkCopiesTraditionalMemory(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	var childSaw uint64
	var parentAfter uint64
	_, err := k.Spawn("parent", func(p *Proc) {
		buf := p.Alloc(8)
		p.Store(buf, 8, 111)
		p.Fork(func(c *Proc) {
			childSaw = c.Load(buf, 8)
			c.Store(buf, 8, 222) // must NOT affect the parent
			c.Exit(0)
		})
		p.Wait()
		parentAfter = p.Load(buf, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if childSaw != 111 {
		t.Errorf("child saw %d", childSaw)
	}
	if parentAfter != 111 {
		t.Errorf("child write leaked into the parent: %d", parentAfter)
	}
}

func TestExecClearsGhostMemory(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	if _, err := k.InstallTrustedProgram("/bin/next", nil, func(p *Proc) {
		// The new image must not inherit the old image's ghost pages.
		if p.Kernel().HAL.GhostPages(p.TID()) != 0 {
			t.Errorf("exec leaked %d ghost pages into the new image",
				p.Kernel().HAL.GhostPages(p.TID()))
		}
		p.Exit(0)
	}); err != nil {
		t.Fatal(err)
	}
	_, err := k.Spawn("orig", func(p *Proc) {
		if _, err := p.AllocGM(2); err != nil {
			t.Fatalf("allocgm: %v", err)
		}
		p.Fork(func(c *Proc) {
			if c.Kernel().HAL.GhostPages(c.TID()) != 2 {
				t.Errorf("fork did not inherit ghost pages")
			}
			_ = c.Exec("/bin/next")
			c.Exit(1)
		})
		_, code := p.Wait()
		if code != 0 {
			t.Errorf("exec'd child exited %d", code)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
}

func TestExecOfUnknownProgram(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	var errSeen bool
	_, err := k.Spawn("p", func(p *Proc) {
		if err := p.Exec("/bin/ghost-of-a-program"); err != nil {
			errSeen = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if !errSeen {
		t.Errorf("exec of missing program succeeded")
	}
}

func TestSIGKILLTerminates(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	var victimPID int
	ready := false
	iterations := 0
	if _, err := k.Spawn("victim", func(p *Proc) {
		victimPID = p.PID
		ready = true
		for {
			p.Syscall(SysYield)
			iterations++
			if iterations > 10000 {
				t.Errorf("victim survived SIGKILL")
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !k.RunUntil(func() bool { return ready }) {
		t.Fatal("victim never ready")
	}
	if _, err := k.Spawn("killer", func(p *Proc) {
		p.Syscall(SysKill, uint64(victimPID), SIGKILL)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if _, alive := k.ProcByPID(victimPID); alive {
		t.Errorf("victim still in the proc table")
	}
}

func TestSegfaultKillsProcess(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		finished := false
		_, err := k.Spawn("segv", func(p *Proc) {
			p.Load(0xdead0000, 8) // far outside every VMA
			finished = true       // unreachable
		})
		if err != nil {
			t.Fatal(err)
		}
		k.RunUntilIdle()
		if finished {
			t.Errorf("[%v] wild access did not kill the process", mode)
		}
	}
}

func TestGhostSwapSyscallRoundTrip(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	var after []byte
	_, err := k.Spawn("swapper", func(p *Proc) {
		va, _ := p.AllocGM(1)
		p.Write(uint64(va), []byte("page contents"))
		if ret := p.Syscall(SysSwapOut, uint64(va)); ret != 0 {
			t.Fatalf("swap-out: %d", int64(ret))
		}
		if k.HAL.GhostPages(p.TID()) != 0 {
			t.Errorf("page still resident")
		}
		// Touch → fault → verified swap-in.
		after = p.Read(uint64(va), 13)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if string(after) != "page contents" {
		t.Errorf("after swap: %q", after)
	}
}

func TestFileDescriptorsSharedAcrossFork(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	k.WriteKernelFile("/shared.txt", []byte("0123456789"))
	var parentRead []byte
	_, err := k.Spawn("p", func(p *Proc) {
		path := p.PushString("/shared.txt")
		fd := p.Syscall(SysOpen, path, ORdOnly)
		p.Fork(func(c *Proc) {
			// The child advances the shared offset.
			buf := c.Alloc(5)
			c.Syscall(SysRead, fd, buf, 5)
			c.Exit(0)
		})
		p.Wait()
		buf := p.Alloc(5)
		n := p.Syscall(SysRead, fd, buf, 5)
		parentRead = p.Read(buf, int(n))
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if string(parentRead) != "56789" {
		t.Errorf("shared offset broken: parent read %q", parentRead)
	}
}

func TestZombieReaping(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	_, err := k.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Fork(func(c *Proc) { c.Exit(i) })
			p.Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if n := k.NumLive(); n != 0 {
		t.Errorf("%d processes leaked", n)
	}
}

func TestFrameAccountingAcrossProcessLifecycle(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		free0 := k.M.Mem.FreeFrames()
		_, err := k.Spawn("p", func(p *Proc) {
			buf := p.Alloc(5 * hw.PageSize)
			p.Write(buf, bytes.Repeat([]byte{1}, 5*hw.PageSize))
			if _, err := p.AllocGM(3); err != nil {
				t.Fatalf("allocgm: %v", err)
			}
			base := p.Syscall(SysMmap, 4*hw.PageSize, ^uint64(0), 0)
			p.Store(base, 8, 7)
		})
		if err != nil {
			t.Fatal(err)
		}
		k.RunUntilIdle()
		if free1 := k.M.Mem.FreeFrames(); free1 != free0 {
			t.Errorf("[%v] frames leaked: %d -> %d", mode, free0, free1)
		}
	}
}

func TestSignalDuringBlockedSyscall(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	handled := false
	var pid int
	ready := false
	if _, err := k.Spawn("reader", func(p *Proc) {
		pid = p.PID
		addr := p.RegisterCode(func(p *Proc, args []uint64) { handled = true })
		if err := p.PermitFunction(addr); err != nil {
			t.Fatal(err)
		}
		p.Syscall(SysSigact, SIGUSR1, addr)
		fdsPtr := p.Alloc(8)
		p.Syscall(SysPipe, fdsPtr)
		rfd := p.Load(fdsPtr, 4)
		ready = true
		buf := p.Alloc(8)
		p.Syscall(SysRead, rfd, buf, 8) // blocks until the writer runs
	}); err != nil {
		t.Fatal(err)
	}
	if !k.RunUntil(func() bool { return ready }) {
		t.Fatal("reader never blocked")
	}
	if _, err := k.Spawn("signaler", func(p *Proc) {
		p.Syscall(SysKill, uint64(pid), SIGUSR1)
	}); err != nil {
		t.Fatal(err)
	}
	// Unblock the reader by feeding the pipe from a third process that
	// shares... it cannot (fds are per-process); instead let the reader
	// stay blocked and verify delivery on kill: the signal is delivered
	// on the signaler's kill path at the reader's next trap return.
	k.RunUntilIdle()
	_ = handled // delivery timing is checked by TestSignalDelivery; the
	// invariant here is just that nothing deadlocks or panics.
}

func TestStatsCounters(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	_, err := k.Spawn("p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Syscall(SysGetpid)
		}
		p.Fork(func(c *Proc) { c.Exit(0) })
		p.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	st := k.Stats()
	if st.Syscalls < 12 || st.ForksCreated != 1 || st.ContextSwitch == 0 {
		t.Errorf("stats: %+v", st)
	}
}

// TestNestedSignalDelivery: a handler interrupted by a second signal;
// the VM's interrupt-context stack must restore states in LIFO order.
func TestNestedSignalDelivery(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	var order []int
	_, err := k.Spawn("nest", func(p *Proc) {
		var inner uint64
		innerAddr := p.RegisterCode(func(p *Proc, args []uint64) {
			order = append(order, 2)
		})
		outerAddr := p.RegisterCode(func(p *Proc, args []uint64) {
			order = append(order, 1)
			// Signal ourselves from inside the handler: delivered on
			// the kill syscall's return-to-user path, nesting the
			// contexts.
			p.Syscall(SysKill, uint64(p.PID), SIGUSR2)
			order = append(order, 3)
		})
		if err := p.PermitFunction(innerAddr); err != nil {
			t.Fatal(err)
		}
		if err := p.PermitFunction(outerAddr); err != nil {
			t.Fatal(err)
		}
		p.Syscall(SysSigact, SIGUSR1, outerAddr)
		p.Syscall(SysSigact, SIGUSR2, innerAddr)
		p.Syscall(SysKill, uint64(p.PID), SIGUSR1)
		order = append(order, 4)
		_ = inner
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	want := []int{1, 2, 3, 4}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
