package kernel

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/hw"
)

// This file is the disk-backed UFS-like file system: superblock, inode
// and block bitmaps, a fixed inode table, 12 direct + 1 indirect block
// pointers per inode, and 64-byte directory entries. All metadata and
// data I/O flows through the buffer cache.

// On-disk geometry.
const (
	fsMagic        = 0x56474653 // "VGFS"
	inodeSize      = 64
	inodesPerBlock = hw.BlockSize / inodeSize
	ndirect        = 10 // 10 direct pointers fit the 64-byte inode
	nindirect      = hw.BlockSize / 4
	direntSize     = 64
	direntsPerBlk  = hw.BlockSize / direntSize
	maxNameLen     = 56
	// MaxFileSize is the largest file the inode geometry supports.
	MaxFileSize = (ndirect + nindirect) * hw.BlockSize
)

// Inode modes.
const (
	modeFree = 0
	modeFile = 1
	modeDir  = 2
)

// RootIno is the root directory's inode number.
const RootIno uint32 = 1

// Errors returned by the file system.
var (
	ErrNotFound = errors.New("ufs: no such file or directory")
	ErrExists   = errors.New("ufs: file exists")
	ErrIsDir    = errors.New("ufs: is a directory")
	ErrNotDir   = errors.New("ufs: not a directory")
	ErrNotEmpty = errors.New("ufs: directory not empty")
	ErrNoSpace  = errors.New("ufs: out of space")
	ErrTooBig   = errors.New("ufs: file too large")
	ErrBadName  = errors.New("ufs: bad file name")
)

// inode is the in-memory image of an on-disk inode.
type inode struct {
	Mode     uint16
	Nlink    uint16
	Size     int64
	Direct   [ndirect]uint32
	Indirect uint32
}

// Stat describes a file for the stat syscall.
type FileStat struct {
	Ino   uint32
	Size  int64
	IsDir bool
	Nlink int
}

// FS is a mounted file system.
type FS struct {
	k     *Kernel
	cache *BufCache

	nblocks     int
	ninodes     int
	inodeBitmap int // block index
	blockBitmap int
	inodeStart  int
	dataStart   int

	// namecache maps (directory inode, name) to (inode, slot) — the
	// vnode name cache every BSD kernel keeps, making repeated lookups
	// O(1) instead of a directory scan.
	namecache map[nckey]ncval
	// freeSlotHint remembers the lowest possibly-free dirent slot per
	// directory so inserts do not rescan from the start.
	freeSlotHint map[uint32]int
	// blockRotor/inodeRotor remember where the last bitmap search
	// ended (FFS-style rotor) so allocation stays O(1) amortized.
	blockRotor int
	inodeRotor int
}

type nckey struct {
	dir  uint32
	name string
}

type ncval struct {
	ino  uint32
	slot int
}

// Mkfs formats the machine's disk and mounts a fresh file system with a
// root directory.
func Mkfs(k *Kernel, disk *hw.Disk) (*FS, error) {
	fs := &FS{
		k:            k,
		cache:        NewBufCache(k, disk, 2048),
		nblocks:      disk.NumBlocks(),
		ninodes:      8192,
		namecache:    make(map[nckey]ncval),
		freeSlotHint: make(map[uint32]int),
	}
	fs.inodeBitmap = 1
	fs.blockBitmap = 2
	// Block bitmap: 1 block covers 32768 blocks.
	nbb := (fs.nblocks + hw.BlockSize*8 - 1) / (hw.BlockSize * 8)
	fs.inodeStart = fs.blockBitmap + nbb
	fs.dataStart = fs.inodeStart + fs.ninodes/inodesPerBlock
	// Zero the metadata area.
	for b := 0; b < fs.dataStart; b++ {
		if err := fs.cache.Zero(b); err != nil {
			return nil, err
		}
	}
	// Superblock.
	sb := make([]byte, hw.BlockSize)
	putU32(sb[0:], fsMagic)
	putU32(sb[4:], uint32(fs.nblocks))
	putU32(sb[8:], uint32(fs.ninodes))
	putU32(sb[12:], uint32(fs.dataStart))
	if err := fs.cache.Write(0, sb); err != nil {
		return nil, err
	}
	// Reserve inode 0 (invalid) and create the root directory at
	// inode 1.
	if err := fs.bitmapSet(fs.inodeBitmap, 0, true); err != nil {
		return nil, err
	}
	if err := fs.bitmapSet(fs.inodeBitmap, 1, true); err != nil {
		return nil, err
	}
	root := &inode{Mode: modeDir, Nlink: 1}
	if err := fs.writeInode(RootIno, root); err != nil {
		return nil, err
	}
	// Mark metadata blocks used in the block bitmap.
	for b := 0; b < fs.dataStart; b++ {
		if err := fs.bitmapSet(fs.blockBitmap, b, true); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// Cache exposes the buffer cache (for sync and statistics).
func (fs *FS) Cache() *BufCache { return fs.cache }

// --- bitmaps ------------------------------------------------------------

func (fs *FS) bitmapSet(bitmapBlk, idx int, val bool) error {
	blk := bitmapBlk + idx/(hw.BlockSize*8)
	bit := idx % (hw.BlockSize * 8)
	b, err := fs.cache.get(blk)
	if err != nil {
		return err
	}
	if val {
		b.data[bit/8] |= 1 << (bit % 8)
	} else {
		b.data[bit/8] &^= 1 << (bit % 8)
	}
	b.dirty = true
	return nil
}

func (fs *FS) bitmapGet(bitmapBlk, idx int) (bool, error) {
	blk := bitmapBlk + idx/(hw.BlockSize*8)
	bit := idx % (hw.BlockSize * 8)
	b, err := fs.cache.get(blk)
	if err != nil {
		return false, err
	}
	return b.data[bit/8]&(1<<(bit%8)) != 0, nil
}

func (fs *FS) bitmapFindFree(bitmapBlk, limit, start int) (int, error) {
	if start >= limit || start < 0 {
		start = 0
	}
	// Scan [start, limit) then wrap to [0, start).
	for pass := 0; pass < 2; pass++ {
		lo, hi := start, limit
		if pass == 1 {
			lo, hi = 0, start
		}
		for idx := lo; idx < hi; {
			blk := bitmapBlk + idx/(hw.BlockSize*8)
			b, err := fs.cache.get(blk)
			if err != nil {
				return -1, err
			}
			bit := idx % (hw.BlockSize * 8)
			byt := b.data[bit/8]
			if byt == 0xff && bit%8 == 0 && idx+8 <= hi {
				idx += 8
				continue
			}
			if byt&(1<<(bit%8)) == 0 {
				return idx, nil
			}
			idx++
		}
	}
	return -1, ErrNoSpace
}

// allocBlock allocates a data block (zeroed in cache).
func (fs *FS) allocBlock() (uint32, error) {
	idx, err := fs.bitmapFindFree(fs.blockBitmap, fs.nblocks, fs.blockRotor)
	if err != nil {
		return 0, err
	}
	fs.blockRotor = idx + 1
	if err := fs.bitmapSet(fs.blockBitmap, idx, true); err != nil {
		return 0, err
	}
	if err := fs.cache.Zero(idx); err != nil {
		return 0, err
	}
	return uint32(idx), nil
}

func (fs *FS) freeBlock(blk uint32) error {
	if int(blk) < fs.blockRotor {
		fs.blockRotor = int(blk)
	}
	return fs.bitmapSet(fs.blockBitmap, int(blk), false)
}

// allocInode allocates an inode number.
func (fs *FS) allocInode() (uint32, error) {
	idx, err := fs.bitmapFindFree(fs.inodeBitmap, fs.ninodes, fs.inodeRotor)
	if err != nil {
		return 0, err
	}
	fs.inodeRotor = idx + 1
	if err := fs.bitmapSet(fs.inodeBitmap, idx, true); err != nil {
		return 0, err
	}
	return uint32(idx), nil
}

func (fs *FS) freeInode(ino uint32) error {
	if int(ino) < fs.inodeRotor {
		fs.inodeRotor = int(ino)
	}
	return fs.bitmapSet(fs.inodeBitmap, int(ino), false)
}

// --- inode I/O -----------------------------------------------------------

func (fs *FS) inodeLoc(ino uint32) (blk, off int) {
	return fs.inodeStart + int(ino)/inodesPerBlock, (int(ino) % inodesPerBlock) * inodeSize
}

func (fs *FS) readInode(ino uint32) (*inode, error) {
	if ino == 0 || int(ino) >= fs.ninodes {
		return nil, fmt.Errorf("ufs: bad inode %d", ino)
	}
	blk, off := fs.inodeLoc(ino)
	b, err := fs.cache.get(blk)
	if err != nil {
		return nil, err
	}
	d := b.data[off : off+inodeSize]
	in := &inode{
		Mode:  uint16(d[0]) | uint16(d[1])<<8,
		Nlink: uint16(d[2]) | uint16(d[3])<<8,
		Size:  int64(getU64(d[8:])),
	}
	for i := 0; i < ndirect; i++ {
		in.Direct[i] = getU32(d[16+4*i:])
	}
	in.Indirect = getU32(d[16+4*ndirect:])
	return in, nil
}

func (fs *FS) writeInode(ino uint32, in *inode) error {
	blk, off := fs.inodeLoc(ino)
	b, err := fs.cache.get(blk)
	if err != nil {
		return err
	}
	d := b.data[off : off+inodeSize]
	d[0], d[1] = byte(in.Mode), byte(in.Mode>>8)
	d[2], d[3] = byte(in.Nlink), byte(in.Nlink>>8)
	putU64(d[8:], uint64(in.Size))
	for i := 0; i < ndirect; i++ {
		putU32(d[16+4*i:], in.Direct[i])
	}
	putU32(d[16+4*ndirect:], in.Indirect)
	b.dirty = true
	return nil
}

// blockOf maps a file block index to a disk block, allocating if
// requested.
func (fs *FS) blockOf(ino uint32, in *inode, fileBlk int, alloc bool) (uint32, error) {
	if fileBlk < ndirect {
		if in.Direct[fileBlk] == 0 {
			if !alloc {
				return 0, nil
			}
			nb, err := fs.allocBlock()
			if err != nil {
				return 0, err
			}
			in.Direct[fileBlk] = nb
			if err := fs.writeInode(ino, in); err != nil {
				return 0, err
			}
		}
		return in.Direct[fileBlk], nil
	}
	idx := fileBlk - ndirect
	if idx >= nindirect {
		return 0, ErrTooBig
	}
	if in.Indirect == 0 {
		if !alloc {
			return 0, nil
		}
		nb, err := fs.allocBlock()
		if err != nil {
			return 0, err
		}
		in.Indirect = nb
		if err := fs.writeInode(ino, in); err != nil {
			return 0, err
		}
	}
	ib, err := fs.cache.get(int(in.Indirect))
	if err != nil {
		return 0, err
	}
	blk := getU32(ib.data[4*idx:])
	if blk == 0 && alloc {
		nb, err := fs.allocBlock()
		if err != nil {
			return 0, err
		}
		// Re-fetch: allocBlock may have evicted the indirect block.
		ib, err = fs.cache.get(int(in.Indirect))
		if err != nil {
			return 0, err
		}
		putU32(ib.data[4*idx:], nb)
		ib.dirty = true
		blk = nb
	}
	return blk, nil
}

// --- file data I/O --------------------------------------------------------

// ReadAt reads up to len(b) bytes of file ino at offset off.
func (fs *FS) ReadAt(ino uint32, b []byte, off int64) (int, error) {
	in, err := fs.readInode(ino)
	if err != nil {
		return 0, err
	}
	if in.Mode == modeFree {
		return 0, ErrNotFound
	}
	if off >= in.Size {
		return 0, nil
	}
	n := len(b)
	if int64(n) > in.Size-off {
		n = int(in.Size - off)
	}
	fs.k.HAL.KAccess(workReadWritePerPage * (n/hw.BlockSize + 1))
	read := 0
	for read < n {
		fb := int((off + int64(read)) / hw.BlockSize)
		bo := int((off + int64(read)) % hw.BlockSize)
		chunk := hw.BlockSize - bo
		if chunk > n-read {
			chunk = n - read
		}
		blk, err := fs.blockOf(ino, in, fb, false)
		if err != nil {
			return read, err
		}
		if blk == 0 {
			// Hole: zeros.
			for i := 0; i < chunk; i++ {
				b[read+i] = 0
			}
		} else if err := fs.cache.ReadPartial(int(blk), bo, chunk, b[read:read+chunk]); err != nil {
			return read, err
		}
		read += chunk
	}
	return read, nil
}

// WriteAt writes b at offset off, growing the file as needed.
func (fs *FS) WriteAt(ino uint32, b []byte, off int64) (int, error) {
	in, err := fs.readInode(ino)
	if err != nil {
		return 0, err
	}
	if in.Mode == modeFree {
		return 0, ErrNotFound
	}
	if off+int64(len(b)) > MaxFileSize {
		return 0, ErrTooBig
	}
	fs.k.HAL.KAccess(workReadWritePerPage * (len(b)/hw.BlockSize + 1))
	written := 0
	for written < len(b) {
		fb := int((off + int64(written)) / hw.BlockSize)
		bo := int((off + int64(written)) % hw.BlockSize)
		chunk := hw.BlockSize - bo
		if chunk > len(b)-written {
			chunk = len(b) - written
		}
		blk, err := fs.blockOf(ino, in, fb, true)
		if err != nil {
			return written, err
		}
		if err := fs.cache.WritePartial(int(blk), bo, b[written:written+chunk]); err != nil {
			return written, err
		}
		written += chunk
	}
	if off+int64(written) > in.Size {
		in.Size = off + int64(written)
		if err := fs.writeInode(ino, in); err != nil {
			return written, err
		}
	}
	return written, nil
}

// truncate frees all blocks of an inode and zeroes its size.
func (fs *FS) truncate(ino uint32, in *inode) error {
	for i := 0; i < ndirect; i++ {
		if in.Direct[i] != 0 {
			if err := fs.freeBlock(in.Direct[i]); err != nil {
				return err
			}
			in.Direct[i] = 0
		}
	}
	if in.Indirect != 0 {
		ib, err := fs.cache.get(int(in.Indirect))
		if err != nil {
			return err
		}
		for i := 0; i < nindirect; i++ {
			blk := getU32(ib.data[4*i:])
			if blk != 0 {
				if err := fs.freeBlock(blk); err != nil {
					return err
				}
			}
		}
		if err := fs.freeBlock(in.Indirect); err != nil {
			return err
		}
		in.Indirect = 0
	}
	in.Size = 0
	return fs.writeInode(ino, in)
}

// --- directories -----------------------------------------------------------

// dirent is one directory entry slot.
type dirent struct {
	Ino  uint32
	Name string
}

// dirScan iterates a directory's entries, calling fn with each live
// entry's slot index; fn returning true stops the scan. The scan reads
// the directory block-wise through the buffer cache (64 entries per
// block), so its cost is per-block, not per-entry — the same complexity
// class as UFS dirhash probing.
func (fs *FS) dirScan(dirIno uint32, din *inode, fn func(slot int, e dirent) bool) error {
	slots := int(din.Size) / direntSize
	for fb := 0; fb*direntsPerBlk < slots; fb++ {
		fs.k.HAL.KAccess(workBufCacheHit)
		blk, err := fs.blockOf(dirIno, din, fb, false)
		if err != nil {
			return err
		}
		if blk == 0 {
			continue // hole: all-free slots
		}
		b, err := fs.cache.get(int(blk))
		if err != nil {
			return err
		}
		for i := 0; i < direntsPerBlk; i++ {
			s := fb*direntsPerBlk + i
			if s >= slots {
				break
			}
			d := b.data[i*direntSize : (i+1)*direntSize]
			ino := getU32(d[0:])
			if ino == 0 {
				continue
			}
			nl := int(d[4])
			if nl > maxNameLen {
				nl = maxNameLen
			}
			if fn(s, dirent{Ino: ino, Name: string(d[8 : 8+nl])}) {
				return nil
			}
		}
	}
	return nil
}

// dirLookup finds name in the directory.
func (fs *FS) dirLookup(dirIno uint32, name string) (uint32, int, error) {
	din, err := fs.readInode(dirIno)
	if err != nil {
		return 0, -1, err
	}
	if din.Mode != modeDir {
		return 0, -1, ErrNotDir
	}
	fs.k.HAL.KAccess(workNameiPerComponent)
	if v, ok := fs.namecache[nckey{dirIno, name}]; ok {
		if v.ino == 0 {
			return 0, -1, ErrNotFound // cached negative entry
		}
		return v.ino, v.slot, nil
	}
	found := uint32(0)
	slot := -1
	err = fs.dirScan(dirIno, din, func(s int, e dirent) bool {
		if e.Name == name {
			found, slot = e.Ino, s
			return true
		}
		return false
	})
	if err != nil {
		return 0, -1, err
	}
	if found == 0 {
		// Cache the negative result (BSD namecache does the same);
		// dirInsert replaces it when the name appears.
		fs.namecache[nckey{dirIno, name}] = ncval{}
		return 0, -1, ErrNotFound
	}
	fs.namecache[nckey{dirIno, name}] = ncval{ino: found, slot: slot}
	return found, slot, nil
}

// dirInsert adds an entry, reusing a free slot if one exists.
func (fs *FS) dirInsert(dirIno uint32, name string, ino uint32) error {
	if len(name) == 0 || len(name) > maxNameLen || strings.Contains(name, "/") {
		return ErrBadName
	}
	din, err := fs.readInode(dirIno)
	if err != nil {
		return err
	}
	slots := int(din.Size) / direntSize
	freeSlot := slots
	for s := fs.freeSlotHint[dirIno]; s < slots; s++ {
		if s%direntsPerBlk == 0 {
			fs.k.HAL.KAccess(workBufCacheHit)
		}
		blk, err := fs.blockOf(dirIno, din, s/direntsPerBlk, false)
		if err != nil {
			return err
		}
		if blk == 0 {
			freeSlot = s
			break
		}
		b, err := fs.cache.get(int(blk))
		if err != nil {
			return err
		}
		if getU32(b.data[(s%direntsPerBlk)*direntSize:]) == 0 {
			freeSlot = s
			break
		}
	}
	e := make([]byte, direntSize)
	putU32(e[0:], ino)
	e[4] = byte(len(name))
	copy(e[8:], name)
	if _, err := fs.WriteAt(dirIno, e, int64(freeSlot)*direntSize); err != nil {
		return err
	}
	fs.namecache[nckey{dirIno, name}] = ncval{ino: ino, slot: freeSlot}
	fs.freeSlotHint[dirIno] = freeSlot + 1
	return nil
}

// dirRemove clears the entry in the given slot.
func (fs *FS) dirRemove(dirIno uint32, name string, slot int) error {
	e := make([]byte, direntSize)
	if _, err := fs.WriteAt(dirIno, e, int64(slot)*direntSize); err != nil {
		return err
	}
	delete(fs.namecache, nckey{dirIno, name})
	if slot < fs.freeSlotHint[dirIno] {
		fs.freeSlotHint[dirIno] = slot
	}
	return nil
}

// dirEmpty reports whether the directory has no live entries.
func (fs *FS) dirEmpty(dirIno uint32) (bool, error) {
	din, err := fs.readInode(dirIno)
	if err != nil {
		return false, err
	}
	empty := true
	err = fs.dirScan(dirIno, din, func(s int, e dirent) bool {
		empty = false
		return true
	})
	return empty, err
}

// --- path operations ---------------------------------------------------------

// splitPath normalizes an absolute path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, ErrBadName
	}
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(comps) > 0 {
				comps = comps[:len(comps)-1]
			}
		default:
			comps = append(comps, c)
		}
	}
	return comps, nil
}

// walk resolves all but the last component, returning the parent
// directory inode and the final name.
func (fs *FS) walk(path string) (parent uint32, name string, err error) {
	comps, err := splitPath(path)
	if err != nil {
		return 0, "", err
	}
	if len(comps) == 0 {
		return 0, "", ErrBadName
	}
	dir := RootIno
	for _, c := range comps[:len(comps)-1] {
		next, _, err := fs.dirLookup(dir, c)
		if err != nil {
			return 0, "", err
		}
		dir = next
	}
	return dir, comps[len(comps)-1], nil
}

// Lookup resolves a path to an inode.
func (fs *FS) Lookup(path string) (uint32, error) {
	comps, err := splitPath(path)
	if err != nil {
		return 0, err
	}
	dir := RootIno
	for _, c := range comps {
		next, _, err := fs.dirLookup(dir, c)
		if err != nil {
			return 0, err
		}
		dir = next
	}
	return dir, nil
}

// Create makes a new regular file (error if it exists).
func (fs *FS) Create(path string) (uint32, error) {
	parent, name, err := fs.walk(path)
	if err != nil {
		return 0, err
	}
	if _, _, err := fs.dirLookup(parent, name); err == nil {
		return 0, ErrExists
	}
	fs.k.HAL.KAccess(workCreateFile)
	ino, err := fs.allocInode()
	if err != nil {
		return 0, err
	}
	in := &inode{Mode: modeFile, Nlink: 1}
	if err := fs.writeInode(ino, in); err != nil {
		return 0, err
	}
	if err := fs.dirInsert(parent, name, ino); err != nil {
		return 0, err
	}
	return ino, nil
}

// Mkdir makes a directory.
func (fs *FS) Mkdir(path string) (uint32, error) {
	parent, name, err := fs.walk(path)
	if err != nil {
		return 0, err
	}
	if _, _, err := fs.dirLookup(parent, name); err == nil {
		return 0, ErrExists
	}
	fs.k.HAL.KAccess(workCreateFile)
	ino, err := fs.allocInode()
	if err != nil {
		return 0, err
	}
	in := &inode{Mode: modeDir, Nlink: 1}
	if err := fs.writeInode(ino, in); err != nil {
		return 0, err
	}
	if err := fs.dirInsert(parent, name, ino); err != nil {
		return 0, err
	}
	return ino, nil
}

// Unlink removes a file (or an empty directory when rmdir is set).
func (fs *FS) Unlink(path string, rmdir bool) error {
	parent, name, err := fs.walk(path)
	if err != nil {
		return err
	}
	ino, slot, err := fs.dirLookup(parent, name)
	if err != nil {
		return err
	}
	in, err := fs.readInode(ino)
	if err != nil {
		return err
	}
	if in.Mode == modeDir {
		if !rmdir {
			return ErrIsDir
		}
		empty, err := fs.dirEmpty(ino)
		if err != nil {
			return err
		}
		if !empty {
			return ErrNotEmpty
		}
	} else if rmdir {
		return ErrNotDir
	}
	fs.k.HAL.KAccess(workUnlinkFile)
	if err := fs.dirRemove(parent, name, slot); err != nil {
		return err
	}
	in.Nlink--
	if in.Nlink == 0 {
		if err := fs.truncate(ino, in); err != nil {
			return err
		}
		in.Mode = modeFree
		if err := fs.writeInode(ino, in); err != nil {
			return err
		}
		return fs.freeInode(ino)
	}
	return fs.writeInode(ino, in)
}

// Stat describes an inode.
func (fs *FS) Stat(ino uint32) (FileStat, error) {
	in, err := fs.readInode(ino)
	if err != nil {
		return FileStat{}, err
	}
	if in.Mode == modeFree {
		return FileStat{}, ErrNotFound
	}
	return FileStat{Ino: ino, Size: in.Size, IsDir: in.Mode == modeDir, Nlink: int(in.Nlink)}, nil
}

// ReadDir lists a directory's entries.
func (fs *FS) ReadDir(path string) ([]string, error) {
	ino, err := fs.Lookup(path)
	if err != nil {
		return nil, err
	}
	din, err := fs.readInode(ino)
	if err != nil {
		return nil, err
	}
	if din.Mode != modeDir {
		return nil, ErrNotDir
	}
	var names []string
	err = fs.dirScan(ino, din, func(s int, e dirent) bool {
		names = append(names, e.Name)
		return false
	})
	return names, err
}

// Sync flushes the buffer cache.
func (fs *FS) Sync() error { return fs.cache.Sync() }

// --- little-endian helpers ---------------------------------------------------

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
