package kernel

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

// bootKernel boots a kernel on the requested mode for tests.
func bootKernel(t *testing.T, mode core.Mode) *Kernel {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	var hal core.HAL
	var err error
	switch mode {
	case core.ModeVirtualGhost:
		hal, err = core.NewVM(m)
	default:
		hal, err = core.NewNativeHAL(m)
	}
	if err != nil {
		t.Fatalf("HAL: %v", err)
	}
	k, err := Boot(hal)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return k
}

func modes() []core.Mode { return []core.Mode{core.ModeNative, core.ModeVirtualGhost} }

func TestNullSyscall(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		var got uint64
		_, err := k.Spawn("t", func(p *Proc) {
			got = p.Syscall(SysGetpid)
		})
		if err != nil {
			t.Fatalf("[%v] Spawn: %v", mode, err)
		}
		k.RunUntilIdle()
		if got == 0 {
			t.Errorf("[%v] getpid returned 0", mode)
		}
	}
}

func TestFileReadWrite(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		var readBack []byte
		_, err := k.Spawn("t", func(p *Proc) {
			path := p.PushString("/hello.txt")
			fd := p.Syscall(SysOpen, path, OCreat|ORdWr)
			if _, bad := IsErr(fd); bad {
				t.Fatalf("[%v] open failed: %d", mode, int64(fd))
			}
			msg := []byte("ghost memory is invisible")
			buf := p.Alloc(len(msg))
			p.Write(buf, msg)
			n := p.Syscall(SysWrite, fd, buf, uint64(len(msg)))
			if int(n) != len(msg) {
				t.Fatalf("[%v] write returned %d", mode, int64(n))
			}
			p.Syscall(SysLseek, fd, 0, 0)
			out := p.Alloc(64)
			n = p.Syscall(SysRead, fd, out, 64)
			readBack = p.Read(out, int(n))
			p.Syscall(SysClose, fd)
		})
		if err != nil {
			t.Fatalf("[%v] Spawn: %v", mode, err)
		}
		k.RunUntilIdle()
		if !bytes.Equal(readBack, []byte("ghost memory is invisible")) {
			t.Errorf("[%v] read back %q", mode, readBack)
		}
	}
}

func TestForkWaitExit(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		var childPID, waitPID, code int
		_, err := k.Spawn("parent", func(p *Proc) {
			childPID = p.Fork(func(c *Proc) {
				c.Exit(42)
			})
			waitPID, code = p.Wait()
		})
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		if childPID <= 0 || waitPID != childPID || code != 42 {
			t.Errorf("[%v] fork/wait: child=%d waited=%d code=%d", mode, childPID, waitPID, code)
		}
	}
}

func TestPipe(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		var got []byte
		_, err := k.Spawn("piper", func(p *Proc) {
			fdsPtr := p.Alloc(8)
			if ret := p.Syscall(SysPipe, fdsPtr); ret != 0 {
				t.Fatalf("pipe: %d", int64(ret))
			}
			rfd := p.Load(fdsPtr, 4)
			wfd := p.Load(fdsPtr+4, 4)
			p.Fork(func(c *Proc) {
				msg := []byte("through the pipe")
				buf := c.Alloc(len(msg))
				c.Write(buf, msg)
				c.Syscall(SysWrite, wfd, buf, uint64(len(msg)))
				c.Exit(0)
			})
			out := p.Alloc(64)
			n := p.Syscall(SysRead, rfd, out, 64)
			got = p.Read(out, int(n))
			p.Wait()
		})
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		if string(got) != "through the pipe" {
			t.Errorf("[%v] pipe read %q", mode, got)
		}
	}
}

func TestSignalDelivery(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		handled := 0
		_, err := k.Spawn("sig", func(p *Proc) {
			addr := p.RegisterCode(func(p *Proc, args []uint64) {
				handled = int(args[0])
			})
			// Register with the VM (the libc wrapper's job) then
			// install with the kernel.
			if err := p.PermitFunction(addr); err != nil {
				t.Fatalf("permit: %v", err)
			}
			p.Syscall(SysSigact, SIGUSR1, addr)
			// Signal ourselves.
			p.Syscall(SysKill, uint64(p.PID), SIGUSR1)
		})
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		if handled != SIGUSR1 {
			t.Errorf("[%v] handler saw %d, want %d", mode, handled, SIGUSR1)
		}
	}
}

func TestGhostMemoryReadWrite(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		var roundTrip []byte
		_, err := k.Spawn("ghost", func(p *Proc) {
			va, err := p.AllocGM(2)
			if err != nil {
				t.Fatalf("[%v] allocgm: %v", mode, err)
			}
			secret := []byte("the secret string")
			p.Write(uint64(va), secret)
			roundTrip = p.Read(uint64(va), len(secret))
		})
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		if string(roundTrip) != "the secret string" {
			t.Errorf("[%v] ghost round trip %q", mode, roundTrip)
		}
	}
}

// TestKernelCannotReadGhost is the heart of the reproduction: the same
// kernel read of a ghost address succeeds natively and is masked away
// under Virtual Ghost.
func TestKernelCannotReadGhost(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		var kernelSaw uint64
		var ghostVA hw.Virt
		_, err := k.Spawn("victim", func(p *Proc) {
			va, err := p.AllocGM(1)
			if err != nil {
				t.Fatalf("allocgm: %v", err)
			}
			ghostVA = va
			p.Store(uint64(va), 8, 0xdeadbeefcafef00d)
			// Enter the kernel; the "kernel code" below models a
			// compiled kernel load of the ghost address.
			kernelSaw, _ = k.HAL.KLoad(p.Root(), ghostVA, 8)
		})
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		switch mode {
		case core.ModeNative:
			if kernelSaw != 0xdeadbeefcafef00d {
				t.Errorf("native kernel should read the secret, got %#x", kernelSaw)
			}
		case core.ModeVirtualGhost:
			if kernelSaw == 0xdeadbeefcafef00d {
				t.Errorf("virtual ghost kernel read the secret!")
			}
		}
	}
}

func TestMmapAndPageFault(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		var val uint64
		_, err := k.Spawn("mapper", func(p *Proc) {
			base := p.Syscall(SysMmap, 4*hw.PageSize, ^uint64(0), 0)
			if _, bad := IsErr(base); bad {
				t.Fatalf("mmap: %d", int64(base))
			}
			p.Store(base+123, 8, 777)
			val = p.Load(base+123, 8)
			if ret := p.Syscall(SysMunmap, base, 4*hw.PageSize); ret != 0 {
				t.Fatalf("munmap: %d", int64(ret))
			}
		})
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		if val != 777 {
			t.Errorf("[%v] mmap store/load got %d", mode, val)
		}
		if k.Stats().PageFaults == 0 {
			t.Errorf("[%v] expected demand-paging faults", mode)
		}
	}
}

func TestExecve(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		ran := false
		// Install the target program. Under Virtual Ghost it must be
		// signed by the trusted installer.
		var bin *core.Binary
		if vm, ok := k.HAL.(*core.VM); ok {
			var err error
			bin, err = vm.Installer().Install("/bin/target", []byte("image"), make([]byte, 32))
			if err != nil {
				t.Fatalf("install: %v", err)
			}
		} else {
			bin = &core.Binary{Name: "/bin/target"}
		}
		k.InstallProgram("/bin/target", bin, func(p *Proc) {
			ran = true
			p.Exit(7)
		})
		var code int
		_, err := k.Spawn("launcher", func(p *Proc) {
			p.Fork(func(c *Proc) {
				_ = c.Exec("/bin/target")
				c.Exit(1) // unreachable on success
			})
			_, code = p.Wait()
		})
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		if !ran || code != 7 {
			t.Errorf("[%v] exec ran=%v code=%d", mode, ran, code)
		}
	}
}

func TestSocketsLoopback(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		hw.Connect(k.M.NIC, k.M.NIC) // loopback
		var got []byte
		_, err := k.Spawn("server", func(p *Proc) {
			sfd := p.Syscall(SysSocket)
			p.Syscall(SysBind, sfd, 80)
			p.Syscall(SysListen, sfd)
			cfd := p.Syscall(SysAccept, sfd)
			buf := p.Alloc(128)
			n := p.Syscall(SysRecv, cfd, buf, 128)
			got = p.Read(buf, int(n))
		})
		if err != nil {
			t.Fatalf("Spawn server: %v", err)
		}
		_, err = k.Spawn("client", func(p *Proc) {
			fd := p.Syscall(SysSocket)
			p.Syscall(SysConnect, fd, 80)
			msg := []byte("GET /")
			buf := p.Alloc(len(msg))
			p.Write(buf, msg)
			p.Syscall(SysSendTo, fd, buf, uint64(len(msg)))
		})
		if err != nil {
			t.Fatalf("Spawn client: %v", err)
		}
		k.RunUntilIdle()
		if string(got) != "GET /" {
			t.Errorf("[%v] server got %q", mode, got)
		}
	}
}

func TestVirtualGhostSlowerThanNative(t *testing.T) {
	elapsed := map[core.Mode]uint64{}
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		var start, end uint64
		_, err := k.Spawn("bench", func(p *Proc) {
			start = k.M.Clock.Cycles()
			for i := 0; i < 200; i++ {
				p.Syscall(SysGetpid)
			}
			end = k.M.Clock.Cycles()
		})
		if err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		elapsed[mode] = end - start
	}
	if elapsed[core.ModeVirtualGhost] <= elapsed[core.ModeNative] {
		t.Errorf("VG (%d cycles) should cost more than native (%d)",
			elapsed[core.ModeVirtualGhost], elapsed[core.ModeNative])
	}
}
