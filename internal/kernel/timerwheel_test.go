package kernel

import (
	"testing"
)

// fireLog arms a wheel entry that appends its label when fired.
func fireLog(w *timerWheel, now, delay uint64, log *[]int, label int) timerID {
	return w.after(now, delay, func() { *log = append(*log, label) })
}

func TestWheelFiresInExpiryOrder(t *testing.T) {
	w := newTimerWheel(0)
	var log []int
	// Deliberately armed out of order, spanning several levels.
	fireLog(w, 0, 5*wheelGranularity, &log, 2)
	fireLog(w, 0, 1*wheelGranularity, &log, 0)
	fireLog(w, 0, 100*wheelGranularity, &log, 3)    // level 1
	fireLog(w, 0, 10_000*wheelGranularity, &log, 4) // level 2
	fireLog(w, 0, 2*wheelGranularity, &log, 1)
	if got := w.pendingCount(); got != 5 {
		t.Fatalf("pending = %d, want 5", got)
	}
	if n := w.advance(20_000 * wheelGranularity); n != 5 {
		t.Fatalf("advance fired %d, want 5", n)
	}
	for i, v := range log {
		if v != i {
			t.Fatalf("fire order %v", log)
		}
	}
	if w.pendingCount() != 0 {
		t.Errorf("pending after drain = %d", w.pendingCount())
	}
}

func TestWheelSameExpiryBreaksTiesByID(t *testing.T) {
	w := newTimerWheel(0)
	var log []int
	for i := 0; i < 8; i++ {
		fireLog(w, 0, 3*wheelGranularity, &log, i)
	}
	w.advance(4 * wheelGranularity)
	for i, v := range log {
		if v != i {
			t.Fatalf("same-expiry order %v, want arm order", log)
		}
	}
}

func TestWheelIncrementalAdvance(t *testing.T) {
	w := newTimerWheel(0)
	var log []int
	fireLog(w, 0, 2*wheelGranularity, &log, 1)
	fireLog(w, 0, 70*wheelGranularity, &log, 2) // next level up
	if n := w.advance(wheelGranularity); n != 0 {
		t.Fatalf("fired %d early", n)
	}
	if n := w.advance(3 * wheelGranularity); n != 1 || len(log) != 1 || log[0] != 1 {
		t.Fatalf("first: n=%d log=%v", n, log)
	}
	// Cascade: the level-1 entry must land in its exact level-0 slot.
	if n := w.advance(69 * wheelGranularity); n != 0 {
		t.Fatalf("level-1 entry fired %d ticks early", n)
	}
	if n := w.advance(71 * wheelGranularity); n != 1 || log[len(log)-1] != 2 {
		t.Fatalf("cascaded entry: n=%d log=%v", n, log)
	}
}

func TestWheelCancel(t *testing.T) {
	w := newTimerWheel(0)
	var log []int
	id := fireLog(w, 0, 2*wheelGranularity, &log, 1)
	fireLog(w, 0, 2*wheelGranularity, &log, 2)
	if !w.cancel(id) {
		t.Fatal("cancel of live timer failed")
	}
	if w.cancel(id) {
		t.Fatal("double cancel succeeded")
	}
	if w.pendingCount() != 1 {
		t.Fatalf("pending = %d after cancel", w.pendingCount())
	}
	if n := w.advance(3 * wheelGranularity); n != 1 || len(log) != 1 || log[0] != 2 {
		t.Fatalf("canceled timer fired: n=%d log=%v", n, log)
	}
}

func TestWheelOverflowBeyondTopLevel(t *testing.T) {
	w := newTimerWheel(0)
	var log []int
	// Beyond the wheel's total span: parked in the sorted overflow list.
	horizon := uint64(wheelSlots) * uint64(wheelSlots) * uint64(wheelSlots) * uint64(wheelSlots) * wheelGranularity
	fireLog(w, 0, horizon*2, &log, 1)
	if n := w.advance(horizon); n != 0 {
		t.Fatalf("overflow entry fired early")
	}
	if n := w.advance(horizon*2 + wheelGranularity); n != 1 {
		t.Fatalf("overflow entry never fired")
	}
}

func TestWheelNextExpiry(t *testing.T) {
	w := newTimerWheel(0)
	if _, ok := w.nextExpiry(); ok {
		t.Fatal("empty wheel reported an expiry")
	}
	var log []int
	fireLog(w, 0, 40*wheelGranularity, &log, 1)
	id := fireLog(w, 0, 4*wheelGranularity, &log, 2)
	next, ok := w.nextExpiry()
	if !ok || next != 4*wheelGranularity {
		t.Fatalf("nextExpiry = %d,%v", next, ok)
	}
	w.cancel(id)
	next, ok = w.nextExpiry()
	if !ok || next != 40*wheelGranularity {
		t.Fatalf("nextExpiry after cancel = %d,%v", next, ok)
	}
}

func TestWheelZeroDelayFiresNextAdvance(t *testing.T) {
	w := newTimerWheel(1000)
	var log []int
	fireLog(w, 1000, 0, &log, 1)
	if n := w.advance(1000 + wheelGranularity); n != 1 {
		t.Fatalf("zero-delay timer: fired %d", n)
	}
}
