package kernel

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vir"
)

// These tests run module code through the full kernel pipeline
// (translator → code space → RunModuleFunc) on two identically booted
// systems, one per execution engine, and assert the engines are
// indistinguishable: same results, same errors, and the same
// virtual-clock advance for every call.

// bootEnginePair boots two kernels in the given mode, the first on the
// pre-linked engine and the second on the reference interpreter.
func bootEnginePair(t *testing.T, mode core.Mode) (*Kernel, *Kernel) {
	t.Helper()
	kL := bootKernel(t, mode)
	kL.SetEngine(EngineLinked)
	kR := bootKernel(t, mode)
	kR.SetEngine(EngineReference)
	return kL, kR
}

// runOnBoth invokes the same module function on both kernels and
// asserts result, error, and clock-delta equality. Returns the common
// result.
func runOnBoth(t *testing.T, kL, kR *Kernel, modOf func(*Kernel) *Module, fn string, args ...uint64) uint64 {
	t.Helper()
	c0 := kL.M.Clock.Cycles()
	vL, errL := kL.RunModuleFunc(modOf(kL), fn, args...)
	dL := kL.M.Clock.Cycles() - c0

	c0 = kR.M.Clock.Cycles()
	vR, errR := kR.RunModuleFunc(modOf(kR), fn, args...)
	dR := kR.M.Clock.Cycles() - c0

	errs := func(err error) string {
		if err == nil {
			return ""
		}
		return err.Error()
	}
	if vL != vR || errs(errL) != errs(errR) {
		t.Fatalf("%s: engines disagree: linked (%#x, %v) vs reference (%#x, %v)",
			fn, vL, errL, vR, errR)
	}
	if dL != dR {
		t.Fatalf("%s: clock divergence: linked %d cycles, reference %d", fn, dL, dR)
	}
	return vL
}

func TestEnginesAgreeOnCoreModule(t *testing.T) {
	for _, mode := range modes() {
		kL, kR := bootEnginePair(t, mode)
		core := func(k *Kernel) *Module { return k.coreMod }

		const buf = 0xffffff8000100000 // kernel scratch
		runOnBoth(t, kL, kR, core, "kmemset", buf, 0xab, 64)
		runOnBoth(t, kL, kR, core, "kmemset", buf+64, 0xab, 64)
		if eq := runOnBoth(t, kL, kR, core, "kmemcmp", buf, buf+64, 64); eq != 0 {
			t.Fatalf("[%v] kmemcmp of equal buffers = %d", mode, eq)
		}
		sum := runOnBoth(t, kL, kR, core, "kchecksum", buf, 64)
		if sum == 0 {
			t.Fatalf("[%v] kchecksum = 0", mode)
		}
		runOnBoth(t, kL, kR, core, "kstrlen", buf+200)
	}
}

// TestEnginesAgreeAcrossModuleLoad is the kernel-level linked-code
// invalidation scenario: a module calls a symbol that is unresolved at
// first (dispatching to a registered kernel service), then a later
// module load binds that symbol in the code space. The pre-linked
// engine must notice the epoch change and re-link; the reference
// interpreter re-resolves every call by construction.
func TestEnginesAgreeAcrossModuleLoad(t *testing.T) {
	kL, kR := bootEnginePair(t, core.ModeVirtualGhost)

	callerSrc := `module callermod
func call_helper(0 params) {
entry:
  %r0 = call helper()
  ret %r0
}
`
	helperSrc := `module helpermod
func helper(0 params) {
entry:
  ret 0x2
}
`
	for _, k := range []*Kernel{kL, kR} {
		k.RegisterIntrinsic("helper", func(*Kernel, []uint64) (uint64, error) {
			return 1, nil
		})
	}

	load := func(k *Kernel, src string) *Module {
		m, err := vir.ParseModule(src)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := k.LoadModule(m)
		if err != nil {
			t.Fatal(err)
		}
		return mod
	}
	callerL, callerR := load(kL, callerSrc), load(kR, callerSrc)
	caller := func(k *Kernel) *Module {
		if k == kL {
			return callerL
		}
		return callerR
	}

	// Unbound: both engines dispatch to the kernel service.
	if got := runOnBoth(t, kL, kR, caller, "call_helper"); got != 1 {
		t.Fatalf("before load: call_helper = %d, want 1 (intrinsic)", got)
	}
	// Run twice so the linked engine is serving from its cache.
	runOnBoth(t, kL, kR, caller, "call_helper")

	// Bind helper in the code space; the epoch moves and cached linked
	// code must be flushed.
	load(kL, helperSrc)
	load(kR, helperSrc)
	if got := runOnBoth(t, kL, kR, caller, "call_helper"); got != 2 {
		t.Fatalf("after load: call_helper = %d, want 2 (module function)", got)
	}
}

// TestEnginesAgreeOnModulePanic pins error propagation out of kernel
// intrinsics through both engines.
func TestEnginesAgreeOnModulePanic(t *testing.T) {
	kL, kR := bootEnginePair(t, core.ModeVirtualGhost)
	src := `module panics
func go_down(1 params) {
entry:
  %r1 = call panic(%r0)
  ret %r1
}
`
	mods := map[*Kernel]*Module{}
	for _, k := range []*Kernel{kL, kR} {
		m, err := vir.ParseModule(src)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := k.LoadModule(m)
		if err != nil {
			t.Fatal(err)
		}
		mods[k] = mod
	}
	c0 := kL.M.Clock.Cycles()
	_, errL := kL.RunModuleFunc(mods[kL], "go_down", 7)
	dL := kL.M.Clock.Cycles() - c0
	c0 = kR.M.Clock.Cycles()
	_, errR := kR.RunModuleFunc(mods[kR], "go_down", 7)
	dR := kR.M.Clock.Cycles() - c0
	if errL == nil || errR == nil || errL.Error() != errR.Error() {
		t.Fatalf("panic errors differ: %v vs %v", errL, errR)
	}
	if !strings.Contains(errL.Error(), "module panic (7)") {
		t.Fatalf("unexpected panic error: %v", errL)
	}
	if dL != dR {
		t.Fatalf("clock divergence on panic: %d vs %d", dL, dR)
	}
}
