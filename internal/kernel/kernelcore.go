package kernel

import (
	"fmt"

	"repro/internal/vir"
)

// coreModuleSource is a slice of the kernel expressed directly in the
// virtual instruction set — the reproduction's stand-in for "all
// operating system software ... is compiled to the virtual instruction
// set implemented by SVA" (paper §4.2). These routines are translated
// at boot through the same pipeline as loadable modules, so under
// Virtual Ghost even the kernel's own utility code carries the
// sandboxing and CFI instrumentation.
//
// The routines operate on kernel virtual addresses (the direct-map
// scratch under Virtual Ghost):
//
//	kmemset(dst, byte, n)  — fill
//	kmemcmp(a, b, n)       — compare, returns 0 when equal
//	kstrlen(s)             — NUL-terminated length
//	kchecksum(p, n)        — additive checksum (buffer-cache style)
var coreModuleSource = `module kernelcore
func kmemset(3 params) {
entry:
  %r3 = mov 0x0
  br loop
loop:
  %r4 = cmplt %r3, %r2
  condbr %r4, body, done
body:
  %r5 = add %r0, %r3
  store1 [%r5], %r1
  %r6 = add %r3, 0x1
  %r3 = mov %r6
  br loop
done:
  ret %r0
}
func kmemcmp(3 params) {
entry:
  %r3 = mov 0x0
  br loop
loop:
  %r4 = cmplt %r3, %r2
  condbr %r4, body, equal
body:
  %r5 = add %r0, %r3
  %r6 = add %r1, %r3
  %r7 = load1 [%r5]
  %r8 = load1 [%r6]
  %r9 = cmpne %r7, %r8
  condbr %r9, differ, next
next:
  %r10 = add %r3, 0x1
  %r3 = mov %r10
  br loop
differ:
  ret 0x1
equal:
  ret 0x0
}
func kstrlen(1 params) {
entry:
  %r1 = mov 0x0
  br loop
loop:
  %r2 = add %r0, %r1
  %r3 = load1 [%r2]
  %r4 = cmpeq %r3, 0x0
  condbr %r4, done, next
next:
  %r5 = add %r1, 0x1
  %r1 = mov %r5
  br loop
done:
  ret %r1
}
func kchecksum(2 params) {
entry:
  %r2 = mov 0x0
  %r3 = mov 0x0
  br loop
loop:
  %r4 = cmplt %r2, %r1
  condbr %r4, body, done
body:
  %r5 = add %r0, %r2
  %r6 = load1 [%r5]
  %r7 = add %r3, %r6
  %r8 = mul %r7, 0x101
  %r9 = and %r8, 0xffffffff
  %r3 = mov %r9
  %r10 = add %r2, 0x1
  %r2 = mov %r10
  br loop
done:
  ret %r3
}
`

// loadCoreModule parses and translates the kernel's IR routines at
// boot. Failure is fatal: a kernel whose own code the translator
// refuses cannot run.
func (k *Kernel) loadCoreModule() error {
	m, err := vir.ParseModule(coreModuleSource)
	if err != nil {
		return fmt.Errorf("kernel: core module source: %w", err)
	}
	mod, err := k.LoadModule(m)
	if err != nil {
		return fmt.Errorf("kernel: core module translation: %w", err)
	}
	k.coreMod = mod
	return nil
}

// CoreModule returns the kernel's translated IR routines.
func (k *Kernel) CoreModule() *Module { return k.coreMod }

// KMemset runs the kernel's IR memset over kernel scratch memory.
func (k *Kernel) KMemset(dst uint64, b byte, n int) error {
	_, err := k.RunModuleFunc(k.coreMod, "kmemset", dst, uint64(b), uint64(n))
	return err
}

// KMemcmp runs the kernel's IR memcmp (0 = equal).
func (k *Kernel) KMemcmp(a, b uint64, n int) (bool, error) {
	v, err := k.RunModuleFunc(k.coreMod, "kmemcmp", a, b, uint64(n))
	return v == 0, err
}

// KChecksum runs the kernel's IR checksum.
func (k *Kernel) KChecksum(p uint64, n int) (uint32, error) {
	v, err := k.RunModuleFunc(k.coreMod, "kchecksum", p, uint64(n))
	return uint32(v), err
}
