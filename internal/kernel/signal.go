package kernel

import (
	"repro/internal/core"
	"repro/internal/hw"
)

// sysSigaction implements sigaction(sig, handlerAddr): records the
// handler code address for the signal. Note that the kernel records
// only an *address*; whether that address is a legal control-transfer
// target is the VM's decision at delivery time (sva.ipush.function).
// The ghosting libc wrapper registers the address with
// sva.permitFunction before making this call.
func sysSigaction(k *Kernel, p *Proc, ic core.IContext) uint64 {
	sig := int(ic.Arg(0))
	if sig <= 0 || sig > 64 {
		return errno(EINVAL)
	}
	k.HAL.KAccess(workSignalInstall)
	addr := ic.Arg(1)
	if addr == 0 {
		delete(p.sigHandlers, sig)
	} else {
		p.sigHandlers[sig] = addr
	}
	return 0
}

// sysKill implements kill(pid, sig).
func sysKill(k *Kernel, p *Proc, ic core.IContext) uint64 {
	target, ok := k.procs[int(ic.Arg(0))]
	if !ok {
		return errno(ENOENT)
	}
	k.HAL.KAccess(workKill)
	k.postSignal(target, int(ic.Arg(1)))
	return 0
}

// postSignal queues a signal for a process (kernel-internal; modules
// use it too).
func (k *Kernel) postSignal(target *Proc, sig int) {
	k.stats.SignalsSent++
	// Cross-CPU delivery: if the target lives on another CPU's run
	// queue, poke that CPU with a rescheduling IPI so it notices the
	// pending signal on its next dispatch.
	if k.M.NumCPUs() > 1 && target.cpu != k.M.CurCPU() {
		k.M.SendIPI(target.cpu, hw.IPIResched, uint64(target.PID))
		k.stats.IPIs++
	}
	if sig == SIGKILL {
		k.forceExit(target, 128+SIGKILL)
		return
	}
	target.sigPending = append(target.sigPending, sig)
}

// sysSigreturn restores the pre-signal interrupt context
// (sva.icontext.load pops the copy saved at delivery).
func sysSigreturn(k *Kernel, p *Proc, ic core.IContext) uint64 {
	if err := k.HAL.LoadIC(p.tid); err != nil {
		return errno(EINVAL)
	}
	return 0
}

// deliverSignals runs on every return-to-user path: for each pending
// signal with an installed handler it saves the interrupt context and
// asks the VM to redirect execution to the handler. Under Virtual Ghost
// the VM refuses handler addresses the application never registered
// (sva.permitFunction), which is precisely what stops the
// code-injection rootkit: the signal is discarded and the victim
// continues unharmed (paper §7).
func (k *Kernel) deliverSignals(p *Proc, ic core.IContext) {
	if p.killed || p.state == procZombie || p.state == procDead {
		return
	}
	for len(p.sigPending) > 0 {
		sig := p.sigPending[0]
		p.sigPending = p.sigPending[1:]
		addr, ok := p.sigHandlers[sig]
		if !ok {
			// Default dispositions: fatal signals kill, others are
			// ignored.
			switch sig {
			case SIGSEGV, SIGPIPE:
				k.forceExit(p, 128+sig)
				return
			}
			continue
		}
		k.HAL.KAccess(workSignalDeliver)
		if err := k.HAL.SaveIC(p.tid); err != nil {
			continue
		}
		if err := k.HAL.IPushFunction(ic, addr, uint64(sig)); err != nil {
			// The VM rejected the control transfer. Undo the saved
			// context and drop the signal; the application continues
			// unaffected.
			k.stats.SignalsBlocked++
			_ = k.HAL.LoadIC(p.tid)
			continue
		}
		// One handler per return-to-user; remaining signals deliver on
		// subsequent traps (the sigreturn).
		return
	}
}
