package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/hw"
)

// This file is the kernel half of the snapshot subsystem (DESIGN.md
// §18). Processes are Go goroutines whose stacks cannot be serialized,
// so snapshots are taken only at *quiescent* points: no live processes,
// no occupied scheduler slots, no open connections. At such a point the
// kernel's residual state is plain data — allocator cursors, counters,
// caches — and capture/apply below serializes exactly that. Host-side
// linkage (the syscall table, intrinsics, installed programs, planted
// code, the module engines) is not serialized: restore targets a kernel
// booted with the same code, which the module-identity check enforces.

// ErrNotQuiescent reports a snapshot attempt while processes or
// connections are still live. Callers drain work (RunUntilIdle, reap
// children, close sockets) and retry.
var ErrNotQuiescent = errors.New("kernel: machine not quiescent")

// ErrSnapshotStale reports a restore attempt whose image was taken
// under a different module set (code epoch): the snapshot's virtual
// numbers were produced by code this kernel is not running, so applying
// it would silently break determinism. The image must be re-taken, not
// re-linked.
var ErrSnapshotStale = errors.New("kernel: snapshot stale: module set differs from loaded tree")

// ModuleID identifies one loaded module by name and canonical-IR
// digest. The ordered list of these is the kernel's code-epoch
// identity.
type ModuleID struct {
	Name     string `json:"name"`
	IRDigest []byte `json:"ir_digest"`
}

// CPURunSnap is one virtual CPU's scheduler residue at quiescence: the
// round-robin cursor and the busy-cycle counter (run queue and epoch
// slot are empty by definition).
type CPURunSnap struct {
	LastPID int    `json:"last_pid"`
	Busy    uint64 `json:"busy"`
}

// BufSnap is one buffer-cache block, in LRU order (head = MRU first).
type BufSnap struct {
	Blk   int    `json:"blk"`
	Data  []byte `json:"data"`
	Dirty bool   `json:"dirty,omitempty"`
}

// BufCacheSnap is the buffer cache: contents in exact LRU order plus
// the hit/miss/writeback counters, so post-restore cache behaviour —
// and therefore every subsequent disk charge — is bit-identical.
type BufCacheSnap struct {
	Bufs       []BufSnap `json:"bufs,omitempty"`
	Hits       uint64    `json:"hits"`
	Misses     uint64    `json:"misses"`
	Writebacks uint64    `json:"writebacks"`
}

// NameCacheSnap is one vnode name-cache entry.
type NameCacheSnap struct {
	Dir  uint32 `json:"dir"`
	Name string `json:"fname"`
	Ino  uint32 `json:"ino"`
	Slot int    `json:"slot"`
}

// SlotHintSnap is one directory's free-dirent-slot hint.
type SlotHintSnap struct {
	Dir  uint32 `json:"dir"`
	Slot int    `json:"slot"`
}

// FSSnap is the file system's in-memory residue: allocation rotors and
// the lookup caches (the on-disk state travels in the machine image).
type FSSnap struct {
	BlockRotor int             `json:"block_rotor"`
	InodeRotor int             `json:"inode_rotor"`
	NameCache  []NameCacheSnap `json:"name_cache,omitempty"`
	SlotHints  []SlotHintSnap  `json:"slot_hints,omitempty"`
}

// SwappedGhostSnap is one encrypted ghost-swap blob the OS holds.
type SwappedGhostSnap struct {
	PID  int    `json:"pid"`
	VA   uint64 `json:"va"`
	Blob []byte `json:"blob"`
}

// NetSnap is the network stack's residue at quiescence: the port
// allocator cursor and range, the window default, the cumulative
// drop/timeout counters, and the timer-arm sequence (timer ids break
// same-expiry firing ties, so the cursor must survive restore for
// resumed runs to stay bit-identical with straight runs). Connections,
// listeners, poll sets, and armed timers are empty by the quiescence
// contract.
type NetSnap struct {
	NextPort   uint16 `json:"next_port"`
	PortLo     uint16 `json:"port_lo"`
	PortHi     uint16 `json:"port_hi"`
	RecvWindow int    `json:"recv_window"`
	TimerSeq   uint64 `json:"timer_seq"`
	Stats      NetStats
}

// KernelSnap is the serializable kernel state at a quiescent point.
type KernelSnap struct {
	NextPID      int                `json:"next_pid"`
	LastCPU      int                `json:"last_cpu"`
	CPUs         []CPURunSnap       `json:"cpus"`
	Stats        Stats              `json:"stats"`
	SysProf      []SyscallCycles    `json:"sys_prof,omitempty"`
	ModLog       []byte             `json:"mod_log,omitempty"`
	SwappedGhost []SwappedGhostSnap `json:"swapped_ghost,omitempty"`
	Net          NetSnap            `json:"net"`
	FS           FSSnap             `json:"fs"`
	BufCache     BufCacheSnap       `json:"buf_cache"`
	Modules      []ModuleID         `json:"modules"`
}

// CheckQuiescent reports (as an ErrNotQuiescent-wrapped error) whether
// the kernel is at a snapshot-safe point: no processes, no scheduler
// work, no open connections or listeners. The snapshot subsystem
// pre-flights restore targets with it so a refused restore leaves the
// target untouched.
func (k *Kernel) CheckQuiescent() error { return k.checkQuiescent() }

// checkQuiescent verifies the kernel is at a snapshot-safe point.
func (k *Kernel) checkQuiescent() error {
	if n := len(k.procs); n > 0 {
		return fmt.Errorf("%w: %d processes still exist (run to completion and reap them)", ErrNotQuiescent, n)
	}
	if k.cur != nil {
		return fmt.Errorf("%w: a process is scheduled", ErrNotQuiescent)
	}
	for _, c := range k.cpus {
		if c.slot != nil || len(c.pids) > 0 {
			return fmt.Errorf("%w: CPU %d still has scheduler work", ErrNotQuiescent, c.id)
		}
	}
	if n := len(k.Net.conns); n > 0 {
		return fmt.Errorf("%w: %d network connections open", ErrNotQuiescent, n)
	}
	if n := len(k.Net.listeners); n > 0 {
		return fmt.Errorf("%w: %d listeners open", ErrNotQuiescent, n)
	}
	if n := k.Net.wheel.pendingCount(); n > 0 {
		return fmt.Errorf("%w: %d network timers armed", ErrNotQuiescent, n)
	}
	return nil
}

// ModuleIdentity returns the kernel's code-epoch identity: the loaded
// modules in load order with their canonical-IR digests.
func (k *Kernel) ModuleIdentity() []ModuleID {
	out := make([]ModuleID, 0, len(k.modules))
	for _, m := range k.modules {
		out = append(out, ModuleID{Name: m.Name, IRDigest: append([]byte(nil), m.irDigest[:]...)})
	}
	return out
}

// CheckModuleIdentity compares a snapshot's recorded module list
// against this kernel's, returning ErrSnapshotStale (wrapped with the
// first difference) on any mismatch. Order matters: the same modules
// loaded in a different order produce different admission and engine
// state.
func (k *Kernel) CheckModuleIdentity(want []ModuleID) error {
	have := k.ModuleIdentity()
	if len(want) != len(have) {
		return fmt.Errorf("%w: image has %d modules, kernel has %d", ErrSnapshotStale, len(want), len(have))
	}
	for i := range want {
		if want[i].Name != have[i].Name {
			return fmt.Errorf("%w: module %d is %q in image, %q in kernel", ErrSnapshotStale, i, want[i].Name, have[i].Name)
		}
		if !bytes.Equal(want[i].IRDigest, have[i].IRDigest) {
			return fmt.Errorf("%w: module %q IR digest differs", ErrSnapshotStale, want[i].Name)
		}
	}
	return nil
}

// CaptureKernelSnap serializes the kernel's state. It fails with
// ErrNotQuiescent unless all processes have finished and been reaped
// and the network stack is idle.
func (k *Kernel) CaptureKernelSnap() (*KernelSnap, error) {
	if err := k.checkQuiescent(); err != nil {
		return nil, err
	}
	s := &KernelSnap{
		NextPID: k.nextPID,
		LastCPU: k.lastCPU,
		Stats:   k.stats,
		ModLog:  append([]byte(nil), k.modLogBuf...),
		Net: NetSnap{
			NextPort:   k.Net.nextPort,
			PortLo:     k.Net.portLo,
			PortHi:     k.Net.portHi,
			RecvWindow: k.Net.defWindow,
			TimerSeq:   uint64(k.Net.wheel.nextID),
			Stats:      k.Net.stats,
		},
		Modules: k.ModuleIdentity(),
	}
	for _, c := range k.cpus {
		s.CPUs = append(s.CPUs, CPURunSnap{LastPID: c.lastPID, Busy: c.busy})
	}
	for _, sc := range k.sysProf {
		s.SysProf = append(s.SysProf, *sc)
	}
	sort.Slice(s.SysProf, func(i, j int) bool { return s.SysProf[i].Num < s.SysProf[j].Num })
	pids := make([]int, 0, len(k.swappedGhost))
	for pid := range k.swappedGhost {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		vas := make([]uint64, 0, len(k.swappedGhost[pid]))
		for va := range k.swappedGhost[pid] {
			vas = append(vas, uint64(va))
		}
		sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
		for _, va := range vas {
			blob := k.swappedGhost[pid][hw.Virt(va)]
			s.SwappedGhost = append(s.SwappedGhost, SwappedGhostSnap{
				PID: pid, VA: va, Blob: append([]byte(nil), blob...),
			})
		}
	}
	s.FS = k.FS.captureSnap()
	s.BufCache = k.FS.cache.captureSnap()
	return s, nil
}

// ApplyKernelSnap overwrites the kernel's state with a captured
// snapshot. The target kernel must itself be quiescent (freshly booted
// or drained) and must be running the same module set as the kernel the
// snapshot was taken on (ErrSnapshotStale otherwise).
func (k *Kernel) ApplyKernelSnap(s *KernelSnap) error {
	if err := k.checkQuiescent(); err != nil {
		return fmt.Errorf("restore target: %w", err)
	}
	if len(s.CPUs) != len(k.cpus) {
		return fmt.Errorf("kernel: snapshot has %d CPUs of scheduler state, machine has %d", len(s.CPUs), len(k.cpus))
	}
	if err := k.CheckModuleIdentity(s.Modules); err != nil {
		return err
	}
	k.nextPID = s.NextPID
	k.lastCPU = s.LastCPU
	k.cur = nil
	clear(k.procs)
	for i, c := range k.cpus {
		c.pids = nil
		c.lastPID = s.CPUs[i].LastPID
		c.busy = s.CPUs[i].Busy
		c.slot = nil
		c.pend = pendNone
	}
	k.stats = s.Stats
	k.sysProf = make(map[uint64]*SyscallCycles, len(s.SysProf))
	for _, sc := range s.SysProf {
		cp := sc
		k.sysProf[sc.Num] = &cp
	}
	k.modLogBuf = append([]byte(nil), s.ModLog...)
	clear(k.swappedGhost)
	for _, sg := range s.SwappedGhost {
		per, ok := k.swappedGhost[sg.PID]
		if !ok {
			per = make(map[hw.Virt][]byte)
			k.swappedGhost[sg.PID] = per
		}
		per[hw.Virt(sg.VA)] = append([]byte(nil), sg.Blob...)
	}
	clear(k.Net.conns)
	clear(k.Net.listeners)
	k.Net.nextPort = s.Net.NextPort
	k.Net.portLo = s.Net.PortLo
	k.Net.portHi = s.Net.PortHi
	k.Net.defWindow = s.Net.RecvWindow
	k.Net.stats = s.Net.Stats
	// Armed timers are empty by the quiescence contract; a fresh wheel at
	// the restored clock with the captured id cursor reproduces the
	// pre-snapshot wheel exactly.
	k.Net.wheel = newTimerWheel(k.M.Clock.Cycles())
	k.Net.wheel.nextID = timerID(s.Net.TimerSeq)
	k.FS.applySnap(s.FS)
	k.FS.cache.applySnap(s.BufCache)
	// Host-side execution caches are keyed by pre-restore structures
	// (address-space roots, lowering pointers); cold-start them. Linking
	// and env construction are host-only work — by the engine's own
	// contract the virtual clock never sees a cache flush.
	clear(k.modEnvs)
	clear(k.refInterps)
	k.engine.ResetCaches()
	return nil
}

func (fs *FS) captureSnap() FSSnap {
	s := FSSnap{BlockRotor: fs.blockRotor, InodeRotor: fs.inodeRotor}
	for key, val := range fs.namecache {
		s.NameCache = append(s.NameCache, NameCacheSnap{
			Dir: key.dir, Name: key.name, Ino: val.ino, Slot: val.slot,
		})
	}
	sort.Slice(s.NameCache, func(i, j int) bool {
		if s.NameCache[i].Dir != s.NameCache[j].Dir {
			return s.NameCache[i].Dir < s.NameCache[j].Dir
		}
		return s.NameCache[i].Name < s.NameCache[j].Name
	})
	for dir, slot := range fs.freeSlotHint {
		s.SlotHints = append(s.SlotHints, SlotHintSnap{Dir: dir, Slot: slot})
	}
	sort.Slice(s.SlotHints, func(i, j int) bool { return s.SlotHints[i].Dir < s.SlotHints[j].Dir })
	return s
}

func (fs *FS) applySnap(s FSSnap) {
	fs.blockRotor = s.BlockRotor
	fs.inodeRotor = s.InodeRotor
	clear(fs.namecache)
	for _, e := range s.NameCache {
		fs.namecache[nckey{dir: e.Dir, name: e.Name}] = ncval{ino: e.Ino, slot: e.Slot}
	}
	clear(fs.freeSlotHint)
	for _, h := range s.SlotHints {
		fs.freeSlotHint[h.Dir] = h.Slot
	}
}

func (c *BufCache) captureSnap() BufCacheSnap {
	s := BufCacheSnap{Hits: c.hits, Misses: c.misses, Writebacks: c.writebacks}
	for b := c.head; b != nil; b = b.next {
		s.Bufs = append(s.Bufs, BufSnap{
			Blk: b.blk, Data: append([]byte(nil), b.data...), Dirty: b.dirty,
		})
	}
	return s
}

func (c *BufCache) applySnap(s BufCacheSnap) {
	c.hits, c.misses, c.writebacks = s.Hits, s.Misses, s.Writebacks
	c.blocks = make(map[int]*buf, len(s.Bufs))
	c.head, c.tail = nil, nil
	var prev *buf
	for _, bs := range s.Bufs {
		b := &buf{blk: bs.Blk, data: append([]byte(nil), bs.Data...), dirty: bs.Dirty, prev: prev}
		if prev == nil {
			c.head = b
		} else {
			prev.next = b
		}
		c.blocks[b.blk] = b
		prev = b
	}
	c.tail = prev
}
