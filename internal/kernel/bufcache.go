package kernel

import (
	"fmt"

	"repro/internal/hw"
)

// BufCache is the buffer cache between the file system and the disk:
// fixed capacity, LRU eviction, write-back of dirty blocks (buffered
// I/O, the configuration Postmark ran with in the paper).
type BufCache struct {
	k    *Kernel
	disk *hw.Disk
	cap  int

	blocks map[int]*buf
	// lru is a doubly-linked list, most-recently-used at head.
	head, tail *buf

	hits, misses, writebacks uint64
}

type buf struct {
	blk        int
	data       []byte
	dirty      bool
	prev, next *buf
}

// NewBufCache creates a cache of capBlocks blocks.
func NewBufCache(k *Kernel, disk *hw.Disk, capBlocks int) *BufCache {
	return &BufCache{
		k:      k,
		disk:   disk,
		cap:    capBlocks,
		blocks: make(map[int]*buf),
	}
}

// Stats returns hit/miss/writeback counters.
func (c *BufCache) Stats() (hits, misses, writebacks uint64) {
	return c.hits, c.misses, c.writebacks
}

func (c *BufCache) touch(b *buf) {
	if c.head == b {
		return
	}
	// unlink
	if b.prev != nil {
		b.prev.next = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
	if c.tail == b {
		c.tail = b.prev
	}
	// push front
	b.prev = nil
	b.next = c.head
	if c.head != nil {
		c.head.prev = b
	}
	c.head = b
	if c.tail == nil {
		c.tail = b
	}
}

func (c *BufCache) evictIfFull() error {
	for len(c.blocks) >= c.cap {
		victim := c.tail
		if victim == nil {
			return fmt.Errorf("kernel: buffer cache corrupt (full but no tail)")
		}
		if victim.dirty {
			c.writebacks++
			if err := c.disk.WriteBlock(victim.blk, victim.data); err != nil {
				return err
			}
		}
		if victim.prev != nil {
			victim.prev.next = nil
		}
		c.tail = victim.prev
		if c.head == victim {
			c.head = nil
		}
		delete(c.blocks, victim.blk)
	}
	return nil
}

// get returns the cached buffer for blk, reading it from disk on a
// miss.
func (c *BufCache) get(blk int) (*buf, error) {
	if b, ok := c.blocks[blk]; ok {
		c.hits++
		c.k.HAL.KAccess(workBufCacheHit)
		c.touch(b)
		return b, nil
	}
	c.misses++
	c.k.HAL.KAccess(workBufCacheMiss)
	if err := c.evictIfFull(); err != nil {
		return nil, err
	}
	data, err := c.disk.ReadBlock(blk)
	if err != nil {
		return nil, err
	}
	b := &buf{blk: blk, data: data}
	c.blocks[blk] = b
	c.touch(b)
	return b, nil
}

// Read returns (a copy of) the block's contents.
func (c *BufCache) Read(blk int) ([]byte, error) {
	b, err := c.get(blk)
	if err != nil {
		return nil, err
	}
	out := make([]byte, hw.BlockSize)
	copy(out, b.data)
	return out, nil
}

// ReadPartial copies block bytes [off, off+n) into dst.
func (c *BufCache) ReadPartial(blk int, off, n int, dst []byte) error {
	b, err := c.get(blk)
	if err != nil {
		return err
	}
	copy(dst, b.data[off:off+n])
	return nil
}

// Write replaces the block's contents (write-back).
func (c *BufCache) Write(blk int, data []byte) error {
	b, err := c.get(blk)
	if err != nil {
		return err
	}
	copy(b.data, data)
	for i := len(data); i < hw.BlockSize; i++ {
		b.data[i] = 0
	}
	b.dirty = true
	return nil
}

// WritePartial updates bytes [off, off+len(src)) of the block.
func (c *BufCache) WritePartial(blk int, off int, src []byte) error {
	b, err := c.get(blk)
	if err != nil {
		return err
	}
	copy(b.data[off:], src)
	b.dirty = true
	return nil
}

// Zero clears a block in cache (fresh allocation; avoids a disk read
// for blocks whose old contents are dead).
func (c *BufCache) Zero(blk int) error {
	if b, ok := c.blocks[blk]; ok {
		c.hits++
		for i := range b.data {
			b.data[i] = 0
		}
		b.dirty = true
		c.touch(b)
		return nil
	}
	c.misses++
	c.k.HAL.KAccess(workBufCacheMiss)
	if err := c.evictIfFull(); err != nil {
		return err
	}
	b := &buf{blk: blk, data: make([]byte, hw.BlockSize), dirty: true}
	c.blocks[blk] = b
	c.touch(b)
	return nil
}

// Sync flushes every dirty block to disk.
func (c *BufCache) Sync() error {
	for _, b := range c.blocks {
		if b.dirty {
			c.writebacks++
			if err := c.disk.WriteBlock(b.blk, b.data); err != nil {
				return err
			}
			b.dirty = false
		}
	}
	return nil
}

// DropClean evicts every clean block from the cache (the experiment
// harness's equivalent of unmounting or dropping caches so reads hit
// the disk again). Dirty blocks are written back first.
func (c *BufCache) DropClean() error {
	if err := c.Sync(); err != nil {
		return err
	}
	c.blocks = make(map[int]*buf)
	c.head, c.tail = nil, nil
	return nil
}
