package kernel

import "fmt"

// moduleIntrinsics is the set of kernel services linked into loaded
// modules (the kernel symbols a FreeBSD module would resolve against).
// Module IR calls these by name.
func (k *Kernel) moduleIntrinsics(name string, args []uint64) (uint64, error) {
	switch name {
	case "klog_acc":
		// Accumulate 8 little-endian bytes toward a log line.
		v := args[0]
		for i := 0; i < 8; i++ {
			b := byte(v >> (8 * i))
			if b != 0 {
				k.modLogBuf = append(k.modLogBuf, b)
			}
		}
		return 0, nil
	case "klog_flush":
		// Emit the accumulated bytes to the system log.
		k.Console().Printf("kernel: %s", string(k.modLogBuf))
		k.modLogBuf = nil
		return 0, nil
	case "cur_pid":
		if k.cur != nil {
			return uint64(k.cur.PID), nil
		}
		return 0, nil
	case "panic":
		return 0, fmt.Errorf("kernel: module panic (%d)", args[0])
	}
	if len(name) > 4 && name[:4] == "asm:" {
		// Inline assembly effects (only reachable on the native
		// configuration; the Virtual Ghost translator refuses such
		// modules). Supported gadgets:
		switch name[4:] {
		case "read_cr3":
			return uint64(k.M.MMU.Root()), nil
		case "cli", "sti", "nop":
			return 0, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("kernel: unresolved module symbol %q", name)
}
