package kernel

import (
	"fmt"
	"strings"
)

// IntrinsicHandler implements one kernel service callable from module
// IR. The args slice may be arena-backed by the execution engine and is
// only valid for the duration of the call — handlers must copy anything
// they keep.
type IntrinsicHandler func(k *Kernel, args []uint64) (uint64, error)

// installIntrinsics builds the kernel-service linkage table for loaded
// modules (the kernel symbols a FreeBSD module would resolve against)
// once at boot, so intrinsic dispatch is a single map lookup rather
// than a string switch per call.
func (k *Kernel) installIntrinsics() {
	k.intrinsics = map[string]IntrinsicHandler{
		"klog_acc": func(k *Kernel, args []uint64) (uint64, error) {
			// Accumulate 8 little-endian bytes toward a log line.
			v := args[0]
			for i := 0; i < 8; i++ {
				b := byte(v >> (8 * i))
				if b != 0 {
					k.modLogBuf = append(k.modLogBuf, b)
				}
			}
			return 0, nil
		},
		"klog_flush": func(k *Kernel, args []uint64) (uint64, error) {
			// Emit the accumulated bytes to the system log.
			k.Console().Printf("kernel: %s", string(k.modLogBuf))
			k.modLogBuf = nil
			return 0, nil
		},
		"cur_pid": func(k *Kernel, args []uint64) (uint64, error) {
			if k.cur != nil {
				return uint64(k.cur.PID), nil
			}
			return 0, nil
		},
		"panic": func(k *Kernel, args []uint64) (uint64, error) {
			return 0, fmt.Errorf("kernel: module panic (%d)", args[0])
		},
		// Inline assembly effects (only reachable on the native
		// configuration; the Virtual Ghost translator refuses such
		// modules). Supported gadgets:
		"asm:read_cr3": func(k *Kernel, args []uint64) (uint64, error) {
			return uint64(k.M.MMU.Root()), nil
		},
		"asm:cli": asmNop,
		"asm:sti": asmNop,
		"asm:nop": asmNop,
	}
}

func asmNop(k *Kernel, args []uint64) (uint64, error) { return 0, nil }

// RegisterIntrinsic adds (or replaces) a kernel service available to
// module code, returning the previous handler if any. Tests and
// extension modules use it the same way SetSyscallHandler extends the
// syscall table.
func (k *Kernel) RegisterIntrinsic(name string, h IntrinsicHandler) IntrinsicHandler {
	old := k.intrinsics[name]
	k.intrinsics[name] = h
	return old
}

// moduleIntrinsics dispatches a module's call to a kernel service.
func (k *Kernel) moduleIntrinsics(name string, args []uint64) (uint64, error) {
	if h, ok := k.intrinsics[name]; ok {
		return h(k, args)
	}
	if len(name) > 4 && strings.HasPrefix(name, "asm:") {
		// Unknown assembly gadgets execute as no-ops, like unmodelled
		// instructions on real hardware.
		return 0, nil
	}
	return 0, fmt.Errorf("kernel: unresolved module symbol %q", name)
}
