package kernel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
)

// Signal numbers.
const (
	SIGKILL = 9
	SIGSEGV = 11
	SIGPIPE = 13
	SIGUSR1 = 30
	SIGUSR2 = 31
)

// User address-space layout.
const (
	UserText     hw.Virt = 0x0000000000400000
	UserHeapBase hw.Virt = 0x0000000010000000
	UserMmapBase hw.Virt = 0x00007f0000000000
	UserStackTop hw.Virt = 0x00007ffffffff000
	stackPages           = 16
	// maxFDs caps the per-process descriptor table. The table is a
	// grow-on-demand slice, so the cap is a resource limit (RLIMIT_NOFILE
	// analogue), not an allocation: a C10K server holding tens of
	// thousands of sockets pays only for the slots it uses.
	maxFDs = 32768
)

// procState is a process's scheduler state.
type procState uint8

const (
	procEmbryo procState = iota
	procRunnable
	procRunning
	procBlocked
	procZombie
	procDead
)

// control-flow sentinels for unwinding user code on the process
// goroutine.
type procSentinel int

const (
	exitSentinel procSentinel = iota
	execSentinel
)

// vmaKind classifies a virtual memory area.
type vmaKind uint8

const (
	vmaHeap vmaKind = iota
	vmaStack
	vmaAnon
	vmaFile
)

// VMA is one mapped region of a process's traditional address space.
type VMA struct {
	Base    hw.Virt
	NPages  int
	Kind    vmaKind
	ino     uint32 // backing inode for vmaFile
	fileOff int64
}

func (v *VMA) contains(va hw.Virt) bool {
	return va >= v.Base && va < v.Base+hw.Virt(v.NPages)*hw.PageSize
}

// HandlerFunc is user code invoked as a signal handler.
type HandlerFunc func(p *Proc, args []uint64)

// Proc is one process (with one thread, as in the paper's workloads).
// The exported methods below the scheduler section are its *user-mode
// runtime*: they execute on the process's own goroutine, exactly one of
// which runs at any time.
type Proc struct {
	PID  int
	Name string

	k    *Kernel
	tid  core.ThreadID
	root hw.Frame
	// cpu is the process's home CPU (run-queue index); work stealing
	// migrates it.
	cpu int

	state  procState
	cond   func() bool // block predicate while procBlocked
	runCh  chan struct{}
	yldCh  chan struct{}
	mainFn func(p *Proc)

	// Epoch-scheduler state (epoch.go; unused on single-CPU machines).
	// onCPU is the CPU this process is currently dispatched on — unlike
	// cpu (the run-queue home), it names the hw.CPU whose register
	// file, TLB and clock shard this process's user segments use, so it
	// must be read instead of M.Cur() on paths that can run during a
	// parallel user phase. kdepth counts nested kernel entries (a
	// signal handler issuing a syscall does not re-park). parkWhy tells
	// the scheduler why the goroutine last parked; inflight marks the
	// process as occupying a CPU slot so no second slot can pick it up.
	onCPU    int
	kdepth   int
	parkWhy  parkReason
	inflight bool

	// execNext holds the program image to switch to after execve.
	execNext func(p *Proc)
	// pendingChildMain carries the child closure across the fork
	// syscall.
	pendingChildMain func(p *Proc)

	parent   *Proc
	children map[int]*Proc
	exitCode int
	killed   bool

	// memory
	vmas     []*VMA
	pages    map[hw.Virt]hw.Frame // materialized user pages
	heapPgs  int
	mmapNext hw.Virt
	allocPtr hw.Virt // bump pointer for the user heap
	ghostBrk hw.Virt // bump pointer for ghost allocations

	// files: descriptor table, grown on demand up to maxFDs. fdHint is
	// the lowest possibly-free slot — every slot below it is occupied —
	// so allocFD keeps POSIX lowest-free semantics at amortized O(1)
	// instead of scanning the table per open.
	fds    []*FileDesc
	fdHint int

	// signals (kernel side)
	sigHandlers map[int]uint64
	sigPending  []int

	// handlerFns is the user-side registry mapping code addresses to
	// the Go closures that stand in for the code there.
	handlerFns map[uint64]HandlerFunc
	nextCode   uint64
}

// newProc allocates the kernel-side process structure and its address
// space with an initial stack.
func (k *Kernel) newProc(name string, parent *Proc, main func(p *Proc)) (*Proc, error) {
	root, err := k.HAL.NewAddressSpace()
	if err != nil {
		return nil, err
	}
	pid := k.nextPID
	k.nextPID++
	p := &Proc{
		PID:         pid,
		Name:        name,
		k:           k,
		tid:         core.ThreadID(pid),
		root:        root,
		state:       procEmbryo,
		runCh:       make(chan struct{}),
		yldCh:       make(chan struct{}),
		mainFn:      main,
		parent:      parent,
		children:    make(map[int]*Proc),
		pages:       make(map[hw.Virt]hw.Frame),
		mmapNext:    UserMmapBase,
		allocPtr:    UserHeapBase,
		ghostBrk:    hw.GhostBase,
		sigHandlers: make(map[int]uint64),
		handlerFns:  make(map[uint64]HandlerFunc),
		nextCode:    uint64(UserText) + 0x1000,
	}
	// Heap and stack VMAs exist from the start; pages materialize on
	// demand (page faults).
	p.vmas = append(p.vmas,
		&VMA{Base: UserHeapBase, NPages: 1 << 16, Kind: vmaHeap},
		&VMA{Base: UserStackTop - stackPages*hw.PageSize, NPages: stackPages, Kind: vmaStack},
	)
	// Home-CPU affinity: spread processes across the machine's CPUs
	// round-robin by PID (on one CPU everything lands on CPU 0).
	p.cpu = (pid - 1) % k.M.NumCPUs()
	k.procs[pid] = p
	k.schedAdd(p)
	if parent != nil {
		parent.children[pid] = p
	}
	return p, nil
}

// Spawn creates and starts a root process running main (the init-style
// entry used by experiments and the examples).
func (k *Kernel) Spawn(name string, main func(p *Proc)) (*Proc, error) {
	p, err := k.newProc(name, nil, main)
	if err != nil {
		return nil, err
	}
	p.start()
	return p, nil
}

// SpawnProgram starts an installed program: the binary is validated by
// the HAL (on Virtual Ghost a bad signature refuses to start) before
// the image runs.
func (k *Kernel) SpawnProgram(name string) (*Proc, error) {
	prog, ok := k.programs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoProgram, name)
	}
	p, err := k.newProc(name, nil, prog.Main)
	if err != nil {
		return nil, err
	}
	if err := k.HAL.LoadBinary(p.tid, prog.Bin); err != nil {
		p.state = procDead
		k.schedRemove(p)
		delete(k.procs, p.PID)
		return nil, err
	}
	p.start()
	return p, nil
}

// start launches the process goroutine and marks it runnable.
func (p *Proc) start() {
	p.state = procRunnable
	go p.top()
}

// top is the process goroutine body: it runs the program image,
// handling the exec/exit unwind sentinels, and finally parks the
// process as a zombie.
func (p *Proc) top() {
	<-p.runCh
	for {
		action := p.runImage()
		if action == execSentinel && p.execNext != nil {
			p.mainFn = p.execNext
			p.execNext = nil
			continue
		}
		break
	}
	// If the image returned without exit(), perform a normal exit. The
	// teardown is kernel work (it frees frames and scrubs ghost pages),
	// so it runs as a kernel segment on epoch-scheduled machines.
	if p.state != procZombie {
		p.enterKernel()
		p.sysExitInternal(p.exitCode)
		p.exitKernel()
	}
	// Final yield: hand the CPU back to the scheduler forever.
	p.state = procZombie
	p.parkWhy = parkEnd
	p.yldCh <- struct{}{}
}

// runImage runs the current program image, converting unwind panics
// into sentinel results.
func (p *Proc) runImage() (s procSentinel) {
	s = exitSentinel
	defer func() {
		if r := recover(); r != nil {
			if sv, ok := r.(procSentinel); ok {
				s = sv
				return
			}
			panic(r)
		}
	}()
	p.mainFn(p)
	return exitSentinel
}

// --- scheduler-facing internals ---------------------------------------

// parkReason tells the scheduler why a process goroutine handed back
// control (only consulted by the epoch scheduler, epoch.go).
type parkReason uint8

const (
	// parkEnd: the dispatch is over — the process yielded, blocked, or
	// became a zombie. Its CPU slot is freed.
	parkEnd parkReason = iota
	// parkKernel: user code reached a HAL entry (syscall, trap, ghost
	// or key operation) and wants a kernel segment. The process stays
	// in its slot; the serial kernel phase resumes it at the barrier.
	parkKernel
	// parkUserResume: the kernel segment finished; the process wants to
	// continue user execution in the next epoch's user phase.
	parkUserResume
)

// enterKernel marks the transition from user execution into kernel/HAL
// work. On an epoch-scheduled machine (NumCPUs > 1) the goroutine
// parks until the serial kernel phase at the epoch barrier resumes it,
// so kernel work — shared clock, shared kernel state, IPIs, TLB
// shootdowns — never runs concurrently with another CPU's user
// segment. Nested entries (a signal handler issuing a syscall inside a
// kernel segment) do not re-park. On single-CPU machines this is a
// counter increment and nothing else.
func (p *Proc) enterKernel() {
	p.kdepth++
	if p.kdepth > 1 || !p.k.epochMode {
		return
	}
	p.parkWhy = parkKernel
	p.yldCh <- struct{}{}
	<-p.runCh
}

// exitKernel closes the outermost kernel entry. On an epoch-scheduled
// machine the goroutine parks until the next epoch's user phase
// resumes it (user execution must not continue inside the serial
// kernel phase).
func (p *Proc) exitKernel() {
	p.kdepth--
	if p.kdepth > 0 || !p.k.epochMode {
		return
	}
	p.parkWhy = parkUserResume
	p.yldCh <- struct{}{}
	<-p.runCh
}

// block parks the process until cond becomes true. Must be called on
// the process goroutine (from user code or a syscall handler running in
// process context).
func (p *Proc) block(cond func() bool) {
	if cond() {
		return
	}
	p.state = procBlocked
	p.cond = cond
	p.parkWhy = parkEnd
	p.yldCh <- struct{}{}
	<-p.runCh
	p.state = procRunning
	p.checkKilled()
}

// yield voluntarily gives up the CPU.
func (p *Proc) yield() {
	p.state = procRunnable
	p.parkWhy = parkEnd
	p.yldCh <- struct{}{}
	<-p.runCh
	p.state = procRunning
	p.checkKilled()
}

// checkKilled unwinds the process if it was force-killed while off CPU.
func (p *Proc) checkKilled() {
	if p.killed && p.state != procZombie {
		p.sysExitInternal(128 + SIGKILL)
		panic(exitSentinel)
	}
}

// --- user-mode runtime --------------------------------------------------

// Kernel returns the kernel this process runs on (used by the libc and
// application layers).
func (p *Proc) Kernel() *Kernel { return p.k }

// TID returns the HAL thread ID.
func (p *Proc) TID() core.ThreadID { return p.tid }

// Root returns the address-space root (used by attack demonstrations
// that operate on the victim's address space from kernel context).
func (p *Proc) Root() hw.Frame { return p.root }

// Syscall issues a system call from user mode. It also runs the
// post-trap user work: a pending pushed signal handler, preemption.
// The whole body — trap, handler dispatch, pushed signal handlers,
// preemption check — is one kernel segment: on an epoch-scheduled
// machine it runs serially at the epoch barrier.
func (p *Proc) Syscall(num uint64, args ...uint64) uint64 {
	var av [6]uint64
	copy(av[:], args)
	p.enterKernel()
	ret := p.k.HAL.Syscall(num, av)
	// If the saved program counter was redirected while we were in the
	// kernel (interrupted-state tampering), the CPU resumes wherever it
	// now points — including attacker-planted code. Under Virtual
	// Ghost the saved state is unreachable, so this never triggers.
	if rip := p.k.M.Cur().Regs.RIP; rip != 0 {
		if fn, ok := p.k.planted[rip]; ok {
			p.k.M.Cur().Regs.RIP = 0
			fn(p, nil)
		}
	}
	p.runPendingHandler()
	p.checkKilled()
	if p.k.M.Timer.Fired() && p.state == procRunning {
		p.yield()
	}
	p.exitKernel()
	return ret
}

// runPendingHandler executes a handler pushed onto this thread's
// interrupt context by sva.ipush.function (signal delivery). Control
// transfers to whatever code lives at the pushed address: the
// process's registered handlers, or — on the native configuration —
// attacker-planted code.
func (p *Proc) runPendingHandler() {
	addr, args, ok := p.k.HAL.PoppedHandler(p.tid)
	if !ok {
		return
	}
	// The signal trampoline and handler prologue/epilogue cost user
	// cycles on every configuration.
	p.Compute(2800)
	if fn, ok := p.handlerFns[addr]; ok {
		fn(p, args)
	} else if fn, ok := p.k.planted[addr]; ok {
		fn(p, args)
	}
	// sigreturn: restore the pre-signal interrupt context.
	var av [6]uint64
	p.k.HAL.Syscall(SysSigret, av)
}

// RegisterCode places user code (a Go closure standing in for machine
// code) at a fresh address in the process image and returns the
// address. Signal handlers are registered this way; the libc wrapper
// then calls sva.permitFunction on the address.
func (p *Proc) RegisterCode(fn HandlerFunc) uint64 {
	addr := p.nextCode
	p.nextCode += 0x40
	p.handlerFns[addr] = fn
	return addr
}

// PermitFunction registers addr with the VM as a valid signal-handler
// target (sva.permitFunction). Applications call this via the libc
// signal wrappers.
func (p *Proc) PermitFunction(addr uint64) error {
	p.enterKernel()
	defer p.exitKernel()
	return p.k.HAL.PermitFunction(p.tid, addr)
}

// AllocGM maps npages of ghost memory at the top of the process's ghost
// partition bump allocator and returns the base address (the allocgm
// instruction; the libc ghost malloc sits on top of this). Like every
// HAL entry from user code, it is a kernel segment on epoch-scheduled
// machines: the VM's mapping work runs serially at the barrier.
func (p *Proc) AllocGM(npages int) (hw.Virt, error) {
	p.enterKernel()
	defer p.exitKernel()
	va := p.ghostBrk
	if err := p.k.HAL.AllocGhost(p.tid, p.root, va, npages); err != nil {
		return 0, err
	}
	p.ghostBrk += hw.Virt(npages) * hw.PageSize
	return va, nil
}

// FreeGM releases ghost pages (freegm). Kernel segment: the free runs
// the TLB-shootdown protocol, which must happen at the epoch barrier.
func (p *Proc) FreeGM(va hw.Virt, npages int) error {
	p.enterKernel()
	defer p.exitKernel()
	return p.k.HAL.FreeGhost(p.tid, p.root, va, npages)
}

// GetKey fetches the application key from the VM (sva.getKey).
func (p *Proc) GetKey() ([]byte, error) {
	p.enterKernel()
	defer p.exitKernel()
	return p.k.HAL.GetKey(p.tid)
}

// TrustedRandom reads the VM's trusted random-number instruction. The
// hardware RNG is shared machine state, so this too is a kernel
// segment on epoch-scheduled machines (and its draw order is the
// deterministic barrier order, not a host race).
func (p *Proc) TrustedRandom() uint64 {
	p.enterKernel()
	defer p.exitKernel()
	return p.k.HAL.Random()
}

// Exit terminates the process with the given code.
func (p *Proc) Exit(code int) {
	p.Syscall(SysExit, uint64(code))
	panic(exitSentinel)
}

// Fork creates a child process that runs childMain, returning the child
// PID (fork+closure stands in for fork's control-flow duplication,
// which Go cannot express; the kernel-side work is the real fork path).
func (p *Proc) Fork(childMain func(c *Proc)) int {
	p.pendingChildMain = childMain
	ret := p.Syscall(SysFork)
	p.pendingChildMain = nil
	if _, bad := IsErr(ret); bad {
		return -1
	}
	return int(ret)
}

// Exec replaces the process image with the named installed program.
// It does not return on success.
func (p *Proc) Exec(name string) error {
	pathPtr := p.PushString(name)
	ret := p.Syscall(SysExecve, pathPtr)
	if e, bad := IsErr(ret); bad {
		return fmt.Errorf("kernel: execve %q: errno %d", name, e)
	}
	panic(execSentinel)
}

// Wait blocks until a child exits and returns its PID and exit code.
func (p *Proc) Wait() (pid, code int) {
	statusPtr := p.Alloc(8)
	ret := p.Syscall(SysWait4, statusPtr)
	if _, bad := IsErr(ret); bad {
		return -1, -1
	}
	return int(ret), int(p.Load(statusPtr, 8))
}

// --- user memory access -------------------------------------------------

// Alloc bump-allocates n bytes of traditional user heap (8-byte
// aligned) and returns the address. Pages materialize via page faults.
func (p *Proc) Alloc(n int) uint64 {
	n = (n + 7) &^ 7
	va := p.allocPtr
	p.allocPtr += hw.Virt(n)
	return uint64(va)
}

// PushString copies a Go string into fresh user heap memory (with a NUL
// terminator) and returns its address — how user code materializes path
// arguments.
func (p *Proc) PushString(s string) uint64 {
	va := p.Alloc(len(s) + 1)
	b := append([]byte(s), 0)
	p.Write(va, b)
	return va
}

// faultingAccess retries a user memory access across page faults,
// raising each fault to the kernel.
func (p *Proc) faultingAccess(do func() error) {
	for i := 0; i < 64; i++ {
		err := do()
		if err == nil {
			return
		}
		var f *hw.Fault
		if errors.As(err, &f) {
			// The fault itself is a kernel segment: the handler mutates
			// page tables and the frame allocator, so on epoch-scheduled
			// machines it runs serially at the barrier.
			p.enterKernel()
			p.k.HAL.Trap(hw.TrapPageFault, uint64(f.VA))
			p.runPendingHandler()
			p.checkKilled()
			p.exitKernel()
			continue
		}
		panic(fmt.Sprintf("kernel: user access failed: %v", err))
	}
	// Unresolvable fault: the kernel will have killed the process.
	p.checkKilled()
	panic(fmt.Sprintf("kernel: pid %d unresolvable fault", p.PID))
}

// cpuHW returns the hardware CPU this process is dispatched on. User
// memory accesses must go through it (not M.Cur()): during a parallel
// user phase several processes are in flight at once and M.Cur() names
// whichever CPU the serial scheduler touched last.
func (p *Proc) cpuHW() *hw.CPU { return p.k.M.CPUs[p.onCPU] }

// Read copies n bytes from user memory into a fresh Go slice.
func (p *Proc) Read(va uint64, n int) []byte {
	var out []byte
	p.faultingAccess(func() error {
		b, err := p.cpuHW().CopyFromVirt(hw.Virt(va), n)
		if err != nil {
			return err
		}
		out = b
		return nil
	})
	return out
}

// Write copies bytes into user memory.
func (p *Proc) Write(va uint64, b []byte) {
	p.faultingAccess(func() error {
		return p.cpuHW().CopyToVirt(hw.Virt(va), b)
	})
}

// Load reads a size-byte little-endian value from user memory.
func (p *Proc) Load(va uint64, size int) uint64 {
	var out uint64
	p.faultingAccess(func() error {
		v, err := p.cpuHW().LoadVirt(hw.Virt(va), size)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	return out
}

// Store writes a size-byte little-endian value to user memory.
func (p *Proc) Store(va uint64, size int, v uint64) {
	p.faultingAccess(func() error {
		return p.cpuHW().StoreVirt(hw.Virt(va), size, v)
	})
}

// Compute charges n cycles of pure user computation (on this process's
// CPU shard during a parallel user phase).
func (p *Proc) Compute(cycles uint64) {
	p.k.M.Clock.ChargeOn(p.onCPU, hw.TagCompute, cycles)
}

// ComputeCrypt charges n cycles of user-level cryptography (the
// ghosting libc's AES-GCM work), so breakdowns separate crypto from
// plain computation.
func (p *Proc) ComputeCrypt(cycles uint64) {
	p.k.M.Clock.ChargeOn(p.onCPU, hw.TagCrypt, cycles)
}
