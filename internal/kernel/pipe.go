package kernel

// Pipe is the kernel IPC pipe: a bounded byte queue with blocking
// semantics on both ends.
type Pipe struct {
	buf     []byte
	cap     int
	readers int
	writers int
}

const pipeCapacity = 64 * 1024

// pipeRead is the read end; pipeWrite the write end. They share the
// Pipe.
type pipeRead struct{ p *Pipe }
type pipeWrite struct{ p *Pipe }

// NewPipe creates a pipe and returns its two ends.
func NewPipe() (FileOps, FileOps) {
	p := &Pipe{cap: pipeCapacity, readers: 1, writers: 1}
	return &pipeRead{p}, &pipeWrite{p}
}

func (r *pipeRead) ReadAt(proc *Proc, b []byte, off int64) (int, error) {
	p := r.p
	// Block until data arrives or every writer is gone.
	proc.block(func() bool { return len(p.buf) > 0 || p.writers == 0 })
	if len(p.buf) == 0 {
		return 0, nil // EOF
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

func (r *pipeRead) WriteAt(proc *Proc, b []byte, off int64) (int, error) {
	return 0, ErrNotWritable
}

func (r *pipeRead) Size() int64 { return int64(len(r.p.buf)) }
func (r *pipeRead) Ready() bool { return len(r.p.buf) > 0 || r.p.writers == 0 }
func (r *pipeRead) Close(k *Kernel) error {
	r.p.readers--
	return nil
}

func (w *pipeWrite) ReadAt(proc *Proc, b []byte, off int64) (int, error) {
	return 0, ErrNotReadable
}

func (w *pipeWrite) WriteAt(proc *Proc, b []byte, off int64) (int, error) {
	p := w.p
	written := 0
	for written < len(b) {
		proc.block(func() bool { return len(p.buf) < p.cap || p.readers == 0 })
		if p.readers == 0 {
			// EPIPE: the caller turns this into a signal/errno.
			return written, ErrPipeBroken
		}
		room := p.cap - len(p.buf)
		chunk := len(b) - written
		if chunk > room {
			chunk = room
		}
		p.buf = append(p.buf, b[written:written+chunk]...)
		written += chunk
	}
	return written, nil
}

func (w *pipeWrite) Size() int64 { return int64(len(w.p.buf)) }
func (w *pipeWrite) Ready() bool { return false }
func (w *pipeWrite) Close(k *Kernel) error {
	w.p.writers--
	return nil
}

// Pipe errors.
var (
	ErrNotWritable = errnoError{EBADF, "not writable"}
	ErrNotReadable = errnoError{EBADF, "not readable"}
	ErrPipeBroken  = errnoError{EPIPE, "broken pipe"}
)

// errnoError carries an errno through the FileOps error channel.
type errnoError struct {
	code uint64
	msg  string
}

func (e errnoError) Error() string { return "kernel: " + e.msg }

// errnoOf extracts an errno from an error (EFAULT if unknown).
func errnoOf(err error) uint64 {
	if err == nil {
		return 0
	}
	if ee, ok := err.(errnoError); ok {
		return ee.code
	}
	switch err {
	case ErrNotFound:
		return ENOENT
	case ErrExists:
		return EEXIST
	case ErrIsDir:
		return EISDIR
	case ErrNotDir, ErrNotEmpty:
		return ENOTDIR
	case ErrNoSpace, ErrTooBig:
		return ENOSPC
	case ErrBadName:
		return EINVAL
	}
	return EFAULT
}
