package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hw"
)

func bootFS(t *testing.T) (*Kernel, *FS) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultConfig())
	hal, err := core.NewNativeHAL(m)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Boot(hal)
	if err != nil {
		t.Fatal(err)
	}
	return k, k.FS
}

func TestFSCreateLookupUnlink(t *testing.T) {
	_, fs := bootFS(t)
	ino, err := fs.Create("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup("/a.txt")
	if err != nil || got != ino {
		t.Fatalf("lookup = %d, %v", got, err)
	}
	if _, err := fs.Create("/a.txt"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := fs.Unlink("/a.txt", false); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("/a.txt"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup after unlink: %v", err)
	}
}

func TestFSDirectories(t *testing.T) {
	_, fs := bootFS(t)
	if _, err := fs.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/dir/inner.txt"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/dir")
	if err != nil || len(names) != 1 || names[0] != "inner.txt" {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	// rmdir of a non-empty directory fails.
	if err := fs.Unlink("/dir", true); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("non-empty rmdir: %v", err)
	}
	if err := fs.Unlink("/dir/inner.txt", false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/dir", true); err != nil {
		t.Errorf("empty rmdir: %v", err)
	}
}

func TestFSPathNormalization(t *testing.T) {
	_, fs := bootFS(t)
	if _, err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	ino, err := fs.Create("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/d/f", "/d//f", "/d/./f", "/d/../d/f", "//d/f"} {
		got, err := fs.Lookup(p)
		if err != nil || got != ino {
			t.Errorf("lookup %q = %d, %v", p, got, err)
		}
	}
	if _, err := fs.Lookup("relative"); !errors.Is(err, ErrBadName) {
		t.Errorf("relative path: %v", err)
	}
}

func TestFSBadNames(t *testing.T) {
	_, fs := bootFS(t)
	long := "/" + string(bytes.Repeat([]byte{'x'}, maxNameLen+1))
	if _, err := fs.Create(long); !errors.Is(err, ErrBadName) {
		t.Errorf("overlong name accepted: %v", err)
	}
}

func TestFSWriteReadSmall(t *testing.T) {
	_, fs := bootFS(t)
	ino, _ := fs.Create("/f")
	data := []byte("hello block world")
	if n, err := fs.WriteAt(ino, data, 0); err != nil || n != len(data) {
		t.Fatalf("write = %d, %v", n, err)
	}
	buf := make([]byte, 64)
	n, err := fs.ReadAt(ino, buf, 0)
	if err != nil || n != len(data) || !bytes.Equal(buf[:n], data) {
		t.Fatalf("read = %d %q %v", n, buf[:n], err)
	}
}

func TestFSOffsetsAndPartialBlocks(t *testing.T) {
	_, fs := bootFS(t)
	ino, _ := fs.Create("/f")
	// Write at a non-aligned offset inside the first block.
	if _, err := fs.WriteAt(ino, []byte("abc"), 100); err != nil {
		t.Fatal(err)
	}
	// Byte 0..99 are a hole and must read as zeros.
	buf := make([]byte, 103)
	n, err := fs.ReadAt(ino, buf, 0)
	if err != nil || n != 103 {
		t.Fatalf("read = %d, %v", n, err)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, buf[i])
		}
	}
	if string(buf[100:]) != "abc" {
		t.Errorf("tail = %q", buf[100:])
	}
	// Read past EOF returns 0.
	if n, _ := fs.ReadAt(ino, buf, 500); n != 0 {
		t.Errorf("read past EOF = %d", n)
	}
}

func TestFSLargeFileIndirectBlocks(t *testing.T) {
	_, fs := bootFS(t)
	ino, _ := fs.Create("/big")
	// Beyond the 10 direct blocks (40 KiB) into the indirect range.
	size := 60 * 1024
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i / 3)
	}
	if n, err := fs.WriteAt(ino, data, 0); err != nil || n != size {
		t.Fatalf("write = %d, %v", n, err)
	}
	st, _ := fs.Stat(ino)
	if st.Size != int64(size) {
		t.Errorf("size = %d", st.Size)
	}
	got := make([]byte, size)
	if n, err := fs.ReadAt(ino, got, 0); err != nil || n != size {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("indirect-block data corrupt")
	}
}

func TestFSHolePastDirectBlocks(t *testing.T) {
	_, fs := bootFS(t)
	ino, _ := fs.Create("/sparse")
	off := int64(50 * 1024) // lands in the indirect range
	if _, err := fs.WriteAt(ino, []byte("tail"), off); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := fs.ReadAt(ino, buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Errorf("hole not zero")
	}
}

func TestFSMaxFileSize(t *testing.T) {
	_, fs := bootFS(t)
	ino, _ := fs.Create("/huge")
	if _, err := fs.WriteAt(ino, []byte("x"), MaxFileSize); !errors.Is(err, ErrTooBig) {
		t.Errorf("write past max size: %v", err)
	}
}

func TestFSUnlinkFreesBlocks(t *testing.T) {
	_, fs := bootFS(t)
	// Determine the free-block baseline by counting bitmap bits.
	countUsed := func() int {
		used := 0
		for b := 0; b < fs.nblocks; b++ {
			ok, err := fs.bitmapGet(fs.blockBitmap, b)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				used++
			}
		}
		return used
	}
	// Force the root directory's data block to exist first so the
	// baseline excludes it (directories keep their blocks).
	if _, err := fs.Create("/tmp0"); err != nil {
		t.Fatal(err)
	}
	before := countUsed()
	ino, _ := fs.Create("/tmp1")
	if _, err := fs.WriteAt(ino, make([]byte, 50*1024), 0); err != nil {
		t.Fatal(err)
	}
	if countUsed() <= before {
		t.Fatalf("blocks not allocated")
	}
	if err := fs.Unlink("/tmp1", false); err != nil {
		t.Fatal(err)
	}
	if got := countUsed(); got != before {
		t.Errorf("blocks leaked: %d used, want %d", got, before)
	}
}

func TestFSInodeReuse(t *testing.T) {
	_, fs := bootFS(t)
	ino1, _ := fs.Create("/r1")
	if err := fs.Unlink("/r1", false); err != nil {
		t.Fatal(err)
	}
	ino2, _ := fs.Create("/r2")
	if ino2 != ino1 {
		t.Logf("inode not immediately reused (%d vs %d) — acceptable", ino1, ino2)
	}
	st, err := fs.Stat(ino2)
	if err != nil || st.Size != 0 {
		t.Errorf("reused inode dirty: %+v, %v", st, err)
	}
}

// TestFSWriteReadProperty: random (offset, data) writes followed by
// reads return exactly what a shadow model (a Go byte slice) predicts.
func TestFSWriteReadProperty(t *testing.T) {
	_, fs := bootFS(t)
	ino, _ := fs.Create("/prop")
	shadow := make([]byte, MaxFileSize)
	maxOff := 100 * 1024
	written := 0
	fn := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := int(off) % maxOff
		if n, err := fs.WriteAt(ino, data, int64(o)); err != nil || n != len(data) {
			return false
		}
		copy(shadow[o:], data)
		if o+len(data) > written {
			written = o + len(data)
		}
		buf := make([]byte, len(data)+32)
		n, err := fs.ReadAt(ino, buf, int64(o))
		if err != nil {
			return false
		}
		return bytes.Equal(buf[:minI(n, len(data))], shadow[o:o+minI(n, len(data))])
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFSPersistenceThroughCacheDrop(t *testing.T) {
	_, fs := bootFS(t)
	ino, _ := fs.Create("/persist")
	data := []byte("must survive the cache")
	if _, err := fs.WriteAt(ino, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Cache().DropClean(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := fs.ReadAt(ino, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("data lost across cache drop: %q", buf)
	}
}

func TestFSManyFiles(t *testing.T) {
	_, fs := bootFS(t)
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := fs.Create(fmt.Sprintf("/many%03d", i)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	names, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != n {
		t.Errorf("readdir = %d entries", len(names))
	}
	for i := 0; i < n; i += 2 {
		if err := fs.Unlink(fmt.Sprintf("/many%03d", i), false); err != nil {
			t.Fatalf("unlink %d: %v", i, err)
		}
	}
	names, _ = fs.ReadDir("/")
	if len(names) != n/2 {
		t.Errorf("after unlinks: %d entries", len(names))
	}
	// Directory slots are reused.
	if _, err := fs.Create("/fresh"); err != nil {
		t.Fatal(err)
	}
}

func TestBufCacheLRUAndWriteback(t *testing.T) {
	k, _ := bootFS(t)
	cache := NewBufCache(k, k.M.Disk, 4)
	// Touch 6 distinct blocks through a 4-entry cache.
	for blk := 100; blk < 106; blk++ {
		if err := cache.Write(blk, []byte{byte(blk)}); err != nil {
			t.Fatal(err)
		}
	}
	_, misses, writebacks := cache.Stats()
	if misses == 0 || writebacks == 0 {
		t.Errorf("expected misses and writebacks, got %d/%d", misses, writebacks)
	}
	// Evicted dirty blocks must be readable from disk again.
	got, err := cache.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 {
		t.Errorf("writeback lost data: %d", got[0])
	}
	// Hits do not touch the disk.
	r0, _ := k.M.Disk.Stats()
	if _, err := cache.Read(100); err != nil {
		t.Fatal(err)
	}
	r1, _ := k.M.Disk.Stats()
	if r1 != r0 {
		t.Errorf("cache hit went to disk")
	}
}

func TestBufCacheSync(t *testing.T) {
	k, _ := bootFS(t)
	cache := NewBufCache(k, k.M.Disk, 16)
	if err := cache.Write(200, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := cache.Sync(); err != nil {
		t.Fatal(err)
	}
	raw := k.M.Disk.PeekBlock(200)
	if !bytes.HasPrefix(raw, []byte("dirty")) {
		t.Errorf("sync did not reach the disk")
	}
}

// TestDiskErrorPropagates: an injected media error surfaces as a
// syscall error and the kernel stays functional.
func TestDiskErrorPropagates(t *testing.T) {
	k, fs := bootFS(t)
	// Force subsequent reads to hit the disk.
	ino, _ := fs.Create("/flaky")
	if _, err := fs.WriteAt(ino, []byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Cache().DropClean(); err != nil {
		t.Fatal(err)
	}
	k.M.Disk.InjectFailures(1)
	buf := make([]byte, 4)
	if _, err := fs.ReadAt(ino, buf, 0); err == nil {
		t.Errorf("injected disk failure swallowed")
	}
	// After the failure window, the data is still there.
	if _, err := fs.ReadAt(ino, buf, 0); err != nil {
		t.Errorf("read after recovery: %v", err)
	}
	if string(buf) != "data" {
		t.Errorf("data corrupted across failure: %q", buf)
	}
}

// TestDiskErrorDuringSyscall: the same failure through the syscall
// interface kills nothing.
func TestDiskErrorDuringSyscall(t *testing.T) {
	k, _ := bootFS(t)
	k.WriteKernelFile("/flaky2", []byte("payload"))
	_ = k.FS.Cache().DropClean()
	var readErr, readOK uint64
	_, err := k.Spawn("p", func(p *Proc) {
		fd := p.Syscall(SysOpen, p.PushString("/flaky2"), ORdOnly)
		k.M.Disk.InjectFailures(1)
		buf := p.Alloc(16)
		readErr = p.Syscall(SysRead, fd, buf, 7)
		p.Syscall(SysLseek, fd, 0, 0)
		readOK = p.Syscall(SysRead, fd, buf, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if _, bad := IsErr(readErr); !bad {
		t.Errorf("first read should fail, got %d", int64(readErr))
	}
	if readOK != 7 {
		t.Errorf("second read = %d", int64(readOK))
	}
}
