package kernel

import (
	"testing"

	"repro/internal/core"
)

// TestSetSyscallHandlerRoundTrip pins the interposition contract the §7
// rootkit (and legitimate extension modules) rely on: replacing a
// handler returns the previous one, the replacement can delegate to it,
// and restoring the returned handler brings back identical behaviour.
func TestSetSyscallHandlerRoundTrip(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)

	getpid := func() uint64 {
		var got uint64
		if _, err := k.Spawn("t", func(p *Proc) {
			got = p.Syscall(SysGetpid)
		}); err != nil {
			t.Fatalf("Spawn: %v", err)
		}
		k.RunUntilIdle()
		return got
	}
	base := getpid()
	if base == 0 {
		t.Fatal("getpid returned 0 before interposition")
	}

	// Replace: the wrapper must receive the original handler back.
	calls := 0
	var prev SyscallHandler
	prev = k.SetSyscallHandler(SysGetpid, func(k *Kernel, p *Proc, ic core.IContext) uint64 {
		calls++
		return prev(k, p, ic)
	})
	if prev == nil {
		t.Fatal("SetSyscallHandler returned nil previous handler")
	}

	// The wrapper interposes but, delegating, preserves semantics
	// (PIDs increment per spawn, so compare against the expected next).
	if got := getpid(); got != base+1 {
		t.Errorf("interposed getpid = %d, want %d", got, base+1)
	}
	if calls != 1 {
		t.Errorf("wrapper ran %d times, want 1", calls)
	}

	// Restore the returned handler: behaviour identical, wrapper dead.
	if back := k.SetSyscallHandler(SysGetpid, prev); back == nil {
		t.Error("restoring returned nil previous handler")
	}
	if got := getpid(); got != base+2 {
		t.Errorf("restored getpid = %d, want %d", got, base+2)
	}
	if calls != 1 {
		t.Errorf("wrapper ran after restore (calls = %d)", calls)
	}
}

// TestSyscallProfile checks the per-syscall cycle histogram: counts
// match the dispatches made, entries carry names, and min/mean/max are
// ordered.
func TestSyscallProfile(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	const n = 5
	if _, err := k.Spawn("t", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Syscall(SysGetpid)
		}
	}); err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	k.RunUntilIdle()

	prof := k.SyscallProfile()
	if len(prof) == 0 {
		t.Fatal("empty syscall profile after dispatches")
	}
	var got *SyscallCycles
	for i := range prof {
		if prof[i].Num == SysGetpid {
			got = &prof[i]
		}
	}
	if got == nil {
		t.Fatal("getpid missing from profile")
	}
	if got.Name != "getpid" {
		t.Errorf("profile name = %q, want getpid", got.Name)
	}
	// The runtime exits the process with an implicit exit syscall, so
	// getpid itself must have exactly n dispatches.
	if got.Count != n {
		t.Errorf("getpid count = %d, want %d", got.Count, n)
	}
	if got.Min == 0 || got.Min > got.Max {
		t.Errorf("min/max unordered: min=%d max=%d", got.Min, got.Max)
	}
	if m := got.Mean(); m < float64(got.Min) || m > float64(got.Max) {
		t.Errorf("mean %f outside [min=%d, max=%d]", m, got.Min, got.Max)
	}
	// Profile is sorted by descending total cycles.
	for i := 1; i < len(prof); i++ {
		if prof[i].Cycles > prof[i-1].Cycles {
			t.Errorf("profile unsorted at %d: %d > %d", i, prof[i].Cycles, prof[i-1].Cycles)
		}
	}
}
