package kernel

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

// bootPair boots two native kernels over one shared clock with linked
// NICs.
func bootPair(t *testing.T) (*Kernel, *Kernel, *World) {
	t.Helper()
	clock := &hw.Clock{}
	mA := hw.NewMachineWith(hw.DefaultConfig(), clock)
	mB := hw.NewMachineWith(hw.MachineConfig{MemFrames: 16384, DiskBlocks: 1024, Seed: 2}, clock)
	hw.Connect(mA.NIC, mB.NIC)
	halA, err := core.NewNativeHAL(mA)
	if err != nil {
		t.Fatal(err)
	}
	halB, err := core.NewNativeHAL(mB)
	if err != nil {
		t.Fatal(err)
	}
	kA, err := Boot(halA)
	if err != nil {
		t.Fatal(err)
	}
	kB, err := Boot(halB)
	if err != nil {
		t.Fatal(err)
	}
	return kA, kB, &World{Kernels: []*Kernel{kA, kB}}
}

func TestCrossMachineTransfer(t *testing.T) {
	server, client, world := bootPair(t)
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i % 253)
	}
	var received []byte
	if _, err := server.Spawn("srv", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 7000)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysAccept, sfd)
		buf := p.Alloc(32 * 1024)
		for len(received) < len(payload) {
			n := p.Syscall(SysRecv, cfd, buf, 32*1024)
			if _, bad := IsErr(n); bad || n == 0 {
				break
			}
			received = append(received, p.Read(buf, int(n))...)
		}
	}); err != nil {
		t.Fatal(err)
	}
	done := false
	if _, err := client.Spawn("cli", func(p *Proc) {
		fd := p.Syscall(SysSocket)
		p.Syscall(SysConnect, fd, 7000, RemoteHost)
		buf := p.Alloc(len(payload))
		p.Write(buf, payload)
		p.Syscall(SysSendTo, fd, buf, uint64(len(payload)))
		p.Syscall(SysClose, fd)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done && len(received) >= len(payload) }) {
		t.Fatalf("transfer stalled: got %d/%d", len(received), len(payload))
	}
	if !bytes.Equal(received, payload) {
		t.Errorf("payload corrupted in transit")
	}
}

func TestLoopbackAndRemoteCoexist(t *testing.T) {
	server, client, world := bootPair(t)
	// A local service and a remote service on the same port number.
	var localGot, remoteGot string
	if _, err := server.Spawn("remote-srv", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 9000)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysAccept, sfd)
		buf := p.Alloc(64)
		n := p.Syscall(SysRecv, cfd, buf, 64)
		remoteGot = string(p.Read(buf, int(n)))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Spawn("local-srv", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 9000)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysAccept, sfd)
		buf := p.Alloc(64)
		n := p.Syscall(SysRecv, cfd, buf, 64)
		localGot = string(p.Read(buf, int(n)))
	}); err != nil {
		t.Fatal(err)
	}
	done := false
	if _, err := client.Spawn("cli", func(p *Proc) {
		// Local connection.
		fd := p.Syscall(SysSocket)
		p.Syscall(SysConnect, fd, 9000, LocalHost)
		m1 := p.PushString("to-local")
		p.Syscall(SysSendTo, fd, m1, 8)
		// Remote connection to the same port number on the peer.
		fd2 := p.Syscall(SysSocket)
		p.Syscall(SysConnect, fd2, 9000, RemoteHost)
		m2 := p.PushString("to-remote")
		p.Syscall(SysSendTo, fd2, m2, 9)
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !world.Run(func() bool { return done && localGot != "" && remoteGot != "" }) {
		t.Fatalf("stalled: local=%q remote=%q", localGot, remoteGot)
	}
	if localGot != "to-local" || remoteGot != "to-remote" {
		t.Errorf("misrouted: local=%q remote=%q", localGot, remoteGot)
	}
}

func TestSocketEOFOnClose(t *testing.T) {
	k, _, _ := bootPair(t)
	var sawEOF bool
	if _, err := k.Spawn("srv", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 5000)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysAccept, sfd)
		buf := p.Alloc(16)
		p.Syscall(SysRecv, cfd, buf, 16) // "hi"
		n := p.Syscall(SysRecv, cfd, buf, 16)
		sawEOF = n == 0
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("cli", func(p *Proc) {
		fd := p.Syscall(SysSocket)
		p.Syscall(SysConnect, fd, 5000, LocalHost)
		m := p.PushString("hi")
		p.Syscall(SysSendTo, fd, m, 2)
		p.Syscall(SysClose, fd)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if !sawEOF {
		t.Errorf("no EOF after peer close")
	}
}

func TestBindConflict(t *testing.T) {
	k, _, _ := bootPair(t)
	var second uint64
	if _, err := k.Spawn("binder", func(p *Proc) {
		a := p.Syscall(SysSocket)
		p.Syscall(SysBind, a, 4000)
		p.Syscall(SysListen, a)
		b := p.Syscall(SysSocket)
		second = p.Syscall(SysBind, b, 4000)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if e, bad := IsErr(second); !bad || e != EEXIST {
		t.Errorf("second bind = %d", int64(second))
	}
}

func TestSelectOnSocket(t *testing.T) {
	k, _, _ := bootPair(t)
	var mask uint64
	if _, err := k.Spawn("srv", func(p *Proc) {
		sfd := p.Syscall(SysSocket)
		p.Syscall(SysBind, sfd, 3000)
		p.Syscall(SysListen, sfd)
		cfd := p.Syscall(SysAccept, sfd)
		arr := p.Alloc(4)
		p.Store(arr, 4, cfd)
		// Block in select until the client's data lands.
		mask = p.Syscall(SysSelect, arr, 1, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("cli", func(p *Proc) {
		fd := p.Syscall(SysSocket)
		p.Syscall(SysConnect, fd, 3000, LocalHost)
		m := p.PushString("ping")
		p.Syscall(SysSendTo, fd, m, 4)
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if mask != 1 {
		t.Errorf("select mask = %#x", mask)
	}
}

func TestSchedulerFairness(t *testing.T) {
	k, _, _ := bootPair(t)
	counts := map[int]int{}
	for i := 0; i < 3; i++ {
		id := i
		if _, err := k.Spawn("worker", func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Syscall(SysYield)
				counts[id]++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.RunUntilIdle()
	for i := 0; i < 3; i++ {
		if counts[i] != 50 {
			t.Errorf("worker %d ran %d iterations", i, counts[i])
		}
	}
}

func TestWorldDetectsQuiescence(t *testing.T) {
	_, _, world := bootPair(t)
	if world.Run(func() bool { return false }) {
		t.Errorf("Run reported success with a false predicate")
	}
}
