package kernel

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

func TestDevices(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	var nullRead, randRead uint64
	var randBytes []byte
	_, err := k.Spawn("dev", func(p *Proc) {
		// /dev/null: writes sink, reads EOF.
		nul := p.Syscall(SysOpen, p.PushString("/dev/null"), ORdWr)
		buf := p.Alloc(64)
		p.Write(buf, []byte("discard"))
		if n := p.Syscall(SysWrite, nul, buf, 7); n != 7 {
			t.Errorf("null write = %d", int64(n))
		}
		nullRead = p.Syscall(SysRead, nul, buf, 16)
		p.Syscall(SysClose, nul)
		// /dev/random: reads fill.
		rnd := p.Syscall(SysOpen, p.PushString("/dev/random"), ORdOnly)
		randRead = p.Syscall(SysRead, rnd, buf, 16)
		randBytes = p.Read(buf, 16)
		// /dev/console: writes reach the machine console.
		con := p.Syscall(SysOpen, p.PushString("/dev/console"), OWrOnly)
		msg := p.PushString("dmesg line")
		p.Syscall(SysWrite, con, msg, 10)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if nullRead != 0 {
		t.Errorf("null read = %d", nullRead)
	}
	if randRead != 16 || bytes.Equal(randBytes, make([]byte, 16)) {
		t.Errorf("random read = %d % x", randRead, randBytes)
	}
	if !k.Console().Contains("dmesg line") {
		t.Errorf("console write lost")
	}
}

func TestLseekWhence(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	k.WriteKernelFile("/seek.txt", []byte("0123456789"))
	var atSet, atCur, atEnd uint64
	_, err := k.Spawn("seeker", func(p *Proc) {
		fd := p.Syscall(SysOpen, p.PushString("/seek.txt"), ORdOnly)
		atSet = p.Syscall(SysLseek, fd, 4, 0)          // SEEK_SET
		atCur = p.Syscall(SysLseek, fd, 3, 1)          // SEEK_CUR
		atEnd = p.Syscall(SysLseek, fd, ^uint64(1), 2) // SEEK_END -2
		// And a read picks up at that offset.
		buf := p.Alloc(8)
		n := p.Syscall(SysRead, fd, buf, 8)
		if got := string(p.Read(buf, int(n))); got != "89" {
			t.Errorf("read after seek = %q", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if atSet != 4 || atCur != 7 || atEnd != 8 {
		t.Errorf("seeks = %d %d %d", atSet, atCur, atEnd)
	}
}

func TestSyscallErrorPaths(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	_, err := k.Spawn("errs", func(p *Proc) {
		check := func(name string, ret uint64, want uint64) {
			e, bad := IsErr(ret)
			if !bad || e != want {
				t.Errorf("%s: ret=%d want errno %d", name, int64(ret), want)
			}
		}
		buf := p.Alloc(16)
		check("read bad fd", p.Syscall(SysRead, 99, buf, 8), EBADF)
		check("write bad fd", p.Syscall(SysWrite, 99, buf, 8), EBADF)
		check("close bad fd", p.Syscall(SysClose, 99), EBADF)
		check("open missing", p.Syscall(SysOpen, p.PushString("/missing"), ORdOnly), ENOENT)
		check("unlink missing", p.Syscall(SysUnlink, p.PushString("/missing")), ENOENT)
		check("exec missing", p.Syscall(SysExecve, p.PushString("/bin/missing")), ENOENT)
		check("kill missing", p.Syscall(SysKill, 999, SIGUSR1), ENOENT)
		check("wait no children", p.Syscall(SysWait4, 0), EINVAL)
		check("munmap bogus", p.Syscall(SysMunmap, 0x123000, hw.PageSize), EINVAL)
		check("unknown syscall", p.Syscall(9999), ENOSYS)
		// lseek on a pipe is ESPIPE.
		fdsPtr := p.Alloc(8)
		p.Syscall(SysPipe, fdsPtr)
		rfd := p.Load(fdsPtr, 4)
		check("lseek pipe", p.Syscall(SysLseek, rfd, 0, 0), ESPIPE)
		// Directory opened for writing is EISDIR.
		p.Syscall(SysMkdir, p.PushString("/adir"))
		check("open dir for write", p.Syscall(SysOpen, p.PushString("/adir"), OWrOnly), EISDIR)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
}

func TestFDExhaustion(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	k.WriteKernelFile("/x", []byte("x"))
	var lastErr uint64
	_, err := k.Spawn("hog", func(p *Proc) {
		path := p.PushString("/x")
		for i := 0; i < maxFDs+2; i++ {
			ret := p.Syscall(SysOpen, path, ORdOnly)
			if e, bad := IsErr(ret); bad {
				lastErr = e
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if lastErr != EMFILE {
		t.Errorf("fd exhaustion errno = %d", lastErr)
	}
}

func TestOTruncAndOAppend(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	k.WriteKernelFile("/t.txt", []byte("old contents here"))
	_, err := k.Spawn("p", func(p *Proc) {
		// O_TRUNC resets the file.
		fd := p.Syscall(SysOpen, p.PushString("/t.txt"), ORdWr|OTrunc)
		msg := p.PushString("new")
		p.Syscall(SysWrite, fd, msg, 3)
		p.Syscall(SysClose, fd)
		// O_APPEND starts at the end.
		fd = p.Syscall(SysOpen, p.PushString("/t.txt"), ORdWr|OAppend)
		tail := p.PushString("+tail")
		p.Syscall(SysWrite, fd, tail, 5)
		p.Syscall(SysClose, fd)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	got, _ := k.ReadKernelFile("/t.txt")
	if string(got) != "new+tail" {
		t.Errorf("file = %q", got)
	}
}

func TestStatSyscall(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	k.WriteKernelFile("/s.bin", make([]byte, 12345))
	var size, isdir uint64
	_, err := k.Spawn("p", func(p *Proc) {
		statBuf := p.Alloc(16)
		if ret := p.Syscall(SysStat, p.PushString("/s.bin"), statBuf); ret != 0 {
			t.Fatalf("stat: %d", int64(ret))
		}
		size = p.Load(statBuf, 8)
		p.Syscall(SysMkdir, p.PushString("/sd"))
		p.Syscall(SysStat, p.PushString("/sd"), statBuf)
		isdir = p.Load(statBuf+8, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if size != 12345 || isdir != 1 {
		t.Errorf("stat: size=%d isdir=%d", size, isdir)
	}
}

func TestDiskFullReturnsENOSPC(t *testing.T) {
	// A machine with a tiny disk fills up quickly.
	m := hw.NewMachine(hw.MachineConfig{MemFrames: 8192, DiskBlocks: 200, Seed: 1})
	hal, err := core.NewNativeHAL(m)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Boot(hal)
	if err != nil {
		t.Fatal(err)
	}
	var sawENOSPC bool
	_, err = k.Spawn("filler", func(p *Proc) {
		fd := p.Syscall(SysOpen, p.PushString("/big"), OCreat|ORdWr)
		buf := p.Alloc(4096)
		for i := 0; i < 300; i++ {
			ret := p.Syscall(SysWrite, fd, buf, 4096)
			if e, bad := IsErr(ret); bad {
				sawENOSPC = e == ENOSPC
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if !sawENOSPC {
		t.Errorf("disk never filled or wrong errno")
	}
}

func TestOutOfMemoryKillsGracefully(t *testing.T) {
	// A machine with very little RAM: a process that touches pages
	// until allocation fails must die without wedging the kernel.
	m := hw.NewMachine(hw.MachineConfig{MemFrames: 220, DiskBlocks: 64, Seed: 1})
	hal, err := core.NewVM(m)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Boot(hal)
	if err != nil {
		t.Fatal(err)
	}
	survived := false
	if _, err := k.Spawn("hog", func(p *Proc) {
		base := p.Syscall(SysMmap, 4096*4096, ^uint64(0), 0)
		for off := uint64(0); ; off += hw.PageSize {
			p.Store(base+off, 8, off)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	// The kernel is still functional afterwards.
	if _, err := k.Spawn("after", func(p *Proc) {
		p.Syscall(SysGetpid)
		survived = true
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if !survived {
		t.Errorf("kernel unusable after OOM kill")
	}
}
