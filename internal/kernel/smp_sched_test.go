package kernel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

// bootSMPKernel boots a kernel on a machine with n virtual CPUs.
func bootSMPKernel(t *testing.T, mode core.Mode, n int) *Kernel {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.NumCPUs = n
	m := hw.NewMachine(cfg)
	var hal core.HAL
	var err error
	switch mode {
	case core.ModeVirtualGhost:
		hal, err = core.NewVM(m)
	default:
		hal, err = core.NewNativeHAL(m)
	}
	if err != nil {
		t.Fatalf("HAL: %v", err)
	}
	k, err := Boot(hal)
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	return k
}

// spinner returns a program that yields `rounds` times, counting its
// dispatches into counts[idx].
func spinner(counts []int, idx, rounds int) func(p *Proc) {
	return func(p *Proc) {
		for i := 0; i < rounds; i++ {
			counts[idx]++
			p.Syscall(SysYield)
		}
	}
}

// TestSMPSpreadsProcessesAcrossCPUs checks that on a 4-CPU machine the
// home-CPU affinity distributes processes round-robin and every CPU
// accumulates busy time.
func TestSMPSpreadsProcessesAcrossCPUs(t *testing.T) {
	const ncpu = 4
	k := bootSMPKernel(t, core.ModeVirtualGhost, ncpu)
	if k.NumCPUs() != ncpu {
		t.Fatalf("NumCPUs = %d, want %d", k.NumCPUs(), ncpu)
	}
	counts := make([]int, 8)
	for i := 0; i < 8; i++ {
		if _, err := k.Spawn("spin", spinner(counts, i, 10)); err != nil {
			t.Fatalf("Spawn: %v", err)
		}
	}
	k.RunUntilIdle()
	for i, c := range counts {
		if c != 10 {
			t.Errorf("proc %d ran %d rounds, want 10", i, c)
		}
	}
	for i, b := range k.CPUBusy() {
		if b == 0 {
			t.Errorf("CPU %d accumulated no busy cycles", i)
		}
	}
}

// TestSMPWorkStealing checks that an idle CPU steals runnable work:
// with 2 CPUs and processes pinned (by PID parity) to CPU 0's queue
// only, CPU 1 must steal to stay busy.
func TestSMPWorkStealing(t *testing.T) {
	k := bootSMPKernel(t, core.ModeNative, 2)
	counts := make([]int, 3)
	// PIDs 1,2,3: homes are CPU 0, 1, 0. Let the CPU-1 process finish
	// fast so CPU 1 goes idle while CPU 0's queue still has two
	// long-running processes — forcing a steal.
	if _, err := k.Spawn("long-a", spinner(counts, 0, 50)); err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if _, err := k.Spawn("short", spinner(counts, 1, 1)); err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if _, err := k.Spawn("long-b", spinner(counts, 2, 50)); err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	k.RunUntilIdle()
	if counts[0] != 50 || counts[2] != 50 {
		t.Fatalf("long spinners ran %d/%d rounds, want 50/50", counts[0], counts[2])
	}
	if k.Stats().Steals == 0 {
		t.Errorf("expected work stealing on an idle CPU, got 0 steals")
	}
	busy := k.CPUBusy()
	if busy[1] == 0 {
		t.Errorf("CPU 1 stayed idle despite stealable work")
	}
}

// TestCrossCPUSignalSendsIPI checks that posting a signal to a process
// homed on another CPU raises a rescheduling IPI.
func TestCrossCPUSignalSendsIPI(t *testing.T) {
	k := bootSMPKernel(t, core.ModeVirtualGhost, 2)
	var targetPID uint64
	// PID 1 → CPU 0; PID 2 → CPU 1.
	if _, err := k.Spawn("victim", func(p *Proc) {
		targetPID = uint64(p.PID)
		for i := 0; i < 20; i++ {
			p.Syscall(SysYield)
		}
	}); err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if _, err := k.Spawn("killer", func(p *Proc) {
		p.Syscall(SysYield) // let the victim publish its PID
		p.Syscall(SysKill, targetPID, SIGUSR1)
	}); err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	k.RunUntilIdle()
	if k.Stats().IPIs == 0 {
		t.Errorf("cross-CPU signal sent no rescheduling IPI")
	}
	sent, delivered, _ := k.M.IPICounts()
	if sent == 0 || delivered == 0 {
		t.Errorf("machine IPI counters: sent=%d delivered=%d, want both > 0", sent, delivered)
	}
}

// TestSMPDeterminism runs an identical 4-CPU workload twice and demands
// bit-identical virtual time: the interleaver must not depend on host
// scheduling or map iteration order.
func TestSMPDeterminism(t *testing.T) {
	run := func() uint64 {
		k := bootSMPKernel(t, core.ModeVirtualGhost, 4)
		counts := make([]int, 6)
		for i := 0; i < 6; i++ {
			if _, err := k.Spawn("det", spinner(counts, i, 8)); err != nil {
				t.Fatalf("Spawn: %v", err)
			}
		}
		k.RunUntilIdle()
		return k.M.Clock.Cycles()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("4-CPU runs diverged: %d vs %d cycles", a, b)
	}
}

// TestSchedulerFairnessRoundRobin is the regression test for the sorted
// run-queue rework: the scheduler must still rotate through runnable
// processes (no process starves, dispatch counts stay balanced) and
// must not degenerate into always running the lowest PID.
func TestSchedulerFairnessRoundRobin(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	const nproc, rounds = 5, 40
	counts := make([]int, nproc)
	order := make([]int, 0, nproc*rounds)
	for i := 0; i < nproc; i++ {
		i := i
		if _, err := k.Spawn("fair", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				counts[i]++
				order = append(order, p.PID)
				p.Syscall(SysYield)
			}
		}); err != nil {
			t.Fatalf("Spawn: %v", err)
		}
	}
	k.RunUntilIdle()
	for i, c := range counts {
		if c != rounds {
			t.Errorf("proc %d ran %d rounds, want %d", i, c, rounds)
		}
	}
	// Round-robin: within the steady state every window of nproc
	// dispatches contains each PID exactly once.
	for start := 0; start+nproc <= len(order); start += nproc {
		seen := make(map[int]bool, nproc)
		for _, pid := range order[start : start+nproc] {
			if seen[pid] {
				t.Fatalf("dispatch window at %d repeats pid %d (order %v); round-robin broken",
					start, pid, order[start:start+nproc])
			}
			seen[pid] = true
		}
	}
}

// TestRunQueueMaintainedAcrossChurn checks the incremental sorted queue
// survives process creation and exit: after churn, surviving processes
// still schedule in ascending-PID round-robin order.
func TestRunQueueMaintainedAcrossChurn(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	// Wave 1: three short-lived processes that exit immediately.
	for i := 0; i < 3; i++ {
		if _, err := k.Spawn("ephemeral", func(p *Proc) {}); err != nil {
			t.Fatalf("Spawn: %v", err)
		}
	}
	k.RunUntilIdle()
	// Wave 2: survivors created after the queue shrank.
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		if _, err := k.Spawn("survivor", spinner(counts, i, 12)); err != nil {
			t.Fatalf("Spawn: %v", err)
		}
	}
	k.RunUntilIdle()
	for i, c := range counts {
		if c != 12 {
			t.Errorf("survivor %d ran %d rounds, want 12", i, c)
		}
	}
	if got := k.NumLive(); got != 0 {
		t.Errorf("NumLive = %d after all exits, want 0", got)
	}
}
