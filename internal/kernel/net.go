package kernel

import (
	"repro/internal/core"
	"repro/internal/hw"
)

// This file is the network stack: a small reliable, in-order,
// connection-oriented transport ("TCP-lite") over the simulated NIC.
// The two machines of a network experiment are joined by hw.Connect;
// loopback is the NIC connected to itself.

// Wire packet types.
const (
	pktSYN byte = iota + 1
	pktSYNACK
	pktDATA
	pktFIN
)

// header: type(1) srcPort(2) dstPort(2).
const netHdrSize = 5

// maxSegment is the data bytes per packet.
const maxSegment = hw.MTU - netHdrSize

// Conn is one established connection endpoint.
type Conn struct {
	local, remote uint16
	// remoteIsLocal marks loopback connections (both endpoints on this
	// host); the point-to-point link model needs only this one routing
	// bit.
	remoteIsLocal bool
	established   bool
	peerClosed    bool
	closed        bool
	rx            []byte
}

// backlogEntry is one pending SYN on a listener.
type backlogEntry struct {
	srcPort uint16
	local   bool // arrived via loopback
}

// Listener accepts connections on a port.
type Listener struct {
	port    uint16
	backlog []backlogEntry
}

// NetStack is one kernel's transport state.
type NetStack struct {
	k         *Kernel
	nic       *hw.NIC
	listeners map[uint16]*Listener
	conns     map[uint16]*Conn // keyed by local port
	nextPort  uint16
}

// NewNetStack initializes the stack.
func NewNetStack(k *Kernel) *NetStack {
	return &NetStack{
		k:         k,
		nic:       k.M.NIC,
		listeners: make(map[uint16]*Listener),
		conns:     make(map[uint16]*Conn),
		nextPort:  32768,
	}
}

func (ns *NetStack) allocPort() uint16 {
	for {
		p := ns.nextPort
		ns.nextPort++
		if ns.nextPort == 0 {
			ns.nextPort = 32768
		}
		if _, used := ns.conns[p]; used {
			continue
		}
		if _, used := ns.listeners[p]; used {
			continue
		}
		return p
	}
}

// send routes one frame: via the loopback interface when the
// destination endpoint is on this host, via the NIC otherwise.
func (ns *NetStack) send(typ byte, src, dst uint16, data []byte, toLocal bool) {
	ns.k.HAL.KAccess(workNetPerPacket)
	pl := make([]byte, netHdrSize+len(data))
	pl[0] = typ
	pl[1], pl[2] = byte(src), byte(src>>8)
	pl[3], pl[4] = byte(dst), byte(dst>>8)
	copy(pl[netHdrSize:], data)
	if toLocal {
		ns.k.M.Clock.Charge(hw.TagIO, loopbackCycles)
		ns.handlePacket(dst, pl, true)
		return
	}
	ns.nic.Send(hw.Packet{Port: dst, Payload: pl})
}

// loopbackCycles is the lo-interface per-packet cost.
const loopbackCycles = 2000

// Poll drains the NIC's receive queue into listeners and connections.
// The scheduler calls it between dispatches, standing in for the
// receive interrupt path.
func (ns *NetStack) Poll() {
	for {
		got := false
		// Drain every port we own.
		for port := range ns.listeners {
			if ns.pollPort(port) {
				got = true
			}
		}
		for port := range ns.conns {
			if ns.pollPort(port) {
				got = true
			}
		}
		if !got {
			return
		}
	}
}

func (ns *NetStack) pollPort(port uint16) bool {
	pkt, ok := ns.nic.Receive(port)
	if !ok {
		return false
	}
	ns.k.HAL.KAccess(workNetPerPacket)
	ns.handlePacket(port, pkt.Payload, false)
	return true
}

// handlePacket is protocol input processing for one frame addressed to
// port (from the wire or the loopback path).
func (ns *NetStack) handlePacket(port uint16, pl []byte, fromLocal bool) {
	if len(pl) < netHdrSize {
		return
	}
	typ := pl[0]
	src := uint16(pl[1]) | uint16(pl[2])<<8
	data := pl[netHdrSize:]
	switch typ {
	case pktSYN:
		if l, ok := ns.listeners[port]; ok {
			l.backlog = append(l.backlog, backlogEntry{srcPort: src, local: fromLocal})
		}
	case pktSYNACK:
		if c, ok := ns.conns[port]; ok {
			c.established = true
			c.remote = src
		}
	case pktDATA:
		if c, ok := ns.conns[port]; ok {
			c.rx = append(c.rx, data...)
		}
	case pktFIN:
		if c, ok := ns.conns[port]; ok {
			c.peerClosed = true
		}
	}
}

// Connect dials a port, blocking until established. toPeer selects the
// machine at the other end of the link; otherwise the destination is a
// local (loopback) service.
func (ns *NetStack) Connect(p *Proc, dst uint16, toPeer bool) *Conn {
	local := ns.allocPort()
	c := &Conn{local: local, remote: dst, remoteIsLocal: !toPeer}
	ns.conns[local] = c
	ns.send(pktSYN, local, dst, nil, !toPeer)
	p.block(func() bool { ns.Poll(); return c.established })
	return c
}

// Accept takes one pending connection off a listener, blocking until
// one arrives.
func (ns *NetStack) Accept(p *Proc, l *Listener) *Conn {
	p.block(func() bool { ns.Poll(); return len(l.backlog) > 0 })
	e := l.backlog[0]
	l.backlog = l.backlog[1:]
	local := ns.allocPort()
	c := &Conn{local: local, remote: e.srcPort, remoteIsLocal: e.local, established: true}
	ns.conns[local] = c
	ns.send(pktSYNACK, local, e.srcPort, nil, e.local)
	return c
}

// Send writes data to the connection, segmenting to the MTU.
func (ns *NetStack) Send(c *Conn, data []byte) int {
	sent := 0
	for sent < len(data) {
		chunk := len(data) - sent
		if chunk > maxSegment {
			chunk = maxSegment
		}
		ns.send(pktDATA, c.local, c.remote, data[sent:sent+chunk], c.remoteIsLocal)
		sent += chunk
	}
	return sent
}

// Recv returns buffered data, blocking until some arrives or the peer
// closes (then 0 = EOF).
func (ns *NetStack) Recv(p *Proc, c *Conn, max int) []byte {
	p.block(func() bool { ns.Poll(); return len(c.rx) > 0 || c.peerClosed })
	if len(c.rx) == 0 {
		return nil
	}
	n := len(c.rx)
	if n > max {
		n = max
	}
	out := c.rx[:n]
	c.rx = c.rx[n:]
	return out
}

// CloseConn sends FIN and releases the local port.
func (ns *NetStack) CloseConn(c *Conn) {
	if c.closed {
		return
	}
	c.closed = true
	ns.send(pktFIN, c.local, c.remote, nil, c.remoteIsLocal)
	delete(ns.conns, c.local)
}

// --- socket file objects & syscalls ---------------------------------------

// Socket is the descriptor-level object for the socket syscalls.
type Socket struct {
	ns       *NetStack
	conn     *Conn
	listener *Listener
}

func (s *Socket) ReadAt(p *Proc, b []byte, off int64) (int, error) {
	if s.conn == nil {
		return 0, ErrNotReadable
	}
	data := s.ns.Recv(p, s.conn, len(b))
	copy(b, data)
	return len(data), nil
}

func (s *Socket) WriteAt(p *Proc, b []byte, off int64) (int, error) {
	if s.conn == nil {
		return 0, ErrNotWritable
	}
	if s.conn.peerClosed {
		return 0, ErrPipeBroken
	}
	return s.ns.Send(s.conn, b), nil
}

func (s *Socket) Size() int64 { return 0 }

func (s *Socket) Ready() bool {
	if s.listener != nil {
		s.ns.Poll()
		return len(s.listener.backlog) > 0
	}
	if s.conn != nil {
		s.ns.Poll()
		return len(s.conn.rx) > 0 || s.conn.peerClosed
	}
	return false
}

func (s *Socket) Close(k *Kernel) error {
	if s.conn != nil {
		s.ns.CloseConn(s.conn)
	}
	if s.listener != nil {
		delete(s.ns.listeners, s.listener.port)
	}
	return nil
}

// sysSocket creates an unbound socket.
func sysSocket(k *Kernel, p *Proc, ic core.IContext) uint64 {
	k.HAL.KAccess(workSocket)
	fd, e := p.allocFD(&Socket{ns: k.Net}, false)
	if e != 0 {
		return errno(e)
	}
	return uint64(fd)
}

func sockOf(p *Proc, fd int) (*Socket, uint64) {
	d, e := p.fd(fd)
	if e != 0 {
		return nil, e
	}
	s, ok := d.Ops.(*Socket)
	if !ok {
		return nil, EINVAL
	}
	return s, 0
}

// sysBind binds a socket to a local port.
func sysBind(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	k.HAL.KAccess(workSocket)
	port := uint16(ic.Arg(1))
	if _, used := k.Net.listeners[port]; used {
		return errno(EEXIST)
	}
	s.listener = &Listener{port: port}
	return 0
}

// sysListen registers the bound port for incoming SYNs.
func sysListen(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	if s.listener == nil {
		return errno(EINVAL)
	}
	k.HAL.KAccess(workSocket)
	k.Net.listeners[s.listener.port] = s.listener
	return 0
}

// sysAccept blocks for a connection and returns a new socket fd.
func sysAccept(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	if s.listener == nil {
		return errno(EINVAL)
	}
	conn := k.Net.Accept(p, s.listener)
	fd, e := p.allocFD(&Socket{ns: k.Net, conn: conn}, false)
	if e != 0 {
		return errno(e)
	}
	return uint64(fd)
}

// sysConnect dials arg1 as a destination port, blocking until
// established. arg2 selects the host: RemoteHost for the machine on
// the other end of the link, LocalHost (0) for a loopback service.
func sysConnect(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	k.HAL.KAccess(workSocket)
	s.conn = k.Net.Connect(p, uint16(ic.Arg(1)), ic.Arg(2) == RemoteHost)
	return 0
}

// Host selectors for the connect syscall's third argument.
const (
	// LocalHost addresses a service on this machine (loopback).
	LocalHost = 0
	// RemoteHost addresses the machine at the other end of the link.
	RemoteHost = 1
)

// sysSendTo sends on a connected socket (same path as write).
func sysSendTo(k *Kernel, p *Proc, ic core.IContext) uint64 {
	return sysWrite(k, p, ic)
}

// sysRecv receives from a connected socket (same path as read).
func sysRecv(k *Kernel, p *Proc, ic core.IContext) uint64 {
	return sysRead(k, p, ic)
}
