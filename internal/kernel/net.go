package kernel

import (
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
)

// This file is the network stack: a small reliable, in-order,
// connection-oriented transport ("TCP-lite") over the simulated NIC.
// The two machines of a network experiment are joined by hw.Connect;
// loopback is the NIC connected to itself.
//
// The stack is event-driven (DESIGN.md §19): sockets can be switched
// non-blocking, readiness is exposed through epoll-style poll sets
// (sysPollCreate/sysPollCtl/sysPollWait, level-triggered), and every
// timeout — poll-wait, connect, per-connection idle auto-close — runs
// on a hierarchical timer wheel indexed by the virtual clock
// (timerwheel.go). Flow control is a receive-window cap on each
// connection's buffer: senders see the receiver's remaining window
// (the link is a lossless synchronous pair, so the window is read
// directly rather than carried in ACK segments) and block, shorten, or
// return EAGAIN; un-consumed frames stay queued in the NIC and are
// charged against the window. Delivery is interrupt-driven: Poll is an
// O(1) check of the NIC's pending line plus the wheel's due state, and
// a drain walks only the ports that actually have frames, in sorted
// port order, so multi-port handling is deterministic and
// snapshot/-hostpar safe.

// Wire packet types.
const (
	pktSYN byte = iota + 1
	pktSYNACK
	pktDATA
	pktFIN
	// pktRST rejects a SYN addressed to a port nobody listens on, so a
	// connect racing ahead of the server's listen fails fast with
	// ECONNREFUSED instead of hanging. Backlog-overflow drops stay
	// silent (the TCP shape: overflow relies on retry/timeout).
	pktRST
)

// header: type(1) srcPort(2) dstPort(2).
const netHdrSize = 5

// maxSegment is the data bytes per packet.
const maxSegment = hw.MTU - netHdrSize

// DefaultRecvWindow caps a connection's receive buffer (rx plus frames
// still queued in the NIC). 4 MiB is far above any single legacy
// transfer, so pre-window workloads never hit backpressure and their
// charge sequences are unchanged; the C10K experiments shrink it to
// get thousands of small windows instead.
const DefaultRecvWindow = 4 << 20

// Ephemeral port range defaults (allocPort).
const (
	defaultPortLo = 32768
	defaultPortHi = 65535
)

// Conn is one established connection endpoint.
type Conn struct {
	local, remote uint16
	// remoteIsLocal marks loopback connections (both endpoints on this
	// host); the point-to-point link model needs only this one routing
	// bit.
	remoteIsLocal bool
	established   bool
	peerClosed    bool
	closed        bool
	// timedOut marks a connect that hit its timeout before SYNACK; the
	// socket reports POLLERR and blocking connect returns ETIMEDOUT.
	timedOut bool
	// refused marks a connect whose SYN drew an RST (no listener on the
	// destination port): POLLERR, and blocking connect returns
	// ECONNREFUSED.
	refused bool
	rx      []byte
	// rxWindow caps len(rx) + bytes queued for this port in the NIC.
	rxWindow int
	// idleTimeout, when non-zero, auto-closes the connection after
	// that many cycles without receive activity (keep-alive kill). The
	// armed wheel entry is idleTimer; it re-arms on every delivery.
	idleTimeout uint64
	idleTimer   timerID
	connTimer   timerID
}

// LocalPort returns the connection's local port (tests and stats).
func (c *Conn) LocalPort() uint16 { return c.local }

// Established reports the handshake state (nonblocking connect).
func (c *Conn) Established() bool { return c.established }

// backlogEntry is one pending SYN on a listener.
type backlogEntry struct {
	srcPort uint16
	local   bool // arrived via loopback
}

// Listener accepts connections on a port.
type Listener struct {
	port    uint16
	backlog []backlogEntry
	// maxBacklog caps pending SYNs; 0 = unlimited (legacy listeners).
	// Overflowing SYNs are dropped and counted — with no retransmit on
	// this link a dropped SYN is a failed connect, which is exactly
	// the admission-control behavior the C10K harness measures.
	maxBacklog int
	synDrops   uint64
}

// SynDrops reports how many SYNs this listener's backlog cap dropped.
func (l *Listener) SynDrops() uint64 { return l.synDrops }

// NetStats are the stack's cumulative drop/timeout counters.
type NetStats struct {
	// SynDrops: SYNs dropped by listener backlog caps.
	SynDrops uint64
	// RefusedSyns: SYNs addressed to a port nobody listens on.
	RefusedSyns uint64
	// LateDataDrops: DATA frames that arrived after their destination
	// connection was closed and removed (the FIN race the pre-refactor
	// stack dropped silently).
	LateDataDrops uint64
	// LateFinDrops: FINs that arrived after the local close.
	LateFinDrops uint64
	// TimeoutKills: connections auto-closed by the idle timeout.
	TimeoutKills uint64
	// TimerFires: wheel entries fired.
	TimerFires uint64
}

// NetStack is one kernel's transport state.
type NetStack struct {
	k         *Kernel
	nic       *hw.NIC
	listeners map[uint16]*Listener
	conns     map[uint16]*Conn // keyed by local port
	nextPort  uint16
	portLo    uint16
	portHi    uint16
	// defWindow is the receive window installed on new connections.
	defWindow int
	wheel     *timerWheel
	stats     NetStats
}

// NewNetStack initializes the stack.
func NewNetStack(k *Kernel) *NetStack {
	ns := &NetStack{
		k:         k,
		nic:       k.M.NIC,
		listeners: make(map[uint16]*Listener),
		conns:     make(map[uint16]*Conn),
		nextPort:  defaultPortLo,
		portLo:    defaultPortLo,
		portHi:    defaultPortHi,
		defWindow: DefaultRecvWindow,
		wheel:     newTimerWheel(k.M.Clock.Cycles()),
	}
	// The NIC's owner back-pointer lets the peer stack's senders read
	// this stack's flow-control state (window math) without a
	// hw→kernel dependency.
	ns.nic.SetOwner(ns)
	return ns
}

// Stats returns the cumulative counters.
func (ns *NetStack) Stats() NetStats { return ns.stats }

// NumConns reports currently-open connections (load tracking).
func (ns *NetStack) NumConns() int { return len(ns.conns) }

// TimersPending reports armed wheel timers (quiescence checks).
func (ns *NetStack) TimersPending() int { return ns.wheel.pendingCount() }

// SetRecvWindow changes the receive window installed on connections
// created after the call. Experiment configuration, host-side.
func (ns *NetStack) SetRecvWindow(n int) {
	if n > 0 {
		ns.defWindow = n
	}
}

// SetEphemeralRange restricts allocPort to [lo, hi] (port-exhaustion
// tests use a tiny range).
func (ns *NetStack) SetEphemeralRange(lo, hi uint16) {
	if lo == 0 || hi < lo {
		return
	}
	ns.portLo, ns.portHi, ns.nextPort = lo, hi, lo
}

// allocPort hands out the next free ephemeral port, scanning the range
// at most once: an exhausted range returns EAGAIN instead of spinning
// forever (ports free on connection close, so churn reuses them).
func (ns *NetStack) allocPort() (uint16, uint64) {
	span := int(ns.portHi) - int(ns.portLo) + 1
	for i := 0; i < span; i++ {
		p := ns.nextPort
		ns.nextPort++
		if ns.nextPort < ns.portLo || ns.nextPort > ns.portHi || ns.nextPort == 0 {
			ns.nextPort = ns.portLo
		}
		if _, used := ns.conns[p]; used {
			continue
		}
		if _, used := ns.listeners[p]; used {
			continue
		}
		return p, 0
	}
	return 0, EAGAIN
}

// send routes one frame: via the loopback interface when the
// destination endpoint is on this host, via the NIC otherwise.
func (ns *NetStack) send(typ byte, src, dst uint16, data []byte, toLocal bool) {
	ns.k.HAL.KAccess(workNetPerPacket)
	pl := make([]byte, netHdrSize+len(data))
	pl[0] = typ
	pl[1], pl[2] = byte(src), byte(src>>8)
	pl[3], pl[4] = byte(dst), byte(dst>>8)
	copy(pl[netHdrSize:], data)
	if toLocal {
		ns.k.M.Clock.Charge(hw.TagNet, loopbackCycles)
		ns.handlePacket(dst, pl, true)
		return
	}
	ns.nic.Send(hw.Packet{Port: dst, Payload: pl})
}

// loopbackCycles is the lo-interface per-packet cost.
const loopbackCycles = 2000

// peerStack resolves the stack owning the other end of c: this stack
// for loopback, the linked machine's for wire connections. nil when
// the cable is unplugged.
func (ns *NetStack) peerStack(c *Conn) *NetStack {
	if c.remoteIsLocal {
		return ns
	}
	if p := ns.nic.Peer(); p != nil {
		if o, ok := p.Owner().(*NetStack); ok {
			return o
		}
	}
	return nil
}

// sendRoom computes how many data bytes the receiver's window still
// accepts: its window minus buffered bytes minus frames in flight in
// its NIC queue (headers count conservatively against the window).
// A missing peer connection returns maxSegment — the frame is sent and
// the receiver's late-drop accounting takes it.
func (ns *NetStack) sendRoom(c *Conn) int {
	ps := ns.peerStack(c)
	if ps == nil {
		return maxSegment
	}
	rc, ok := ps.conns[c.remote]
	if !ok || rc.remote != c.local {
		return maxSegment
	}
	room := rc.rxWindow - len(rc.rx)
	if !c.remoteIsLocal {
		room -= int(ps.nic.QueuedBytes(c.remote))
	}
	return room
}

// Poll is the receive-interrupt stand-in the schedulers call between
// dispatches. It is O(1) when nothing is pending: one flag check on
// the NIC plus the wheel's armed count. With work it fires due timers
// and drains pending ports in ascending port order.
func (ns *NetStack) Poll() {
	if ns.nic.HasPending() {
		for _, port := range ns.nic.PendingPorts() {
			ns.drainPort(port)
		}
	}
	if ns.wheel.pendingCount() > 0 {
		if n := ns.wheel.advance(ns.k.M.Clock.Cycles()); n > 0 {
			ns.stats.TimerFires += uint64(n)
			ns.k.HAL.KAccess(n * workTimerFire)
		}
	}
}

// drainPort delivers queued frames for one port until the queue is
// empty or the head frame no longer fits the connection's receive
// window (head-of-line block — in-order delivery means a FIN queued
// behind over-window data waits with it, and the un-consumed bytes
// keep charging the sender's view of the window).
func (ns *NetStack) drainPort(port uint16) {
	for {
		if c, ok := ns.conns[port]; ok {
			if n := ns.nic.PeekPayloadLen(port); n > netHdrSize && len(c.rx)+(n-netHdrSize) > c.rxWindow {
				return
			}
		}
		pkt, ok := ns.nic.Receive(port)
		if !ok {
			return
		}
		// Late frames — addressed to a port with neither a connection
		// nor a listener — are drained and counted but not charged: the
		// pre-refactor stack never processed them at all (they rotted in
		// the NIC queue), and the legacy experiments' calibrated cycle
		// totals must not move because teardown races are now accounted.
		_, hasConn := ns.conns[port]
		_, hasListener := ns.listeners[port]
		if hasConn || hasListener {
			ns.k.HAL.KAccess(workNetPerPacket)
		}
		ns.handlePacket(port, pkt.Payload, false)
	}
}

// deliverable reports whether any pending frame could be delivered
// right now (ports without a window-blocked head). The idle-skip
// protocol uses it: window-blocked frames alone must not hold virtual
// time back.
func (ns *NetStack) deliverable() bool {
	if !ns.nic.HasPending() {
		return false
	}
	for _, port := range ns.nic.PendingPorts() {
		c, ok := ns.conns[port]
		if !ok {
			return true // listener, or a late frame a drain will drop
		}
		if n := ns.nic.PeekPayloadLen(port); n <= netHdrSize || len(c.rx)+(n-netHdrSize) <= c.rxWindow {
			return true
		}
	}
	return false
}

// timerNext exposes the wheel's earliest expiry to the idle protocol.
func (ns *NetStack) timerNext() (uint64, bool) { return ns.wheel.nextExpiry() }

// handlePacket is protocol input processing for one frame addressed to
// port (from the wire or the loopback path).
func (ns *NetStack) handlePacket(port uint16, pl []byte, fromLocal bool) {
	if len(pl) < netHdrSize {
		return
	}
	typ := pl[0]
	src := uint16(pl[1]) | uint16(pl[2])<<8
	data := pl[netHdrSize:]
	switch typ {
	case pktSYN:
		l, ok := ns.listeners[port]
		if !ok {
			ns.stats.RefusedSyns++
			ns.send(pktRST, port, src, nil, fromLocal)
			return
		}
		if l.maxBacklog > 0 && len(l.backlog) >= l.maxBacklog {
			l.synDrops++
			ns.stats.SynDrops++
			return
		}
		l.backlog = append(l.backlog, backlogEntry{srcPort: src, local: fromLocal})
	case pktSYNACK:
		if c, ok := ns.conns[port]; ok {
			c.established = true
			c.remote = src
			if c.connTimer != 0 {
				ns.wheel.cancel(c.connTimer)
				c.connTimer = 0
			}
		}
	case pktRST:
		if c, ok := ns.conns[port]; ok && !c.established && !c.closed {
			c.refused = true
			if c.connTimer != 0 {
				ns.wheel.cancel(c.connTimer)
				c.connTimer = 0
			}
		}
	case pktDATA:
		c, ok := ns.conns[port]
		if !ok {
			// The FIN race: data in flight when the local side closed
			// and released the port. Dropped — but accounted, not
			// silent.
			ns.stats.LateDataDrops++
			return
		}
		c.rx = append(c.rx, data...)
		ns.touch(c)
	case pktFIN:
		c, ok := ns.conns[port]
		if !ok {
			ns.stats.LateFinDrops++
			return
		}
		c.peerClosed = true
		ns.touch(c)
	}
}

// touch re-arms c's idle auto-close timer on receive activity.
func (ns *NetStack) touch(c *Conn) {
	if c.idleTimeout == 0 || c.closed {
		return
	}
	if c.idleTimer != 0 {
		ns.wheel.cancel(c.idleTimer)
	}
	c.idleTimer = ns.wheel.after(ns.k.M.Clock.Cycles(), c.idleTimeout, ns.idleKill(c))
}

// idleKill returns the wheel handler that force-closes an idle
// connection (slowloris defense: a held-open connection with no
// traffic is reaped without any process attending to it).
func (ns *NetStack) idleKill(c *Conn) func() {
	return func() {
		c.idleTimer = 0
		if c.closed {
			return
		}
		ns.stats.TimeoutKills++
		ns.CloseConn(c)
	}
}

// SetIdleTimeout arms (or with 0 disables) the connection's receive
// idle auto-close.
func (ns *NetStack) SetIdleTimeout(c *Conn, cycles uint64) {
	c.idleTimeout = cycles
	if c.idleTimer != 0 {
		ns.wheel.cancel(c.idleTimer)
		c.idleTimer = 0
	}
	if cycles != 0 && !c.closed {
		c.idleTimer = ns.wheel.after(ns.k.M.Clock.Cycles(), cycles, ns.idleKill(c))
	}
}

// Connect dials a port. Blocking mode waits until established, refused
// by an RST (→ ECONNREFUSED), or the optional timeout expires (→
// ETIMEDOUT); nonblocking mode sends the SYN and returns immediately —
// completion surfaces as POLLOUT, refusal or timeout as POLLERR. The
// errno result is 0 on success.
func (ns *NetStack) Connect(p *Proc, dst uint16, toPeer bool, nonblock bool, timeout uint64) (*Conn, uint64) {
	local, e := ns.allocPort()
	if e != 0 {
		return nil, e
	}
	c := &Conn{local: local, remote: dst, remoteIsLocal: !toPeer, rxWindow: ns.defWindow}
	ns.conns[local] = c
	if timeout != 0 {
		c.connTimer = ns.wheel.after(ns.k.M.Clock.Cycles(), timeout, func() {
			c.connTimer = 0
			if !c.established && !c.closed {
				c.timedOut = true
			}
		})
	}
	ns.send(pktSYN, local, dst, nil, !toPeer)
	if nonblock {
		return c, 0
	}
	p.block(func() bool { ns.Poll(); return c.established || c.timedOut || c.refused })
	if c.refused {
		delete(ns.conns, c.local)
		return nil, ECONNREFUSED
	}
	if c.timedOut {
		delete(ns.conns, c.local)
		return nil, ETIMEDOUT
	}
	return c, 0
}

// Accept takes one pending connection off a listener, blocking until
// one arrives. The errno result is 0 on success (EAGAIN: nonblocking
// with an empty backlog, or ephemeral ports exhausted).
func (ns *NetStack) Accept(p *Proc, l *Listener, nonblock bool) (*Conn, uint64) {
	if nonblock && len(l.backlog) == 0 {
		ns.Poll()
		if len(l.backlog) == 0 {
			return nil, EAGAIN
		}
	}
	p.block(func() bool { ns.Poll(); return len(l.backlog) > 0 })
	e := l.backlog[0]
	l.backlog = l.backlog[1:]
	local, errn := ns.allocPort()
	if errn != 0 {
		return nil, errn
	}
	c := &Conn{local: local, remote: e.srcPort, remoteIsLocal: e.local, established: true, rxWindow: ns.defWindow}
	ns.conns[local] = c
	ns.send(pktSYNACK, local, e.srcPort, nil, e.local)
	return c, 0
}

// Send writes data to the connection, segmenting to the MTU and the
// receiver's window. Blocking mode waits for window; nonblocking mode
// returns a short count (or EAGAIN when nothing fit). The int result
// is bytes sent; the errno result is 0, EAGAIN, or EPIPE.
func (ns *NetStack) Send(p *Proc, c *Conn, data []byte, nonblock bool) (int, uint64) {
	sent := 0
	for sent < len(data) {
		if c.closed || c.peerClosed {
			if sent > 0 {
				return sent, 0
			}
			return 0, EPIPE
		}
		room := ns.sendRoom(c)
		if room <= 0 {
			if nonblock {
				if sent > 0 {
					return sent, 0
				}
				return 0, EAGAIN
			}
			p.block(func() bool {
				ns.Poll()
				return ns.sendRoom(c) > 0 || c.peerClosed || c.closed
			})
			continue
		}
		chunk := len(data) - sent
		if chunk > maxSegment {
			chunk = maxSegment
		}
		if chunk > room {
			chunk = room
		}
		ns.send(pktDATA, c.local, c.remote, data[sent:sent+chunk], c.remoteIsLocal)
		sent += chunk
	}
	return sent, 0
}

// Recv returns buffered data, blocking until some arrives or the peer
// closes (then 0 = EOF). Buffered data is always drained before EOF is
// reported, even after the peer's FIN. Nonblocking mode returns EAGAIN
// instead of blocking.
func (ns *NetStack) Recv(p *Proc, c *Conn, max int, nonblock bool) ([]byte, uint64) {
	if len(c.rx) == 0 && nonblock {
		ns.Poll()
		if len(c.rx) == 0 && !c.peerClosed && !c.closed {
			return nil, EAGAIN
		}
	}
	if !nonblock {
		p.block(func() bool { ns.Poll(); return len(c.rx) > 0 || c.peerClosed || c.closed })
	}
	if len(c.rx) == 0 {
		return nil, 0 // EOF
	}
	n := len(c.rx)
	if n > max {
		n = max
	}
	out := c.rx[:n]
	c.rx = c.rx[n:]
	return out, 0
}

// CloseConn sends FIN, cancels the connection's timers, and releases
// the local port. Idempotent.
func (ns *NetStack) CloseConn(c *Conn) {
	if c.closed {
		return
	}
	c.closed = true
	if c.idleTimer != 0 {
		ns.wheel.cancel(c.idleTimer)
		c.idleTimer = 0
	}
	if c.connTimer != 0 {
		ns.wheel.cancel(c.connTimer)
		c.connTimer = 0
	}
	ns.send(pktFIN, c.local, c.remote, nil, c.remoteIsLocal)
	delete(ns.conns, c.local)
}

// --- socket file objects & syscalls ---------------------------------------

// Socket is the descriptor-level object for the socket syscalls.
type Socket struct {
	ns       *NetStack
	conn     *Conn
	listener *Listener
	// nonblock switches every operation to the EAGAIN discipline.
	nonblock bool
	// timeo is the pending timeout setting (SysSockTimeo before
	// connect = connect timeout; on a connected socket it becomes the
	// idle auto-close timeout directly).
	timeo uint64
}

func (s *Socket) ReadAt(p *Proc, b []byte, off int64) (int, error) {
	if s.conn == nil {
		return 0, ErrNotReadable
	}
	data, e := s.ns.Recv(p, s.conn, len(b), s.nonblock)
	if e != 0 {
		return 0, errnoError{e, "recv would block"}
	}
	copy(b, data)
	return len(data), nil
}

func (s *Socket) WriteAt(p *Proc, b []byte, off int64) (int, error) {
	if s.conn == nil {
		return 0, ErrNotWritable
	}
	if s.conn.peerClosed || s.conn.closed {
		return 0, ErrPipeBroken
	}
	n, e := s.ns.Send(p, s.conn, b, s.nonblock)
	switch e {
	case 0:
		return n, nil
	case EPIPE:
		return n, ErrPipeBroken
	default:
		return n, errnoError{e, "send would block"}
	}
}

func (s *Socket) Size() int64 { return 0 }

func (s *Socket) Ready() bool {
	if s.listener != nil {
		s.ns.Poll()
		return len(s.listener.backlog) > 0
	}
	if s.conn != nil {
		s.ns.Poll()
		return len(s.conn.rx) > 0 || s.conn.peerClosed || s.conn.closed
	}
	return false
}

func (s *Socket) Close(k *Kernel) error {
	if s.conn != nil {
		s.ns.CloseConn(s.conn)
	}
	if s.listener != nil {
		delete(s.ns.listeners, s.listener.port)
	}
	return nil
}

// sysSocket creates an unbound socket.
func sysSocket(k *Kernel, p *Proc, ic core.IContext) uint64 {
	k.HAL.KAccess(workSocket)
	fd, e := p.allocFD(&Socket{ns: k.Net}, false)
	if e != 0 {
		return errno(e)
	}
	return uint64(fd)
}

func sockOf(p *Proc, fd int) (*Socket, uint64) {
	d, e := p.fd(fd)
	if e != 0 {
		return nil, e
	}
	s, ok := d.Ops.(*Socket)
	if !ok {
		return nil, EINVAL
	}
	return s, 0
}

// sysBind binds a socket to a local port.
func sysBind(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	k.HAL.KAccess(workSocket)
	port := uint16(ic.Arg(1))
	if _, used := k.Net.listeners[port]; used {
		return errno(EEXIST)
	}
	s.listener = &Listener{port: port}
	return 0
}

// sysListen registers the bound port for incoming SYNs. arg1 is the
// backlog cap (0 = unlimited, the legacy behavior): SYNs beyond it are
// dropped and counted, never queued.
func sysListen(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	if s.listener == nil {
		return errno(EINVAL)
	}
	k.HAL.KAccess(workSocket)
	s.listener.maxBacklog = int(ic.Arg(1))
	k.Net.listeners[s.listener.port] = s.listener
	return 0
}

// sysAccept blocks for a connection and returns a new socket fd. On a
// nonblocking listener it returns EAGAIN instead of blocking. The
// accepted socket inherits the listener socket's nonblocking mode and
// timeout setting (as its idle auto-close).
func sysAccept(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	if s.listener == nil {
		return errno(EINVAL)
	}
	conn, e := k.Net.Accept(p, s.listener, s.nonblock)
	if e != 0 {
		return errno(e)
	}
	ns := &Socket{ns: k.Net, conn: conn, nonblock: s.nonblock}
	if s.timeo != 0 {
		k.Net.SetIdleTimeout(conn, s.timeo)
	}
	fd, e := p.allocFD(ns, false)
	if e != 0 {
		k.Net.CloseConn(conn)
		return errno(e)
	}
	return uint64(fd)
}

// sysConnect dials arg1 as a destination port, blocking until
// established. arg2 selects the host: RemoteHost for the machine on
// the other end of the link, LocalHost (0) for a loopback service. A
// nonblocking socket returns immediately after the SYN; completion is
// POLLOUT, a timeout (SysSockTimeo armed before connect) POLLERR.
func sysConnect(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	k.HAL.KAccess(workSocket)
	conn, e := k.Net.Connect(p, uint16(ic.Arg(1)), ic.Arg(2) == RemoteHost, s.nonblock, s.timeo)
	if e != 0 {
		return errno(e)
	}
	s.conn = conn
	return 0
}

// Host selectors for the connect syscall's third argument.
const (
	// LocalHost addresses a service on this machine (loopback).
	LocalHost = 0
	// RemoteHost addresses the machine at the other end of the link.
	RemoteHost = 1
)

// sysSendTo sends on a connected socket (same path as write).
func sysSendTo(k *Kernel, p *Proc, ic core.IContext) uint64 {
	return sysWrite(k, p, ic)
}

// sysRecv receives from a connected socket (same path as read).
func sysRecv(k *Kernel, p *Proc, ic core.IContext) uint64 {
	return sysRead(k, p, ic)
}

// sysNonblock switches a socket's blocking discipline: arg1 non-zero
// sets nonblocking (EAGAIN instead of blocking on accept, connect,
// read, and write).
func sysNonblock(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	k.HAL.KAccess(workPollCtl)
	s.nonblock = ic.Arg(1) != 0
	return 0
}

// sysSockTimeo sets the socket's timeout in cycles (0 clears). On a
// connected socket it arms the receive-idle auto-close (keep-alive
// kill); on an unconnected one it is stored and used as the connect
// timeout, and inherited by accepted connections as their idle
// timeout.
func sysSockTimeo(k *Kernel, p *Proc, ic core.IContext) uint64 {
	s, e := sockOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	k.HAL.KAccess(workPollCtl)
	s.timeo = ic.Arg(1)
	if s.conn != nil {
		k.Net.SetIdleTimeout(s.conn, s.timeo)
	}
	return 0
}

// --- poll sets (epoll-style readiness) ------------------------------------

// Poll event bits (sysPollCtl interest mask and sysPollWait results).
const (
	POLLIN  = 1 // accept would succeed / data buffered / EOF readable
	POLLOUT = 2 // established and window open
	POLLHUP = 4 // peer closed or locally closed
	POLLERR = 8 // connect timed out, or the member fd is dead
)

// Poll-set control ops (sysPollCtl arg1).
const (
	PollCtlAdd = 1
	PollCtlMod = 2
	PollCtlDel = 3
)

// PollSet is the kernel object behind sysPollCreate: a set of member
// socket fds with per-fd interest masks. Readiness is level-triggered
// and computed on demand by scanning members in ascending fd order —
// there is no per-packet bookkeeping, so the structure serializes
// trivially and wakeups stay deterministic.
type PollSet struct {
	ns  *NetStack
	fds []int // ascending
	// interest maps member fd -> event mask. Iteration always goes
	// through the sorted fds slice, never the map.
	interest map[int]uint32
	// owner is the creating process: member fds index its table. A
	// poll set is private to its creator (not meaningfully inherited
	// across fork).
	owner *Proc
}

func (ps *PollSet) ReadAt(p *Proc, b []byte, off int64) (int, error)  { return 0, ErrNotReadable }
func (ps *PollSet) WriteAt(p *Proc, b []byte, off int64) (int, error) { return 0, ErrNotWritable }
func (ps *PollSet) Size() int64                                       { return 0 }

// Ready reports whether any member is ready (select-on-pollset).
func (ps *PollSet) Ready() bool {
	ps.ns.Poll()
	for _, fd := range ps.fds {
		if ps.readiness(ps.owner, fd) != 0 {
			return true
		}
	}
	return false
}

func (ps *PollSet) Close(k *Kernel) error { return nil }

type pollMember struct {
	fd     int
	events uint32
}

// readiness computes fd's level-triggered event set, masked by the
// registered interest (POLLHUP and POLLERR always report).
func (ps *PollSet) readiness(p *Proc, fd int) uint32 {
	if p == nil {
		return 0
	}
	d, e := p.fd(fd)
	if e != 0 {
		return POLLERR
	}
	s, ok := d.Ops.(*Socket)
	if !ok {
		return POLLERR
	}
	var ev uint32
	if s.listener != nil {
		if len(s.listener.backlog) > 0 {
			ev |= POLLIN
		}
	} else if c := s.conn; c != nil {
		if c.timedOut || c.refused {
			ev |= POLLERR
		}
		if len(c.rx) > 0 || c.peerClosed || c.closed {
			ev |= POLLIN
		}
		if c.peerClosed || c.closed {
			ev |= POLLHUP
		}
		if c.established && !c.peerClosed && !c.closed && ps.ns.sendRoom(c) > 0 {
			ev |= POLLOUT
		}
	}
	return ev & (ps.interest[fd] | POLLHUP | POLLERR)
}

// sysPollCreate allocates an empty poll set and returns its fd.
func sysPollCreate(k *Kernel, p *Proc, ic core.IContext) uint64 {
	k.HAL.KAccess(workPollCreate)
	fd, e := p.allocFD(&PollSet{ns: k.Net, interest: make(map[int]uint32), owner: p}, false)
	if e != 0 {
		return errno(e)
	}
	return uint64(fd)
}

func pollSetOf(p *Proc, fd int) (*PollSet, uint64) {
	d, e := p.fd(fd)
	if e != 0 {
		return nil, e
	}
	ps, ok := d.Ops.(*PollSet)
	if !ok {
		return nil, EINVAL
	}
	return ps, 0
}

// sysPollCtl edits a poll set: arg0 poll fd, arg1 op (add/mod/del),
// arg2 member socket fd, arg3 interest mask. Errnos follow epoll:
// EEXIST on duplicate add, ENOENT on mod/del of a non-member.
func sysPollCtl(k *Kernel, p *Proc, ic core.IContext) uint64 {
	ps, e := pollSetOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	k.HAL.KAccess(workPollCtl)
	op := int(ic.Arg(1))
	fd := int(ic.Arg(2))
	events := uint32(ic.Arg(3))
	if _, se := sockOf(p, fd); se != 0 && op != PollCtlDel {
		return errno(se)
	}
	_, member := ps.interest[fd]
	switch op {
	case PollCtlAdd:
		if member {
			return errno(EEXIST)
		}
		i := sort.SearchInts(ps.fds, fd)
		ps.fds = append(ps.fds, 0)
		copy(ps.fds[i+1:], ps.fds[i:])
		ps.fds[i] = fd
		ps.interest[fd] = events
	case PollCtlMod:
		if !member {
			return errno(ENOENT)
		}
		ps.interest[fd] = events
	case PollCtlDel:
		if !member {
			return errno(ENOENT)
		}
		i := sort.SearchInts(ps.fds, fd)
		ps.fds = append(ps.fds[:i], ps.fds[i+1:]...)
		delete(ps.interest, fd)
	default:
		return errno(EINVAL)
	}
	return 0
}

// sysPollWait collects ready members: arg0 poll fd, arg1 user buffer
// receiving (fd uint32, events uint32) pairs, arg2 its capacity in
// events, arg3 timeout in cycles (0 = wait forever). Returns the event
// count, 0 on timeout. Level-triggered: members still ready on the
// next call report again. Results are written in ascending fd order.
// The charge is workPollWaitBase + workPollPerEvent per reported event
// — O(ready), not O(members), the epoll cost shape.
func sysPollWait(k *Kernel, p *Proc, ic core.IContext) uint64 {
	ps, e := pollSetOf(p, int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	k.HAL.KAccess(workPollWaitBase)
	buf := ic.Arg(1)
	maxev := int(ic.Arg(2))
	timeout := ic.Arg(3)
	if maxev <= 0 {
		return errno(EINVAL)
	}
	collect := func() []pollMember {
		var out []pollMember
		for _, fd := range ps.fds {
			if ev := ps.readiness(p, fd); ev != 0 {
				out = append(out, pollMember{fd: fd, events: ev})
				if len(out) == maxev {
					break
				}
			}
		}
		return out
	}
	k.Net.Poll()
	ready := collect()
	if len(ready) == 0 {
		expired := false
		var tid timerID
		if timeout != 0 {
			tid = k.Net.wheel.after(k.M.Clock.Cycles(), timeout, func() { expired = true })
		}
		p.block(func() bool {
			k.Net.Poll()
			if expired {
				return true
			}
			for _, fd := range ps.fds {
				if ps.readiness(p, fd) != 0 {
					return true
				}
			}
			return false
		})
		if tid != 0 && !expired {
			k.Net.wheel.cancel(tid)
		}
		ready = collect()
		if len(ready) == 0 {
			return 0 // timeout
		}
	}
	k.HAL.KAccess(len(ready) * workPollPerEvent)
	out := make([]byte, 0, len(ready)*8)
	for _, m := range ready {
		out = append(out,
			byte(m.fd), byte(m.fd>>8), byte(m.fd>>16), byte(m.fd>>24),
			byte(m.events), byte(m.events>>8), byte(m.events>>16), byte(m.events>>24))
	}
	if err := k.copyout(p, hw.Virt(buf), out); err != nil {
		return errno(EFAULT)
	}
	return uint64(len(ready))
}
