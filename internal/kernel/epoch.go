package kernel

import (
	"fmt"

	"repro/internal/hw"
)

// This file is the epoch/barrier scheduler used on every multi-CPU
// machine (DESIGN.md §14). Execution proceeds in epochs of three
// strictly ordered phases:
//
//  1. Schedule phase (serial, CPU-id order): every CPU whose slot is
//     empty picks its next runnable process exactly like the classic
//     dispatcher — pending IPIs drain, the context-switch cost is
//     charged, the address space is loaded — and the process is pinned
//     to the CPU as its in-flight slot.
//  2. User phase: every slot whose process is in user mode runs one
//     user segment — user instructions up to the next HAL entry
//     (syscall, trap, ghost/key operation) or voluntary end. Segments
//     touch only per-CPU and per-process state plus that CPU's private
//     clock shard (hw.Clock.BeginShardPhase), so they are independent:
//     the scheduler may run them serially in CPU-id order or on
//     concurrent host goroutines (Kernel.SetHostParallel) with
//     bit-identical results.
//  3. Kernel phase (serial, CPU-id order): the barrier. Shards merge
//     into the global clock in CPU-id order, then each slot that
//     parked wanting kernel work runs its kernel segment — syscall
//     handlers, fault handling, IPIs, TLB shootdowns, signal delivery
//     — on the shared global clock, exactly one at a time.
//
// Determinism argument: the schedule and kernel phases are serial in a
// fixed order; user segments are data-race-free by construction (the
// shard/freeze machinery in internal/hw turns violations into panics
// under test), and their per-CPU effects merge at the barrier in fixed
// CPU-id order. Hence every virtual number — cycle totals, ledgers,
// per-CPU attribution, trace events, experiment tables — is identical
// whether the user phase ran on one host thread or eight.

// pendKind tells the epoch scheduler which phase resumes a CPU's
// in-flight process next.
type pendKind uint8

const (
	pendNone pendKind = iota
	// pendUser: the process resumes in the next user phase (fresh
	// dispatch of a user-mode process, or its kernel segment finished).
	pendUser
	// pendKernel: the process resumes in the next kernel phase (it
	// parked at a HAL entry, or was redispatched mid-syscall after a
	// yield/block inside the kernel).
	pendKernel
)

// runEpochs drives the epoch scheduler until the predicate is
// satisfied (when non-nil) or no CPU can be given work. It reports
// whether the predicate was satisfied (false for RunUntilIdle's nil
// predicate).
func (k *Kernel) runEpochs(done func() bool) bool {
	for {
		if done != nil && done() {
			return true
		}
		if !k.epoch() {
			// All CPUs idle. If everything is blocked on network
			// timers, skip virtual time to the next expiry and try
			// another epoch (the due timer fires in its Poll).
			if k.idleAdvance() {
				continue
			}
			if done == nil {
				return false
			}
			return done()
		}
	}
}

// epoch advances the machine by one epoch. It reports whether any CPU
// had work (in flight or newly dispatched); an all-idle epoch performs
// nothing and ends the run loop.
func (k *Kernel) epoch() bool {
	// Network input is polled once per epoch, before scheduling, so
	// packets from a peer machine promote blocked readers this epoch.
	k.Net.Poll()
	work := false
	for _, c := range k.cpus {
		if c.slot == nil {
			k.dispatchEpoch(c)
		}
		if c.slot != nil {
			work = true
		}
	}
	if !work {
		return false
	}
	k.userPhase()
	k.kernelPhase()
	return true
}

// dispatchEpoch fills CPU c's empty slot with its next runnable
// process, performing the same context-switch work (and charging the
// same cycles) as the classic dispatcher. Serial context, CPU-id
// order.
func (k *Kernel) dispatchEpoch(c *cpuRun) {
	p := k.pickNextOn(c)
	if p == nil {
		p = k.steal(c)
	}
	if p == nil {
		return
	}
	k.M.SetCurrentCPU(c.id)
	start := k.M.Clock.Cycles()
	k.M.DrainIPIs(c.id)
	c.lastPID = p.PID
	k.stats.ContextSwitch++
	k.HAL.KAccess(workSched)
	k.M.Clock.Charge(hw.TagSched, hw.CostContextSwitch)
	k.HAL.SetCurrentThread(p.tid)
	if err := k.HAL.LoadAddressSpace(p.root); err != nil {
		panic(fmt.Sprintf("kernel: context switch to pid %d: %v", p.PID, err))
	}
	k.M.Cur().Regs.Priv = hw.User
	p.onCPU = c.id
	p.inflight = true
	c.slot = p
	if p.kdepth > 0 {
		// The process parked inside a kernel segment (a yield or block
		// in a syscall handler): it resumes in the kernel phase.
		c.pend = pendKernel
	} else {
		c.pend = pendUser
	}
	// Stamp this CPU's shard trace events with the dispatched process.
	k.M.Clock.SetShardContext(c.id, int32(p.PID), 0)
	c.busy += k.M.Clock.Cycles() - start
}

// userPhase runs one user segment on every slot that is pending user
// execution. With host parallelism the segments run on concurrent
// host goroutines (launch and join both in CPU-id order); otherwise
// they run serially in CPU-id order. Both orders execute identical
// code against disjoint state, so the post-phase machine state is
// bit-identical.
func (k *Kernel) userPhase() {
	k.M.BeginUserPhase()
	if k.hostPar {
		// Launch every pending user segment: each send hands the CPU's
		// process goroutine its slice of the epoch and returns
		// immediately, so all segments execute concurrently.
		for _, c := range k.cpus {
			if c.slot != nil && c.pend == pendUser {
				c.slot.runCh <- struct{}{}
			}
		}
		// Join in CPU-id order.
		for _, c := range k.cpus {
			if c.slot != nil && c.pend == pendUser {
				<-c.slot.yldCh
			}
		}
	} else {
		for _, c := range k.cpus {
			if c.slot != nil && c.pend == pendUser {
				c.slot.runCh <- struct{}{}
				<-c.slot.yldCh
			}
		}
	}
	// Post-phase bookkeeping, serial in CPU-id order: credit each CPU's
	// busy time from its shard and record how each segment ended.
	for _, c := range k.cpus {
		if c.slot == nil || c.pend != pendUser {
			continue
		}
		c.busy += k.M.Clock.ShardCycles(c.id)
		p := c.slot
		switch p.parkWhy {
		case parkKernel:
			c.pend = pendKernel
		case parkEnd:
			p.inflight = false
			c.slot = nil
			c.pend = pendNone
		default:
			panic(fmt.Sprintf("kernel: pid %d parked %d out of a user segment", p.PID, p.parkWhy))
		}
	}
	k.M.EndUserPhase()
}

// kernelPhase is the epoch barrier's serial half: every slot that
// parked wanting kernel work runs it now, one CPU at a time in CPU-id
// order, on the merged global clock.
func (k *Kernel) kernelPhase() {
	for _, c := range k.cpus {
		if c.slot == nil || c.pend != pendKernel {
			continue
		}
		p := c.slot
		k.M.SetCurrentCPU(c.id)
		k.cur = p
		k.M.Clock.SetContext(int32(p.PID), 0)
		start := k.M.Clock.Cycles()
		p.runCh <- struct{}{}
		<-p.yldCh
		k.cur = nil
		k.M.Clock.SetContext(0, 0)
		c.busy += k.M.Clock.Cycles() - start
		switch p.parkWhy {
		case parkUserResume:
			c.pend = pendUser
		case parkEnd:
			p.inflight = false
			c.slot = nil
			c.pend = pendNone
		default:
			panic(fmt.Sprintf("kernel: pid %d parked %d out of a kernel segment", p.PID, p.parkWhy))
		}
	}
}
