package kernel

import (
	"fmt"

	"repro/internal/hw"
)

// This file is the scheduler: a round-robin run queue over cooperative
// process goroutines, serialized so exactly one goroutine (a process or
// the scheduler itself) runs at a time — the single-core machine model
// matching the prototype's single-socket testbed.

// pickNext promotes blocked processes whose wait condition has become
// true and returns the next runnable process in round-robin order
// (first runnable PID strictly after the last-dispatched one, wrapping).
func (k *Kernel) pickNext() *Proc {
	var pids []int
	for pid := range k.procs {
		pids = append(pids, pid)
	}
	sortInts(pids)
	var first, after *Proc
	for _, pid := range pids {
		p := k.procs[pid]
		if p.state == procBlocked && p.cond != nil && p.cond() {
			p.state = procRunnable
			p.cond = nil
		}
		if p.state != procRunnable {
			continue
		}
		if first == nil {
			first = p
		}
		if after == nil && pid > k.lastRunPID {
			after = p
		}
	}
	if after != nil {
		return after
	}
	return first
}

// dispatch runs one process until it yields, blocks, or exits.
func (k *Kernel) dispatch(p *Proc) {
	k.lastRunPID = p.PID
	k.stats.ContextSwitch++
	k.HAL.KAccess(workSched)
	k.M.Clock.Advance(hw.CostContextSwitch)
	k.HAL.SetCurrentThread(p.tid)
	if err := k.HAL.LoadAddressSpace(p.root); err != nil {
		panic(fmt.Sprintf("kernel: context switch to pid %d: %v", p.PID, err))
	}
	k.M.CPU.Regs.Priv = hw.User
	k.cur = p
	p.runCh <- struct{}{}
	<-p.yldCh
	k.cur = nil
}

// RunUntilIdle schedules processes until none is runnable (all blocked,
// zombies, or no processes left). Network input is polled between
// dispatches so packets from a peer machine wake blocked readers.
func (k *Kernel) RunUntilIdle() {
	for {
		k.Net.Poll()
		p := k.pickNext()
		if p == nil {
			return
		}
		k.dispatch(p)
	}
}

// RunUntil schedules until the predicate becomes true or the kernel
// goes idle. It reports whether the predicate was satisfied.
func (k *Kernel) RunUntil(done func() bool) bool {
	for !done() {
		k.Net.Poll()
		p := k.pickNext()
		if p == nil {
			return done()
		}
		k.dispatch(p)
	}
	return true
}

// NumLive returns how many processes are not yet dead (zombies count:
// they still need reaping).
func (k *Kernel) NumLive() int {
	n := 0
	for _, p := range k.procs {
		if p.state != procDead {
			n++
		}
	}
	return n
}

// World co-schedules several machines' kernels (e.g. the server and the
// client of a network experiment) over a shared clock: it alternates
// RunUntilIdle across kernels until no kernel makes progress or the
// predicate is satisfied.
type World struct {
	Kernels []*Kernel
}

// Run alternates the kernels until done() or global quiescence.
// It reports whether done() was satisfied.
func (w *World) Run(done func() bool) bool {
	for {
		if done() {
			return true
		}
		progress := false
		for _, k := range w.Kernels {
			before := k.stats.ContextSwitch
			k.RunUntilIdle()
			if k.stats.ContextSwitch != before {
				progress = true
			}
		}
		if !progress {
			return done()
		}
	}
}

func sortInts(xs []int) {
	// insertion sort: pid lists are tiny and this keeps the hot
	// scheduler path allocation-free beyond the slice itself.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
