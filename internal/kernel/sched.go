package kernel

import (
	"fmt"

	"repro/internal/hw"
)

// This file is the scheduler: per-CPU round-robin run queues over
// cooperative process goroutines. On a single-CPU machine the original
// serial loop below runs one process goroutine at a time and nothing
// else. Multi-CPU machines always run the deterministic epoch/barrier
// scheduler instead (epoch.go): each epoch every CPU is dispatched one
// user segment, user segments run either serially in CPU-id order or —
// with host parallelism enabled — on concurrent host goroutines, and
// all cross-CPU effects are delivered serially at the epoch barrier in
// CPU-id order. Both user-phase modes execute identical code in an
// identical order, so every virtual number is bit-identical; -hostpar
// changes host wall-clock only.
//
// Virtual parallelism is modeled by attribution: every dispatch
// samples the clock around the process's time slice and charges it to
// the dispatching CPU's busy counter. Experiments derive per-CPU
// utilization and makespan (max busy across CPUs) from these counters.

// cpuRun is one virtual CPU's scheduler state: a sorted PID run queue,
// maintained incrementally on process creation/exit/migration rather
// than rebuilt per dispatch, plus round-robin and accounting state.
type cpuRun struct {
	id      int
	pids    []int // ascending; invariant maintained by schedAdd/schedRemove
	lastPID int   // last dispatched PID (round-robin cursor)
	busy    uint64

	// Epoch-scheduler slot state (epoch.go): the process currently
	// pinned to this CPU, and which phase resumes it next.
	slot *Proc
	pend pendKind
}

// insertPID adds pid to the sorted queue.
func (c *cpuRun) insertPID(pid int) {
	i := len(c.pids)
	for i > 0 && c.pids[i-1] > pid {
		i--
	}
	c.pids = append(c.pids, 0)
	copy(c.pids[i+1:], c.pids[i:])
	c.pids[i] = pid
}

// removePID drops pid from the queue (no-op if absent).
func (c *cpuRun) removePID(pid int) {
	for i, v := range c.pids {
		if v == pid {
			c.pids = append(c.pids[:i], c.pids[i+1:]...)
			return
		}
	}
}

// schedAdd enqueues a new process on its home CPU's run queue.
func (k *Kernel) schedAdd(p *Proc) {
	k.cpus[p.cpu].insertPID(p.PID)
}

// schedRemove drops a reaped process from its run queue.
func (k *Kernel) schedRemove(p *Proc) {
	k.cpus[p.cpu].removePID(p.PID)
}

// pickNextOn promotes blocked processes on c's queue whose wait
// condition has become true and returns the next runnable process in
// round-robin order (first runnable PID strictly after the
// last-dispatched one, wrapping). The queue is kept sorted by
// schedAdd/schedRemove, so this is one linear scan with no per-call
// rebuild or sort.
func (k *Kernel) pickNextOn(c *cpuRun) *Proc {
	var first, after *Proc
	for _, pid := range c.pids {
		p := k.procs[pid]
		if p.state == procBlocked && p.cond != nil && p.cond() {
			p.state = procRunnable
			p.cond = nil
		}
		// In-flight processes already occupy an epoch slot (possibly on
		// another CPU); no second slot may pick them up.
		if p.state != procRunnable || p.inflight {
			continue
		}
		if first == nil {
			first = p
		}
		if after == nil && pid > c.lastPID {
			after = p
		}
	}
	if after != nil {
		return after
	}
	return first
}

// steal migrates a runnable process from another CPU's queue to the
// idle CPU c. Queues are scanned in a deterministic order starting
// after c; only already-runnable processes are taken (blocked ones are
// promoted by their home CPU's own pickNextOn pass).
func (k *Kernel) steal(c *cpuRun) *Proc {
	n := len(k.cpus)
	for i := 1; i < n; i++ {
		victim := k.cpus[(c.id+i)%n]
		for _, pid := range victim.pids {
			p := k.procs[pid]
			if p.state != procRunnable || p.inflight {
				continue
			}
			victim.removePID(pid)
			p.cpu = c.id
			c.insertPID(pid)
			k.stats.Steals++
			return p
		}
	}
	return nil
}

// dispatchOn runs one process on CPU c until it yields, blocks, or
// exits, attributing the elapsed virtual time to c.
func (k *Kernel) dispatchOn(c *cpuRun, p *Proc) {
	k.M.SetCurrentCPU(c.id)
	start := k.M.Clock.Cycles()
	// Pending IPIs (rescheduling requests from cross-CPU signal posts)
	// are delivered now: their architectural effect is forcing this
	// trip through the scheduler.
	k.M.DrainIPIs(c.id)
	c.lastPID = p.PID
	k.stats.ContextSwitch++
	k.HAL.KAccess(workSched)
	k.M.Clock.Charge(hw.TagSched, hw.CostContextSwitch)
	k.HAL.SetCurrentThread(p.tid)
	if err := k.HAL.LoadAddressSpace(p.root); err != nil {
		panic(fmt.Sprintf("kernel: context switch to pid %d: %v", p.PID, err))
	}
	k.M.Cur().Regs.Priv = hw.User
	p.onCPU = c.id
	k.cur = p
	k.M.Clock.SetContext(int32(p.PID), 0)
	p.runCh <- struct{}{}
	<-p.yldCh
	k.cur = nil
	k.M.Clock.SetContext(0, 0)
	c.busy += k.M.Clock.Cycles() - start
}

// schedStep advances the machine by one dispatch: CPUs are offered the
// chance to run in round-robin order starting after the CPU that
// dispatched last; a CPU with an empty queue tries to steal. Reports
// whether any process ran.
func (k *Kernel) schedStep() bool {
	n := len(k.cpus)
	for i := 0; i < n; i++ {
		id := (k.lastCPU + 1 + i) % n
		c := k.cpus[id]
		p := k.pickNextOn(c)
		if p == nil && n > 1 {
			p = k.steal(c)
		}
		if p == nil {
			continue
		}
		k.lastCPU = id
		k.dispatchOn(c, p)
		return true
	}
	return false
}

// RunUntilIdle schedules processes until none is runnable (all blocked,
// zombies, or no processes left) and no armed timer can unblock one.
// Network input is polled between dispatches so packets from a peer
// machine wake blocked readers; when everything is blocked on timers,
// virtual time skips to the next expiry (idleAdvance) instead of
// busy-spinning.
func (k *Kernel) RunUntilIdle() {
	if k.epochMode {
		k.runEpochs(nil)
		return
	}
	for {
		k.Net.Poll()
		if !k.schedStep() && !k.idleAdvance() {
			return
		}
	}
}

// RunUntil schedules until the predicate becomes true or the kernel
// goes idle. It reports whether the predicate was satisfied.
func (k *Kernel) RunUntil(done func() bool) bool {
	if k.epochMode {
		return k.runEpochs(done)
	}
	for !done() {
		k.Net.Poll()
		if !k.schedStep() && !k.idleAdvance() {
			return done()
		}
	}
	return true
}

// IdleInfo implements hw.IdleSource: the earliest armed network timer
// and whether this kernel has work that must run before virtual time
// may skip (a runnable process, or pending NIC frames that a drain
// could actually deliver — window-blocked frames don't count, their
// delivery depends on a consumer that is itself blocked).
func (k *Kernel) IdleInfo() (uint64, bool, bool) {
	runnable := k.Net.deliverable()
	if !runnable {
		for _, p := range k.procs {
			if p.state == procRunnable && !p.inflight {
				runnable = true
				break
			}
		}
	}
	next, has := k.Net.timerNext()
	return next, has, runnable
}

// idleAdvance is the timer-interrupt half of idle handling: with every
// process blocked, if this kernel's earliest armed timer is the
// soonest event on the shared clock (no kernel anywhere has runnable
// work, none has an earlier timer), virtual time skips straight to
// that expiry — the simulation analogue of halting until the next
// timer interrupt. The skipped span is charged to TagNet (it exists
// only because a network timeout is pending). Reports whether the
// caller should poll again: the due timer fires on the next Poll.
func (k *Kernel) idleAdvance() bool {
	mine, has := k.Net.timerNext()
	if !has {
		return false
	}
	target, ok := k.M.Clock.IdleTarget()
	if !ok {
		return false // someone on this clock still has runnable work
	}
	if target < mine {
		return false // an earlier timer elsewhere: that kernel skips
	}
	now := k.M.Clock.Cycles()
	if mine > now {
		k.M.Clock.Charge(hw.TagNet, mine-now)
	}
	return true
}

// NumLive returns how many processes are not yet dead (zombies count:
// they still need reaping).
func (k *Kernel) NumLive() int {
	n := 0
	for _, p := range k.procs {
		if p.state != procDead {
			n++
		}
	}
	return n
}

// NumCPUs returns the machine's virtual CPU count.
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// CPUBusy returns the busy-cycle counter of each virtual CPU: the
// virtual time spent in that CPU's dispatches since boot. The CPU-
// scaling experiment derives makespan (max over CPUs of the busy
// delta) and per-CPU utilization from these.
func (k *Kernel) CPUBusy() []uint64 {
	out := make([]uint64, len(k.cpus))
	for i, c := range k.cpus {
		out[i] = c.busy
	}
	return out
}

// World co-schedules several machines' kernels (e.g. the server and the
// client of a network experiment) over a shared clock: it alternates
// RunUntilIdle across kernels until no kernel makes progress or the
// predicate is satisfied.
type World struct {
	Kernels []*Kernel
}

// Run alternates the kernels until done() or global quiescence.
// It reports whether done() was satisfied. Progress is a context
// switch or any virtual-time charge: a timer-driven pass (idle skip,
// expiry handlers) can make progress — close connections, send FINs —
// without dispatching a process, and must not read as quiescence.
func (w *World) Run(done func() bool) bool {
	for {
		if done() {
			return true
		}
		progress := false
		for _, k := range w.Kernels {
			beforeCS := k.stats.ContextSwitch
			beforeCycles := k.M.Clock.Cycles()
			k.RunUntilIdle()
			if k.stats.ContextSwitch != beforeCS || k.M.Clock.Cycles() != beforeCycles {
				progress = true
			}
		}
		if !progress {
			return done()
		}
	}
}
