package kernel

// Kernel path work constants: the number of kernel data-structure
// accesses (charged through HAL.KAccess) each operation performs. These
// stand in for the loads and stores the compiled kernel executes along
// each path; under Virtual Ghost every one of them carries the
// sandboxing mask cost, which is where the Table 2 overheads come from.
//
// The values are calibrated once against the paper's *native* column
// (see EXPERIMENTS.md); the Virtual Ghost column is never set directly
// — it emerges from the HAL's per-access instrumentation charges.
const (
	// workSyscallDispatch is the common syscall entry/exit path
	// (thread lookup, credential checks, argument fetch, return).
	workSyscallDispatch = 20
	// workTimerTick is the timer-interrupt bookkeeping.
	workTimerTick = 40
	// workNameiPerComponent is one path-component lookup (directory
	// hash probe, vnode cache).
	workNameiPerComponent = 500
	// workOpenFile is open()'s post-lookup work: file allocation,
	// descriptor install, vnode locking.
	workOpenFile = 700
	// workCloseFile is close()'s teardown.
	workCloseFile = 300
	// workCreateFile is inode allocation + directory insert beyond the
	// lookup itself.
	workCreateFile = 2500
	// workUnlinkFile is directory remove + inode free.
	workUnlinkFile = 3800
	// workReadWriteBase is the fixed per-call cost of read()/write()
	// (uiomove setup, vnode lock, offset update).
	workReadWriteBase = 150
	// workReadWritePerPage is charged per 4 KiB moved (buffer-cache
	// lookup and segment bookkeeping; the byte copy itself is charged
	// by Copyin/Copyout).
	workReadWritePerPage = 40
	// workBufCacheHit is one buffer-cache hit.
	workBufCacheHit = 25
	// workBufCacheMiss is the extra work of a miss (allocation,
	// eviction) before the disk transfer cost.
	workBufCacheMiss = 120
	// workMmap is mmap()'s VM-object and map-entry manipulation.
	workMmap = 3500
	// workMunmap tears a region down.
	workMunmap = 2300
	// workPageFault is the fault path: map lookup, object traversal,
	// PTE install (the HAL MapPage adds its own checks under VG).
	workPageFault = 600
	// workFork is fork()'s proc allocation, credential/fd copies, and
	// VM-map duplication bookkeeping (page copies charged separately).
	workFork = 30000
	// workForkPerPage is the per-copied-page map/object work.
	workForkPerPage = 500
	// workExec is execve()'s image setup beyond fork.
	workExec = 35000
	// workExit is process teardown.
	workExit = 8000
	// workWait is wait4's reaping.
	workWait = 500
	// workSignalInstall is sigaction bookkeeping.
	workSignalInstall = 45
	// workSignalDeliver is the sendsig path (beyond the HAL's IC work).
	workSignalDeliver = 120
	// workKill is the kill() lookup and posting.
	workKill = 120
	// workSelectBase + workSelectPerFD model select()'s scan.
	workSelectBase  = 200
	workSelectPerFD = 24
	// workPipe is pipe creation.
	workPipe = 260
	// workSocket covers socket/bind/listen setup each.
	workSocket = 300
	// workNetPerPacket is protocol processing per packet.
	workNetPerPacket = 120
	// workSched is one scheduler pass (runqueue manipulation).
	workSched = 90
	// workPollCreate is poll-set allocation (sysPollCreate).
	workPollCreate = 300
	// workPollCtl covers poll-set edits, nonblock toggles, and socket
	// timeout arming — small descriptor-table manipulations.
	workPollCtl = 120
	// workPollWaitBase + workPollPerEvent model sysPollWait: a fixed
	// entry cost plus work per *reported* event — O(ready), never
	// O(members), which is the epoll cost shape that makes the C10K
	// server's syscall bill scale with traffic instead of connections.
	workPollWaitBase = 180
	workPollPerEvent = 30
	// workTimerFire is the wheel-expiry bookkeeping per fired timer.
	workTimerFire = 60
)
