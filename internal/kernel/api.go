package kernel

import (
	"repro/internal/core"
	"repro/internal/hw"
)

// This file exports the kernel-internal capabilities that loaded kernel
// code (modules — including malicious ones) can exercise. On real
// hardware a module is just kernel text: it can walk the proc table,
// rewrite another process's signal state, map memory into any address
// space, and post signals. These entry points model that power; whether
// the *effects* reach protected state is decided by the HAL's checks.

// ProcByPID returns a process by pid (the proc-table walk every rootkit
// starts with).
func (k *Kernel) ProcByPID(pid int) (*Proc, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// PostSignal queues a signal for a process from kernel context.
func (k *Kernel) PostSignal(target *Proc, sig int) { k.postSignal(target, sig) }

// MmapIntoProcess creates an anonymous mapping in an arbitrary
// process's address space from kernel context (what the paper's second
// attack does via mmap on the victim).
func (k *Kernel) MmapIntoProcess(target *Proc, npages int) (hw.Virt, bool) {
	base, e := k.mmapRegion(target, npages, -1, 0)
	if e != 0 {
		return 0, false
	}
	return base, true
}

// SetRawSignalHandler rewrites a process's signal disposition directly
// (no libc wrapper, no sva.permitFunction registration) — kernel code
// can always scribble on the kernel's own sigacts table.
func (k *Kernel) SetRawSignalHandler(target *Proc, sig int, addr uint64) {
	target.sigHandlers[sig] = addr
}

// InstallRawFD plants an open file in a process's descriptor table from
// kernel context and returns the descriptor number.
func (k *Kernel) InstallRawFD(target *Proc, ops FileOps) int {
	fd, e := target.allocFD(ops, true)
	if e != 0 {
		return -1
	}
	return fd
}

// SetDevRandomHook interposes on the OS randomness source (the Iago
// randomness attack: return the same "random" value every time).
func (k *Kernel) SetDevRandomHook(fn func() uint64) { k.devRandomHook = fn }

// OpenKernelFile opens (creating if needed) a file from kernel context,
// as the rootkit does for its exfiltration target.
func (k *Kernel) OpenKernelFile(path string) (FileOps, bool) {
	ino, err := k.FS.Lookup(path)
	if err != nil {
		ino, err = k.FS.Create(path)
		if err != nil {
			return nil, false
		}
	}
	return &fsFile{fs: k.FS, ino: ino}, true
}

// ReadKernelFile reads an entire file from kernel context (the attacker
// inspecting its loot, and tests verifying exfiltration).
func (k *Kernel) ReadKernelFile(path string) ([]byte, bool) {
	ino, err := k.FS.Lookup(path)
	if err != nil {
		return nil, false
	}
	st, err := k.FS.Stat(ino)
	if err != nil {
		return nil, false
	}
	buf := make([]byte, st.Size)
	n, err := k.FS.ReadAt(ino, buf, 0)
	if err != nil {
		return nil, false
	}
	return buf[:n], true
}

// WriteKernelFile writes a file from kernel context (used to seed
// workloads and by tampering attacks).
func (k *Kernel) WriteKernelFile(path string, data []byte) bool {
	ino, err := k.FS.Lookup(path)
	if err != nil {
		ino, err = k.FS.Create(path)
		if err != nil {
			return false
		}
	}
	in, err := k.FS.readInode(ino)
	if err != nil {
		return false
	}
	if err := k.FS.truncate(ino, in); err != nil {
		return false
	}
	_, err = k.FS.WriteAt(ino, data, 0)
	return err == nil
}

// SwappedGhostBlob exposes the OS's stored swap blob for a process page
// — hostile-OS inspection of swapped ghost memory.
func (k *Kernel) SwappedGhostBlob(pid int, va hw.Virt) ([]byte, bool) {
	blobs, ok := k.swappedGhost[pid]
	if !ok {
		return nil, false
	}
	b, ok := blobs[va]
	return b, ok
}

// TamperSwappedGhostBlob lets a hostile OS corrupt a stored swap blob.
func (k *Kernel) TamperSwappedGhostBlob(pid int, va hw.Virt, mutate func([]byte) []byte) bool {
	blobs, ok := k.swappedGhost[pid]
	if !ok {
		return false
	}
	b, ok := blobs[va]
	if !ok {
		return false
	}
	blobs[va] = mutate(b)
	return true
}

// InstallTrustedProgram installs a program through the trusted path:
// under Virtual Ghost the binary is built and signed by the machine's
// installer (with a fresh application key); on the baseline it is
// registered directly. Returns the binary for tests that tamper with
// it.
func (k *Kernel) InstallTrustedProgram(name string, appKey []byte, main func(p *Proc)) (*core.Binary, error) {
	if appKey == nil {
		appKey = make([]byte, 32)
		k.M.RNG.Fill(appKey)
	}
	var bin *core.Binary
	if vm, ok := k.HAL.(*core.VM); ok {
		b, err := vm.Installer().Install(name, []byte("image:"+name), appKey)
		if err != nil {
			return nil, err
		}
		bin = b
	} else {
		bin = &core.Binary{Name: name, Image: []byte("image:" + name), KeySection: appKey}
	}
	k.InstallProgram(name, bin, main)
	return bin, nil
}
