package kernel

import "fmt"

// FileOps is the vnode-style interface every file-like object
// implements: regular files, pipes, sockets, and devices.
type FileOps interface {
	// ReadAt reads up to len(b) bytes at offset off (offset ignored by
	// non-seekable objects). It returns 0, nil at end of file and
	// blocks (via p) when no data is available on a blocking object.
	ReadAt(p *Proc, b []byte, off int64) (int, error)
	// WriteAt writes b at off.
	WriteAt(p *Proc, b []byte, off int64) (int, error)
	// Size returns the current size, if meaningful.
	Size() int64
	// Ready reports whether a read would not block (select support).
	Ready() bool
	// Close drops one reference.
	Close(k *Kernel) error
}

// FileDesc is one open-file-table entry; dup'd descriptors share it.
type FileDesc struct {
	Ops      FileOps
	Off      int64
	Refs     int
	Seekable bool
}

// allocFD installs ops in the lowest free descriptor slot, growing the
// table (up to maxFDs) when every existing slot is taken. The second
// result is a plain errno code (0 = success); syscall handlers negate
// it exactly once via errno().
func (p *Proc) allocFD(ops FileOps, seekable bool) (int, uint64) {
	d := &FileDesc{Ops: ops, Refs: 1, Seekable: seekable}
	// Slots below fdHint are all occupied, so this scan touches only
	// slots freed since the last alloc (amortized O(1)).
	for i := p.fdHint; i < len(p.fds); i++ {
		if p.fds[i] == nil {
			p.fds[i] = d
			p.fdHint = i + 1
			return i, 0
		}
	}
	if len(p.fds) >= maxFDs {
		return -1, EMFILE
	}
	p.fds = append(p.fds, d)
	p.fdHint = len(p.fds)
	return len(p.fds) - 1, 0
}

// fd fetches a descriptor; the errno result follows allocFD's
// convention.
func (p *Proc) fd(n int) (*FileDesc, uint64) {
	if n < 0 || n >= len(p.fds) || p.fds[n] == nil {
		return nil, EBADF
	}
	return p.fds[n], 0
}

// closeFD drops a descriptor.
func (p *Proc) closeFD(k *Kernel, n int) uint64 {
	d, e := p.fd(n)
	if e != 0 {
		return e
	}
	p.fds[n] = nil
	if n < p.fdHint {
		p.fdHint = n
	}
	d.Refs--
	if d.Refs == 0 {
		if err := d.Ops.Close(k); err != nil {
			return EFAULT
		}
	}
	return 0
}

// closeAllFDs releases every descriptor at exit.
func (p *Proc) closeAllFDs(k *Kernel) {
	for i := range p.fds {
		if p.fds[i] != nil {
			_ = p.closeFD(k, i)
		}
	}
}

// --- devices -------------------------------------------------------------

// consoleFile is /dev/console: writes append to the machine console.
type consoleFile struct{ k *Kernel }

func (c *consoleFile) ReadAt(p *Proc, b []byte, off int64) (int, error) { return 0, nil }
func (c *consoleFile) WriteAt(p *Proc, b []byte, off int64) (int, error) {
	c.k.Console().Printf("%s", string(b))
	return len(b), nil
}
func (c *consoleFile) Size() int64           { return 0 }
func (c *consoleFile) Ready() bool           { return false }
func (c *consoleFile) Close(k *Kernel) error { return nil }

// nullFile is /dev/null.
type nullFile struct{}

func (nullFile) ReadAt(p *Proc, b []byte, off int64) (int, error)  { return 0, nil }
func (nullFile) WriteAt(p *Proc, b []byte, off int64) (int, error) { return len(b), nil }
func (nullFile) Size() int64                                       { return 0 }
func (nullFile) Ready() bool                                       { return false }
func (nullFile) Close(k *Kernel) error                             { return nil }

// randomFile is /dev/random: OS-provided randomness, which a hostile
// kernel can bias (the Iago attack vector); ghosting applications use
// the VM's trusted instruction instead.
type randomFile struct{ k *Kernel }

func (r *randomFile) ReadAt(p *Proc, b []byte, off int64) (int, error) {
	for i := range b {
		var v uint64
		if r.k.devRandomHook != nil {
			v = r.k.devRandomHook()
		} else {
			v = r.k.M.RNG.Next()
		}
		b[i] = byte(v)
	}
	return len(b), nil
}
func (r *randomFile) WriteAt(p *Proc, b []byte, off int64) (int, error) {
	return 0, fmt.Errorf("read-only")
}
func (r *randomFile) Size() int64           { return 0 }
func (r *randomFile) Ready() bool           { return true }
func (r *randomFile) Close(k *Kernel) error { return nil }

// openDevice resolves the /dev namespace.
func (k *Kernel) openDevice(name string) FileOps {
	switch name {
	case "/dev/console":
		return &consoleFile{k: k}
	case "/dev/null":
		return nullFile{}
	case "/dev/random", "/dev/urandom":
		return &randomFile{k: k}
	}
	return nil
}
