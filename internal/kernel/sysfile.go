package kernel

import (
	"repro/internal/core"
	"repro/internal/hw"
)

// Open flags.
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OAppend = 0x8
	OCreat  = 0x200
	OTrunc  = 0x400
)

// fsFile adapts an FS inode to FileOps.
type fsFile struct {
	fs  *FS
	ino uint32
}

func (f *fsFile) ReadAt(p *Proc, b []byte, off int64) (int, error) {
	return f.fs.ReadAt(f.ino, b, off)
}

func (f *fsFile) WriteAt(p *Proc, b []byte, off int64) (int, error) {
	return f.fs.WriteAt(f.ino, b, off)
}

func (f *fsFile) Size() int64 {
	st, err := f.fs.Stat(f.ino)
	if err != nil {
		return 0
	}
	return st.Size
}

func (f *fsFile) Ready() bool           { return true }
func (f *fsFile) Close(k *Kernel) error { return nil }

// copyinPath fetches a NUL-terminated path string from user memory via
// the instrumented kernel accessors.
func copyinPath(k *Kernel, p *Proc, va uint64) (string, uint64) {
	const maxPath = 512
	var out []byte
	for len(out) < maxPath {
		chunk, err := k.copyin(p, hw.Virt(va)+hw.Virt(len(out)), 32)
		if err != nil {
			return "", errno(EFAULT)
		}
		for _, c := range chunk {
			if c == 0 {
				return string(out), 0
			}
			out = append(out, c)
		}
	}
	return "", errno(EINVAL)
}

// sysOpen implements open(path, flags).
func sysOpen(k *Kernel, p *Proc, ic core.IContext) uint64 {
	path, e := copyinPath(k, p, ic.Arg(0))
	if e != 0 {
		return e
	}
	flags := ic.Arg(1)
	k.HAL.KAccess(workOpenFile)

	if dev := k.openDevice(path); dev != nil {
		fd, e := p.allocFD(dev, false)
		if e != 0 {
			return errno(e)
		}
		return uint64(fd)
	}

	ino, err := k.FS.Lookup(path)
	if err != nil {
		if flags&OCreat == 0 {
			return errno(errnoOf(err))
		}
		ino, err = k.FS.Create(path)
		if err != nil {
			return errno(errnoOf(err))
		}
	} else if flags&OTrunc != 0 {
		in, ierr := k.FS.readInode(ino)
		if ierr != nil {
			return errno(EFAULT)
		}
		if err := k.FS.truncate(ino, in); err != nil {
			return errno(errnoOf(err))
		}
	}
	st, err := k.FS.Stat(ino)
	if err != nil {
		return errno(errnoOf(err))
	}
	if st.IsDir && flags&(OWrOnly|ORdWr) != 0 {
		return errno(EISDIR)
	}
	ff := &fsFile{fs: k.FS, ino: ino}
	fd, e := p.allocFD(ff, true)
	if e != 0 {
		return errno(e)
	}
	d := p.fds[fd]
	if flags&OAppend != 0 {
		d.Off = st.Size
	}
	return uint64(fd)
}

// sysClose implements close(fd).
func sysClose(k *Kernel, p *Proc, ic core.IContext) uint64 {
	k.HAL.KAccess(workCloseFile)
	if e := p.closeFD(k, int(ic.Arg(0))); e != 0 {
		return errno(e)
	}
	return 0
}

// sysRead implements read(fd, buf, n): the kernel reads into its own
// buffer and copies out through the instrumented accessors, so a buffer
// pointer aimed at ghost memory lands harmlessly in kernel space under
// Virtual Ghost.
func sysRead(k *Kernel, p *Proc, ic core.IContext) uint64 {
	d, e := p.fd(int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	n := int(ic.Arg(2))
	if n < 0 {
		return errno(EINVAL)
	}
	k.HAL.KAccess(workReadWriteBase)
	buf := make([]byte, n)
	k.HAL.OnIndirectCall(1) // fo_read through the file-ops table
	got, err := d.Ops.ReadAt(p, buf, d.Off)
	if err != nil {
		return errno(errnoOf(err))
	}
	if got > 0 {
		if err := k.copyout(p, hw.Virt(ic.Arg(1)), buf[:got]); err != nil {
			return errno(EFAULT)
		}
	}
	if d.Seekable {
		d.Off += int64(got)
	}
	return uint64(got)
}

// sysWrite implements write(fd, buf, n).
func sysWrite(k *Kernel, p *Proc, ic core.IContext) uint64 {
	d, e := p.fd(int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	n := int(ic.Arg(2))
	if n < 0 {
		return errno(EINVAL)
	}
	k.HAL.KAccess(workReadWriteBase)
	buf, err := k.copyin(p, hw.Virt(ic.Arg(1)), n)
	if err != nil {
		return errno(EFAULT)
	}
	k.HAL.OnIndirectCall(1) // fo_write
	wrote, werr := d.Ops.WriteAt(p, buf, d.Off)
	if werr != nil {
		if errnoOf(werr) == EPIPE {
			p.sigPending = append(p.sigPending, SIGPIPE)
		}
		return errno(errnoOf(werr))
	}
	if d.Seekable {
		d.Off += int64(wrote)
	}
	return uint64(wrote)
}

// sysLseek implements lseek(fd, off, whence).
func sysLseek(k *Kernel, p *Proc, ic core.IContext) uint64 {
	d, e := p.fd(int(ic.Arg(0)))
	if e != 0 {
		return errno(e)
	}
	if !d.Seekable {
		return errno(ESPIPE)
	}
	off := int64(ic.Arg(1))
	switch ic.Arg(2) {
	case 0: // SEEK_SET
		d.Off = off
	case 1: // SEEK_CUR
		d.Off += off
	case 2: // SEEK_END
		d.Off = d.Ops.Size() + off
	default:
		return errno(EINVAL)
	}
	if d.Off < 0 {
		d.Off = 0
	}
	return uint64(d.Off)
}

// sysUnlink implements unlink(path).
func sysUnlink(k *Kernel, p *Proc, ic core.IContext) uint64 {
	path, e := copyinPath(k, p, ic.Arg(0))
	if e != 0 {
		return e
	}
	if err := k.FS.Unlink(path, false); err != nil {
		return errno(errnoOf(err))
	}
	return 0
}

// sysMkdir implements mkdir(path).
func sysMkdir(k *Kernel, p *Proc, ic core.IContext) uint64 {
	path, e := copyinPath(k, p, ic.Arg(0))
	if e != 0 {
		return e
	}
	if _, err := k.FS.Mkdir(path); err != nil {
		return errno(errnoOf(err))
	}
	return 0
}

// sysRmdir implements rmdir(path).
func sysRmdir(k *Kernel, p *Proc, ic core.IContext) uint64 {
	path, e := copyinPath(k, p, ic.Arg(0))
	if e != 0 {
		return e
	}
	if err := k.FS.Unlink(path, true); err != nil {
		return errno(errnoOf(err))
	}
	return 0
}

// sysStat implements stat(path, statbuf): writes {size, isdir} as two
// u64s.
func sysStat(k *Kernel, p *Proc, ic core.IContext) uint64 {
	path, e := copyinPath(k, p, ic.Arg(0))
	if e != 0 {
		return e
	}
	ino, err := k.FS.Lookup(path)
	if err != nil {
		return errno(errnoOf(err))
	}
	st, err := k.FS.Stat(ino)
	if err != nil {
		return errno(errnoOf(err))
	}
	out := make([]byte, 16)
	putU64(out[0:], uint64(st.Size))
	if st.IsDir {
		putU64(out[8:], 1)
	}
	if err := k.copyout(p, hw.Virt(ic.Arg(1)), out); err != nil {
		return errno(EFAULT)
	}
	return 0
}

// sysFsync flushes the buffer cache.
func sysFsync(k *Kernel, p *Proc, ic core.IContext) uint64 {
	if err := k.FS.Sync(); err != nil {
		return errno(EFAULT)
	}
	return 0
}

// sysPipe implements pipe(fds[2]).
func sysPipe(k *Kernel, p *Proc, ic core.IContext) uint64 {
	k.HAL.KAccess(workPipe)
	r, w := NewPipe()
	rfd, e := p.allocFD(r, false)
	if e != 0 {
		return errno(e)
	}
	wfd, e := p.allocFD(w, false)
	if e != 0 {
		_ = p.closeFD(k, rfd)
		return errno(e)
	}
	out := make([]byte, 8)
	putU32(out[0:], uint32(rfd))
	putU32(out[4:], uint32(wfd))
	if err := k.copyout(p, hw.Virt(ic.Arg(0)), out); err != nil {
		return errno(EFAULT)
	}
	return 0
}

// sysSelect implements a simplified select: arg0 points at an array of
// arg1 fd numbers (u32); returns a bitmask (up to 64 fds) of ready
// descriptors, blocking until at least one is ready when arg2 != 0.
func sysSelect(k *Kernel, p *Proc, ic core.IContext) uint64 {
	nfds := int(ic.Arg(1))
	if nfds < 0 || nfds > 64 {
		return errno(EINVAL)
	}
	k.HAL.KAccess(workSelectBase + workSelectPerFD*nfds)
	raw, err := k.copyin(p, hw.Virt(ic.Arg(0)), nfds*4)
	if err != nil {
		return errno(EFAULT)
	}
	fds := make([]int, nfds)
	for i := range fds {
		fds[i] = int(getU32(raw[4*i:]))
	}
	scan := func() uint64 {
		var mask uint64
		for i, fd := range fds {
			d, e := p.fd(fd)
			if e != 0 {
				continue
			}
			k.HAL.OnIndirectCall(1) // fo_poll
			if d.Ops.Ready() {
				mask |= 1 << uint(i)
			}
		}
		return mask
	}
	mask := scan()
	if mask == 0 && ic.Arg(2) != 0 {
		p.block(func() bool { return scan() != 0 })
		mask = scan()
	}
	return mask
}

// sysMmap implements mmap(len, fd, off) (addr is kernel-chosen, prot is
// RW): returns the mapped base address. fd == ^0 means anonymous.
func sysMmap(k *Kernel, p *Proc, ic core.IContext) uint64 {
	length := int(ic.Arg(0))
	npages := (length + hw.PageSize - 1) / hw.PageSize
	fd := -1
	if ic.Arg(1) != ^uint64(0) {
		fd = int(ic.Arg(1))
	}
	base, e := k.mmapRegion(p, npages, fd, int64(ic.Arg(2)))
	if e != 0 {
		return e
	}
	return uint64(base)
}

// sysMunmap implements munmap(addr, len).
func sysMunmap(k *Kernel, p *Proc, ic core.IContext) uint64 {
	length := int(ic.Arg(1))
	npages := (length + hw.PageSize - 1) / hw.PageSize
	if e := k.munmapRegion(p, hw.Virt(ic.Arg(0)), npages); e != 0 {
		return e
	}
	return 0
}

// sysSbrk grows the heap by arg0 pages and returns the new break.
func sysSbrk(k *Kernel, p *Proc, ic core.IContext) uint64 {
	return k.growHeap(p, int(ic.Arg(0)))
}

// sysSwapOut is the experiment hook that makes the OS swap out one of
// the current process's ghost pages (arg0). The encrypted blob the VM
// returns is stored in OS memory (where a hostile OS can stare at it
// all it likes).
func sysSwapOut(k *Kernel, p *Proc, ic core.IContext) uint64 {
	va := hw.PageOf(hw.Virt(ic.Arg(0)))
	blob, err := k.HAL.SwapOutGhost(p.tid, va)
	if err != nil {
		return errno(EINVAL)
	}
	if k.swappedGhost[p.PID] == nil {
		k.swappedGhost[p.PID] = make(map[hw.Virt][]byte)
	}
	k.swappedGhost[p.PID][va] = blob
	return 0
}

// sysRandom returns OS-provided randomness — the attackable kind.
func sysRandom(k *Kernel, p *Proc, ic core.IContext) uint64 {
	if k.devRandomHook != nil {
		return k.devRandomHook()
	}
	return k.M.RNG.Next()
}

// sysYield is sched_yield: the process gives up the CPU mid-trap (the
// kernel path any blocking primitive takes).
func sysYield(k *Kernel, p *Proc, ic core.IContext) uint64 {
	p.yield()
	return 0
}
