package kernel

import "sort"

// SyscallCycles aggregates the virtual-cycle cost of one syscall
// number: how many times it was dispatched and the total/min/max cycles
// spent between entering the dispatch path and the handler returning
// (signal delivery and the trap exit are excluded — they are shared
// return-path work, not attributable to one call).
type SyscallCycles struct {
	Num    uint64
	Name   string
	Count  uint64
	Cycles uint64
	Min    uint64
	Max    uint64
}

// Mean returns the average cycles per call.
func (s SyscallCycles) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Count)
}

// recordSyscall folds one dispatch's cycle cost into the per-syscall
// profile. Host-side bookkeeping: charges nothing.
func (k *Kernel) recordSyscall(num, cycles uint64) {
	if k.sysProf == nil {
		k.sysProf = make(map[uint64]*SyscallCycles)
	}
	sc, ok := k.sysProf[num]
	if !ok {
		sc = &SyscallCycles{Num: num, Name: SyscallName(num), Min: cycles}
		k.sysProf[num] = sc
	}
	sc.Count++
	sc.Cycles += cycles
	if cycles < sc.Min {
		sc.Min = cycles
	}
	if cycles > sc.Max {
		sc.Max = cycles
	}
}

// SyscallProfile returns the per-syscall cycle histogram, most
// expensive (by total cycles) first.
func (k *Kernel) SyscallProfile() []SyscallCycles {
	out := make([]SyscallCycles, 0, len(k.sysProf))
	for _, sc := range k.sysProf {
		out = append(out, *sc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Num < out[j].Num
	})
	return out
}

var syscallNames = map[uint64]string{
	SysExit: "exit", SysFork: "fork", SysRead: "read", SysWrite: "write",
	SysOpen: "open", SysClose: "close", SysWait4: "wait4",
	SysUnlink: "unlink", SysGetpid: "getpid", SysKill: "kill",
	SysSigact: "sigaction", SysSigret: "sigreturn", SysPipe: "pipe",
	SysSelect: "select", SysFsync: "fsync", SysSocket: "socket",
	SysConnect: "connect", SysBind: "bind", SysListen: "listen",
	SysAccept: "accept", SysSendTo: "sendto", SysRecv: "recv",
	SysExecve: "execve", SysMmap: "mmap", SysMunmap: "munmap",
	SysLseek: "lseek", SysMkdir: "mkdir", SysRmdir: "rmdir",
	SysStat: "stat", SysSbrk: "sbrk", SysSwapOut: "swapout",
	SysRandom: "random", SysYield: "yield",
}

// SyscallName returns the conventional name for a syscall number, or
// "sys<num>" for unknown numbers (e.g. module-installed syscalls).
func SyscallName(num uint64) string {
	if n, ok := syscallNames[num]; ok {
		return n
	}
	return "sys" + itoa(num)
}

// itoa is a tiny allocation-light uint64 formatter.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
