package kernel

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vir"
)

// buildCounterModule is a benign module: it keeps a counter in kernel
// memory and exposes bump/read entry points.
func buildCounterModule() *vir.Module {
	m := vir.NewModule("counter")
	const slot = 0xffffff8000001000 // kernel-space variable

	b := vir.NewFunction("bump", 1)
	cur := b.Load(vir.Imm(slot), 8)
	next := b.Add(cur, b.Param(0))
	b.Store(vir.Imm(slot), next, 8)
	b.Ret(next)
	if err := m.AddFunc(b.Fn()); err != nil {
		panic(err)
	}

	r := vir.NewFunction("read_counter", 0)
	r.Ret(r.Load(vir.Imm(slot), 8))
	if err := m.AddFunc(r.Fn()); err != nil {
		panic(err)
	}
	return m
}

func TestBenignModuleRunsOnBothConfigs(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		mod, err := k.LoadModule(buildCounterModule())
		if err != nil {
			t.Fatalf("[%v] load: %v", mode, err)
		}
		for i := 1; i <= 3; i++ {
			if _, err := k.RunModuleFunc(mod, "bump", 10); err != nil {
				t.Fatalf("[%v] bump: %v", mode, err)
			}
		}
		got, err := k.RunModuleFunc(mod, "read_counter")
		if err != nil {
			t.Fatalf("[%v] read: %v", mode, err)
		}
		if got != 30 {
			t.Errorf("[%v] counter = %d, want 30", mode, got)
		}
	}
}

func TestModuleInstrumentationDiffersByConfig(t *testing.T) {
	native := bootKernel(t, core.ModeNative)
	vg := bootKernel(t, core.ModeVirtualGhost)
	nmod, err := native.LoadModule(buildCounterModule())
	if err != nil {
		t.Fatal(err)
	}
	vmod, err := vg.LoadModule(buildCounterModule())
	if err != nil {
		t.Fatal(err)
	}
	naddr, _ := nmod.Translation.Entry("bump")
	vaddr, _ := vmod.Translation.Entry("bump")
	nf, _ := native.HAL.CodeSpace().FuncByAddr(naddr)
	vf, _ := vg.HAL.CodeSpace().FuncByAddr(vaddr)
	if nf.Sandboxed || nf.Labeled {
		t.Errorf("native module instrumented")
	}
	if !vf.Sandboxed || !vf.Labeled {
		t.Errorf("virtual ghost module NOT instrumented")
	}
	if vf.CountOps(vir.OpMaskGhost) == 0 {
		t.Errorf("no mask instructions in the VG translation")
	}
}

func TestModuleUnknownFunction(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	mod, err := k.LoadModule(buildCounterModule())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunModuleFunc(mod, "no_such_fn"); err == nil {
		t.Errorf("unknown module function accepted")
	}
}

func TestModuleKlogIntrinsics(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	m := vir.NewModule("logger")
	b := vir.NewFunction("say_hi", 0)
	b.Call("klog_acc", vir.Imm(0x6f6c6c6568)) // "hello"
	b.Call("klog_flush")
	b.Ret(vir.Imm(0))
	if err := m.AddFunc(b.Fn()); err != nil {
		t.Fatal(err)
	}
	mod, err := k.LoadModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunModuleFunc(mod, "say_hi"); err != nil {
		t.Fatal(err)
	}
	if !k.Console().Contains("hello") {
		t.Errorf("console: %v", k.Console().Lines())
	}
}

func TestModuleUnresolvedSymbol(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	m := vir.NewModule("bad")
	b := vir.NewFunction("call_missing", 0)
	b.Ret(b.Call("definitely_not_a_kernel_symbol"))
	if err := m.AddFunc(b.Fn()); err != nil {
		t.Fatal(err)
	}
	mod, err := k.LoadModule(m)
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.RunModuleFunc(mod, "call_missing")
	if err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("unresolved symbol: %v", err)
	}
}

func TestModuleCurPidIntrinsic(t *testing.T) {
	k := bootKernel(t, core.ModeNative)
	m := vir.NewModule("who")
	b := vir.NewFunction("whoami", 0)
	b.Ret(b.Call("cur_pid"))
	if err := m.AddFunc(b.Fn()); err != nil {
		t.Fatal(err)
	}
	mod, err := k.LoadModule(m)
	if err != nil {
		t.Fatal(err)
	}
	var saw uint64
	if _, err := k.Spawn("host", func(p *Proc) {
		// Run the module from process context (as a syscall handler
		// would).
		v, err := k.RunModuleFunc(mod, "whoami")
		if err != nil {
			t.Errorf("whoami: %v", err)
		}
		saw = v
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if saw != 1 {
		t.Errorf("cur_pid = %d", saw)
	}
}

// TestModuleGhostAccessSemantics is the module-level version of the
// headline property: the same IR load of a ghost address returns the
// secret on native and masked noise under Virtual Ghost.
func TestModuleGhostAccessSemantics(t *testing.T) {
	m := vir.NewModule("peek")
	b := vir.NewFunction("peek8", 1)
	b.Ret(b.Load(b.Param(0), 8))
	if err := m.AddFunc(b.Fn()); err != nil {
		t.Fatal(err)
	}
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		mod, err := k.LoadModule(m)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		_, err = k.Spawn("victim", func(p *Proc) {
			va, err := p.AllocGM(1)
			if err != nil {
				t.Fatalf("allocgm: %v", err)
			}
			p.Store(uint64(va), 8, 0x1234567890abcdef)
			v, err := k.RunModuleFunc(mod, "peek8", uint64(va))
			if err != nil {
				t.Fatalf("[%v] peek: %v", mode, err)
			}
			got = v
		})
		if err != nil {
			t.Fatal(err)
		}
		k.RunUntilIdle()
		switch mode {
		case core.ModeNative:
			if got != 0x1234567890abcdef {
				t.Errorf("native module should read the secret, got %#x", got)
			}
		case core.ModeVirtualGhost:
			if got == 0x1234567890abcdef {
				t.Errorf("instrumented module read ghost memory")
			}
		}
	}
}

// --- the kernel's own IR routines -----------------------------------------

func TestKernelCoreModuleRoutines(t *testing.T) {
	for _, mode := range modes() {
		k := bootKernel(t, mode)
		const base = 0xffffff8000100000
		if err := k.KMemset(base, 0xab, 64); err != nil {
			t.Fatalf("[%v] kmemset: %v", mode, err)
		}
		if err := k.KMemset(base+100, 0xab, 64); err != nil {
			t.Fatalf("[%v] kmemset: %v", mode, err)
		}
		eq, err := k.KMemcmp(base, base+100, 64)
		if err != nil || !eq {
			t.Errorf("[%v] identical buffers compare unequal (%v)", mode, err)
		}
		if err := k.KMemset(base+100, 0xac, 1); err != nil {
			t.Fatal(err)
		}
		eq, _ = k.KMemcmp(base, base+100, 64)
		if eq {
			t.Errorf("[%v] differing buffers compare equal", mode)
		}
		c1, err := k.KChecksum(base, 64)
		if err != nil {
			t.Fatal(err)
		}
		c2, _ := k.KChecksum(base+100, 64)
		if c1 == c2 {
			t.Errorf("[%v] checksum collision on differing buffers", mode)
		}
	}
}

func TestKernelCoreModuleIsInstrumentedUnderVG(t *testing.T) {
	k := bootKernel(t, core.ModeVirtualGhost)
	addr, ok := k.CoreModule().Translation.Entry("kmemset")
	if !ok {
		t.Fatal("kmemset not in the translation")
	}
	f, ok := k.HAL.CodeSpace().FuncByAddr(addr)
	if !ok {
		t.Fatal("kmemset not in code space")
	}
	if !f.Sandboxed || !f.Labeled || f.CountOps(vir.OpMaskGhost) == 0 {
		t.Errorf("kernel's own code not instrumented: sandboxed=%v labeled=%v masks=%d",
			f.Sandboxed, f.Labeled, f.CountOps(vir.OpMaskGhost))
	}
	// And the instrumented kernel code cannot reach ghost memory.
	var leaked bool
	if _, err := k.Spawn("victim", func(p *Proc) {
		va, _ := p.AllocGM(1)
		p.Store(uint64(va), 8, 0x5ec5ec5ec)
		// kmemset over the victim's ghost page from kernel context:
		if err := k.KMemset(uint64(va), 0xff, 8); err != nil {
			t.Fatalf("kmemset: %v", err)
		}
		leaked = p.Load(uint64(va), 8) != 0x5ec5ec5ec
	}); err != nil {
		t.Fatal(err)
	}
	k.RunUntilIdle()
	if leaked {
		t.Errorf("instrumented kernel memset modified ghost memory")
	}
}
