// Package compiler implements the trusted Virtual Ghost compiler: the
// load/store sandboxing pass, the control-flow-integrity pass, the
// mmap-return masking pass for application code (the Iago defence), and
// the translator that turns virtual-instruction-set modules into signed
// "native" code laid out in a code space. All operating-system code —
// the core kernel and every dynamically loaded module — must pass
// through Translate before it can execute in supervisor mode, which is
// what makes binary code injection inexpressible (paper §1, §4.2).
package compiler

import (
	"repro/internal/vir"
)

// SandboxPass instruments every load, store, and memcpy in the function
// so that the effective address is bit-masked out of the ghost-memory
// and SVA-internal partitions before use (paper §4.3.1, §5: "determines
// whether the address is greater than or equal to 0xffffff0000000000
// and, if so, ORs it with 2^39"). The pass rewrites the instruction
// stream in place, allocating fresh registers for the masked addresses.
//
// Block copies are masked once per operand per call — the same policy
// the prototype applied to memcpy().
func SandboxPass(f *vir.Function) {
	if f.Sandboxed {
		return
	}
	for _, b := range f.Blocks {
		out := make([]vir.Instr, 0, len(b.Instrs)*2)
		for _, in := range b.Instrs {
			switch in.Op {
			case vir.OpLoad:
				masked := f.NRegs
				f.NRegs++
				out = append(out,
					vir.Instr{Op: vir.OpMaskGhost, Dst: masked, A: in.A},
					vir.Instr{Op: in.Op, Dst: in.Dst, A: vir.R(masked), Size: in.Size},
				)
			case vir.OpStore:
				masked := f.NRegs
				f.NRegs++
				out = append(out,
					vir.Instr{Op: vir.OpMaskGhost, Dst: masked, A: in.A},
					vir.Instr{Op: in.Op, A: vir.R(masked), B: in.B, Size: in.Size},
				)
			case vir.OpMemcpy:
				mdst := f.NRegs
				msrc := f.NRegs + 1
				f.NRegs += 2
				out = append(out,
					vir.Instr{Op: vir.OpMaskGhost, Dst: mdst, A: in.A},
					vir.Instr{Op: vir.OpMaskGhost, Dst: msrc, A: in.B},
					vir.Instr{Op: in.Op, A: vir.R(mdst), B: vir.R(msrc), C: in.C},
				)
			default:
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
	f.Sandboxed = true
}

// SandboxModule runs SandboxPass over every function.
func SandboxModule(m *vir.Module) {
	for _, f := range m.Funcs {
		SandboxPass(f)
	}
}
