package compiler

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/compiler/check"
	"repro/internal/hw"
	"repro/internal/vir"
)

// Kernel code space: translated kernel functions are assigned entry
// addresses in this window. The CFI checks mask/validate control
// targets against it.
const (
	KernelCodeBase uint64 = 0xffffffc000000000
	KernelCodeTop  uint64 = 0xffffffd000000000
	// codeStride is the address spacing between function entry points.
	codeStride = 0x1000
)

// ErrInlineAsm is returned when a module containing inline assembly is
// submitted to the trusted translator. Such code is "not even
// expressible" under Virtual Ghost (paper §1): all OS code must go
// through the virtual instruction set.
var ErrInlineAsm = errors.New("compiler: module contains inline assembly; not expressible in the virtual instruction set")

// ErrNotVerifiable is returned when a module fails structural
// verification.
var ErrNotVerifiable = errors.New("compiler: module failed verification")

// ErrNotAdmissible is returned when instrumented code fails the static
// admission checker — i.e. the emitted IR does not provably carry the
// sandbox/CFI invariants. With correct passes this indicates a compiler
// bug; its job is to turn such bugs (or pass bypasses) into refused
// translations instead of silent security holes.
var ErrNotAdmissible = errors.New("compiler: instrumented code failed admission verification")

// Options selects which protections the compiler applies. The Virtual
// Ghost configuration enables everything; the Native baseline compiles
// with nothing enabled (a plain LLVM build of the kernel, as in the
// paper's baseline).
type Options struct {
	// Sandbox enables the load/store/memcpy ghost-masking pass.
	Sandbox bool
	// CFI enables the control-flow-integrity pass.
	CFI bool
	// RejectAsm makes the translator refuse inline assembly.
	RejectAsm bool
	// VerifyAdmission runs the static admission checker
	// (internal/compiler/check) on the instrumented output and refuses
	// the translation unless the sandbox/CFI invariants are proved on
	// the emitted code itself.
	VerifyAdmission bool
}

// VirtualGhostOptions returns the full Virtual Ghost pipeline.
func VirtualGhostOptions() Options {
	return Options{Sandbox: true, CFI: true, RejectAsm: true, VerifyAdmission: true}
}

// NativeOptions returns the uninstrumented baseline pipeline.
func NativeOptions() Options { return Options{} }

// Translation is the result of compiling a module: the (possibly
// instrumented) code, its layout in code space, and a signature over
// the generated code. The SVA VM caches and verifies translations, so
// the OS cannot substitute different code (paper §4.2: the VM
// "caches and signs the translations").
type Translation struct {
	Module    *vir.Module
	Signature [32]byte
	// CheckProofs holds the admission checker's per-function elision
	// certificates (function name -> proofs), computed only for
	// admitted code. The same certificates are attached to each
	// Function.Proofs, which is where the pre-linked engine reads
	// them; this map exists for reporting (vgbench BENCH output,
	// kernel elision stats).
	CheckProofs map[string]*vir.CheckProofs
	entries     map[string]uint64
	byAddr      map[uint64]*vir.Function
	base, top   uint64
	opts        Options
	admitted    bool
}

// CodeSpace hands out entry addresses and resolves them back to
// functions across every translation loaded on one machine. It is the
// simulation's model of the kernel code segment.
type CodeSpace struct {
	next   uint64
	byAddr map[uint64]*vir.Function
	byName map[string]uint64
	// epoch counts binding changes (translations laid out, foreign code
	// planted). Pre-linked execution engines key their code caches on it
	// — the same discipline the memory walk cache applies to page-table
	// mutation.
	epoch uint64
}

// Epoch returns the current code-binding epoch. It moves whenever the
// symbol→address→function bindings can have changed.
func (cs *CodeSpace) Epoch() uint64 { return cs.epoch }

// NewCodeSpace creates an empty kernel code space.
func NewCodeSpace() *CodeSpace {
	return &CodeSpace{
		next:   KernelCodeBase,
		byAddr: make(map[uint64]*vir.Function),
		byName: make(map[string]uint64),
	}
}

// FuncByAddr resolves a code address to the function whose entry it is.
func (cs *CodeSpace) FuncByAddr(addr uint64) (*vir.Function, bool) {
	f, ok := cs.byAddr[addr]
	return f, ok
}

// FuncAddr returns the entry address of a named function.
func (cs *CodeSpace) FuncAddr(name string) (uint64, bool) {
	a, ok := cs.byName[name]
	return a, ok
}

// InKernelCode reports whether addr falls inside the kernel code
// segment.
func (cs *CodeSpace) InKernelCode(addr uint64) bool {
	return addr >= KernelCodeBase && addr < KernelCodeTop
}

// PlantForeign places a function at an address *outside* kernel code
// space. The attack suite uses this to model exploit payloads copied
// into mmap'ed user/ghost memory: the code exists and is reachable by
// an uninstrumented control transfer, but it is exactly what the CFI
// range check rejects.
func (cs *CodeSpace) PlantForeign(addr uint64, f *vir.Function) {
	cs.byAddr[addr] = f
	cs.byName[f.Name] = addr
	cs.epoch++
}

// Translator compiles modules per its Options and lays them out in a
// CodeSpace.
type Translator struct {
	Opts  Options
	Space *CodeSpace
	// Clock, when set, is charged the admission-verification cost so
	// that translation-time work stays on the virtual-cycle model.
	Clock *hw.Clock
}

// NewTranslator builds a translator over a fresh code space.
func NewTranslator(opts Options) *Translator {
	return &Translator{Opts: opts, Space: NewCodeSpace()}
}

// Translate verifies the module, applies the configured instrumentation
// passes to a private clone, assigns code addresses, and signs the
// result. The input module is left untouched.
func (t *Translator) Translate(m *vir.Module) (*Translation, error) {
	if err := vir.VerifyModule(m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotVerifiable, err)
	}
	if t.Opts.RejectAsm && vir.HasAsm(m) {
		return nil, ErrInlineAsm
	}
	code := m.Clone()
	// The instrumentation flags on submitted IR are attacker-controlled
	// bits, not facts: a hostile module author could pre-set Sandboxed/
	// Labeled so the passes skip their work. Clear all translation state
	// on the private clone and instrument from scratch.
	for _, f := range code.Funcs {
		f.Sandboxed = false
		f.Labeled = false
		f.Translated = false
	}
	if t.Opts.Sandbox {
		SandboxModule(code)
	}
	if t.Opts.CFI {
		CFIModule(code)
	}
	admitted := false
	var proofs map[string]*vir.CheckProofs
	if t.Opts.VerifyAdmission {
		t.ChargeVerify(code)
		if err := check.Verify(code, t.AdmissionConfig()); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotAdmissible, err)
		}
		admitted = true
		// Admission proved the invariants; the same dataflow machinery
		// now proves which instrumentation sites are redundant, for
		// link-time host-work elision. This is host-side analysis
		// folded into the verification scan already charged above —
		// the virtual clock is not touched, so every exported number
		// stays bit-identical whether or not the engine elides.
		proofs = check.ProveModule(code)
	}
	tr := &Translation{
		Module:      code,
		CheckProofs: proofs,
		entries:     make(map[string]uint64),
		byAddr:      make(map[uint64]*vir.Function),
		opts:        t.Opts,
		admitted:    admitted,
	}
	tr.base = t.Space.next
	for _, f := range code.Funcs {
		if _, dup := t.Space.byName[f.Name]; dup {
			return nil, fmt.Errorf("compiler: symbol %q already present in code space", f.Name)
		}
		f.Translated = true
		addr := t.Space.next
		t.Space.next += codeStride
		t.Space.byAddr[addr] = f
		t.Space.byName[f.Name] = addr
		tr.entries[f.Name] = addr
		tr.byAddr[addr] = f
	}
	tr.top = t.Space.next
	t.Space.epoch++
	tr.Signature = sha256.Sum256([]byte(vir.FormatModule(code)))
	return tr, nil
}

// AdmissionConfig is the policy Translate proves instrumented output
// against. Imports are allowed unless the symbol already resolves in
// the code space to an address *outside* the kernel code segment —
// i.e. code smuggled in via CodeSpace.PlantForeign cannot be named as
// a direct-call target, while genuinely unresolved symbols are left to
// the kernel's run-time module linker (intrinsics). I/O stays a
// run-time decision of the VM's checked instructions, so AllowIO is
// nil here; stricter static policies are available to cmd/vircheck
// and tests.
func (t *Translator) AdmissionConfig() check.Config {
	return check.Config{
		Label: KernelCFILabel,
		AllowImport: func(sym string) bool {
			addr, known := t.Space.FuncAddr(sym)
			return !known || t.Space.InKernelCode(addr)
		},
	}
}

// ChargeVerify charges the virtual-cycle cost of admission-verifying m
// (a linear scan, so linear in instruction count) to the translator's
// clock, if one is attached.
func (t *Translator) ChargeVerify(m *vir.Module) {
	if t.Clock == nil {
		return
	}
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	t.Clock.Charge(hw.TagVerify, uint64(n)*hw.CostVerifyPerOp)
}

// Entry returns the code address of a function in this translation.
func (tr *Translation) Entry(name string) (uint64, bool) {
	a, ok := tr.entries[name]
	return a, ok
}

// Verify recomputes the signature and reports whether the code has been
// altered since translation.
func (tr *Translation) Verify() bool {
	return tr.Signature == sha256.Sum256([]byte(vir.FormatModule(tr.Module)))
}

// Instrumented reports whether this translation carries the Virtual
// Ghost protections.
func (tr *Translation) Instrumented() bool {
	return tr.opts.Sandbox && tr.opts.CFI
}

// ProofCounts sums the elision certificates across the translation:
// how many maskghost and CFI indirect-call sites the admission checker
// proved redundant. The kernel reads it through a type assertion so
// the moduleTranslation interface stays minimal.
func (tr *Translation) ProofCounts() (masks, cfis int) {
	for _, p := range tr.CheckProofs {
		m, c := p.Counts()
		masks += m
		cfis += c
	}
	return masks, cfis
}

// Admitted reports whether this translation may enter kernel code
// space: either the static admission checker proved the sandbox/CFI
// invariants on the emitted code, or the pipeline declares no
// admission requirement (the native baseline). A translation claiming
// a verifying pipeline without a checker pass is refused by the
// kernel's module loader.
func (tr *Translation) Admitted() bool {
	return tr.admitted || !tr.opts.VerifyAdmission
}
