package compiler

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/compiler/check"
	"repro/internal/hw"
	"repro/internal/vir"
)

// buildPresetFlagModule is the hostile-author bypass shape: IR carrying
// pre-set instrumentation flags (so trusting passes skip their work)
// around a raw unmasked store.
func buildPresetFlagModule() *vir.Module {
	m := vir.NewModule("liar")
	b := vir.NewFunction("poke", 2)
	b.Store(b.Param(0), b.Param(1), 8)
	b.Ret(vir.Imm(0))
	f := b.Fn()
	f.Sandboxed = true
	f.Labeled = true
	f.Translated = true
	if err := m.AddFunc(f); err != nil {
		panic(err)
	}
	return m
}

func TestTranslateClearsPresetFlags(t *testing.T) {
	m := buildPresetFlagModule()
	tr, err := NewTranslator(VirtualGhostOptions()).Translate(m)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	// The pre-set flags must not have suppressed instrumentation: the
	// emitted code carries the mask and the label, and is admitted.
	out := tr.Module.Func("poke")
	if out.CountOps(vir.OpMaskGhost) != 1 {
		t.Errorf("store not masked despite cleared flags:\n%s", vir.Format(out))
	}
	if first := out.Entry().Instrs[0]; first.Op != vir.OpCFILabel || first.Imm != KernelCFILabel {
		t.Errorf("entry not labeled despite cleared flags:\n%s", vir.Format(out))
	}
	if !tr.Admitted() {
		t.Error("properly re-instrumented module should be admitted")
	}
	// The caller's module keeps its (bogus) flags — Translate works on
	// a private clone.
	if !m.Func("poke").Sandboxed {
		t.Error("input module mutated")
	}
}

func TestPresetFlagBypassCaughtByChecker(t *testing.T) {
	// Defense in depth: replay the *old* buggy pipeline (clone without
	// clearing flags, so both passes skip) and show the admission
	// checker refuses the result — even if Translate ever regressed,
	// the bypass could not reach code space.
	code := buildPresetFlagModule().Clone()
	SandboxModule(code)
	CFIModule(code)
	err := check.Verify(code, NewTranslator(VirtualGhostOptions()).AdmissionConfig())
	if err == nil {
		t.Fatal("checker admitted flag-bypassed uninstrumented code")
	}
	var cerr *check.Error
	if !errors.As(err, &cerr) {
		t.Fatalf("want *check.Error, got %T", err)
	}
	got := map[string]bool{}
	for _, d := range cerr.Diags {
		got[d.Code] = true
	}
	for _, want := range []string{check.CodeUnmaskedStore, check.CodeMissingLabel, check.CodeRawRet} {
		if !got[want] {
			t.Errorf("missing %s in %v", want, cerr.Diags)
		}
	}
}

func TestTranslateRefusesPlantedForeignCallTarget(t *testing.T) {
	tr := NewTranslator(VirtualGhostOptions())

	// Plant a gadget outside kernel code space under a linkable name —
	// the PlantForeign shape the attack suite uses for injected code.
	g := vir.NewFunction("rop_gadget", 0)
	g.Ret(vir.Imm(0x41))
	gm := vir.NewModule("gadget")
	if err := gm.AddFunc(g.Fn()); err != nil {
		t.Fatal(err)
	}
	tr.Space.PlantForeign(0x0000414141410000, gm.Funcs[0])

	m := vir.NewModule("trampoline")
	b := vir.NewFunction("jump", 0)
	b.Ret(b.Call("rop_gadget"))
	if err := m.AddFunc(b.Fn()); err != nil {
		t.Fatal(err)
	}
	_, err := tr.Translate(m)
	if !errors.Is(err, ErrNotAdmissible) {
		t.Fatalf("want ErrNotAdmissible for call into planted code, got %v", err)
	}
	if !strings.Contains(err.Error(), check.CodeBadImport) {
		t.Errorf("refusal should name the forbidden import: %v", err)
	}

	// Genuinely unresolved symbols stay admissible: they are linked at
	// run time against kernel intrinsics (klog_acc, cur_pid, ...).
	m2 := vir.NewModule("intrinsics")
	b2 := vir.NewFunction("logit", 1)
	b2.Ret(b2.Call("klog_acc", b2.Param(0)))
	if err := m2.AddFunc(b2.Fn()); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Translate(m2); err != nil {
		t.Fatalf("unresolved intrinsic import refused: %v", err)
	}

	// Symbols resolving inside kernel code space are fine too.
	m3 := vir.NewModule("caller")
	b3 := vir.NewFunction("relay", 1)
	b3.Ret(b3.Call("logit", b3.Param(0)))
	if err := m3.AddFunc(b3.Fn()); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Translate(m3); err != nil {
		t.Fatalf("cross-module kernel call refused: %v", err)
	}
}

func TestChargeVerifyCost(t *testing.T) {
	m := vir.NewModule("m")
	if err := m.AddFunc(buildKernelFunc("f")); err != nil {
		t.Fatal(err)
	}
	clock := &hw.Clock{}
	tr := NewTranslator(VirtualGhostOptions())
	tr.Clock = clock
	out, err := tr.Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range out.Module.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	if want := uint64(n) * hw.CostVerifyPerOp; clock.Cycles() != want {
		t.Errorf("verify charged %d cycles, want %d (%d instrs × %d)",
			clock.Cycles(), want, n, hw.CostVerifyPerOp)
	}
	// Without a clock the translator still works (standalone use).
	if _, err := NewTranslator(VirtualGhostOptions()).Translate(m); err != nil {
		t.Errorf("clockless translate failed: %v", err)
	}
}

func TestAdmittedAcrossPipelines(t *testing.T) {
	m := vir.NewModule("m")
	if err := m.AddFunc(buildKernelFunc("f")); err != nil {
		t.Fatal(err)
	}
	vg, err := NewTranslator(VirtualGhostOptions()).Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !vg.Admitted() {
		t.Error("verified VG translation must be admitted")
	}
	nat, err := NewTranslator(NativeOptions()).Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !nat.Admitted() {
		t.Error("native pipeline declares no admission requirement; must be admitted")
	}
}

func TestMmapMaskPassIdempotentAndModuleWrapper(t *testing.T) {
	build := func() *vir.Module {
		m := vir.NewModule("app")
		b := vir.NewFunction("use_mmap", 0)
		ptr := b.Call("mmap", vir.Imm(0), vir.Imm(4096))
		v := b.Load(ptr, 8)
		b.Ret(v)
		if err := m.AddFunc(b.Fn()); err != nil {
			panic(err)
		}
		return m
	}

	m := build()
	if diags := check.CheckMmapMaskedModule(m); len(diags) == 0 {
		t.Fatal("raw mmap dereference not flagged before the pass")
	}
	MmapMaskModule(m)
	f := m.Func("use_mmap")
	if !f.MmapMasked {
		t.Error("pass did not set MmapMasked")
	}
	masks := f.CountOps(vir.OpMaskGhost)
	MmapMaskModule(m) // second run must be a no-op
	MmapMaskPass(f)
	if got := f.CountOps(vir.OpMaskGhost); got != masks {
		t.Errorf("pass not idempotent: %d masks, then %d", masks, got)
	}
	if diags := check.CheckMmapMaskedModule(m); len(diags) != 0 {
		t.Errorf("instrumented mmap usage still flagged: %v", diags)
	}

	// The flag survives the text round-trip, so re-instrumentation of
	// stored application IR stays idempotent too.
	rt, err := vir.ParseModule(vir.FormatModule(m))
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if !rt.Func("use_mmap").MmapMasked {
		t.Error("MmapMasked flag lost in text round-trip")
	}
}
