package compiler

import "repro/internal/vir"

// KernelCFILabel is the single CFI label used for all kernel control-
// flow targets. The prototype deliberately used one label for both call
// sites and function entries to avoid link-time interprocedural call-
// graph construction (paper §5: "we use one label both for call sites
// ... and for the first address of every function. While conservative,
// this call graph ... should suffice for stopping advanced control-data
// attacks"). We reproduce that conservative policy.
const KernelCFILabel = 0xCF1

// CFIPass instruments a function for control-flow integrity:
//
//   - a CFI label landing pad is placed at the function entry, making
//     the function a legal target of instrumented indirect calls;
//   - every return becomes an instrumented return that validates (and
//     masks to kernel space) its control target;
//   - every indirect call becomes an instrumented indirect call that
//     validates its target's label and address range.
//
// Together with SandboxPass this guarantees the sandboxing cannot be
// bypassed by control-flow hijacking (paper §4.3.1).
func CFIPass(f *vir.Function) {
	if f.Labeled {
		return
	}
	entry := f.Entry()
	if entry != nil {
		entry.Instrs = append(
			[]vir.Instr{{Op: vir.OpCFILabel, Imm: KernelCFILabel}},
			entry.Instrs...,
		)
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case vir.OpRet:
				b.Instrs[i].Op = vir.OpCFIRet
			case vir.OpCallInd:
				b.Instrs[i].Op = vir.OpCFICallInd
			}
		}
	}
	f.Labeled = true
}

// CFIModule runs CFIPass over every function.
func CFIModule(m *vir.Module) {
	for _, f := range m.Funcs {
		CFIPass(f)
	}
}

// MmapMaskPass is the application-side Iago defence (paper §4.7, §5):
// it instruments application code so that pointers returned by the
// mmap system call are bit-masked out of the ghost partition before the
// application can dereference them. A hostile kernel that returns a
// ghost-partition pointer from mmap therefore cannot trick the
// application into overwriting its own ghost memory (stack, heap).
//
// syscallSyms names the call symbols whose return values are mmap-like
// pointers (by default just "mmap"). The pass is idempotent: a function
// already marked MmapMasked is left untouched, so running it twice
// cannot double-instrument the call sites.
func MmapMaskPass(f *vir.Function, syscallSyms ...string) {
	if f.MmapMasked {
		return
	}
	if len(syscallSyms) == 0 {
		syscallSyms = []string{"mmap"}
	}
	isMmap := make(map[string]bool, len(syscallSyms))
	for _, s := range syscallSyms {
		isMmap[s] = true
	}
	for _, b := range f.Blocks {
		out := make([]vir.Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			out = append(out, in)
			if in.Op == vir.OpCall && isMmap[in.Sym] {
				// Mask the returned pointer in place: the raw return
				// value never escapes into a register the rest of the
				// function can see unmasked.
				masked := f.NRegs
				f.NRegs++
				out = append(out,
					vir.Instr{Op: vir.OpMaskGhost, Dst: masked, A: vir.R(in.Dst)},
					vir.Instr{Op: vir.OpMov, Dst: in.Dst, A: vir.R(masked)},
				)
			}
		}
		b.Instrs = out
	}
	f.MmapMasked = true
}

// MmapMaskModule runs MmapMaskPass over every function, mirroring
// SandboxModule/CFIModule.
func MmapMaskModule(m *vir.Module, syscallSyms ...string) {
	for _, f := range m.Funcs {
		MmapMaskPass(f, syscallSyms...)
	}
}
